package bvc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/sim"
)

// DelayKind selects the simulated network delay distribution.
type DelayKind int

// Delay distributions.
const (
	// DelayConstant delivers every message after Mean.
	DelayConstant DelayKind = iota + 1
	// DelayUniform draws delays uniformly from [Min, Max].
	DelayUniform
	// DelayExponential draws delays exponentially with the given Mean.
	DelayExponential
	// DelayShiftedExp draws delays as Min (a constant floor) plus an
	// exponential tail with mean Mean. It keeps the heavy-tailed stress
	// schedule while promising a positive minimum latency, so the
	// discrete-event engine's conservative lookahead can batch whole
	// [t, t+Min] windows — a plain exponential has infimum 0 and disables
	// lookahead entirely.
	DelayShiftedExp
)

// DelaySpec describes the delay model of a simulated execution.
type DelaySpec struct {
	Kind     DelayKind
	Mean     time.Duration // constant / exponential
	Min, Max time.Duration // uniform
	// StarveSet lists processes whose outgoing messages are additionally
	// delayed by StarveExtra — the adversarial scheduler of the paper's
	// lower-bound arguments (legal in an asynchronous system).
	StarveSet   []int
	StarveExtra time.Duration
}

func (d DelaySpec) model() sim.DelayModel {
	var inner sim.DelayModel
	switch d.Kind {
	case DelayUniform:
		inner = sim.UniformDelay{Min: d.Min, Max: d.Max}
	case DelayExponential:
		mean := d.Mean
		if mean <= 0 {
			mean = time.Millisecond
		}
		inner = sim.ExponentialDelay{Mean: mean}
	case DelayShiftedExp:
		mean := d.Mean
		if mean <= 0 {
			mean = time.Millisecond
		}
		floor := d.Min
		if floor <= 0 {
			floor = mean / 3
		}
		inner = sim.ShiftedExponentialDelay{Floor: floor, TailMean: mean}
	case DelayConstant:
		mean := d.Mean
		if mean <= 0 {
			mean = time.Millisecond
		}
		inner = sim.ConstantDelay{D: mean}
	default:
		inner = sim.ConstantDelay{D: time.Millisecond}
	}
	if len(d.StarveSet) == 0 {
		return inner
	}
	slow := make(map[sim.ProcID]bool, len(d.StarveSet))
	for _, id := range d.StarveSet {
		slow[sim.ProcID(id)] = true
	}
	extra := d.StarveExtra
	if extra <= 0 {
		extra = time.Second
	}
	return sim.StarveSenders{Inner: inner, Slow: slow, Extra: extra}
}

// SimOptions parameterizes a simulated execution.
type SimOptions struct {
	// Seed drives all randomness (schedules and adversary choices);
	// identical seeds replay identical executions.
	Seed int64
	// Delay is the network delay model (asynchronous variants only).
	Delay DelaySpec
	// Workers bounds the number of concurrent Γ-point solves in the
	// engine's per-candidate-set fan-out: 0 selects GOMAXPROCS, 1 forces
	// serial execution. Every setting produces bit-identical decisions —
	// solves are independent and the reduction is rank-ordered — so this is
	// purely a performance knob.
	Workers int
	// NodeWorkers bounds how many simulated processes are stepped
	// concurrently by the simulation engines: 0 selects GOMAXPROCS, 1
	// forces serial stepping. In the synchronous engine each round's
	// Outbox and Deliver phases fan across the pool; in the discrete-event
	// engine deliveries sharing a virtual timestamp do. Executions are
	// bit-identical for every setting (the engines merge emitted messages
	// deterministically and every process owns an independent seeded PRNG
	// stream), so this knob composes freely with Workers: NodeWorkers
	// parallelizes across nodes, Workers within one node's Zi fan-out.
	NodeWorkers int
	// DisableGammaCache turns off the Γ-point memoization that collapses
	// identical candidate-set solves across the n simulated processes
	// (exact by the paper's Observation 2: all correct processes compute
	// the same zij). Disabling changes no results; it exists for
	// measurement and memory-constrained runs.
	DisableGammaCache bool
}

// engines caches one Γ-point engine per explicit (Workers,
// DisableGammaCache) configuration, so a configured engine — like the
// default — lives (and memoizes) for the whole process rather than per
// Simulate call. Without this, flipping the worker count would silently
// also shrink the cache lifetime and conflate the two effects.
var (
	enginesMu sync.Mutex
	engines   = map[engineKey]*core.Engine{}
)

type engineKey struct {
	workers      int
	disableCache bool
}

// engine resolves the Γ-point engine for this run: nil (the process-wide
// shared default — parallel and memoized) unless an explicit configuration
// was requested.
func (o SimOptions) engine() *core.Engine {
	if o.Workers == 0 && !o.DisableGammaCache {
		return nil
	}
	key := engineKey{workers: o.Workers, disableCache: o.DisableGammaCache}
	enginesMu.Lock()
	defer enginesMu.Unlock()
	e, ok := engines[key]
	if !ok {
		e = core.NewEngine(o.Workers, !o.DisableGammaCache)
		engines[key] = e
	}
	return e
}

// ResetEngineCaches drops every memoized Γ-point from the engines
// simulations use — the process-wide default and any engines created for
// explicit SimOptions configurations. Benchmarks call it between iterations
// to measure cold-cache runs; production code never needs it (the caches
// are bounded and exact).
func ResetEngineCaches() {
	core.DefaultEngine().Reset()
	enginesMu.Lock()
	defer enginesMu.Unlock()
	for _, e := range engines {
		e.Reset()
	}
}

// Strategy names a Byzantine behaviour from the built-in library.
type Strategy int

// Byzantine strategies.
const (
	// StrategySilent never sends a message.
	StrategySilent Strategy = iota + 1
	// StrategyCrash behaves correctly, then stops (synchronous: crashes
	// in round CrashAfter, possibly mid-broadcast; asynchronous: stops
	// after CrashAfter deliveries).
	StrategyCrash
	// StrategyEquivocate tells different processes different values
	// (Target to the first half, Target2 to the rest), every round.
	StrategyEquivocate
	// StrategyRandom sends protocol-shaped random garbage.
	StrategyRandom
	// StrategyLure participates protocol-compliantly but always announces
	// Target, trying to drag the correct processes' states toward it.
	StrategyLure
)

// Byzantine assigns a strategy to a process id.
type Byzantine struct {
	ID       int
	Strategy Strategy
	// Target / Target2 parameterize equivocation and lure strategies.
	Target  Vector
	Target2 Vector
	// CrashAfter parameterizes StrategyCrash (see Strategy docs).
	CrashAfter int
}

// SimulateExact runs Exact BVC (§2.2) in the lock-step synchronous
// simulator. inputs[i] is ignored for Byzantine slots (pass nil).
func SimulateExact(cfg Config, inputs []Vector, byz []Byzantine, opts SimOptions) (*Result, error) {
	return simulateSyncEIG(cfg, inputs, byz, opts, false)
}

// SimulateCoordinateWise runs the scalar-consensus-per-dimension baseline;
// it satisfies agreement and per-dimension scalar validity but can violate
// vector validity (the paper's motivating counterexample; experiment E8).
func SimulateCoordinateWise(cfg Config, inputs []Vector, byz []Byzantine, opts SimOptions) (*Result, error) {
	return simulateSyncEIG(cfg, inputs, byz, opts, true)
}

func simulateSyncEIG(cfg Config, inputs []Vector, byz []Byzantine, opts SimOptions, coordWise bool) (*Result, error) {
	params, err := cfg.params()
	if err != nil {
		return nil, err
	}
	params.Engine = opts.engine()
	if len(inputs) != cfg.N {
		return nil, fmt.Errorf("bvc: %d inputs for n=%d", len(inputs), cfg.N)
	}
	byzMap, err := byzIndex(cfg, byz)
	if err != nil {
		return nil, err
	}

	variant := ExactSync
	nodes := make([]sim.SyncNode, cfg.N)
	decide := make([]func() (geometry.Vector, error), cfg.N)
	rounds := params.F + 1
	mkCorrect := func(i int, input Vector) (sim.SyncNode, func() (geometry.Vector, error), error) {
		if coordWise {
			nd, err := core.NewCoordWiseNode(params, sim.ProcID(i), toGeometry(input))
			if err != nil {
				return nil, nil, err
			}
			return nd, nd.Decision, nil
		}
		nd, err := core.NewExactNode(params, sim.ProcID(i), toGeometry(input))
		if err != nil {
			return nil, nil, err
		}
		return nd, nd.Decision, nil
	}

	for i := 0; i < cfg.N; i++ {
		if b, ok := byzMap[i]; ok {
			nd, err := syncEIGAdversary(cfg, b, rounds, opts.Seed, mkCorrect)
			if err != nil {
				return nil, err
			}
			nodes[i] = nd
			continue
		}
		nd, dec, err := mkCorrect(i, inputs[i])
		if err != nil {
			return nil, fmt.Errorf("bvc: process %d: %w", i, err)
		}
		nodes[i] = nd
		decide[i] = dec
	}

	stats, err := sim.RunSyncWith(nodes, sim.SyncOptions{MaxRounds: rounds + 1, Workers: opts.NodeWorkers})
	if err != nil && !errors.Is(err, sim.ErrRoundCap) {
		return nil, err
	}
	return collectSync(variant, cfg, inputs, byzMap, decide, rounds, stats)
}

// SimulateRestrictedSync runs the §4 restricted-round synchronous
// algorithm.
func SimulateRestrictedSync(cfg Config, inputs []Vector, byz []Byzantine, opts SimOptions) (*Result, error) {
	params, err := cfg.params()
	if err != nil {
		return nil, err
	}
	params.Engine = opts.engine()
	if len(inputs) != cfg.N {
		return nil, fmt.Errorf("bvc: %d inputs for n=%d", len(inputs), cfg.N)
	}
	byzMap, err := byzIndex(cfg, byz)
	if err != nil {
		return nil, err
	}
	nodes := make([]sim.SyncNode, cfg.N)
	impls := make([]*core.RestrictedSyncNode, cfg.N)
	rounds := 0
	for i := 0; i < cfg.N; i++ {
		if _, ok := byzMap[i]; ok {
			continue
		}
		nd, err := core.NewRestrictedSyncNode(params, sim.ProcID(i), toGeometry(inputs[i]))
		if err != nil {
			return nil, fmt.Errorf("bvc: process %d: %w", i, err)
		}
		impls[i] = nd
		nodes[i] = nd
		if nd.Rounds() > rounds {
			rounds = nd.Rounds()
		}
	}
	for i := 0; i < cfg.N; i++ {
		if b, ok := byzMap[i]; ok {
			nd, err := restrictedSyncAdversary(cfg, b, rounds, opts.Seed)
			if err != nil {
				return nil, err
			}
			nodes[i] = nd
		}
	}
	stats, err := sim.RunSyncWith(nodes, sim.SyncOptions{MaxRounds: rounds + 1, Workers: opts.NodeWorkers})
	if err != nil && !errors.Is(err, sim.ErrRoundCap) {
		return nil, err
	}
	decide := make([]func() (geometry.Vector, error), cfg.N)
	for i := 0; i < cfg.N; i++ {
		if impls[i] != nil {
			decide[i] = impls[i].Decision
		}
	}
	res, err := collectSync(RestrictedSync, cfg, inputs, byzMap, decide, rounds, stats)
	if err != nil {
		return nil, err
	}
	// Attach per-round histories.
	for i := range res.Processes {
		if impls[i] != nil {
			for _, h := range impls[i].History() {
				res.Processes[i].History = append(res.Processes[i].History, fromGeometry(h))
			}
		}
	}
	return res, nil
}

// SimulateApproxAsync runs the §3.2 asynchronous approximate algorithm on
// the deterministic discrete-event simulator.
func SimulateApproxAsync(cfg Config, inputs []Vector, byz []Byzantine, opts SimOptions) (*Result, error) {
	acfg, err := cfg.asyncConfig()
	if err != nil {
		return nil, err
	}
	acfg.Engine = opts.engine()
	if len(inputs) != cfg.N {
		return nil, fmt.Errorf("bvc: %d inputs for n=%d", len(inputs), cfg.N)
	}
	byzMap, err := byzIndex(cfg, byz)
	if err != nil {
		return nil, err
	}
	nodes := make([]sim.Node, cfg.N)
	impls := make([]*core.AsyncNode, cfg.N)
	rounds := 0
	for i := 0; i < cfg.N; i++ {
		if _, ok := byzMap[i]; ok {
			continue
		}
		nd, err := core.NewAsyncNode(acfg, sim.ProcID(i), toGeometry(inputs[i]))
		if err != nil {
			return nil, fmt.Errorf("bvc: process %d: %w", i, err)
		}
		impls[i] = nd
		nodes[i] = nd
		if nd.Rounds() > rounds {
			rounds = nd.Rounds()
		}
	}
	for i := 0; i < cfg.N; i++ {
		if b, ok := byzMap[i]; ok {
			nd, err := asyncAdversary(cfg, acfg, b, rounds, inputs, impls)
			if err != nil {
				return nil, err
			}
			nodes[i] = nd
		}
	}
	stats, err := runAsyncEngine(cfg, opts, nodes)
	if err != nil {
		return nil, err
	}
	return collectAsync(ApproxAsync, cfg, inputs, byzMap, stats, func(i int) (geometry.Vector, []geometry.Vector, int, error) {
		if impls[i] == nil {
			return nil, nil, 0, nil
		}
		dec, err := impls[i].Decision()
		if err != nil {
			return nil, nil, 0, err
		}
		return dec, impls[i].History(), impls[i].Rounds(), nil
	})
}

// SimulateRestrictedAsync runs the §4 restricted-round asynchronous
// algorithm on the simulator.
func SimulateRestrictedAsync(cfg Config, inputs []Vector, byz []Byzantine, opts SimOptions) (*Result, error) {
	params, err := cfg.params()
	if err != nil {
		return nil, err
	}
	params.Engine = opts.engine()
	if len(inputs) != cfg.N {
		return nil, fmt.Errorf("bvc: %d inputs for n=%d", len(inputs), cfg.N)
	}
	byzMap, err := byzIndex(cfg, byz)
	if err != nil {
		return nil, err
	}
	nodes := make([]sim.Node, cfg.N)
	impls := make([]*core.RestrictedAsyncNode, cfg.N)
	rounds := 0
	for i := 0; i < cfg.N; i++ {
		if _, ok := byzMap[i]; ok {
			continue
		}
		nd, err := core.NewRestrictedAsyncNode(params, sim.ProcID(i), toGeometry(inputs[i]))
		if err != nil {
			return nil, fmt.Errorf("bvc: process %d: %w", i, err)
		}
		impls[i] = nd
		nodes[i] = nd
		if nd.Rounds() > rounds {
			rounds = nd.Rounds()
		}
	}
	for i := 0; i < cfg.N; i++ {
		if b, ok := byzMap[i]; ok {
			nd, err := restrictedAsyncAdversary(cfg, b, rounds)
			if err != nil {
				return nil, err
			}
			nodes[i] = nd
		}
	}
	stats, err := runAsyncEngine(cfg, opts, nodes)
	if err != nil {
		return nil, err
	}
	return collectAsync(RestrictedAsync, cfg, inputs, byzMap, stats, func(i int) (geometry.Vector, []geometry.Vector, int, error) {
		if impls[i] == nil {
			return nil, nil, 0, nil
		}
		dec, err := impls[i].Decision()
		if err != nil {
			return nil, nil, 0, err
		}
		return dec, impls[i].History(), impls[i].Rounds(), nil
	})
}

func runAsyncEngine(cfg Config, opts SimOptions, nodes []sim.Node) (sim.Stats, error) {
	eng, err := sim.NewEngine(sim.Config{
		N:           cfg.N,
		Seed:        opts.Seed,
		Delay:       opts.Delay.model(),
		NodeWorkers: opts.NodeWorkers,
	}, nodes)
	if err != nil {
		return sim.Stats{}, err
	}
	return eng.Run()
}

func byzIndex(cfg Config, byz []Byzantine) (map[int]Byzantine, error) {
	out := make(map[int]Byzantine, len(byz))
	for _, b := range byz {
		if b.ID < 0 || b.ID >= cfg.N {
			return nil, fmt.Errorf("bvc: byzantine id %d out of range n=%d", b.ID, cfg.N)
		}
		if _, dup := out[b.ID]; dup {
			return nil, fmt.Errorf("bvc: duplicate byzantine id %d", b.ID)
		}
		out[b.ID] = b
	}
	if len(out) > cfg.F {
		return nil, fmt.Errorf("bvc: %d byzantine processes exceed f=%d", len(out), cfg.F)
	}
	return out, nil
}

func collectSync(variant Variant, cfg Config, inputs []Vector, byzMap map[int]Byzantine,
	decide []func() (geometry.Vector, error), rounds int, stats sim.SyncStats) (*Result, error) {
	res := &Result{Variant: variant, Config: cfg, Messages: stats.Sent}
	for i := 0; i < cfg.N; i++ {
		pr := ProcessResult{ID: i, Rounds: rounds}
		if _, ok := byzMap[i]; ok {
			pr.Byzantine = true
		} else {
			pr.Input = append(Vector(nil), inputs[i]...)
			dec, err := decide[i]()
			if err != nil {
				return nil, fmt.Errorf("bvc: process %d failed to decide: %w", i, err)
			}
			pr.Decision = fromGeometry(dec)
		}
		res.Processes = append(res.Processes, pr)
	}
	return res, nil
}

func collectAsync(variant Variant, cfg Config, inputs []Vector, byzMap map[int]Byzantine,
	stats sim.Stats, get func(i int) (geometry.Vector, []geometry.Vector, int, error)) (*Result, error) {
	res := &Result{Variant: variant, Config: cfg, Messages: stats.Sent, VirtualTime: stats.FinalTime}
	for i := 0; i < cfg.N; i++ {
		pr := ProcessResult{ID: i}
		if _, ok := byzMap[i]; ok {
			pr.Byzantine = true
		} else {
			pr.Input = append(Vector(nil), inputs[i]...)
			dec, history, rounds, err := get(i)
			if err != nil {
				return nil, fmt.Errorf("bvc: process %d failed to decide: %w", i, err)
			}
			pr.Decision = fromGeometry(dec)
			pr.Rounds = rounds
			for _, h := range history {
				pr.History = append(pr.History, fromGeometry(h))
			}
		}
		res.Processes = append(res.Processes, pr)
	}
	return res, nil
}

// syncEIGAdversary maps a Byzantine spec to an EIG-protocol adversary.
func syncEIGAdversary(cfg Config, b Byzantine, rounds int, seed int64,
	mkCorrect func(i int, input Vector) (sim.SyncNode, func() (geometry.Vector, error), error)) (sim.SyncNode, error) {
	switch b.Strategy {
	case StrategySilent:
		return adversary.SilentSync{}, nil
	case StrategyCrash:
		wrapped, _, err := mkCorrect(b.ID, orZero(b.Target, cfg.D))
		if err != nil {
			return nil, err
		}
		crashRound := b.CrashAfter
		if crashRound <= 0 {
			crashRound = 1
		}
		return &adversary.CrashSync{Wrapped: wrapped, CrashRound: crashRound, PartialTo: cfg.N / 2}, nil
	case StrategyEquivocate:
		ta, tb, err := equivTargets(cfg, b)
		if err != nil {
			return nil, err
		}
		return adversary.NewEIGEquivocator(cfg.N, rounds, sim.ProcID(b.ID), func(to sim.ProcID) geometry.Vector {
			if int(to) < cfg.N/2 {
				return ta.Clone()
			}
			return tb.Clone()
		}), nil
	case StrategyRandom:
		box, err := randomBox(cfg)
		if err != nil {
			return nil, err
		}
		return adversary.NewEIGRandom(cfg.N, cfg.D, rounds, box, seededRand(seed, b.ID)), nil
	case StrategyLure:
		if len(b.Target) != cfg.D {
			return nil, fmt.Errorf("bvc: lure target dimension %d, want %d", len(b.Target), cfg.D)
		}
		// A lure in the exact protocol is an honest participant with an
		// extreme input — the strongest protocol-compliant value attack.
		nd, _, err := mkCorrect(b.ID, b.Target)
		if err != nil {
			return nil, err
		}
		return nd, nil
	default:
		return nil, fmt.Errorf("bvc: unknown strategy %d", b.Strategy)
	}
}

func restrictedSyncAdversary(cfg Config, b Byzantine, rounds int, seed int64) (sim.SyncNode, error) {
	switch b.Strategy {
	case StrategySilent:
		return adversary.SilentSync{}, nil
	case StrategyCrash:
		// In the restricted structure a crash is silence from the crash
		// round on; model it as a lure until CrashAfter, silence after.
		after := b.CrashAfter
		target := toGeometry(orZero(b.Target, cfg.D))
		return &adversary.FuncSync{Rounds: rounds, Fn: func(r int) map[sim.ProcID]sim.Message {
			if r > after {
				return nil
			}
			out := make(map[sim.ProcID]sim.Message, cfg.N)
			for to := 0; to < cfg.N; to++ {
				out[sim.ProcID(to)] = core.StateMsg{Round: r, Value: target.Clone()}
			}
			return out
		}}, nil
	case StrategyEquivocate:
		ta, tb, err := equivTargets(cfg, b)
		if err != nil {
			return nil, err
		}
		return adversary.NewStateEquivocator(cfg.N, rounds, cfg.N/2, ta, tb), nil
	case StrategyRandom:
		box, err := randomBox(cfg)
		if err != nil {
			return nil, err
		}
		return adversary.NewStateRandom(cfg.N, rounds, box, seededRand(seed, b.ID)), nil
	case StrategyLure:
		if len(b.Target) != cfg.D {
			return nil, fmt.Errorf("bvc: lure target dimension %d, want %d", len(b.Target), cfg.D)
		}
		return adversary.NewStateLure(cfg.N, rounds, toGeometry(b.Target)), nil
	default:
		return nil, fmt.Errorf("bvc: unknown strategy %d", b.Strategy)
	}
}

func asyncAdversary(cfg Config, acfg core.AsyncConfig, b Byzantine, rounds int,
	inputs []Vector, _ []*core.AsyncNode) (sim.Node, error) {
	switch b.Strategy {
	case StrategySilent:
		return adversary.SilentAsync{}, nil
	case StrategyCrash:
		input := orZero(b.Target, cfg.D)
		if inputs[b.ID] != nil {
			input = inputs[b.ID]
		}
		wrapped, err := core.NewAsyncNode(acfg, sim.ProcID(b.ID), toGeometry(input))
		if err != nil {
			return nil, err
		}
		after := b.CrashAfter
		if after <= 0 {
			after = 10
		}
		return &adversary.CrashAsync{Wrapped: wrapped, AfterDeliveries: after}, nil
	case StrategyEquivocate:
		ta, tb, err := equivTargets(cfg, b)
		if err != nil {
			return nil, err
		}
		return adversary.NewAsyncEquivocator(cfg.N, rounds, sim.ProcID(b.ID), cfg.N/2, ta, tb), nil
	case StrategyRandom:
		box, err := randomBox(cfg)
		if err != nil {
			return nil, err
		}
		return adversary.NewAsyncRandom(cfg.N, rounds, 4, box), nil
	case StrategyLure:
		if len(b.Target) != cfg.D {
			return nil, fmt.Errorf("bvc: lure target dimension %d, want %d", len(b.Target), cfg.D)
		}
		return adversary.NewAsyncLure(cfg.N, cfg.F, cfg.D, rounds, sim.ProcID(b.ID), toGeometry(b.Target))
	default:
		return nil, fmt.Errorf("bvc: unknown strategy %d", b.Strategy)
	}
}

func restrictedAsyncAdversary(cfg Config, b Byzantine, rounds int) (sim.Node, error) {
	switch b.Strategy {
	case StrategySilent, StrategyCrash:
		return adversary.SilentAsync{}, nil
	case StrategyEquivocate, StrategyLure:
		ta := toGeometry(orZero(b.Target, cfg.D))
		tb := ta
		if b.Strategy == StrategyEquivocate {
			tb = toGeometry(orZero(b.Target2, cfg.D))
		}
		n := cfg.N
		return &adversary.FuncAsync{OnInit: func(api sim.API) {
			for t := 1; t <= rounds; t++ {
				for to := 0; to < n; to++ {
					v := ta
					if b.Strategy == StrategyEquivocate && to >= n/2 {
						v = tb
					}
					api.Send(sim.ProcID(to), core.StateMsg{Round: t, Value: v.Clone()})
				}
			}
		}}, nil
	case StrategyRandom:
		box, err := randomBox(cfg)
		if err != nil {
			return nil, err
		}
		n := cfg.N
		return &adversary.FuncAsync{OnInit: func(api sim.API) {
			rng := api.Rand()
			for t := 1; t <= rounds; t++ {
				for to := 0; to < n; to++ {
					api.Send(sim.ProcID(to), core.StateMsg{Round: t, Value: adversary.RandomVector(rng, box)})
				}
			}
		}}, nil
	default:
		return nil, fmt.Errorf("bvc: unknown strategy %d", b.Strategy)
	}
}

func equivTargets(cfg Config, b Byzantine) (geometry.Vector, geometry.Vector, error) {
	if len(b.Target) != cfg.D || len(b.Target2) != cfg.D {
		return nil, nil, fmt.Errorf("bvc: equivocation targets must both have dimension %d", cfg.D)
	}
	return toGeometry(b.Target), toGeometry(b.Target2), nil
}

// randomBox is the sample space for random adversaries: the configured
// input box inflated 3×, or a default box when no bounds are set.
func randomBox(cfg Config) (geometry.Box, error) {
	box, err := cfg.box()
	if err != nil {
		return geometry.Box{}, err
	}
	if box.MaxRange() == 0 {
		return geometry.UniformBox(cfg.D, -1, 1), nil
	}
	lo := box.Lo.Clone()
	hi := box.Hi.Clone()
	for i := range lo {
		r := hi[i] - lo[i]
		lo[i] -= r
		hi[i] += r
	}
	return geometry.Box{Lo: lo, Hi: hi}, nil
}

func orZero(v Vector, d int) Vector {
	if len(v) == d {
		return v
	}
	return make(Vector, d)
}

// seededRand derives an independent PRNG stream for adversary id from the
// run's master seed. Every simulated process and adversary owns its own
// stream — no *rand.Rand is ever reachable from two nodes, which is what
// lets NodeWorkers step them concurrently — and distinct master seeds yield
// distinct adversary behaviour (the stream mixes both inputs).
func seededRand(seed int64, id int) *rand.Rand {
	return rand.New(rand.NewSource((seed+1)*0x9e3779b9 ^ int64(id+1)*7919))
}
