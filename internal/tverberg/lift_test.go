package tverberg

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

// TestLiftRandom: Lift must produce a verified Tverberg partition on random
// multisets at the Tverberg number (and above it) across a (d, r) grid —
// including the sizes the scale experiments use (d=3, r=4 ⇒ 13 points).
func TestLiftRandom(t *testing.T) {
	cases := []struct{ d, r, extra int }{
		{1, 2, 0}, {1, 3, 0}, {2, 2, 0}, {2, 3, 0}, {2, 3, 2},
		{3, 3, 0}, {3, 4, 0}, {3, 4, 3}, {4, 3, 0}, {5, 2, 4},
	}
	for _, c := range cases {
		size := (c.d+1)*(c.r-1) + 1 + c.extra
		for seed := int64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewSource(seed*1000 + int64(c.d*100+c.r*10+c.extra)))
			ms := geometry.NewMultiset(c.d)
			for i := 0; i < size; i++ {
				v := geometry.NewVector(c.d)
				for j := range v {
					v[j] = rng.Float64()*10 - 5
				}
				if err := ms.Add(v); err != nil {
					t.Fatal(err)
				}
			}
			part, err := Lift(ms, c.r)
			if err != nil {
				t.Fatalf("d=%d r=%d extra=%d seed=%d: Lift: %v", c.d, c.r, c.extra, seed, err)
			}
			if len(part.Blocks) != c.r {
				t.Fatalf("d=%d r=%d seed=%d: %d blocks, want %d", c.d, c.r, seed, len(part.Blocks), c.r)
			}
			if err := Verify(ms, part, 1e-6); err != nil {
				t.Fatalf("d=%d r=%d extra=%d seed=%d: %v", c.d, c.r, c.extra, seed, err)
			}
		}
	}
}

// TestLiftDeterministic: identical inputs must produce bit-identical
// partitions and points — the property Exact BVC's decision step needs.
func TestLiftDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ms := geometry.NewMultiset(3)
	for i := 0; i < 13; i++ {
		v := geometry.NewVector(3)
		for j := range v {
			v[j] = rng.Float64()
		}
		if err := ms.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	first, err := Lift(ms, 4)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		again, err := Lift(ms, 4)
		if err != nil {
			t.Fatal(err)
		}
		for c := range first.Point {
			if first.Point[c] != again.Point[c] {
				t.Fatalf("rep %d: point coordinate %d = %x, want %x", rep, c, again.Point[c], first.Point[c])
			}
		}
		for b := range first.Blocks {
			if len(first.Blocks[b]) != len(again.Blocks[b]) {
				t.Fatalf("rep %d: block %d size changed", rep, b)
			}
			for i := range first.Blocks[b] {
				if first.Blocks[b][i] != again.Blocks[b][i] {
					t.Fatalf("rep %d: block %d differs", rep, b)
				}
			}
		}
	}
}

// TestLiftValidation covers the argument checks.
func TestLiftValidation(t *testing.T) {
	ms := geometry.NewMultiset(2)
	for i := 0; i < 3; i++ {
		if err := ms.Add(geometry.Vector{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Lift(ms, 1); err == nil {
		t.Error("r=1: expected error")
	}
	if _, err := Lift(ms, 2); err == nil {
		t.Error("too few points: expected error")
	}
}
