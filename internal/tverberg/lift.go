package tverberg

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/geometry"
)

// liftScratch pools the lifted-search working set — the k·r lifted class
// members (one flat float backing), the rainbow selection, the active rows
// and the Wolfe min-norm scratch — so steady-state Lift calls allocate only
// the returned Partition. Reuse changes where values live, never the
// operation order, so results stay bit-identical.
type liftScratch struct {
	flat   []float64
	lifted [][][]float64
	sel    []int
	rows   [][]float64
	bar    []float64
	mn     minNormScratch
}

var liftPool = sync.Pool{New: func() any { return new(liftScratch) }}

// classes returns the lifted class table shaped k×r×dim over the flat
// backing, growing the buffers as needed.
func (ls *liftScratch) classes(k, r, dim int) [][][]float64 {
	need := k * r * dim
	if cap(ls.flat) < need {
		ls.flat = make([]float64, need)
	}
	flat := ls.flat[:need]
	clear(flat)
	if cap(ls.lifted) < k {
		ls.lifted = make([][][]float64, k)
	}
	lifted := ls.lifted[:k]
	for i := 0; i < k; i++ {
		if cap(lifted[i]) < r {
			lifted[i] = make([][]float64, r)
		}
		lifted[i] = lifted[i][:r]
		for j := 0; j < r; j++ {
			off := (i*r + j) * dim
			lifted[i][j] = flat[off : off+dim]
		}
	}
	ls.lifted = lifted
	return lifted
}

// liftTol is the residual norm at which the lifted colorful-Carathéodory
// search accepts a selection as containing the origin. Intermediate
// selections have min-norms bounded well away from zero, and the final one
// contains the origin exactly, so the observed residual collapses to
// floating-point noise at termination; 1e-7 separates the two regimes with
// orders of magnitude to spare. The derived Tverberg point lies in every
// block hull to within the same scale, which callers re-check geometrically
// (Verify) before trusting the partition.
const liftTol = 1e-7

// liftMaxPivots caps Bárány pivot steps. Each step strictly shrinks the
// minimum norm, so the search terminates on its own; the cap is a guard
// against numerical stagnation on adversarially degenerate inputs.
const liftMaxPivots = 2000

// Lift computes a Tverberg partition of y into r parts by Sarkaria's tensor
// construction — polynomial where Search is exponential, and for any r
// where Radon is limited to r = 2.
//
// The first N+1 members of y (N = (d+1)(r−1), the Tverberg number minus
// one) are lifted to N-dimensional color classes C_i = {v_j ⊗ x̄_i : j < r},
// where x̄_i = (x_i, 1) and v_0 … v_{r−1} ∈ R^{r−1} sum to zero (the
// standard basis plus −1). Every class averages to the origin, so by the
// colorful Carathéodory theorem some rainbow selection j(i) captures 0 in
// its convex hull; Bárány's pivoting scheme finds one: repeatedly take the
// minimum-norm point x of the current selection's hull (Wolfe's algorithm)
// and, while ‖x‖ > 0, swap a positive-weight class to its member with the
// most negative inner product against x, which strictly decreases the norm.
// The selection's zero combination Σ λ_i·v_{j(i)} ⊗ x̄_i = 0 forces the
// per-block weighted means Σ_{j(i)=j} λ_i x̄_i to coincide across blocks —
// that common value is a Tverberg point of the blocks {i : j(i) = j}.
//
// Members beyond the first N+1 are appended to the last block, which only
// grows its hull (exactly as RadonOfFirst does for r = 2). The computation
// is deterministic: all ties break toward the lowest index.
func Lift(y *geometry.Multiset, r int) (*Partition, error) {
	if r < 2 {
		return nil, fmt.Errorf("tverberg: Lift needs r ≥ 2 parts, got %d", r)
	}
	d := y.Dim()
	dim := (d + 1) * (r - 1) // lifted dimension N
	k := dim + 1             // number of color classes
	if y.Len() < k {
		return nil, fmt.Errorf("tverberg: Lift needs at least (d+1)(r−1)+1 = %d points, got %d", k, y.Len())
	}

	ls := liftPool.Get().(*liftScratch)
	defer liftPool.Put(ls)

	// Lifted classes: lifted[i][j] is v_j ⊗ x̄_i flattened row-major, i.e.
	// block a ∈ [0, r−1) holds v_j[a]·x̄_i. With v_a = e_a (a < r−1) and
	// v_{r−1} = −𝟙, member j < r−1 places x̄_i in block j; member r−1
	// places −x̄_i in every block.
	lifted := ls.classes(k, r, dim)
	bar := growF(&ls.bar, d+1)
	for i := 0; i < k; i++ {
		xi := y.At(i)
		copy(bar, xi)
		bar[d] = 1
		for j := 0; j < r; j++ {
			w := lifted[i][j]
			if j < r-1 {
				copy(w[j*(d+1):(j+1)*(d+1)], bar)
			} else {
				for a := 0; a < r-1; a++ {
					for b := 0; b <= d; b++ {
						w[a*(d+1)+b] = -bar[b]
					}
				}
			}
		}
	}

	// Initial rainbow selection: spread classes across members round-robin.
	if cap(ls.sel) < k {
		ls.sel = make([]int, k)
		ls.rows = make([][]float64, k)
	}
	sel := ls.sel[:k]
	rows := ls.rows[:k]
	for i := range sel {
		sel[i] = i % r
		rows[i] = lifted[i][sel[i]]
	}

	var mn *minNormResult
	for pivots := 0; ; pivots++ {
		if pivots >= liftMaxPivots {
			return nil, errors.New("tverberg: lifted search exceeded pivot cap")
		}
		var err error
		mn, err = minNormWith(rows, &ls.mn)
		if err != nil {
			return nil, err
		}
		if mn.norm2 <= liftTol*liftTol {
			break
		}
		// Bárány pivot. A nonzero min-norm point is supported by at most N
		// affinely independent members, so at least one of the N+1 classes
		// carries zero weight; swapping THAT class keeps x inside the new
		// hull. The class averages to the origin while its current member
		// satisfies ⟨s_i, x⟩ ≳ ‖x‖² (Wolfe's termination condition), so its
		// best member has ⟨w, x⟩ ≤ −‖x‖²/(r−1) — the segment [x, w] then
		// dips strictly below ‖x‖, the minimum norm decreases, and no
		// selection ever repeats (the search terminates combinatorially).
		// The margin is relative to ‖x‖²; an absolute one would open a
		// stall window at small norms.
		swapped := false
		for i := 0; i < k && !swapped; i++ {
			if mn.lambda[i] > mnWeightEps {
				continue // support class: swapping it would discard x itself
			}
			bestJ, bestDot := sel[i], dot(lifted[i][sel[i]], mn.x)
			for j := 0; j < r; j++ {
				if j == sel[i] {
					continue
				}
				if dp := dot(lifted[i][j], mn.x); dp < bestDot {
					bestJ, bestDot = j, dp
				}
			}
			if bestJ != sel[i] && bestDot < mn.norm2*(1-1e-9) {
				sel[i] = bestJ
				rows[i] = lifted[i][bestJ]
				swapped = true
			}
		}
		if !swapped {
			return nil, errors.New("tverberg: lifted search stalled above tolerance")
		}
	}

	// Decode: blocks by selected member, Tverberg point as the global
	// weighted mean Σ λ_i x_i (the per-block means all equal it when the
	// lifted combination is zero; block weights are each 1/r).
	blocks := make([][]int, r)
	pt := geometry.NewVector(d)
	var wsum float64
	for i := 0; i < k; i++ {
		blocks[sel[i]] = append(blocks[sel[i]], i)
		if l := mn.lambda[i]; l > 0 {
			xi := y.At(i)
			for c := 0; c < d; c++ {
				pt[c] += l * xi[c]
			}
			wsum += l
		}
	}
	if wsum <= 0 {
		return nil, errors.New("tverberg: lifted search produced no weight mass")
	}
	for c := 0; c < d; c++ {
		pt[c] /= wsum
	}
	for b := range blocks {
		if len(blocks[b]) == 0 {
			// A zero-residual selection gives every block weight 1/r, so
			// an empty block means the residual tolerance was too loose.
			return nil, fmt.Errorf("tverberg: lifted search left block %d empty", b)
		}
	}
	for i := k; i < y.Len(); i++ {
		blocks[r-1] = append(blocks[r-1], i)
	}
	return &Partition{Blocks: blocks, Point: pt}, nil
}
