package tverberg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lp"
)

// minNorm solves the minimum-norm-point problem min ‖x‖ over x ∈ conv(P)
// with Wolfe's algorithm (Wolfe 1976): it maintains a corral — an affinely
// independent subset whose affine minimum-norm point has strictly positive
// convex weights — and alternates adding the most violating point (major
// cycle) with projecting back onto the convex hull (minor cycles). The
// points are rows of p (all the same dimension); it returns the point and
// per-row convex weights (zero for rows outside the final corral).
//
// The computation is deterministic: ties in point selection break toward
// the lowest row index. It is exact up to floating point on the tiny, dense
// systems this package produces (corral size ≤ dim+1, dim ≲ a few dozen).
type minNormResult struct {
	x      []float64 // the minimum-norm point
	norm2  float64   // ‖x‖²
	lambda []float64 // convex weights per input row
}

const (
	// mnTol bounds the duality gap ⟨x, x − p_j⟩ accepted at termination.
	mnTol = 1e-12
	// mnWeightEps is the threshold below which an affine weight counts as
	// leaving the corral during a minor cycle.
	mnWeightEps = 1e-12
	// mnMaxIter caps major cycles; Wolfe terminates finitely, so hitting
	// the cap indicates numerical trouble on a degenerate instance.
	mnMaxIter = 1000
)

// minNormScratch holds every buffer one min-norm solve needs; reusing it
// across solves (the lifted search runs one solve per Bárány pivot) makes
// the solver allocation-free in steady state. The result's x and lambda
// slices alias the scratch and are only valid until the next solve.
type minNormScratch struct {
	affine  affineScratch
	corral  []int
	weights []float64
	x       []float64
	lambda  []float64
	res     minNormResult
}

// minNorm solves with a private scratch (one-shot callers).
func minNorm(p [][]float64) (*minNormResult, error) {
	return minNormWith(p, &minNormScratch{})
}

// minNormWith is minNorm with caller-managed scratch. The arithmetic is
// identical to a fresh-scratch solve — buffers only change where the values
// live, never the operation order — so results are bit-identical.
func minNormWith(p [][]float64, sc *minNormScratch) (*minNormResult, error) {
	if len(p) == 0 {
		return nil, errors.New("tverberg: min-norm of empty set")
	}
	dim := len(p[0])

	// Start the corral with the smallest-norm row (lowest index on ties).
	start, best := 0, math.Inf(1)
	for i, row := range p {
		if len(row) != dim {
			return nil, fmt.Errorf("tverberg: min-norm row %d has dimension %d, want %d", i, len(row), dim)
		}
		if n2 := dot(row, row); n2 < best {
			start, best = i, n2
		}
	}
	corral := append(sc.corral[:0], start)
	weights := append(sc.weights[:0], 1)
	x := append(sc.x[:0], p[start]...)

	scratch := &sc.affine
	for iter := 0; iter < mnMaxIter; iter++ {
		// Major cycle: the most violating point minimizes ⟨x, p_j⟩.
		x2 := dot(x, x)
		enter, bestDot := -1, x2-mnTol*(1+x2)
		for j, row := range p {
			if d := dot(x, row); d < bestDot {
				enter, bestDot = j, d
			}
		}
		if enter < 0 {
			return sc.result(p, x, corral, weights), nil
		}
		if containsIndex(corral, enter) {
			// The best improving point is already in the corral: x is the
			// convex (not just affine) optimum over it up to tolerance.
			return sc.result(p, x, corral, weights), nil
		}
		corral = append(corral, enter)
		weights = append(weights, 0)

		// Minor cycles: project onto the affine hull of the corral; while
		// the affine weights leave the simplex, step to the boundary and
		// drop the vanished points.
		for {
			affine, err := scratch.affineMinNorm(p, corral)
			if err != nil {
				return nil, err
			}
			neg := false
			for _, w := range affine {
				if w < mnWeightEps {
					neg = true
					break
				}
			}
			if !neg {
				weights = weights[:len(corral)]
				copy(weights, affine)
				break
			}
			// Largest step θ ∈ [0,1) from weights toward affine keeping
			// all weights ≥ 0: θ = min over decreasing weights of
			// w/(w−a).
			theta := 1.0
			for i := range corral {
				w, a := weights[i], affine[i]
				if a < mnWeightEps && w > a {
					if t := w / (w - a); t < theta {
						theta = t
					}
				}
			}
			kept := corral[:0]
			keptW := weights[:0]
			for i, idx := range corral {
				w := weights[i] + theta*(affine[i]-weights[i])
				if w > mnWeightEps {
					kept = append(kept, idx)
					keptW = append(keptW, w)
				}
			}
			if len(kept) == 0 {
				return nil, errors.New("tverberg: min-norm corral collapsed")
			}
			corral = kept
			weights = normalize(keptW)
		}

		// Recompute x from the new corral weights.
		clearF(x)
		for i, idx := range corral {
			axpy(x, weights[i], p[idx])
		}
	}
	return nil, errors.New("tverberg: min-norm iteration cap exceeded")
}

// affineScratch holds the dense solve buffers for affineMinNorm. The KKT
// systems are factored with the shared LU kernel of the revised simplex
// core (lp.LUSolver), so the whole Γ-point pipeline — simplex bases and
// Wolfe corrals alike — runs on one factorization implementation.
type affineScratch struct {
	m   []float64
	rhs []float64
	lu  lp.LUSolver
}

// kktPivotEps matches the pre-LU solveDense threshold: the corral KKT
// systems are Gram matrices of lifted points, not the row-equilibrated
// O(1) data the solver's default assumes, and narrowing the accepted
// pivots by two orders would push previously solvable corrals onto the
// expensive fallback ladder.
const kktPivotEps = 1e-13

// affineMinNorm returns the weights α (Σα = 1, unconstrained sign) of the
// minimum-norm point of the affine hull of the selected rows, from the KKT
// system [[0 1ᵀ][1 G]]·[μ α]ᵀ = [1 0]ᵀ with G the Gram matrix.
func (s *affineScratch) affineMinNorm(p [][]float64, sel []int) ([]float64, error) {
	k := len(sel)
	n := k + 1
	m := growF(&s.m, n*n)
	rhs := growF(&s.rhs, n)
	clearF(m)
	clearF(rhs)
	rhs[0] = 1
	s.lu.Eps = kktPivotEps
	for i := 0; i < k; i++ {
		m[0*n+1+i] = 1
		m[(1+i)*n+0] = 1
		for j := i; j < k; j++ {
			g := dot(p[sel[i]], p[sel[j]])
			m[(1+i)*n+1+j] = g
			m[(1+j)*n+1+i] = g
		}
	}
	if !s.lu.Factor(m, n) {
		return nil, errors.New("tverberg: affine min-norm system singular")
	}
	s.lu.Solve(rhs)
	return rhs[1 : 1+k], nil
}

// result assembles the final point and full-length weight vector into the
// scratch-owned buffers (valid until the next solve on this scratch) and
// hands the grown working slices back to the scratch for reuse.
func (sc *minNormScratch) result(p [][]float64, x []float64, corral []int, weights []float64) *minNormResult {
	sc.corral, sc.weights, sc.x = corral, weights, x
	lambda := growF(&sc.lambda, len(p))
	clearF(lambda)
	for i, idx := range corral {
		lambda[idx] = weights[i]
	}
	sc.res = minNormResult{x: x, norm2: dot(x, x), lambda: lambda}
	return &sc.res
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(dst []float64, w float64, src []float64) {
	for i := range dst {
		dst[i] += w * src[i]
	}
}

func clearF(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

func normalize(w []float64) []float64 {
	var s float64
	for _, v := range w {
		s += v
	}
	if s > 0 {
		for i := range w {
			w[i] /= s
		}
	}
	return w
}

func containsIndex(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func growF(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}
