package tverberg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

func vec(xs ...float64) geometry.Vector { return geometry.Vector(xs) }

func TestRadonSquare(t *testing.T) {
	// Four corners of a square in R²: the two diagonals cross at (0.5, 0.5).
	pts := []geometry.Vector{vec(0, 0), vec(1, 1), vec(1, 0), vec(0, 1)}
	part, err := Radon(pts)
	if err != nil {
		t.Fatalf("Radon: %v", err)
	}
	if len(part.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(part.Blocks))
	}
	ms := geometry.MustMultisetOf(pts...)
	if err := Verify(ms, part, 1e-7); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if !part.Point.ApproxEqual(vec(0.5, 0.5), 1e-7) {
		t.Errorf("Radon point = %v, want (0.5,0.5)", part.Point)
	}
}

func TestRadon1D(t *testing.T) {
	// Three collinear points in R¹: middle point in hull of the outer two.
	pts := []geometry.Vector{vec(0), vec(10), vec(4)}
	part, err := Radon(pts)
	if err != nil {
		t.Fatalf("Radon: %v", err)
	}
	ms := geometry.MustMultisetOf(pts...)
	if err := Verify(ms, part, 1e-7); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestRadonDuplicatePoints(t *testing.T) {
	pts := []geometry.Vector{vec(1, 1), vec(1, 1), vec(0, 0), vec(2, 0)}
	part, err := Radon(pts)
	if err != nil {
		t.Fatalf("Radon with duplicates: %v", err)
	}
	ms := geometry.MustMultisetOf(pts...)
	if err := Verify(ms, part, 1e-7); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestRadonWrongCount(t *testing.T) {
	if _, err := Radon([]geometry.Vector{vec(0, 0), vec(1, 1)}); err == nil {
		t.Error("too few points: expected error")
	}
	if _, err := Radon(nil); err == nil {
		t.Error("no points: expected error")
	}
}

func TestRadonNonFinite(t *testing.T) {
	pts := []geometry.Vector{vec(0, 0), vec(1, 1), vec(math.NaN(), 0), vec(0, 1)}
	if _, err := Radon(pts); err == nil {
		t.Error("NaN point: expected error")
	}
}

func TestRadonRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		d := 1 + rng.Intn(4)
		pts := make([]geometry.Vector, d+2)
		for i := range pts {
			p := geometry.NewVector(d)
			for j := range p {
				p[j] = rng.Float64()*10 - 5
			}
			pts[i] = p
		}
		part, err := Radon(pts)
		if err != nil {
			t.Fatalf("trial %d (d=%d): %v", trial, d, err)
		}
		ms := geometry.MustMultisetOf(pts...)
		if err := Verify(ms, part, 1e-6); err != nil {
			t.Fatalf("trial %d (d=%d): %v", trial, d, err)
		}
	}
}

func TestRadonOfFirstAttachesExtras(t *testing.T) {
	// 6 points in R², f = 1: prefix of 4 is Radon-partitioned, extras join
	// block 2.
	pts := []geometry.Vector{
		vec(0, 0), vec(1, 1), vec(1, 0), vec(0, 1), // prefix square
		vec(9, 9), vec(-3, 4), // extras
	}
	ms := geometry.MustMultisetOf(pts...)
	part, err := RadonOfFirst(ms)
	if err != nil {
		t.Fatalf("RadonOfFirst: %v", err)
	}
	if err := Verify(ms, part, 1e-7); err != nil {
		t.Errorf("Verify: %v", err)
	}
	total := len(part.Blocks[0]) + len(part.Blocks[1])
	if total != 6 {
		t.Errorf("partition covers %d of 6", total)
	}
}

func TestRadonOfFirstTooFew(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(0, 0), vec(1, 1), vec(2, 2))
	if _, err := RadonOfFirst(ms); err == nil {
		t.Error("|Y| < d+2: expected error")
	}
}

// TestSearchHeptagonFigure1 reproduces the paper's Figure 1: the 7 vertices
// of a regular heptagon (n = (d+1)f+1 with d = 2, f = 2) admit a Tverberg
// partition into f+1 = 3 parts.
func TestSearchHeptagonFigure1(t *testing.T) {
	ms := heptagon()
	part, ok, err := Search(ms, 3)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if !ok {
		t.Fatal("heptagon must admit a 3-part Tverberg partition (Figure 1)")
	}
	if err := Verify(ms, part, 1e-6); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if len(part.Blocks) != 3 {
		t.Errorf("blocks = %d, want 3", len(part.Blocks))
	}
	// Figure 1's partition consists of a triangle and two segments — block
	// sizes {3, 2, 2} in some order.
	sizes := map[int]int{}
	for _, b := range part.Blocks {
		sizes[len(b)]++
	}
	if sizes[3] != 1 || sizes[2] != 2 {
		t.Errorf("block sizes = %v, want one 3 and two 2s", sizes)
	}
}

func TestSearchTooFewPointsFails(t *testing.T) {
	// 3 generic points in R² cannot be split into 3 parts with a common
	// hull point unless they coincide.
	ms := geometry.MustMultisetOf(vec(0, 0), vec(1, 0), vec(0, 1))
	_, ok, err := Search(ms, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("3 generic points must not 3-partition")
	}
}

func TestSearchDuplicatedPointTriple(t *testing.T) {
	// The same point three times partitions trivially into 3 singletons.
	p := vec(2, 2)
	ms := geometry.MustMultisetOf(p, p, p)
	part, ok, err := Search(ms, 3)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if err := Verify(ms, part, 1e-7); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestSearchOneBlock(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(0, 0), vec(1, 1))
	part, ok, err := Search(ms, 1)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if err := Verify(ms, part, 1e-7); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestSearchMoreBlocksThanPoints(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(0, 0))
	_, ok, err := Search(ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("cannot partition 1 point into 2 blocks")
	}
}

func TestSearchRejectsHugeInput(t *testing.T) {
	ms := geometry.NewMultiset(1)
	for i := 0; i < maxSearchSize+1; i++ {
		if err := ms.Add(vec(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := Search(ms, 2); err == nil {
		t.Error("oversize input: expected error")
	}
}

func TestSearchInvalidParts(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(0))
	if _, _, err := Search(ms, 0); err == nil {
		t.Error("parts=0: expected error")
	}
}

// TestSearchRandomMatchesTheorem: for random multisets at the Tverberg
// threshold |Y| = (d+1)f+1, Search must always find a partition (Theorem 2).
func TestSearchRandomMatchesTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		d := 1 + rng.Intn(2) // d ∈ {1,2}
		f := 1 + rng.Intn(2) // f ∈ {1,2}
		n := (d+1)*f + 1
		ms := geometry.NewMultiset(d)
		for i := 0; i < n; i++ {
			p := geometry.NewVector(d)
			for j := range p {
				p[j] = rng.Float64()*10 - 5
			}
			if err := ms.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		part, ok, err := Search(ms, f+1)
		if err != nil {
			t.Fatalf("trial %d (d=%d f=%d): %v", trial, d, f, err)
		}
		if !ok {
			t.Fatalf("trial %d (d=%d f=%d): Theorem 2 violated — no partition found", trial, d, f)
		}
		if err := Verify(ms, part, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestVerifyRejectsBadPartitions(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(0, 0), vec(1, 0), vec(0, 1), vec(1, 1))
	good, err := Radon(ms.Points())
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		part *Partition
	}{
		{name: "nil", part: nil},
		{name: "empty block", part: &Partition{Blocks: [][]int{{0, 1, 2, 3}, {}}, Point: good.Point}},
		{name: "duplicate index", part: &Partition{Blocks: [][]int{{0, 1}, {1, 2, 3}}, Point: good.Point}},
		{name: "missing index", part: &Partition{Blocks: [][]int{{0}, {1, 2}}, Point: good.Point}},
		{name: "out of range", part: &Partition{Blocks: [][]int{{0, 1}, {2, 9}}, Point: good.Point}},
		{name: "wrong dim point", part: &Partition{Blocks: good.Blocks, Point: vec(1)}},
		{name: "point outside", part: &Partition{Blocks: good.Blocks, Point: vec(9, 9)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Verify(ms, tt.part, 1e-7); err == nil {
				t.Error("expected verification failure")
			}
		})
	}
}

// heptagon returns the 7 vertices of a regular heptagon, matching the
// paper's Figure 1 construction.
func heptagon() *geometry.Multiset {
	ms := geometry.NewMultiset(2)
	for k := 0; k < 7; k++ {
		a := 2 * math.Pi * float64(k) / 7
		if err := ms.Add(vec(math.Cos(a), math.Sin(a))); err != nil {
			panic(err)
		}
	}
	return ms
}
