// Package tverberg computes Tverberg partitions and Tverberg points.
//
// Tverberg's theorem (paper Theorem 2): every multiset of at least
// (d+1)f+1 points in R^d admits a partition into f+1 non-empty parts whose
// convex hulls share a common point. The common points are Tverberg points;
// the proof of Lemma 1 shows every Tverberg point lies in the safe area
// Γ(Y), which is how the consensus algorithms use this package.
//
// Two constructions are provided:
//
//   - Radon: the f=1 case. Any d+2 points admit a partition into two parts
//     with intersecting hulls, computable in O(d³) time from a null vector
//     of the affine-dependence system (Radon's theorem).
//   - Search: exhaustive enumeration of partitions for general f, feasible
//     for small multisets; used for validation and to reproduce the paper's
//     Figure 1 (the heptagon example).
package tverberg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/combin"
	"repro/internal/geometry"
	"repro/internal/hull"
)

// Partition is a Tverberg partition of a point multiset: Blocks holds
// member indices of each part, and Point is a common point of the parts'
// convex hulls (a Tverberg point).
type Partition struct {
	Blocks [][]int
	Point  geometry.Vector
}

// NumBlocks returns the number of parts.
func (p *Partition) NumBlocks() int { return len(p.Blocks) }

// maxSearchSize caps the exhaustive partition search; Stirling numbers grow
// too fast beyond this.
const maxSearchSize = 14

// Radon computes a Radon partition of exactly d+2 points in R^d: two
// disjoint non-empty index sets whose convex hulls intersect, plus a common
// point. The computation is deterministic.
func Radon(points []geometry.Vector) (*Partition, error) {
	if len(points) == 0 {
		return nil, errors.New("tverberg: no points")
	}
	d := points[0].Dim()
	if len(points) != d+2 {
		return nil, fmt.Errorf("tverberg: Radon needs exactly d+2 = %d points, got %d", d+2, len(points))
	}
	for i, p := range points {
		if p.Dim() != d {
			return nil, fmt.Errorf("tverberg: point %d has dimension %d, want %d", i, p.Dim(), d)
		}
		if !p.IsFinite() {
			return nil, fmt.Errorf("tverberg: point %d is not finite", i)
		}
	}

	// Find a non-trivial solution of Σλᵢpᵢ = 0, Σλᵢ = 0: a null vector of
	// the (d+1) × (d+2) matrix whose first d rows are coordinates and whose
	// last row is all ones.
	m := d + 1
	n := d + 2
	a := make([][]float64, m)
	for r := 0; r < d; r++ {
		a[r] = make([]float64, n)
		for c := 0; c < n; c++ {
			a[r][c] = points[c][r]
		}
	}
	a[d] = make([]float64, n)
	for c := 0; c < n; c++ {
		a[d][c] = 1
	}
	lambda, err := nullVector(a)
	if err != nil {
		return nil, fmt.Errorf("tverberg: %w", err)
	}

	// Split by sign. Σλ = 0 and λ ≠ 0 imply both signs occur.
	var pos, neg []int
	var posSum float64
	for i, l := range lambda {
		switch {
		case l > 0:
			pos = append(pos, i)
			posSum += l
		case l < 0:
			neg = append(neg, i)
		default:
			// λᵢ = 0: the point is unconstrained; attach to the negative
			// side so the positive side stays a minimal witness.
			neg = append(neg, i)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return nil, errors.New("tverberg: degenerate null vector (single-signed)")
	}

	// Radon point: Σ_{λᵢ>0} (λᵢ/posSum)·pᵢ.
	pt := geometry.NewVector(d)
	for _, i := range pos {
		w := lambda[i] / posSum
		for l := 0; l < d; l++ {
			pt[l] += w * points[i][l]
		}
	}
	return &Partition{Blocks: [][]int{pos, neg}, Point: pt}, nil
}

// RadonOfFirst computes a Tverberg partition of Y into 2 parts (the f=1
// case) for any |Y| ≥ d+2: it Radon-partitions the first d+2 members and
// attaches the remaining members to the second block, which can only grow
// its hull. The Tverberg point is the Radon point of the prefix.
func RadonOfFirst(y *geometry.Multiset) (*Partition, error) {
	d := y.Dim()
	if y.Len() < d+2 {
		return nil, fmt.Errorf("tverberg: need at least d+2 = %d points, got %d", d+2, y.Len())
	}
	prefix := make([]geometry.Vector, d+2)
	for i := 0; i < d+2; i++ {
		prefix[i] = y.At(i)
	}
	part, err := Radon(prefix)
	if err != nil {
		return nil, err
	}
	for i := d + 2; i < y.Len(); i++ {
		part.Blocks[1] = append(part.Blocks[1], i)
	}
	return part, nil
}

// Search exhaustively looks for a Tverberg partition of y into the given
// number of parts. It returns (partition, true, nil) on success and
// (nil, false, nil) if no partition of y into `parts` hull-intersecting
// blocks exists. Only small multisets are accepted (≤ 14 members).
func Search(y *geometry.Multiset, parts int) (*Partition, bool, error) {
	if parts < 1 {
		return nil, false, fmt.Errorf("tverberg: invalid part count %d", parts)
	}
	if y.Len() > maxSearchSize {
		return nil, false, fmt.Errorf("tverberg: search limited to %d points, got %d", maxSearchSize, y.Len())
	}
	if parts > y.Len() {
		return nil, false, nil
	}

	var (
		found  *Partition
		ferr   error
		groups = make([][]geometry.Vector, parts)
	)
	err := combin.Partitions(y.Len(), parts, func(blocks [][]int) bool {
		for g, blk := range blocks {
			pts := make([]geometry.Vector, len(blk))
			for i, idx := range blk {
				pts[i] = y.At(idx)
			}
			groups[g] = pts
		}
		pt, ok, err := hull.CommonPoint(groups)
		if err != nil {
			ferr = err
			return false
		}
		if !ok {
			return true // keep searching
		}
		cp := make([][]int, len(blocks))
		for g, blk := range blocks {
			cp[g] = append([]int(nil), blk...)
		}
		found = &Partition{Blocks: cp, Point: pt}
		return false
	})
	if err != nil {
		return nil, false, err
	}
	if ferr != nil {
		return nil, false, ferr
	}
	if found == nil {
		return nil, false, nil
	}
	return found, true, nil
}

// Verify checks that part is a valid Tverberg partition of y: the blocks
// are non-empty, disjoint, cover all members, and part.Point lies in every
// block's convex hull within tol (hull.DefaultTol if tol ≤ 0).
func Verify(y *geometry.Multiset, part *Partition, tol float64) error {
	if part == nil {
		return errors.New("tverberg: nil partition")
	}
	seen := make([]bool, y.Len())
	count := 0
	for b, blk := range part.Blocks {
		if len(blk) == 0 {
			return fmt.Errorf("tverberg: block %d is empty", b)
		}
		for _, idx := range blk {
			if idx < 0 || idx >= y.Len() {
				return fmt.Errorf("tverberg: block %d has out-of-range index %d", b, idx)
			}
			if seen[idx] {
				return fmt.Errorf("tverberg: index %d appears in more than one block", idx)
			}
			seen[idx] = true
			count++
		}
	}
	if count != y.Len() {
		return fmt.Errorf("tverberg: blocks cover %d of %d members", count, y.Len())
	}
	if part.Point.Dim() != y.Dim() {
		return fmt.Errorf("tverberg: point dimension %d, multiset dimension %d", part.Point.Dim(), y.Dim())
	}
	for b, blk := range part.Blocks {
		pts := make([]geometry.Vector, len(blk))
		for i, idx := range blk {
			pts[i] = y.At(idx)
		}
		ok, err := hull.Contains(pts, part.Point, tol)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("tverberg: point %v outside hull of block %d", part.Point, b)
		}
	}
	return nil
}

// nullVector returns a non-trivial solution x of Ax = 0 for an m×n matrix
// with m < n, via Gaussian elimination with partial pivoting.
func nullVector(a [][]float64) ([]float64, error) {
	m := len(a)
	if m == 0 {
		return nil, errors.New("null vector of empty matrix")
	}
	n := len(a[0])
	if m >= n {
		return nil, fmt.Errorf("matrix %dx%d has no guaranteed null space", m, n)
	}
	// Work on a copy.
	w := make([][]float64, m)
	for i := range a {
		w[i] = append([]float64(nil), a[i]...)
	}

	const eps = 1e-12
	pivotCol := make([]int, 0, m)
	row := 0
	for col := 0; col < n && row < m; col++ {
		// Partial pivoting.
		best, bestAbs := -1, eps
		for r := row; r < m; r++ {
			if abs := math.Abs(w[r][col]); abs > bestAbs {
				best, bestAbs = r, abs
			}
		}
		if best < 0 {
			continue // free column
		}
		w[row], w[best] = w[best], w[row]
		inv := 1 / w[row][col]
		for c := col; c < n; c++ {
			w[row][c] *= inv
		}
		for r := 0; r < m; r++ {
			if r == row {
				continue
			}
			factor := w[r][col]
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				w[r][c] -= factor * w[row][c]
			}
		}
		pivotCol = append(pivotCol, col)
		row++
	}

	// First free column gets value 1; back-substitute pivot columns.
	isPivot := make([]bool, n)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	free := -1
	for c := 0; c < n; c++ {
		if !isPivot[c] {
			free = c
			break
		}
	}
	if free < 0 {
		return nil, errors.New("no free column: matrix has full column rank")
	}
	x := make([]float64, n)
	x[free] = 1
	for r, c := range pivotCol {
		// Row r reads x[c] + Σ_{c' free or later pivot} w[r][c']·x[c'] = 0.
		var s float64
		for cc := 0; cc < n; cc++ {
			if cc != c {
				s += w[r][cc] * x[cc]
			}
		}
		x[c] = -s
	}
	return x, nil
}
