// Package aad implements Component #1 of the Abraham–Amit–Dolev (AAD)
// asynchronous agreement protocol: the witness mechanism that gives every
// correct process pi, in every asynchronous round t, a set Bi[t] of
// (process, value, round) tuples satisfying the three properties the BVC
// convergence proof relies on (paper §3.2):
//
//	Property 1: |Bi[t] ∩ Bj[t]| ≥ n−f for correct pi, pj.
//	Property 2: Bi[t] holds at most one tuple per process.
//	Property 3: tuples of correct processes carry their true round-t state.
//
// Construction (paper Appendix F): values are disseminated with Bracha
// reliable broadcast (supplying Properties 2 and 3). Each time a process
// adds a delivered tuple to its B set it reports the addition to everyone
// over the FIFO links. Process pk becomes a *witness* for pi once pk has
// reported ≥ n−f additions and every reported tuple is also in Bi[t]. pi
// finishes the round's exchange when it has n−f witnesses: any two correct
// processes then share a correct witness pk, and pk's first n−f reported
// tuples lie in both B sets — Property 1.
//
// The witness report order also yields the Appendix-F optimization: the
// first n−f origins reported by each witness form the candidate sets C used
// to build Zi with |Zi| ≤ n instead of C(n, n−f) subsets.
package aad

import (
	"errors"
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/geometry"
	"repro/internal/sim"
	"repro/internal/wire"
)

func init() {
	wire.Register(Msg{}) // encoding registry (sanctioned init use)
}

// MsgKind discriminates the two message families of the exchange.
type MsgKind int

// Message kinds.
const (
	// KindRBC wraps a reliable-broadcast protocol message.
	KindRBC MsgKind = iota + 1
	// KindReport announces "I added Origin's round-Round tuple to my B".
	KindReport
)

// Msg is the wire message of the witness exchange.
type Msg struct {
	Kind   MsgKind
	RBC    broadcast.RBCMsg // valid when Kind == KindRBC
	Report ReportMsg        // valid when Kind == KindReport
}

// ReportMsg announces a tuple addition; the value itself is pinned by RBC
// agreement, so reporting the origin id suffices.
type ReportMsg struct {
	Round  int
	Origin sim.ProcID
}

// Tuple is one member of Bi[t]: process Origin's round-t state.
type Tuple struct {
	Origin sim.ProcID
	Value  geometry.Vector
}

// Result is the outcome of a completed round exchange.
type Result struct {
	Round int
	// Tuples is Bi[t] in delivery order (≥ n−f tuples, one per origin).
	Tuples []Tuple
	// WitnessPrefixes holds, for each witness at completion time, the
	// first n−f origins that witness reported, in report order — the
	// Appendix-F candidate sets. There are ≥ n−f of them.
	WitnessPrefixes [][]sim.ProcID
}

// Coordinator runs the witness exchange for every asynchronous round of one
// process. It is a pure state machine: Start/Handle return the messages to
// broadcast; the caller transmits them (simulator engine or live runtime).
type Coordinator struct {
	n, f   int
	quorum int // n − f
	self   sim.ProcID
	rbc    *broadcast.RBC
	rounds map[int]*roundState
}

// roundState tracks one round's exchange with flat, origin-indexed state and
// an incrementally maintained witness count, so the per-message completion
// check is O(1) instead of an O(n²) rescan of every reporter's sequence.
type roundState struct {
	started   bool
	completed bool

	deliveredVal []geometry.Vector // by origin; nil = not yet delivered
	order        []sim.ProcID      // delivery order of origins

	reportSeen [][]bool       // reporter → origin → reported
	reportSeq  [][]sim.ProcID // reporter → origins in FIFO order
	// missing[r] counts reporter r's reported origins not yet delivered
	// here. Reporter r is a witness iff len(reportSeq[r]) ≥ quorum and
	// missing[r] == 0 — exactly the predicate the completion scan used to
	// recompute. witnesses counts reporters currently satisfying it.
	missing   []int
	witnesses int

	result *Result
}

// isWitness reports the (non-monotone) witness predicate for reporter r.
func (st *roundState) isWitness(r int, quorum int) bool {
	return len(st.reportSeq[r]) >= quorum && st.missing[r] == 0
}

// NewCoordinator builds the exchange coordinator for process self among n
// processes (f Byzantine) exchanging dim-dimensional vectors. It requires
// n ≥ 3f+1 (implied by the BVC bound n ≥ (d+2)f+1 for d ≥ 1).
func NewCoordinator(n, f int, self sim.ProcID, dim int) (*Coordinator, error) {
	if f < 0 || n < 3*f+1 {
		return nil, fmt.Errorf("aad: witness mechanism requires n ≥ 3f+1, got n=%d f=%d", n, f)
	}
	rbc, err := broadcast.NewRBC(n, f, self, dim)
	if err != nil {
		return nil, err
	}
	return &Coordinator{
		n: n, f: f, quorum: n - f,
		self:   self,
		rbc:    rbc,
		rounds: make(map[int]*roundState),
	}, nil
}

// StartRound begins round t with this process's current state value,
// returning the messages to broadcast to every process. Round-t traffic
// received before StartRound is already accounted for, so the round may be
// complete immediately; callers should consult Completed(t) after starting.
func (c *Coordinator) StartRound(t int, value geometry.Vector) ([]Msg, error) {
	st := c.round(t)
	if st.started {
		return nil, fmt.Errorf("aad: round %d already started", t)
	}
	st.started = true
	initMsg, err := c.rbc.Broadcast(t, value)
	if err != nil {
		return nil, err
	}
	c.checkCompletion(st, t)
	return []Msg{{Kind: KindRBC, RBC: initMsg}}, nil
}

// Handle processes one incoming message. It returns messages to broadcast
// and the results of any rounds that completed as a consequence. Messages
// for past or future rounds are processed unconditionally: reliable
// broadcast must keep making progress for lagging processes even after this
// process moved on (totality), and early round-(t+1) traffic from fast
// processes must not be lost.
func (c *Coordinator) Handle(from sim.ProcID, m Msg) ([]Msg, []Result) {
	switch m.Kind {
	case KindRBC:
		return c.handleRBC(from, m.RBC)
	case KindReport:
		if res := c.handleReport(from, m.Report); res != nil {
			return nil, []Result{*res}
		}
		return nil, nil
	default:
		return nil, nil
	}
}

func (c *Coordinator) handleRBC(from sim.ProcID, rm broadcast.RBCMsg) ([]Msg, []Result) {
	outRBC, deliveries := c.rbc.Handle(from, rm)
	out := make([]Msg, 0, len(outRBC)+len(deliveries))
	for _, o := range outRBC {
		out = append(out, Msg{Kind: KindRBC, RBC: o})
	}
	var results []Result
	for _, d := range deliveries {
		st := c.round(d.Tag)
		if st.deliveredVal[d.Origin] != nil {
			continue // RBC integrity makes this impossible; belt and braces
		}
		st.deliveredVal[d.Origin] = d.Value
		st.order = append(st.order, d.Origin)
		// The delivery may clear the last missing origin of any reporter
		// that already reported it.
		for r := 0; r < c.n; r++ {
			if !st.reportSeen[r][d.Origin] {
				continue
			}
			wasWitness := st.isWitness(r, c.quorum)
			st.missing[r]--
			if !wasWitness && st.isWitness(r, c.quorum) {
				st.witnesses++
			}
		}
		// Report the addition to everyone (FIFO links preserve order).
		out = append(out, Msg{Kind: KindReport, Report: ReportMsg{Round: d.Tag, Origin: d.Origin}})
		if res := c.checkCompletion(st, d.Tag); res != nil {
			results = append(results, *res)
		}
	}
	return out, results
}

func (c *Coordinator) handleReport(from sim.ProcID, rep ReportMsg) *Result {
	if int(rep.Origin) < 0 || int(rep.Origin) >= c.n || int(from) < 0 || int(from) >= c.n {
		return nil
	}
	st := c.round(rep.Round)
	r := int(from)
	if st.reportSeen[r][rep.Origin] {
		return nil // duplicate report (only Byzantine processes repeat)
	}
	wasWitness := st.isWitness(r, c.quorum)
	st.reportSeen[r][rep.Origin] = true
	st.reportSeq[r] = append(st.reportSeq[r], rep.Origin)
	if st.deliveredVal[rep.Origin] == nil {
		st.missing[r]++
	}
	if now := st.isWitness(r, c.quorum); now != wasWitness {
		if now {
			st.witnesses++
		} else {
			st.witnesses-- // a report of an undelivered origin suspends the witness
		}
	}
	return c.checkCompletion(st, rep.Round)
}

// checkCompletion consults the incrementally maintained witness count; on
// reaching n−f witnesses it freezes the round result, materializing the
// witness prefixes in reporter-id order exactly as the previous full rescan
// did.
func (c *Coordinator) checkCompletion(st *roundState, round int) *Result {
	if st.completed || !st.started || st.witnesses < c.quorum {
		return nil
	}
	prefixes := make([][]sim.ProcID, 0, st.witnesses)
	for reporter := 0; reporter < c.n; reporter++ {
		if !st.isWitness(reporter, c.quorum) {
			continue
		}
		prefix := make([]sim.ProcID, c.quorum)
		copy(prefix, st.reportSeq[reporter][:c.quorum])
		prefixes = append(prefixes, prefix)
	}
	st.completed = true
	tuples := make([]Tuple, len(st.order))
	for i, origin := range st.order {
		tuples[i] = Tuple{Origin: origin, Value: st.deliveredVal[origin].Clone()}
	}
	st.result = &Result{Round: round, Tuples: tuples, WitnessPrefixes: prefixes}
	return st.result
}

// Completed reports whether round t's exchange has finished, and its result.
func (c *Coordinator) Completed(t int) (*Result, bool) {
	st, ok := c.rounds[t]
	if !ok || !st.completed {
		return nil, false
	}
	return st.result, true
}

func (c *Coordinator) round(t int) *roundState {
	st := c.rounds[t]
	if st == nil {
		seen := make([][]bool, c.n)
		flat := make([]bool, c.n*c.n)
		for i := range seen {
			seen[i] = flat[i*c.n : (i+1)*c.n]
		}
		st = &roundState{
			deliveredVal: make([]geometry.Vector, c.n),
			reportSeen:   seen,
			reportSeq:    make([][]sim.ProcID, c.n),
			missing:      make([]int, c.n),
		}
		c.rounds[t] = st
	}
	return st
}

// ErrNotCompleted is returned when a result is requested for an unfinished
// round.
var ErrNotCompleted = errors.New("aad: round exchange not completed")

// Result returns the frozen result of round t.
func (c *Coordinator) Result(t int) (*Result, error) {
	res, ok := c.Completed(t)
	if !ok {
		return nil, ErrNotCompleted
	}
	return res, nil
}
