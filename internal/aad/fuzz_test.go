package aad

import (
	"math/rand"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/geometry"
	"repro/internal/sim"
)

// randomOrderBus delivers queued messages in a seeded random order —
// a schedule-fuzz harness for the witness exchange.
type randomOrderBus struct {
	t      *testing.T
	rng    *rand.Rand
	coords map[sim.ProcID]*Coordinator
	queue  []busItem

	results map[sim.ProcID][]Result
}

func newRandomOrderBus(t *testing.T, n, f, dim int, correct []sim.ProcID, seed int64) *randomOrderBus {
	t.Helper()
	b := &randomOrderBus{
		t:       t,
		rng:     rand.New(rand.NewSource(seed)),
		coords:  make(map[sim.ProcID]*Coordinator),
		results: make(map[sim.ProcID][]Result),
	}
	for _, id := range correct {
		c, err := NewCoordinator(n, f, id, dim)
		if err != nil {
			t.Fatalf("NewCoordinator(%d): %v", id, err)
		}
		b.coords[id] = c
	}
	return b
}

func (b *randomOrderBus) start(id sim.ProcID, round int, value geometry.Vector) {
	msgs, err := b.coords[id].StartRound(round, value)
	if err != nil {
		b.t.Fatalf("StartRound(%d): %v", id, err)
	}
	for _, m := range msgs {
		b.broadcastFrom(id, m)
	}
}

func (b *randomOrderBus) broadcastFrom(from sim.ProcID, m Msg) {
	for to := range b.coords {
		b.queue = append(b.queue, busItem{from: from, to: to, msg: m})
	}
}

// drain delivers in random order. Note: random global order still respects
// nothing about per-link FIFO; the witness mechanism's Properties 1–3 do
// not depend on FIFO for safety (only the report-prefix optimization's
// liveness argument uses it), so this is a legal stress.
func (b *randomOrderBus) drain() {
	for len(b.queue) > 0 {
		i := b.rng.Intn(len(b.queue))
		it := b.queue[i]
		b.queue[i] = b.queue[len(b.queue)-1]
		b.queue = b.queue[:len(b.queue)-1]
		coord, ok := b.coords[it.to]
		if !ok {
			continue
		}
		out, results := coord.Handle(it.from, it.msg)
		for _, o := range out {
			b.broadcastFrom(it.to, o)
		}
		b.results[it.to] = append(b.results[it.to], results...)
	}
}

// TestExchangeRandomSchedules fuzzes the exchange across many random
// delivery schedules and checks Properties 1–3 on every one.
func TestExchangeRandomSchedules(t *testing.T) {
	const n, f = 4, 1
	for seed := int64(0); seed < 30; seed++ {
		b := newRandomOrderBus(t, n, f, 1, ids(0, 1, 2, 3), seed)
		values := map[sim.ProcID]geometry.Vector{
			0: {0}, 1: {1}, 2: {2}, 3: {3},
		}
		for id, v := range values {
			b.start(id, 1, v)
		}
		b.drain()
		results := make(map[sim.ProcID]Result, n)
		for id, rs := range b.results {
			if len(rs) != 1 {
				t.Fatalf("seed %d: process %d completed %d rounds", seed, id, len(rs))
			}
			results[id] = rs[0]
		}
		if len(results) != n {
			t.Fatalf("seed %d: %d of %d completed", seed, len(results), n)
		}
		checkProperties(t, n, f, values, results)
	}
}

// TestExchangeRandomSchedulesWithEquivocator adds a Byzantine equivocator
// under random scheduling.
func TestExchangeRandomSchedulesWithEquivocator(t *testing.T) {
	const n, f = 4, 1
	correct := ids(0, 1, 2)
	for seed := int64(0); seed < 20; seed++ {
		b := newRandomOrderBus(t, n, f, 1, correct, seed)
		values := map[sim.ProcID]geometry.Vector{0: {0}, 1: {1}, 2: {2}}
		for _, id := range correct {
			b.start(id, 1, values[id])
		}
		// Byzantine process 3: conflicting INITs and noisy reports,
		// interleaved randomly with everything else.
		for i, to := range correct {
			v := geometry.Vector{30}
			if i == 2 {
				v = geometry.Vector{99}
			}
			b.queue = append(b.queue, busItem{from: 3, to: to, msg: Msg{Kind: KindRBC, RBC: initMsg(3, 1, v)}})
			b.queue = append(b.queue, busItem{from: 3, to: to, msg: Msg{Kind: KindReport, Report: ReportMsg{Round: 1, Origin: 0}}})
		}
		b.drain()
		results := make(map[sim.ProcID]Result, len(correct))
		for id, rs := range b.results {
			if len(rs) != 1 {
				t.Fatalf("seed %d: process %d completed %d rounds", seed, id, len(rs))
			}
			results[id] = rs[0]
		}
		if len(results) != len(correct) {
			t.Fatalf("seed %d: %d of %d completed", seed, len(results), len(correct))
		}
		checkProperties(t, n, f, values, results)
	}
}

// initMsg builds an RBC INIT for Byzantine injection.
func initMsg(origin sim.ProcID, tag int, v geometry.Vector) broadcast.RBCMsg {
	return broadcast.RBCMsg{Phase: broadcast.RBCInit, Origin: origin, Tag: tag, Value: v}
}
