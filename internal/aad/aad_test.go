package aad

import (
	"testing"

	"repro/internal/broadcast"
	"repro/internal/geometry"
	"repro/internal/sim"
)

func vec(xs ...float64) geometry.Vector { return geometry.Vector(xs) }

// bus drives coordinators for the correct processes, delivering broadcasts
// in FIFO or LIFO order; Byzantine traffic is injected explicitly.
type bus struct {
	t      *testing.T
	coords map[sim.ProcID]*Coordinator
	queue  []busItem
	lifo   bool

	results map[sim.ProcID][]Result
}

type busItem struct {
	from sim.ProcID
	to   sim.ProcID
	msg  Msg
}

func newBus(t *testing.T, n, f, dim int, correct []sim.ProcID) *bus {
	t.Helper()
	b := &bus{t: t, coords: make(map[sim.ProcID]*Coordinator), results: make(map[sim.ProcID][]Result)}
	for _, id := range correct {
		c, err := NewCoordinator(n, f, id, dim)
		if err != nil {
			t.Fatalf("NewCoordinator(%d): %v", id, err)
		}
		b.coords[id] = c
	}
	return b
}

func (b *bus) start(id sim.ProcID, round int, value geometry.Vector) {
	msgs, err := b.coords[id].StartRound(round, value)
	if err != nil {
		b.t.Fatalf("StartRound(%d): %v", id, err)
	}
	for _, m := range msgs {
		b.broadcastFrom(id, m)
	}
}

func (b *bus) broadcastFrom(from sim.ProcID, m Msg) {
	for to := range b.coords {
		b.queue = append(b.queue, busItem{from: from, to: to, msg: m})
	}
}

func (b *bus) inject(from, to sim.ProcID, m Msg) {
	b.queue = append(b.queue, busItem{from: from, to: to, msg: m})
}

func (b *bus) drain() {
	for len(b.queue) > 0 {
		var it busItem
		if b.lifo {
			it = b.queue[len(b.queue)-1]
			b.queue = b.queue[:len(b.queue)-1]
		} else {
			it = b.queue[0]
			b.queue = b.queue[1:]
		}
		coord, ok := b.coords[it.to]
		if !ok {
			continue
		}
		out, results := coord.Handle(it.from, it.msg)
		for _, o := range out {
			b.broadcastFrom(it.to, o)
		}
		b.results[it.to] = append(b.results[it.to], results...)
	}
}

func ids(xs ...int) []sim.ProcID {
	out := make([]sim.ProcID, len(xs))
	for i, x := range xs {
		out[i] = sim.ProcID(x)
	}
	return out
}

// tupleSet maps origin → value for property checks.
func tupleSet(res Result) map[sim.ProcID]geometry.Vector {
	out := make(map[sim.ProcID]geometry.Vector, len(res.Tuples))
	for _, tp := range res.Tuples {
		out[tp.Origin] = tp.Value
	}
	return out
}

// checkProperties asserts AAD Properties 1–3 over the correct processes'
// results for one round.
func checkProperties(t *testing.T, n, f int, values map[sim.ProcID]geometry.Vector, results map[sim.ProcID]Result) {
	t.Helper()
	quorum := n - f
	for id, res := range results {
		// Property 2: one tuple per origin (tupleSet dedups; sizes match).
		set := tupleSet(res)
		if len(set) != len(res.Tuples) {
			t.Errorf("process %d: duplicate origins in B", id)
		}
		if len(res.Tuples) < quorum {
			t.Errorf("process %d: |B| = %d < n−f = %d", id, len(res.Tuples), quorum)
		}
		// Property 3: correct origins carry their true values.
		for origin, v := range set {
			if want, ok := values[origin]; ok && !v.Equal(want) {
				t.Errorf("process %d: tuple for %d = %v, want %v", id, origin, v, want)
			}
		}
		if len(res.WitnessPrefixes) < quorum {
			t.Errorf("process %d: %d witnesses, want ≥ %d", id, len(res.WitnessPrefixes), quorum)
		}
		for _, p := range res.WitnessPrefixes {
			if len(p) != quorum {
				t.Errorf("process %d: witness prefix length %d, want %d", id, len(p), quorum)
			}
			// Prefix tuples must all be in B.
			for _, origin := range p {
				if _, ok := set[origin]; !ok {
					t.Errorf("process %d: witness prefix origin %d not in B", id, origin)
				}
			}
		}
	}
	// Property 1: pairwise intersection ≥ n−f.
	for id1, r1 := range results {
		for id2, r2 := range results {
			if id1 >= id2 {
				continue
			}
			s1, s2 := tupleSet(r1), tupleSet(r2)
			common := 0
			for origin, v1 := range s1 {
				if v2, ok := s2[origin]; ok {
					if !v1.Equal(v2) {
						t.Errorf("processes %d/%d disagree on origin %d: %v vs %v", id1, id2, origin, v1, v2)
					}
					common++
				}
			}
			if common < quorum {
				t.Errorf("|B%d ∩ B%d| = %d < n−f = %d (Property 1 violated)", id1, id2, common, quorum)
			}
		}
	}
}

func TestExchangeAllCorrect(t *testing.T) {
	for _, lifo := range []bool{false, true} {
		const n, f = 4, 1
		b := newBus(t, n, f, 2, ids(0, 1, 2, 3))
		b.lifo = lifo
		values := map[sim.ProcID]geometry.Vector{
			0: vec(0, 0), 1: vec(1, 0), 2: vec(0, 1), 3: vec(1, 1),
		}
		for id, v := range values {
			b.start(id, 1, v)
		}
		b.drain()
		results := make(map[sim.ProcID]Result, n)
		for id, rs := range b.results {
			if len(rs) != 1 {
				t.Fatalf("lifo=%v: process %d completed %d rounds, want 1", lifo, id, len(rs))
			}
			results[id] = rs[0]
		}
		if len(results) != n {
			t.Fatalf("lifo=%v: %d of %d completed", lifo, len(results), n)
		}
		checkProperties(t, n, f, values, results)
	}
}

func TestExchangeSilentByzantine(t *testing.T) {
	// Process 3 is silent; the other 4 of n=5 (f=1) must still complete.
	const n, f = 5, 1
	correct := ids(0, 1, 2, 4)
	b := newBus(t, n, f, 1, correct)
	values := map[sim.ProcID]geometry.Vector{0: vec(0), 1: vec(1), 2: vec(2), 4: vec(4)}
	for _, id := range correct {
		b.start(id, 1, values[id])
	}
	b.drain()
	results := make(map[sim.ProcID]Result, len(correct))
	for id, rs := range b.results {
		if len(rs) != 1 {
			t.Fatalf("process %d completed %d rounds", id, len(rs))
		}
		results[id] = rs[0]
	}
	if len(results) != len(correct) {
		t.Fatalf("%d of %d completed", len(results), len(correct))
	}
	checkProperties(t, n, f, values, results)
}

func TestExchangeEquivocatingByzantine(t *testing.T) {
	// Byzantine process 3 RBC-equivocates and spams bogus reports; the
	// correct processes must still satisfy Properties 1–3.
	const n, f = 4, 1
	correct := ids(0, 1, 2)
	b := newBus(t, n, f, 1, correct)
	values := map[sim.ProcID]geometry.Vector{0: vec(0), 1: vec(1), 2: vec(2)}
	for _, id := range correct {
		b.start(id, 1, values[id])
	}
	// Equivocating INITs.
	b.inject(3, 0, Msg{Kind: KindRBC, RBC: broadcast.RBCMsg{Phase: broadcast.RBCInit, Origin: 3, Tag: 1, Value: vec(30)}})
	b.inject(3, 1, Msg{Kind: KindRBC, RBC: broadcast.RBCMsg{Phase: broadcast.RBCInit, Origin: 3, Tag: 1, Value: vec(30)}})
	b.inject(3, 2, Msg{Kind: KindRBC, RBC: broadcast.RBCMsg{Phase: broadcast.RBCInit, Origin: 3, Tag: 1, Value: vec(99)}})
	// Bogus reports: origins never delivered, duplicates, out of range.
	for _, to := range correct {
		b.inject(3, to, Msg{Kind: KindReport, Report: ReportMsg{Round: 1, Origin: 2}})
		b.inject(3, to, Msg{Kind: KindReport, Report: ReportMsg{Round: 1, Origin: 2}})
		b.inject(3, to, Msg{Kind: KindReport, Report: ReportMsg{Round: 1, Origin: 9}})
		b.inject(3, to, Msg{Kind: KindReport, Report: ReportMsg{Round: 7, Origin: 0}})
	}
	b.drain()
	results := make(map[sim.ProcID]Result, len(correct))
	for id, rs := range b.results {
		if len(rs) != 1 {
			t.Fatalf("process %d completed %d rounds", id, len(rs))
		}
		results[id] = rs[0]
	}
	if len(results) != len(correct) {
		t.Fatalf("%d of %d completed", len(results), len(correct))
	}
	checkProperties(t, n, f, values, results)
}

func TestExchangeCommonWitnessPrefix(t *testing.T) {
	// Appendix F: every pair of correct processes must share at least one
	// identical witness prefix (the common correct witness's first n−f
	// reports).
	const n, f = 4, 1
	b := newBus(t, n, f, 1, ids(0, 1, 2, 3))
	for i := 0; i < n; i++ {
		b.start(sim.ProcID(i), 1, vec(float64(i)))
	}
	b.drain()
	prefKey := func(p []sim.ProcID) string {
		out := ""
		for _, id := range p {
			out += string(rune('a' + int(id)))
		}
		return out
	}
	sets := make(map[sim.ProcID]map[string]bool)
	for id, rs := range b.results {
		set := make(map[string]bool)
		for _, p := range rs[0].WitnessPrefixes {
			set[prefKey(p)] = true
		}
		sets[id] = set
	}
	for id1, s1 := range sets {
		for id2, s2 := range sets {
			if id1 >= id2 {
				continue
			}
			shared := false
			for k := range s1 {
				if s2[k] {
					shared = true
					break
				}
			}
			if !shared {
				t.Errorf("processes %d and %d share no witness prefix", id1, id2)
			}
		}
	}
}

func TestExchangeMultipleRounds(t *testing.T) {
	const n, f = 4, 1
	b := newBus(t, n, f, 1, ids(0, 1, 2, 3))
	for round := 1; round <= 3; round++ {
		for i := 0; i < n; i++ {
			b.start(sim.ProcID(i), round, vec(float64(i*10+round)))
		}
		b.drain()
	}
	for id, rs := range b.results {
		if len(rs) != 3 {
			t.Fatalf("process %d completed %d rounds, want 3", id, len(rs))
		}
		for i, res := range rs {
			if res.Round != i+1 {
				t.Errorf("process %d result %d is round %d", id, i, res.Round)
			}
		}
	}
}

func TestExchangeLateStarterCompletesImmediately(t *testing.T) {
	// Process 2 receives all round-1 traffic before starting round 1; its
	// exchange must complete at StartRound time.
	const n, f = 4, 1
	b := newBus(t, n, f, 1, ids(0, 1, 2, 3))
	for _, id := range ids(0, 1, 3) {
		b.start(id, 1, vec(float64(id)))
	}
	b.drain() // everyone but 2 has started; 2 participates passively
	late := b.coords[2]
	if _, ok := late.Completed(1); ok {
		t.Fatal("round complete before StartRound")
	}
	msgs, err := late.StartRound(1, vec(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		b.broadcastFrom(2, m)
	}
	b.drain()
	if _, ok := late.Completed(1); !ok {
		t.Fatal("late starter did not complete")
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(3, 1, 0, 1); err == nil {
		t.Error("n = 3f: expected error")
	}
	if _, err := NewCoordinator(4, -1, 0, 1); err == nil {
		t.Error("negative f: expected error")
	}
}

func TestStartRoundTwiceFails(t *testing.T) {
	c, err := NewCoordinator(4, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartRound(1, vec(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartRound(1, vec(0)); err == nil {
		t.Error("second StartRound must fail")
	}
}

func TestResultErrNotCompleted(t *testing.T) {
	c, err := NewCoordinator(4, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(1); err == nil {
		t.Error("expected ErrNotCompleted")
	}
}

func TestHandleUnknownKind(t *testing.T) {
	c, err := NewCoordinator(4, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, results := c.Handle(1, Msg{Kind: MsgKind(77)})
	if len(out) != 0 || len(results) != 0 {
		t.Error("unknown kind produced output")
	}
}
