package core

import (
	"math"
	"testing"

	"repro/internal/geometry"
)

func TestMinProcesses(t *testing.T) {
	tests := []struct {
		v    Variant
		d, f int
		want int
	}{
		// Exact sync: max(3f+1, (d+1)f+1).
		{VariantExactSync, 1, 1, 4}, // 3f+1 dominates
		{VariantExactSync, 2, 1, 4}, // tie: both give 4
		{VariantExactSync, 3, 1, 5}, // (d+1)f+1 dominates
		{VariantExactSync, 3, 2, 9}, // 4·2+1
		{VariantExactSync, 1, 0, 1}, // f = 0
		// Approx async: (d+2)f+1.
		{VariantApproxAsync, 1, 1, 4},
		{VariantApproxAsync, 2, 1, 5},
		{VariantApproxAsync, 2, 2, 9},
		// Restricted sync: (d+2)f+1.
		{VariantRestrictedSync, 2, 1, 5},
		// Restricted async: (d+4)f+1.
		{VariantRestrictedAsync, 1, 1, 6},
		{VariantRestrictedAsync, 2, 1, 7},
	}
	for _, tt := range tests {
		if got := MinProcesses(tt.v, tt.d, tt.f); got != tt.want {
			t.Errorf("MinProcesses(%v, d=%d, f=%d) = %d, want %d", tt.v, tt.d, tt.f, got, tt.want)
		}
	}
	if MinProcesses(Variant(99), 1, 1) != 0 {
		t.Error("unknown variant should yield 0")
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{N: 5, F: 1, D: 2, Epsilon: 0.1, Bounds: geometry.UniformBox(2, 0, 1)}
	tests := []struct {
		name    string
		params  Params
		variant Variant
		wantErr bool
	}{
		{name: "exact ok", params: Params{N: 4, F: 1, D: 2}, variant: VariantExactSync, wantErr: false},
		{name: "exact too few", params: Params{N: 3, F: 1, D: 2}, variant: VariantExactSync, wantErr: true},
		{name: "exact d3 needs 5", params: Params{N: 4, F: 1, D: 3}, variant: VariantExactSync, wantErr: true},
		{name: "bad dim", params: Params{N: 4, F: 1, D: 0}, variant: VariantExactSync, wantErr: true},
		{name: "bad f", params: Params{N: 4, F: -1, D: 1}, variant: VariantExactSync, wantErr: true},
		{name: "async ok", params: good, variant: VariantApproxAsync, wantErr: false},
		{name: "async too few", params: Params{N: 4, F: 1, D: 2, Epsilon: 0.1, Bounds: geometry.UniformBox(2, 0, 1)}, variant: VariantApproxAsync, wantErr: true},
		{name: "async no eps", params: Params{N: 5, F: 1, D: 2, Bounds: geometry.UniformBox(2, 0, 1)}, variant: VariantApproxAsync, wantErr: true},
		{name: "async bad bounds dim", params: Params{N: 5, F: 1, D: 2, Epsilon: 0.1, Bounds: geometry.UniformBox(1, 0, 1)}, variant: VariantApproxAsync, wantErr: true},
		{name: "restricted async needs d+4", params: Params{N: 6, F: 1, D: 2, Epsilon: 0.1, Bounds: geometry.UniformBox(2, 0, 1)}, variant: VariantRestrictedAsync, wantErr: true},
		{name: "unknown variant", params: good, variant: Variant(42), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.params.WithDefaults().Validate(tt.variant)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate: err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestCheckInput(t *testing.T) {
	p := Params{N: 5, F: 1, D: 2, Epsilon: 0.1, Bounds: geometry.UniformBox(2, 0, 1)}
	if err := p.CheckInput(geometry.Vector{0.5, 0.5}, true); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
	if err := p.CheckInput(geometry.Vector{0.5}, false); err == nil {
		t.Error("wrong dim accepted")
	}
	if err := p.CheckInput(geometry.Vector{math.NaN(), 0}, false); err == nil {
		t.Error("NaN accepted")
	}
	if err := p.CheckInput(geometry.Vector{2, 0}, true); err == nil {
		t.Error("out-of-bounds accepted with needBounds")
	}
	if err := p.CheckInput(geometry.Vector{2, 0}, false); err != nil {
		t.Errorf("out-of-bounds rejected without needBounds: %v", err)
	}
}

func TestGamma(t *testing.T) {
	// n=5, f=1: full γ = 1/(5·C(5,4)) = 1/25; witness-opt γ = 1/25 too.
	if got := Gamma(VariantApproxAsync, 5, 1, false); math.Abs(got-1.0/25) > 1e-15 {
		t.Errorf("full γ = %g, want 1/25", got)
	}
	if got := Gamma(VariantApproxAsync, 5, 1, true); math.Abs(got-1.0/25) > 1e-15 {
		t.Errorf("witness γ = %g, want 1/25", got)
	}
	// n=9, f=2: full γ = 1/(9·C(9,7)) = 1/324; witness γ = 1/81.
	if got := Gamma(VariantApproxAsync, 9, 2, false); math.Abs(got-1.0/324) > 1e-15 {
		t.Errorf("full γ = %g, want 1/324", got)
	}
	if got := Gamma(VariantApproxAsync, 9, 2, true); math.Abs(got-1.0/81) > 1e-15 {
		t.Errorf("witness γ = %g, want 1/81", got)
	}
	// Restricted async n=6, f=1: γ = 1/(6·C(5,3)) = 1/60.
	if got := Gamma(VariantRestrictedAsync, 6, 1, false); math.Abs(got-1.0/60) > 1e-15 {
		t.Errorf("restricted async γ = %g, want 1/60", got)
	}
	if Gamma(Variant(99), 5, 1, false) != 0 {
		t.Error("unknown variant should yield 0")
	}
}

func TestRoundBound(t *testing.T) {
	// γ = 1/2, range 8, ε = 1: need (1/2)^t·8 < 1 → t > 3 → bound 1+3=4.
	if got := RoundBound(0.5, 8, 1); got != 4 {
		t.Errorf("RoundBound = %d, want 4", got)
	}
	// Already within ε.
	if got := RoundBound(0.5, 0.5, 1); got != 1 {
		t.Errorf("RoundBound = %d, want 1", got)
	}
	// Degenerate γ.
	if got := RoundBound(0, 10, 1); got != 1 {
		t.Errorf("RoundBound(γ=0) = %d, want 1", got)
	}
	// Monotonicity: smaller ε needs more rounds.
	if RoundBound(0.1, 1, 0.01) <= RoundBound(0.1, 1, 0.1) {
		t.Error("smaller ε should need more rounds")
	}
}

func TestVariantString(t *testing.T) {
	for _, v := range []Variant{VariantExactSync, VariantApproxAsync, VariantRestrictedSync, VariantRestrictedAsync, Variant(9)} {
		if v.String() == "" {
			t.Errorf("variant %d renders empty", v)
		}
	}
}

func TestGammaPointOfSetCanonicalizes(t *testing.T) {
	// The same set in different orders must give the identical point
	// (this is what makes zij common between two correct processes).
	set1 := []tuple{
		{origin: 2, value: geometry.Vector{0, 1}},
		{origin: 0, value: geometry.Vector{0, 0}},
		{origin: 3, value: geometry.Vector{1, 1}},
		{origin: 1, value: geometry.Vector{1, 0}},
	}
	set2 := []tuple{set1[3], set1[0], set1[1], set1[2]}
	p1, err := gammaPointOfSet(set1, 1, 0)
	if err == nil {
		t.Fatal("method 0 should be invalid")
	}
	p1, err = gammaPointOfSet(set1, 1, 1) // safearea.MethodAuto == 1
	if err != nil {
		t.Fatal(err)
	}
	p2, err := gammaPointOfSet(set2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Equal(p2) {
		t.Errorf("order-dependent safe point: %v vs %v", p1, p2)
	}
}

func TestAverageGammaSubsetErrors(t *testing.T) {
	tuples := []tuple{
		{origin: 0, value: geometry.Vector{0}},
		{origin: 1, value: geometry.Vector{1}},
		{origin: 2, value: geometry.Vector{2}},
	}
	eng := NewEngine(1, false)
	avg, size, err := eng.AverageGamma(tuples, 2, 0, 1) // f=0, MethodAuto
	if err != nil {
		t.Fatal(err)
	}
	if size != 3 {
		t.Errorf("C(3,2) = %d sets, want 3", size)
	}
	if avg == nil {
		t.Error("nil average")
	}
	if _, _, err := eng.AverageGamma(tuples, 4, 0, 1); err == nil {
		t.Error("k > len: expected error")
	}
	if _, _, err := eng.AverageGamma(tuples, 0, 0, 1); err == nil {
		t.Error("k = 0: expected error")
	}
}

func TestAverageGammaPointsEmpty(t *testing.T) {
	if _, _, err := averageGammaPoints(nil, 1, 1); err == nil {
		t.Error("no sets: expected error")
	}
}
