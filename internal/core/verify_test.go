package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func mkExec(d, f int, outcomes ...core.Outcome) *core.Execution {
	return &core.Execution{D: d, F: f, Outcomes: outcomes}
}

func TestVerifyAgreementPasses(t *testing.T) {
	ex := mkExec(2, 1,
		core.Outcome{ID: 0, Correct: true, Input: vec(0, 0), Decision: vec(0.5, 0.5)},
		core.Outcome{ID: 1, Correct: true, Input: vec(1, 1), Decision: vec(0.5, 0.5)},
		core.Outcome{ID: 2, Correct: false},
	)
	if err := ex.VerifyAgreement(); err != nil {
		t.Errorf("agreement should pass: %v", err)
	}
}

func TestVerifyAgreementFails(t *testing.T) {
	ex := mkExec(1, 0,
		core.Outcome{ID: 0, Correct: true, Input: vec(0), Decision: vec(0)},
		core.Outcome{ID: 1, Correct: true, Input: vec(1), Decision: vec(1)},
	)
	if err := ex.VerifyAgreement(); !errors.Is(err, core.ErrAgreement) {
		t.Errorf("err = %v, want ErrAgreement", err)
	}
}

func TestVerifyTermination(t *testing.T) {
	ex := mkExec(1, 0,
		core.Outcome{ID: 0, Correct: true, Input: vec(0), Decision: nil},
	)
	if err := ex.VerifyTermination(); !errors.Is(err, core.ErrTermination) {
		t.Errorf("err = %v, want ErrTermination", err)
	}
	if err := ex.VerifyAgreement(); !errors.Is(err, core.ErrTermination) {
		t.Errorf("agreement on undecided: err = %v, want ErrTermination", err)
	}
}

func TestVerifyEpsAgreement(t *testing.T) {
	ex := mkExec(2, 0,
		core.Outcome{ID: 0, Correct: true, Input: vec(0, 0), Decision: vec(0.50, 0.50)},
		core.Outcome{ID: 1, Correct: true, Input: vec(1, 1), Decision: vec(0.55, 0.45)},
	)
	if err := ex.VerifyEpsAgreement(0.1); err != nil {
		t.Errorf("within ε: %v", err)
	}
	if err := ex.VerifyEpsAgreement(0.01); !errors.Is(err, core.ErrEpsAgreement) {
		t.Errorf("err = %v, want ErrEpsAgreement", err)
	}
}

func TestVerifyValidity(t *testing.T) {
	// Decision on the segment between correct inputs: valid.
	ex := mkExec(2, 1,
		core.Outcome{ID: 0, Correct: true, Input: vec(0, 0), Decision: vec(0.5, 0.5)},
		core.Outcome{ID: 1, Correct: true, Input: vec(1, 1), Decision: vec(0.5, 0.5)},
		core.Outcome{ID: 2, Correct: false},
	)
	if err := ex.VerifyValidity(1e-9); err != nil {
		t.Errorf("validity should pass: %v", err)
	}
	// Decision off the segment: invalid even if both agree.
	bad := mkExec(2, 1,
		core.Outcome{ID: 0, Correct: true, Input: vec(0, 0), Decision: vec(0.5, 0.6)},
		core.Outcome{ID: 1, Correct: true, Input: vec(1, 1), Decision: vec(0.5, 0.6)},
	)
	if err := bad.VerifyValidity(1e-9); !errors.Is(err, core.ErrValidity) {
		t.Errorf("err = %v, want ErrValidity", err)
	}
}

func TestVerifyValidityIgnoresByzantineInputs(t *testing.T) {
	// The Byzantine "input" must not enlarge the allowed hull.
	ex := mkExec(1, 1,
		core.Outcome{ID: 0, Correct: true, Input: vec(0), Decision: vec(0.9)},
		core.Outcome{ID: 1, Correct: true, Input: vec(0.5), Decision: vec(0.9)},
		core.Outcome{ID: 2, Correct: false, Input: vec(100)},
	)
	if err := ex.VerifyValidity(1e-9); !errors.Is(err, core.ErrValidity) {
		t.Errorf("err = %v, want ErrValidity (0.9 outside [0, 0.5])", err)
	}
}

func TestVerifyNoCorrectProcesses(t *testing.T) {
	ex := mkExec(1, 1, core.Outcome{ID: 0, Correct: false})
	if err := ex.VerifyTermination(); err == nil {
		t.Error("expected error for zero correct processes")
	}
}

func TestVerifyDimensionChecks(t *testing.T) {
	ex := mkExec(2, 0,
		core.Outcome{ID: 0, Correct: true, Input: vec(0), Decision: vec(0, 0)},
	)
	if err := ex.VerifyTermination(); err == nil {
		t.Error("expected input-dimension error")
	}
	ex2 := mkExec(2, 0,
		core.Outcome{ID: 0, Correct: true, Input: vec(0, 0), Decision: vec(0)},
	)
	if err := ex2.VerifyTermination(); err == nil {
		t.Error("expected decision-dimension error")
	}
}

func TestVerifyExactAndApproxCompose(t *testing.T) {
	ex := mkExec(1, 0,
		core.Outcome{ID: 0, Correct: true, Input: vec(0), Decision: vec(0.25)},
		core.Outcome{ID: 1, Correct: true, Input: vec(1), Decision: vec(0.25)},
	)
	if err := ex.VerifyExact(1e-9); err != nil {
		t.Errorf("VerifyExact: %v", err)
	}
	if err := ex.VerifyApprox(0.1, 1e-9); err != nil {
		t.Errorf("VerifyApprox: %v", err)
	}
}
