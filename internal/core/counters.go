package core

import "sync/atomic"

// GammaCounters is a snapshot of the Γ-point engine's reuse counters,
// accumulated across every Engine in the process (the default engine and any
// explicitly configured ones). They quantify how much of the Γ workload the
// incremental layers absorbed:
//
//   - Solves: Γ-points computed from scratch (memo misses, or cache off);
//   - CacheHits: full-multiset memo hits (Observation 2 — identical
//     candidate sets across processes and rounds);
//   - PrefixHits: sub-family reuse — candidate sets that shared the
//     method-dependent prefix (first d+2 members for the Radon path, first
//     (d+1)f+1 for the Tverberg lift) of an already-solved sibling, plus
//     Radon-family delta reuse (restricted-async f = 1: subset points
//     carried over between B sets differing in a single member);
//   - RoundHits: whole-round hits — AverageGamma calls whose entire
//     canonical (origin-sorted) tuple set was already reduced: identical
//     inboxes across processes, including restricted-async B sets that
//     coincide as sets despite different arrival orders.
//
// cmd/bvcbench -json surfaces the per-measurement deltas and the derived
// reuse rate; CI gates on the e10 counters staying nonzero.
type GammaCounters struct {
	Solves     uint64
	CacheHits  uint64
	PrefixHits uint64
	RoundHits  uint64
}

// ReuseRate returns the fraction of Γ-point requests served without a
// from-scratch solve: (CacheHits+PrefixHits) / (those + Solves). RoundHits
// are excluded — a round hit suppresses its per-set requests entirely, so
// counting it here would double-bill.
func (c GammaCounters) ReuseRate() float64 {
	reused := c.CacheHits + c.PrefixHits
	if reused+c.Solves == 0 {
		return 0
	}
	return float64(reused) / float64(reused+c.Solves)
}

// Sub reports the counter deltas accumulated since the earlier snapshot.
func (c GammaCounters) Sub(earlier GammaCounters) GammaCounters {
	return GammaCounters{
		Solves:     c.Solves - earlier.Solves,
		CacheHits:  c.CacheHits - earlier.CacheHits,
		PrefixHits: c.PrefixHits - earlier.PrefixHits,
		RoundHits:  c.RoundHits - earlier.RoundHits,
	}
}

// gammaStats is the process-wide accumulator behind CountersSnapshot.
var gammaStats struct {
	solves, cacheHits, prefixHits, roundHits atomic.Uint64
}

// CountersSnapshot returns the current process-wide Γ-reuse counters.
func CountersSnapshot() GammaCounters {
	return GammaCounters{
		Solves:     gammaStats.solves.Load(),
		CacheHits:  gammaStats.cacheHits.Load(),
		PrefixHits: gammaStats.prefixHits.Load(),
		RoundHits:  gammaStats.roundHits.Load(),
	}
}

// ResetCounters zeroes the process-wide Γ-reuse counters (measurement
// harnesses only; the counters are monotone otherwise).
func ResetCounters() {
	gammaStats.solves.Store(0)
	gammaStats.cacheHits.Store(0)
	gammaStats.prefixHits.Store(0)
	gammaStats.roundHits.Store(0)
}
