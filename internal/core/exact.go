package core

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/geometry"
	"repro/internal/safearea"
	"repro/internal/sim"
)

// ExactNode runs the paper's Exact BVC algorithm (§2.2) as a synchronous
// node:
//
//	Step 1: Byzantine-broadcast the input vector of every process (one EIG
//	        instance per process, f+1 rounds), after which every correct
//	        process holds the identical multiset S of n vectors.
//	Step 2: decide the deterministic point of Γ(S).
//
// Correct for n ≥ max(3f+1, (d+1)f+1) — Theorem 3.
type ExactNode struct {
	params Params
	self   sim.ProcID
	multi  *broadcast.MultiEIG

	s        *geometry.Multiset
	decision geometry.Vector
	err      error
}

var _ sim.SyncNode = (*ExactNode)(nil)

// NewExactNode builds the node for process self with the given input.
func NewExactNode(params Params, self sim.ProcID, input geometry.Vector) (*ExactNode, error) {
	params = params.WithDefaults()
	if err := params.Validate(VariantExactSync); err != nil {
		return nil, err
	}
	if err := params.CheckInput(input, false); err != nil {
		return nil, err
	}
	if int(self) < 0 || int(self) >= params.N {
		return nil, fmt.Errorf("core: self=%d out of range n=%d", self, params.N)
	}
	def := geometry.NewVector(params.D)
	multi, err := broadcast.NewMultiEIG(params.N, params.F, self, input, def)
	if err != nil {
		return nil, err
	}
	return &ExactNode{params: params, self: self, multi: multi}, nil
}

// Rounds returns the number of synchronous rounds the algorithm runs (f+1).
func (e *ExactNode) Rounds() int { return e.multi.Rounds() }

// Outbox implements sim.SyncNode.
func (e *ExactNode) Outbox(r int) map[sim.ProcID]sim.Message { return e.multi.Outbox(r) }

// Deliver implements sim.SyncNode: after the broadcast stage completes, the
// decision is the deterministic point of Γ(S).
func (e *ExactNode) Deliver(r int, inbox map[sim.ProcID]sim.Message) {
	e.multi.Deliver(r, inbox)
	if !e.multi.Done() || e.decision != nil || e.err != nil {
		return
	}
	decisions := e.multi.Decisions()
	s := geometry.NewMultiset(e.params.D)
	for _, v := range decisions {
		if err := s.Add(v); err != nil {
			e.err = err
			return
		}
	}
	e.s = s
	// The engine memoizes on the canonical multiset: all n correct
	// processes hold the identical agreed S, so only the first to reach
	// this point pays for the lex-min LP.
	pt, err := e.params.engine().SafePoint(s, e.params.F, e.params.Method)
	if err != nil {
		// Γ(S) is non-empty whenever n ≥ (d+1)f+1 (Lemma 1), which
		// Validate enforced; reaching this indicates a real failure.
		e.err = fmt.Errorf("core: exact BVC decision: %w", err)
		return
	}
	e.decision = pt
}

// Done implements sim.SyncNode.
func (e *ExactNode) Done() bool { return e.decision != nil || e.err != nil }

// Decision returns the decided vector once the algorithm has terminated.
func (e *ExactNode) Decision() (geometry.Vector, error) {
	if e.err != nil {
		return nil, e.err
	}
	if e.decision == nil {
		return nil, fmt.Errorf("core: exact BVC not terminated")
	}
	return e.decision.Clone(), nil
}

// AgreedMultiset returns the multiset S of broadcast-agreed inputs (useful
// to verify Step 1 postconditions in tests); nil before termination.
func (e *ExactNode) AgreedMultiset() *geometry.Multiset {
	if e.s == nil {
		return nil
	}
	return e.s.Clone()
}

// CoordWiseNode is the baseline the paper's introduction warns about: it
// agrees on S exactly like ExactNode, but then runs scalar consensus per
// dimension — deciding, in each dimension l, the (f+1)-th smallest of the
// agreed values. Each coordinate individually satisfies scalar validity,
// yet the assembled vector can fall outside the convex hull of the correct
// inputs (experiment E8 reproduces the paper's probability-vector
// counterexample).
type CoordWiseNode struct {
	params Params
	multi  *broadcast.MultiEIG

	decision geometry.Vector
	err      error
}

var _ sim.SyncNode = (*CoordWiseNode)(nil)

// NewCoordWiseNode builds the coordinate-wise baseline node. Note the
// weaker requirement n ≥ 3f+1 regardless of d — the seeming advantage over
// Exact BVC's (d+1)f+1 is precisely what the broken validity pays for.
func NewCoordWiseNode(params Params, self sim.ProcID, input geometry.Vector) (*CoordWiseNode, error) {
	params = params.WithDefaults()
	if params.D < 1 {
		return nil, fmt.Errorf("core: dimension d=%d, want ≥ 1", params.D)
	}
	if params.F < 0 {
		return nil, fmt.Errorf("core: fault bound f=%d, want ≥ 0", params.F)
	}
	if params.N < 3*params.F+1 {
		return nil, fmt.Errorf("core: scalar consensus requires n ≥ 3f+1, got n=%d f=%d", params.N, params.F)
	}
	if int(self) < 0 || int(self) >= params.N {
		return nil, fmt.Errorf("core: self=%d out of range n=%d", self, params.N)
	}
	if err := params.CheckInput(input, false); err != nil {
		return nil, err
	}
	def := geometry.NewVector(params.D)
	multi, err := broadcast.NewMultiEIG(params.N, params.F, self, input, def)
	if err != nil {
		return nil, err
	}
	return &CoordWiseNode{params: params, multi: multi}, nil
}

// Outbox implements sim.SyncNode.
func (c *CoordWiseNode) Outbox(r int) map[sim.ProcID]sim.Message { return c.multi.Outbox(r) }

// Deliver implements sim.SyncNode.
func (c *CoordWiseNode) Deliver(r int, inbox map[sim.ProcID]sim.Message) {
	c.multi.Deliver(r, inbox)
	if !c.multi.Done() || c.decision != nil {
		return
	}
	decisions := c.multi.Decisions()
	out := geometry.NewVector(c.params.D)
	for l := 0; l < c.params.D; l++ {
		col := geometry.NewMultiset(1)
		for _, v := range decisions {
			if err := col.Add(geometry.Vector{v[l]}); err != nil {
				c.err = err
				return
			}
		}
		lo, _, err := safearea.Interval(col, c.params.F)
		if err != nil {
			c.err = err
			return
		}
		out[l] = lo // scalar-valid per dimension, yet not vector-valid
	}
	c.decision = out
}

// Done implements sim.SyncNode.
func (c *CoordWiseNode) Done() bool { return c.decision != nil || c.err != nil }

// Decision returns the decided vector once terminated.
func (c *CoordWiseNode) Decision() (geometry.Vector, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.decision == nil {
		return nil, fmt.Errorf("core: coordinate-wise consensus not terminated")
	}
	return c.decision.Clone(), nil
}
