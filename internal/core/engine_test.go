package core

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/geometry"
	"repro/internal/safearea"
)

func randomTuples(rng *rand.Rand, n, d int) []tuple {
	out := make([]tuple, n)
	for i := range out {
		v := geometry.NewVector(d)
		for l := range v {
			v[l] = rng.Float64()
		}
		out[i] = tuple{origin: i, value: v}
	}
	return out
}

// TestEngineDeterminismAcrossWorkersAndCache: the Zi average must be
// byte-identical (bit-exact, via geometry.Key) for every engine
// configuration — workers ∈ {1, 4, GOMAXPROCS} × memoization on/off — and
// across repeated calls on the same engine (cache hits), over random
// (n, d, f) instances. This is the property that makes the engine knobs
// safe: consensus correctness depends on all correct processes computing
// identical points.
func TestEngineDeterminismAcrossWorkersAndCache(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	workerSets := []int{1, 4, runtime.GOMAXPROCS(0)}
	cases := []struct{ d, f int }{{1, 2}, {2, 1}, {2, 2}, {3, 1}}
	for _, c := range cases {
		n := MinProcesses(VariantRestrictedSync, c.d, c.f)
		tuples := randomTuples(rng, n, c.d)
		k := n - c.f
		var wantKey string
		var wantSize int
		for _, workers := range workerSets {
			for _, memo := range []bool{true, false} {
				eng := NewEngine(workers, memo)
				for rep := 0; rep < 2; rep++ { // rep 1 hits the memo table
					got, size, err := eng.AverageGamma(tuples, k, c.f, safearea.MethodAuto)
					if err != nil {
						t.Fatalf("d=%d f=%d workers=%d memo=%v: %v", c.d, c.f, workers, memo, err)
					}
					key := geometry.Key(got)
					if wantKey == "" {
						wantKey, wantSize = key, size
						continue
					}
					if key != wantKey || size != wantSize {
						t.Fatalf("d=%d f=%d workers=%d memo=%v rep=%d: Zi average diverged: %v (size %d)",
							c.d, c.f, workers, memo, rep, got, size)
					}
				}
			}
		}
	}
}

// TestEngineSafePointMatchesSafearea: the memoized SafePoint must equal the
// direct safearea computation bit-for-bit, including on cache hits.
func TestEngineSafePointMatchesSafearea(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []struct{ d, f int }{{2, 1}, {2, 2}, {3, 1}} {
		n := MinProcesses(VariantExactSync, c.d, c.f)
		ms := geometry.NewMultiset(c.d)
		for i := 0; i < n; i++ {
			v := geometry.NewVector(c.d)
			for l := range v {
				v[l] = rng.Float64()
			}
			if err := ms.Add(v); err != nil {
				t.Fatal(err)
			}
		}
		want, err := safearea.PointWith(ms, c.f, safearea.MethodAuto)
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(2, true)
		for rep := 0; rep < 3; rep++ {
			got, err := eng.SafePoint(ms, c.f, safearea.MethodAuto)
			if err != nil {
				t.Fatal(err)
			}
			if geometry.Key(got) != geometry.Key(want) {
				t.Fatalf("d=%d f=%d rep=%d: engine %v != safearea %v", c.d, c.f, rep, got, want)
			}
		}
	}
}

// TestEngineMatchesReferenceAverage: the streaming engine must reproduce the
// eager serial reference (subset materialization + geometry.Mean) exactly.
func TestEngineMatchesReferenceAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// n = (d+2)f+1 as in restricted sync, so every (n−f)-subset satisfies
	// Lemma 1's (d+1)f+1 bound and Γ is non-empty.
	n, d, f := 7, 1, 2
	tuples := randomTuples(rng, n, d)
	k := n - f

	// Reference: materialize every subset, then average.
	var sets [][]tuple
	idx := make([]int, k)
	var recurse func(start, pos int)
	recurse = func(start, pos int) {
		if pos == k {
			set := make([]tuple, k)
			for i, j := range idx {
				set[i] = tuples[j]
			}
			sets = append(sets, set)
			return
		}
		for j := start; j <= n-(k-pos); j++ {
			idx[pos] = j
			recurse(j+1, pos+1)
		}
	}
	recurse(0, 0)
	want, wantSize, err := averageGammaPoints(sets, f, safearea.MethodAuto)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3} {
		eng := NewEngine(workers, true)
		got, size, err := eng.AverageGamma(tuples, k, f, safearea.MethodAuto)
		if err != nil {
			t.Fatal(err)
		}
		if size != wantSize || geometry.Key(got) != geometry.Key(want) {
			t.Fatalf("workers=%d: engine %v (|Zi|=%d) != reference %v (|Zi|=%d)", workers, got, size, want, wantSize)
		}
		gotSets, sizeSets, err := eng.AverageGammaSets(sets, f, safearea.MethodAuto)
		if err != nil {
			t.Fatal(err)
		}
		if sizeSets != wantSize || geometry.Key(gotSets) != geometry.Key(want) {
			t.Fatalf("workers=%d: AverageGammaSets diverged from reference", workers)
		}
	}
}

// BenchmarkAverageGammaCachedVsUncached measures the value of the Γ-point
// memoization on the restricted-round hot path: one Zi construction for a
// fixed B set (n=9, d=2, f=2 → C(9,7)=36 lex-min LP solves uncached, 36
// table hits cached).
func BenchmarkAverageGammaCachedVsUncached(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n, d, f := 9, 2, 2 // (d+2)f+1: the restricted-sync bound
	tuples := randomTuples(rng, n, d)
	k := n - f

	b.Run("uncached", func(b *testing.B) {
		eng := NewEngine(1, false)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.AverageGamma(tuples, k, f, safearea.MethodLexMinLP); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		eng := NewEngine(1, true)
		if _, _, err := eng.AverageGamma(tuples, k, f, safearea.MethodLexMinLP); err != nil {
			b.Fatal(err) // warm the table outside the timed loop
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.AverageGamma(tuples, k, f, safearea.MethodLexMinLP); err != nil {
				b.Fatal(err)
			}
		}
	})
}
