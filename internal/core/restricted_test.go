package core_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/sim"
)

func restrictedParams(n, f, d int, eps float64) core.Params {
	return core.Params{
		N: n, F: f, D: d,
		Epsilon: eps,
		Bounds:  geometry.UniformBox(d, 0, 1),
	}
}

// runRestrictedSync executes the restricted synchronous algorithm.
func runRestrictedSync(t *testing.T, params core.Params, inputs []geometry.Vector, byz map[int]sim.SyncNode) (*core.Execution, []*core.RestrictedSyncNode) {
	t.Helper()
	nodes := make([]sim.SyncNode, params.N)
	impls := make([]*core.RestrictedSyncNode, params.N)
	for i := 0; i < params.N; i++ {
		if b, ok := byz[i]; ok {
			nodes[i] = b
			continue
		}
		nd, err := core.NewRestrictedSyncNode(params, sim.ProcID(i), inputs[i])
		if err != nil {
			t.Fatalf("NewRestrictedSyncNode(%d): %v", i, err)
		}
		impls[i] = nd
		nodes[i] = nd
	}
	var roundCap int
	for _, nd := range impls {
		if nd != nil && nd.Rounds()+1 > roundCap {
			roundCap = nd.Rounds() + 1
		}
	}
	if _, err := sim.RunSync(nodes, roundCap); err != nil && !errors.Is(err, sim.ErrRoundCap) {
		t.Fatalf("RunSync: %v", err)
	}
	// Byzantine nodes may run forever; only correct termination matters.
	for i, nd := range impls {
		if nd != nil && !nd.Done() {
			t.Fatalf("correct node %d did not terminate", i)
		}
	}
	ex := &core.Execution{D: params.D, F: params.F}
	for i := 0; i < params.N; i++ {
		o := core.Outcome{ID: i}
		if impls[i] != nil {
			o.Correct = true
			o.Input = inputs[i]
			dec, err := impls[i].Decision()
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
			o.Decision = dec
		}
		ex.Outcomes = append(ex.Outcomes, o)
	}
	return ex, impls
}

func TestRestrictedSyncAllCorrect(t *testing.T) {
	params := restrictedParams(5, 1, 2, 0.2)
	rng := rand.New(rand.NewSource(30))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	ex, _ := runRestrictedSync(t, params, inputs, nil)
	if err := ex.VerifyApprox(params.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestRestrictedSyncSilent(t *testing.T) {
	// A silent process defaults to the all-0 vector at every receiver;
	// the f-exclusion in Γ must absorb it.
	params := restrictedParams(5, 1, 2, 0.2)
	rng := rand.New(rand.NewSource(31))
	inputs := boxInputs(rng, params.N, params.D, 0.5, 1)
	ex, _ := runRestrictedSync(t, params, inputs, map[int]sim.SyncNode{0: adversary.SilentSync{}})
	if err := ex.VerifyApprox(params.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestRestrictedSyncEquivocator(t *testing.T) {
	params := restrictedParams(5, 1, 2, 0.2)
	rng := rand.New(rand.NewSource(32))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	rounds := 64
	byz := adversary.NewStateEquivocator(params.N, rounds, 2, vec(0, 0), vec(1, 1))
	ex, _ := runRestrictedSync(t, params, inputs, map[int]sim.SyncNode{3: byz})
	if err := ex.VerifyApprox(params.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestRestrictedSyncLure(t *testing.T) {
	params := restrictedParams(5, 1, 2, 0.1)
	inputs := []geometry.Vector{
		vec(0.4, 0.4), vec(0.5, 0.5), vec(0.6, 0.4), vec(0.5, 0.6), nil,
	}
	byz := adversary.NewStateLure(params.N, 256, vec(1, 1))
	ex, _ := runRestrictedSync(t, params, inputs, map[int]sim.SyncNode{4: byz})
	if err := ex.VerifyApprox(params.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
	for _, o := range ex.Outcomes {
		if !o.Correct {
			continue
		}
		for l, x := range o.Decision {
			if x < 0.4-1e-6 || x > 0.6+1e-6 {
				t.Errorf("process %d decision[%d] = %g lured outside correct range", o.ID, l, x)
			}
		}
	}
}

func TestRestrictedSyncRandom(t *testing.T) {
	params := restrictedParams(5, 1, 2, 0.2)
	rng := rand.New(rand.NewSource(33))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	byz := adversary.NewStateRandom(params.N, 256, geometry.UniformBox(params.D, -3, 3), rng)
	ex, _ := runRestrictedSync(t, params, inputs, map[int]sim.SyncNode{2: byz})
	if err := ex.VerifyApprox(params.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestRestrictedSyncContraction(t *testing.T) {
	params := restrictedParams(5, 1, 2, 0.15)
	rng := rand.New(rand.NewSource(34))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	_, impls := runRestrictedSync(t, params, inputs, nil)
	gamma := core.Gamma(core.VariantRestrictedSync, params.N, params.F, false)
	var minLen int = -1
	var hs [][]geometry.Vector
	for _, nd := range impls {
		h := nd.History()
		hs = append(hs, h)
		if minLen < 0 || len(h) < minLen {
			minLen = len(h)
		}
	}
	for round := 1; round < minLen; round++ {
		prev := geometry.NewMultiset(params.D)
		cur := geometry.NewMultiset(params.D)
		for _, h := range hs {
			if err := prev.Add(h[round-1]); err != nil {
				t.Fatal(err)
			}
			if err := cur.Add(h[round]); err != nil {
				t.Fatal(err)
			}
		}
		ps, err := prev.SpreadInf()
		if err != nil {
			t.Fatal(err)
		}
		cs, err := cur.SpreadInf()
		if err != nil {
			t.Fatal(err)
		}
		if cs > (1-gamma)*ps+1e-9 {
			t.Errorf("round %d: spread %g > (1−γ)·%g", round, cs, ps)
		}
	}
}

func TestRestrictedSyncValidation(t *testing.T) {
	// n = (d+2)f is one short of the bound.
	if _, err := core.NewRestrictedSyncNode(restrictedParams(4, 1, 2, 0.1), 0, vec(0, 0)); err == nil {
		t.Error("n below bound: expected error")
	}
	nd, err := core.NewRestrictedSyncNode(restrictedParams(5, 1, 2, 0.1), 0, vec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nd.Decision(); err == nil {
		t.Error("expected not-terminated error")
	}
}

// runRestrictedAsync executes the restricted asynchronous algorithm on the
// discrete-event engine.
func runRestrictedAsync(t *testing.T, params core.Params, inputs []geometry.Vector,
	byz map[int]sim.Node, seed int64, delay sim.DelayModel) (*core.Execution, []*core.RestrictedAsyncNode) {
	t.Helper()
	nodes := make([]sim.Node, params.N)
	impls := make([]*core.RestrictedAsyncNode, params.N)
	for i := 0; i < params.N; i++ {
		if b, ok := byz[i]; ok {
			nodes[i] = b
			continue
		}
		nd, err := core.NewRestrictedAsyncNode(params, sim.ProcID(i), inputs[i])
		if err != nil {
			t.Fatalf("NewRestrictedAsyncNode(%d): %v", i, err)
		}
		impls[i] = nd
		nodes[i] = nd
	}
	eng, err := sim.NewEngine(sim.Config{N: params.N, Seed: seed, Delay: delay}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	ex := &core.Execution{D: params.D, F: params.F}
	for i := 0; i < params.N; i++ {
		o := core.Outcome{ID: i}
		if impls[i] != nil {
			o.Correct = true
			o.Input = inputs[i]
			dec, err := impls[i].Decision()
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
			o.Decision = dec
		}
		ex.Outcomes = append(ex.Outcomes, o)
	}
	return ex, impls
}

func TestRestrictedAsyncAllCorrect(t *testing.T) {
	params := restrictedParams(7, 1, 2, 0.2) // (d+4)f+1 = 7
	rng := rand.New(rand.NewSource(40))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	ex, _ := runRestrictedAsync(t, params, inputs, nil, 41,
		sim.UniformDelay{Min: time.Millisecond, Max: 20 * time.Millisecond})
	if err := ex.VerifyApprox(params.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestRestrictedAsyncSilentByzantine(t *testing.T) {
	params := restrictedParams(7, 1, 2, 0.2)
	rng := rand.New(rand.NewSource(42))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	ex, _ := runRestrictedAsync(t, params, inputs,
		map[int]sim.Node{6: adversary.SilentAsync{}}, 43,
		sim.UniformDelay{Min: time.Millisecond, Max: 10 * time.Millisecond})
	if err := ex.VerifyApprox(params.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestRestrictedAsyncEquivocatingFlood(t *testing.T) {
	// The Byzantine process floods per-recipient contradictory states for
	// every round up front.
	params := restrictedParams(7, 1, 2, 0.25)
	rng := rand.New(rand.NewSource(44))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	gamma := core.Gamma(core.VariantRestrictedAsync, params.N, params.F, false)
	rounds := core.RoundBound(gamma, 1, params.Epsilon)
	flood := &adversary.FuncAsync{
		OnInit: func(api sim.API) {
			for t := 1; t <= rounds; t++ {
				for to := 0; to < params.N; to++ {
					v := vec(0, 0)
					if to%2 == 0 {
						v = vec(1, 1)
					}
					api.Send(sim.ProcID(to), core.StateMsg{Round: t, Value: v})
				}
			}
		},
	}
	ex, _ := runRestrictedAsync(t, params, inputs, map[int]sim.Node{3: flood}, 45,
		sim.UniformDelay{Min: time.Millisecond, Max: 10 * time.Millisecond})
	if err := ex.VerifyApprox(params.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestRestrictedAsyncAdversarialScheduling(t *testing.T) {
	// The scheduler starves one correct process; the rest proceed without
	// it (that is the point of waiting for only n−f−1 others), and the
	// starved process still converges to within ε.
	params := restrictedParams(7, 1, 2, 0.2)
	rng := rand.New(rand.NewSource(46))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	delay := sim.StarveSenders{
		Inner: sim.ConstantDelay{D: time.Millisecond},
		Slow:  map[sim.ProcID]bool{2: true},
		Extra: 300 * time.Millisecond,
	}
	ex, _ := runRestrictedAsync(t, params, inputs, nil, 47, delay)
	if err := ex.VerifyApprox(params.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestRestrictedAsyncScalar(t *testing.T) {
	// d = 1: n ≥ 5f+1 = 6 — the classic Dolev et al. bound, recovered as
	// the d = 1 case of Theorem 6.
	params := restrictedParams(6, 1, 1, 0.1)
	inputs := []geometry.Vector{vec(0), vec(0.2), vec(0.4), vec(0.6), vec(0.8), vec(1)}
	ex, _ := runRestrictedAsync(t, params, inputs, nil, 48,
		sim.ExponentialDelay{Mean: 3 * time.Millisecond})
	if err := ex.VerifyApprox(params.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestRestrictedAsyncValidation(t *testing.T) {
	// n = (d+4)f is one short.
	if _, err := core.NewRestrictedAsyncNode(restrictedParams(6, 1, 2, 0.1), 0, vec(0, 0)); err == nil {
		t.Error("n below bound: expected error")
	}
	nd, err := core.NewRestrictedAsyncNode(restrictedParams(7, 1, 2, 0.1), 0, vec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nd.Decision(); err == nil {
		t.Error("expected not-terminated error")
	}
}

func TestRestrictedAsyncHistoryContracts(t *testing.T) {
	params := restrictedParams(7, 1, 2, 0.2)
	rng := rand.New(rand.NewSource(49))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	_, impls := runRestrictedAsync(t, params, inputs, nil, 50,
		sim.ConstantDelay{D: time.Millisecond})
	// Spread across correct states must reach ≤ ε at the final round.
	last := geometry.NewMultiset(params.D)
	for _, nd := range impls {
		h := nd.History()
		if err := last.Add(h[len(h)-1]); err != nil {
			t.Fatal(err)
		}
	}
	s, err := last.SpreadInf()
	if err != nil {
		t.Fatal(err)
	}
	if s > params.Epsilon {
		t.Errorf("final spread %g > ε = %g", s, params.Epsilon)
	}
}

// TestRestrictedMaxRoundsCap: Params.MaxRounds caps the analytic horizon
// (the γ-aware budget path of large sweeps) but never raises it.
func TestRestrictedMaxRoundsCap(t *testing.T) {
	params := restrictedParams(5, 1, 2, 0.1)
	analytic, err := core.NewRestrictedSyncNode(params, 0, geometry.Vector{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	params.MaxRounds = 4
	capped, err := core.NewRestrictedSyncNode(params, 0, geometry.Vector{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Rounds() != 4 {
		t.Errorf("capped rounds = %d, want 4", capped.Rounds())
	}
	if analytic.Rounds() <= 4 {
		t.Fatalf("test premise broken: analytic bound %d not above the cap", analytic.Rounds())
	}
	params.MaxRounds = analytic.Rounds() + 100
	loose, err := core.NewRestrictedSyncNode(params, 0, geometry.Vector{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Rounds() != analytic.Rounds() {
		t.Errorf("MaxRounds above the analytic bound changed the horizon: %d vs %d", loose.Rounds(), analytic.Rounds())
	}

	aParams := restrictedParams(7, 1, 2, 0.1)
	aParams.MaxRounds = 3
	async, err := core.NewRestrictedAsyncNode(aParams, 0, geometry.Vector{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if async.Rounds() != 3 {
		t.Errorf("async capped rounds = %d, want 3", async.Rounds())
	}
}
