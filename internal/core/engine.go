package core

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/combin"
	"repro/internal/geometry"
	"repro/internal/safearea"
)

// Engine is the Γ-point computation engine shared by every algorithm
// variant: it owns the bounded worker pool that fans the per-candidate-set
// safe-point solves out across CPUs, and the memoization table that collapses
// identical solves to one. Both optimizations are exact — parallel and
// serial, cached and uncached runs produce bit-identical results:
//
//   - Parallelism: the C(|B|, k) candidate sets are streamed by
//     lexicographic rank (combin.Unrank gives workers random access, so the
//     subset list is never materialized), each Γ-point depends only on its
//     own candidate set, and the Zi average is reduced in rank order.
//   - Memoization: by Observation 2 of the paper, the deterministic point
//     zij of a candidate set depends only on the canonical (origin-sorted)
//     multiset of values, so any two processes — and any two rounds, and any
//     two of the n simulated nodes of one execution — holding the same set
//     compute the same point. The cache key is exactly that canonical
//     multiset (bit-exact geometry.Key encoding) plus (d, f, method).
//
// The memoization table is effectively round-scoped: each round's states
// move, so old entries stop being hit; the table is dropped wholesale when
// it exceeds a fixed bound, keeping memory O(1) over long executions.
//
// An Engine is safe for concurrent use by multiple goroutines.
type Engine struct {
	workers int
	memoize bool

	mu     sync.Mutex
	memo   map[string]*gammaEntry
	ziMemo map[string]*ziEntry

	// Radon-family cache (restricted-async f = 1 regime): per-B-set subset
	// walks keyed by the canonical member-value sequence, with a drop-one
	// sub-key index so a new B set can be built as a single-member delta of
	// a sibling's family (safearea.RadonFamily), reusing the untouched
	// subsets' points outright.
	fams   map[string]*famEntry
	famSub map[string]famRef
}

// famEntry is one cached RadonFamily build (compute under once, like the
// Γ-point entries).
type famEntry struct {
	once sync.Once
	fam  *safearea.RadonFamily
	mean geometry.Vector
	n    int
	err  error
}

// famRef locates a family that contains a given drop-one sub-pool: the
// family's cache key plus the dropped slot.
type famRef struct {
	key  string
	slot int
}

// maxMemoEntries bounds the memoization table; exceeding it drops the whole
// table (cheap, deterministic, and correct — entries are pure functions of
// their key). maxZiEntries bounds the coarser round-level table the same
// way.
const (
	maxMemoEntries = 1 << 15
	maxZiEntries   = 1 << 12
	maxFamEntries  = 1 << 8
)

type gammaEntry struct {
	once sync.Once
	pt   geometry.Vector // read-only after once
	err  error
	// ok is meaningful for sub-family (prefix) entries only: whether the
	// prefix computation certified its point for every superset sharing the
	// prefix. An uncertified entry forces callers onto the full-multiset
	// path, exactly as the from-scratch ladder would fall back.
	ok bool
}

// ziEntry memoizes a whole AverageGamma reduction: the Zi mean and size of
// one ordered (origin, value) tuple sequence. In the synchronous exchange
// all correct processes hold identical inboxes, so n−f reductions per round
// collapse to one.
type ziEntry struct {
	once sync.Once
	pt   geometry.Vector // read-only after once
	n    int
	err  error
}

// NewEngine returns an engine with the given worker bound (≤ 0 means
// GOMAXPROCS) and memoization switch.
func NewEngine(workers int, memoize bool) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers, memoize: memoize}
	if memoize {
		e.memo = make(map[string]*gammaEntry)
		e.ziMemo = make(map[string]*ziEntry)
		e.fams = make(map[string]*famEntry)
		e.famSub = make(map[string]famRef)
	}
	return e
}

// defaultEngine backs every node whose Params carry no explicit Engine:
// parallel across GOMAXPROCS and memoized, so the n simulated processes of
// one execution share work by default.
var defaultEngine = NewEngine(0, true)

// DefaultEngine returns the process-wide shared engine.
func DefaultEngine() *Engine { return defaultEngine }

// Workers returns the resolved worker bound.
func (e *Engine) Workers() int { return e.workers }

// Reset drops every memoized Γ-point and round reduction.
func (e *Engine) Reset() {
	if e.memo == nil {
		return
	}
	e.mu.Lock()
	e.memo = make(map[string]*gammaEntry)
	e.ziMemo = make(map[string]*ziEntry)
	e.fams = make(map[string]*famEntry)
	e.famSub = make(map[string]famRef)
	e.mu.Unlock()
}

// entry returns the memo entry for key, creating it if needed.
func (e *Engine) entry(key []byte) *gammaEntry {
	e.mu.Lock()
	ent, ok := e.memo[string(key)]
	if !ok {
		if len(e.memo) >= maxMemoEntries {
			e.memo = make(map[string]*gammaEntry)
		}
		ent = &gammaEntry{}
		e.memo[string(key)] = ent
	}
	e.mu.Unlock()
	return ent
}

// ziEntryFor returns the round-level memo entry for key.
func (e *Engine) ziEntryFor(key []byte) *ziEntry {
	e.mu.Lock()
	ent, ok := e.ziMemo[string(key)]
	if !ok {
		if len(e.ziMemo) >= maxZiEntries {
			e.ziMemo = make(map[string]*ziEntry)
		}
		ent = &ziEntry{}
		e.ziMemo[string(key)] = ent
	}
	e.mu.Unlock()
	return ent
}

// appendMeta prefixes a memo key with the non-value parameters the Γ-point
// depends on.
func appendMeta(dst []byte, d, f int, method safearea.Method) []byte {
	dst = append(dst, byte(method))
	dst = binary.BigEndian.AppendUint32(dst, uint32(d))
	dst = binary.BigEndian.AppendUint32(dst, uint32(f))
	return dst
}

// SafePoint returns the deterministic Γ-point of (y, f) under method,
// memoized on the canonical multiset key. In Exact BVC all n processes hold
// the identical agreed multiset S, so the n-fold recomputation of the same
// lex-min LP collapses to a single solve.
func (e *Engine) SafePoint(y *geometry.Multiset, f int, method safearea.Method) (geometry.Vector, error) {
	if !e.memoize {
		gammaStats.solves.Add(1)
		return safearea.PointWith(y, f, method)
	}
	key := make([]byte, 0, 9+8*y.Len()*y.Dim())
	key = appendMeta(key, y.Dim(), f, method)
	for i := 0; i < y.Len(); i++ {
		key = geometry.AppendKey(key, y.At(i))
	}
	ent := e.entry(key)
	fresh := false
	ent.once.Do(func() {
		fresh = true
		ent.pt, ent.err = safearea.PointWith(y, f, method)
	})
	if fresh {
		gammaStats.solves.Add(1)
	} else {
		gammaStats.cacheHits.Add(1)
	}
	if ent.err != nil {
		return nil, ent.err
	}
	return ent.pt.Clone(), nil
}

// gammaScratch is one worker's reusable state for per-candidate-set
// Γ-points: the gathered and origin-sorted tuple selection and the memo key
// buffer.
type gammaScratch struct {
	e      *Engine
	f      int
	method safearea.Method
	d      int
	sel    []tuple
	key    []byte
}

func (e *Engine) scratch(k, d, f int, method safearea.Method) gammaScratch {
	return gammaScratch{
		e: e, f: f, method: method, d: d,
		sel: make([]tuple, 0, k),
		key: make([]byte, 0, 9+8*k*d),
	}
}

// point computes (or recalls) the Γ-point of the candidate set selected from
// tuples by idx. The returned vector is shared with the memo table and must
// not be mutated.
func (sc *gammaScratch) point(tuples []tuple, idx []int) (geometry.Vector, error) {
	sel := sc.sel[:0]
	for _, j := range idx {
		sel = append(sel, tuples[j])
	}
	sc.sel = sel
	return sc.pointOfSel()
}

// pointOfSet is point for an explicitly materialized candidate set (the
// witness-optimization path).
func (sc *gammaScratch) pointOfSet(set []tuple) (geometry.Vector, error) {
	sc.sel = append(sc.sel[:0], set...)
	return sc.pointOfSel()
}

// prefixKeyTag separates sub-family (prefix) memo keys from full-multiset
// keys of the same byte length.
const prefixKeyTag = byte('P')

func (sc *gammaScratch) pointOfSel() (geometry.Vector, error) {
	sel := sc.sel
	// Canonicalize by origin id (Observation 2); insertion sort — the
	// selections are small and usually already sorted.
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0 && sel[j].origin < sel[j-1].origin; j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
		}
	}
	if !sc.e.memoize {
		gammaStats.solves.Add(1)
		return gammaPointOfSorted(sel, sc.f, sc.method)
	}
	// Sub-family (delta-key) lookup first: under the resolved method the
	// Γ-point depends only on the first m canonical members, so any two
	// candidate sets sharing that prefix — consecutive subsets of one walk,
	// sets of sibling processes, sets across rounds whose moved point sits
	// beyond the prefix — share one certified solve.
	if m := safearea.PrefixLen(len(sel), sc.d, sc.f, sc.method); m < len(sel) {
		key := appendMeta(sc.key[:0], sc.d, sc.f, sc.method)
		key = append(key, prefixKeyTag)
		for _, tp := range sel[:m] {
			key = geometry.AppendKey(key, tp.value)
		}
		sc.key = key
		ent := sc.e.entry(key)
		fresh := false
		ent.once.Do(func() {
			fresh = true
			ms := geometry.NewMultiset(sc.d)
			for _, tp := range sel[:m] {
				if err := ms.Add(tp.value); err != nil {
					ent.err = err
					return
				}
			}
			ent.pt, ent.ok, ent.err = safearea.PointOnPrefix(ms, sc.f, sc.method)
		})
		if ent.err != nil {
			return nil, ent.err
		}
		if ent.ok {
			if fresh {
				gammaStats.solves.Add(1)
			} else {
				gammaStats.prefixHits.Add(1)
			}
			return ent.pt, nil
		}
		// Uncertified prefix: the superset's own ladder (including its
		// fallbacks) decides, keyed by the full multiset below.
	}
	key := appendMeta(sc.key[:0], sc.d, sc.f, sc.method)
	for _, tp := range sel {
		key = geometry.AppendKey(key, tp.value)
	}
	sc.key = key
	ent := sc.e.entry(key)
	fresh := false
	ent.once.Do(func() {
		fresh = true
		ent.pt, ent.err = gammaPointOfSorted(sel, sc.f, sc.method)
	})
	if fresh {
		gammaStats.solves.Add(1)
	} else if ent.err == nil {
		gammaStats.cacheHits.Add(1)
	}
	return ent.pt, ent.err
}

// ziKeyTag separates round-level AverageGamma memo keys from per-set keys.
const ziKeyTag = byte('Z')

// AverageGamma computes Zi = {Γ-point of C : C ⊆ tuples, |C| = k} and
// returns its average — eq. (9) of the paper — along with |Zi|. Subsets are
// streamed (never materialized); with more than one worker the solves run
// concurrently and are reduced in lexicographic rank order, so the result is
// bit-identical to the serial computation.
//
// With memoization on, the whole reduction is additionally keyed by the
// ordered (origin, value) tuple sequence: in the synchronous state exchange
// every correct process holds the identical inbox, so the n−f per-process
// reductions of one round collapse to a single subset walk.
func (e *Engine) AverageGamma(tuples []tuple, k, f int, method safearea.Method) (geometry.Vector, int, error) {
	n := len(tuples)
	if k <= 0 || k > n {
		return nil, 0, fmt.Errorf("core: subset size %d of %d tuples", k, n)
	}
	d := tuples[0].value.Dim()
	// Canonicalize the reduction: sort the B set by origin id, so the
	// whole computation — the subset enumeration order, the mean's
	// floating-point operation order, and the round-level memo key — is a
	// function of the SET rather than the arrival order. Synchronous
	// inboxes arrive pre-sorted (checked first, keeping that hot path
	// copy-free); restricted-async B sets arrive in delivery order, and
	// without canonicalization two processes holding the identical set
	// would key (and reduce) it differently.
	presorted := true
	for i := 1; i < n; i++ {
		if tuples[i].origin < tuples[i-1].origin {
			presorted = false
			break
		}
	}
	if !presorted {
		sorted := make([]tuple, n)
		copy(sorted, tuples)
		for i := 1; i < n; i++ {
			for j := i; j > 0 && sorted[j].origin < sorted[j-1].origin; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		tuples = sorted
	}
	if !e.memoize {
		return e.averageGammaCompute(tuples, k, f, method, d)
	}
	key := make([]byte, 0, 10+4+(4+8*d)*n)
	key = appendMeta(key, d, f, method)
	key = append(key, ziKeyTag)
	key = binary.BigEndian.AppendUint32(key, uint32(k))
	for _, tp := range tuples {
		key = binary.BigEndian.AppendUint32(key, uint32(tp.origin))
		key = geometry.AppendKey(key, tp.value)
	}
	ent := e.ziEntryFor(key)
	fresh := false
	ent.once.Do(func() {
		fresh = true
		ent.pt, ent.n, ent.err = e.averageGammaCompute(tuples, k, f, method, d)
	})
	if ent.err != nil {
		return nil, 0, ent.err
	}
	if !fresh {
		gammaStats.roundHits.Add(1)
	}
	return ent.pt.Clone(), ent.n, nil
}

// averageGammaCompute is the uncached reduction behind AverageGamma.
// tuples are origin-sorted (canonical).
func (e *Engine) averageGammaCompute(tuples []tuple, k, f int, method safearea.Method, d int) (geometry.Vector, int, error) {
	if e.memoize && k == d+2 && len(tuples) > k &&
		safearea.Resolve(k, d, f, method) == safearea.MethodRadon {
		// Radon regime (restricted-async f = 1 at the shared-subset
		// bound): candidate sets are exactly prefix-sized, so neither the
		// sub-family nor the per-set memo can share work across B-set
		// deltas — the per-B-set incremental family walk does.
		return e.radonFamilyMean(tuples, k, f, method, d)
	}
	n := len(tuples)
	total := combin.Binomial(n, k)
	workers := e.workers
	if int64(workers) > total {
		workers = int(total)
	}
	if workers <= 1 {
		return e.averageGammaSerial(tuples, k, f, method, total, d)
	}

	points := make([]geometry.Vector, total)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := e.scratch(k, d, f, method)
			idx := make([]int, k)
			for {
				r := next.Add(1) - 1
				if r >= total || failed.Load() {
					return
				}
				idx, err := combin.Unrank(n, k, r, idx)
				if err != nil {
					failed.Store(true)
					return
				}
				pt, err := sc.point(tuples, idx)
				if err != nil {
					failed.Store(true)
					return
				}
				points[r] = pt
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		// Re-run serially for the deterministic first-failing-rank error.
		return e.averageGammaSerial(tuples, k, f, method, total, d)
	}
	return meanOf(points)
}

func (e *Engine) averageGammaSerial(tuples []tuple, k, f int, method safearea.Method, total int64, d int) (geometry.Vector, int, error) {
	points := make([]geometry.Vector, 0, total)
	sc := e.scratch(k, d, f, method)
	var gerr error
	err := combin.Combinations(len(tuples), k, func(idx []int) bool {
		pt, err := sc.point(tuples, idx)
		if err != nil {
			gerr = err
			return false
		}
		points = append(points, pt)
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	if gerr != nil {
		return nil, 0, fmt.Errorf("core: safe point of candidate set: %w", gerr)
	}
	return meanOf(points)
}

// famKeyTag separates Radon-family keys from the other memo key spaces.
const famKeyTag = byte('B')

// famKey builds the family cache key of the canonical pool, optionally
// skipping one slot (skip < 0 keys the full pool; otherwise the drop-one
// sub-key used for delta probing).
func famKey(dst []byte, tuples []tuple, d, f int, method safearea.Method, skip int) []byte {
	dst = appendMeta(dst, d, f, method)
	dst = append(dst, famKeyTag)
	for i, tp := range tuples {
		if i == skip {
			continue
		}
		dst = geometry.AppendKey(dst, tp.value)
	}
	return dst
}

// radonFamilyMean reduces one canonical B set through the Radon-family
// cache: an identical pool reuses the finished family outright; a pool
// differing from a cached sibling in one member is built as a delta
// (reused subset points count as prefix hits); only a pool with no cached
// relative is solved from scratch. Results are bit-identical to the plain
// subset walk — the family stores the identical points in the identical
// order.
func (e *Engine) radonFamilyMean(tuples []tuple, k, f int, method safearea.Method, d int) (geometry.Vector, int, error) {
	key := string(famKey(make([]byte, 0, 10+8*len(tuples)*d), tuples, d, f, method, -1))
	e.mu.Lock()
	ent, ok := e.fams[key]
	if !ok {
		if len(e.fams) >= maxFamEntries {
			e.fams = make(map[string]*famEntry)
			e.famSub = make(map[string]famRef)
		}
		ent = &famEntry{}
		e.fams[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		vals := make([]geometry.Vector, len(tuples))
		for i, tp := range tuples {
			vals[i] = tp.value
		}
		// Delta probe: find a finished sibling family missing exactly one
		// of our members (and holding one we lack). Sub-keys are only
		// registered after a family finishes building, so a hit is safe to
		// read without its lock.
		var (
			prev *safearea.RadonFamily
			iNew = -1
			jOld = -1
		)
		sub := make([]byte, 0, 10+8*len(tuples)*d)
		e.mu.Lock()
		for i := range tuples {
			sub = famKey(sub[:0], tuples, d, f, method, i)
			if ref, ok := e.famSub[string(sub)]; ok {
				if pe, ok := e.fams[ref.key]; ok && pe.fam != nil {
					prev, iNew, jOld = pe.fam, i, ref.slot
					break
				}
			}
		}
		e.mu.Unlock()
		var (
			fam            *safearea.RadonFamily
			reused, solved int
			err            error
		)
		if prev != nil {
			fam, reused, solved, err = safearea.NewRadonFamilyFrom(prev, vals, iNew, jOld, f, k, method)
		} else {
			fam, solved, err = safearea.NewRadonFamily(vals, f, k, method)
		}
		gammaStats.solves.Add(uint64(solved))
		gammaStats.prefixHits.Add(uint64(reused))
		if err != nil {
			ent.err = err
			return
		}
		mean, count, merr := fam.MeanPoint()
		ent.mean, ent.n, ent.err = mean, count, merr
		if merr != nil {
			return
		}
		// Publish the family and register the drop-one sub-keys under the
		// lock: delta probes read pe.fam under e.mu, and after a
		// bound-triggered cache clear a probe can reach a RECREATED entry
		// for this key while this builder is still finishing — the locked
		// publication keeps that visibility race out of the memory model.
		// Last registration wins; any finished family with the same
		// sub-pool yields identical reused points.
		e.mu.Lock()
		ent.fam = fam
		for i := range tuples {
			sub = famKey(sub[:0], tuples, d, f, method, i)
			e.famSub[string(sub)] = famRef{key: key, slot: i}
		}
		e.mu.Unlock()
	})
	if ent.err != nil {
		return nil, 0, ent.err
	}
	return ent.mean.Clone(), ent.n, nil
}

// AverageGammaSets is AverageGamma over explicitly materialized candidate
// sets — the Appendix-F witness-optimization path, where the sets are the
// witnesses' reported prefixes rather than all k-subsets.
func (e *Engine) AverageGammaSets(sets [][]tuple, f int, method safearea.Method) (geometry.Vector, int, error) {
	if len(sets) == 0 {
		return nil, 0, fmt.Errorf("core: no candidate sets")
	}
	if len(sets[0]) == 0 {
		return nil, 0, fmt.Errorf("core: empty candidate set")
	}
	d := sets[0][0].value.Dim()
	maxK := 0
	for _, set := range sets {
		if len(set) > maxK {
			maxK = len(set)
		}
	}
	workers := e.workers
	if workers > len(sets) {
		workers = len(sets)
	}

	points := make([]geometry.Vector, len(sets))
	if workers <= 1 {
		sc := e.scratch(maxK, d, f, method)
		for i, set := range sets {
			pt, err := sc.pointOfSet(set)
			if err != nil {
				return nil, 0, fmt.Errorf("core: safe point of candidate set: %w", err)
			}
			points[i] = pt
		}
		return meanOf(points)
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := e.scratch(maxK, d, f, method)
			for {
				r := int(next.Add(1) - 1)
				if r >= len(sets) || failed.Load() {
					return
				}
				pt, err := sc.pointOfSet(sets[r])
				if err != nil {
					failed.Store(true)
					return
				}
				points[r] = pt
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		// Deterministic error: recompute serially, reporting the first
		// failing set in index order. The computation is deterministic, so
		// the serial pass must fail too; the final error is a backstop.
		sc := e.scratch(maxK, d, f, method)
		for _, set := range sets {
			if _, err := sc.pointOfSet(set); err != nil {
				return nil, 0, fmt.Errorf("core: safe point of candidate set: %w", err)
			}
		}
		return nil, 0, fmt.Errorf("core: candidate-set solve failed in parallel but not serially")
	}
	return meanOf(points)
}

// meanOf averages the rank-ordered points through geometry.Mean — the one
// canonical averaging implementation, so serial, parallel and reference
// computations share the identical floating-point operation order.
func meanOf(points []geometry.Vector) (geometry.Vector, int, error) {
	avg, err := geometry.Mean(points)
	if err != nil {
		return nil, 0, err
	}
	return avg, len(points), nil
}
