package core_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/sim"
)

// asyncRun wires AsyncNodes (and Byzantine nodes) into the discrete-event
// engine and runs to quiescence.
type asyncRun struct {
	params core.Params
	cfg    core.AsyncConfig
	inputs []geometry.Vector
	nodes  []sim.Node
	impls  []*core.AsyncNode // nil for Byzantine slots
}

func newAsyncRun(t *testing.T, cfg core.AsyncConfig, inputs []geometry.Vector, byz map[int]sim.Node) *asyncRun {
	t.Helper()
	r := &asyncRun{params: cfg.Params, cfg: cfg, inputs: inputs}
	r.nodes = make([]sim.Node, cfg.N)
	r.impls = make([]*core.AsyncNode, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if b, ok := byz[i]; ok {
			r.nodes[i] = b
			continue
		}
		nd, err := core.NewAsyncNode(cfg, sim.ProcID(i), inputs[i])
		if err != nil {
			t.Fatalf("NewAsyncNode(%d): %v", i, err)
		}
		r.impls[i] = nd
		r.nodes[i] = nd
	}
	return r
}

func (r *asyncRun) run(t *testing.T, seed int64, delay sim.DelayModel) sim.Stats {
	t.Helper()
	eng, err := sim.NewEngine(sim.Config{
		N:     r.params.N,
		Seed:  seed,
		Delay: delay,
	}, r.nodes)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return stats
}

func (r *asyncRun) execution(t *testing.T) *core.Execution {
	t.Helper()
	ex := &core.Execution{D: r.params.D, F: r.params.F}
	for i := 0; i < r.params.N; i++ {
		o := core.Outcome{ID: i}
		if r.impls[i] != nil {
			o.Correct = true
			o.Input = r.inputs[i]
			dec, err := r.impls[i].Decision()
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
			o.Decision = dec
		}
		ex.Outcomes = append(ex.Outcomes, o)
	}
	return ex
}

// contractionOK checks the Appendix-E bound ρ[t] ≤ (1−γ)·ρ[t−1] over the
// aligned histories of the given (correct) nodes.
func contractionOK(t *testing.T, impls []*core.AsyncNode, gamma float64) {
	t.Helper()
	var hs [][]geometry.Vector
	minLen := -1
	for _, nd := range impls {
		if nd == nil {
			continue
		}
		h := nd.History()
		hs = append(hs, h)
		if minLen < 0 || len(h) < minLen {
			minLen = len(h)
		}
	}
	spread := func(round int) float64 {
		ms := geometry.NewMultiset(hs[0][0].Dim())
		for _, h := range hs {
			if err := ms.Add(h[round]); err != nil {
				t.Fatal(err)
			}
		}
		s, err := ms.SpreadInf()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for round := 1; round < minLen; round++ {
		prev, cur := spread(round-1), spread(round)
		if cur > (1-gamma)*prev+1e-9 {
			t.Errorf("round %d: spread %g > (1−γ)·%g (γ=%g) — Appendix E bound violated",
				round, cur, prev, gamma)
		}
	}
}

func asyncConfig(n, f, d int, eps float64) core.AsyncConfig {
	return core.AsyncConfig{
		Params: core.Params{
			N: n, F: f, D: d,
			Epsilon: eps,
			Bounds:  geometry.UniformBox(d, 0, 1),
		},
	}
}

func TestAsyncAllCorrect(t *testing.T) {
	cfg := asyncConfig(5, 1, 2, 0.2)
	rng := rand.New(rand.NewSource(7))
	inputs := boxInputs(rng, cfg.N, cfg.D, 0, 1)
	r := newAsyncRun(t, cfg, inputs, nil)
	r.run(t, 1, sim.UniformDelay{Min: time.Millisecond, Max: 20 * time.Millisecond})
	ex := r.execution(t)
	if err := ex.VerifyApprox(cfg.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
	gamma := core.Gamma(core.VariantApproxAsync, cfg.N, cfg.F, false)
	contractionOK(t, r.impls, gamma)
}

func TestAsyncWitnessOptimized(t *testing.T) {
	cfg := asyncConfig(5, 1, 2, 0.2)
	cfg.WitnessOpt = true
	rng := rand.New(rand.NewSource(8))
	inputs := boxInputs(rng, cfg.N, cfg.D, 0, 1)
	r := newAsyncRun(t, cfg, inputs, nil)
	r.run(t, 2, sim.UniformDelay{Min: time.Millisecond, Max: 20 * time.Millisecond})
	ex := r.execution(t)
	if err := ex.VerifyApprox(cfg.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
	// |Zi| ≤ n per round (Appendix F).
	for i, nd := range r.impls {
		if nd == nil {
			continue
		}
		for round, size := range nd.ZiSizes() {
			if size > cfg.N {
				t.Errorf("node %d round %d: |Zi| = %d > n = %d", i, round+1, size, cfg.N)
			}
		}
	}
	gamma := core.Gamma(core.VariantApproxAsync, cfg.N, cfg.F, true)
	contractionOK(t, r.impls, gamma)
}

func TestAsyncScalarMatchesAADResilience(t *testing.T) {
	// d = 1 gives (d+2)f+1 = 3f+1 — the optimal scalar bound of AAD.
	cfg := asyncConfig(4, 1, 1, 0.1)
	inputs := []geometry.Vector{vec(0), vec(0.3), vec(0.7), vec(1)}
	r := newAsyncRun(t, cfg, inputs, nil)
	r.run(t, 3, sim.ExponentialDelay{Mean: 5 * time.Millisecond})
	ex := r.execution(t)
	if err := ex.VerifyApprox(cfg.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestAsyncSilentByzantine(t *testing.T) {
	cfg := asyncConfig(5, 1, 2, 0.2)
	rng := rand.New(rand.NewSource(9))
	inputs := boxInputs(rng, cfg.N, cfg.D, 0, 1)
	r := newAsyncRun(t, cfg, inputs, map[int]sim.Node{4: adversary.SilentAsync{}})
	r.run(t, 4, sim.UniformDelay{Min: time.Millisecond, Max: 10 * time.Millisecond})
	ex := r.execution(t)
	if err := ex.VerifyApprox(cfg.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestAsyncEquivocatingByzantine(t *testing.T) {
	cfg := asyncConfig(5, 1, 2, 0.2)
	rng := rand.New(rand.NewSource(10))
	inputs := boxInputs(rng, cfg.N, cfg.D, 0, 1)
	rounds := core.RoundBound(core.Gamma(core.VariantApproxAsync, cfg.N, cfg.F, false), 1, cfg.Epsilon)
	byz := adversary.NewAsyncEquivocator(cfg.N, rounds, 2, 2, vec(0, 0), vec(1, 1))
	r := newAsyncRun(t, cfg, inputs, map[int]sim.Node{2: byz})
	r.run(t, 5, sim.UniformDelay{Min: time.Millisecond, Max: 15 * time.Millisecond})
	ex := r.execution(t)
	if err := ex.VerifyApprox(cfg.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestAsyncLureByzantine(t *testing.T) {
	// The lure adversary honestly disseminates an extreme value each round;
	// validity (decisions inside the correct hull) must still hold.
	cfg := asyncConfig(5, 1, 2, 0.2)
	inputs := []geometry.Vector{
		vec(0.4, 0.4), vec(0.5, 0.5), vec(0.6, 0.4), vec(0.5, 0.6),
		nil, // byz slot
	}
	rounds := core.RoundBound(core.Gamma(core.VariantApproxAsync, cfg.N, cfg.F, false), 1, cfg.Epsilon)
	lure, err := adversary.NewAsyncLure(cfg.N, cfg.F, cfg.D, rounds, 4, vec(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	r := newAsyncRun(t, cfg, inputs, map[int]sim.Node{4: lure})
	r.run(t, 6, sim.UniformDelay{Min: time.Millisecond, Max: 10 * time.Millisecond})
	ex := r.execution(t)
	if err := ex.VerifyApprox(cfg.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
	// Decisions stay in the correct hull despite the (1,1) lure: every
	// coordinate must remain within the correct inputs' range [0.4, 0.6].
	for _, o := range ex.Outcomes {
		if !o.Correct {
			continue
		}
		for l, x := range o.Decision {
			if x < 0.4-1e-6 || x > 0.6+1e-6 {
				t.Errorf("process %d decision[%d] = %g pulled outside correct range", o.ID, l, x)
			}
		}
	}
}

func TestAsyncRandomByzantine(t *testing.T) {
	cfg := asyncConfig(5, 1, 2, 0.25)
	rng := rand.New(rand.NewSource(11))
	inputs := boxInputs(rng, cfg.N, cfg.D, 0, 1)
	rounds := core.RoundBound(core.Gamma(core.VariantApproxAsync, cfg.N, cfg.F, false), 1, cfg.Epsilon)
	byz := adversary.NewAsyncRandom(cfg.N, rounds, 3, geometry.UniformBox(cfg.D, -2, 2))
	r := newAsyncRun(t, cfg, inputs, map[int]sim.Node{0: byz})
	r.run(t, 7, sim.UniformDelay{Min: time.Millisecond, Max: 10 * time.Millisecond})
	ex := r.execution(t)
	if err := ex.VerifyApprox(cfg.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestAsyncAdversarialScheduling(t *testing.T) {
	// Starve f correct processes: the fast majority must proceed and the
	// starved ones must still decide within ε of everyone.
	cfg := asyncConfig(5, 1, 2, 0.2)
	rng := rand.New(rand.NewSource(12))
	inputs := boxInputs(rng, cfg.N, cfg.D, 0, 1)
	r := newAsyncRun(t, cfg, inputs, nil)
	delay := sim.StarveSenders{
		Inner: sim.ConstantDelay{D: time.Millisecond},
		Slow:  map[sim.ProcID]bool{0: true},
		Extra: 500 * time.Millisecond,
	}
	r.run(t, 13, delay)
	ex := r.execution(t)
	if err := ex.VerifyApprox(cfg.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestAsyncCrashByzantine(t *testing.T) {
	cfg := asyncConfig(5, 1, 2, 0.25)
	rng := rand.New(rand.NewSource(14))
	inputs := boxInputs(rng, cfg.N, cfg.D, 0, 1)
	wrapped, err := core.NewAsyncNode(cfg, 3, inputs[3])
	if err != nil {
		t.Fatal(err)
	}
	crash := &adversary.CrashAsync{Wrapped: wrapped, AfterDeliveries: 40}
	r := newAsyncRun(t, cfg, inputs, map[int]sim.Node{3: crash})
	r.run(t, 15, sim.UniformDelay{Min: time.Millisecond, Max: 10 * time.Millisecond})
	ex := r.execution(t)
	if err := ex.VerifyApprox(cfg.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestAsyncMaxRoundsOverride(t *testing.T) {
	cfg := asyncConfig(5, 1, 2, 0.2)
	cfg.MaxRounds = 3
	rng := rand.New(rand.NewSource(16))
	inputs := boxInputs(rng, cfg.N, cfg.D, 0, 1)
	r := newAsyncRun(t, cfg, inputs, nil)
	r.run(t, 17, sim.ConstantDelay{D: time.Millisecond})
	for i, nd := range r.impls {
		if nd.Rounds() != 3 {
			t.Errorf("node %d rounds = %d, want 3", i, nd.Rounds())
		}
		if got := len(nd.History()); got != 4 { // input + 3 rounds
			t.Errorf("node %d history length = %d, want 4", i, got)
		}
	}
}

func TestAsyncHaltWhenDecidedF1(t *testing.T) {
	// With f = 1 halting at decision is live (see AsyncConfig docs).
	cfg := asyncConfig(4, 1, 1, 0.2)
	cfg.HaltWhenDecided = true
	inputs := []geometry.Vector{vec(0), vec(1), vec(0.5), vec(0.25)}
	r := newAsyncRun(t, cfg, inputs, nil)
	stats := r.run(t, 18, sim.UniformDelay{Min: time.Millisecond, Max: 5 * time.Millisecond})
	if stats.Halted != cfg.N {
		t.Errorf("halted = %d, want %d", stats.Halted, cfg.N)
	}
	ex := r.execution(t)
	if err := ex.VerifyApprox(cfg.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestAsyncTerminatesWithinBound(t *testing.T) {
	// The decision must be reached after exactly the analytic round count.
	cfg := asyncConfig(4, 1, 1, 0.1)
	inputs := []geometry.Vector{vec(0), vec(1), vec(0.2), vec(0.9)}
	r := newAsyncRun(t, cfg, inputs, nil)
	r.run(t, 19, sim.ConstantDelay{D: time.Millisecond})
	gamma := core.Gamma(core.VariantApproxAsync, cfg.N, cfg.F, false)
	want := core.RoundBound(gamma, 1, cfg.Epsilon)
	for i, nd := range r.impls {
		if nd.Rounds() != want {
			t.Errorf("node %d used %d rounds, analytic bound %d", i, nd.Rounds(), want)
		}
	}
	ex := r.execution(t)
	if err := ex.VerifyApprox(cfg.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestAsyncNodeValidation(t *testing.T) {
	good := asyncConfig(5, 1, 2, 0.1)
	if _, err := core.NewAsyncNode(good, 9, vec(0.5, 0.5)); err == nil {
		t.Error("self out of range: expected error")
	}
	bad := good
	bad.N = 4
	if _, err := core.NewAsyncNode(bad, 0, vec(0.5, 0.5)); err == nil {
		t.Error("n below bound: expected error")
	}
	if _, err := core.NewAsyncNode(good, 0, vec(5, 5)); err == nil {
		t.Error("input outside bounds: expected error")
	}
	nd, err := core.NewAsyncNode(good, 0, vec(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nd.Decision(); err == nil {
		t.Error("expected not-terminated error")
	}
}

func TestAsyncF2TwoByzantine(t *testing.T) {
	// d = 1, f = 2 → n = 7; silent + equivocating colluders. Lingering
	// after decision is what keeps this configuration live.
	cfg := asyncConfig(7, 2, 1, 0.25)
	rng := rand.New(rand.NewSource(20))
	inputs := boxInputs(rng, cfg.N, cfg.D, 0, 1)
	rounds := core.RoundBound(core.Gamma(core.VariantApproxAsync, cfg.N, cfg.F, false), 1, cfg.Epsilon)
	eq := adversary.NewAsyncEquivocator(cfg.N, rounds, 5, 3, vec(0), vec(1))
	r := newAsyncRun(t, cfg, inputs, map[int]sim.Node{
		5: eq,
		6: adversary.SilentAsync{},
	})
	r.run(t, 21, sim.UniformDelay{Min: time.Millisecond, Max: 10 * time.Millisecond})
	ex := r.execution(t)
	if err := ex.VerifyApprox(cfg.Epsilon, 1e-6); err != nil {
		t.Fatalf("verification: %v", err)
	}
}
