package core

import (
	"fmt"

	"repro/internal/geometry"
	"repro/internal/sim"
)

// roundHorizon resolves the executed round count of a restricted node: the
// analytic termination bound, capped by Params.MaxRounds when set. The cap
// never raises the horizon — running longer than the analytic bound is
// wasted work.
func roundHorizon(gamma float64, params Params) int {
	rounds := RoundBound(gamma, params.Bounds.MaxRange(), params.Epsilon)
	if params.MaxRounds > 0 && params.MaxRounds < rounds {
		rounds = params.MaxRounds
	}
	return rounds
}

// RestrictedSyncNode runs the §4 synchronous algorithm with the restricted
// round structure: each round is a single state exchange (send vi[t−1] to
// all, receive from all, missing senders defaulting to the all-0 vector),
// followed by the §3.2-style Step 2 over Bi[t] = the n received vectors.
// Correct for n ≥ (d+2)f+1 — Theorem 6. Termination uses the analytic
// round bound with γ = 1/(n·C(n, n−f)).
type RestrictedSyncNode struct {
	params Params
	self   sim.ProcID

	v       geometry.Vector
	rounds  int
	history []geometry.Vector

	decision geometry.Vector
	err      error
}

var _ sim.SyncNode = (*RestrictedSyncNode)(nil)

// NewRestrictedSyncNode builds the node for process self.
func NewRestrictedSyncNode(params Params, self sim.ProcID, input geometry.Vector) (*RestrictedSyncNode, error) {
	params = params.WithDefaults()
	if err := params.Validate(VariantRestrictedSync); err != nil {
		return nil, err
	}
	if err := params.CheckInput(input, true); err != nil {
		return nil, err
	}
	if int(self) < 0 || int(self) >= params.N {
		return nil, fmt.Errorf("core: self=%d out of range n=%d", self, params.N)
	}
	gamma := Gamma(VariantRestrictedSync, params.N, params.F, false)
	return &RestrictedSyncNode{
		params:  params,
		self:    self,
		v:       input.Clone(),
		rounds:  roundHorizon(gamma, params),
		history: []geometry.Vector{input.Clone()},
	}, nil
}

// Rounds returns the termination round count.
func (rs *RestrictedSyncNode) Rounds() int { return rs.rounds }

// Outbox implements sim.SyncNode: broadcast the current state.
func (rs *RestrictedSyncNode) Outbox(r int) map[sim.ProcID]sim.Message {
	out := make(map[sim.ProcID]sim.Message, rs.params.N)
	msg := StateMsg{Round: r, Value: rs.v.Clone()}
	for to := 0; to < rs.params.N; to++ {
		out[sim.ProcID(to)] = msg
	}
	return out
}

// Deliver implements sim.SyncNode.
func (rs *RestrictedSyncNode) Deliver(r int, inbox map[sim.ProcID]sim.Message) {
	if rs.Done() {
		return
	}
	def := geometry.NewVector(rs.params.D)
	tuples := make([]tuple, rs.params.N)
	for j := 0; j < rs.params.N; j++ {
		value := def
		if raw, ok := inbox[sim.ProcID(j)]; ok {
			if m, ok := raw.(StateMsg); ok && m.Round == r &&
				m.Value.Dim() == rs.params.D && m.Value.IsFinite() {
				value = m.Value
			}
		}
		tuples[j] = tuple{origin: j, value: value}
	}
	next, _, err := rs.params.engine().AverageGamma(tuples, rs.params.N-rs.params.F, rs.params.F, rs.params.Method)
	if err != nil {
		rs.err = err
		return
	}
	rs.v = next
	rs.history = append(rs.history, next.Clone())
	if r >= rs.rounds {
		rs.decision = rs.v.Clone()
	}
}

// Done implements sim.SyncNode.
func (rs *RestrictedSyncNode) Done() bool { return rs.decision != nil || rs.err != nil }

// Decision returns the decided vector once terminated.
func (rs *RestrictedSyncNode) Decision() (geometry.Vector, error) {
	if rs.err != nil {
		return nil, rs.err
	}
	if rs.decision == nil {
		return nil, fmt.Errorf("core: restricted sync BVC not terminated")
	}
	return rs.decision.Clone(), nil
}

// History returns vi after every completed round, starting with the input.
func (rs *RestrictedSyncNode) History() []geometry.Vector {
	out := make([]geometry.Vector, len(rs.history))
	for i, v := range rs.history {
		out[i] = v.Clone()
	}
	return out
}

// RestrictedAsyncNode runs the §4 asynchronous algorithm with the
// restricted (Dolev-style) round structure: broadcast vi[t−1] tagged t,
// wait for round-t states from n−f−1 other processes, then apply Step 2 to
// the n−f collected vectors using candidate subsets of size n−3f (the
// largest size certain to be shared with every other correct process,
// since |Bi∩Bj| ≥ n−3f ≥ (d+1)f+1 when n ≥ (d+4)f+1 — Theorem 6).
type RestrictedAsyncNode struct {
	params Params
	self   sim.ProcID

	v      geometry.Vector
	round  int
	rounds int

	// pending[t] holds round-t states from other processes in arrival
	// order; FIFO links and the sequential-broadcast structure bound this
	// by one entry per process per round.
	pending map[int][]tuple
	seen    map[int]map[sim.ProcID]bool

	history  []geometry.Vector
	decision geometry.Vector
	err      error
}

var _ sim.Node = (*RestrictedAsyncNode)(nil)

// NewRestrictedAsyncNode builds the node for process self.
func NewRestrictedAsyncNode(params Params, self sim.ProcID, input geometry.Vector) (*RestrictedAsyncNode, error) {
	params = params.WithDefaults()
	if err := params.Validate(VariantRestrictedAsync); err != nil {
		return nil, err
	}
	if err := params.CheckInput(input, true); err != nil {
		return nil, err
	}
	if int(self) < 0 || int(self) >= params.N {
		return nil, fmt.Errorf("core: self=%d out of range n=%d", self, params.N)
	}
	gamma := Gamma(VariantRestrictedAsync, params.N, params.F, false)
	return &RestrictedAsyncNode{
		params:  params,
		self:    self,
		v:       input.Clone(),
		rounds:  roundHorizon(gamma, params),
		pending: make(map[int][]tuple),
		seen:    make(map[int]map[sim.ProcID]bool),
		history: []geometry.Vector{input.Clone()},
	}, nil
}

// Rounds returns the termination round count.
func (ra *RestrictedAsyncNode) Rounds() int { return ra.rounds }

// Init implements sim.Node.
func (ra *RestrictedAsyncNode) Init(api sim.API) {
	ra.round = 1
	api.Broadcast(StateMsg{Round: 1, Value: ra.v.Clone()})
	// Self-delivery arrives through the engine like any other message but
	// is excluded from the n−f−1 count, so nothing else to do here.
}

// OnMessage implements sim.Node.
func (ra *RestrictedAsyncNode) OnMessage(api sim.API, from sim.ProcID, msg sim.Message) {
	if ra.Doneish() {
		return
	}
	m, ok := msg.(StateMsg)
	if !ok {
		return
	}
	if from == ra.self || m.Round < ra.round || m.Round > ra.rounds {
		return // own copies and stale rounds are irrelevant; bogus rounds dropped
	}
	if m.Value.Dim() != ra.params.D || !m.Value.IsFinite() {
		return
	}
	seen := ra.seen[m.Round]
	if seen == nil {
		seen = make(map[sim.ProcID]bool, ra.params.N)
		ra.seen[m.Round] = seen
	}
	if seen[from] {
		return // one state per process per round (first wins)
	}
	seen[from] = true
	ra.pending[m.Round] = append(ra.pending[m.Round], tuple{origin: int(from), value: m.Value.Clone()})

	for ra.tryAdvance(api) {
	}
}

// tryAdvance completes the current round if enough states arrived.
func (ra *RestrictedAsyncNode) tryAdvance(api sim.API) bool {
	if ra.Doneish() {
		return false
	}
	need := ra.params.N - ra.params.F - 1
	arrived := ra.pending[ra.round]
	if len(arrived) < need {
		return false
	}
	b := make([]tuple, 0, need+1)
	b = append(b, tuple{origin: int(ra.self), value: ra.v})
	b = append(b, arrived[:need]...)

	next, _, err := ra.params.engine().AverageGamma(b, ra.params.N-3*ra.params.F, ra.params.F, ra.params.Method)
	if err != nil {
		ra.fail(api, err)
		return false
	}
	delete(ra.pending, ra.round)
	delete(ra.seen, ra.round)
	ra.v = next
	ra.history = append(ra.history, next.Clone())

	if ra.round >= ra.rounds {
		ra.decision = ra.v.Clone()
		api.Halt()
		return false
	}
	ra.round++
	api.Broadcast(StateMsg{Round: ra.round, Value: ra.v.Clone()})
	return true // buffered messages may already satisfy the new round
}

func (ra *RestrictedAsyncNode) fail(api sim.API, err error) {
	if ra.err == nil {
		ra.err = err
	}
	api.Halt()
}

// Doneish reports whether the node has decided or failed.
func (ra *RestrictedAsyncNode) Doneish() bool { return ra.decision != nil || ra.err != nil }

// Decision returns the decided vector once terminated.
func (ra *RestrictedAsyncNode) Decision() (geometry.Vector, error) {
	if ra.err != nil {
		return nil, ra.err
	}
	if ra.decision == nil {
		return nil, fmt.Errorf("core: restricted async BVC not terminated (round %d of %d, %d/%d states pending)",
			ra.round, ra.rounds, len(ra.pending[ra.round]), ra.params.N-ra.params.F-1)
	}
	return ra.decision.Clone(), nil
}

// History returns vi after every completed round, starting with the input.
func (ra *RestrictedAsyncNode) History() []geometry.Vector {
	out := make([]geometry.Vector, len(ra.history))
	for i, v := range ra.history {
		out[i] = v.Clone()
	}
	return out
}
