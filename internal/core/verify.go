package core

import (
	"errors"
	"fmt"

	"repro/internal/geometry"
	"repro/internal/hull"
)

// Outcome records one process's role and result in an execution.
type Outcome struct {
	ID      int
	Correct bool
	// Input is the process's input vector (meaningful for correct
	// processes; Byzantine "inputs" are irrelevant to the conditions).
	Input geometry.Vector
	// Decision is the decided vector; nil for Byzantine processes and for
	// correct processes that failed to decide (a termination violation).
	Decision geometry.Vector
}

// Execution is a finished run to be checked against the problem
// definitions of §1.
type Execution struct {
	D, F     int
	Outcomes []Outcome
}

// Verification errors distinguishable with errors.Is.
var (
	ErrTermination  = errors.New("termination violated: a correct process did not decide")
	ErrAgreement    = errors.New("agreement violated: correct processes decided differently")
	ErrEpsAgreement = errors.New("ε-agreement violated: decisions differ by more than ε in some coordinate")
	ErrValidity     = errors.New("validity violated: a decision lies outside the convex hull of correct inputs")
)

// correctOutcomes returns the outcomes of correct processes, validating
// shapes as it goes.
func (ex *Execution) correctOutcomes() ([]Outcome, error) {
	var out []Outcome
	for _, o := range ex.Outcomes {
		if !o.Correct {
			continue
		}
		if o.Input.Dim() != ex.D {
			return nil, fmt.Errorf("core: process %d input dimension %d, want %d", o.ID, o.Input.Dim(), ex.D)
		}
		out = append(out, o)
	}
	if len(out) == 0 {
		return nil, errors.New("core: execution has no correct processes")
	}
	return out, nil
}

// VerifyTermination checks that every correct process decided.
func (ex *Execution) VerifyTermination() error {
	correct, err := ex.correctOutcomes()
	if err != nil {
		return err
	}
	for _, o := range correct {
		if o.Decision == nil {
			return fmt.Errorf("%w (process %d)", ErrTermination, o.ID)
		}
		if o.Decision.Dim() != ex.D {
			return fmt.Errorf("core: process %d decision dimension %d, want %d", o.ID, o.Decision.Dim(), ex.D)
		}
	}
	return nil
}

// VerifyAgreement checks the Exact BVC agreement condition: identical
// decisions at all correct processes.
func (ex *Execution) VerifyAgreement() error {
	if err := ex.VerifyTermination(); err != nil {
		return err
	}
	correct, err := ex.correctOutcomes()
	if err != nil {
		return err
	}
	first := correct[0]
	for _, o := range correct[1:] {
		if !o.Decision.Equal(first.Decision) {
			return fmt.Errorf("%w: process %d decided %v, process %d decided %v",
				ErrAgreement, first.ID, first.Decision, o.ID, o.Decision)
		}
	}
	return nil
}

// VerifyEpsAgreement checks the approximate BVC ε-agreement condition:
// per-coordinate difference at most eps between any two correct decisions.
func (ex *Execution) VerifyEpsAgreement(eps float64) error {
	if err := ex.VerifyTermination(); err != nil {
		return err
	}
	correct, err := ex.correctOutcomes()
	if err != nil {
		return err
	}
	for i, a := range correct {
		for _, b := range correct[i+1:] {
			if d := a.Decision.DistInf(b.Decision); d > eps {
				return fmt.Errorf("%w: processes %d and %d differ by %g > ε = %g",
					ErrEpsAgreement, a.ID, b.ID, d, eps)
			}
		}
	}
	return nil
}

// VerifyValidity checks that every correct decision lies in the convex hull
// of the correct processes' inputs, within tolerance tol (hull.DefaultTol
// if tol ≤ 0). This is the condition coordinate-wise consensus breaks.
func (ex *Execution) VerifyValidity(tol float64) error {
	if err := ex.VerifyTermination(); err != nil {
		return err
	}
	correct, err := ex.correctOutcomes()
	if err != nil {
		return err
	}
	inputs := make([]geometry.Vector, len(correct))
	for i, o := range correct {
		inputs[i] = o.Input
	}
	for _, o := range correct {
		in, err := hull.Contains(inputs, o.Decision, tol)
		if err != nil {
			return err
		}
		if !in {
			return fmt.Errorf("%w: process %d decided %v", ErrValidity, o.ID, o.Decision)
		}
	}
	return nil
}

// VerifyExact checks all three Exact BVC conditions.
func (ex *Execution) VerifyExact(tol float64) error {
	if err := ex.VerifyAgreement(); err != nil {
		return err
	}
	return ex.VerifyValidity(tol)
}

// VerifyApprox checks all three approximate BVC conditions.
func (ex *Execution) VerifyApprox(eps, tol float64) error {
	if err := ex.VerifyEpsAgreement(eps); err != nil {
		return err
	}
	return ex.VerifyValidity(tol)
}
