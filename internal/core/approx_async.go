package core

import (
	"fmt"

	"repro/internal/aad"
	"repro/internal/geometry"
	"repro/internal/sim"
)

// AsyncConfig configures the asynchronous approximate BVC node.
type AsyncConfig struct {
	Params
	// WitnessOpt enables the Appendix-F optimization: Zi is built from the
	// first n−f tuples reported by each witness (|Zi| ≤ n, γ = 1/n²)
	// instead of from every (n−f)-subset of Bi[t] (γ = 1/(n·C(n,n−f))).
	WitnessOpt bool
	// MaxRounds overrides the analytic round bound when positive (used by
	// experiments that sweep rounds); the default is the paper's
	// 1 + ⌈log_{1/(1−γ)} (U−ν)/ε⌉.
	MaxRounds int
	// HaltWhenDecided stops the node at its decision instead of lingering
	// to serve the reliable-broadcast instances of slower processes.
	// Lingering (the default) is required for liveness when f ≥ 2: a
	// delivered tuple is guaranteed only f+1 correct READY senders, and a
	// lagging process needs the remaining correct processes' amplification
	// to reach the 2f+1 delivery threshold. With f ≤ 1 halting is safe
	// (f+1 correct readys plus the process's own amplification meet the
	// threshold), which live deployments may prefer.
	HaltWhenDecided bool
}

// AsyncNode runs the asynchronous approximate BVC algorithm of §3.2 as an
// event-driven node:
//
//	per round t: obtain Bi[t] via the AAD witness exchange, gather one
//	deterministic safe point per candidate set into Zi, and move to
//	vi[t] = avg(Zi); after the termination round count, decide vi.
//
// Correct for n ≥ (d+2)f+1 — Theorem 5.
type AsyncNode struct {
	cfg   AsyncConfig
	self  sim.ProcID
	coord *aad.Coordinator

	v       geometry.Vector
	round   int // current round, 1-based; 0 before Init
	rounds  int // termination round count
	history []geometry.Vector
	ziSizes []int

	decision geometry.Vector
	err      error
}

var _ sim.Node = (*AsyncNode)(nil)

// NewAsyncNode builds the node for process self with the given input.
func NewAsyncNode(cfg AsyncConfig, self sim.ProcID, input geometry.Vector) (*AsyncNode, error) {
	cfg.Params = cfg.Params.WithDefaults()
	if err := cfg.Validate(VariantApproxAsync); err != nil {
		return nil, err
	}
	if err := cfg.CheckInput(input, true); err != nil {
		return nil, err
	}
	if int(self) < 0 || int(self) >= cfg.N {
		return nil, fmt.Errorf("core: self=%d out of range n=%d", self, cfg.N)
	}
	coord, err := aad.NewCoordinator(cfg.N, cfg.F, self, cfg.D)
	if err != nil {
		return nil, err
	}
	rounds := cfg.MaxRounds
	if rounds <= 0 {
		gamma := Gamma(VariantApproxAsync, cfg.N, cfg.F, cfg.WitnessOpt)
		rounds = RoundBound(gamma, cfg.Bounds.MaxRange(), cfg.Epsilon)
	}
	return &AsyncNode{
		cfg:     cfg,
		self:    self,
		coord:   coord,
		v:       input.Clone(),
		rounds:  rounds,
		history: []geometry.Vector{input.Clone()},
	}, nil
}

// Rounds returns the termination round count R used by this node.
func (a *AsyncNode) Rounds() int { return a.rounds }

// Init implements sim.Node: start round 1.
func (a *AsyncNode) Init(api sim.API) {
	a.round = 1
	a.startRound(api)
}

// OnMessage implements sim.Node. A decided node keeps serving the exchange
// (echoes, readies, reports) so lagging correct processes can finish; it
// only stops advancing its own rounds.
func (a *AsyncNode) OnMessage(api sim.API, from sim.ProcID, msg sim.Message) {
	if a.err != nil {
		return
	}
	m, ok := msg.(aad.Msg)
	if !ok {
		return // foreign message types are ignored
	}
	out, results := a.coord.Handle(from, m)
	for _, o := range out {
		api.Broadcast(o)
	}
	if a.decision != nil {
		return // linger: serve the protocol, but no further rounds
	}
	for _, res := range results {
		if res.Round != a.round {
			// The coordinator only completes started rounds, and rounds
			// are started sequentially, so this cannot happen.
			a.fail(api, fmt.Errorf("core: completed round %d while in round %d", res.Round, a.round))
			return
		}
		a.finishRound(api, &res)
		if a.decision != nil || a.err != nil {
			return
		}
	}
}

// startRound begins the exchange for the current round and processes an
// immediately-complete exchange (possible when this process lagged and the
// round's traffic already arrived).
func (a *AsyncNode) startRound(api sim.API) {
	for {
		msgs, err := a.coord.StartRound(a.round, a.v)
		if err != nil {
			a.fail(api, err)
			return
		}
		for _, m := range msgs {
			api.Broadcast(m)
		}
		res, ok := a.coord.Completed(a.round)
		if !ok {
			return
		}
		a.finishRound(api, res)
		if a.decision != nil || a.err != nil {
			return
		}
	}
}

// finishRound applies Step 2 (eq. (9)) to the completed exchange and either
// advances to the next round or decides.
func (a *AsyncNode) finishRound(api sim.API, res *aad.Result) {
	tuples := make([]tuple, len(res.Tuples))
	byOrigin := make(map[int]tuple, len(res.Tuples))
	for i, tp := range res.Tuples {
		tuples[i] = tuple{origin: int(tp.Origin), value: tp.Value}
		byOrigin[int(tp.Origin)] = tuples[i]
	}

	var (
		next   geometry.Vector
		ziSize int
		err    error
	)
	if a.cfg.WitnessOpt {
		// Appendix F: one candidate set per witness — the witness's first
		// n−f reported tuples. |Zi| ≤ n.
		sets := make([][]tuple, 0, len(res.WitnessPrefixes))
		for _, prefix := range res.WitnessPrefixes {
			set := make([]tuple, 0, len(prefix))
			for _, origin := range prefix {
				tp, ok := byOrigin[int(origin)]
				if !ok {
					a.fail(api, fmt.Errorf("core: witness prefix references origin %d missing from B", origin))
					return
				}
				set = append(set, tp)
			}
			sets = append(sets, set)
		}
		next, ziSize, err = a.cfg.engine().AverageGammaSets(sets, a.cfg.F, a.cfg.Method)
	} else {
		// §3.2 Step 2: every C ⊆ Bi[t] with |C| = n−f, streamed by the
		// engine rather than materialized.
		next, ziSize, err = a.cfg.engine().AverageGamma(tuples, a.cfg.N-a.cfg.F, a.cfg.F, a.cfg.Method)
	}
	if err != nil {
		a.fail(api, err)
		return
	}
	a.v = next
	a.history = append(a.history, next.Clone())
	a.ziSizes = append(a.ziSizes, ziSize)

	if a.round >= a.rounds {
		a.decision = a.v.Clone()
		if a.cfg.HaltWhenDecided {
			api.Halt()
		}
		return
	}
	a.round++
	a.startRound(api)
}

func (a *AsyncNode) fail(api sim.API, err error) {
	if a.err == nil {
		a.err = err
	}
	api.Halt()
}

// Decided reports whether the node has reached its decision. When
// HaltWhenDecided is off the node keeps serving the exchange afterwards;
// Decided is the cheap signal callers poll to detect the transition.
func (a *AsyncNode) Decided() bool { return a.decision != nil }

// Decision returns the decided vector once the node has terminated.
func (a *AsyncNode) Decision() (geometry.Vector, error) {
	if a.err != nil {
		return nil, a.err
	}
	if a.decision == nil {
		return nil, fmt.Errorf("core: approximate BVC not terminated (round %d of %d)", a.round, a.rounds)
	}
	return a.decision.Clone(), nil
}

// History returns vi[0..t]: the state after every completed round,
// beginning with the input. Experiments use it to measure the per-round
// contraction of the correct processes' range against 1−γ.
func (a *AsyncNode) History() []geometry.Vector {
	out := make([]geometry.Vector, len(a.history))
	for i, v := range a.history {
		out[i] = v.Clone()
	}
	return out
}

// ZiSizes returns |Zi| per completed round — C(|Bi|, n−f) for the full
// algorithm, ≤ n with the witness optimization (the E9 ablation measures
// this).
func (a *AsyncNode) ZiSizes() []int {
	out := make([]int, len(a.ziSizes))
	copy(out, a.ziSizes)
	return out
}
