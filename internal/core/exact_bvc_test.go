package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/safearea"
	"repro/internal/sim"
)

func vec(xs ...float64) geometry.Vector { return geometry.Vector(xs) }

// runExact executes Exact BVC with the given correct inputs and Byzantine
// nodes (nil entries in byz become correct nodes) and returns the decisions
// plus the assembled execution record.
func runExact(t *testing.T, params core.Params, inputs []geometry.Vector, byz map[int]sim.SyncNode) (*core.Execution, []*core.ExactNode) {
	t.Helper()
	nodes := make([]sim.SyncNode, params.N)
	impls := make([]*core.ExactNode, params.N)
	for i := 0; i < params.N; i++ {
		if b, ok := byz[i]; ok {
			nodes[i] = b
			continue
		}
		nd, err := core.NewExactNode(params, sim.ProcID(i), inputs[i])
		if err != nil {
			t.Fatalf("NewExactNode(%d): %v", i, err)
		}
		impls[i] = nd
		nodes[i] = nd
	}
	if _, err := sim.RunSync(nodes, params.F+2); err != nil {
		t.Fatalf("RunSync: %v", err)
	}
	ex := &core.Execution{D: params.D, F: params.F}
	for i := 0; i < params.N; i++ {
		o := core.Outcome{ID: i}
		if impls[i] != nil {
			o.Correct = true
			o.Input = inputs[i]
			dec, err := impls[i].Decision()
			if err != nil {
				t.Fatalf("node %d decision: %v", i, err)
			}
			o.Decision = dec
		}
		ex.Outcomes = append(ex.Outcomes, o)
	}
	return ex, impls
}

func boxInputs(rng *rand.Rand, n, d int, lo, hi float64) []geometry.Vector {
	out := make([]geometry.Vector, n)
	for i := range out {
		v := geometry.NewVector(d)
		for j := range v {
			v[j] = lo + rng.Float64()*(hi-lo)
		}
		out[i] = v
	}
	return out
}

func TestExactAllHonest(t *testing.T) {
	params := core.Params{N: 5, F: 1, D: 2}
	rng := rand.New(rand.NewSource(1))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	ex, impls := runExact(t, params, inputs, nil)
	if err := ex.VerifyExact(1e-6); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	// All correct processes assembled the identical multiset S = inputs.
	s0 := impls[0].AgreedMultiset()
	for i := 0; i < params.N; i++ {
		if !impls[i].AgreedMultiset().Equal(s0) {
			t.Errorf("process %d has different S", i)
		}
	}
	for i, x := range inputs {
		if !s0.At(i).Equal(x) {
			t.Errorf("S[%d] = %v, want input %v", i, s0.At(i), x)
		}
	}
}

func TestExactSilentByzantine(t *testing.T) {
	params := core.Params{N: 4, F: 1, D: 2}
	rng := rand.New(rand.NewSource(2))
	inputs := boxInputs(rng, params.N, params.D, -1, 1)
	ex, _ := runExact(t, params, inputs, map[int]sim.SyncNode{2: adversary.SilentSync{}})
	if err := ex.VerifyExact(1e-6); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
}

func TestExactEquivocatingByzantine(t *testing.T) {
	params := core.Params{N: 4, F: 1, D: 2}
	rng := rand.New(rand.NewSource(3))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	eq := adversary.NewEIGEquivocator(params.N, params.F+1, 3, func(to sim.ProcID) geometry.Vector {
		return vec(float64(to)*10, -float64(to))
	})
	ex, _ := runExact(t, params, inputs, map[int]sim.SyncNode{3: eq})
	if err := ex.VerifyExact(1e-6); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
}

func TestExactRandomByzantine(t *testing.T) {
	params := core.Params{N: 5, F: 1, D: 3}
	rng := rand.New(rand.NewSource(4))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	adv := adversary.NewEIGRandom(params.N, params.D, params.F+1, geometry.UniformBox(params.D, -5, 5), rng)
	ex, _ := runExact(t, params, inputs, map[int]sim.SyncNode{1: adv})
	if err := ex.VerifyExact(1e-6); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
}

func TestExactCrashMidBroadcast(t *testing.T) {
	params := core.Params{N: 4, F: 1, D: 2}
	rng := rand.New(rand.NewSource(5))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	// The crashing process behaves correctly in round 1 and sends round 2
	// messages to only one recipient.
	wrapped, err := core.NewExactNode(params, 0, inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	crash := &adversary.CrashSync{Wrapped: wrapped, CrashRound: 2, PartialTo: 1}
	ex, _ := runExact(t, params, inputs, map[int]sim.SyncNode{0: crash})
	if err := ex.VerifyExact(1e-6); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
}

func TestExactF2Grid(t *testing.T) {
	// f = 2 with two colluding adversaries at the tight bound
	// n = max(3f+1, (d+1)f+1).
	for _, d := range []int{1, 2, 3} {
		params := core.Params{N: core.MinProcesses(core.VariantExactSync, d, 2), F: 2, D: d}
		rng := rand.New(rand.NewSource(int64(10 + d)))
		inputs := boxInputs(rng, params.N, params.D, 0, 1)
		eq := adversary.NewEIGEquivocator(params.N, params.F+1, 0, func(to sim.ProcID) geometry.Vector {
			return vec(boxInputs(rng, 1, d, -3, 3)[0]...)
		})
		silent := adversary.SilentSync{}
		ex, _ := runExact(t, params, inputs, map[int]sim.SyncNode{0: eq, 1: silent})
		if err := ex.VerifyExact(1e-6); err != nil {
			t.Fatalf("d=%d: verification failed: %v", d, err)
		}
	}
}

func TestExactDeterministicChoiceMatchesGamma(t *testing.T) {
	// The decision must lie in Γ(S) where S is the agreed multiset.
	params := core.Params{N: 5, F: 1, D: 2, Method: safearea.MethodLexMinLP}
	rng := rand.New(rand.NewSource(6))
	inputs := boxInputs(rng, params.N, params.D, 0, 1)
	ex, impls := runExact(t, params, inputs, nil)
	if err := ex.VerifyExact(1e-6); err != nil {
		t.Fatal(err)
	}
	dec, err := impls[0].Decision()
	if err != nil {
		t.Fatal(err)
	}
	in, err := safearea.Contains(impls[0].AgreedMultiset(), params.F, dec, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !in {
		t.Errorf("decision %v not in Γ(S)", dec)
	}
}

func TestExactNodeValidation(t *testing.T) {
	if _, err := core.NewExactNode(core.Params{N: 3, F: 1, D: 1}, 0, vec(1)); err == nil {
		t.Error("n < bound: expected error")
	}
	if _, err := core.NewExactNode(core.Params{N: 4, F: 1, D: 1}, 9, vec(1)); err == nil {
		t.Error("self out of range: expected error")
	}
	if _, err := core.NewExactNode(core.Params{N: 4, F: 1, D: 2}, 0, vec(1)); err == nil {
		t.Error("input dim mismatch: expected error")
	}
}

func TestExactDecisionBeforeTermination(t *testing.T) {
	nd, err := core.NewExactNode(core.Params{N: 4, F: 1, D: 1}, 0, vec(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nd.Decision(); err == nil {
		t.Error("expected not-terminated error")
	}
}

// TestCoordinateWiseViolatesValidity reproduces the paper's §1
// counterexample: coordinate-wise scalar consensus on probability vectors
// decides [1/6, 1/6, 1/6], which is not in the convex hull of the correct
// inputs; Exact BVC on the identical inputs stays inside (experiment E8).
func TestCoordinateWiseViolatesValidity(t *testing.T) {
	run := func(params core.Params, inputs []geometry.Vector, correct int,
		mkNode func(i int) (sim.SyncNode, func() (geometry.Vector, error))) *core.Execution {
		nodes := make([]sim.SyncNode, params.N)
		decFns := make([]func() (geometry.Vector, error), params.N)
		for i := 0; i < params.N; i++ {
			nd, dec := mkNode(i)
			nodes[i] = nd
			decFns[i] = dec
		}
		if _, err := sim.RunSync(nodes, params.F+2); err != nil {
			t.Fatal(err)
		}
		ex := &core.Execution{D: params.D, F: params.F}
		for i := 0; i < params.N; i++ {
			o := core.Outcome{ID: i, Correct: i < correct, Input: inputs[i]}
			if o.Correct {
				dec, err := decFns[i]()
				if err != nil {
					t.Fatalf("node %d: %v", i, err)
				}
				o.Decision = dec
			}
			ex.Outcomes = append(ex.Outcomes, o)
		}
		return ex
	}

	// Baseline: the paper's exact instance — n = 4, d = 3, the three
	// probability-vector inputs, and the Byzantine process announcing the
	// all-zero vector (a legal strategy: it just participates "honestly"
	// with a crafted input).
	cwParams := core.Params{N: 4, F: 1, D: 3}
	cwInputs := []geometry.Vector{
		vec(2.0/3, 1.0/6, 1.0/6),
		vec(1.0/6, 2.0/3, 1.0/6),
		vec(1.0/6, 1.0/6, 2.0/3),
		vec(0, 0, 0),
	}
	exCW := run(cwParams, cwInputs, 3, func(i int) (sim.SyncNode, func() (geometry.Vector, error)) {
		nd, err := core.NewCoordWiseNode(cwParams, sim.ProcID(i), cwInputs[i])
		if err != nil {
			t.Fatal(err)
		}
		return nd, nd.Decision
	})
	if err := exCW.VerifyAgreement(); err != nil {
		t.Fatalf("coordinate-wise should still agree: %v", err)
	}
	err := exCW.VerifyValidity(1e-6)
	if !errors.Is(err, core.ErrValidity) {
		t.Fatalf("coordinate-wise validity error = %v, want ErrValidity", err)
	}
	// The violating decision is exactly the paper's [1/6, 1/6, 1/6].
	want := vec(1.0/6, 1.0/6, 1.0/6)
	if !exCW.Outcomes[0].Decision.ApproxEqual(want, 1e-9) {
		t.Errorf("baseline decided %v, paper predicts %v", exCW.Outcomes[0].Decision, want)
	}

	// Exact BVC needs n ≥ (d+1)f+1 = 5 for d = 3 (the price of real vector
	// validity); with a fourth correct probability vector the decision
	// stays on the simplex.
	bvcParams := core.Params{N: 5, F: 1, D: 3}
	bvcInputs := []geometry.Vector{
		cwInputs[0], cwInputs[1], cwInputs[2],
		vec(1.0/3, 1.0/3, 1.0/3),
		vec(0, 0, 0), // Byzantine announcement
	}
	exBVC := run(bvcParams, bvcInputs, 4, func(i int) (sim.SyncNode, func() (geometry.Vector, error)) {
		nd, err := core.NewExactNode(bvcParams, sim.ProcID(i), bvcInputs[i])
		if err != nil {
			t.Fatal(err)
		}
		return nd, nd.Decision
	})
	if err := exBVC.VerifyExact(1e-6); err != nil {
		t.Fatalf("Exact BVC should be valid: %v", err)
	}
	// The decision is a probability vector.
	dec := exBVC.Outcomes[0].Decision
	var sum float64
	for _, x := range dec {
		sum += x
		if x < -1e-7 {
			t.Errorf("decision coordinate %g < 0", x)
		}
	}
	if diff := sum - 1; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("decision %v sums to %g, want 1", dec, sum)
	}
}

func TestCoordWiseNodeValidation(t *testing.T) {
	if _, err := core.NewCoordWiseNode(core.Params{N: 3, F: 1, D: 1}, 0, vec(1)); err == nil {
		t.Error("n < bound: expected error")
	}
	nd, err := core.NewCoordWiseNode(core.Params{N: 4, F: 1, D: 1}, 0, vec(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nd.Decision(); err == nil {
		t.Error("expected not-terminated error")
	}
}
