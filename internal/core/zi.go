package core

import (
	"fmt"
	"sort"

	"repro/internal/geometry"
	"repro/internal/safearea"
)

// tuple is one (origin, value) pair inside a B set; the restricted
// algorithms and the AAD-based algorithm both reduce to this shape.
type tuple struct {
	origin int
	value  geometry.Vector
}

// gammaPointOfSet computes the deterministic safe point of one candidate
// set C: the tuples are canonicalized by origin id (so any two correct
// processes holding the same set compute the identical multiset and hence
// the identical point — the zij of Observation 2), then Γ(Φ(C))'s
// deterministic point is returned.
func gammaPointOfSet(set []tuple, f int, method safearea.Method) (geometry.Vector, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("core: empty candidate set")
	}
	sorted := make([]tuple, len(set))
	copy(sorted, set)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].origin < sorted[j].origin })
	return gammaPointOfSorted(sorted, f, method)
}

// gammaPointOfSorted is gammaPointOfSet for an already origin-sorted set —
// the Engine's cache-miss compute path.
func gammaPointOfSorted(sorted []tuple, f int, method safearea.Method) (geometry.Vector, error) {
	if len(sorted) == 0 {
		return nil, fmt.Errorf("core: empty candidate set")
	}
	ms := geometry.NewMultiset(sorted[0].value.Dim())
	for _, tp := range sorted {
		if err := ms.Add(tp.value); err != nil {
			return nil, err
		}
	}
	return safearea.PointWith(ms, f, method)
}

// averageGammaPoints computes Zi = {one safe point per candidate set} and
// returns its average — eq. (9) of the paper — along with |Zi|. It is the
// serial reference implementation; production paths go through
// Engine.AverageGamma / Engine.AverageGammaSets, which stream the subset
// enumeration, parallelize the solves and memoize identical sets while
// producing bit-identical results.
func averageGammaPoints(sets [][]tuple, f int, method safearea.Method) (geometry.Vector, int, error) {
	if len(sets) == 0 {
		return nil, 0, fmt.Errorf("core: no candidate sets")
	}
	points := make([]geometry.Vector, 0, len(sets))
	for _, set := range sets {
		pt, err := gammaPointOfSet(set, f, method)
		if err != nil {
			return nil, 0, fmt.Errorf("core: safe point of candidate set: %w", err)
		}
		points = append(points, pt)
	}
	avg, err := geometry.Mean(points)
	if err != nil {
		return nil, 0, err
	}
	return avg, len(points), nil
}
