package core

import (
	"fmt"
	"sort"

	"repro/internal/combin"
	"repro/internal/geometry"
	"repro/internal/safearea"
)

// tuple is one (origin, value) pair inside a B set; the restricted
// algorithms and the AAD-based algorithm both reduce to this shape.
type tuple struct {
	origin int
	value  geometry.Vector
}

// gammaPointOfSet computes the deterministic safe point of one candidate
// set C: the tuples are canonicalized by origin id (so any two correct
// processes holding the same set compute the identical multiset and hence
// the identical point — the zij of Observation 2), then Γ(Φ(C))'s
// deterministic point is returned.
func gammaPointOfSet(set []tuple, f int, method safearea.Method) (geometry.Vector, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("core: empty candidate set")
	}
	sorted := make([]tuple, len(set))
	copy(sorted, set)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].origin < sorted[j].origin })
	ms := geometry.NewMultiset(sorted[0].value.Dim())
	for _, tp := range sorted {
		if err := ms.Add(tp.value); err != nil {
			return nil, err
		}
	}
	return safearea.PointWith(ms, f, method)
}

// averageGammaPoints computes Zi = {one safe point per candidate set} and
// returns its average — eq. (9) of the paper — along with |Zi|.
func averageGammaPoints(sets [][]tuple, f int, method safearea.Method) (geometry.Vector, int, error) {
	if len(sets) == 0 {
		return nil, 0, fmt.Errorf("core: no candidate sets")
	}
	points := make([]geometry.Vector, 0, len(sets))
	for _, set := range sets {
		pt, err := gammaPointOfSet(set, f, method)
		if err != nil {
			return nil, 0, fmt.Errorf("core: safe point of candidate set: %w", err)
		}
		points = append(points, pt)
	}
	avg, err := geometry.Mean(points)
	if err != nil {
		return nil, 0, err
	}
	return avg, len(points), nil
}

// subsetsOfSize enumerates every size-k subset of the given tuples — the
// "for each C ⊆ Bi[t], |C| = n−f" loop of the paper's Step 2.
func subsetsOfSize(tuples []tuple, k int) ([][]tuple, error) {
	if k <= 0 || k > len(tuples) {
		return nil, fmt.Errorf("core: subset size %d of %d tuples", k, len(tuples))
	}
	var out [][]tuple
	err := combin.Combinations(len(tuples), k, func(idx []int) bool {
		set := make([]tuple, k)
		for i, j := range idx {
			set[i] = tuples[j]
		}
		out = append(out, set)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
