// Package core implements the Byzantine vector consensus algorithms of
// Vaidya & Garg (PODC 2013) on the substrates in this repository:
//
//   - Exact BVC (synchronous, §2.2): Byzantine-broadcast every input with
//     EIG, then decide a deterministic point of the safe area Γ(S);
//     requires n ≥ max(3f+1, (d+1)f+1).
//   - Approximate BVC (asynchronous, §3.2): per round, obtain Bi[t] from
//     the AAD witness mechanism, average one safe point per candidate
//     subset, and terminate after the analytic round bound; requires
//     n ≥ (d+2)f+1. The Appendix-F witness optimization (|Zi| ≤ n,
//     γ = 1/n²) is available as a switch.
//   - Restricted-round approximate BVC (§4): one state exchange per round;
//     n ≥ (d+2)f+1 synchronous, n ≥ (d+4)f+1 asynchronous.
//   - Coordinate-wise scalar consensus (§1): the baseline whose vector-
//     validity violation motivates the paper.
//
// All algorithms are event-driven state machines over internal/sim, so the
// same code runs on the deterministic simulator and on live transports.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/combin"
	"repro/internal/geometry"
	"repro/internal/safearea"
	"repro/internal/wire"
)

func init() {
	wire.Register(StateMsg{}) // encoding registry (sanctioned init use)
}

// Variant selects which of the paper's algorithms is meant when validating
// parameters or computing resilience bounds.
type Variant int

// Algorithm variants.
const (
	// VariantExactSync is Exact BVC in a synchronous system (§2.2).
	VariantExactSync Variant = iota + 1
	// VariantApproxAsync is approximate BVC in an asynchronous system
	// using the AAD witness exchange (§3.2).
	VariantApproxAsync
	// VariantRestrictedSync is the one-exchange-per-round synchronous
	// algorithm (§4).
	VariantRestrictedSync
	// VariantRestrictedAsync is the one-exchange-per-round asynchronous
	// algorithm (§4).
	VariantRestrictedAsync
)

func (v Variant) String() string {
	switch v {
	case VariantExactSync:
		return "exact-sync"
	case VariantApproxAsync:
		return "approx-async"
	case VariantRestrictedSync:
		return "restricted-sync"
	case VariantRestrictedAsync:
		return "restricted-async"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// MinProcesses returns the paper's tight bound on the number of processes
// for the variant with the given dimension and fault bound:
//
//	exact sync:        max(3f+1, (d+1)f+1)   (Theorems 1, 3)
//	approx async:      (d+2)f+1              (Theorems 4, 5)
//	restricted sync:   (d+2)f+1              (Theorem 6)
//	restricted async:  (d+4)f+1              (Theorem 6)
func MinProcesses(v Variant, d, f int) int {
	switch v {
	case VariantExactSync:
		a := 3*f + 1
		b := (d+1)*f + 1
		if a > b {
			return a
		}
		return b
	case VariantApproxAsync, VariantRestrictedSync:
		return (d+2)*f + 1
	case VariantRestrictedAsync:
		return (d+4)*f + 1
	default:
		return 0
	}
}

// Params carries the common configuration of every algorithm.
type Params struct {
	// N is the number of processes, F the Byzantine bound, D the vector
	// dimension.
	N, F, D int
	// Epsilon is the ε of ε-agreement (approximate variants only).
	Epsilon float64
	// Bounds is the a-priori input box ([ν, U]^d in the paper); required
	// by the approximate variants' termination rule.
	Bounds geometry.Box
	// Method selects the Γ-point computation (safearea.MethodAuto when
	// zero-valued is not allowed; set explicitly or use Defaults).
	Method safearea.Method
	// MaxRounds, when positive, caps the round horizon of the restricted
	// variants below the analytic termination bound. The analytic bound
	// grows like 1/γ and γ decays combinatorially in n, so large grids run
	// on a fixed horizon instead and are judged by per-round contraction
	// plus validity (see internal/harness.GammaBudget). Exact BVC ignores
	// it; the §3.2 asynchronous algorithm has its own AsyncConfig.MaxRounds.
	MaxRounds int
	// Engine computes the Γ-points (worker pool + memoization). Nil selects
	// the process-wide DefaultEngine; results are bit-identical for every
	// engine configuration, so this is purely a performance/resource knob.
	Engine *Engine
}

// engine resolves the Γ-point engine for this parameter set.
func (p Params) engine() *Engine {
	if p.Engine != nil {
		return p.Engine
	}
	return defaultEngine
}

// WithDefaults fills unset optional fields: MethodAuto for Method.
func (p Params) WithDefaults() Params {
	if p.Method == 0 {
		p.Method = safearea.MethodAuto
	}
	return p
}

// Validate checks the parameters for the given variant, including the
// paper's tight resilience bound.
func (p Params) Validate(v Variant) error {
	if p.D < 1 {
		return fmt.Errorf("core: dimension d=%d, want ≥ 1", p.D)
	}
	if p.F < 0 {
		return fmt.Errorf("core: fault bound f=%d, want ≥ 0", p.F)
	}
	if want := MinProcesses(v, p.D, p.F); p.N < want {
		return fmt.Errorf("core: %v requires n ≥ %d for d=%d f=%d, got n=%d", v, want, p.D, p.F, p.N)
	}
	switch v {
	case VariantApproxAsync, VariantRestrictedSync, VariantRestrictedAsync:
		if !(p.Epsilon > 0) {
			return fmt.Errorf("core: %v requires ε > 0, got %g", v, p.Epsilon)
		}
		if err := p.Bounds.Validate(); err != nil {
			return fmt.Errorf("core: %v bounds: %w", v, err)
		}
		if p.Bounds.Dim() != p.D {
			return fmt.Errorf("core: bounds dimension %d, want %d", p.Bounds.Dim(), p.D)
		}
	case VariantExactSync:
		// No ε or bounds needed.
	default:
		return fmt.Errorf("core: unknown variant %v", v)
	}
	return nil
}

// CheckInput validates a process input vector against the parameters.
func (p Params) CheckInput(x geometry.Vector, needBounds bool) error {
	if x.Dim() != p.D {
		return fmt.Errorf("core: input dimension %d, want %d", x.Dim(), p.D)
	}
	if !x.IsFinite() {
		return errors.New("core: input has non-finite coordinates")
	}
	if needBounds && !p.Bounds.Contains(x, 1e-9) {
		return fmt.Errorf("core: input %v outside bounds [%v, %v]", x, p.Bounds.Lo, p.Bounds.Hi)
	}
	return nil
}

// Gamma returns the per-round contraction weight γ of the variant
// (paper eq. (11) and Appendix F):
//
//	approx async, full Zi:        γ = 1 / (n·C(n, n−f))
//	approx async, witness-opt:    γ = 1 / n²
//	restricted sync:              γ = 1 / (n·C(n, n−f))
//	restricted async:             γ = 1 / (n·C(n−f, n−3f))
//
// The per-round range contraction factor is 1−γ.
func Gamma(v Variant, n, f int, witnessOpt bool) float64 {
	switch v {
	case VariantApproxAsync:
		if witnessOpt {
			return 1 / (float64(n) * float64(n))
		}
		return 1 / (float64(n) * float64(combin.Binomial(n, n-f)))
	case VariantRestrictedSync:
		return 1 / (float64(n) * float64(combin.Binomial(n, n-f)))
	case VariantRestrictedAsync:
		return 1 / (float64(n) * float64(combin.Binomial(n-f, n-3*f)))
	default:
		return 0
	}
}

// RoundBound returns the paper's termination round count
// 1 + ⌈log_{1/(1−γ)} (U−ν)/ε⌉ for contraction weight gamma, input range
// rng = U−ν and agreement parameter eps.
func RoundBound(gamma, rng, eps float64) int {
	if rng <= eps || gamma <= 0 || gamma >= 1 {
		return 1
	}
	// log_{1/(1−γ)} x = ln x / −ln(1−γ).
	r := math.Log(rng/eps) / (-math.Log1p(-gamma))
	return 1 + int(math.Ceil(r))
}

// StateMsg is the one-exchange-per-round message of the restricted
// algorithms (§4): the sender's current vector state tagged by round.
type StateMsg struct {
	Round int
	Value geometry.Vector
}
