package verify

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/aad"
	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/lp"
	"repro/internal/sim"
	"repro/internal/wire"
)

// denseRowCap bounds the programs the dense core is asked to solve: on
// the d = 3 threshold-Γ programs (144 rows) its worst case is seconds of
// grinding into the simplex iteration cap, beyond the fuzz engine's
// per-input hang budget. Oversized programs certify the revised core only.
const denseRowCap = 100

// FuzzLPDifferential solves the decoded program under both simplex cores
// and cross-checks them. The asserted contract, from weakest to strongest:
//
//   - no panics on either core, for any decodable program;
//   - the revised core (the default) never fails where the dense core
//     succeeds — the dense tableau is the fragile one (PR 5 retired it for
//     exactly the degenerate regimes this generator aims at), so the
//     reverse direction (dense errors, revised solves) is logged as a
//     generator find, not a failure;
//   - when both cores return a verdict, the statuses agree;
//   - when both are Optimal, the objectives agree within 1e-5 (scaled)
//     and each core's solution actually satisfies its program — the
//     certified-optimal check, so agreeing on a wrong answer also fails.
//
// Status disagreements and certificate failures adjudicated against the
// loser's own certificate are classified into the documented fragility
// table below instead of failing; that table now includes one
// revised-side class (mode-3 contradicted programs are the first regime
// where the revised core demonstrably wobbles too).
//
// Programs above denseRowCap rows skip the dense core and hold the
// revised core to its certificate alone.
func FuzzLPDifferential(f *testing.F) {
	f.Add([]byte{0, 3, 20, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{1, 0, 0, 4, 0x40, 0x00, 0x80, 0x00, 1, 5, 2, 0x20, 0x10})
	f.Add(EncodeGammaInstance(2, [][]float64{
		{0.25, 0.75}, {0.5, 0.5}, {0.75, 0.25}, {0.25, 0.25}, {0.75, 0.75}, {0.5, 0.1}, {0.1, 0.5},
	}))
	f.Fuzz(diffLPOnce)
}

// diffLPOnce is the differential body shared by FuzzLPDifferential and
// TestFragileCorpusBudget: decode, solve under both cores, cross-check.
func diffLPOnce(t *testing.T, data []byte) {
	spec := DecodeProgram(data)
	if spec == nil {
		return
	}
	rsol, rerr := solveUnder(lp.CoreRevised, spec)
	if spec.NumRows() > denseRowCap {
		if rerr != nil {
			return
		}
		if rsol.Status == lp.Optimal {
			if err := checkFeasible(spec, rsol); err != nil {
				t.Fatalf("revised solution infeasible: %v", err)
			}
		}
		return
	}
	dsol, derr := solveUnder(lp.CoreDense, spec)
	switch {
	case derr != nil && rerr != nil:
		return // both rejected the program identically hard
	case rerr != nil:
		t.Fatalf("revised core failed where dense succeeded: %v\nprogram: %d rows", rerr, spec.NumRows())
	case derr != nil:
		class := classifyDenseErr(derr)
		if class == "" {
			t.Fatalf("dense core failed with an undocumented error class where revised succeeded: %v", derr)
		}
		noteFragility(t, class, fmt.Sprintf("dense core failed where revised succeeded: %v", derr))
		return
	}
	// The revised core's claimed optimum must certify, with one narrow,
	// documented exception: on mode-3 contradicted programs (infeasible
	// by a margin just above the certificate floor) the revised core's
	// Phase 1 can drift past the contradiction too and claim an optimum
	// its own certificate rejects while the dense core refutes it with an
	// Infeasible verdict — the mirror image of refuted-infeasible, found
	// by the near-miss needle stream and pinned as
	// fragile_revised_uncertified_0. Any other certificate failure of the
	// revised core is a regression outright.
	if rsol.Status == lp.Optimal {
		if err := checkFeasible(spec, rsol); err != nil {
			if dsol.Status == lp.Infeasible {
				noteFragility(t, fragRevisedUncertifiedOptimum,
					fmt.Sprintf("revised optimum uncertifiable where dense says Infeasible: %v", err))
				return
			}
			t.Fatalf("revised solution infeasible: %v", err)
		}
	}
	denseCertified := dsol.Status != lp.Optimal || checkFeasible(spec, dsol) == nil
	if dsol.Status != rsol.Status {
		// Adjudicate by certificate. A demonstrably wrong dense result
		// — an uncertifiable optimum, or an Infeasible verdict refuted
		// by the revised core's verified feasible point — is the
		// legacy fragility this corpus exists to document, not a
		// regression. Everything else is a genuine divergence.
		switch {
		case dsol.Status == lp.Optimal && !denseCertified:
			noteFragility(t, fragUncertifiedOptimum,
				fmt.Sprintf("dense optimum uncertifiable where revised says %v", rsol.Status))
		case dsol.Status == lp.Infeasible && rsol.Status == lp.Optimal:
			noteFragility(t, fragRefutedInfeasible,
				"dense Infeasible refuted by certified revised optimum")
		default:
			t.Fatalf("verdicts disagree: dense %v, revised %v (%d rows)", dsol.Status, rsol.Status, spec.NumRows())
		}
		return
	}
	if dsol.Status != lp.Optimal {
		return
	}
	if !denseCertified {
		noteFragility(t, fragSharedVerdictInfeasible,
			"dense optimum infeasible at the shared verdict")
		return
	}
	scale := math.Max(1, math.Abs(dsol.Objective))
	if math.Abs(dsol.Objective-rsol.Objective) > 1e-5*scale {
		t.Fatalf("objectives disagree: dense %g, revised %g", dsol.Objective, rsol.Objective)
	}
}

// Documented dense-core fragility classes. Every known-fragility sighting
// in diffLPOnce must land in exactly one of these; anything else is an
// undocumented failure class and fails the input outright. The classes
// mirror the dense tableau's retirement rationale from PR 5: it loses to
// degeneracy (singular bases, pivot stalls at the iteration cap,
// unbounded pivot directions on bounded programs) and to certification
// (optima that do not satisfy their own program).
// The one revised-side class is the exception to the dense-only rule:
// mode-3 fuzzing demonstrated the revised core's Phase 1 can also drift
// past a hair's-width contradiction (see decodeNearMiss and the ROADMAP
// hardening item); it is classified only when the dense core's Infeasible
// verdict refutes the claim.
const (
	fragSingularBasis             = "dense-error:singular-basis"
	fragIterationCap              = "dense-error:iteration-cap"
	fragUnboundedPivot            = "dense-error:unbounded-pivot"
	fragNotSolved                 = "dense-error:not-solved"
	fragUncertifiedOptimum        = "dense-status:uncertified-optimum"
	fragRefutedInfeasible         = "dense-status:refuted-infeasible"
	fragSharedVerdictInfeasible   = "dense-status:shared-verdict-infeasible"
	fragRevisedUncertifiedOptimum = "revised-status:uncertified-optimum"
)

// fragilityBudget is the counted per-class budget for one replay of the
// committed FuzzLPDifferential seed corpus (TestFragileCorpusBudget). The
// corpus is deterministic, so these are exact counts, not tolerances: a
// count above budget means the dense core regressed on inputs it used to
// survive. The non-zero classes are pinned by the harvested fragile_*
// corpus entries (see TestRegenSeedCorpus); zero-budget classes are
// documented — live fuzzing tolerates them — but have no committed
// trigger yet, so a corpus sighting would mean the corpus changed.
var fragilityBudget = map[string]int{
	fragSingularBasis:             0,
	fragIterationCap:              3,
	fragUnboundedPivot:            0,
	fragNotSolved:                 0,
	fragUncertifiedOptimum:        1,
	fragRefutedInfeasible:         3,
	fragSharedVerdictInfeasible:   3,
	fragRevisedUncertifiedOptimum: 1,
}

// fragilityCounts tallies sightings per class within one test process.
// Fuzz workers each keep their own tally; the budget is only asserted
// against the deterministic corpus replay, never against live fuzzing.
var fragilityCounts = struct {
	mu sync.Mutex
	n  map[string]int
}{n: make(map[string]int)}

// noteFragility records one documented-fragility sighting. Classes
// outside fragilityBudget fail immediately: an undocumented failure mode
// must be triaged and either fixed or added to the table, never logged
// into oblivion.
func noteFragility(t *testing.T, class, detail string) {
	t.Helper()
	if _, ok := fragilityBudget[class]; !ok {
		t.Fatalf("undocumented fragility class %q: %s", class, detail)
	}
	fragilityCounts.mu.Lock()
	fragilityCounts.n[class]++
	n := fragilityCounts.n[class]
	fragilityCounts.mu.Unlock()
	t.Logf("known fragility %s (#%d this process): %s", class, n, detail)
}

// snapshotFragility copies the current per-class tallies.
func snapshotFragility() map[string]int {
	fragilityCounts.mu.Lock()
	defer fragilityCounts.mu.Unlock()
	out := make(map[string]int, len(fragilityCounts.n))
	for k, v := range fragilityCounts.n {
		out[k] = v
	}
	return out
}

// classifyFragility is the silent twin of diffLPOnce: it runs the same
// decode/solve/cross-check pipeline but returns the fragility class the
// input would be logged under ("" for clean inputs, inputs both cores
// reject, or genuine divergences that diffLPOnce would fail on). The
// harvest scan (TestHarvestFragilityTriggers) uses it to search the
// deterministic trial stream for triggers of classes still at budget 0.
func classifyFragility(data []byte) string {
	spec := DecodeProgram(data)
	if spec == nil {
		return ""
	}
	rsol, rerr := solveUnder(lp.CoreRevised, spec)
	if spec.NumRows() > denseRowCap {
		return ""
	}
	dsol, derr := solveUnder(lp.CoreDense, spec)
	switch {
	case derr != nil && rerr != nil:
		return ""
	case rerr != nil:
		return ""
	case derr != nil:
		return classifyDenseErr(derr)
	}
	if rsol.Status == lp.Optimal && checkFeasible(spec, rsol) != nil {
		if dsol.Status == lp.Infeasible {
			return fragRevisedUncertifiedOptimum
		}
		return "" // any other revised certificate failure is fatal, not classified
	}
	denseCertified := dsol.Status != lp.Optimal || checkFeasible(spec, dsol) == nil
	if dsol.Status != rsol.Status {
		switch {
		case dsol.Status == lp.Optimal && !denseCertified:
			return fragUncertifiedOptimum
		case dsol.Status == lp.Infeasible && rsol.Status == lp.Optimal:
			return fragRefutedInfeasible
		}
		return ""
	}
	if dsol.Status == lp.Optimal && !denseCertified {
		return fragSharedVerdictInfeasible
	}
	return ""
}

// classifyDenseErr maps a dense-core solve error to its documented class,
// or "" when the error matches none. lp.ErrNotSolved is exported and
// matched structurally; the solver-internal sentinels (singular basis,
// iteration cap, unbounded pivot) are unexported, so their documented
// message texts are the classification key.
func classifyDenseErr(err error) string {
	switch msg := err.Error(); {
	case errors.Is(err, lp.ErrNotSolved):
		return fragNotSolved
	case strings.Contains(msg, "basis factorization singular"):
		return fragSingularBasis
	case strings.Contains(msg, "iteration cap"):
		return fragIterationCap
	case strings.Contains(msg, "unbounded pivot"):
		return fragUnboundedPivot
	}
	return ""
}

// solveUnder builds a fresh copy of the program and solves it with the
// given core active, restoring the previous core before returning.
func solveUnder(c lp.Core, spec *ProgramSpec) (*lp.Solution, error) {
	prev := lp.SetCore(c)
	defer lp.SetCore(prev)
	p, err := spec.Build()
	if err != nil {
		return nil, err
	}
	return p.Solve()
}

// checkFeasible verifies a claimed-optimal solution against the spec.
func checkFeasible(spec *ProgramSpec, sol *lp.Solution) error {
	const tol = 1e-6
	for j := range spec.Lo {
		x := sol.Values[j]
		if x < spec.Lo[j]-tol || x > spec.Hi[j]+tol {
			return errBounds(j, x, spec.Lo[j], spec.Hi[j])
		}
	}
	for i, row := range spec.Rows {
		var at, mag float64
		for _, tm := range row {
			at += tm.Coeff * sol.Values[tm.Var]
			mag += math.Abs(tm.Coeff * sol.Values[tm.Var])
		}
		rtol := tol * math.Max(1, math.Max(mag, math.Abs(spec.Rhs[i])))
		switch spec.Rels[i] {
		case lp.LE:
			if at > spec.Rhs[i]+rtol {
				return errRow(i, at, spec.Rels[i], spec.Rhs[i])
			}
		case lp.GE:
			if at < spec.Rhs[i]-rtol {
				return errRow(i, at, spec.Rels[i], spec.Rhs[i])
			}
		case lp.EQ:
			if math.Abs(at-spec.Rhs[i]) > rtol {
				return errRow(i, at, spec.Rels[i], spec.Rhs[i])
			}
		}
	}
	return nil
}

func errBounds(j int, x, lo, hi float64) error {
	return fmt.Errorf("var %d = %g outside [%g, %g]", j, x, lo, hi)
}

func errRow(i int, at float64, rel lp.Rel, rhs float64) error {
	return fmt.Errorf("row %d: %g violates %v %g", i, at, rel, rhs)
}

// FuzzWireFrame asserts the frame layer never panics on hostile bytes and
// that every successfully decoded consensus body survives a re-encode /
// re-decode round trip bit-identically.
func FuzzWireFrame(f *testing.F) {
	f.Add(wire.AppendHello(nil, 3, 1))
	f.Add(wire.AppendGoodbye(nil))
	f.Add(wire.AppendEpochAnnounce(nil, 2, []string{"a:1", "b:2"}))
	f.Add(wire.AppendEpochAck(nil, 2))
	f.Add(wire.AppendConsensus(nil, 7, &wire.ConsensusMsg{
		Kind: wire.ConsensusRBC, Phase: 1, Origin: 2, Round: 4, Value: []float64{0.5, 0.25},
	}))
	f.Add([]byte{0, 0, 0, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Stream path: length-prefixed frames from a hostile reader.
		buf := make([]byte, 0, 64)
		r := bytes.NewReader(data)
		for {
			frame, nbuf, err := wire.ReadFrameInto(r, buf)
			buf = nbuf
			if err != nil {
				break
			}
			checkFrame(t, frame)
		}
		// Direct path: the bytes as one frame body.
		checkFrame(t, data)
	})
}

// checkFrame parses one frame and round-trips any decodable payload.
func checkFrame(t *testing.T, frame []byte) {
	h, body, err := wire.ParseFrame(frame)
	if err != nil {
		return
	}
	switch h.Kind {
	case wire.FrameHello:
		if peer, epoch, err := wire.ParseHello(body); err == nil {
			enc := wire.AppendHello(nil, peer, epoch)
			if _, ebody, eerr := wire.ParseFrame(enc[4:]); eerr != nil || !bytes.Equal(ebody, body) {
				t.Fatalf("hello round trip diverged: %v vs %v (%v)", ebody, body, eerr)
			}
		}
	case wire.FrameEpochAnnounce:
		if epoch, addrs, err := wire.ParseEpochAnnounce(body); err == nil {
			enc := wire.AppendEpochAnnounce(nil, epoch, addrs)
			if _, ebody, eerr := wire.ParseFrame(enc[4:]); eerr != nil || !bytes.Equal(ebody, body) {
				t.Fatalf("epoch announce round trip diverged: %v vs %v (%v)", ebody, body, eerr)
			}
		}
	case wire.FrameEpochAck:
		if epoch, err := wire.ParseEpochAck(body); err == nil {
			enc := wire.AppendEpochAck(nil, epoch)
			if _, ebody, eerr := wire.ParseFrame(enc[4:]); eerr != nil || !bytes.Equal(ebody, body) {
				t.Fatalf("epoch ack round trip diverged: %v vs %v (%v)", ebody, body, eerr)
			}
		}
	case wire.FrameConsensus:
		var m wire.ConsensusMsg
		if err := wire.DecodeConsensus(&m, body); err != nil {
			return
		}
		enc := wire.AppendConsensus(nil, h.Instance, &m)
		eh, ebody, err := wire.ParseFrame(enc[4:])
		if err != nil {
			t.Fatalf("re-encoded consensus frame does not parse: %v", err)
		}
		if eh.Instance != h.Instance {
			t.Fatalf("instance diverged: %d vs %d", eh.Instance, h.Instance)
		}
		var m2 wire.ConsensusMsg
		if err := wire.DecodeConsensus(&m2, ebody); err != nil {
			t.Fatalf("re-encoded consensus body does not decode: %v", err)
		}
		if !consensusEqual(&m, &m2) {
			t.Fatalf("consensus round trip diverged: %+v vs %+v", m, m2)
		}
	}
}

// FuzzGobV1 covers the legacy v1 wire path — gob-encoded envelopes under
// 4-byte length-prefix framing, still spoken by the single-tenant
// transport. The contract: no input may panic the frame reader or the gob
// decoder (gob's decode path is a type-driven virtual machine with a
// history of hostile-input panics upstream, so this is not vacuous), and
// every envelope that does decode must re-encode and decode again with
// the same sender and payload type. Importing the protocol packages
// registers their payload types (aad.Msg, broadcast messages,
// core.StateMsg) exactly as a live process would.
func FuzzGobV1(f *testing.F) {
	for _, env := range seedEnvelopes() {
		enc, err := wire.Encode(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		var framed bytes.Buffer
		if err := wire.WriteFrame(&framed, enc); err != nil {
			f.Fatal(err)
		}
		f.Add(framed.Bytes())
	}
	f.Add([]byte{0, 0, 0, 2, 0xff, 0x81})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Stream path: length-prefixed frames from a hostile reader.
		r := bytes.NewReader(data)
		for {
			body, err := wire.ReadFrame(r)
			if err != nil {
				break
			}
			checkGobBody(t, body)
		}
		// Direct path: the bytes as one gob envelope.
		checkGobBody(t, data)
	})
}

// seedEnvelopes builds one v1 envelope per registered payload family.
func seedEnvelopes() []*wire.Envelope {
	return []*wire.Envelope{
		{From: 1, Payload: aad.Msg{
			Kind: aad.KindRBC,
			RBC:  broadcast.RBCMsg{Phase: 1, Origin: 2, Tag: 7, Value: geometry.Vector{0.25, 0.75}},
		}},
		{From: 2, Payload: aad.Msg{
			Kind:   aad.KindReport,
			Report: aad.ReportMsg{Round: 3, Origin: sim.ProcID(4)},
		}},
		{From: 3, Payload: broadcast.RBCMsg{Phase: 2, Origin: 0, Tag: 1, Value: geometry.Vector{-1e9, 0, 1e-9}}},
		{From: 0, Payload: core.StateMsg{Round: 5, Value: geometry.Vector{0.5}}},
		{From: 4, Payload: nil},
	}
}

// checkGobBody decodes one candidate envelope body and, when it decodes,
// requires a clean re-encode / re-decode with sender and payload type
// preserved. Payload values are not compared bit-for-bit: hostile bytes
// can materialize NaNs, which defeat DeepEqual without indicating a wire
// bug.
func checkGobBody(t *testing.T, body []byte) {
	env, err := wire.Decode(body)
	if err != nil {
		return
	}
	enc, err := wire.Encode(env)
	if err != nil {
		t.Fatalf("decoded envelope does not re-encode: %v", err)
	}
	env2, err := wire.Decode(enc)
	if err != nil {
		t.Fatalf("re-encoded envelope does not decode: %v", err)
	}
	if env2.From != env.From {
		t.Fatalf("sender diverged: %d vs %d", env2.From, env.From)
	}
	if ta, tb := reflect.TypeOf(env.Payload), reflect.TypeOf(env2.Payload); ta != tb {
		t.Fatalf("payload type diverged: %v vs %v", ta, tb)
	}
}

func consensusEqual(a, b *wire.ConsensusMsg) bool {
	if a.Kind != b.Kind || a.Phase != b.Phase || a.Origin != b.Origin || a.Round != b.Round {
		return false
	}
	if len(a.Value) != len(b.Value) {
		return false
	}
	for i := range a.Value {
		if math.Float64bits(a.Value[i]) != math.Float64bits(b.Value[i]) {
			return false
		}
	}
	return true
}
