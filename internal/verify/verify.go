// Package verify is the generative adversarial testing subsystem: a
// stateful model-based property harness with shrinking, deterministic
// decoders that turn fuzz bytes into adversarially degenerate linear
// programs, and replay of the committed regression corpora found by the
// schedule-searching adversary (internal/adversary.Search).
//
// The harness is gopter-style but hand-rolled on the standard library: a
// System under test executes self-contained Commands and checks its
// invariants after every step; Run drives a seeded random sequence against
// it and, on the first violation, shrinks the concrete command slice to a
// locally minimal failing sequence (greedy delta-debugging plus
// per-command simplification) and reports it in replayable form. Because
// shrinking replays concrete commands — not the generator — Commands must
// carry all their data, and System.Apply must treat commands made
// structurally inapplicable by earlier removals (an index past the current
// size, a delta that would leave the state out of bounds) as no-ops.
//
// See docs/TESTING.md for the full verification ladder and the replay
// recipes for each rung.
package verify

import (
	"fmt"
	"math/rand"
	"strings"
)

// Command is one self-contained step of a stateful sequence. String must
// render the command with enough precision to reconstruct it exactly
// (print float64 payloads with %v or hexfloat, not a rounded form).
type Command interface {
	String() string
}

// Simplifier is optionally implemented by Commands that can propose
// strictly simpler variants of themselves (smaller payload, lower index).
// Shrink tries the variants in order after sequence-level minimization.
type Simplifier interface {
	Simplify() []Command
}

// System is a model/SUT pair under test. Reset must return the system to a
// state fully determined by seed; Apply executes one command against both
// the system under test and the reference model and checks every invariant
// the pair shares. A non-nil error is a property violation — structurally
// inapplicable commands must be skipped silently instead (see the package
// note on shrinking).
type System interface {
	Reset(seed int64)
	Apply(cmd Command) error
}

// Generator produces the step-th command of a fresh sequence. It must draw
// all randomness from rng so a (seed, steps) pair fully determines the
// sequence.
type Generator func(rng *rand.Rand, step int) Command

// Failure is a shrunk property violation: the seed that produced it, the
// minimal command sequence that still reproduces it, and the violation
// itself.
type Failure struct {
	Seed int64
	Cmds []Command
	Err  error
}

// Error implements error with the full replayable report.
func (f *Failure) Error() string { return f.Report() }

// Report renders the failure in replayable form: the master seed, the
// minimal command sequence, and the violated invariant. Feeding Cmds back
// through Replay reproduces Err.
func (f *Failure) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stateful property failure (seed=%d, %d commands after shrinking)\n", f.Seed, len(f.Cmds))
	for i, c := range f.Cmds {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, c)
	}
	fmt.Fprintf(&b, "  violation: %v\n", f.Err)
	fmt.Fprintf(&b, "  replay: verify.Replay(sys, %d, cmds) with the commands above", f.Seed)
	return b.String()
}

// Run drives steps generated commands against sys from a seed-determined
// initial state. On the first violation the failing prefix is shrunk and
// returned; a nil return means the whole sequence passed.
func Run(sys System, gen Generator, seed int64, steps int) *Failure {
	rng := rand.New(rand.NewSource(seed))
	sys.Reset(seed)
	cmds := make([]Command, 0, steps)
	for i := 0; i < steps; i++ {
		cmd := gen(rng, i)
		if cmd == nil {
			continue
		}
		cmds = append(cmds, cmd)
		if err := sys.Apply(cmd); err != nil {
			return Shrink(sys, seed, cmds, err)
		}
	}
	return nil
}

// Replay resets sys to seed and applies cmds in order, returning the first
// violation (nil if the sequence passes). It is both the shrinking oracle
// and the way to re-run a reported Failure standalone.
func Replay(sys System, seed int64, cmds []Command) error {
	sys.Reset(seed)
	for _, cmd := range cmds {
		if err := sys.Apply(cmd); err != nil {
			return err
		}
	}
	return nil
}

// Shrink minimizes a failing command sequence: first greedy removal (drop
// one command at a time, keeping the drop whenever the remainder still
// fails, until a full pass removes nothing), then per-command
// simplification for commands implementing Simplifier. The result is
// locally minimal — removing any single remaining command makes the
// sequence pass.
func Shrink(sys System, seed int64, cmds []Command, firstErr error) *Failure {
	cur := append([]Command(nil), cmds...)
	err := firstErr

	// Greedy removal until a fixpoint. Scanning from the back first tends
	// to drop the trailing no-op tail cheaply before the O(k²) front scan.
	for removed := true; removed; {
		removed = false
		for i := len(cur) - 1; i >= 0; i-- {
			trial := make([]Command, 0, len(cur)-1)
			trial = append(trial, cur[:i]...)
			trial = append(trial, cur[i+1:]...)
			if terr := Replay(sys, seed, trial); terr != nil {
				cur, err = trial, terr
				removed = true
			}
		}
	}

	// Per-command simplification to a fixpoint.
	for simplified := true; simplified; {
		simplified = false
		for i, c := range cur {
			s, ok := c.(Simplifier)
			if !ok {
				continue
			}
			for _, alt := range s.Simplify() {
				trial := append([]Command(nil), cur...)
				trial[i] = alt
				if terr := Replay(sys, seed, trial); terr != nil {
					cur, err = trial, terr
					simplified = true
					break
				}
			}
		}
	}
	return &Failure{Seed: seed, Cmds: cur, Err: err}
}
