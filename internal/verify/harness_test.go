package verify

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// toySystem is a counter with a planted bug: the invariant breaks once the
// counter has absorbed three or more increments of size ≥ 4, regardless of
// interleaved no-ops. The minimal failing sequence is exactly three
// BigIncr commands, which pins down both removal and simplification.
type toySystem struct {
	big int
}

type toyIncr struct{ N int }

func (c toyIncr) String() string { return fmt.Sprintf("Incr(%d)", c.N) }

// Simplify proposes smaller increments.
func (c toyIncr) Simplify() []Command {
	var out []Command
	for n := 0; n < c.N; n++ {
		out = append(out, toyIncr{N: n})
	}
	return out
}

type toyNoop struct{}

func (toyNoop) String() string { return "Noop()" }

func (s *toySystem) Reset(int64) { s.big = 0 }

func (s *toySystem) Apply(cmd Command) error {
	switch c := cmd.(type) {
	case toyIncr:
		if c.N >= 4 {
			s.big++
		}
		if s.big >= 3 {
			return fmt.Errorf("three big increments")
		}
	case toyNoop:
	}
	return nil
}

func TestHarnessFindsAndShrinks(t *testing.T) {
	sys := &toySystem{}
	gen := func(rng *rand.Rand, _ int) Command {
		if rng.Intn(2) == 0 {
			return toyNoop{}
		}
		return toyIncr{N: rng.Intn(10)}
	}
	fail := Run(sys, gen, 1, 200)
	if fail == nil {
		t.Fatal("planted bug not found in 200 steps")
	}
	if len(fail.Cmds) != 3 {
		t.Fatalf("shrunk to %d commands, want 3:\n%s", len(fail.Cmds), fail.Report())
	}
	for _, c := range fail.Cmds {
		incr, ok := c.(toyIncr)
		if !ok {
			t.Fatalf("non-essential command survived shrinking: %s", c)
		}
		// Simplification should have driven every increment to the
		// smallest value that still counts as big.
		if incr.N != 4 {
			t.Fatalf("command not fully simplified: %s (want Incr(4))", c)
		}
	}
	// The shrunk sequence must replay to the same violation.
	if err := Replay(sys, fail.Seed, fail.Cmds); err == nil {
		t.Fatal("shrunk sequence does not replay to a failure")
	}
	// And be locally minimal: dropping any command makes it pass.
	for i := range fail.Cmds {
		trial := append(append([]Command(nil), fail.Cmds[:i]...), fail.Cmds[i+1:]...)
		if err := Replay(sys, fail.Seed, trial); err != nil {
			t.Fatalf("sequence not minimal: still fails without command %d", i+1)
		}
	}
	for _, want := range []string{"seed=1", "Incr(4)", "replay:", "three big increments"} {
		if !strings.Contains(fail.Report(), want) {
			t.Fatalf("report missing %q:\n%s", want, fail.Report())
		}
	}
}

func TestHarnessPassesCleanSystem(t *testing.T) {
	sys := &toySystem{}
	gen := func(rng *rand.Rand, _ int) Command { return toyIncr{N: rng.Intn(4)} }
	if fail := Run(sys, gen, 2, 500); fail != nil {
		t.Fatalf("clean system reported a failure:\n%s", fail.Report())
	}
}
