package verify

import "testing"

// TestLPChainStateful drives the warm-start layer: membership and joint-Γ
// programs re-solved through a carried Basis while the point set mutates,
// and a Hot tableau accumulating appended rows and objective swaps, each
// checked against cold from-scratch solves after every command.
func TestLPChainStateful(t *testing.T) {
	seeds, steps := 4, 50
	if testing.Short() {
		seeds, steps = 2, 25
	}
	sys := NewLPSystem(2, 6, 2, 5)
	for seed := int64(1); seed <= int64(seeds); seed++ {
		if fail := Run(sys, sys.LPGenerator(), seed, steps); fail != nil {
			t.Fatal(fail.Report())
		}
	}
}
