package verify

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/lp"
	"repro/internal/wire"
)

// TestDecodeProgramTotal: every byte string of length ≥ 4 decodes to a
// buildable, solvable-or-cleanly-rejected program, and decoding is a pure
// function of the bytes.
func TestDecodeProgramTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, rng.Intn(120))
		rng.Read(data)
		spec := DecodeProgram(data)
		again := DecodeProgram(data)
		if (spec == nil) != (again == nil) {
			t.Fatalf("trial %d: decode not deterministic", trial)
		}
		if spec == nil {
			if len(data) >= 4 {
				t.Fatalf("trial %d: %d-byte input rejected", trial, len(data))
			}
			continue
		}
		p, err := spec.Build()
		if err != nil {
			t.Fatalf("trial %d: decoded program does not build: %v", trial, err)
		}
		if _, err := p.Solve(); err != nil {
			// Solver errors (stalls) are legitimate on adversarial input;
			// the differential target compares them across cores instead.
			t.Logf("trial %d: solve error: %v", trial, err)
		}
	}
}

// TestDecodeModesReachDegenerateShapes pins the generator's intent: mode 1
// stacks rows past the small-core cutoff and mode 2 reproduces the
// Lemma-1-threshold joint program shape.
func TestDecodeModesReachDegenerateShapes(t *testing.T) {
	m1 := DecodeProgram([]byte{1, 1, 0, 2, 0x80, 0x00, 3, 0x40, 0x00, 2, 0x20, 0x00})
	if m1 == nil || m1.NumRows() <= smallCutoffRows {
		t.Fatalf("mode 1 program has %d rows, want > %d", rowsOf(m1), smallCutoffRows)
	}
	pts := make([][]float64, 7)
	rng := rand.New(rand.NewSource(3))
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	m2 := DecodeProgram(EncodeGammaInstance(2, pts))
	// d=2, f=2, n=7: C(7,5) groups × (1 + d) rows each.
	if want := 21 * 3; m2 == nil || m2.NumRows() != want {
		t.Fatalf("mode 2 program has %d rows, want %d", rowsOf(m2), want)
	}
	sol, err := mustSolve(m2)
	if err != nil {
		t.Fatalf("threshold Γ program: %v", err)
	}
	t.Logf("threshold Γ verdict: %v", sol.Status)
}

func rowsOf(s *ProgramSpec) int {
	if s == nil {
		return -1
	}
	return s.NumRows()
}

func mustSolve(s *ProgramSpec) (*lp.Solution, error) {
	p, err := s.Build()
	if err != nil {
		return nil, err
	}
	return p.Solve()
}

// TestRegenSeedCorpus regenerates the committed fuzz seed corpus under
// testdata/fuzz/ when VERIFY_REGEN_CORPUS=1 is set: the PR 5 fragile-
// corpus instances (Lemma-1-threshold multisets, d ∈ {2,3}, f = 2,
// seeded uniform coordinates) converted to the mode-2 fuzz encoding, plus
// hand-picked raw/twin seeds. Committed entries are replayed by every
// ordinary `go test` run of this package.
func TestRegenSeedCorpus(t *testing.T) {
	if os.Getenv("VERIFY_REGEN_CORPUS") == "" {
		t.Skip("set VERIFY_REGEN_CORPUS=1 to rewrite testdata/fuzz seed corpora")
	}
	writeEntry := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Fragile-corpus conversions: the same construction as internal/
	// safearea's fragile tests — size (d+1)f+1, f=2, coords from a seeded
	// uniform stream — quantized into the mode-2 encoding.
	for _, d := range []int{2, 3} {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := (d+1)*2 + 1
			pts := make([][]float64, n)
			for i := range pts {
				pt := make([]float64, d)
				for l := range pt {
					pt[l] = rng.Float64()
				}
				pts[i] = pt
			}
			writeEntry("FuzzLPDifferential",
				"fragile_d"+strconv.Itoa(d)+"_s"+strconv.FormatInt(seed, 10),
				EncodeGammaInstance(d, pts))
		}
	}
	// Fragility-class triggers: inputs on which the dense core demonstrably
	// loses to the revised core, found by a seeded random search over the
	// fuzz encoding (seed 1, draw pattern below) and pinned here by trial
	// index rather than by pasted bytes so the corpus regenerates
	// byte-identically. TestFragileCorpusBudget counts these by class.
	harvested := map[int]string{
		3537:  "refuted_infeasible_0",
		7807:  "iteration_cap_0",
		11334: "shared_verdict_0",
		11515: "refuted_infeasible_1",
		12090: "shared_verdict_1",
		13291: "iteration_cap_1",
		14272: "shared_verdict_2",
		21490: "refuted_infeasible_2",
		39811: "iteration_cap_2",
	}
	hrng := rand.New(rand.NewSource(1))
	for trial := 0; trial <= 39811; trial++ {
		data := uniformTrial(hrng)
		if name, ok := harvested[trial]; ok {
			writeEntry("FuzzLPDifferential", "fragile_"+name, data)
		}
	}
	// The near-miss needle stream (seed 2, mode-3 inputs): contradicted
	// twin-degenerate joint-Γ programs, the one regime where a wrong
	// Optimal from either core is necessarily uncertifiable (see
	// nearMissNeedleTrial).
	brng := rand.New(rand.NewSource(2))
	for trial := 0; trial <= lastNearMissNeedle; trial++ {
		data := nearMissNeedleTrial(brng)
		if name, ok := harvestedNearMiss[trial]; ok {
			writeEntry("FuzzLPDifferential", "fragile_"+name, data)
		}
	}
	// Raw palette programs with duplicate rows and twin columns.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 4; i++ {
		data := make([]byte, 40+rng.Intn(80))
		rng.Read(data)
		data[0] = 0
		writeEntry("FuzzLPDifferential", "raw_"+strconv.Itoa(i), data)
	}
	// Twin-column membership stacks.
	for i := 0; i < 4; i++ {
		data := make([]byte, 30+rng.Intn(40))
		rng.Read(data)
		data[0] = 1
		writeEntry("FuzzLPDifferential", "twin_"+strconv.Itoa(i), data)
	}
	// Wire frames: valid frames of each kind plus truncations.
	hello := wire.AppendHello(nil, 5, 1)
	writeEntry("FuzzWireFrame", "hello", hello)
	writeEntry("FuzzWireFrame", "hello_truncated", hello[:len(hello)-2])
	announce := wire.AppendEpochAnnounce(nil, 3, []string{"127.0.0.1:9001", "127.0.0.1:9002"})
	writeEntry("FuzzWireFrame", "epoch_announce", announce)
	writeEntry("FuzzWireFrame", "epoch_announce_truncated", announce[:len(announce)-3])
	writeEntry("FuzzWireFrame", "epoch_ack", wire.AppendEpochAck(nil, 3))
	rbc := wire.AppendConsensus(nil, 42, &wire.ConsensusMsg{
		Kind: wire.ConsensusRBC, Phase: 2, Origin: 1, Round: 3, Value: []float64{0.125, -0.5, 1e-9},
	})
	writeEntry("FuzzWireFrame", "rbc", rbc)
	writeEntry("FuzzWireFrame", "rbc_truncated", rbc[:len(rbc)-5])
	writeEntry("FuzzWireFrame", "report", wire.AppendConsensus(nil, 9, &wire.ConsensusMsg{
		Kind: wire.ConsensusReport, Origin: 4, Round: 2,
	}))
	writeEntry("FuzzWireFrame", "oversize_claim", []byte{0xff, 0xff, 0xff, 0xff, 2, 2, 0})

	// Legacy v1 gob envelopes: one per registered payload family, both
	// bare and framed, plus a truncation and a hostile type descriptor.
	for i, env := range seedEnvelopes() {
		enc, err := wire.Encode(env)
		if err != nil {
			t.Fatal(err)
		}
		name := "env_" + strconv.Itoa(i)
		writeEntry("FuzzGobV1", name, enc)
		var framed bytes.Buffer
		if err := wire.WriteFrame(&framed, enc); err != nil {
			t.Fatal(err)
		}
		writeEntry("FuzzGobV1", name+"_framed", framed.Bytes())
		if len(enc) > 3 {
			writeEntry("FuzzGobV1", name+"_truncated", enc[:len(enc)-3])
		}
	}
	writeEntry("FuzzGobV1", "hostile_typedesc", []byte{0x2c, 0xff, 0x81, 0x03, 0x01, 0x01, 0x08})
}

// uniformTrial draws one input of the uniform harvest stream: arbitrary
// bytes with a uniformly chosen decoder mode. The draw pattern is frozen —
// the harvested table pins corpus entries by index into this stream.
func uniformTrial(hrng *rand.Rand) []byte {
	data := make([]byte, 8+hrng.Intn(90))
	hrng.Read(data)
	data[0] = byte(hrng.Intn(3))
	return data
}

// nearMissNeedleTrial draws one input of the near-miss needle stream:
// mode-3 joint-Γ programs over twin-degenerate points, contradicted by a
// duplicated row whose rhs is offset a hair above the certificate floor
// (see decodeNearMiss). Genuinely infeasible degenerate programs are the
// one regime where a wrong Optimal is necessarily uncertifiable — the
// uncertified-optimum classes the uniform stream never reaches (it
// scanned clean through trial 400000, because its infeasible programs
// all miss by O(1) margins no drift can hide). The draw pattern is
// frozen, as above.
func nearMissNeedleTrial(brng *rand.Rand) []byte {
	data := make([]byte, 16+brng.Intn(82))
	brng.Read(data)
	data[0] = 3
	return data
}

// harvestedNearMiss pins near-miss needle-stream triggers by trial index,
// exactly as the harvested table does for the uniform stream.
// lastNearMissNeedle is the highest pinned index (the regen walks the
// stream that far).
var (
	harvestedNearMiss = map[int]string{
		1121: "uncertified_optimum_0",
		2077: "revised_uncertified_0",
	}
	lastNearMissNeedle = 2077
)

// TestHarvestFragilityTriggers is the search that populates the harvested
// tables in TestRegenSeedCorpus: it walks one of the deterministic trial
// streams (VERIFY_HARVEST_STREAM: "uniform", seed 1 — the default — or
// "nearmiss", seed 2) from VERIFY_HARVEST_FROM (default 0) up to
// VERIFY_HARVEST_TO and logs the trial index of every fragility sighting,
// classified by the silent twin of the differential body. To pin a new
// trigger, run the harvest, copy the logged trial index into the stream's
// harvested map with the next free per-class suffix, bump
// fragilityBudget, and regenerate with VERIFY_REGEN_CORPUS=1. Gated by
// VERIFY_HARVEST=1 — the scan solves two LPs per trial and is far too
// slow for ordinary runs.
func TestHarvestFragilityTriggers(t *testing.T) {
	if os.Getenv("VERIFY_HARVEST") == "" {
		t.Skip("set VERIFY_HARVEST=1 (and VERIFY_HARVEST_FROM/TO/STREAM) to scan a trial stream for fragility triggers")
	}
	from, to := 0, 60000
	if v := os.Getenv("VERIFY_HARVEST_FROM"); v != "" {
		from, _ = strconv.Atoi(v)
	}
	if v := os.Getenv("VERIFY_HARVEST_TO"); v != "" {
		to, _ = strconv.Atoi(v)
	}
	draw := uniformTrial
	rng := rand.New(rand.NewSource(1))
	if os.Getenv("VERIFY_HARVEST_STREAM") == "nearmiss" {
		draw = nearMissNeedleTrial
		rng = rand.New(rand.NewSource(2))
	}
	found := make(map[string]int)
	for trial := 0; trial <= to; trial++ {
		data := draw(rng)
		if trial < from {
			continue
		}
		if class := classifyFragility(data); class != "" {
			found[class]++
			t.Logf("trial %d: %s (sighting #%d in scan)", trial, class, found[class])
		}
	}
	t.Logf("scanned trials [%d, %d]: %v", from, to, found)
}
