package verify

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/hull"
	"repro/internal/service"
)

// This file lifts the live consensus service (internal/service) into the
// stateful property harness: the SUT is a real loopback mesh of n service
// processes with a chaos.Injector wired into each transport, and the
// commands are the operator surface plus fault actions — Propose,
// KillConn, Partition, Heal, Drain, Close. The reference model is the
// sequential lifecycle specification: a healthy (or ≤f-degraded) mesh
// decides every proposed instance inside the hull of the proposed inputs,
// a draining mesh refuses with ErrDraining, a closed mesh refuses with
// ErrServiceClosed, and no command may ever surface a structural
// background error. Faults the service is specified to absorb (killed
// conns, a single partitioned process) must be invisible in those
// outcomes.

// ServiceSystem is the live-service System. The zero value is not usable;
// construct with NewServiceSystem and Close it when done.
type ServiceSystem struct {
	n, f, d int

	// faultAfter, when positive, arms the mutation check: the
	// faultAfter-th KillConn secretly closes the whole target process
	// instead of one connection, while the model keeps believing the mesh
	// is up — a seeded SUT/model divergence the harness must find and
	// shrink to its minimal witness (one kill, one propose).
	faultAfter int
	kills      int

	svcs []*service.Service
	injs []*chaos.Injector

	closed  bool
	drained bool
	part    int // partitioned process id, -1 when whole
	next    uint64
}

// NewServiceSystem builds the system: an n-process mesh in dimension d
// with f=1. n must satisfy the §3.2 bound n ≥ (d+2)f+1.
func NewServiceSystem(n, d int) *ServiceSystem {
	return &ServiceSystem{n: n, f: 1, d: d, part: -1}
}

// ArmFault makes the k-th KillConn diverge (mutation check); k ≤ 0
// disarms.
func (s *ServiceSystem) ArmFault(k int) { s.faultAfter = k }

// Close tears down the current mesh; the system is unusable afterwards
// except through Reset.
func (s *ServiceSystem) Close() {
	for _, svc := range s.svcs {
		if svc != nil {
			_ = svc.Close()
		}
	}
	for _, inj := range s.injs {
		if inj != nil {
			inj.Stop()
		}
	}
	s.svcs, s.injs = nil, nil
}

// SvcPropose opens one instance on every non-partitioned process with the
// carried per-process inputs and waits for the expected outcome.
type SvcPropose struct{ Inputs [][]float64 }

func (c SvcPropose) String() string { return fmt.Sprintf("Propose(%v)", c.Inputs) }

// SvcKillConn severs process I's connection to peer J.
type SvcKillConn struct{ I, J int }

func (c SvcKillConn) String() string { return fmt.Sprintf("KillConn(%d, %d)", c.I, c.J) }

// Simplify proposes lower process and peer indices.
func (c SvcKillConn) Simplify() []Command {
	var out []Command
	for i := 0; i <= c.I; i++ {
		for j := 0; j <= c.J; j++ {
			if (i != c.I || j != c.J) && i != j {
				out = append(out, SvcKillConn{I: i, J: j})
			}
		}
	}
	return out
}

// SvcPartition isolates process P from the rest of the mesh (conns
// severed, dials refused) until the next SvcHeal.
type SvcPartition struct{ P int }

func (c SvcPartition) String() string { return fmt.Sprintf("Partition(%d)", c.P) }

// SvcHeal lifts the active partition.
type SvcHeal struct{}

func (SvcHeal) String() string { return "Heal()" }

// SvcDrain winds the whole mesh down gracefully.
type SvcDrain struct{}

func (SvcDrain) String() string { return "Drain()" }

// SvcClose closes every process.
type SvcClose struct{}

func (SvcClose) String() string { return "Close()" }

// Reset implements System: tear down any previous mesh and establish a
// fresh one. The consensus configuration is fixed; seed feeds the
// services' internal PRNG streams.
func (s *ServiceSystem) Reset(seed int64) {
	s.Close()
	s.closed, s.drained, s.part, s.next, s.kills = false, false, -1, 1, 0

	s.injs = make([]*chaos.Injector, s.n)
	s.svcs = make([]*service.Service, s.n)
	addrs := make([]string, s.n)
	for i := 0; i < s.n; i++ {
		addrs[i] = "127.0.0.1:0"
	}
	node := core.AsyncConfig{
		Params: core.Params{
			N: s.n, F: s.f, D: s.d,
			Epsilon: 0.05,
			Bounds:  geometry.UniformBox(s.d, 0, 1),
		},
		MaxRounds: 2,
	}
	for i := 0; i < s.n; i++ {
		inj, err := chaos.NewInjector(nil, s.n, i)
		if err != nil {
			panic(err) // manual injectors cannot fail construction
		}
		s.injs[i] = inj
		svc, err := service.New(service.Config{
			Node:           node,
			ID:             i,
			Addrs:          addrs,
			Seed:           seed + int64(i),
			Transport:      inj,
			MaxDialBackoff: 100 * time.Millisecond,
		})
		if err != nil {
			panic(fmt.Sprintf("verify: service %d: %v", i, err))
		}
		s.svcs[i] = svc
	}
	final := make([]string, s.n)
	for i, svc := range s.svcs {
		final[i] = svc.Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, s.n)
	for i, svc := range s.svcs {
		i, svc := i, svc
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = svc.Establish(context.Background(), final)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("verify: establish %d: %v", i, err))
		}
	}
}

// Apply implements System. Structurally inapplicable commands (indices
// out of range, a second partition, fault actions on a wound-down mesh)
// are skipped so shrinking stays sound.
func (s *ServiceSystem) Apply(cmd Command) error {
	switch c := cmd.(type) {
	case SvcPropose:
		if len(c.Inputs) != s.n {
			return nil
		}
		if err := s.propose(c); err != nil {
			return err
		}
	case SvcKillConn:
		if c.I < 0 || c.I >= s.n || c.J < 0 || c.J >= s.n || c.I == c.J || s.closed {
			return nil
		}
		s.kills++
		if s.faultAfter > 0 && s.kills == s.faultAfter {
			_ = s.svcs[c.I].Close() // seeded divergence (mutation check)
		} else {
			s.svcs[c.I].KillConn(c.J)
		}
		// Frames in flight on the killed conn are write-dropped — the
		// documented crash-budget semantics. A proposal in that window
		// would spend fault budget the model doesn't track, so let the
		// link notice the kill and redial before the next command.
		time.Sleep(200 * time.Millisecond)
	case SvcPartition:
		if c.P < 0 || c.P >= s.n || s.part >= 0 || s.closed || s.drained {
			return nil
		}
		rest := make([]int, 0, s.n-1)
		for i := 0; i < s.n; i++ {
			if i != c.P {
				rest = append(rest, i)
			}
		}
		for _, inj := range s.injs {
			inj.Partition([][]int{{c.P}, rest})
		}
		s.part = c.P
	case SvcHeal:
		if s.part < 0 {
			return nil
		}
		for _, inj := range s.injs {
			inj.HealAll()
		}
		s.part = -1
	case SvcDrain:
		if s.closed || s.drained {
			return nil
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		for i, svc := range s.svcs {
			if err := svc.Drain(ctx); err != nil {
				return fmt.Errorf("%s: drain of process %d: %w", c, i, err)
			}
		}
		s.drained = true
	case SvcClose:
		if s.closed {
			return nil
		}
		for _, svc := range s.svcs {
			_ = svc.Close()
		}
		s.closed = true
	default:
		return fmt.Errorf("verify: unknown command %T", cmd)
	}
	return s.checkStructural(cmd)
}

// propose runs one SvcPropose against the lifecycle model.
func (s *ServiceSystem) propose(c SvcPropose) error {
	id := s.next
	s.next++

	inputs := make([]geometry.Vector, s.n)
	for i, v := range c.Inputs {
		if len(v) != s.d {
			return nil // structurally inapplicable payload
		}
		inputs[i] = geometry.Vector(v).Clone()
	}

	// Wound-down meshes must refuse with the exact sentinel.
	if s.closed || s.drained {
		want, name := service.ErrServiceClosed, "ErrServiceClosed"
		if !s.closed {
			want, name = service.ErrDraining, "ErrDraining"
		}
		for i, svc := range s.svcs {
			ch, err := svc.Propose(id, inputs[i])
			if err == nil {
				go func() { <-ch }() // drain the stray instance
				return fmt.Errorf("%s: process %d accepted a proposal on a wound-down mesh", c, i)
			}
			if err != want {
				return fmt.Errorf("%s: process %d refused with %v, want %s", c, i, err, name)
			}
		}
		return nil
	}

	// A single partitioned process sits the instance out; the remaining
	// n−f must decide. More partitioned processes than f would void the
	// guarantee, so such commands are structurally inapplicable (the
	// model only ever partitions one).
	proposers := make([]int, 0, s.n)
	proposed := make([]geometry.Vector, 0, s.n)
	for i := 0; i < s.n; i++ {
		if i != s.part {
			proposers = append(proposers, i)
			proposed = append(proposed, inputs[i])
		}
	}
	chans := make(map[int]<-chan service.Result, len(proposers))
	for _, i := range proposers {
		ch, err := s.svcs[i].Propose(id, inputs[i])
		if err != nil {
			return fmt.Errorf("%s: process %d refused a proposal on a live mesh: %w", c, i, err)
		}
		chans[i] = ch
	}
	deadline := time.After(25 * time.Second)
	for _, i := range proposers {
		select {
		case res := <-chans[i]:
			if res.Err != nil {
				return fmt.Errorf("%s: process %d failed instance %d: %w", c, i, id, res.Err)
			}
			in, err := hull.Contains(proposed, res.Decision, 1e-9)
			if err != nil {
				return fmt.Errorf("%s: process %d: containment: %w", c, i, err)
			}
			if !in {
				return fmt.Errorf("%s: process %d decided %v outside the proposed hull", c, i, res.Decision)
			}
		case <-deadline:
			return fmt.Errorf("%s: process %d did not finish instance %d", c, i, id)
		}
	}
	return nil
}

// checkStructural enforces the standing invariant: no command may surface
// a structural background error on any process.
func (s *ServiceSystem) checkStructural(cmd Command) error {
	if s.closed {
		return nil
	}
	for i, svc := range s.svcs {
		if err := svc.Err(); err != nil {
			return fmt.Errorf("%s: process %d structural error: %w", cmd, i, err)
		}
	}
	return nil
}

// ServiceGenerator is the default command mix: proposal-heavy with
// interspersed conn kills and an occasional partition/heal pair; drain
// and close appear rarely so most sequences exercise a live mesh.
func (s *ServiceSystem) ServiceGenerator() Generator {
	return func(rng *rand.Rand, _ int) Command {
		k := rng.Intn(24)
		switch {
		case k == 23:
			return SvcClose{}
		case k == 22:
			return SvcDrain{}
		case k < 10:
			inputs := make([][]float64, s.n)
			for i := range inputs {
				inputs[i] = randVec(rng, s.d)
			}
			return SvcPropose{Inputs: inputs}
		case k < 16:
			return SvcKillConn{I: rng.Intn(s.n), J: rng.Intn(s.n)}
		case k < 19:
			return SvcPartition{P: rng.Intn(s.n)}
		default:
			return SvcHeal{}
		}
	}
}
