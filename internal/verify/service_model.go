package verify

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/hull"
	"repro/internal/service"
)

// This file lifts the live consensus service (internal/service) into the
// stateful property harness: the SUT is a real loopback mesh of n service
// processes with a chaos.Injector wired into each transport, and the
// commands are the operator surface plus fault actions — Propose,
// KillConn, Partition, Heal, Reconfigure, Drain, Close. The reference
// model is the sequential lifecycle specification: a healthy (or
// ≤f-degraded) mesh decides every proposed instance inside the hull of
// the proposed inputs, a draining mesh refuses with ErrDraining, a closed
// mesh refuses with ErrServiceClosed, and no command may ever surface a
// structural background error. The model is epoch-aware: it keeps its own
// membership clock, a Reconfigure retires one process and admits a
// replacement under the next epoch, and after the change every process of
// the mesh must report exactly the model's epoch — with proposals
// deciding across the flip as if nothing happened. Faults the service is
// specified to absorb (killed conns, a single partitioned process, a
// replaced member) must be invisible in those outcomes.

// ServiceSystem is the live-service System. The zero value is not usable;
// construct with NewServiceSystem and Close it when done.
type ServiceSystem struct {
	n, f, d int

	// faultAfter, when positive, arms the mutation check: the
	// faultAfter-th KillConn secretly closes the whole target process
	// instead of one connection, while the model keeps believing the mesh
	// is up — a seeded SUT/model divergence the harness must find and
	// shrink to its minimal witness (one kill, one propose).
	faultAfter int
	kills      int

	// epochFaultAfter arms the epoch mutation check: the
	// epochFaultAfter-th Reconfigure retires the old process and moves
	// the survivors to the next epoch but silently never starts the
	// replacement, while the model believes the mesh is whole at the new
	// epoch — the divergence the epoch-aware checks must catch and
	// shrink to a witness containing the Reconfigure.
	epochFaultAfter int
	reconfigures    int

	svcs []*service.Service
	injs []*chaos.Injector

	seed  int64
	node  core.AsyncConfig
	addrs []string

	closed  bool
	drained bool
	part    int    // partitioned process id, -1 when whole
	epoch   uint64 // the model's membership clock
	next    uint64
}

// NewServiceSystem builds the system: an n-process mesh in dimension d
// with f=1. n must satisfy the §3.2 bound n ≥ (d+2)f+1.
func NewServiceSystem(n, d int) *ServiceSystem {
	return &ServiceSystem{n: n, f: 1, d: d, part: -1}
}

// ArmFault makes the k-th KillConn diverge (mutation check); k ≤ 0
// disarms.
func (s *ServiceSystem) ArmFault(k int) { s.faultAfter = k }

// ArmEpochFault makes the k-th Reconfigure diverge: the old process is
// retired and the survivors move to the next epoch, but the replacement
// is silently never started while the model believes the mesh is whole.
// k ≤ 0 disarms.
func (s *ServiceSystem) ArmEpochFault(k int) { s.epochFaultAfter = k }

// Close tears down the current mesh; the system is unusable afterwards
// except through Reset.
func (s *ServiceSystem) Close() {
	for _, svc := range s.svcs {
		if svc != nil {
			_ = svc.Close()
		}
	}
	for _, inj := range s.injs {
		if inj != nil {
			inj.Stop()
		}
	}
	s.svcs, s.injs = nil, nil
}

// SvcPropose opens one instance on every non-partitioned process with the
// carried per-process inputs and waits for the expected outcome.
type SvcPropose struct{ Inputs [][]float64 }

func (c SvcPropose) String() string { return fmt.Sprintf("Propose(%v)", c.Inputs) }

// SvcKillConn severs process I's connection to peer J.
type SvcKillConn struct{ I, J int }

func (c SvcKillConn) String() string { return fmt.Sprintf("KillConn(%d, %d)", c.I, c.J) }

// Simplify proposes lower process and peer indices.
func (c SvcKillConn) Simplify() []Command {
	var out []Command
	for i := 0; i <= c.I; i++ {
		for j := 0; j <= c.J; j++ {
			if (i != c.I || j != c.J) && i != j {
				out = append(out, SvcKillConn{I: i, J: j})
			}
		}
	}
	return out
}

// SvcPartition isolates process P from the rest of the mesh (conns
// severed, dials refused) until the next SvcHeal.
type SvcPartition struct{ P int }

func (c SvcPartition) String() string { return fmt.Sprintf("Partition(%d)", c.P) }

// SvcHeal lifts the active partition.
type SvcHeal struct{}

func (SvcHeal) String() string { return "Heal()" }

// SvcReconfigure retires process P and admits a replacement under the
// next membership epoch: the survivors are Reconfigured, the successor
// dials in at a fresh address, and the whole mesh must settle on exactly
// the model's epoch.
type SvcReconfigure struct{ P int }

func (c SvcReconfigure) String() string { return fmt.Sprintf("Reconfigure(%d)", c.P) }

// Simplify proposes lower process indices.
func (c SvcReconfigure) Simplify() []Command {
	var out []Command
	for p := 0; p < c.P; p++ {
		out = append(out, SvcReconfigure{P: p})
	}
	return out
}

// SvcDrain winds the whole mesh down gracefully.
type SvcDrain struct{}

func (SvcDrain) String() string { return "Drain()" }

// SvcClose closes every process.
type SvcClose struct{}

func (SvcClose) String() string { return "Close()" }

// Reset implements System: tear down any previous mesh and establish a
// fresh one. The consensus configuration is fixed; seed feeds the
// services' internal PRNG streams.
func (s *ServiceSystem) Reset(seed int64) {
	s.Close()
	s.closed, s.drained, s.part, s.next, s.kills = false, false, -1, 1, 0
	s.epoch, s.reconfigures = 0, 0
	s.seed = seed

	s.injs = make([]*chaos.Injector, s.n)
	s.svcs = make([]*service.Service, s.n)
	addrs := make([]string, s.n)
	for i := 0; i < s.n; i++ {
		addrs[i] = "127.0.0.1:0"
	}
	s.node = core.AsyncConfig{
		Params: core.Params{
			N: s.n, F: s.f, D: s.d,
			Epsilon: 0.05,
			Bounds:  geometry.UniformBox(s.d, 0, 1),
		},
		MaxRounds: 2,
	}
	for i := 0; i < s.n; i++ {
		inj, err := chaos.NewInjector(nil, s.n, i)
		if err != nil {
			panic(err) // manual injectors cannot fail construction
		}
		s.injs[i] = inj
		svc, err := service.New(service.Config{
			Node:           s.node,
			ID:             i,
			Addrs:          addrs,
			Seed:           seed + int64(i),
			Transport:      inj,
			MaxDialBackoff: 100 * time.Millisecond,
		})
		if err != nil {
			panic(fmt.Sprintf("verify: service %d: %v", i, err))
		}
		s.svcs[i] = svc
	}
	s.addrs = make([]string, s.n)
	for i, svc := range s.svcs {
		s.addrs[i] = svc.Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, s.n)
	for i, svc := range s.svcs {
		i, svc := i, svc
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = svc.Establish(context.Background(), s.addrs)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("verify: establish %d: %v", i, err))
		}
	}
}

// Apply implements System. Structurally inapplicable commands (indices
// out of range, a second partition, fault actions on a wound-down mesh)
// are skipped so shrinking stays sound.
func (s *ServiceSystem) Apply(cmd Command) error {
	switch c := cmd.(type) {
	case SvcPropose:
		if len(c.Inputs) != s.n {
			return nil
		}
		if err := s.propose(c); err != nil {
			return err
		}
	case SvcKillConn:
		if c.I < 0 || c.I >= s.n || c.J < 0 || c.J >= s.n || c.I == c.J || s.closed {
			return nil
		}
		s.kills++
		if s.faultAfter > 0 && s.kills == s.faultAfter {
			_ = s.svcs[c.I].Close() // seeded divergence (mutation check)
		} else {
			s.svcs[c.I].KillConn(c.J)
		}
		// Frames in flight on the killed conn are write-dropped — the
		// documented crash-budget semantics. A proposal in that window
		// would spend fault budget the model doesn't track, so let the
		// link notice the kill and redial before the next command.
		time.Sleep(200 * time.Millisecond)
	case SvcPartition:
		if c.P < 0 || c.P >= s.n || s.part >= 0 || s.closed || s.drained {
			return nil
		}
		rest := make([]int, 0, s.n-1)
		for i := 0; i < s.n; i++ {
			if i != c.P {
				rest = append(rest, i)
			}
		}
		for _, inj := range s.injs {
			inj.Partition([][]int{{c.P}, rest})
		}
		s.part = c.P
	case SvcHeal:
		if s.part < 0 {
			return nil
		}
		for _, inj := range s.injs {
			inj.HealAll()
		}
		s.part = -1
	case SvcReconfigure:
		if c.P < 0 || c.P >= s.n || s.closed || s.drained || s.part >= 0 {
			return nil
		}
		if err := s.reconfigure(c); err != nil {
			return err
		}
	case SvcDrain:
		if s.closed || s.drained {
			return nil
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		for i, svc := range s.svcs {
			if err := svc.Drain(ctx); err != nil {
				return fmt.Errorf("%s: drain of process %d: %w", c, i, err)
			}
		}
		s.drained = true
	case SvcClose:
		if s.closed {
			return nil
		}
		for _, svc := range s.svcs {
			_ = svc.Close()
		}
		s.closed = true
	default:
		return fmt.Errorf("verify: unknown command %T", cmd)
	}
	return s.checkStructural(cmd)
}

// propose runs one SvcPropose against the lifecycle model.
func (s *ServiceSystem) propose(c SvcPropose) error {
	id := s.next
	s.next++

	inputs := make([]geometry.Vector, s.n)
	for i, v := range c.Inputs {
		if len(v) != s.d {
			return nil // structurally inapplicable payload
		}
		inputs[i] = geometry.Vector(v).Clone()
	}

	// Wound-down meshes must refuse with the exact sentinel.
	if s.closed || s.drained {
		want, name := service.ErrServiceClosed, "ErrServiceClosed"
		if !s.closed {
			want, name = service.ErrDraining, "ErrDraining"
		}
		for i, svc := range s.svcs {
			ch, err := svc.Propose(id, inputs[i])
			if err == nil {
				go func() { <-ch }() // drain the stray instance
				return fmt.Errorf("%s: process %d accepted a proposal on a wound-down mesh", c, i)
			}
			if err != want {
				return fmt.Errorf("%s: process %d refused with %v, want %s", c, i, err, name)
			}
		}
		return nil
	}

	// A single partitioned process sits the instance out; the remaining
	// n−f must decide. More partitioned processes than f would void the
	// guarantee, so such commands are structurally inapplicable (the
	// model only ever partitions one).
	proposers := make([]int, 0, s.n)
	proposed := make([]geometry.Vector, 0, s.n)
	for i := 0; i < s.n; i++ {
		if i != s.part {
			proposers = append(proposers, i)
			proposed = append(proposed, inputs[i])
		}
	}
	chans := make(map[int]<-chan service.Result, len(proposers))
	for _, i := range proposers {
		ch, err := s.svcs[i].Propose(id, inputs[i])
		if err != nil {
			return fmt.Errorf("%s: process %d refused a proposal on a live mesh: %w", c, i, err)
		}
		chans[i] = ch
	}
	deadline := time.After(25 * time.Second)
	for _, i := range proposers {
		select {
		case res := <-chans[i]:
			if res.Err != nil {
				return fmt.Errorf("%s: process %d failed instance %d: %w", c, i, id, res.Err)
			}
			in, err := hull.Contains(proposed, res.Decision, 1e-9)
			if err != nil {
				return fmt.Errorf("%s: process %d: containment: %w", c, i, err)
			}
			if !in {
				return fmt.Errorf("%s: process %d decided %v outside the proposed hull", c, i, res.Decision)
			}
		case <-deadline:
			return fmt.Errorf("%s: process %d did not finish instance %d", c, i, id)
		}
	}
	return nil
}

// reconfigure runs one SvcReconfigure against the epoch-aware model:
// retire process P, advance the membership clock, Reconfigure every
// survivor, admit the replacement at a fresh address, and require the
// whole mesh to report exactly the model's epoch. Under an armed epoch
// fault the replacement is silently never started — the model keeps
// believing the mesh is whole, and the harness must catch the
// divergence (at the epoch check, or at the next proposal).
func (s *ServiceSystem) reconfigure(c SvcReconfigure) error {
	s.reconfigures++
	faulty := s.epochFaultAfter > 0 && s.reconfigures == s.epochFaultAfter

	_ = s.svcs[c.P].Close()
	s.epoch++

	if !faulty {
		tmpl := append([]string(nil), s.addrs...)
		tmpl[c.P] = "127.0.0.1:0"
		repl, err := service.New(service.Config{
			Node:           s.node,
			ID:             c.P,
			Epoch:          s.epoch,
			Addrs:          tmpl,
			Seed:           s.seed + int64(s.n)*int64(s.epoch) + int64(c.P),
			Transport:      s.injs[c.P],
			MaxDialBackoff: 100 * time.Millisecond,
		})
		if err != nil {
			return fmt.Errorf("%s: replacement for process %d: %w", c, c.P, err)
		}
		s.addrs[c.P] = repl.Addr()
		next := service.Membership{Epoch: s.epoch, Addrs: append([]string(nil), s.addrs...)}
		for i, svc := range s.svcs {
			if i == c.P {
				continue
			}
			if err := svc.Reconfigure(next); err != nil && !errors.Is(err, service.ErrStaleEpoch) {
				_ = repl.Close()
				return fmt.Errorf("%s: survivor %d refused epoch %d: %w", c, i, s.epoch, err)
			}
		}
		s.svcs[c.P] = repl
		if err := repl.Establish(context.Background(), next.Addrs); err != nil {
			return fmt.Errorf("%s: replacement %d did not establish at epoch %d: %w", c, c.P, s.epoch, err)
		}
	} else {
		// Seeded divergence: survivors move on, the successor never comes.
		next := service.Membership{Epoch: s.epoch, Addrs: append([]string(nil), s.addrs...)}
		for i, svc := range s.svcs {
			if i != c.P {
				_ = svc.Reconfigure(next)
			}
		}
	}

	// Epoch-aware lifecycle check: the mesh must settle on the model's
	// clock — every process, including the replacement, at exactly epoch.
	for i, svc := range s.svcs {
		if got := svc.Epoch(); got != s.epoch {
			return fmt.Errorf("%s: process %d reports epoch %d, model at %d", c, i, got, s.epoch)
		}
	}
	return nil
}

// checkStructural enforces the standing invariant: no command may surface
// a structural background error on any process.
func (s *ServiceSystem) checkStructural(cmd Command) error {
	if s.closed {
		return nil
	}
	for i, svc := range s.svcs {
		if err := svc.Err(); err != nil {
			return fmt.Errorf("%s: process %d structural error: %w", cmd, i, err)
		}
	}
	return nil
}

// ServiceGenerator is the default command mix: proposal-heavy with
// interspersed conn kills, an occasional partition/heal pair, and a rare
// membership replacement; drain and close appear rarely so most
// sequences exercise a live mesh.
func (s *ServiceSystem) ServiceGenerator() Generator {
	return func(rng *rand.Rand, _ int) Command {
		k := rng.Intn(24)
		switch {
		case k == 23:
			return SvcClose{}
		case k == 22:
			return SvcDrain{}
		case k == 21:
			return SvcReconfigure{P: rng.Intn(s.n)}
		case k < 10:
			inputs := make([][]float64, s.n)
			for i := range inputs {
				inputs[i] = randVec(rng, s.d)
			}
			return SvcPropose{Inputs: inputs}
		case k < 15:
			return SvcKillConn{I: rng.Intn(s.n), J: rng.Intn(s.n)}
		case k < 18:
			return SvcPartition{P: rng.Intn(s.n)}
		default:
			return SvcHeal{}
		}
	}
}
