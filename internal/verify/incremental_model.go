package verify

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/safearea"
)

// This file is the stateful model for safearea.Incremental: the SUT is an
// Incremental instance mutated in place by Add/Remove/Swap deltas; the
// reference model is a plain vector slice rebuilt into a fresh Incremental
// after every command. The shared invariants are bit-identity of the
// canonical key, the Γ-point, and the emptiness/containment verdicts —
// exactly the contract the Γ engine's memo tables rely on (a cross-round
// delta must land in the same state as a from-scratch build, or memoized
// results poison later rounds).

// IncSystem is the Incremental-vs-rebuild System. The zero value is not
// usable; construct with NewIncSystem.
type IncSystem struct {
	d, f   int
	minLen int // Lemma-1 floor (d+1)f+1: Γ stays nonempty, Point stays legal
	maxLen int

	// faultAfter, when positive, arms the mutation check: the faultAfter-th
	// Swap applied to the SUT perturbs its vector by 2⁻³⁰ in coordinate 0
	// while the model keeps the exact value — a seeded incremental-vs-
	// rebuild divergence the harness must find and shrink.
	faultAfter int
	swaps      int

	inc    *safearea.Incremental
	mirror []geometry.Vector
}

// NewIncSystem builds the system for dimension d and fault bound f. The
// live size is kept in [(d+1)f+1, (d+1)f+1+slack].
func NewIncSystem(d, f, slack int) *IncSystem {
	min := (d+1)*f + 1
	return &IncSystem{d: d, f: f, minLen: min, maxLen: min + slack}
}

// ArmFault makes the k-th Swap diverge (mutation check); k ≤ 0 disarms.
func (s *IncSystem) ArmFault(k int) { s.faultAfter = k }

// CmdAdd appends a point to the multiset.
type CmdAdd struct{ V []float64 }

func (c CmdAdd) String() string { return fmt.Sprintf("Add(%v)", c.V) }

// CmdRemove deletes slot I.
type CmdRemove struct{ I int }

func (c CmdRemove) String() string { return fmt.Sprintf("Remove(%d)", c.I) }

// CmdSwap replaces slot I with V.
type CmdSwap struct {
	I int
	V []float64
}

func (c CmdSwap) String() string { return fmt.Sprintf("Swap(%d, %v)", c.I, c.V) }

// Simplify proposes lower slot indices with the same payload.
func (c CmdSwap) Simplify() []Command {
	var out []Command
	for i := 0; i < c.I; i++ {
		out = append(out, CmdSwap{I: i, V: c.V})
	}
	return out
}

// CmdQuery probes Contains(Z) on both sides without mutating.
type CmdQuery struct{ Z []float64 }

func (c CmdQuery) String() string { return fmt.Sprintf("Query(%v)", c.Z) }

// Reset implements System: a seed-determined threshold-size multiset.
func (s *IncSystem) Reset(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	s.swaps = 0
	s.mirror = s.mirror[:0]
	ms := geometry.NewMultiset(s.d)
	for i := 0; i < s.minLen; i++ {
		v := randVec(rng, s.d)
		s.mirror = append(s.mirror, geometry.Vector(v).Clone())
		if err := ms.Add(v); err != nil {
			panic(err) // dimensions are correct by construction
		}
	}
	inc, err := safearea.NewIncremental(ms, s.f)
	if err != nil {
		panic(err) // size ≥ (d+1)f+1 by construction
	}
	s.inc = inc
}

// Apply implements System. Structurally inapplicable commands (index out of
// range, size leaving the legal window) are skipped so shrinking stays
// sound.
func (s *IncSystem) Apply(cmd Command) error {
	switch c := cmd.(type) {
	case CmdAdd:
		if len(s.mirror) >= s.maxLen || len(c.V) != s.d {
			return nil
		}
		v := geometry.Vector(c.V).Clone()
		if err := s.inc.Add(v.Clone()); err != nil {
			return fmt.Errorf("%s: SUT Add failed: %w", c, err)
		}
		s.mirror = append(s.mirror, v)
	case CmdRemove:
		if c.I < 0 || c.I >= len(s.mirror) || len(s.mirror) <= s.minLen {
			return nil
		}
		if err := s.inc.Remove(c.I); err != nil {
			return fmt.Errorf("%s: SUT Remove failed: %w", c, err)
		}
		s.mirror = append(s.mirror[:c.I], s.mirror[c.I+1:]...)
	case CmdSwap:
		if c.I < 0 || c.I >= len(s.mirror) || len(c.V) != s.d {
			return nil
		}
		v := geometry.Vector(c.V).Clone()
		sut := v.Clone()
		s.swaps++
		if s.faultAfter > 0 && s.swaps == s.faultAfter {
			sut[0] += 1.0 / (1 << 30) // seeded divergence (mutation check)
		}
		if err := s.inc.Swap(c.I, sut); err != nil {
			return fmt.Errorf("%s: SUT Swap failed: %w", c, err)
		}
		s.mirror[c.I] = v
	case CmdQuery:
		if len(c.Z) != s.d {
			return nil
		}
		return s.checkQuery(geometry.Vector(c.Z))
	default:
		return fmt.Errorf("verify: unknown command %T", cmd)
	}
	return s.checkAll(cmd)
}

// scratch rebuilds an Incremental from the model state.
func (s *IncSystem) scratch() *safearea.Incremental {
	ms := geometry.NewMultiset(s.d)
	for _, v := range s.mirror {
		if err := ms.Add(v.Clone()); err != nil {
			panic(err)
		}
	}
	inc, err := safearea.NewIncremental(ms, s.f)
	if err != nil {
		panic(err)
	}
	return inc
}

// checkAll compares the mutated SUT against a from-scratch rebuild:
// canonical key, Γ-point, and emptiness must be bit-identical, plus a
// containment probe at the model centroid.
func (s *IncSystem) checkAll(cmd Command) error {
	ref := s.scratch()
	if got, want := s.inc.Len(), ref.Len(); got != want {
		return fmt.Errorf("%s: Len %d, rebuild %d", cmd, got, want)
	}
	if got, want := s.inc.Groups(), ref.Groups(); got != want {
		return fmt.Errorf("%s: Groups %d, rebuild %d", cmd, got, want)
	}
	if got, want := s.inc.Key(nil), ref.Key(nil); !bytes.Equal(got, want) {
		return fmt.Errorf("%s: canonical key diverged from rebuild", cmd)
	}
	p1, err1 := s.inc.Point(safearea.MethodAuto)
	p2, err2 := ref.Point(safearea.MethodAuto)
	if (err1 == nil) != (err2 == nil) {
		return fmt.Errorf("%s: Point errors diverged: SUT %v, rebuild %v", cmd, err1, err2)
	}
	if err1 == nil && !p1.Equal(p2) {
		return fmt.Errorf("%s: Γ-point diverged: SUT %v, rebuild %v", cmd, p1, p2)
	}
	e1, err1 := s.inc.IsEmpty()
	e2, err2 := ref.IsEmpty()
	if (err1 == nil) != (err2 == nil) || e1 != e2 {
		return fmt.Errorf("%s: IsEmpty diverged: SUT (%v,%v), rebuild (%v,%v)", cmd, e1, err1, e2, err2)
	}
	return s.checkQuery(centroid(s.mirror, s.d))
}

// checkQuery compares one containment verdict between SUT and rebuild.
func (s *IncSystem) checkQuery(z geometry.Vector) error {
	ref := s.scratch()
	c1, err1 := s.inc.Contains(z, 0)
	c2, err2 := ref.Contains(z, 0)
	if (err1 == nil) != (err2 == nil) || c1 != c2 {
		return fmt.Errorf("Query(%v): Contains diverged: SUT (%v,%v), rebuild (%v,%v)", z, c1, err1, c2, err2)
	}
	return nil
}

// IncGenerator is the default command mix: mutation-heavy with
// interspersed containment probes.
func (s *IncSystem) IncGenerator() Generator {
	return func(rng *rand.Rand, _ int) Command {
		switch k := rng.Intn(10); {
		case k < 2:
			return CmdAdd{V: randVec(rng, s.d)}
		case k < 4:
			return CmdRemove{I: rng.Intn(s.maxLen)}
		case k < 8:
			return CmdSwap{I: rng.Intn(s.maxLen), V: randVec(rng, s.d)}
		default:
			return CmdQuery{Z: randVec(rng, s.d)}
		}
	}
}

func randVec(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

func centroid(pts []geometry.Vector, d int) geometry.Vector {
	c := geometry.NewVector(d)
	if len(pts) == 0 {
		return c
	}
	for _, p := range pts {
		for i := 0; i < d; i++ {
			c[i] += p[i]
		}
	}
	for i := range c {
		c[i] /= float64(len(pts))
	}
	return c
}
