package verify

import (
	"encoding/binary"
	"math"

	"repro/internal/lp"
)

// This file is the deterministic fuzz-input decoder: arbitrary bytes are
// mapped to adversarially degenerate linear programs — the PR 5 fragile
// corpus generalized into a generator. Four regimes, selected by the
// first byte:
//
//	mode 0 — raw quantized programs: coefficients drawn from a small
//	  palette (exact duplicates and rational ratios arise constantly, so
//	  parallel rows, twin columns, and singular submatrices are the common
//	  case, not the exception), with explicit duplicate-row and
//	  twin-column operators layered on top;
//	mode 1 — twin-column membership stacks: hull-membership blocks whose
//	  point sets contain exact and 1e-12-perturbed duplicates, replicated
//	  past the small-program cutoff so the revised core's LU path faces
//	  the resulting near-singular bases;
//	mode 2 — Lemma-1-threshold hulls: the joint Γ-intersection program of
//	  a 16-bit-quantized multiset at the critical size |Y| = (d+1)f+1,
//	  the exact shape of the fragile corpus (EncodeGammaInstance converts
//	  those instances into this encoding for the seed corpus);
//	mode 3 — contradicted joint hulls: the mode-2 joint Γ-intersection
//	  shape over a twin-degenerate point set, with one constraint row
//	  duplicated verbatim under a right-hand side offset by a small
//	  controlled margin (≥ 1e-4), so the program is genuinely infeasible
//	  by an amount far above every solver tolerance yet far below the
//	  data scale. Modes 1 and 2 are feasible by construction, which is
//	  why no input of theirs can pair a wrong dense-core Optimal with a
//	  revised-core refutation; mode 3 closes that gap — on its programs
//	  any dense Optimal is necessarily an uncertifiable verdict.
//
// Every byte stream decodes to *some* program (exhausted input reads
// zeros); inputs shorter than 4 bytes are rejected so the empty input does
// not dominate fuzz exploration.

// ProgramSpec is a decoded LP in neutral form: Build constructs a fresh
// lp.Problem from it, so the differential fuzzer can solve the identical
// program once per core.
type ProgramSpec struct {
	Lo, Hi []float64 // per-variable bounds
	Rows   [][]lp.Term
	Rels   []lp.Rel
	Rhs    []float64
	Sense  lp.Sense
	Obj    []lp.Term
}

// Build constructs the program.
func (s *ProgramSpec) Build() (*lp.Problem, error) {
	p := lp.NewProblem()
	for i := range s.Lo {
		if _, err := p.AddVar("x", s.Lo[i], s.Hi[i]); err != nil {
			return nil, err
		}
	}
	for i, row := range s.Rows {
		if err := p.AddConstraint("r", row, s.Rels[i], s.Rhs[i]); err != nil {
			return nil, err
		}
	}
	if err := p.SetObjective(s.Sense, s.Obj); err != nil {
		return nil, err
	}
	return p, nil
}

// NumRows returns the constraint count (the small-core cutoff indicator).
func (s *ProgramSpec) NumRows() int { return len(s.Rows) }

// cursor reads fuzz bytes, yielding zeros once exhausted so every input
// decodes.
type cursor struct {
	data []byte
	i    int
}

func (c *cursor) u8() byte {
	if c.i >= len(c.data) {
		return 0
	}
	b := c.data[c.i]
	c.i++
	return b
}

func (c *cursor) u16() uint16 {
	return uint16(c.u8())<<8 | uint16(c.u8())
}

// coef is the mode-0 coefficient palette: small exact values whose ratios
// collide, the breeding ground for degenerate pivots.
var coefPalette = []float64{0, 0.5, 1, 2, -0.5, -1, -2, 1}

// boundPalette gives per-variable (lo, hi) pairs.
var boundPalette = [][2]float64{
	{0, 4},
	{-2, 2},
	{0, math.Inf(1)},
	{-1, 1},
}

// DecodeProgram decodes fuzz bytes into an adversarially degenerate LP.
// It returns nil for inputs too short to carry a mode selector.
func DecodeProgram(data []byte) *ProgramSpec {
	if len(data) < 4 {
		return nil
	}
	c := &cursor{data: data}
	switch c.u8() % 4 {
	case 0:
		return decodeRaw(c)
	case 1:
		return decodeTwinMembership(c)
	case 2:
		return decodeThresholdGamma(c)
	default:
		return decodeNearMiss(c)
	}
}

// decodeRaw builds a palette-coefficient program with explicit duplicate-
// row and twin-column operators.
func decodeRaw(c *cursor) *ProgramSpec {
	nv := 2 + int(c.u8()%10)
	nr := 4 + int(c.u8()%40)
	s := &ProgramSpec{Sense: lp.Minimize}
	for j := 0; j < nv; j++ {
		b := boundPalette[c.u8()%byte(len(boundPalette))]
		s.Lo = append(s.Lo, b[0])
		s.Hi = append(s.Hi, b[1])
	}
	// Dense coefficient matrix in palette values; rows may duplicate or
	// scale the previous row, columns may twin an earlier column.
	mat := make([][]float64, nr)
	for i := range mat {
		mat[i] = make([]float64, nv)
		switch kind := c.u8() % 4; {
		case kind == 2 && i > 0: // exact duplicate of the previous row
			copy(mat[i], mat[i-1])
		case kind == 3 && i > 0: // scaled copy (parallel constraint)
			for j, a := range mat[i-1] {
				mat[i][j] = 2 * a
			}
		default:
			for j := range mat[i] {
				mat[i][j] = coefPalette[c.u8()%byte(len(coefPalette))]
			}
		}
	}
	// Twin columns: copy column src over column dst.
	for t := int(c.u8() % 3); t > 0; t-- {
		src, dst := int(c.u8())%nv, int(c.u8())%nv
		for i := range mat {
			mat[i][dst] = mat[i][src]
		}
	}
	for i := range mat {
		row := make([]lp.Term, 0, nv)
		for j, a := range mat[i] {
			if a != 0 {
				row = append(row, lp.Term{Var: lp.VarID(j), Coeff: a})
			}
		}
		if len(row) == 0 {
			continue
		}
		s.Rows = append(s.Rows, row)
		s.Rels = append(s.Rels, []lp.Rel{lp.LE, lp.GE, lp.EQ}[c.u8()%3])
		s.Rhs = append(s.Rhs, coefPalette[c.u8()%byte(len(coefPalette))]*float64(1+c.u8()%3))
	}
	if c.u8()%2 == 1 {
		s.Sense = lp.Maximize
	}
	for j := 0; j < nv; j++ {
		if a := coefPalette[c.u8()%byte(len(coefPalette))]; a != 0 {
			s.Obj = append(s.Obj, lp.Term{Var: lp.VarID(j), Coeff: a})
		}
	}
	// Bounded boxes unless every variable drew the one unbounded palette
	// entry, so Unbounded verdicts stay reachable but rare.
	return s
}

// decodeTwinMembership stacks hull-membership blocks with twinned points.
func decodeTwinMembership(c *cursor) *ProgramSpec {
	d := 1 + int(c.u8()%3)
	f := 1 + int(c.u8()%2)
	pts := twinPoints(c, d, (d+1)*f+1)
	n := len(pts)
	z := make([]float64, d)
	if c.u8()%2 == 0 {
		for _, p := range pts { // centroid: inside every hull
			for l := range z {
				z[l] += p[l] / float64(n)
			}
		}
	} else {
		for l := range z { // far corner: outside unless the hull is huge
			z[l] = 2 + float64(c.u8()%3)
		}
	}
	return stackMembershipBlocks(pts, z, d)
}

// twinPoints draws n points in [0,1]^d with exact and 1e-12-perturbed
// duplicates, the mode-1/3 degeneracy source.
func twinPoints(c *cursor, d, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		ctrl := c.u8()
		if i > 0 && ctrl%4 == 0 { // exact twin of an earlier point
			pts[i] = append([]float64(nil), pts[int(ctrl/4)%i]...)
			continue
		}
		if i > 0 && ctrl%4 == 1 { // near-twin: 1e-12 perturbation
			src := pts[int(ctrl/4)%i]
			pt := append([]float64(nil), src...)
			pt[int(c.u8())%d] += 1e-12
			pts[i] = pt
			continue
		}
		pt := make([]float64, d)
		for l := range pt {
			pt[l] = float64(c.u16()) / 65535
		}
		pts[i] = pt
	}
	return pts
}

// stackMembershipBlocks replicates the membership block past the
// small-core cutoff so the revised LU path, not the small-program tableau
// kernel, faces the twins.
func stackMembershipBlocks(pts [][]float64, z []float64, d int) *ProgramSpec {
	blocks := 1 + (smallCutoffRows / (1 + 2*d))
	s := &ProgramSpec{Sense: lp.Minimize}
	for b := 0; b < blocks; b++ {
		appendMembershipBlock(s, pts, z, 1e-7)
	}
	return s
}

// decodeNearMiss builds the mode-2 joint Γ-intersection program — the
// shared-z, every-(n−f)-group shape where the dense core demonstrably
// grinds (every committed iteration-cap / refuted-infeasible /
// shared-verdict trigger is a mode-2-style program) — over a mode-1
// twin-degenerate point set, then *contradicts* it: one constraint row is
// duplicated verbatim with its right-hand side offset by a margin drawn
// from {1e-4, 3e-4, 1e-3}. The twin pair is jointly unsatisfiable, so the
// program is infeasible by at least margin/2 — far above every solver and
// certificate tolerance (the feasibility certificate's scaled rtol tops
// out near 5e-6 on these rows), yet far below the data scale, and
// discovering the contradiction takes a full Phase-1 resolution of the
// degenerate joint geometry, not a local bound check. Modes 1 and 2 are
// feasible by construction, which is why none of their inputs can pair a
// wrong dense-core Optimal with a revised-core refutation; on mode-3
// programs any dense Optimal is necessarily an uncertifiable verdict.
// d is fixed at 2 (64 rows): the d = 3 shape's 144+ rows sit past
// denseRowCap, where the differential harness never runs the dense core.
func decodeNearMiss(c *cursor) *ProgramSpec {
	const d, f = 2, 2
	pts := twinPoints(c, d, (d+1)*f+1)
	margin := []float64{1e-4, 3e-4, 1e-3}[c.u8()%3]
	rowPick := int(c.u8())
	s := &ProgramSpec{Sense: lp.Minimize}
	zbase := len(s.Lo)
	for l := 0; l < d; l++ {
		s.Lo = append(s.Lo, -4)
		s.Hi = append(s.Hi, 4)
	}
	appendJointGammaGroups(s, pts, f, zbase)
	k := rowPick % len(s.Rows)
	s.Rows = append(s.Rows, append([]lp.Term(nil), s.Rows[k]...))
	s.Rels = append(s.Rels, lp.EQ)
	s.Rhs = append(s.Rhs, s.Rhs[k]+margin)
	return s
}

// smallCutoffRows mirrors lp's small-program cutoff (32 rows): programs
// meant for the revised core must exceed it.
const smallCutoffRows = 32

// appendMembershipBlock adds one convex-weights block reproducing z.
func appendMembershipBlock(s *ProgramSpec, pts [][]float64, z []float64, tol float64) {
	base := len(s.Lo)
	sum := make([]lp.Term, len(pts))
	for i := range pts {
		s.Lo = append(s.Lo, 0)
		s.Hi = append(s.Hi, math.Inf(1))
		sum[i] = lp.Term{Var: lp.VarID(base + i), Coeff: 1}
	}
	s.Rows = append(s.Rows, sum)
	s.Rels = append(s.Rels, lp.EQ)
	s.Rhs = append(s.Rhs, 1)
	for l := range z {
		terms := make([]lp.Term, 0, len(pts))
		for i := range pts {
			if pts[i][l] != 0 {
				terms = append(terms, lp.Term{Var: lp.VarID(base + i), Coeff: pts[i][l]})
			}
		}
		if len(terms) == 0 {
			// Every point is zero in this coordinate: the convex hull is
			// flat there, so z is reachable iff z[l] ≈ 0. Encode the
			// infeasible case exactly (Σα = 2 conflicts with Σα = 1) and
			// skip the vacuous one.
			if z[l]-tol > 0 || z[l]+tol < 0 {
				s.Rows = append(s.Rows, []lp.Term{{Var: lp.VarID(base), Coeff: 1}})
				s.Rels = append(s.Rels, lp.EQ)
				s.Rhs = append(s.Rhs, 2)
			}
			continue
		}
		s.Rows = append(s.Rows, terms)
		s.Rels = append(s.Rels, lp.GE)
		s.Rhs = append(s.Rhs, z[l]-tol)
		hi := append([]lp.Term(nil), terms...)
		s.Rows = append(s.Rows, hi)
		s.Rels = append(s.Rels, lp.LE)
		s.Rhs = append(s.Rhs, z[l]+tol)
	}
}

// decodeThresholdGamma builds the joint Γ-intersection feasibility program
// of a quantized multiset at the Lemma-1 threshold size.
func decodeThresholdGamma(c *cursor) *ProgramSpec {
	d := 2 + int(c.u8()%2)
	f := 2
	n := (d+1)*f + 1
	pts := make([][]float64, n)
	for i := range pts {
		pt := make([]float64, d)
		for l := range pt {
			pt[l] = float64(c.u16()) / 65535
		}
		pts[i] = pt
	}
	s := &ProgramSpec{Sense: lp.Minimize}
	zbase := len(s.Lo)
	for l := 0; l < d; l++ {
		s.Lo = append(s.Lo, -10)
		s.Hi = append(s.Hi, 10)
	}
	appendJointGammaGroups(s, pts, f, zbase)
	return s
}

// appendJointGammaGroups appends the joint Γ-intersection constraint
// groups: for every (n−f)-subset of pts, fresh convex weights whose
// combination reproduces the shared z variables at zbase.
func appendJointGammaGroups(s *ProgramSpec, pts [][]float64, f, zbase int) {
	d := len(pts[0])
	keep := len(pts) - f
	for _, idx := range combinations(len(pts), keep) {
		base := len(s.Lo)
		sum := make([]lp.Term, keep)
		for i := 0; i < keep; i++ {
			s.Lo = append(s.Lo, 0)
			s.Hi = append(s.Hi, math.Inf(1))
			sum[i] = lp.Term{Var: lp.VarID(base + i), Coeff: 1}
		}
		s.Rows = append(s.Rows, sum)
		s.Rels = append(s.Rels, lp.EQ)
		s.Rhs = append(s.Rhs, 1)
		for l := 0; l < d; l++ {
			terms := make([]lp.Term, 0, keep+1)
			for i, j := range idx {
				if pts[j][l] != 0 {
					terms = append(terms, lp.Term{Var: lp.VarID(base + i), Coeff: pts[j][l]})
				}
			}
			terms = append(terms, lp.Term{Var: lp.VarID(zbase + l), Coeff: -1})
			s.Rows = append(s.Rows, terms)
			s.Rels = append(s.Rels, lp.EQ)
			s.Rhs = append(s.Rhs, 0)
		}
	}
}

// EncodeGammaInstance converts a fragile-corpus instance (the Lemma-1
// threshold multisets of internal/safearea's fragile tests: d ∈ {2,3},
// f = 2, coordinates from a seeded uniform stream) into the mode-2 fuzz
// encoding, 16-bit quantized. The decoded program is the joint
// Γ-intersection LP of the quantized multiset.
func EncodeGammaInstance(d int, coords [][]float64) []byte {
	out := []byte{2, byte(d - 2)}
	for _, pt := range coords {
		for _, x := range pt {
			q := uint16(math.Round(x * 65535))
			out = binary.BigEndian.AppendUint16(out, q)
		}
	}
	return out
}
