package verify

import (
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestFragileCorpusBudget replays every committed FuzzLPDifferential seed
// entry through the differential body and holds the documented fragility
// classes to the counted budget in fragilityBudget. The corpus is
// deterministic, so the counts are exact: exceeding a class budget means
// the dense core regressed on inputs it previously survived, and any
// sighting outside the table fails inside noteFragility before the
// accounting is even reached.
func TestFragileCorpusBudget(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzLPDifferential")
	entries, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("no committed corpus under %s", dir)
	}
	sort.Strings(entries)
	before := snapshotFragility()
	for _, path := range entries {
		data, err := readCorpusEntry(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		diffLPOnce(t, data)
	}
	after := snapshotFragility()
	total := 0
	for _, class := range sortedClasses() {
		got := after[class] - before[class]
		total += got
		if budget := fragilityBudget[class]; got != budget {
			t.Errorf("fragility class %s: %d sightings, budget %d (corpus replay is deterministic; above budget = solver regression, below = stale budget or corpus)", class, got, budget)
		} else {
			t.Logf("fragility class %s: %d/%d", class, got, budget)
		}
	}
	t.Logf("%d entries replayed, %d documented-fragility sightings", len(entries), total)
}

func sortedClasses() []string {
	out := make([]string, 0, len(fragilityBudget))
	for class := range fragilityBudget {
		out = append(out, class)
	}
	sort.Strings(out)
	return out
}

// readCorpusEntry parses one `go test fuzz v1` corpus file holding a
// single []byte argument — the format TestRegenSeedCorpus writes and the
// fuzz engine replays.
func readCorpusEntry(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.SplitN(strings.TrimSuffix(string(raw), "\n"), "\n", 2)
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		return nil, errCorpusFormat{path, "missing version header"}
	}
	arg := strings.TrimSpace(lines[1])
	if !strings.HasPrefix(arg, "[]byte(") || !strings.HasSuffix(arg, ")") {
		return nil, errCorpusFormat{path, "argument is not a []byte literal"}
	}
	s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(arg, "[]byte("), ")"))
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}

type errCorpusFormat [2]string

func (e errCorpusFormat) Error() string { return e[0] + ": " + e[1] }
