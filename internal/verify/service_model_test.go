package verify

import (
	"math/rand"
	"strings"
	"testing"
)

// TestServiceSystemRun drives the live-service model through a seeded
// command mix — proposals interleaved with conn kills, a partition/heal
// pair, membership replacements, and lifecycle transitions — and expects
// no property violation.
func TestServiceSystemRun(t *testing.T) {
	if testing.Short() {
		t.Skip("live mesh per Reset; skipped in -short")
	}
	sys := NewServiceSystem(5, 2)
	t.Cleanup(sys.Close)
	if fail := Run(sys, sys.ServiceGenerator(), 3, 14); fail != nil {
		t.Fatalf("live service violated the lifecycle model:\n%s", fail.Report())
	}
}

// TestServiceSystemReconfigureDecidesAcrossEpochs pins the epoch-aware
// happy path deterministically: propose, replace a member, propose again
// — decisions on both sides of the flip, the whole mesh settling on the
// model's epoch each time.
func TestServiceSystemReconfigureDecidesAcrossEpochs(t *testing.T) {
	if testing.Short() {
		t.Skip("live mesh per Reset; skipped in -short")
	}
	sys := NewServiceSystem(5, 2)
	t.Cleanup(sys.Close)
	rng := rand.New(rand.NewSource(17))
	mkInputs := func() [][]float64 {
		inputs := make([][]float64, 5)
		for i := range inputs {
			inputs[i] = randVec(rng, 2)
		}
		return inputs
	}
	cmds := []Command{
		SvcPropose{Inputs: mkInputs()},
		SvcReconfigure{P: 2},
		SvcPropose{Inputs: mkInputs()},
		SvcReconfigure{P: 4},
		SvcPropose{Inputs: mkInputs()},
	}
	if err := Replay(sys, 11, cmds); err != nil {
		t.Fatalf("reconfigure lifecycle violated the model: %v", err)
	}
}

// TestServiceSystemShrinksEpochFault is the epoch mutation check: arm
// the seeded epoch fault (the first Reconfigure silently never starts
// the replacement), confirm the epoch-aware checks catch the divergence,
// and confirm shrinking reduces the witness to essentially the
// Reconfigure itself.
func TestServiceSystemShrinksEpochFault(t *testing.T) {
	if testing.Short() {
		t.Skip("live mesh per Reset; skipped in -short")
	}
	sys := NewServiceSystem(5, 2)
	t.Cleanup(sys.Close)
	sys.ArmEpochFault(1)

	gen := func(rng *rand.Rand, step int) Command {
		if step%2 == 1 {
			return SvcReconfigure{P: rng.Intn(5)}
		}
		inputs := make([][]float64, 5)
		for i := range inputs {
			inputs[i] = randVec(rng, 2)
		}
		return SvcPropose{Inputs: inputs}
	}
	fail := Run(sys, gen, 5, 6)
	if fail == nil {
		t.Fatal("armed epoch fault not detected in 6 steps")
	}
	if len(fail.Cmds) > 2 {
		t.Fatalf("shrunk to %d commands, want ≤ 2:\n%s", len(fail.Cmds), fail.Report())
	}
	var reconfigures int
	for _, c := range fail.Cmds {
		if _, ok := c.(SvcReconfigure); ok {
			reconfigures++
		}
	}
	if reconfigures == 0 {
		t.Fatalf("shrunk witness lost the Reconfigure:\n%s", fail.Report())
	}
	if err := Replay(sys, fail.Seed, fail.Cmds); err == nil {
		t.Fatal("shrunk sequence does not replay to a failure")
	}
}

// TestServiceSystemShrinksInjectedDivergence is the mutation check: arm
// the seeded fault (the first KillConn secretly closes the whole target
// process), confirm the harness catches the resulting SUT/model
// divergence, and confirm shrinking reduces the witness to essentially
// kill-then-propose.
func TestServiceSystemShrinksInjectedDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("live mesh per Reset; skipped in -short")
	}
	sys := NewServiceSystem(5, 2)
	t.Cleanup(sys.Close)
	sys.ArmFault(1)

	// Kill-and-propose-heavy mix so the divergence surfaces quickly.
	gen := func(rng *rand.Rand, step int) Command {
		if step%2 == 0 {
			return SvcKillConn{I: rng.Intn(5), J: rng.Intn(5)}
		}
		inputs := make([][]float64, 5)
		for i := range inputs {
			inputs[i] = randVec(rng, 2)
		}
		return SvcPropose{Inputs: inputs}
	}
	fail := Run(sys, gen, 7, 8)
	if fail == nil {
		t.Fatal("armed fault not detected in 8 steps")
	}
	if len(fail.Cmds) > 4 {
		t.Fatalf("shrunk to %d commands, want ≤ 4 (kill + propose):\n%s", len(fail.Cmds), fail.Report())
	}
	var kills, proposes int
	for _, c := range fail.Cmds {
		switch c.(type) {
		case SvcKillConn:
			kills++
		case SvcPropose:
			proposes++
		default:
			t.Fatalf("non-essential command survived shrinking: %s", c)
		}
	}
	if kills == 0 || proposes == 0 {
		t.Fatalf("shrunk witness lost the kill or the probe:\n%s", fail.Report())
	}
	// The shrunk sequence must replay to the same class of violation.
	if err := Replay(sys, fail.Seed, fail.Cmds); err == nil {
		t.Fatal("shrunk sequence does not replay to a failure")
	}
	if !strings.Contains(fail.Report(), "replay:") {
		t.Fatalf("report not replayable:\n%s", fail.Report())
	}
}
