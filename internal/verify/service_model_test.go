package verify

import (
	"math/rand"
	"strings"
	"testing"
)

// TestServiceSystemRun drives the live-service model through a seeded
// command mix — proposals interleaved with conn kills, a partition/heal
// pair, and lifecycle transitions — and expects no property violation.
func TestServiceSystemRun(t *testing.T) {
	if testing.Short() {
		t.Skip("live mesh per Reset; skipped in -short")
	}
	sys := NewServiceSystem(5, 2)
	t.Cleanup(sys.Close)
	if fail := Run(sys, sys.ServiceGenerator(), 3, 14); fail != nil {
		t.Fatalf("live service violated the lifecycle model:\n%s", fail.Report())
	}
}

// TestServiceSystemShrinksInjectedDivergence is the mutation check: arm
// the seeded fault (the first KillConn secretly closes the whole target
// process), confirm the harness catches the resulting SUT/model
// divergence, and confirm shrinking reduces the witness to essentially
// kill-then-propose.
func TestServiceSystemShrinksInjectedDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("live mesh per Reset; skipped in -short")
	}
	sys := NewServiceSystem(5, 2)
	t.Cleanup(sys.Close)
	sys.ArmFault(1)

	// Kill-and-propose-heavy mix so the divergence surfaces quickly.
	gen := func(rng *rand.Rand, step int) Command {
		if step%2 == 0 {
			return SvcKillConn{I: rng.Intn(5), J: rng.Intn(5)}
		}
		inputs := make([][]float64, 5)
		for i := range inputs {
			inputs[i] = randVec(rng, 2)
		}
		return SvcPropose{Inputs: inputs}
	}
	fail := Run(sys, gen, 7, 8)
	if fail == nil {
		t.Fatal("armed fault not detected in 8 steps")
	}
	if len(fail.Cmds) > 4 {
		t.Fatalf("shrunk to %d commands, want ≤ 4 (kill + propose):\n%s", len(fail.Cmds), fail.Report())
	}
	var kills, proposes int
	for _, c := range fail.Cmds {
		switch c.(type) {
		case SvcKillConn:
			kills++
		case SvcPropose:
			proposes++
		default:
			t.Fatalf("non-essential command survived shrinking: %s", c)
		}
	}
	if kills == 0 || proposes == 0 {
		t.Fatalf("shrunk witness lost the kill or the probe:\n%s", fail.Report())
	}
	// The shrunk sequence must replay to the same class of violation.
	if err := Replay(sys, fail.Seed, fail.Cmds); err == nil {
		t.Fatal("shrunk sequence does not replay to a failure")
	}
	if !strings.Contains(fail.Report(), "replay:") {
		t.Fatalf("report not replayable:\n%s", fail.Report())
	}
}
