package verify

import "testing"

// TestIncrementalStateful drives seeded random Add/Remove/Swap/Query
// sequences against safearea.Incremental, checking bit-identity with a
// from-scratch rebuild after every command.
func TestIncrementalStateful(t *testing.T) {
	cases := []struct {
		f, seeds, steps int
	}{
		{f: 1, seeds: 4, steps: 60},
		{f: 2, seeds: 2, steps: 30},
	}
	if testing.Short() {
		cases = []struct{ f, seeds, steps int }{{f: 1, seeds: 2, steps: 25}}
	}
	for _, tc := range cases {
		sys := NewIncSystem(2, tc.f, 3)
		for seed := int64(1); seed <= int64(tc.seeds); seed++ {
			if fail := Run(sys, sys.IncGenerator(), seed, tc.steps); fail != nil {
				t.Fatalf("f=%d:\n%s", tc.f, fail.Report())
			}
		}
	}
}

// TestIncrementalMutationCheck is the harness's own acceptance test: a
// deliberately seeded incremental-vs-rebuild divergence (the third Swap
// perturbs the SUT's vector) must be found and shrunk to at most five
// commands — in fact to exactly the three Swaps needed to arm the fault.
func TestIncrementalMutationCheck(t *testing.T) {
	sys := NewIncSystem(2, 1, 3)
	sys.ArmFault(3)
	var fail *Failure
	for seed := int64(1); seed <= 10 && fail == nil; seed++ {
		fail = Run(sys, sys.IncGenerator(), seed, 80)
	}
	if fail == nil {
		t.Fatal("seeded divergence not found in 10 runs of 80 steps")
	}
	if len(fail.Cmds) > 5 {
		t.Fatalf("shrunk to %d commands, want ≤ 5:\n%s", len(fail.Cmds), fail.Report())
	}
	for _, c := range fail.Cmds {
		if _, ok := c.(CmdSwap); !ok {
			t.Fatalf("non-Swap command survived shrinking: %s\n%s", c, fail.Report())
		}
	}
	// The shrunk sequence replays to a failure on an armed system…
	armed := NewIncSystem(2, 1, 3)
	armed.ArmFault(3)
	if Replay(armed, fail.Seed, fail.Cmds) == nil {
		t.Fatalf("shrunk sequence does not replay:\n%s", fail.Report())
	}
	// …and passes on a clean one, pinning the divergence to the fault.
	clean := NewIncSystem(2, 1, 3)
	if err := Replay(clean, fail.Seed, fail.Cmds); err != nil {
		t.Fatalf("clean system fails the shrunk sequence: %v", err)
	}
}
