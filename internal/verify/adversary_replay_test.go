package verify

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/adversary"
)

// TestAdversaryRegression replays every committed schedule-search instance
// under testdata/adversary/ and asserts two things: the execution is still
// bit-stable (score and margins match what the searcher recorded — the
// schedule-sensitive code paths did not silently change), and the paper's
// guarantees still hold on the worst schedule the search ever found (no
// validity violation, no stall, unless the instance was committed as one —
// in which case it must still reproduce, because it documents a live bug).
func TestAdversaryRegression(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "adversary", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed adversary instances — regenerate with VERIFY_REGEN_ADVERSARY=1")
	}
	crashWindows := 0
	for _, fp := range files {
		t.Run(filepath.Base(fp), func(t *testing.T) {
			blob, err := os.ReadFile(fp)
			if err != nil {
				t.Fatal(err)
			}
			var inst adversary.Instance
			if err := json.Unmarshal(blob, &inst); err != nil {
				t.Fatal(err)
			}
			for i := 0; 2*i < len(inst.CrashRounds); i++ {
				if inst.CrashRounds[2*i] > 0 {
					crashWindows++
				}
			}
			res, err := adversary.ReplayInstance(inst)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != inst.Violation || res.Stalled != inst.Stalled {
				t.Fatalf("outcome diverged from recording: got violation=%v stalled=%v, recorded %v/%v",
					res.Violation, res.Stalled, inst.Violation, inst.Stalled)
			}
			const tol = 1e-6
			if math.Abs(res.Score-inst.Score) > tol ||
				math.Abs(res.MinMargin-inst.MinMargin) > tol ||
				math.Abs(res.Slack-inst.Slack) > tol {
				t.Fatalf("scores diverged from recording: got (%.9f, %.9f, %.9f), recorded (%.9f, %.9f, %.9f)",
					res.Score, res.MinMargin, res.Slack, inst.Score, inst.MinMargin, inst.Slack)
			}
			// The theorem at the resilience bound: the searcher's worst
			// schedule must not break validity or termination.
			if res.Violation || res.Stalled {
				t.Fatalf("committed instance violates the theorem: %+v", res)
			}
		})
	}
	// The corpus must keep at least one crash-timing schedule: a minimized
	// worst genome whose crash/restart window survived minimization, so
	// the crash-and-recover scheduling path stays pinned under replay.
	if crashWindows == 0 {
		t.Fatal("no committed instance carries a crash window — the crash-timing regression is missing")
	}
}

// TestRegenAdversaryCorpus reruns the schedule search at full strength and
// rewrites testdata/adversary/ when VERIFY_REGEN_ADVERSARY=1 is set. Each
// committed instance is the minimized worst schedule of one search
// configuration.
func TestRegenAdversaryCorpus(t *testing.T) {
	if os.Getenv("VERIFY_REGEN_ADVERSARY") == "" {
		t.Skip("set VERIFY_REGEN_ADVERSARY=1 to rerun the search and rewrite testdata/adversary")
	}
	configs := []struct {
		name string
		spec adversary.SearchSpec
	}{
		{"n7f1_seed11", adversary.SearchSpec{
			N: 7, F: 1, D: 2, Epsilon: 0.05, MaxRounds: 4, Seed: 11,
			Iterations: 250, Restarts: 2, BaseDelay: time.Millisecond, MaxExtra: 12,
		}},
		{"n8f1_seed29", adversary.SearchSpec{
			N: 8, F: 1, D: 2, Epsilon: 0.05, MaxRounds: 4, Seed: 29,
			Iterations: 250, Restarts: 2, BaseDelay: time.Millisecond, MaxExtra: 12,
		}},
		{"n9f1_d3_seed41", adversary.SearchSpec{
			N: 9, F: 1, D: 3, Epsilon: 0.05, MaxRounds: 3, Seed: 41,
			Iterations: 150, Restarts: 1, BaseDelay: time.Millisecond, MaxExtra: 12,
		}},
		{"n7f1_crash_seed53", adversary.SearchSpec{
			N: 7, F: 1, D: 2, Epsilon: 0.05, MaxRounds: 4, Seed: 53,
			Iterations: 300, Restarts: 3, BaseDelay: time.Millisecond, MaxExtra: 12,
		}},
	}
	dir := filepath.Join("testdata", "adversary")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range configs {
		found, err := adversary.Search(cfg.spec)
		if err != nil {
			t.Fatal(err)
		}
		minimized, err := adversary.Minimize(found, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		inst := minimized.Instance("annealed schedule search, minimized; worst contraction/margin schedule found")
		blob, err := json.MarshalIndent(inst, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, cfg.name+".json"), append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: score %.4f margin %.4f slack %.4f violation=%v stalled=%v",
			cfg.name, minimized.Score, minimized.MinMargin, minimized.Slack, minimized.Violation, minimized.Stalled)
	}
}
