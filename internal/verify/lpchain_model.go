package verify

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/lp"
)

// This file is the stateful model for the LP warm-start layer: chains of
// SolveWithBasis solves over mutating sibling programs, and one Hot
// (AppendLE/Resolve) tableau kept alive across row appends and objective
// changes, each checked against a cold from-scratch solve after every
// command. The invariants are exactly the documented warm-start contract:
// statuses are basis-independent, objectives agree within tolerance —
// solution *vectors* are deliberately not compared (on a degenerate
// optimal face a warm start may land on a different optimal vertex).

// lpObjTol bounds the hot-vs-cold objective disagreement.
const lpObjTol = 1e-6

// LPSystem carries both chains. Construct with NewLPSystem.
type LPSystem struct {
	d, npts, f int

	// Warm membership/Γ chain: one carried basis per program shape.
	pts      [][]float64
	warm     *lp.Problem
	ws       *lp.Workspace
	memBasis lp.Basis
	gamBasis lp.Basis

	// Hot chain state: the SUT tableau plus the row/objective mirror the
	// cold rebuild is made from.
	nv      int
	hotProb *lp.Problem
	hotVars []lp.VarID
	hot     *lp.Hot
	hotSol  *lp.Solution
	base    []float64   // base-row coefficients (Σ aᵢxᵢ ≥ 10)
	rows    [][]float64 // appended ≤-rows, dense nv coefficients
	bounds  []float64   // appended-row bounds
	obj     []float64   // current objective coefficients
}

// maxHotRows caps the hot chain so one sequence stays cheap.
const maxHotRows = 40

// NewLPSystem builds the system: npts points in dimension d for the
// membership/Γ chains (fault bound f), nv variables for the hot chain.
func NewLPSystem(d, npts, f, nv int) *LPSystem {
	return &LPSystem{d: d, npts: npts, f: f, nv: nv}
}

// CmdMutatePoint replaces point I of the membership multiset.
type CmdMutatePoint struct {
	I int
	V []float64
}

func (c CmdMutatePoint) String() string { return fmt.Sprintf("MutatePoint(%d, %v)", c.I, c.V) }

// CmdMember probes hull membership of Z: warm chained solve vs cold.
type CmdMember struct{ Z []float64 }

func (c CmdMember) String() string { return fmt.Sprintf("Member(%v)", c.Z) }

// CmdGamma solves the joint Γ-intersection feasibility program (all
// (npts−f)-subsets share one witness point) warm vs cold. With npts = 6,
// f = 2 the program has C(6,4)·(1+d) = 45 rows — past the small-program
// cutoff, so the revised core's warm refactorization path is under test.
type CmdGamma struct{}

func (CmdGamma) String() string { return "Gamma()" }

// CmdHotAppend appends Σ Coeffs·x ≤ (current value + Slack) to the hot
// tableau and to the cold mirror, then compares Resolve against a cold
// solve. The bound is computed from the current hot solution, keeping the
// retained vertex feasible (the lex-min pinning shape).
type CmdHotAppend struct {
	Coeffs []float64
	Slack  float64
}

func (c CmdHotAppend) String() string { return fmt.Sprintf("HotAppend(%v, %g)", c.Coeffs, c.Slack) }

// CmdHotObjective replaces the objective on both sides and compares.
type CmdHotObjective struct{ Coeffs []float64 }

func (c CmdHotObjective) String() string { return fmt.Sprintf("HotObjective(%v)", c.Coeffs) }

// Reset implements System.
func (s *LPSystem) Reset(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	s.pts = make([][]float64, s.npts)
	for i := range s.pts {
		s.pts[i] = randVec(rng, s.d)
	}
	s.warm = lp.NewProblem()
	s.ws = lp.NewWorkspace()
	s.memBasis.Reset()
	s.gamBasis.Reset()

	s.base = make([]float64, s.nv)
	s.obj = make([]float64, s.nv)
	for i := 0; i < s.nv; i++ {
		s.base[i] = 0.5 + rng.Float64()
		s.obj[i] = 0.5 + rng.Float64()
	}
	s.rows = s.rows[:0]
	s.bounds = s.bounds[:0]
	s.hotProb = lp.NewProblem()
	s.hotVars = make([]lp.VarID, s.nv)
	for i := range s.hotVars {
		v, err := s.hotProb.AddVar("x", 0, 100)
		if err != nil {
			panic(err)
		}
		s.hotVars[i] = v
	}
	if err := s.hotProb.AddConstraint("base", denseTerms(s.hotVars, s.base), lp.GE, 10); err != nil {
		panic(err)
	}
	if err := s.hotProb.SetObjective(lp.Minimize, denseTerms(s.hotVars, s.obj)); err != nil {
		panic(err)
	}
	sol, hot, err := s.hotProb.SolveHot(lp.NewWorkspace())
	if err != nil || sol.Status != lp.Optimal || hot == nil {
		panic(fmt.Sprintf("verify: hot root solve failed: %+v %v", sol, err))
	}
	s.hot, s.hotSol = hot, sol
}

// Apply implements System.
func (s *LPSystem) Apply(cmd Command) error {
	switch c := cmd.(type) {
	case CmdMutatePoint:
		if c.I < 0 || c.I >= s.npts || len(c.V) != s.d {
			return nil
		}
		s.pts[c.I] = append([]float64(nil), c.V...)
		return nil
	case CmdMember:
		if len(c.Z) != s.d {
			return nil
		}
		return s.checkMember(c.Z)
	case CmdGamma:
		return s.checkGamma()
	case CmdHotAppend:
		if len(c.Coeffs) != s.nv || len(s.rows) >= maxHotRows || !(c.Slack > 0) {
			return nil
		}
		return s.applyHotAppend(c)
	case CmdHotObjective:
		if len(c.Coeffs) != s.nv {
			return nil
		}
		for _, a := range c.Coeffs {
			if !(a > 0) {
				return nil // a free variable direction would be unbounded
			}
		}
		copy(s.obj, c.Coeffs)
		if err := s.hotProb.SetObjective(lp.Minimize, denseTerms(s.hotVars, s.obj)); err != nil {
			return fmt.Errorf("%s: SetObjective: %w", c, err)
		}
		return s.checkHot(c)
	default:
		return fmt.Errorf("verify: unknown command %T", cmd)
	}
}

// buildMembership writes the hull-membership feasibility program for pts/z
// into p (internal/hull's shape: convex weights reproducing z within tol).
func buildMembership(p *lp.Problem, pts [][]float64, z []float64, tol float64) error {
	p.Reset()
	alphas := make([]lp.VarID, len(pts))
	for i := range pts {
		v, err := p.AddVar("a", 0, math.Inf(1))
		if err != nil {
			return err
		}
		alphas[i] = v
	}
	sum := make([]lp.Term, len(pts))
	for i, a := range alphas {
		sum[i] = lp.Term{Var: a, Coeff: 1}
	}
	if err := p.AddConstraint("sum", sum, lp.EQ, 1); err != nil {
		return err
	}
	for l := range z {
		terms := make([]lp.Term, 0, len(pts))
		for i, a := range alphas {
			if pts[i][l] != 0 {
				terms = append(terms, lp.Term{Var: a, Coeff: pts[i][l]})
			}
		}
		if err := p.AddConstraint("lo", terms, lp.GE, z[l]-tol); err != nil {
			return err
		}
		if err := p.AddConstraint("hi", terms, lp.LE, z[l]+tol); err != nil {
			return err
		}
	}
	return p.SetObjective(lp.Minimize, nil)
}

func (s *LPSystem) checkMember(z []float64) error {
	if err := buildMembership(s.warm, s.pts, z, 1e-7); err != nil {
		return err
	}
	wsol, werr := s.warm.SolveWithBasis(s.ws, &s.memBasis)
	cold := lp.NewProblem()
	if err := buildMembership(cold, s.pts, z, 1e-7); err != nil {
		return err
	}
	csol, cerr := cold.Solve()
	if (werr == nil) != (cerr == nil) {
		return fmt.Errorf("Member(%v): warm err %v, cold err %v", z, werr, cerr)
	}
	if werr != nil {
		return nil // both failed identically-shaped — no verdict to compare
	}
	if wsol.Status != csol.Status {
		return fmt.Errorf("Member(%v): warm %v, cold %v", z, wsol.Status, csol.Status)
	}
	return nil
}

// buildGamma writes the joint Γ-emptiness program: a shared witness z and
// per-(npts−f)-subset convex weights reproducing it. Feasible ⇔ Γ ≠ ∅.
func buildGamma(p *lp.Problem, pts [][]float64, d, f int) error {
	p.Reset()
	zvars := make([]lp.VarID, d)
	for l := 0; l < d; l++ {
		v, err := p.AddVar("z", -10, 10)
		if err != nil {
			return err
		}
		zvars[l] = v
	}
	keep := len(pts) - f
	for _, idx := range combinations(len(pts), keep) {
		alphas := make([]lp.VarID, keep)
		sum := make([]lp.Term, keep)
		for i := range idx {
			v, err := p.AddVar("a", 0, math.Inf(1))
			if err != nil {
				return err
			}
			alphas[i] = v
			sum[i] = lp.Term{Var: v, Coeff: 1}
		}
		if err := p.AddConstraint("sum", sum, lp.EQ, 1); err != nil {
			return err
		}
		for l := 0; l < d; l++ {
			terms := make([]lp.Term, 0, keep+1)
			for i, j := range idx {
				if pts[j][l] != 0 {
					terms = append(terms, lp.Term{Var: alphas[i], Coeff: pts[j][l]})
				}
			}
			terms = append(terms, lp.Term{Var: zvars[l], Coeff: -1})
			if err := p.AddConstraint("rep", terms, lp.EQ, 0); err != nil {
				return err
			}
		}
	}
	return p.SetObjective(lp.Minimize, nil)
}

func (s *LPSystem) checkGamma() error {
	if err := buildGamma(s.warm, s.pts, s.d, s.f); err != nil {
		return err
	}
	wsol, werr := s.warm.SolveWithBasis(s.ws, &s.gamBasis)
	cold := lp.NewProblem()
	if err := buildGamma(cold, s.pts, s.d, s.f); err != nil {
		return err
	}
	csol, cerr := cold.Solve()
	if (werr == nil) != (cerr == nil) {
		return fmt.Errorf("Gamma(): warm err %v, cold err %v", werr, cerr)
	}
	if werr != nil {
		return nil
	}
	if wsol.Status != csol.Status {
		return fmt.Errorf("Gamma(): warm %v, cold %v", wsol.Status, csol.Status)
	}
	return nil
}

func (s *LPSystem) applyHotAppend(c CmdHotAppend) error {
	row := make([]lp.Term, 0, s.nv)
	var at float64
	for i, a := range c.Coeffs {
		if a == 0 {
			continue
		}
		row = append(row, lp.Term{Var: s.hotVars[i], Coeff: a})
		at += a * s.hotSol.Values[s.hotVars[i]]
	}
	if len(row) == 0 {
		return nil
	}
	bound := at + c.Slack
	if err := s.hot.AppendLE(row, bound); err != nil {
		return fmt.Errorf("%s: AppendLE rejected a satisfied row: %w", c, err)
	}
	s.rows = append(s.rows, append([]float64(nil), c.Coeffs...))
	s.bounds = append(s.bounds, bound)
	return s.checkHot(c)
}

// checkHot resolves the retained tableau and compares status + objective
// against a cold rebuild of the accumulated program.
func (s *LPSystem) checkHot(cmd Command) error {
	sol, err := s.hot.Resolve()
	if err != nil {
		return fmt.Errorf("%s: Resolve: %w", cmd, err)
	}
	cold := lp.NewProblem()
	cvars := make([]lp.VarID, s.nv)
	for i := range cvars {
		v, aerr := cold.AddVar("x", 0, 100)
		if aerr != nil {
			return aerr
		}
		cvars[i] = v
	}
	if cerr := cold.AddConstraint("base", denseTerms(cvars, s.base), lp.GE, 10); cerr != nil {
		return cerr
	}
	for i, r := range s.rows {
		if cerr := cold.AddConstraint("app", denseTerms(cvars, r), lp.LE, s.bounds[i]); cerr != nil {
			return cerr
		}
	}
	if cerr := cold.SetObjective(lp.Minimize, denseTerms(cvars, s.obj)); cerr != nil {
		return cerr
	}
	csol, cerr := cold.Solve()
	if cerr != nil {
		return fmt.Errorf("%s: cold rebuild: %w", cmd, cerr)
	}
	if sol.Status != csol.Status {
		return fmt.Errorf("%s: hot %v, cold %v", cmd, sol.Status, csol.Status)
	}
	if sol.Status == lp.Optimal && math.Abs(sol.Objective-csol.Objective) > lpObjTol {
		return fmt.Errorf("%s: hot objective %g, cold %g (Δ=%g)", cmd, sol.Objective, csol.Objective, sol.Objective-csol.Objective)
	}
	s.hotSol = sol
	return nil
}

// LPGenerator is the default command mix across both chains.
func (s *LPSystem) LPGenerator() Generator {
	return func(rng *rand.Rand, _ int) Command {
		switch k := rng.Intn(10); {
		case k < 3:
			return CmdMutatePoint{I: rng.Intn(s.npts), V: randVec(rng, s.d)}
		case k < 5:
			return CmdMember{Z: randVec(rng, s.d)}
		case k < 6:
			return CmdGamma{}
		case k < 9:
			coeffs := make([]float64, s.nv)
			for i := range coeffs {
				if rng.Float64() < 0.7 {
					coeffs[i] = rng.Float64()
				}
			}
			return CmdHotAppend{Coeffs: coeffs, Slack: 0.5 + rng.Float64()}
		default:
			coeffs := make([]float64, s.nv)
			for i := range coeffs {
				coeffs[i] = 0.5 + rng.Float64()
			}
			return CmdHotObjective{Coeffs: coeffs}
		}
	}
}

func denseTerms(vars []lp.VarID, coeffs []float64) []lp.Term {
	terms := make([]lp.Term, 0, len(vars))
	for i, v := range vars {
		if coeffs[i] != 0 {
			terms = append(terms, lp.Term{Var: v, Coeff: coeffs[i]})
		}
	}
	return terms
}

// combinations enumerates all size-k subsets of {0..n−1} in lexicographic
// order (small n only — the Γ program shapes used here).
func combinations(n, k int) [][]int {
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
