package lp

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestEnvCoreHelper is not a test: when re-exec'd by
// TestEnvSelectsCore with LP_ENV_HELPER=1 it prints the core the
// process booted with and exits. The init-time REPRO_LP_CORE read can
// only be observed from a fresh process — by the time any test runs in
// this one, init already fired under this environment.
func TestEnvCoreHelper(t *testing.T) {
	if os.Getenv("LP_ENV_HELPER") != "1" {
		t.Skip("helper process for TestEnvSelectsCore")
	}
	fmt.Printf("active-core=%s\n", ActiveCore())
}

// TestEnvSelectsCore asserts the REPRO_LP_CORE escape hatch: a process
// started with REPRO_LP_CORE=dense boots on the legacy dense tableau,
// and one started without it boots on the revised core.
func TestEnvSelectsCore(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	for _, tc := range []struct {
		env  string
		want string
	}{
		{"dense", "active-core=dense"},
		{"", "active-core=revised"},
	} {
		cmd := exec.Command(exe, "-test.run", "^TestEnvCoreHelper$", "-test.v")
		cmd.Env = append(os.Environ(), "LP_ENV_HELPER=1", "REPRO_LP_CORE="+tc.env)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("REPRO_LP_CORE=%q: helper failed: %v\n%s", tc.env, err, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("REPRO_LP_CORE=%q: helper reported %q, want %q", tc.env, out, tc.want)
		}
	}
}
