package lp

import (
	"os"
	"sync/atomic"
)

// Core selects the simplex implementation behind Solve, SolveWithBasis and
// SolveHot. The revised core (the default) maintains only the basis — as an
// LU factorization updated with an eta file per pivot and refactored
// periodically or when a stability monitor trips — so reduced costs are
// always priced from freshly factored bases instead of an incrementally
// updated tableau that accumulates drift. The dense core is the previous
// accumulated-tableau implementation, kept behind this flag for differential
// testing (CI runs the property suite against both).
type Core int32

// Simplex cores.
const (
	// CoreRevised is the LU-based revised simplex (default).
	CoreRevised Core = iota
	// CoreDense is the legacy dense accumulated-tableau simplex.
	CoreDense
)

func (c Core) String() string {
	if c == CoreDense {
		return "dense"
	}
	return "revised"
}

// activeCore holds the process-wide core selection. Reads are on the solve
// path, so it is an atomic rather than a mutex-guarded value.
var activeCore atomic.Int32

func init() {
	// REPRO_LP_CORE=dense pins the legacy dense tableau — the differential
	// CI job runs the test suite under both settings.
	if os.Getenv("REPRO_LP_CORE") == "dense" {
		activeCore.Store(int32(CoreDense))
	}
}

// ActiveCore returns the process-wide core selection.
func ActiveCore() Core { return Core(activeCore.Load()) }

// SetCore selects the simplex core process-wide and returns the previous
// selection. Both cores are deterministic; they may reach different (equally
// optimal) vertices on degenerate faces, so the selection must not be
// flipped between solves whose results are exchanged or memoized against
// each other.
func SetCore(c Core) Core {
	prev := activeCore.Swap(int32(c))
	return Core(prev)
}
