package lp

import (
	"math"
	"math/rand"
	"testing"
)

// membershipProblem builds the hull-membership feasibility LP used across
// the Γ-point pipeline: convex weights over pts reproducing z within tol.
func membershipProblem(t *testing.T, p *Problem, pts [][]float64, z []float64, tol float64) {
	t.Helper()
	p.Reset()
	d := len(z)
	alphas := make([]VarID, len(pts))
	for i := range pts {
		v, err := p.AddVar("a", 0, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		alphas[i] = v
	}
	sum := make([]Term, len(pts))
	for i, a := range alphas {
		sum[i] = Term{Var: a, Coeff: 1}
	}
	if err := p.AddConstraint("sum", sum, EQ, 1); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < d; l++ {
		terms := make([]Term, 0, len(pts))
		for i, a := range alphas {
			if pts[i][l] != 0 {
				terms = append(terms, Term{Var: a, Coeff: pts[i][l]})
			}
		}
		if err := p.AddConstraint("lo", terms, GE, z[l]-tol); err != nil {
			t.Fatal(err)
		}
		if err := p.AddConstraint("hi", terms, LE, z[l]+tol); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSolveWithBasisMatchesCold drives a chain of sibling membership
// programs (one point swapped per step) through SolveWithBasis and checks
// every verdict against an independent cold solve — feasibility must be
// basis-independent.
func TestSolveWithBasisMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const d, npts = 3, 6
	pts := make([][]float64, npts)
	for i := range pts {
		pts[i] = randVec(rng, d)
	}
	ws := NewWorkspace()
	var bas Basis
	warm := NewProblem()
	for step := 0; step < 60; step++ {
		// Swap one point, query membership of a nearby z.
		pts[step%npts] = randVec(rng, d)
		z := randVec(rng, d)
		if step%3 == 0 {
			// Make z an actual convex combination so both verdicts occur.
			for l := 0; l < d; l++ {
				z[l] = 0.25*pts[0][l] + 0.35*pts[1][l] + 0.4*pts[2][l]
			}
		}
		membershipProblem(t, warm, pts, z, 1e-7)
		got, err := warm.SolveWithBasis(ws, &bas)
		if err != nil {
			t.Fatalf("step %d: warm solve: %v", step, err)
		}

		cold := NewProblem()
		membershipProblem(t, cold, pts, z, 1e-7)
		want, err := cold.Solve()
		if err != nil {
			t.Fatalf("step %d: cold solve: %v", step, err)
		}
		if (got.Status == Optimal) != (want.Status == Optimal) {
			t.Fatalf("step %d: warm status %v, cold status %v", step, got.Status, want.Status)
		}
	}
}

// TestSolveWithBasisShapeMismatch checks that a basis from a differently
// shaped program falls back to a cold solve rather than failing.
func TestSolveWithBasisShapeMismatch(t *testing.T) {
	ws := NewWorkspace()
	var bas Basis

	p1 := NewProblem()
	x, _ := p1.AddVar("x", 0, 10)
	if err := p1.AddConstraint("c", []Term{{Var: x, Coeff: 1}}, LE, 5); err != nil {
		t.Fatal(err)
	}
	if err := p1.SetObjective(Maximize, []Term{{Var: x, Coeff: 1}}); err != nil {
		t.Fatal(err)
	}
	sol, err := p1.SolveWithBasis(ws, &bas)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("p1: %v %v", sol, err)
	}
	if math.Abs(sol.Values[x]-5) > 1e-9 {
		t.Fatalf("p1 optimum %v, want 5", sol.Values[x])
	}

	p2 := NewProblem()
	a, _ := p2.AddVar("a", 0, math.Inf(1))
	b, _ := p2.AddVar("b", 0, math.Inf(1))
	if err := p2.AddConstraint("c", []Term{{Var: a, Coeff: 1}, {Var: b, Coeff: 1}}, EQ, 3); err != nil {
		t.Fatal(err)
	}
	if err := p2.SetObjective(Minimize, []Term{{Var: a, Coeff: 2}, {Var: b, Coeff: 1}}); err != nil {
		t.Fatal(err)
	}
	sol2, err := p2.SolveWithBasis(ws, &bas)
	if err != nil || sol2.Status != Optimal {
		t.Fatalf("p2: %v %v", sol2, err)
	}
	if math.Abs(sol2.Objective-3) > 1e-9 {
		t.Fatalf("p2 objective %v, want 3", sol2.Objective)
	}
}

// TestHotStagedLexMin replays the lex-min pinning chain through
// SolveHot/AppendLE/Resolve and checks each stage's optimum against a cold
// solve of the cumulative program.
func TestHotStagedLexMin(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		const d = 3
		// A random feasible region: convex weights over a handful of points,
		// z free variables tied to the combination (an intersection-problem
		// miniature).
		build := func() (*Problem, []VarID) {
			p := NewProblem()
			zv := make([]VarID, d)
			for l := 0; l < d; l++ {
				v, _ := p.AddVar("z", math.Inf(-1), math.Inf(1))
				zv[l] = v
			}
			pts := make([][]float64, 5)
			r2 := rand.New(rand.NewSource(int64(trial)))
			al := make([]VarID, len(pts))
			for i := range pts {
				pts[i] = randVec(r2, d)
				v, _ := p.AddVar("a", 0, math.Inf(1))
				al[i] = v
			}
			sum := make([]Term, len(pts))
			for i, a := range al {
				sum[i] = Term{Var: a, Coeff: 1}
			}
			if err := p.AddConstraint("sum", sum, EQ, 1); err != nil {
				t.Fatal(err)
			}
			for l := 0; l < d; l++ {
				terms := make([]Term, 0, len(pts)+1)
				for i, a := range al {
					terms = append(terms, Term{Var: a, Coeff: pts[i][l]})
				}
				terms = append(terms, Term{Var: zv[l], Coeff: -1})
				if err := p.AddConstraint("eq", terms, EQ, 0); err != nil {
					t.Fatal(err)
				}
			}
			return p, zv
		}

		// Hot chain.
		const pinSlack = 1e-6
		hotProb, zv := build()
		if err := hotProb.SetObjective(Minimize, []Term{{Var: zv[0], Coeff: 1}}); err != nil {
			t.Fatal(err)
		}
		ws := NewWorkspace()
		sol, hot, err := hotProb.SolveHot(ws)
		if err != nil || sol.Status != Optimal || hot == nil {
			t.Fatalf("trial %d: stage 0: %+v %v", trial, sol, err)
		}
		hotVals := []float64{sol.Values[zv[0]]}
		for l := 1; l < d; l++ {
			if err := hot.AppendLE([]Term{{Var: zv[l-1], Coeff: 1}}, hotVals[l-1]+pinSlack); err != nil {
				t.Fatalf("trial %d: append stage %d: %v", trial, l, err)
			}
			if err := hotProb.SetObjective(Minimize, []Term{{Var: zv[l], Coeff: 1}}); err != nil {
				t.Fatal(err)
			}
			sol, err = hot.Resolve()
			if err != nil || sol.Status != Optimal {
				t.Fatalf("trial %d: resolve stage %d: %+v %v", trial, l, sol, err)
			}
			hotVals = append(hotVals, sol.Values[zv[l]])
		}

		// Cold chain (the pre-warm-start implementation shape).
		coldProb, zvc := build()
		coldVals := make([]float64, 0, d)
		for l := 0; l < d; l++ {
			if err := coldProb.SetObjective(Minimize, []Term{{Var: zvc[l], Coeff: 1}}); err != nil {
				t.Fatal(err)
			}
			csol, err := coldProb.Solve()
			if err != nil || csol.Status != Optimal {
				t.Fatalf("trial %d: cold stage %d: %+v %v", trial, l, csol, err)
			}
			coldVals = append(coldVals, csol.Values[zvc[l]])
			if l < d-1 {
				if err := coldProb.AddConstraint("pin", []Term{{Var: zvc[l], Coeff: 1}}, LE, csol.Values[zvc[l]]+pinSlack); err != nil {
					t.Fatal(err)
				}
			}
		}

		// The lex-min objective VALUES must agree to within the pin slack
		// scale at every stage (vertices on degenerate faces may differ).
		for l := 0; l < d; l++ {
			if math.Abs(hotVals[l]-coldVals[l]) > 1e-4 {
				t.Fatalf("trial %d: stage %d objective: hot %v cold %v", trial, l, hotVals[l], coldVals[l])
			}
		}
	}
}

// TestHotAppendInfeasible checks the violated-row signal.
func TestHotAppendInfeasible(t *testing.T) {
	p := NewProblem()
	x, _ := p.AddVar("x", 0, 10)
	if err := p.AddConstraint("c", []Term{{Var: x, Coeff: 1}}, GE, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.SetObjective(Minimize, []Term{{Var: x, Coeff: 1}}); err != nil {
		t.Fatal(err)
	}
	sol, hot, err := p.SolveHot(NewWorkspace())
	if err != nil || sol.Status != Optimal {
		t.Fatalf("%+v %v", sol, err)
	}
	if err := hot.AppendLE([]Term{{Var: x, Coeff: 1}}, 2); err == nil {
		t.Fatal("want ErrHotInfeasible for x ≤ 2 at x = 4")
	}
	// The tableau must remain usable: re-minimize unchanged.
	sol2, err := hot.Resolve()
	if err != nil || sol2.Status != Optimal || math.Abs(sol2.Values[x]-4) > 1e-7 {
		t.Fatalf("after refused append: %+v %v", sol2, err)
	}
}

func randVec(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}
