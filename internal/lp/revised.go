package lp

import (
	"errors"
	"math"
)

// This file is the revised simplex core: instead of carrying the full
// accumulated tableau through every pivot (the dense core in simplex.go,
// whose incrementally updated rows drift on long degenerate pivot
// sequences), it maintains only the current basis — as an LU factorization
// plus a product-form update file — and derives everything else on demand:
//
//   - FTRAN (B⁻¹·a) computes the entering column and the basic values;
//   - BTRAN (B⁻ᵀ·c_B) computes the simplex multipliers, from which the
//     reduced costs are priced fresh EVERY iteration — there is no
//     incrementally maintained cost row to drift, so optimality,
//     infeasibility and unboundedness verdicts always rest on freshly
//     priced costs (and are re-certified on freshly refactored bases);
//   - each pivot appends one eta operator (the product-form inverse
//     update); Hot.AppendLE appends one bordered-row operator (the appended
//     slack stays basic, making the extended basis block-triangular over
//     the retained factors);
//   - the basis is refactored from scratch every refactorEvery updates, and
//     on demand whenever the stability monitor trips (relatively tiny pivot
//     in the FTRAN'd column, or a beyond-tolerance infeasible basic value
//     after an update), with the basic values recomputed from the fresh
//     factors.
//
// Pivoting is the textbook ratio test under Dantzig pricing, falling back
// to Bland's rule (provably acyclic) whenever the objective stalls — the
// same bounded anti-cycling rule as the dense core, but applied to exact
// reduced costs.

const (
	// refactorEvery bounds the update file: after this many eta/border
	// operators the basis is refactored from scratch. For large programs
	// the bound scales with the row count (refactorBound) — an O(m³)
	// refactorization must amortize over enough O(m²) iterations.
	refactorEvery = 64
	// driftCooldown is the minimum update-file length before the drift
	// monitor may trigger an out-of-cadence refactorization.
	driftCooldown = 16
	// verdictOps is the re-certification threshold: an Optimal verdict
	// reached with at most this many outstanding update operators is
	// accepted on the per-iteration fresh pricing alone; longer update
	// files (and every Infeasible/Unbounded verdict) trigger a full
	// refactorization and a re-scan first.
	verdictOps = 8
	// p1FeasEps is the revised core's phase-1 infeasibility margin. The
	// strict verdict pass drives reduced costs under reducedEps, which
	// still leaves an objective gap of up to ~reducedEps·Σx* — on the
	// fragile hull intersections (hundreds of rows, Γ degenerated to a
	// point) that noise floor reaches the order of 1e-7, so the margin
	// must sit above it or Lemma-1-guaranteed-nonempty programs get
	// declared empty by rounding. Residual infeasibility passed through as
	// "feasible" is bounded by this margin, which every geometric consumer
	// tolerance (hull.DefaultTol, the lex-min pin slack) matches or
	// dominates.
	p1FeasEps = 1e-6
	// blandEps is Bland mode's improvement threshold. Anti-cycling only
	// holds if "improving" is noise-proof: candidate multisets routinely
	// contain duplicated points, whose twin columns read reduced costs of
	// ±O(1e-9..1e-8) pure solve noise when the other twin is basic — under
	// the plain reducedEps threshold Bland's rule swaps the twins on the
	// same degenerate row forever. Columns with true descent at a
	// suboptimal vertex price in at magnitudes orders above this
	// threshold, so raising it costs at most a feasEps-scale objective
	// slack (re-certified on fresh factors at every verdict).
	blandEps = 1e-7
	// etaStabRel is the stability monitor's pivot threshold: an FTRAN'd
	// column whose pivot entry is smaller than etaStabRel times the
	// column's magnitude would produce an ill-conditioned eta, so the basis
	// is refactored first and the iteration retried on fresh factors.
	etaStabRel = 1e-8
)

// refactorBound returns the update-file length that triggers a periodic
// refactorization for an m-row program.
func refactorBound(m int) int {
	if b := m / 2; b > refactorEvery {
		return b
	}
	return refactorEvery
}

// errSingularBasis reports a numerically singular basis during
// refactorization — with valid pivoting this indicates severe numerical
// trouble, equivalent in effect to the dense core's iteration-cap failure.
var errSingularBasis = errors.New("lp: basis factorization singular")

// revOp is one multiplicative update on the factored basis. Eta operators
// are stored sparsely — the pivot value first, then (index, value) pairs
// for the other nonzeros of the FTRAN'd column (ws.opIdx / ws.opBuf) —
// because early columns out of a fresh factorization are mostly zeros.
// Border operators store their row densely (one per appended constraint).
type revOp struct {
	border bool
	dim    int // operand length at creation time (current m)
	pivot  int // eta: pivot row; unused for borders
	off    int // start of the operator's values in Workspace.opBuf
	nnz    int // eta: number of off-pivot nonzeros (indices in ws.opIdx)
	idx    int // eta: start of the nonzero indices in Workspace.opIdx
}

// rev is the revised-simplex working state. Its slices alias Workspace
// buffers; dimensions live here so a Hot handle can retain the state across
// appends and resolves.
type rev struct {
	std *standard
	ws  *Workspace

	m, n  int   // current rows and structural+slack columns
	basis []int // ws.basis: column of each basic variable, per row
	xB    []float64

	luDim   int    // dimension of the factored prefix (m at last refactor)
	inBasis []bool // per-column basic marks, maintained across pivots

	// Compressed-sparse-column view of the structural matrix (rebuilt when
	// the program changes shape): pricing and column gathers walk only the
	// nonzeros — the hull-intersection programs are very sparse (a handful
	// of entries per convex-weight column).
	cscPtr []int
	cscRow []int
	cscVal []float64
}

// column writes standard-form column c (structural for c < n, artificial
// e_{c−n} otherwise) into dst[:m].
func (rv *rev) column(c int, dst []float64) {
	m, n := rv.m, rv.n
	clear(dst[:m])
	if c < n {
		for k := rv.cscPtr[c]; k < rv.cscPtr[c+1]; k++ {
			dst[rv.cscRow[k]] = rv.cscVal[k]
		}
		return
	}
	dst[c-n] = 1
}

// buildCSC (re)builds the compressed-sparse-column view of the structural
// matrix. Two row-major passes (count, fill) keep the scan sequential.
func (rv *rev) buildCSC() {
	m, n := rv.m, rv.n
	ws := rv.ws
	ptr := grow(&ws.cscPtr, n+1)
	for i := range ptr {
		ptr[i] = 0
	}
	a := rv.std.a
	for i := 0; i < m; i++ {
		row := a[i*n : i*n+n]
		for j, v := range row {
			if v != 0 {
				ptr[j+1]++
			}
		}
	}
	for j := 0; j < n; j++ {
		ptr[j+1] += ptr[j]
	}
	nnz := ptr[n]
	rows := grow(&ws.cscRow, nnz)
	vals := grow(&ws.cscVal, nnz)
	next := grow(&ws.cscNext, n)
	copy(next, ptr[:n])
	for i := 0; i < m; i++ {
		row := a[i*n : i*n+n]
		for j, v := range row {
			if v != 0 {
				k := next[j]
				next[j]++
				rows[k] = i
				vals[k] = v
			}
		}
	}
	rv.cscPtr, rv.cscRow, rv.cscVal = ptr, rows, vals
}

// refactor gathers the current basis matrix and factors it from scratch,
// dropping the update file. A numerically dependent basis column — the
// fragile hull intersections produce them out of near-duplicate candidate
// points — is repaired rather than fatal: the offending column is swapped
// for the artificial of a row not yet pivoted on (restoring
// nonsingularity by construction) and the factorization restarts. It
// reports false only when repair is impossible.
func (rv *rev) refactor() bool {
	m := rv.m
	ws := rv.ws
	rv.markBasis()
	for attempt := 0; attempt <= m; attempt++ {
		lu := grow(&ws.lu, m*m)
		col := grow(&ws.col, m)
		for j, c := range rv.basis {
			rv.column(c, col)
			for i := 0; i < m; i++ {
				lu[i*m+j] = col[i]
			}
		}
		piv := grow(&ws.luPiv, m)
		rowID := grow(&ws.rowID, m)
		for i := range rowID {
			rowID[i] = i
		}
		k := luFactorizeTrack(lu, piv, rowID, m)
		if k < 0 {
			rv.compressFactors(lu, m)
			rv.luDim = m
			ws.ops = ws.ops[:0]
			ws.opBuf = ws.opBuf[:0]
			ws.opIdx = ws.opIdx[:0]
			return true
		}
		repaired := false
		for _, r := range rowID[k:] {
			if !rv.inBasis[rv.n+r] {
				rv.inBasis[rv.basis[k]] = false
				rv.basis[k] = rv.n + r
				rv.inBasis[rv.n+r] = true
				repaired = true
				break
			}
		}
		if !repaired {
			return false
		}
	}
	return false
}

// compressFactors extracts sparse views of the freshly factored L and U:
// columns of L (forward solve, Lᵀ solve), rows and columns of U (back
// solve, Uᵀ solve), and the U diagonal. The basis matrices of the
// hull-intersection programs are block sparse, and partial-pivoting LU
// preserves most of that sparsity — solving through the sparse views costs
// O(nnz(L)+nnz(U)) instead of O(m²), which is the revised core's
// per-iteration floor.
func (rv *rev) compressFactors(lu []float64, m int) {
	ws := rv.ws
	lPtr := grow(&ws.lPtr, m+1)
	uColPtr := grow(&ws.uColPtr, m+1)
	uRowPtr := grow(&ws.uRowPtr, m+1)
	uDiag := grow(&ws.uDiag, m)
	lIdx := ws.lIdx[:0]
	lVal := ws.lVal[:0]
	uColIdx := ws.uColIdx[:0]
	uColVal := ws.uColVal[:0]
	uRowIdx := ws.uRowIdx[:0]
	uRowVal := ws.uRowVal[:0]
	for k := 0; k < m; k++ {
		uColPtr[k] = len(uColIdx)
		lPtr[k] = len(lIdx)
		for i := 0; i < k; i++ {
			if v := lu[i*m+k]; v != 0 {
				uColIdx = append(uColIdx, i)
				uColVal = append(uColVal, v)
			}
		}
		uDiag[k] = lu[k*m+k]
		for i := k + 1; i < m; i++ {
			if v := lu[i*m+k]; v != 0 {
				lIdx = append(lIdx, i)
				lVal = append(lVal, v)
			}
		}
		uRowPtr[k] = len(uRowIdx)
		row := lu[k*m : k*m+m]
		for j := k + 1; j < m; j++ {
			if v := row[j]; v != 0 {
				uRowIdx = append(uRowIdx, j)
				uRowVal = append(uRowVal, v)
			}
		}
	}
	lPtr[m] = len(lIdx)
	uColPtr[m] = len(uColIdx)
	uRowPtr[m] = len(uRowIdx)
	ws.lIdx, ws.lVal = lIdx, lVal
	ws.uColIdx, ws.uColVal = uColIdx, uColVal
	ws.uRowIdx, ws.uRowVal = uRowIdx, uRowVal
}

// ftranBase solves the factored-prefix system B₀·x = rhs through the
// sparse factor views.
func (rv *rev) ftranBase(x []float64) {
	ws := rv.ws
	dim := rv.luDim
	piv := ws.luPiv
	for k := 0; k < dim; k++ {
		if p := piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	lPtr, lIdx, lVal := ws.lPtr, ws.lIdx, ws.lVal
	for k := 0; k < dim; k++ {
		xk := x[k]
		if xk == 0 {
			continue
		}
		for t := lPtr[k]; t < lPtr[k+1]; t++ {
			x[lIdx[t]] -= lVal[t] * xk
		}
	}
	uRowPtr, uRowIdx, uRowVal, uDiag := ws.uRowPtr, ws.uRowIdx, ws.uRowVal, ws.uDiag
	for k := dim - 1; k >= 0; k-- {
		s := x[k]
		for t := uRowPtr[k]; t < uRowPtr[k+1]; t++ {
			s -= uRowVal[t] * x[uRowIdx[t]]
		}
		x[k] = s / uDiag[k]
	}
}

// btranBase solves B₀ᵀ·y = rhs through the sparse factor views.
func (rv *rev) btranBase(y []float64) {
	ws := rv.ws
	dim := rv.luDim
	uColPtr, uColIdx, uColVal, uDiag := ws.uColPtr, ws.uColIdx, ws.uColVal, ws.uDiag
	for k := 0; k < dim; k++ {
		s := y[k]
		for t := uColPtr[k]; t < uColPtr[k+1]; t++ {
			s -= uColVal[t] * y[uColIdx[t]]
		}
		y[k] = s / uDiag[k]
	}
	lPtr, lIdx, lVal := ws.lPtr, ws.lIdx, ws.lVal
	for k := dim - 2; k >= 0; k-- {
		s := y[k]
		for t := lPtr[k]; t < lPtr[k+1]; t++ {
			s -= lVal[t] * y[lIdx[t]]
		}
		y[k] = s
	}
	piv := ws.luPiv
	for k := dim - 1; k >= 0; k-- {
		if p := piv[k]; p != k {
			y[k], y[p] = y[p], y[k]
		}
	}
}

// refactorStrict factors the current basis without the repair loop: used
// by the warm path, where a singular candidate basis must defer to the
// cold solve instead of being repaired into a different basis.
func (rv *rev) refactorStrict() bool {
	m := rv.m
	ws := rv.ws
	lu := grow(&ws.lu, m*m)
	col := grow(&ws.col, m)
	for j, c := range rv.basis {
		rv.column(c, col)
		for i := 0; i < m; i++ {
			lu[i*m+j] = col[i]
		}
	}
	piv := grow(&ws.luPiv, m)
	if !luFactorize(lu, piv, m) {
		return false
	}
	rv.compressFactors(lu, m)
	rv.luDim = m
	ws.ops = ws.ops[:0]
	ws.opBuf = ws.opBuf[:0]
	ws.opIdx = ws.opIdx[:0]
	return true
}

// refresh refactors and recomputes the basic values from the fresh
// factors. Negative recomputed values are clamped to exactly zero — noise
// within feasEps always is, and on the ill-conditioned fragile bases the
// residual infeasibility beyond it is shifted away too (the alternative is
// a refactorization storm: the drift monitor would re-trip on every
// subsequent pivot while the terminal verdicts are certified against the
// true data anyway, by the strict phase-1 re-pass and the unbounded-ray
// residual check).
func (rv *rev) refresh() bool {
	if !rv.refactor() {
		return false
	}
	copy(rv.xB[:rv.m], rv.std.b[:rv.m])
	rv.ftran(rv.xB)
	for i := range rv.xB {
		if rv.xB[i] < 0 {
			rv.xB[i] = 0
		}
	}
	return true
}

// ftran solves B·x = rhs in place: the base LU solve on the factored
// prefix, then every update operator in chronological order (each touches
// only the prefix that existed when it was created).
func (rv *rev) ftran(x []float64) {
	ws := rv.ws
	rv.ftranBase(x)
	for _, op := range ws.ops {
		if op.border {
			r := ws.opBuf[op.off : op.off+op.dim-1]
			x[op.dim-1] -= dotVec(r, x)
			continue
		}
		p := op.pivot
		xp := x[p] / ws.opBuf[op.off]
		if xp != 0 {
			vals := ws.opBuf[op.off+1 : op.off+1+op.nnz]
			idxs := ws.opIdx[op.idx : op.idx+op.nnz]
			for k, i := range idxs {
				x[i] -= vals[k] * xp
			}
		}
		x[p] = xp
	}
}

// btran solves Bᵀ·y = rhs in place: the update operators transposed in
// reverse order, then the base LU transpose solve.
func (rv *rev) btran(y []float64) {
	ws := rv.ws
	for k := len(ws.ops) - 1; k >= 0; k-- {
		op := ws.ops[k]
		if op.border {
			r := ws.opBuf[op.off : op.off+op.dim-1]
			yb := y[op.dim-1]
			if yb != 0 {
				axpyNeg(y[:op.dim-1], yb, r)
			}
			continue
		}
		p := op.pivot
		s := y[p]
		vals := ws.opBuf[op.off+1 : op.off+1+op.nnz]
		idxs := ws.opIdx[op.idx : op.idx+op.nnz]
		for k2, i := range idxs {
			s -= vals[k2] * y[i]
		}
		y[p] = s / ws.opBuf[op.off]
	}
	rv.btranBase(y)
}

// pushEta appends the product-form update for a pivot on row p with
// FTRAN'd entering column d: the pivot value, then the off-pivot nonzeros.
func (rv *rev) pushEta(d []float64, p int) {
	ws := rv.ws
	off := len(ws.opBuf)
	idx := len(ws.opIdx)
	ws.opBuf = append(ws.opBuf, d[p])
	for i, v := range d[:rv.m] {
		if v != 0 && i != p {
			ws.opBuf = append(ws.opBuf, v)
			ws.opIdx = append(ws.opIdx, i)
		}
	}
	ws.ops = append(ws.ops, revOp{dim: rv.m, pivot: p, off: off, nnz: len(ws.opIdx) - idx, idx: idx})
}

// pushBorder appends the bordered-row update for an appended constraint row
// whose slack is basic: r holds the new row's coefficients at the previous
// basis columns (length m−1 after the append).
func (rv *rev) pushBorder(r []float64) {
	ws := rv.ws
	off := len(ws.opBuf)
	ws.opBuf = append(ws.opBuf, r...)
	ws.ops = append(ws.ops, revOp{border: true, dim: rv.m, off: off})
}

// markBasis rebuilds the per-column basic marks.
func (rv *rev) markBasis() {
	marks := grow(&rv.ws.inBasis, rv.n+rv.m)
	for i := range marks {
		marks[i] = false
	}
	for _, c := range rv.basis {
		marks[c] = true
	}
	rv.inBasis = marks
}

// newRev initializes the revised state on the all-artificial basis
// (B = I, so the initial factorization is trivial) with xB = b ≥ 0.
func newRev(s *standard, ws *Workspace) (*rev, error) {
	rv := &rev{std: s, ws: ws, m: s.m, n: s.n}
	rv.basis = grow(&ws.basis, s.m)
	for i := range rv.basis {
		rv.basis[i] = s.n + i
	}
	rv.xB = grow(&ws.xB, s.m)
	copy(rv.xB, s.b[:s.m])
	ws.ops = ws.ops[:0]
	ws.opBuf = ws.opBuf[:0]
	ws.opIdx = ws.opIdx[:0]
	rv.buildCSC()
	if !rv.refactor() {
		return nil, errSingularBasis
	}
	rv.markBasis()
	return rv, nil
}

// price computes the reduced costs r_j = c_j − yᵀA_j for every column
// j < limit into ws.red. The structural block is accumulated row-major
// (sequential memory), artificial columns reduce to c_{n+i} − y_i.
func (rv *rev) price(cost, y []float64, limit int) []float64 {
	n := rv.n
	red := grow(&rv.ws.red, limit)
	sl := limit
	if sl > n {
		sl = n
	}
	ptr, rows, vals := rv.cscPtr, rv.cscRow, rv.cscVal
	for j := 0; j < sl; j++ {
		acc := cost[j]
		for k := ptr[j]; k < ptr[j+1]; k++ {
			acc -= vals[k] * y[rows[k]]
		}
		red[j] = acc
	}
	for j := n; j < limit; j++ {
		red[j] = cost[j] - y[j-n]
	}
	return red
}

// selectPivot outcomes (the enter result when no pivot was produced).
const (
	selOptimal   = -1 // no improving column on the current pricing
	selUnbounded = -2 // improving column with a certified unbounded ray
	selRefresh   = -3 // stability monitor tripped: refactor and retry
	selBad       = -4 // ray failed residual verification: numerics exhausted
)

// rayResidTol bounds ‖A_q − B·d‖∞ for an unbounded-ray certificate: d is
// the FTRAN'd entering column, so the residual measures how much the
// factors actually solved the system. Data is row-equilibrated to O(1).
const rayResidTol = 1e-6

// rayResidualOK verifies the FTRAN'd column d against the original basis
// columns: a genuine ray must satisfy B·d = A_enter. On the fragile
// hull-intersection bases an ill-conditioned solve can zero a column's
// image and fake an unbounded direction — the residual check catches it
// from the unfactored data.
func (rv *rev) rayResidualOK(enter int, d []float64) bool {
	m := rv.m
	ws := rv.ws
	r := grow(&ws.col, m)
	rv.column(enter, r)
	for j, c := range rv.basis {
		xj := d[j]
		if xj == 0 {
			continue
		}
		if c < rv.n {
			for k := rv.cscPtr[c]; k < rv.cscPtr[c+1]; k++ {
				r[rv.cscRow[k]] -= xj * rv.cscVal[k]
			}
		} else {
			r[c-rv.n] -= xj
		}
	}
	for _, v := range r {
		if v > rayResidTol || v < -rayResidTol {
			return false
		}
	}
	return true
}

// selectPivot picks the entering and leaving variables on the given fresh
// reduced costs: Dantzig's rule (most negative) or, in Bland mode, the
// lowest improving index. The ratio test is the textbook minimum with ties
// broken toward the lowest basis column (the Bland-compatible tie break the
// anti-cycling guarantee needs). Columns whose FTRAN image has no usable
// pivot and whose reduced cost is within noise of zero are excluded for
// this pricing pass only. On success the FTRAN'd entering column is left in
// ws.col2.
func (rv *rev) selectPivot(red []float64, limit int, bland bool, blandTol float64) (enter, leave int, col []float64) {
	// In phase 2 (limit ≤ n: artificial columns barred from entering) a
	// basic artificial is pinned at zero and must block the ratio test
	// with either entry sign; in phase 1 artificials are ordinary
	// cost-1 variables and move freely.
	pinned := limit <= rv.n
	ws := rv.ws
	excl := ws.excl[:0]
	defer func() {
		for _, j := range excl {
			rv.inBasis[j] = false
		}
		ws.excl = excl
	}()
	for {
		enter = -1
		if bland {
			for j := 0; j < limit; j++ {
				if !rv.inBasis[j] && red[j] < -blandTol {
					enter = j // Bland: first index improving beyond the tolerance
					break
				}
			}
		} else {
			best := -reducedEps
			for j := 0; j < limit; j++ {
				if r := red[j]; r < best && !rv.inBasis[j] {
					best = r
					enter = j // Dantzig: most improving index
				}
			}
		}
		if enter < 0 {
			return selOptimal, 0, nil
		}

		col = grow(&ws.col2, rv.m)
		rv.column(enter, col)
		rv.ftran(col)

		// Exact minimum-ratio test with ties broken toward the lowest basis
		// column. The comparisons are exact on the computed ratios — an
		// epsilon window here lets a "tied" higher-ratio row win and
		// silently breaks Bland's anti-cycling invariant on the massively
		// degenerate phase-1 bases of the hull programs (every eq-row
		// ratio is exactly 0 thanks to the basic-value clamping, so exact
		// ties resolve by index just as the textbook rule requires).
		leave = -1
		var bestRatio, colMax float64
		for i := 0; i < rv.m; i++ {
			e := col[i]
			if a := math.Abs(e); a > colMax {
				colMax = a
			}
			eligible := e > pivotEps
			ratio := 0.0
			if eligible {
				xb := rv.xB[i]
				if xb < 0 {
					xb = 0
				}
				ratio = xb / e
			} else if pinned && e < -pivotEps && rv.basis[i] >= rv.n && rv.xB[i] <= feasEps {
				// A basic artificial pinned at ~zero blocks the column with
				// EITHER sign: it must never grow (its row would silently
				// relax — basis repairs seat artificials mid-phase-2, and a
				// "ray" through a relaxed row is not a ray of the real
				// program), so it leaves at a zero step instead.
				eligible = true
			}
			if !eligible {
				continue
			}
			switch {
			case leave < 0 || ratio < bestRatio:
				leave = i
				bestRatio = ratio
			case ratio == bestRatio && rv.basis[i] < rv.basis[leave]:
				leave = i
			}
		}
		if leave < 0 {
			// No blocking row. Only a decisively negative reduced cost
			// signals a genuine unbounded ray; a reduced cost within noise
			// of zero on a pivotless column is numerical debris — exclude
			// the column for this pricing pass and rescan (the fresh-priced
			// analogue of the dense core's phantom-column guard).
			if red[enter] >= -phantomEps {
				rv.inBasis[enter] = true
				excl = append(excl, enter)
				continue
			}
			if !rv.rayResidualOK(enter, col) {
				return selBad, 0, nil
			}
			return selUnbounded, 0, nil
		}
		// Stability monitor: a relatively tiny pivot would produce an
		// ill-conditioned eta. With updates outstanding, refactor first and
		// retry on fresh factors; on a fresh factorization the column's
		// image is as accurate as it gets, so the pivot is accepted.
		if len(ws.ops) > 0 && math.Abs(col[leave]) < etaStabRel*colMax {
			return selRefresh, 0, nil
		}
		return enter, leave, col
	}
}

// iterate runs revised-simplex pivots under the given cost vector (length
// n+m; artificial columns at or beyond limit can leave but never enter)
// until optimality or unboundedness. Both verdicts are re-certified on a
// freshly refactored basis whenever updates are outstanding. On Optimal the
// basis and xB hold the final vertex.
func (rv *rev) iterate(cost []float64, limit int, blandTol float64) (Status, error) {
	ws := rv.ws
	maxIters := maxItFactor * (rv.m + rv.n)
	if maxIters < minIters {
		maxIters = minIters
	}
	// A solve that has gone stallCap consecutive iterations without
	// objective progress is numerically cycling (Bland mode engages after
	// stallLimit, and an honest degenerate walk resolves within O(m+n)
	// pivots); giving up early feeds the caller's recovery ladder —
	// perturbed retry, cold fallback, partition rescue — instead of
	// burning the full iteration cap first.
	stallCap := 8 * (rv.m + rv.n)
	if stallCap < 2000 {
		stallCap = 2000
	}
	const stallLimit = 30

	stall := 0
	lastObj := math.Inf(1)
	for iter := 0; iter < maxIters; iter++ {
		m := rv.m
		// Simplex multipliers and fresh reduced costs.
		y := grow(&ws.y, m)
		for i, c := range rv.basis {
			y[i] = cost[c]
		}
		rv.btran(y)
		red := rv.price(cost, y, limit)

		enter, leave, col := rv.selectPivot(red, limit, stall >= stallLimit, blandTol)
		if enter < 0 {
			// Every verdict already rests on reduced costs priced fresh
			// from the factored basis this iteration. Optimality is
			// additionally re-certified on a from-scratch refactorization
			// when the update file has grown past a handful of operators;
			// terminal Infeasible/Unbounded claims always are.
			recertify := len(ws.ops) > 0 &&
				(enter != selOptimal || len(ws.ops) > verdictOps)
			if recertify {
				if !rv.refresh() {
					return 0, errSingularBasis
				}
				continue
			}
			switch enter {
			case selOptimal:
				return Optimal, nil
			case selUnbounded:
				if len(ws.ops) > 0 {
					if !rv.refresh() {
						return 0, errSingularBasis
					}
					continue
				}
				return Unbounded, nil
			}
			continue // selRefresh with nothing to refresh cannot occur
		}

		// Pivot: update the basic values, swap the basis column, push the
		// eta operator. A zero-step exit of a pinned artificial pivots on
		// a negative element; the step is exactly zero there (the
		// artificial sits within feasEps of zero), never negative.
		theta := rv.xB[leave]
		if theta < 0 || col[leave] < 0 {
			theta = 0
		} else {
			theta /= col[leave]
		}
		if theta != 0 {
			for i := 0; i < m; i++ {
				rv.xB[i] -= theta * col[i]
				if rv.xB[i] < 0 && rv.xB[i] > -feasEps {
					rv.xB[i] = 0
				}
			}
		}
		rv.xB[leave] = theta
		rv.inBasis[rv.basis[leave]] = false
		rv.basis[leave] = enter
		rv.inBasis[enter] = true
		rv.pushEta(col, leave)

		drift := false
		if len(ws.ops) >= driftCooldown {
			// Beyond-tolerance infeasibility trips the monitor, but only
			// after a few updates have accumulated — refresh clamps the
			// basic values to feasibility, so immediate re-trips would
			// refactor on every pivot for nothing.
			for i := 0; i < m; i++ {
				if rv.xB[i] < -feasEps {
					drift = true
					break
				}
			}
		}
		if len(ws.ops) >= refactorBound(m) || drift {
			if !rv.refresh() {
				return 0, errSingularBasis
			}
		}

		var obj float64
		for i, c := range rv.basis {
			obj += cost[c] * rv.xB[i]
		}
		if obj < lastObj-reducedEps {
			stall = 0
			lastObj = obj
		} else {
			if stall++; stall >= stallCap {
				return 0, errIterationCap
			}
		}
	}
	return 0, errIterationCap
}

// driveOutArtificials pivots every basic artificial left at value zero
// after phase 1 onto a structural or slack column with a usable entry in
// its row. Rows with no such entry are numerically redundant: their
// artificial stays basic, pinned at zero — the row's FTRAN image is zero
// for every column, so no later pivot can move it.
func (rv *rev) driveOutArtificials() error {
	ws := rv.ws
	for i := 0; i < rv.m; i++ {
		if rv.basis[i] < rv.n {
			continue
		}
		// Row i of B⁻¹A via the multipliers ρ = B⁻ᵀe_i: entries are ρᵀA_j.
		rho := grow(&ws.y, rv.m)
		clear(rho)
		rho[i] = 1
		rv.btran(rho)
		// price with a zero cost vector gives red[j] = −ρᵀA_j.
		zero := growZero(&ws.cvec, rv.n)
		red := rv.price(zero, rho, rv.n)
		for j := 0; j < rv.n; j++ {
			if rv.inBasis[j] || math.Abs(red[j]) <= pivotEps {
				continue
			}
			col := grow(&ws.col2, rv.m)
			rv.column(j, col)
			rv.ftran(col)
			if math.Abs(col[i]) <= pivotEps {
				continue // drifted row estimate; try the next column
			}
			// Degenerate pivot: the artificial sits at ~0, so the step is
			// ~0 and the basic point is unchanged up to tolerance.
			theta := rv.xB[i]
			if theta < 0 {
				theta = 0
			}
			theta /= col[i]
			if theta != 0 {
				for k := 0; k < rv.m; k++ {
					rv.xB[k] -= theta * col[k]
					if rv.xB[k] < 0 && rv.xB[k] > -feasEps {
						rv.xB[k] = 0
					}
				}
			}
			rv.xB[i] = theta
			rv.inBasis[rv.basis[i]] = false
			rv.basis[i] = j
			rv.inBasis[j] = true
			rv.pushEta(col, i)
			if len(ws.ops) >= refactorBound(rv.m) {
				if !rv.refresh() {
					return errSingularBasis
				}
			}
			break
		}
	}
	return nil
}

// artificialSum returns the phase-1 objective: the total value of basic
// artificial variables.
func (rv *rev) artificialSum() float64 {
	var s float64
	for i, c := range rv.basis {
		if c >= rv.n {
			s += rv.xB[i]
		}
	}
	return s
}

// extract maps the basic values to the full standard-form solution vector
// (ws.x scratch).
func (rv *rev) extract() []float64 {
	x := growZero(&rv.ws.x, rv.n)
	for i, c := range rv.basis {
		if c < rv.n {
			x[c] = rv.xB[i]
		}
	}
	return x
}

// solveRevised runs two-phase revised simplex on the standard-form
// program. The returned solution vector is scratch owned by ws.
func (s *standard) solveRevised(ws *Workspace) (Status, []float64, error) {
	st, x, _, err := s.solveRevisedKeep(ws)
	return st, x, err
}

// solveRevisedKeep is solveRevised, additionally returning the live solver
// state on an Optimal outcome so SolveHot can retain it.
//
// A first attempt that dies of numerical degeneracy — a singular basis
// refactorization or the iteration cap, both signatures of the massively
// degenerate hull intersections of the fragile regime — is retried once
// with a deterministic right-hand-side perturbation (perturbB): breaking
// the exact primal ties restores strict ratio-test progress and
// well-conditioned bases. The perturbation is identical on every process,
// so results stay deterministic, and its 1e-9 scale is far below every
// consumer tolerance (hull tolerances and the lex-min pin slack are 1e-7
// to 1e-6).
func (s *standard) solveRevisedKeep(ws *Workspace) (Status, []float64, *rev, error) {
	st, x, rv, err := s.solveRevisedAttempt(ws)
	if errors.Is(err, errSingularBasis) || errors.Is(err, errIterationCap) {
		s.perturbB()
		st, x, rv, err = s.solveRevisedAttempt(ws)
	}
	return st, x, rv, err
}

// perturbB applies the deterministic degeneracy-breaking perturbation:
// strictly increasing 1e-9-scale offsets that keep b ≥ 0.
func (s *standard) perturbB() {
	for i := 0; i < s.m; i++ {
		s.b[i] += float64(i+1) * 1e-9
	}
}

// solveRevisedAttempt runs one two-phase revised-simplex attempt.
func (s *standard) solveRevisedAttempt(ws *Workspace) (Status, []float64, *rev, error) {
	m, n := s.m, s.n
	if m == 0 {
		for _, cj := range s.c {
			if cj < -reducedEps {
				return Unbounded, nil, nil, nil
			}
		}
		return Optimal, growZero(&ws.x, n), nil, nil
	}
	rv, err := newRev(s, ws)
	if err != nil {
		return 0, nil, nil, err
	}

	// Phase 1: minimize the artificial sum from the all-artificial basis.
	p1c := growZero(&ws.cvec, n+m)
	for j := n; j < n+m; j++ {
		p1c[j] = 1
	}
	st, err := rv.iterate(p1c, n+m, blandEps)
	if err != nil {
		return 0, nil, nil, err
	}
	if st != Optimal {
		// Phase 1 is bounded below by 0; an unbounded verdict is numerical
		// failure (mirrors the dense core).
		return 0, nil, nil, errIterationCap
	}
	p1obj := rv.artificialSum()
	if p1obj > p1FeasEps {
		// The noise-proof Bland tolerance may stop short of true phase-1
		// optimality by more than feasEps, so an infeasibility verdict is
		// only rendered after a strict pass on freshly refactored bases:
		// refresh, then drive the artificial sum down under the tight
		// threshold. A strict pass that cycles into the iteration cap
		// aborts the attempt (the caller retries with the
		// degeneracy-breaking perturbation).
		if !rv.refresh() {
			return 0, nil, nil, errSingularBasis
		}
		st, err = rv.iterate(p1c, n+m, reducedEps)
		if err != nil {
			return 0, nil, nil, err
		}
		if st != Optimal {
			return 0, nil, nil, errIterationCap
		}
		p1obj = rv.artificialSum()
		if p1obj > p1FeasEps {
			return Infeasible, nil, nil, nil
		}
	}
	// Drive residual artificials out of the basis before phase 2: a basic
	// artificial is only harmless on a redundant row (its FTRAN entry is
	// then zero for every column, so no pivot can ever move it off zero);
	// on a non-redundant row a phase-2 step with a negative entry would
	// silently grow the artificial and violate its constraint row.
	if err := rv.driveOutArtificials(); err != nil {
		return 0, nil, nil, err
	}

	// Phase 2: original costs.
	p2c := growZero(&ws.cvec, n+m)
	copy(p2c, s.c[:n])
	st, err = rv.iterate(p2c, n, blandEps)
	if err != nil {
		return 0, nil, nil, err
	}
	if st != Optimal {
		return st, nil, nil, nil
	}
	if err := rv.checkArtificials(); err != nil {
		return 0, nil, nil, err
	}
	return Optimal, rv.extract(), rv, nil
}

// checkArtificials rejects a phase-2 "Optimal" vertex carrying a basic
// artificial beyond the feasibility slack: a mid-phase-2 basis repair can
// seat an artificial on a numerically dependent row, and if it settles at
// a meaningfully positive value the vertex silently violates that row —
// extract() would drop the violation on the floor. Surfacing the same
// failure as the iteration cap routes the solve into the perturbed retry
// (or the caller's cold fallback).
func (rv *rev) checkArtificials() error {
	if rv.artificialSum() > p1FeasEps {
		return errIterationCap
	}
	return nil
}

// solveWarmRevised attempts the warm path of SolveWithBasis on the revised
// core: refactor the candidate basis against this program's coefficients,
// recompute the basic values from the fresh factors, and — when the basis
// is nonsingular and primal feasible here — run phase 2 directly. The
// boolean reports whether a verdict was produced; false defers to the cold
// two-phase path.
func (s *standard) solveWarmRevised(ws *Workspace, cols []int) (Status, []float64, bool) {
	m, n := s.m, s.n
	if m == 0 || len(cols) != m {
		return 0, nil, false
	}
	for _, c := range cols {
		if c < 0 || c >= n {
			return 0, nil, false
		}
	}
	rv := &rev{std: s, ws: ws, m: m, n: n}
	rv.basis = grow(&ws.basis, m)
	copy(rv.basis, cols)
	rv.xB = grow(&ws.xB, m)
	ws.ops = ws.ops[:0]
	ws.opBuf = ws.opBuf[:0]
	ws.opIdx = ws.opIdx[:0]
	rv.buildCSC()
	rv.markBasis()
	// Strict factorization for the warm attempt: no basis repair and no
	// value clamping — a candidate basis that is singular for these
	// coefficients or whose basic point is primal infeasible must fall
	// back to the cold two-phase path (which decides feasibility
	// honestly), not be "fixed" into a fake vertex.
	if !rv.refactorStrict() {
		return 0, nil, false // singular for these coefficients: run cold
	}
	copy(rv.xB[:m], s.b[:m])
	rv.ftran(rv.xB)
	for i, v := range rv.xB {
		if v < -feasEps {
			return 0, nil, false // primal infeasible basic point: run cold
		}
		if v < 0 {
			rv.xB[i] = 0
		}
	}
	p2c := growZero(&ws.cvec, n+m)
	copy(p2c, s.c[:n])
	st, err := rv.iterate(p2c, n, blandEps)
	if err != nil {
		return 0, nil, false // numeric trouble: let the cold path decide
	}
	if st != Optimal {
		return st, nil, true
	}
	if rv.checkArtificials() != nil {
		return 0, nil, false // repair relaxed a row: let the cold path decide
	}
	return Optimal, rv.extract(), true
}

// appendLERow extends the standard-form program with the standardized row
// newRow (length n+1: structural coefficients plus the new slack at column
// n) and right-hand side b. The constraint matrix is re-laid with the
// wider stride into the alternate slab.
func (s *standard) appendLERow(ws *Workspace, newRow []float64, b float64) {
	m, n := s.m, s.n
	na := grow(&ws.a2, (m+1)*(n+1))
	for i := 0; i < m; i++ {
		copy(na[i*(n+1):i*(n+1)+n], s.a[i*n:i*n+n])
		na[i*(n+1)+n] = 0
	}
	copy(na[m*(n+1):(m+1)*(n+1)], newRow)
	ws.a, ws.a2 = na, ws.a
	s.a = na
	s.b = append(s.b, b)
	ws.b = s.b
	s.c = append(s.c, 0)
	ws.c = s.c
	s.m, s.n = m+1, n+1
}

// hotRev is the retained revised-core state behind a Hot handle.
type hotRev struct {
	rv *rev
}

// appendLE implements Hot.AppendLE on the revised core: the appended row is
// evaluated against the current basic point; if its slack value is
// non-negative the program is extended, the slack enters the basis on the
// new row, and one bordered-row operator extends the retained factors.
func (h *hotRev) appendLE(std *standard, ws *Workspace, terms []Term, rhs float64) error {
	rv := h.rv
	m, n := rv.m, rv.n

	// Standardized row in the extended layout (new slack at column n).
	newRow := growZero(&ws.rowBuf, n+1)
	b := rhs
	for _, tm := range terms {
		v := std.varMap[tm.Var]
		switch v.kind {
		case varShift:
			newRow[v.col] += tm.Coeff
			b -= tm.Coeff * v.off
		case varMirror:
			newRow[v.col] -= tm.Coeff
			b -= tm.Coeff * v.off
		case varSplit:
			newRow[v.col] += tm.Coeff
			newRow[v.col2] -= tm.Coeff
		}
	}
	newRow[n] = 1

	// The new row's coefficients at the current basis columns, and from
	// them the slack's value at the current vertex. Artificial basics
	// (degenerate phase-1 leftovers pinned at zero) contribute nothing.
	r := grow(&ws.rowBuf2, m)
	for j, c := range rv.basis {
		if c < n {
			r[j] = newRow[c]
		} else {
			r[j] = 0
		}
	}
	slackVal := b
	for j, rj := range r {
		slackVal -= rj * rv.xB[j]
	}
	if slackVal < -feasEps {
		return ErrHotInfeasible // nothing mutated; the handle stays usable
	}
	if slackVal < 0 {
		slackVal = 0
	}

	// Commit: extend the program, renumber artificial basis columns past
	// the new slack, seat the slack on the new row, border the factors.
	std.appendLERow(ws, newRow, b)
	for j, c := range rv.basis {
		if c >= n {
			rv.basis[j] = c + 1
		}
	}
	rv.m, rv.n = std.m, std.n
	rv.basis = append(rv.basis, n)
	ws.basis = rv.basis
	rv.xB = append(rv.xB, slackVal)
	ws.xB = rv.xB
	rv.pushBorder(r)
	rv.buildCSC()
	rv.markBasis()
	return nil
}

// resolve implements Hot.Resolve on the revised core: phase 2 from the
// current basis under the problem's current objective.
func (h *hotRev) resolve(p *Problem, std *standard, ws *Workspace) (Status, []float64, error) {
	rv := h.rv
	m, n := rv.m, rv.n
	c := growZero(&ws.cvec, n+m)
	sign := 1.0
	if p.objSense == Maximize {
		sign = -1
	}
	for _, tm := range p.obj {
		v := std.varMap[tm.Var]
		switch v.kind {
		case varShift:
			c[v.col] += sign * tm.Coeff
		case varMirror:
			c[v.col] -= sign * tm.Coeff
		case varSplit:
			c[v.col] += sign * tm.Coeff
			c[v.col2] -= sign * tm.Coeff
		}
	}
	st, err := rv.iterate(c, n, blandEps)
	if err != nil {
		return 0, nil, err
	}
	if st != Optimal {
		return st, nil, nil
	}
	if err := rv.checkArtificials(); err != nil {
		return 0, nil, err
	}
	return Optimal, rv.extract(), nil
}
