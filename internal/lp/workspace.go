package lp

import "sync"

// Workspace holds the scratch buffers of one solver instance: the flat
// tableau slab, the standard-form matrices, and the basis bookkeeping. A
// Workspace may be reused across any number of solves (SolveWith), which
// makes repeated solves allocation-free once the buffers have grown to the
// problem size; it must not be used from multiple goroutines concurrently.
//
// The zero value is ready to use.
type Workspace struct {
	// simplex buffers
	tab   []float64
	basis []int
	x     []float64
	cvec  []float64 // per-phase cost vector for re-pricing

	// warm-start buffers (see warm.go)
	tab2    []float64 // alternate slab for Hot.AppendLE re-layouts
	rowBuf  []float64 // appended-row construction
	rowUsed []bool    // row-assignment marks for basis pivot-in

	// standardization buffers
	a      []float64
	b      []float64
	c      []float64
	varMap []stdVar
	rels   []Rel
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// wsPool backs Problem.Solve so that callers who do not manage a Workspace
// themselves still reuse buffers across solves.
var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// grow resizes *buf to n elements, reallocating only when capacity is
// insufficient. Contents are unspecified.
func grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growZero is grow with the returned slice cleared.
func growZero(buf *[]float64, n int) []float64 {
	s := grow(buf, n)
	clear(s)
	return s
}
