package lp

import "sync"

// Workspace holds the scratch buffers of one solver instance: the flat
// tableau slab, the standard-form matrices, and the basis bookkeeping. A
// Workspace may be reused across any number of solves (SolveWith), which
// makes repeated solves allocation-free once the buffers have grown to the
// problem size; it must not be used from multiple goroutines concurrently.
//
// The zero value is ready to use.
type Workspace struct {
	// simplex buffers
	tab   []float64
	basis []int
	x     []float64
	cvec  []float64 // per-phase cost vector for re-pricing

	// warm-start buffers (see warm.go)
	tab2    []float64 // alternate slab for Hot.AppendLE re-layouts
	rowBuf  []float64 // appended-row construction
	rowUsed []bool    // row-assignment marks for basis pivot-in

	// revised-core buffers (see revised.go)
	xB      []float64 // basic values
	lu      []float64 // basis LU factorization (luDim×luDim)
	luPiv   []int     // LU row interchanges
	lPtr    []int     // sparse factor views: L columns, U rows/columns,
	lIdx    []int     // and the U diagonal, extracted at refactorization
	lVal    []float64 // (see rev.compressFactors)
	uColPtr []int
	uColIdx []int
	uColVal []float64
	uRowPtr []int
	uRowIdx []int
	uRowVal []float64
	uDiag   []float64
	rowID   []int     // physical row identities during factorization (repair)
	ops     []revOp   // update file: eta and bordered-row operators
	opBuf   []float64 // operator payloads (eta values, border rows)
	opIdx   []int     // sparse eta nonzero indices
	inBasis []bool    // per-column basic marks
	y       []float64 // simplex multipliers (BTRAN result)
	col     []float64 // column gather scratch (refactorization)
	col2    []float64 // FTRAN'd entering column
	red     []float64 // freshly priced reduced costs
	excl    []int     // per-pricing-pass column exclusions
	rowBuf2 []float64 // appended-row basis coefficients
	a2      []float64 // alternate standard-form slab for row appends
	cscPtr  []int     // CSC column pointers of the structural matrix
	cscRow  []int     // CSC row indices
	cscVal  []float64 // CSC values
	cscNext []int     // CSC fill cursors (buildCSC scratch)

	// standardization buffers
	a      []float64
	b      []float64
	c      []float64
	varMap []stdVar
	rels   []Rel
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// wsPool backs Problem.Solve so that callers who do not manage a Workspace
// themselves still reuse buffers across solves.
var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// grow resizes *buf to n elements, reallocating only when capacity is
// insufficient. Contents are unspecified.
func grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growZero is grow with the returned slice cleared.
func growZero(buf *[]float64, n int) []float64 {
	s := grow(buf, n)
	clear(s)
	return s
}
