package lp

import (
	"math"
	"math/rand"
	"testing"
)

// This file is the differential suite between the two simplex cores: every
// random program is solved under both CoreDense and CoreRevised and the
// verdicts must agree (objectives within tolerance; solutions feasible).
// CI additionally runs the whole package suite under REPRO_LP_CORE=dense,
// so the dense core keeps passing the direct property tests too.

// withCore runs fn under the given core selection.
func withCore(c Core, fn func()) {
	prev := SetCore(c)
	defer SetCore(prev)
	fn()
}

// randomLP builds a random bounded-box LP with a mix of LE/GE/EQ rows. It
// is feasible by construction: the rows are anchored at a random interior
// point xfeas of the box.
func randomLP(rng *rand.Rand) (*Problem, []VarID, []float64) {
	nvars := 2 + rng.Intn(4)
	nrows := 1 + rng.Intn(5)
	p := NewProblem()
	vars := make([]VarID, nvars)
	xfeas := make([]float64, nvars)
	for i := range vars {
		lo, hi := 0.0, 4.0
		switch rng.Intn(4) {
		case 1:
			lo, hi = -2, 2
		case 2:
			lo, hi = -3, math.Inf(1)
		case 3:
			lo, hi = math.Inf(-1), 3
		}
		v, err := p.AddVar("x", lo, hi)
		if err != nil {
			panic(err)
		}
		vars[i] = v
		base := lo
		if math.IsInf(lo, -1) {
			base = hi - 2
		}
		span := 2.0
		if !math.IsInf(hi, 1) && !math.IsInf(lo, -1) {
			span = hi - lo
		}
		xfeas[i] = base + rng.Float64()*span
	}
	for r := 0; r < nrows; r++ {
		terms := make([]Term, 0, nvars)
		var at float64
		for i, v := range vars {
			a := rng.Float64()*4 - 2
			if rng.Intn(3) == 0 {
				a = 0
			}
			if a != 0 {
				terms = append(terms, Term{Var: v, Coeff: a})
				at += a * xfeas[i]
			}
		}
		var rel Rel
		rhs := at
		switch rng.Intn(3) {
		case 0:
			rel = LE
			rhs += rng.Float64()
		case 1:
			rel = GE
			rhs -= rng.Float64()
		default:
			rel = EQ
		}
		if err := p.AddConstraint("r", terms, rel, rhs); err != nil {
			panic(err)
		}
	}
	costs := make([]Term, nvars)
	for i, v := range vars {
		costs[i] = Term{Var: v, Coeff: rng.Float64()*2 - 1}
	}
	sense := Minimize
	if rng.Intn(2) == 1 {
		sense = Maximize
	}
	if err := p.SetObjective(sense, costs); err != nil {
		panic(err)
	}
	return p, vars, xfeas
}

// checkFeasible verifies the solution against every constraint and bound.
func checkFeasible(t *testing.T, trial int, core Core, p *Problem, sol *Solution) {
	t.Helper()
	for i := range p.varLo {
		v := sol.Values[i]
		if v < p.varLo[i]-1e-6 || v > p.varHi[i]+1e-6 {
			t.Fatalf("trial %d core %v: x%d = %g violates bounds [%g, %g]",
				trial, core, i, v, p.varLo[i], p.varHi[i])
		}
	}
	for r := range p.rows {
		var lhs float64
		for _, tm := range p.rows[r] {
			lhs += tm.Coeff * sol.Values[tm.Var]
		}
		rhs := p.rhs[r]
		switch p.rels[r] {
		case LE:
			if lhs > rhs+1e-6 {
				t.Fatalf("trial %d core %v: row %d %g > %g", trial, core, r, lhs, rhs)
			}
		case GE:
			if lhs < rhs-1e-6 {
				t.Fatalf("trial %d core %v: row %d %g < %g", trial, core, r, lhs, rhs)
			}
		case EQ:
			if math.Abs(lhs-rhs) > 1e-6 {
				t.Fatalf("trial %d core %v: row %d %g != %g", trial, core, r, lhs, rhs)
			}
		}
	}
}

// TestCoresAgreeOnRandomLPs: both cores must produce the same status and —
// when Optimal — the same objective within tolerance, each with a feasible
// solution. (The optimal VERTICES may differ on degenerate faces; the
// objective value and verdict are the invariants.)
func TestCoresAgreeOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 300; trial++ {
		p, _, _ := randomLP(rng)
		var dsol, rsol *Solution
		var derr, rerr error
		withCore(CoreDense, func() { dsol, derr = p.Solve() })
		withCore(CoreRevised, func() { rsol, rerr = p.Solve() })
		if (derr == nil) != (rerr == nil) {
			t.Fatalf("trial %d: error mismatch dense=%v revised=%v", trial, derr, rerr)
		}
		if derr != nil {
			continue
		}
		if dsol.Status != rsol.Status {
			t.Fatalf("trial %d: status dense=%v revised=%v", trial, dsol.Status, rsol.Status)
		}
		if dsol.Status != Optimal {
			continue
		}
		if math.Abs(dsol.Objective-rsol.Objective) > 1e-5 {
			t.Fatalf("trial %d: objective dense=%g revised=%g", trial, dsol.Objective, rsol.Objective)
		}
		checkFeasible(t, trial, CoreDense, p, dsol)
		checkFeasible(t, trial, CoreRevised, p, rsol)
	}
}

// TestCoresAgreeOnInfeasible: infeasibility verdicts must agree.
func TestCoresAgreeOnInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		p := NewProblem()
		x, _ := p.AddVar("x", 0, 10)
		y, _ := p.AddVar("y", 0, 10)
		gap := rng.Float64() * 5
		_ = p.AddConstraint("a", []Term{{x, 1}, {y, 1}}, GE, 15+gap)
		_ = p.AddConstraint("b", []Term{{x, 1}, {y, 1}}, LE, 15-gap-0.1)
		var ds, rs Status
		withCore(CoreDense, func() { s, err := p.Solve(); mustNoErr(t, err); ds = s.Status })
		withCore(CoreRevised, func() { s, err := p.Solve(); mustNoErr(t, err); rs = s.Status })
		if ds != rs || rs != Infeasible {
			t.Fatalf("trial %d: dense=%v revised=%v want Infeasible", trial, ds, rs)
		}
	}
}

// TestCoresAgreeOnUnbounded: unboundedness verdicts must agree.
func TestCoresAgreeOnUnbounded(t *testing.T) {
	p := NewProblem()
	x, _ := p.AddVar("x", 0, math.Inf(1))
	y, _ := p.AddVar("y", 0, math.Inf(1))
	_ = p.AddConstraint("a", []Term{{x, 1}, {y, -1}}, LE, 1)
	_ = p.SetObjective(Maximize, []Term{{x, 1}})
	for _, core := range []Core{CoreDense, CoreRevised} {
		withCore(core, func() {
			s, err := p.Solve()
			mustNoErr(t, err)
			if s.Status != Unbounded {
				t.Fatalf("core %v: status %v, want Unbounded", core, s.Status)
			}
		})
	}
}

// TestCoresAgreeOnWarmChains drives the Gray-walk shape (sibling programs
// through one carried Basis) under both cores: every verdict must equal an
// independent cold solve of the same program on the same core.
func TestCoresAgreeOnWarmChains(t *testing.T) {
	for _, core := range []Core{CoreDense, CoreRevised} {
		withCore(core, func() {
			rng := rand.New(rand.NewSource(31))
			const d, npts = 3, 6
			pts := make([][]float64, npts)
			for i := range pts {
				pts[i] = randVec(rng, d)
			}
			ws := NewWorkspace()
			var bas Basis
			warm := NewProblem()
			for step := 0; step < 80; step++ {
				pts[step%npts] = randVec(rng, d)
				z := randVec(rng, d)
				if step%3 == 0 {
					for l := 0; l < d; l++ {
						z[l] = 0.25*pts[0][l] + 0.35*pts[1][l] + 0.4*pts[2][l]
					}
				}
				membershipProblem(t, warm, pts, z, 1e-7)
				got, err := warm.SolveWithBasis(ws, &bas)
				if err != nil {
					t.Fatalf("core %v step %d: warm: %v", core, step, err)
				}
				cold := NewProblem()
				membershipProblem(t, cold, pts, z, 1e-7)
				want, err := cold.Solve()
				if err != nil {
					t.Fatalf("core %v step %d: cold: %v", core, step, err)
				}
				if (got.Status == Optimal) != (want.Status == Optimal) {
					t.Fatalf("core %v step %d: warm %v cold %v", core, step, got.Status, want.Status)
				}
			}
		})
	}
}

// TestRevisedHotLongChain pushes a Hot handle through enough appends and
// re-solves to cross the refactorization cadence, checking every stage
// against a cold solve of the cumulative program — the eta-file and
// bordered-row operators must compose across refactorizations.
func TestRevisedHotLongChain(t *testing.T) {
	withCore(CoreRevised, func() {
		rng := rand.New(rand.NewSource(57))
		for trial := 0; trial < 10; trial++ {
			const nv = 6
			p := NewProblem()
			vars := make([]VarID, nv)
			for i := range vars {
				vars[i], _ = p.AddVar("x", 0, 100)
			}
			terms := make([]Term, nv)
			for i, v := range vars {
				terms[i] = Term{Var: v, Coeff: 1 + rng.Float64()}
			}
			_ = p.AddConstraint("base", terms, GE, 10)
			obj := make([]Term, nv)
			for i, v := range vars {
				obj[i] = Term{Var: v, Coeff: 0.5 + rng.Float64()}
			}
			_ = p.SetObjective(Minimize, obj)

			cold := NewProblem()
			cvars := make([]VarID, nv)
			for i := range cvars {
				cvars[i], _ = cold.AddVar("x", 0, 100)
			}
			cterms := make([]Term, nv)
			for i, v := range cvars {
				cterms[i] = Term{Var: v, Coeff: terms[i].Coeff}
			}
			_ = cold.AddConstraint("base", cterms, GE, 10)
			cobj := make([]Term, nv)
			for i, v := range cvars {
				cobj[i] = Term{Var: v, Coeff: obj[i].Coeff}
			}
			_ = cold.SetObjective(Minimize, cobj)

			sol, hot, err := p.SolveHot(NewWorkspace())
			if err != nil || sol.Status != Optimal || hot == nil {
				t.Fatalf("trial %d: root: %+v %v", trial, sol, err)
			}
			for step := 0; step < 25; step++ {
				// Append a row loose enough to keep the current vertex:
				// Σ aᵢxᵢ ≤ current value + slack.
				row := make([]Term, 0, nv)
				crow := make([]Term, 0, nv)
				var at float64
				for i := range vars {
					a := rng.Float64()
					if a < 0.3 {
						continue
					}
					row = append(row, Term{Var: vars[i], Coeff: a})
					crow = append(crow, Term{Var: cvars[i], Coeff: a})
					at += a * sol.Values[vars[i]]
				}
				if len(row) == 0 {
					continue
				}
				bound := at + 0.5 + rng.Float64()
				if err := hot.AppendLE(row, bound); err != nil {
					t.Fatalf("trial %d step %d: append: %v", trial, step, err)
				}
				if err := cold.AddConstraint("app", crow, LE, bound); err != nil {
					t.Fatal(err)
				}
				// Occasionally change the objective.
				if step%4 == 3 {
					for i := range obj {
						obj[i].Coeff = 0.5 + rng.Float64()
						cobj[i].Coeff = obj[i].Coeff
					}
					_ = p.SetObjective(Minimize, obj)
					_ = cold.SetObjective(Minimize, cobj)
				}
				sol, err = hot.Resolve()
				if err != nil || sol.Status != Optimal {
					t.Fatalf("trial %d step %d: resolve: %+v %v", trial, step, sol, err)
				}
				csol, err := cold.Solve()
				if err != nil || csol.Status != Optimal {
					t.Fatalf("trial %d step %d: cold: %+v %v", trial, step, csol, err)
				}
				if math.Abs(sol.Objective-csol.Objective) > 1e-5 {
					t.Fatalf("trial %d step %d: hot %g cold %g", trial, step, sol.Objective, csol.Objective)
				}
			}
		}
	})
}

// TestLUSolverRoundTrip: Factor/Solve/SolveT reproduce known solutions of
// random well-conditioned systems.
func TestLUSolverRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var lu LUSolver
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		a := make([]float64, n*n)
		for i := range a {
			a[i] = rng.Float64()*2 - 1
		}
		for i := 0; i < n; i++ {
			a[i*n+i] += 3 // diagonal dominance: well-conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Float64()*4 - 2
		}
		b := make([]float64, n)
		bt := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a[i*n+j] * want[j]
				bt[i] += a[j*n+i] * want[j]
			}
		}
		if !lu.Factor(a, n) {
			t.Fatalf("trial %d: factor failed", trial)
		}
		lu.Solve(b)
		lu.SolveT(bt)
		for i := 0; i < n; i++ {
			if math.Abs(b[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: Solve x[%d]=%g want %g", trial, i, b[i], want[i])
			}
			if math.Abs(bt[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: SolveT x[%d]=%g want %g", trial, i, bt[i], want[i])
			}
		}
	}
	// Singular matrices must be rejected.
	if lu.Factor(make([]float64, 9), 3) {
		t.Fatal("zero matrix factored")
	}
}

// TestRevisedDeterminism: the revised core must be bit-deterministic —
// identical programs yield identical solution vectors.
func TestRevisedDeterminism(t *testing.T) {
	withCore(CoreRevised, func() {
		rng := rand.New(rand.NewSource(77))
		for trial := 0; trial < 50; trial++ {
			p, _, _ := randomLP(rng)
			a, err := p.Solve()
			mustNoErr(t, err)
			b, err := p.Solve()
			mustNoErr(t, err)
			if a.Status != b.Status {
				t.Fatalf("trial %d: status %v vs %v", trial, a.Status, b.Status)
			}
			if a.Status != Optimal {
				continue
			}
			for i := range a.Values {
				if a.Values[i] != b.Values[i] {
					t.Fatalf("trial %d: x%d %v vs %v", trial, i, a.Values[i], b.Values[i])
				}
			}
		}
	})
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
