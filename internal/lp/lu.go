package lp

import "math"

// luEps is the singularity threshold of the LU factorization: no usable
// pivot of at least this magnitude means the matrix is numerically rank
// deficient. Basis matrices here are built from row-equilibrated data, so an
// absolute threshold is meaningful.
const luEps = 1e-11

// LUSolver is a dense LU factorization with partial pivoting, with reusable
// buffers so repeated factor/solve cycles are allocation-free in steady
// state. It is the factorization kernel of the revised simplex core, and is
// exported so sibling numerical code (the Wolfe min-norm solver of
// internal/tverberg) can share it. The zero value is ready to use; an
// LUSolver is not safe for concurrent use.
type LUSolver struct {
	lu  []float64
	lut []float64
	piv []int
	dim int
	// Eps overrides the singularity threshold (luEps when zero). The
	// simplex core's basis matrices are row-equilibrated O(1) data, which
	// is what luEps assumes; callers factoring differently scaled systems
	// (the Wolfe corral Gram matrices of internal/tverberg) set their own.
	Eps float64
}

// Factor copies the dim×dim row-major matrix a and factors it as
// P·A = L·U with partial pivoting. It reports whether the matrix is
// numerically nonsingular; on false the solver holds no factorization.
func (s *LUSolver) Factor(a []float64, dim int) bool {
	lu := grow(&s.lu, dim*dim)
	copy(lu, a[:dim*dim])
	s.piv = grow(&s.piv, dim)
	s.dim = 0
	eps := s.Eps
	if eps == 0 {
		eps = luEps
	}
	if luFactorizeEps(lu, s.piv, nil, dim, eps) >= 0 {
		return false
	}
	s.lut = transposeLU(&s.lut, lu, dim)
	s.dim = dim
	return true
}

// Solve solves A·x = b in place (b becomes x). Factor must have succeeded
// with dim == len(b).
func (s *LUSolver) Solve(b []float64) {
	ftranLU(s.lu, s.lut, s.piv, s.dim, b)
}

// SolveT solves Aᵀ·x = b in place.
func (s *LUSolver) SolveT(b []float64) {
	btranLU(s.lu, s.lut, s.piv, s.dim, b)
}

// luFactorize factors the dim×dim row-major matrix in place (L unit lower
// below the diagonal, U on and above) with partial pivoting, recording the
// row interchanges in piv. It reports false when no pivot of magnitude
// > luEps exists in some column (numerically singular).
func luFactorize(lu []float64, piv []int, dim int) bool {
	return luFactorizeTrack(lu, piv, nil, dim) < 0
}

// luFactorizeEps is luFactorizeTrack with a caller-chosen singularity
// threshold.
func luFactorizeEps(lu []float64, piv, rowID []int, dim int, eps float64) int {
	return luFactorizeWith(lu, piv, rowID, dim, eps)
}

// luFactorizeTrack is luFactorize, additionally maintaining the physical
// identity of each permuted row in rowID (when non-nil) and reporting the
// failing elimination step instead of a boolean: a return of k ≥ 0 means
// column k is numerically dependent on columns 0..k−1, and rowID[k:]
// identifies the rows still available for a basis repair. Returns −1 on
// success.
func luFactorizeTrack(lu []float64, piv, rowID []int, dim int) int {
	return luFactorizeWith(lu, piv, rowID, dim, luEps)
}

// luFactorizeWith is the factorization kernel with an explicit threshold.
func luFactorizeWith(lu []float64, piv, rowID []int, dim int, eps float64) int {
	for k := 0; k < dim; k++ {
		p, best := -1, eps
		for i := k; i < dim; i++ {
			if a := math.Abs(lu[i*dim+k]); a > best {
				p, best = i, a
			}
		}
		if p < 0 {
			return k
		}
		piv[k] = p
		if p != k {
			rk := lu[k*dim : k*dim+dim]
			rp := lu[p*dim : p*dim+dim]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			if rowID != nil {
				rowID[k], rowID[p] = rowID[p], rowID[k]
			}
		}
		inv := 1 / lu[k*dim+k]
		rk := lu[k*dim : k*dim+dim]
		for i := k + 1; i < dim; i++ {
			f := lu[i*dim+k] * inv
			lu[i*dim+k] = f
			if f == 0 {
				continue
			}
			ri := lu[i*dim : i*dim+dim]
			axpyNeg(ri[k+1:], f, rk[k+1:])
		}
	}
	return -1
}

// transposeLU stores the transpose of the combined LU slab into *buf. The
// triangular solves read L by column (forward substitution, Lᵀ solve) and
// U by column (Uᵀ solve); the transposed copy turns those strided walks
// into contiguous dot products and axpys — the solves are the revised
// core's per-iteration inner loop, so the memory layout is load-bearing.
func transposeLU(buf *[]float64, lu []float64, dim int) []float64 {
	lut := grow(buf, dim*dim)
	for i := 0; i < dim; i++ {
		row := lu[i*dim : i*dim+dim]
		for j, v := range row {
			lut[j*dim+i] = v
		}
	}
	return lut
}

// dotVec returns Σ a[i]·b[i] with four independent accumulators: the inner
// loops of the triangular solves are loop-carried reductions, and Go emits
// scalar code, so splitting the dependency chain is worth ~2× on the hot
// path. Requires len(b) ≥ len(a).
func dotVec(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + s2) + s3
}

// axpyNeg computes y[i] -= alpha·x[i], unrolled. Requires len(x) ≥ len(y).
func axpyNeg(y []float64, alpha float64, x []float64) {
	n := len(y)
	x = x[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] -= alpha * x[i]
		y[i+1] -= alpha * x[i+1]
		y[i+2] -= alpha * x[i+2]
		y[i+3] -= alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] -= alpha * x[i]
	}
}

// ftranLU solves A·x = b in place given the factorization P·A = L·U (lut
// is the transposed slab): x = U⁻¹·L⁻¹·P·b.
func ftranLU(lu, lut []float64, piv []int, dim int, x []float64) {
	for k := 0; k < dim; k++ {
		if p := piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	for k := 0; k < dim; k++ {
		xk := x[k]
		if xk == 0 {
			continue
		}
		colk := lut[k*dim : k*dim+dim] // column k of L, contiguous
		axpyNeg(x[k+1:dim], xk, colk[k+1:])
	}
	for k := dim - 1; k >= 0; k-- {
		rowk := lu[k*dim : k*dim+dim] // row k of U, contiguous
		xk := x[k] - dotVec(x[k+1:dim], rowk[k+1:])
		x[k] = xk / rowk[k]
	}
}

// btranLU solves Aᵀ·y = c in place given P·A = L·U:
// y = Pᵀ·L⁻ᵀ·U⁻ᵀ·c.
func btranLU(lu, lut []float64, piv []int, dim int, y []float64) {
	// Leading zeros of the right-hand side stay zero through the Uᵀ
	// forward solve (each z_k reads only z_{<k} and y_k), so the solve can
	// start at the first nonzero — phase-1 cost vectors empty out as
	// artificials leave the basis.
	k0 := 0
	for k0 < dim && y[k0] == 0 {
		k0++
	}
	for k := k0; k < dim; k++ {
		colk := lut[k*dim : k*dim+dim] // column k of U, contiguous
		zk := y[k] - dotVec(y[k0:k], colk[k0:k])
		y[k] = zk / colk[k]
	}
	for k := dim - 2; k >= 0; k-- {
		colk := lut[k*dim : k*dim+dim] // column k of L, contiguous
		y[k] -= dotVec(y[k+1:dim], colk[k+1:])
	}
	for k := dim - 1; k >= 0; k-- {
		if p := piv[k]; p != k {
			y[k], y[p] = y[p], y[k]
		}
	}
}
