package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestWeakDualityOnRandomLPs: for feasible bounded random LPs
// min c·x s.t. Ax ≥ b, x ≥ 0, any feasible point gives an objective ≥ the
// reported optimum — checked against random feasible points built from the
// optimal solution by inflation.
func TestWeakDualityOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 150; trial++ {
		nvars := 2 + rng.Intn(3)
		nrows := 1 + rng.Intn(4)
		p := NewProblem()
		vars := make([]VarID, nvars)
		for i := range vars {
			v, err := p.AddVar("x", 0, 10)
			if err != nil {
				t.Fatal(err)
			}
			vars[i] = v
		}
		// Rows Σ a x ≥ b with a ≥ 0 and b small enough to keep the box
		// feasible.
		rows := make([][]float64, nrows)
		rhs := make([]float64, nrows)
		for r := 0; r < nrows; r++ {
			terms := make([]Term, nvars)
			rows[r] = make([]float64, nvars)
			var rowMax float64
			for i, v := range vars {
				a := rng.Float64() * 3
				rows[r][i] = a
				rowMax += a * 10
				terms[i] = Term{Var: v, Coeff: a}
			}
			rhs[r] = rng.Float64() * rowMax * 0.5
			if err := p.AddConstraint("r", terms, GE, rhs[r]); err != nil {
				t.Fatal(err)
			}
		}
		costs := make([]Term, nvars)
		costVec := make([]float64, nvars)
		for i, v := range vars {
			c := rng.Float64() * 2
			costVec[i] = c
			costs[i] = Term{Var: v, Coeff: c}
		}
		if err := p.SetObjective(Minimize, costs); err != nil {
			t.Fatal(err)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v (box LP must be feasible+bounded)", trial, sol.Status)
		}
		// The optimum must satisfy every constraint.
		for r := 0; r < nrows; r++ {
			var lhs float64
			for i, v := range vars {
				lhs += rows[r][i] * sol.Values[v]
			}
			if lhs < rhs[r]-1e-6 {
				t.Fatalf("trial %d: optimum infeasible: row %d %g < %g", trial, r, lhs, rhs[r])
			}
		}
		// Inflated feasible points can only cost more (costs ≥ 0, rows
		// monotone in x).
		for k := 0; k < 5; k++ {
			var alt float64
			for i, v := range vars {
				x := sol.Values[v] + rng.Float64()*(10-sol.Values[v])
				alt += costVec[i] * x
			}
			if alt < sol.Objective-1e-6 {
				t.Fatalf("trial %d: inflation beat the optimum: %g < %g", trial, alt, sol.Objective)
			}
		}
	}
}

// TestScaleInvariance: multiplying all constraint rows of a feasibility
// problem by a large constant must not change the verdict (this is what
// row equilibration guarantees).
func TestScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		target := rng.Float64()*2 - 1
		scale := math.Pow(10, float64(rng.Intn(7))-3) // 1e-3 … 1e3
		build := func(s float64) *Problem {
			p := NewProblem()
			x, _ := p.AddVar("x", math.Inf(-1), math.Inf(1))
			_ = p.AddConstraint("lo", []Term{{x, s}}, GE, s*(target-0.25))
			_ = p.AddConstraint("hi", []Term{{x, s}}, LE, s*(target+0.25))
			_ = p.SetObjective(Minimize, []Term{{x, 1}})
			return p
		}
		plain, err := build(1).Solve()
		if err != nil {
			t.Fatal(err)
		}
		scaled, err := build(scale).Solve()
		if err != nil {
			t.Fatal(err)
		}
		if plain.Status != scaled.Status {
			t.Fatalf("trial %d: status %v vs %v at scale %g", trial, plain.Status, scaled.Status, scale)
		}
		if math.Abs(plain.Objective-scaled.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective %g vs %g at scale %g", trial, plain.Objective, scaled.Objective, scale)
		}
	}
}
