package lp

import (
	"errors"
	"math"
)

// Numerical tolerances for the simplex pivot loop. Problem data in this
// repository is O(1) in magnitude (consensus inputs live in known boxes), so
// absolute tolerances suffice.
const (
	pivotEps    = 1e-9  // minimum magnitude of a usable pivot element
	reducedEps  = 1e-9  // reduced cost below −reducedEps means "improving"
	feasEps     = 1e-7  // phase-1 objective above feasEps means infeasible
	maxItFactor = 200   // iteration cap: maxItFactor · (m + n) per phase
	minIters    = 10000 // floor for the iteration cap on tiny problems
)

// errIterationCap is reported if simplex fails to terminate within the cap.
// With Bland's rule this indicates severe numerical trouble, not cycling.
var errIterationCap = errors.New("lp: simplex iteration cap exceeded")

// solve runs two-phase simplex on the standard-form program and returns the
// status and, when Optimal, the full standard-form solution vector.
func (s *standard) solve() (Status, []float64, error) {
	m, n := s.m, s.n
	if m == 0 {
		// No constraints: optimum is 0 for all variables unless some cost is
		// negative, in which case the problem is unbounded below.
		for _, cj := range s.c {
			if cj < -reducedEps {
				return Unbounded, nil, nil
			}
		}
		return Optimal, make([]float64, n), nil
	}

	// Tableau with one artificial column per row: T is m×(n+m+1); column
	// n+m holds b. Basis starts as the artificials.
	width := n + m + 1
	t := make([][]float64, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, width)
		copy(t[i], s.a[i])
		t[i][n+i] = 1
		t[i][width-1] = s.b[i]
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	// Phase 1: minimize the sum of artificials.
	phase1Cost := make([]float64, n+m)
	for j := n; j < n+m; j++ {
		phase1Cost[j] = 1
	}
	if err := simplexLoop(t, basis, phase1Cost, n+m); err != nil {
		if errors.Is(err, errUnboundedPivot) {
			// Phase 1 is bounded below by 0; an unbounded signal here is a
			// numerical failure.
			return 0, nil, errIterationCap
		}
		return 0, nil, err
	}
	var p1obj float64
	for i, bi := range basis {
		if bi >= n {
			p1obj += t[i][width-1]
		}
	}
	if p1obj > feasEps {
		return Infeasible, nil, nil
	}

	// Drive residual artificials out of the basis. A basic artificial at
	// value 0 either pivots out on some structural column or its row is
	// redundant (all structural entries ~0) and is neutralized.
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(t[i][j]) > pivotEps {
				pivot(t, basis, i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so it can never constrain a pivot.
			for j := range t[i] {
				t[i][j] = 0
			}
			t[i][n+i] = 1 // keep the artificial basic in a null row
		}
	}

	// Phase 2: original costs; artificial columns are barred by +∞-like
	// cost treatment (simplexLoop only considers columns < limit).
	phase2Cost := make([]float64, n+m)
	copy(phase2Cost, s.c)
	if err := simplexLoop(t, basis, phase2Cost, n); err != nil {
		if errors.Is(err, errUnboundedPivot) {
			return Unbounded, nil, nil
		}
		return 0, nil, err
	}

	x := make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = t[i][width-1]
		}
	}
	return Optimal, x, nil
}

// errUnboundedPivot signals an improving column with no blocking row.
var errUnboundedPivot = errors.New("lp: unbounded pivot direction")

// simplexLoop runs primal simplex pivots on tableau t with the given basic
// cost vector until no improving column below `limit` exists.
//
// Pivoting uses Dantzig's rule (most negative reduced cost) for speed, and
// falls back to Bland's rule (lowest improving index — provably acyclic)
// whenever the objective has stalled for stallLimit consecutive iterations,
// switching back once progress resumes. This combination is fast on the
// highly degenerate hull-intersection programs this repository generates
// while remaining termination-safe.
func simplexLoop(t [][]float64, basis []int, cost []float64, limit int) error {
	m := len(t)
	if m == 0 {
		return nil
	}
	width := len(t[0])
	maxIters := maxItFactor * (m + width)
	if maxIters < minIters {
		maxIters = minIters
	}
	const stallLimit = 30

	// Maintain the simplex multipliers y_i = c_{basis[i]} implicitly: the
	// reduced cost of column j is r_j = c_j − Σ_i c_{basis[i]}·t[i][j].
	reduced := func(j int) float64 {
		r := cost[j]
		for i := 0; i < m; i++ {
			cb := cost[basis[i]]
			if cb != 0 && t[i][j] != 0 {
				r -= cb * t[i][j]
			}
		}
		return r
	}
	objective := func() float64 {
		var v float64
		for i := 0; i < m; i++ {
			if cb := cost[basis[i]]; cb != 0 {
				v += cb * t[i][width-1]
			}
		}
		return v
	}

	stall := 0
	lastObj := objective()
	for iter := 0; iter < maxIters; iter++ {
		blandMode := stall >= stallLimit
		enter := -1
		if blandMode {
			for j := 0; j < limit; j++ {
				if reduced(j) < -reducedEps {
					enter = j // Bland: first improving index
					break
				}
			}
		} else {
			best := -reducedEps
			for j := 0; j < limit; j++ {
				if r := reduced(j); r < best {
					best = r
					enter = j // Dantzig: most improving index
				}
			}
		}
		if enter < 0 {
			return nil // optimal for this phase
		}

		// Ratio test; in Bland mode ties break toward the lowest basis
		// index (required for the anti-cycling guarantee).
		leave := -1
		var bestRatio float64
		for i := 0; i < m; i++ {
			if t[i][enter] > pivotEps {
				ratio := t[i][width-1] / t[i][enter]
				switch {
				case leave < 0 || ratio < bestRatio-pivotEps:
					leave = i
					bestRatio = ratio
				case math.Abs(ratio-bestRatio) <= pivotEps && basis[i] < basis[leave]:
					leave = i
					bestRatio = ratio
				}
			}
		}
		if leave < 0 {
			return errUnboundedPivot
		}
		pivot(t, basis, leave, enter)

		obj := objective()
		if obj < lastObj-reducedEps {
			stall = 0
			lastObj = obj
		} else {
			stall++
		}
	}
	return errIterationCap
}

// pivot performs a Gauss-Jordan pivot on t[row][col] and updates the basis.
func pivot(t [][]float64, basis []int, row, col int) {
	width := len(t[row])
	p := t[row][col]
	inv := 1 / p
	for j := 0; j < width; j++ {
		t[row][j] *= inv
	}
	t[row][col] = 1 // exact
	for i := range t {
		if i == row {
			continue
		}
		factor := t[i][col]
		if factor == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			t[i][j] -= factor * t[row][j]
		}
		t[i][col] = 0 // exact
	}
	basis[row] = col
}
