package lp

import (
	"errors"
	"math"
)

// Numerical tolerances for the simplex pivot loop. Problem data in this
// repository is O(1) in magnitude (consensus inputs live in known boxes), so
// absolute tolerances suffice.
const (
	pivotEps    = 1e-9  // minimum magnitude of a usable pivot element
	reducedEps  = 1e-9  // reduced cost below −reducedEps means "improving"
	phantomEps  = 1e-7  // larger magnitudes on a zero column mean unbounded
	feasEps     = 1e-7  // phase-1 objective above feasEps means infeasible
	maxItFactor = 200   // iteration cap: maxItFactor · (m + n) per phase
	minIters    = 10000 // floor for the iteration cap on tiny problems
)

// errIterationCap is reported if simplex fails to terminate within the cap.
// With Bland's rule this indicates severe numerical trouble, not cycling.
var errIterationCap = errors.New("lp: simplex iteration cap exceeded")

// The tableau is a single row-major slab of (m+1)·width float64: rows
// 0..m−1 are the constraint rows, and row m is the reduced-cost row,
// maintained incrementally by pivot (priced out once per pivot) so that
// column selection reads r_j in O(1) instead of re-deriving
// r_j = c_j − c_B·T_j with an O(m) pass per column per iteration. The cell
// (m, width−1) holds −objective.

// solve runs two-phase simplex on the standard-form program and returns the
// status and, when Optimal, the full standard-form solution vector. The
// returned slice is scratch owned by ws.
func (s *standard) solve(ws *Workspace) (Status, []float64, error) {
	m, n := s.m, s.n
	if m == 0 {
		// No constraints: optimum is 0 for all variables unless some cost is
		// negative, in which case the problem is unbounded below.
		for _, cj := range s.c {
			if cj < -reducedEps {
				return Unbounded, nil, nil
			}
		}
		return Optimal, growZero(&ws.x, n), nil
	}

	t, basis := s.buildTableau(ws)
	width := n + m + 1

	// Phase 1: minimize the sum of artificials. Initial reduced costs with
	// the all-artificial basis: r_j = c_j − Σ_i t[i][j], i.e. −Σ_i t[i][j]
	// for structural columns and 0 for the artificials themselves; the
	// objective cell starts at −Σ_i b_i.
	cost := t[m*width:]
	for i := 0; i < m; i++ {
		row := t[i*width : i*width+width]
		for j := 0; j < n; j++ {
			cost[j] -= row[j]
		}
		cost[width-1] -= row[width-1]
	}
	// Phase-1 cost vector (1 per artificial) for the loop's re-pricing.
	p1c := growZero(&ws.cvec, width)
	for j := n; j < n+m; j++ {
		p1c[j] = 1
	}
	if err := simplexLoop(t, m, width, basis, n+m, p1c); err != nil {
		if errors.Is(err, errUnboundedPivot) {
			// Phase 1 is bounded below by 0; an unbounded signal here is a
			// numerical failure.
			return 0, nil, errIterationCap
		}
		return 0, nil, err
	}
	var p1obj float64
	for i, bi := range basis {
		if bi >= n {
			p1obj += t[i*width+width-1]
		}
	}
	if p1obj > feasEps {
		return Infeasible, nil, nil
	}

	// Drive residual artificials out of the basis. A basic artificial at
	// value 0 either pivots out on some structural column or its row is
	// redundant (all structural entries ~0) and is neutralized.
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		row := t[i*width : i*width+width]
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(row[j]) > pivotEps {
				pivot(t, m, width, basis, i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so it can never constrain a pivot.
			clear(row)
			row[n+i] = 1 // keep the artificial basic in a null row
		}
	}

	// Phase 2: original costs; artificial columns are barred (simplexLoop
	// only considers columns < limit). The reduced-cost row for the new
	// cost vector is rebuilt by the loop's initial re-pricing.
	p2c := growZero(&ws.cvec, width)
	copy(p2c, s.c)
	reprice(t, m, width, basis, p2c)
	if err := simplexLoop(t, m, width, basis, n, p2c); err != nil {
		if errors.Is(err, errUnboundedPivot) {
			return Unbounded, nil, nil
		}
		return 0, nil, err
	}

	x := growZero(&ws.x, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = t[i*width+width-1]
		}
	}
	return Optimal, x, nil
}

// buildTableau lays the standard-form program out as the flat simplex slab:
// m constraint rows of width n+m+1 (structural and slack columns, one
// artificial column per row, rhs last) plus the zeroed reduced-cost row, with
// the all-artificial starting basis.
func (s *standard) buildTableau(ws *Workspace) (t []float64, basis []int) {
	m, n := s.m, s.n
	width := n + m + 1
	t = growZero(&ws.tab, (m+1)*width)
	for i := 0; i < m; i++ {
		row := t[i*width : i*width+width]
		copy(row, s.a[i*n:(i+1)*n])
		row[n+i] = 1
		row[width-1] = s.b[i]
	}
	basis = grow(&ws.basis, m)
	for i := range basis {
		basis[i] = n + i
	}
	return t, basis
}

// errUnboundedPivot signals an improving column with no blocking row.
var errUnboundedPivot = errors.New("lp: unbounded pivot direction")

// simplexLoop runs primal simplex pivots on the flat tableau t (m constraint
// rows of the given width plus the maintained reduced-cost row) until no
// improving column below `limit` exists.
//
// Pivoting uses Dantzig's rule (most negative reduced cost) for speed, and
// falls back to Bland's rule (lowest improving index — provably acyclic)
// whenever the objective has stalled for stallLimit consecutive iterations,
// switching back once progress resumes. This combination is fast on the
// highly degenerate hull-intersection programs this repository generates
// while remaining termination-safe.
//
// The incrementally maintained reduced-cost row accumulates floating-point
// drift over long degenerate pivot sequences — enough to make the loop
// declare optimality early (phase 1 then wrongly reports infeasible) or
// chase phantom improving columns until the iteration cap. phaseCost is the
// phase's true cost vector (width entries, the rightmost 0); the loop
// re-prices the cost row from it — r_j = c_j − Σ_i c_{basis[i]}·t[i][j] —
// every repriceEvery pivots and before accepting any optimality claim, so
// verdicts are always rendered on freshly priced costs.
func simplexLoop(t []float64, m, width int, basis []int, limit int, phaseCost []float64) error {
	if m == 0 {
		return nil
	}
	maxIters := maxItFactor * (m + width)
	if maxIters < minIters {
		maxIters = minIters
	}
	const (
		stallLimit   = 30
		repriceEvery = 64
	)

	cost := t[m*width:]
	stall := 0
	sinceReprice := 0
	lastObj := -cost[width-1]
	for iter := 0; iter < maxIters; iter++ {
		blandMode := stall >= stallLimit
		enter := -1
		if blandMode {
			for j := 0; j < limit; j++ {
				if cost[j] < -reducedEps {
					enter = j // Bland: first improving index
					break
				}
			}
		} else {
			best := -reducedEps
			for j := 0; j < limit; j++ {
				if r := cost[j]; r < best {
					best = r
					enter = j // Dantzig: most improving index
				}
			}
		}
		if enter < 0 {
			if sinceReprice == 0 {
				return nil // optimal on freshly priced costs
			}
			// The claim rests on a drifted cost row; re-price and re-scan.
			reprice(t, m, width, basis, phaseCost)
			sinceReprice = 0
			lastObj = -cost[width-1]
			continue
		}

		// Ratio test; in Bland mode ties break toward the lowest basis
		// index (required for the anti-cycling guarantee).
		leave := -1
		var bestRatio float64
		for i := 0; i < m; i++ {
			e := t[i*width+enter]
			if e > pivotEps {
				ratio := t[i*width+width-1] / e
				switch {
				case leave < 0 || ratio < bestRatio-pivotEps:
					leave = i
					bestRatio = ratio
				case math.Abs(ratio-bestRatio) <= pivotEps && basis[i] < basis[leave]:
					leave = i
					bestRatio = ratio
				}
			}
		}
		if leave < 0 {
			// No entry of the column exceeds pivotEps. If the column's
			// reduced cost is also within noise of zero, this is not a
			// descent direction but a numerically zero column whose
			// reduced cost drifted just past the improvement threshold
			// (observed on degenerate hull-intersection programs):
			// neutralize it and keep scanning. Only a decisively negative
			// reduced cost signals a genuine unbounded ray.
			if cost[enter] >= -phantomEps {
				cost[enter] = 0
				continue
			}
			return errUnboundedPivot
		}
		pivot(t, m, width, basis, leave, enter)
		if sinceReprice++; sinceReprice >= repriceEvery {
			reprice(t, m, width, basis, phaseCost)
			sinceReprice = 0
		}

		obj := -cost[width-1]
		if obj < lastObj-reducedEps {
			stall = 0
			lastObj = obj
		} else {
			stall++
		}
	}
	return errIterationCap
}

// reprice rebuilds the reduced-cost row exactly from the phase cost vector
// and the current basis: r_j = c_j − Σ_i c_{basis[i]}·t[i][j] (the
// objective cell becomes −c_B·b̂). One O(m·width) pass — the price the
// incremental maintenance avoids per iteration, paid back occasionally to
// shed accumulated drift.
func reprice(t []float64, m, width int, basis []int, phaseCost []float64) {
	cost := t[m*width:]
	copy(cost, phaseCost)
	cost[width-1] = 0
	for i := 0; i < m; i++ {
		cb := phaseCost[basis[i]]
		if cb == 0 {
			continue
		}
		row := t[i*width : i*width+width]
		for j := 0; j < width; j++ {
			if row[j] != 0 {
				cost[j] -= cb * row[j]
			}
		}
	}
}

// pivot performs a Gauss-Jordan pivot on t[row][col] and updates the basis.
// The reduced-cost row (row index m) is eliminated like any other row, which
// keeps it equal to the priced-out reduced costs after every pivot.
func pivot(t []float64, m, width int, basis []int, row, col int) {
	prow := t[row*width : row*width+width]
	inv := 1 / prow[col]
	for j := range prow {
		prow[j] *= inv
	}
	prow[col] = 1 // exact
	for i := 0; i <= m; i++ {
		if i == row {
			continue
		}
		r := t[i*width : i*width+width]
		factor := r[col]
		if factor == 0 {
			continue
		}
		for j := range r {
			r[j] -= factor * prow[j]
		}
		r[col] = 0 // exact
	}
	basis[row] = col
}
