// Package lp implements a two-phase primal simplex solver for linear
// programs, plus a small modeling layer (named variables with bounds,
// ≤ / ≥ / = rows, minimize or maximize objectives). The default core is a
// revised simplex maintaining only an LU-factored basis with product-form
// updates and periodic refactorization (revised.go); the legacy dense
// accumulated-tableau core is retained behind the Core flag for
// differential testing (simplex.go).
//
// The Byzantine vector consensus algorithms of Vaidya & Garg reduce their
// geometric core to linear programming: testing whether a point lies in a
// convex hull, testing whether the safe area Γ(Y) is empty, and selecting a
// deterministic point inside Γ(Y) (paper §2.2 spells out the LP). This
// package is that substrate, built only on the standard library.
//
// The solver uses Bland's anti-cycling rule, so it terminates on every input;
// pivoting is deterministic, so identical problems yield bit-identical
// solutions on every process — a property the consensus algorithms rely on
// when all correct processes must select the same point.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects minimization or maximization of the objective.
type Sense int

// Objective senses.
const (
	Minimize Sense = iota + 1
	Maximize
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota + 1 // Σ aᵢxᵢ ≤ rhs
	GE                // Σ aᵢxᵢ ≥ rhs
	EQ                // Σ aᵢxᵢ = rhs
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// VarID identifies a variable within a Problem.
type VarID int

// Term is one coefficient·variable product in a linear expression.
type Term struct {
	Var   VarID
	Coeff float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create problems with NewProblem.
type Problem struct {
	varLo    []float64
	varHi    []float64
	varNames []string

	rows     [][]Term
	rels     []Rel
	rhs      []float64
	rowNames []string

	objSense Sense
	obj      []Term
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// Objective is the optimal objective value in the problem's own sense.
	// Meaningful only when Status == Optimal.
	Objective float64
	// Values holds the optimal value of each variable, indexed by VarID.
	// Meaningful only when Status == Optimal.
	Values []float64
}

// ErrNotSolved is returned when a solution accessor is used on a non-optimal
// solution.
var ErrNotSolved = errors.New("lp: problem has no optimal solution")

// NewProblem returns an empty problem with a Minimize-zero objective.
func NewProblem() *Problem {
	return &Problem{objSense: Minimize}
}

// AddVar adds a variable with bounds lo ≤ x ≤ hi and returns its id. Use
// math.Inf(-1) / math.Inf(1) for unbounded sides. NaN bounds or lo > hi are
// rejected.
func (p *Problem) AddVar(name string, lo, hi float64) (VarID, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return 0, fmt.Errorf("lp: variable %q has NaN bound", name)
	}
	if lo > hi {
		return 0, fmt.Errorf("lp: variable %q has lo=%g > hi=%g", name, lo, hi)
	}
	p.varLo = append(p.varLo, lo)
	p.varHi = append(p.varHi, hi)
	p.varNames = append(p.varNames, name)
	return VarID(len(p.varLo) - 1), nil
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.varLo) }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddConstraint adds the row Σ termᵢ rel rhs.
func (p *Problem) AddConstraint(name string, terms []Term, rel Rel, rhs float64) error {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: constraint %q has non-finite rhs %g", name, rhs)
	}
	if rel != LE && rel != GE && rel != EQ {
		return fmt.Errorf("lp: constraint %q has invalid relation", name)
	}
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.varLo) {
			return fmt.Errorf("lp: constraint %q references unknown variable %d", name, t.Var)
		}
		if math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) {
			return fmt.Errorf("lp: constraint %q has non-finite coefficient", name)
		}
	}
	row := make([]Term, len(terms))
	copy(row, terms)
	p.rows = append(p.rows, row)
	p.rels = append(p.rels, rel)
	p.rhs = append(p.rhs, rhs)
	p.rowNames = append(p.rowNames, name)
	return nil
}

// SetObjective replaces the objective with sense·Σ termᵢ.
func (p *Problem) SetObjective(sense Sense, terms []Term) error {
	if sense != Minimize && sense != Maximize {
		return errors.New("lp: invalid objective sense")
	}
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.varLo) {
			return fmt.Errorf("lp: objective references unknown variable %d", t.Var)
		}
		if math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) {
			return errors.New("lp: objective has non-finite coefficient")
		}
	}
	p.objSense = sense
	p.obj = make([]Term, len(terms))
	copy(p.obj, terms)
	return nil
}

// Solve standardizes the problem and runs two-phase simplex. A Solution with
// Status Infeasible or Unbounded is returned without error; error indicates
// a malformed problem or an internal failure (e.g. iteration cap). Scratch
// buffers come from an internal pool; callers solving many problems on one
// goroutine can pass their own Workspace to SolveWith instead.
func (p *Problem) Solve() (*Solution, error) {
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	return p.SolveWith(ws)
}

// SolveWith is Solve with caller-managed scratch: repeated solves through
// the same Workspace reuse its buffers, so steady-state allocation is just
// the returned Solution.
func (p *Problem) SolveWith(ws *Workspace) (*Solution, error) {
	std, err := p.standardize(ws)
	if err != nil {
		return nil, err
	}
	status, x, err := std.solveActive(ws)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Status: status}
	if status != Optimal {
		return sol, nil
	}
	sol.Values = std.recover(x)
	var obj float64
	for _, t := range p.obj {
		obj += t.Coeff * sol.Values[t.Var]
	}
	sol.Objective = obj
	return sol, nil
}

// smallCoreRows is the revised core's tableau cutoff: programs with at most
// this many rows run on the dense tableau kernel even under CoreRevised.
// At these sizes the whole tableau fits in cache, a pivot is one fused
// pass, and the pivot sequences are far too short for the incremental
// cost row to accumulate meaningful drift — while the revised machinery
// (factorization, triangular solves, per-iteration pricing) is pure
// overhead. The fragile degenerate regime starts well above this size
// (the smallest fragile joint LPs have 60+ rows) and always runs on the
// LU-factored path.
const smallCoreRows = 32

// solveActive dispatches the standard-form solve to the selected simplex
// core: the LU-based revised core by default (with the small-program
// tableau kernel below smallCoreRows), the legacy dense tableau everywhere
// when CoreDense is active (kept for differential testing).
func (s *standard) solveActive(ws *Workspace) (Status, []float64, error) {
	if ActiveCore() == CoreDense || s.m <= smallCoreRows {
		return s.solve(ws)
	}
	return s.solveRevised(ws)
}

// standard is the standard-form program min c·y s.t. Ay = b, y ≥ 0, together
// with the bookkeeping needed to map a standard-form solution back to the
// original variables. Its slices alias Workspace buffers.
type standard struct {
	m, n int       // rows, columns
	a    []float64 // m×n, row-major
	b    []float64
	c    []float64

	// varMap describes how each original variable is represented:
	// shifted (y = x − lo), mirrored (y = hi − x) or split (x = y⁺ − y⁻).
	varMap []stdVar
}

type stdVar struct {
	kind stdVarKind
	col  int     // primary standard column
	col2 int     // negative part for split variables
	off  float64 // shift offset (lo) or mirror origin (hi)
}

type stdVarKind int

const (
	varShift  stdVarKind = iota + 1 // x = off + y
	varMirror                       // x = off − y
	varSplit                        // x = y − y2
)

// standardize converts the modeling-layer problem into standard form,
// building the dense constraint matrix directly in ws's buffers (no
// intermediate per-row maps).
func (p *Problem) standardize(ws *Workspace) (*standard, error) {
	std := &standard{varMap: grow(&ws.varMap, len(p.varLo))}

	// Columns for original variables.
	var cols int
	for i := range p.varLo {
		lo, hi := p.varLo[i], p.varHi[i]
		switch {
		case !math.IsInf(lo, -1):
			std.varMap[i] = stdVar{kind: varShift, col: cols, off: lo}
			cols++
		case !math.IsInf(hi, 1):
			// lo = −∞, hi finite: x = hi − y with y ≥ 0.
			std.varMap[i] = stdVar{kind: varMirror, col: cols, off: hi}
			cols++
		default:
			std.varMap[i] = stdVar{kind: varSplit, col: cols, col2: cols + 1}
			cols += 2
		}
	}

	// Row inventory, in emission order: first the variable-bound rows —
	// upper-bound rows y ≤ hi − lo for doubly-bounded shifted variables and
	// y = 0 equality rows for fixed (lo == hi) variables, so phase 1 sees
	// them — then the original constraint rows. Slack/surplus columns are
	// assigned in this same row order.
	rels := grow(&ws.rels, 0)
	for i := range p.varLo {
		lo, hi := p.varLo[i], p.varHi[i]
		if std.varMap[i].kind != varShift || math.IsInf(hi, 1) {
			continue
		}
		if hi > lo {
			rels = append(rels, LE)
		} else if hi == lo {
			rels = append(rels, EQ)
		}
	}
	nBound := len(rels)
	rels = append(rels, p.rels...)
	ws.rels = rels

	m := len(rels)
	nSlack := 0
	for _, rel := range rels {
		if rel == LE || rel == GE {
			nSlack++
		}
	}
	n := cols + nSlack

	a := growZero(&ws.a, m*n)
	b := grow(&ws.b, m)
	slackCol := cols

	// Variable-bound rows.
	row := 0
	for i := range p.varLo {
		lo, hi := p.varLo[i], p.varHi[i]
		if std.varMap[i].kind != varShift || math.IsInf(hi, 1) {
			continue
		}
		switch {
		case hi > lo:
			a[row*n+std.varMap[i].col] = 1
			a[row*n+slackCol] = 1
			slackCol++
			b[row] = hi - lo
			row++
		case hi == lo:
			a[row*n+std.varMap[i].col] = 1
			b[row] = 0
			row++
		}
	}
	if row != nBound {
		return nil, errors.New("lp: internal: bound row miscount")
	}

	// Original constraint rows with substituted variables.
	for r := range p.rows {
		ar := a[row*n : row*n+n]
		rhs := p.rhs[r]
		for _, t := range p.rows[r] {
			v := std.varMap[t.Var]
			switch v.kind {
			case varShift:
				ar[v.col] += t.Coeff
				rhs -= t.Coeff * v.off
			case varMirror:
				ar[v.col] -= t.Coeff
				rhs -= t.Coeff * v.off
			case varSplit:
				ar[v.col] += t.Coeff
				ar[v.col2] -= t.Coeff
			}
		}
		switch p.rels[r] {
		case LE:
			ar[slackCol] = 1
			slackCol++
		case GE:
			ar[slackCol] = -1
			slackCol++
		}
		b[row] = rhs
		row++
	}

	for i := 0; i < m; i++ {
		ai := a[i*n : i*n+n]
		// Row equilibration: scale each row to unit max magnitude. This
		// leaves the solution unchanged but keeps the absolute pivot and
		// feasibility tolerances meaningful when constraint data spans
		// orders of magnitude (e.g. honest values near 1 vs Byzantine
		// values in the hundreds) — without it the simplex can stall or
		// mis-declare optimality on such instances.
		var scale float64
		for _, v := range ai {
			if av := math.Abs(v); av > scale {
				scale = av
			}
		}
		if scale > 0 && (scale > 4 || scale < 0.25) {
			inv := 1 / scale
			for c := range ai {
				ai[c] *= inv
			}
			b[i] *= inv
		}
		// Normalize to b ≥ 0 for phase 1.
		if b[i] < 0 {
			for c := range ai {
				ai[c] = -ai[c]
			}
			b[i] = -b[i]
		}
	}

	// Standard-form objective (always minimize).
	c := growZero(&ws.c, n)
	sign := 1.0
	if p.objSense == Maximize {
		sign = -1
	}
	for _, t := range p.obj {
		v := std.varMap[t.Var]
		switch v.kind {
		case varShift:
			c[v.col] += sign * t.Coeff
		case varMirror:
			c[v.col] -= sign * t.Coeff
		case varSplit:
			c[v.col] += sign * t.Coeff
			c[v.col2] -= sign * t.Coeff
		}
	}

	std.m, std.n = m, n
	std.a, std.b, std.c = a, b, c
	return std, nil
}

// recover maps a standard-form solution vector back to original variables.
func (s *standard) recover(y []float64) []float64 {
	out := make([]float64, len(s.varMap))
	for i, v := range s.varMap {
		switch v.kind {
		case varShift:
			out[i] = v.off + y[v.col]
		case varMirror:
			out[i] = v.off - y[v.col]
		case varSplit:
			out[i] = y[v.col] - y[v.col2]
		}
	}
	return out
}
