// Package lp implements a dense two-phase primal simplex solver for linear
// programs, plus a small modeling layer (named variables with bounds,
// ≤ / ≥ / = rows, minimize or maximize objectives).
//
// The Byzantine vector consensus algorithms of Vaidya & Garg reduce their
// geometric core to linear programming: testing whether a point lies in a
// convex hull, testing whether the safe area Γ(Y) is empty, and selecting a
// deterministic point inside Γ(Y) (paper §2.2 spells out the LP). This
// package is that substrate, built only on the standard library.
//
// The solver uses Bland's anti-cycling rule, so it terminates on every input;
// pivoting is deterministic, so identical problems yield bit-identical
// solutions on every process — a property the consensus algorithms rely on
// when all correct processes must select the same point.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects minimization or maximization of the objective.
type Sense int

// Objective senses.
const (
	Minimize Sense = iota + 1
	Maximize
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota + 1 // Σ aᵢxᵢ ≤ rhs
	GE                // Σ aᵢxᵢ ≥ rhs
	EQ                // Σ aᵢxᵢ = rhs
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// VarID identifies a variable within a Problem.
type VarID int

// Term is one coefficient·variable product in a linear expression.
type Term struct {
	Var   VarID
	Coeff float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create problems with NewProblem.
type Problem struct {
	varLo    []float64
	varHi    []float64
	varNames []string

	rows     [][]Term
	rels     []Rel
	rhs      []float64
	rowNames []string

	objSense Sense
	obj      []Term
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// Objective is the optimal objective value in the problem's own sense.
	// Meaningful only when Status == Optimal.
	Objective float64
	// Values holds the optimal value of each variable, indexed by VarID.
	// Meaningful only when Status == Optimal.
	Values []float64
}

// ErrNotSolved is returned when a solution accessor is used on a non-optimal
// solution.
var ErrNotSolved = errors.New("lp: problem has no optimal solution")

// NewProblem returns an empty problem with a Minimize-zero objective.
func NewProblem() *Problem {
	return &Problem{objSense: Minimize}
}

// AddVar adds a variable with bounds lo ≤ x ≤ hi and returns its id. Use
// math.Inf(-1) / math.Inf(1) for unbounded sides. NaN bounds or lo > hi are
// rejected.
func (p *Problem) AddVar(name string, lo, hi float64) (VarID, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return 0, fmt.Errorf("lp: variable %q has NaN bound", name)
	}
	if lo > hi {
		return 0, fmt.Errorf("lp: variable %q has lo=%g > hi=%g", name, lo, hi)
	}
	p.varLo = append(p.varLo, lo)
	p.varHi = append(p.varHi, hi)
	p.varNames = append(p.varNames, name)
	return VarID(len(p.varLo) - 1), nil
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.varLo) }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddConstraint adds the row Σ termᵢ rel rhs.
func (p *Problem) AddConstraint(name string, terms []Term, rel Rel, rhs float64) error {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: constraint %q has non-finite rhs %g", name, rhs)
	}
	if rel != LE && rel != GE && rel != EQ {
		return fmt.Errorf("lp: constraint %q has invalid relation", name)
	}
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.varLo) {
			return fmt.Errorf("lp: constraint %q references unknown variable %d", name, t.Var)
		}
		if math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) {
			return fmt.Errorf("lp: constraint %q has non-finite coefficient", name)
		}
	}
	row := make([]Term, len(terms))
	copy(row, terms)
	p.rows = append(p.rows, row)
	p.rels = append(p.rels, rel)
	p.rhs = append(p.rhs, rhs)
	p.rowNames = append(p.rowNames, name)
	return nil
}

// SetObjective replaces the objective with sense·Σ termᵢ.
func (p *Problem) SetObjective(sense Sense, terms []Term) error {
	if sense != Minimize && sense != Maximize {
		return errors.New("lp: invalid objective sense")
	}
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.varLo) {
			return fmt.Errorf("lp: objective references unknown variable %d", t.Var)
		}
		if math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) {
			return errors.New("lp: objective has non-finite coefficient")
		}
	}
	p.objSense = sense
	p.obj = make([]Term, len(terms))
	copy(p.obj, terms)
	return nil
}

// Solve standardizes the problem and runs two-phase simplex. A Solution with
// Status Infeasible or Unbounded is returned without error; error indicates
// a malformed problem or an internal failure (e.g. iteration cap).
func (p *Problem) Solve() (*Solution, error) {
	std, err := p.standardize()
	if err != nil {
		return nil, err
	}
	status, x, err := std.solve()
	if err != nil {
		return nil, err
	}
	sol := &Solution{Status: status}
	if status != Optimal {
		return sol, nil
	}
	sol.Values = std.recover(x)
	var obj float64
	for _, t := range p.obj {
		obj += t.Coeff * sol.Values[t.Var]
	}
	sol.Objective = obj
	return sol, nil
}

// standard is the standard-form program min c·y s.t. Ay = b, y ≥ 0, together
// with the bookkeeping needed to map a standard-form solution back to the
// original variables.
type standard struct {
	m, n int // rows, columns
	a    [][]float64
	b    []float64
	c    []float64

	// varMap describes how each original variable is represented:
	// shifted (y = x − lo), mirrored (y = hi − x) or split (x = y⁺ − y⁻).
	varMap []stdVar
}

type stdVar struct {
	kind stdVarKind
	col  int     // primary standard column
	col2 int     // negative part for split variables
	off  float64 // shift offset (lo) or mirror origin (hi)
}

type stdVarKind int

const (
	varShift  stdVarKind = iota + 1 // x = off + y
	varMirror                       // x = off − y
	varSplit                        // x = y − y2
)

// standardize converts the modeling-layer problem into standard form.
func (p *Problem) standardize() (*standard, error) {
	std := &standard{varMap: make([]stdVar, len(p.varLo))}

	// Columns for original variables.
	var cols int
	for i := range p.varLo {
		lo, hi := p.varLo[i], p.varHi[i]
		switch {
		case !math.IsInf(lo, -1):
			std.varMap[i] = stdVar{kind: varShift, col: cols, off: lo}
			cols++
		case !math.IsInf(hi, 1):
			// lo = −∞, hi finite: x = hi − y with y ≥ 0.
			std.varMap[i] = stdVar{kind: varMirror, col: cols, off: hi}
			cols++
		default:
			std.varMap[i] = stdVar{kind: varSplit, col: cols, col2: cols + 1}
			cols += 2
		}
	}

	type stdRow struct {
		coeffs map[int]float64
		rel    Rel
		rhs    float64
	}
	var rows []stdRow

	// Upper-bound rows for doubly-bounded shifted variables:
	// y ≤ hi − lo.
	for i := range p.varLo {
		lo, hi := p.varLo[i], p.varHi[i]
		if std.varMap[i].kind == varShift && !math.IsInf(hi, 1) && hi > lo {
			rows = append(rows, stdRow{
				coeffs: map[int]float64{std.varMap[i].col: 1},
				rel:    LE,
				rhs:    hi - lo,
			})
		}
		// Fixed variables (lo == hi) become y = 0, enforced via an
		// equality row so phase 1 sees them.
		if std.varMap[i].kind == varShift && hi == lo {
			rows = append(rows, stdRow{
				coeffs: map[int]float64{std.varMap[i].col: 1},
				rel:    EQ,
				rhs:    0,
			})
		}
	}

	// Original constraint rows with substituted variables.
	for r := range p.rows {
		coeffs := make(map[int]float64)
		rhs := p.rhs[r]
		for _, t := range p.rows[r] {
			v := std.varMap[t.Var]
			switch v.kind {
			case varShift:
				coeffs[v.col] += t.Coeff
				rhs -= t.Coeff * v.off
			case varMirror:
				coeffs[v.col] -= t.Coeff
				rhs -= t.Coeff * v.off
			case varSplit:
				coeffs[v.col] += t.Coeff
				coeffs[v.col2] -= t.Coeff
			}
		}
		rows = append(rows, stdRow{coeffs: coeffs, rel: p.rels[r], rhs: rhs})
	}

	// Slack / surplus columns.
	for i := range rows {
		switch rows[i].rel {
		case LE:
			rows[i].coeffs[cols] = 1
			cols++
		case GE:
			rows[i].coeffs[cols] = -1
			cols++
		}
	}

	std.m = len(rows)
	std.n = cols
	std.a = make([][]float64, std.m)
	std.b = make([]float64, std.m)
	for i, row := range rows {
		std.a[i] = make([]float64, cols)
		for c, v := range row.coeffs {
			std.a[i][c] = v
		}
		std.b[i] = row.rhs
		// Row equilibration: scale each row to unit max magnitude. This
		// leaves the solution unchanged but keeps the absolute pivot and
		// feasibility tolerances meaningful when constraint data spans
		// orders of magnitude (e.g. honest values near 1 vs Byzantine
		// values in the hundreds) — without it the simplex can stall or
		// mis-declare optimality on such instances.
		var scale float64
		for _, v := range std.a[i] {
			if av := math.Abs(v); av > scale {
				scale = av
			}
		}
		if scale > 0 && (scale > 4 || scale < 0.25) {
			inv := 1 / scale
			for c := range std.a[i] {
				std.a[i][c] *= inv
			}
			std.b[i] *= inv
		}
		// Normalize to b ≥ 0 for phase 1.
		if std.b[i] < 0 {
			for c := range std.a[i] {
				std.a[i][c] = -std.a[i][c]
			}
			std.b[i] = -std.b[i]
		}
	}

	// Standard-form objective (always minimize).
	std.c = make([]float64, cols)
	sign := 1.0
	if p.objSense == Maximize {
		sign = -1
	}
	for _, t := range p.obj {
		v := std.varMap[t.Var]
		switch v.kind {
		case varShift:
			std.c[v.col] += sign * t.Coeff
		case varMirror:
			std.c[v.col] -= sign * t.Coeff
		case varSplit:
			std.c[v.col] += sign * t.Coeff
			std.c[v.col2] -= sign * t.Coeff
		}
	}
	return std, nil
}

// recover maps a standard-form solution vector back to original variables.
func (s *standard) recover(y []float64) []float64 {
	out := make([]float64, len(s.varMap))
	for i, v := range s.varMap {
		switch v.kind {
		case varShift:
			out[i] = v.off + y[v.col]
		case varMirror:
			out[i] = v.off - y[v.col]
		case varSplit:
			out[i] = y[v.col] - y[v.col2]
		}
	}
	return out
}
