package lp

import (
	"math"
	"math/rand"
	"testing"
)

// mustVar adds a variable or fails the test.
func mustVar(t *testing.T, p *Problem, name string, lo, hi float64) VarID {
	t.Helper()
	v, err := p.AddVar(name, lo, hi)
	if err != nil {
		t.Fatalf("AddVar(%s): %v", name, err)
	}
	return v
}

func solveOptimal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestSimpleMinimize(t *testing.T) {
	// min x + y  s.t. x + y >= 2, x >= 0, y >= 0 → objective 2.
	p := NewProblem()
	x := mustVar(t, p, "x", 0, math.Inf(1))
	y := mustVar(t, p, "y", 0, math.Inf(1))
	if err := p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, GE, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.SetObjective(Minimize, []Term{{x, 1}, {y, 1}}); err != nil {
		t.Fatal(err)
	}
	sol := solveOptimal(t, p)
	if math.Abs(sol.Objective-2) > 1e-8 {
		t.Errorf("objective = %g, want 2", sol.Objective)
	}
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 → x=4, y=0, obj=12.
	p := NewProblem()
	x := mustVar(t, p, "x", 0, math.Inf(1))
	y := mustVar(t, p, "y", 0, math.Inf(1))
	if err := p.AddConstraint("c1", []Term{{x, 1}, {y, 1}}, LE, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("c2", []Term{{x, 1}, {y, 3}}, LE, 6); err != nil {
		t.Fatal(err)
	}
	if err := p.SetObjective(Maximize, []Term{{x, 3}, {y, 2}}); err != nil {
		t.Fatal(err)
	}
	sol := solveOptimal(t, p)
	if math.Abs(sol.Objective-12) > 1e-8 {
		t.Errorf("objective = %g, want 12", sol.Objective)
	}
	if math.Abs(sol.Values[x]-4) > 1e-8 || math.Abs(sol.Values[y]) > 1e-8 {
		t.Errorf("solution = (%g, %g), want (4, 0)", sol.Values[x], sol.Values[y])
	}
}

func TestInfeasible(t *testing.T) {
	// x >= 0, x <= -1 is infeasible.
	p := NewProblem()
	x := mustVar(t, p, "x", 0, math.Inf(1))
	if err := p.AddConstraint("c", []Term{{x, 1}}, LE, -1); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEqualities(t *testing.T) {
	// x + y = 1, x + y = 2 is infeasible.
	p := NewProblem()
	x := mustVar(t, p, "x", 0, math.Inf(1))
	y := mustVar(t, p, "y", 0, math.Inf(1))
	if err := p.AddConstraint("c1", []Term{{x, 1}, {y, 1}}, EQ, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("c2", []Term{{x, 1}, {y, 1}}, EQ, 2); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x, x >= 0 unconstrained above → unbounded.
	p := NewProblem()
	x := mustVar(t, p, "x", 0, math.Inf(1))
	if err := p.SetObjective(Minimize, []Term{{x, -1}}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestUnboundedWithConstraint(t *testing.T) {
	// max x + y s.t. x − y <= 1: improving direction along x=y.
	p := NewProblem()
	x := mustVar(t, p, "x", 0, math.Inf(1))
	y := mustVar(t, p, "y", 0, math.Inf(1))
	if err := p.AddConstraint("c", []Term{{x, 1}, {y, -1}}, LE, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.SetObjective(Maximize, []Term{{x, 1}, {y, 1}}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x >= -5 encoded with a free variable and a GE row → −5.
	p := NewProblem()
	x := mustVar(t, p, "x", math.Inf(-1), math.Inf(1))
	if err := p.AddConstraint("c", []Term{{x, 1}}, GE, -5); err != nil {
		t.Fatal(err)
	}
	if err := p.SetObjective(Minimize, []Term{{x, 1}}); err != nil {
		t.Fatal(err)
	}
	sol := solveOptimal(t, p)
	if math.Abs(sol.Values[x]+5) > 1e-8 {
		t.Errorf("x = %g, want -5", sol.Values[x])
	}
}

func TestVariableBounds(t *testing.T) {
	// max x with −2 ≤ x ≤ 3 → 3; min → −2.
	for _, tt := range []struct {
		sense Sense
		want  float64
	}{
		{Maximize, 3},
		{Minimize, -2},
	} {
		p := NewProblem()
		x := mustVar(t, p, "x", -2, 3)
		if err := p.SetObjective(tt.sense, []Term{{x, 1}}); err != nil {
			t.Fatal(err)
		}
		sol := solveOptimal(t, p)
		if math.Abs(sol.Values[x]-tt.want) > 1e-8 {
			t.Errorf("sense %v: x = %g, want %g", tt.sense, sol.Values[x], tt.want)
		}
	}
}

func TestUpperBoundOnlyVariable(t *testing.T) {
	// x ≤ 4 (lo = −∞): max x → 4.
	p := NewProblem()
	x := mustVar(t, p, "x", math.Inf(-1), 4)
	if err := p.SetObjective(Maximize, []Term{{x, 1}}); err != nil {
		t.Fatal(err)
	}
	sol := solveOptimal(t, p)
	if math.Abs(sol.Values[x]-4) > 1e-8 {
		t.Errorf("x = %g, want 4", sol.Values[x])
	}
}

func TestFixedVariable(t *testing.T) {
	// lo == hi pins the variable.
	p := NewProblem()
	x := mustVar(t, p, "x", 2.5, 2.5)
	y := mustVar(t, p, "y", 0, math.Inf(1))
	if err := p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, EQ, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.SetObjective(Minimize, []Term{{y, 1}}); err != nil {
		t.Fatal(err)
	}
	sol := solveOptimal(t, p)
	if math.Abs(sol.Values[x]-2.5) > 1e-8 {
		t.Errorf("x = %g, want 2.5", sol.Values[x])
	}
	if math.Abs(sol.Values[y]-1.5) > 1e-8 {
		t.Errorf("y = %g, want 1.5", sol.Values[y])
	}
}

func TestNegativeRHS(t *testing.T) {
	// min y s.t. −x ≤ −3 (i.e. x ≥ 3), y ≥ x − 10 encoded as −x + y ≥ −10.
	p := NewProblem()
	x := mustVar(t, p, "x", 0, math.Inf(1))
	y := mustVar(t, p, "y", 0, math.Inf(1))
	if err := p.AddConstraint("c1", []Term{{x, -1}}, LE, -3); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("c2", []Term{{x, -1}, {y, 1}}, GE, -10); err != nil {
		t.Fatal(err)
	}
	if err := p.SetObjective(Minimize, []Term{{y, 1}}); err != nil {
		t.Fatal(err)
	}
	sol := solveOptimal(t, p)
	if sol.Values[x] < 3-1e-8 {
		t.Errorf("x = %g, want >= 3", sol.Values[x])
	}
	if math.Abs(sol.Values[y]) > 1e-8 {
		t.Errorf("y = %g, want 0", sol.Values[y])
	}
}

func TestEqualitySystem(t *testing.T) {
	// x + y = 3, x − y = 1 → x = 2, y = 1 (feasibility; zero objective).
	p := NewProblem()
	x := mustVar(t, p, "x", math.Inf(-1), math.Inf(1))
	y := mustVar(t, p, "y", math.Inf(-1), math.Inf(1))
	if err := p.AddConstraint("c1", []Term{{x, 1}, {y, 1}}, EQ, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("c2", []Term{{x, 1}, {y, -1}}, EQ, 1); err != nil {
		t.Fatal(err)
	}
	sol := solveOptimal(t, p)
	if math.Abs(sol.Values[x]-2) > 1e-8 || math.Abs(sol.Values[y]-1) > 1e-8 {
		t.Errorf("solution = (%g, %g), want (2, 1)", sol.Values[x], sol.Values[y])
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate equality rows exercise the redundant-row neutralization in
	// phase 1 → phase 2 transition.
	p := NewProblem()
	x := mustVar(t, p, "x", 0, math.Inf(1))
	y := mustVar(t, p, "y", 0, math.Inf(1))
	for i := 0; i < 3; i++ {
		if err := p.AddConstraint("dup", []Term{{x, 1}, {y, 1}}, EQ, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SetObjective(Minimize, []Term{{x, 1}}); err != nil {
		t.Fatal(err)
	}
	sol := solveOptimal(t, p)
	if math.Abs(sol.Values[x]) > 1e-8 || math.Abs(sol.Values[y]-2) > 1e-8 {
		t.Errorf("solution = (%g, %g), want (0, 2)", sol.Values[x], sol.Values[y])
	}
}

func TestDegenerateProblem(t *testing.T) {
	// A classic degenerate LP (multiple constraints active at the optimum);
	// Bland's rule must terminate.
	p := NewProblem()
	x := mustVar(t, p, "x", 0, math.Inf(1))
	y := mustVar(t, p, "y", 0, math.Inf(1))
	z := mustVar(t, p, "z", 0, math.Inf(1))
	cons := []struct {
		terms []Term
		rhs   float64
	}{
		{[]Term{{x, 0.5}, {y, -5.5}, {z, -2.5}}, 0},
		{[]Term{{x, 0.5}, {y, -1.5}, {z, -0.5}}, 0},
		{[]Term{{x, 1}}, 1},
	}
	for i, c := range cons {
		if err := p.AddConstraint("c", c.terms, LE, c.rhs); err != nil {
			t.Fatalf("c%d: %v", i, err)
		}
	}
	if err := p.SetObjective(Maximize, []Term{{x, 10}, {y, -57}, {z, -9}}); err != nil {
		t.Fatal(err)
	}
	sol := solveOptimal(t, p)
	// Known optimum of this (Beale-like) instance family: x=1, y,z chosen
	// to keep constraints tight; objective must be finite and ≥ 0.
	if sol.Objective < -1e-8 {
		t.Errorf("objective = %g, want >= 0", sol.Objective)
	}
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	// Pure feasibility: a point in a triangle via convex weights.
	p := NewProblem()
	a := mustVar(t, p, "a", 0, math.Inf(1))
	b := mustVar(t, p, "b", 0, math.Inf(1))
	c := mustVar(t, p, "c", 0, math.Inf(1))
	// Vertices (0,0), (1,0), (0,1); target (0.25, 0.25).
	if err := p.AddConstraint("x", []Term{{b, 1}}, EQ, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("y", []Term{{c, 1}}, EQ, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("sum", []Term{{a, 1}, {b, 1}, {c, 1}}, EQ, 1); err != nil {
		t.Fatal(err)
	}
	sol := solveOptimal(t, p)
	if math.Abs(sol.Values[a]-0.5) > 1e-8 {
		t.Errorf("a = %g, want 0.5", sol.Values[a])
	}
}

func TestNoConstraintsUnbounded(t *testing.T) {
	p := NewProblem()
	x := mustVar(t, p, "x", 0, math.Inf(1))
	if err := p.SetObjective(Maximize, []Term{{x, 1}}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestNoConstraintsOptimal(t *testing.T) {
	p := NewProblem()
	x := mustVar(t, p, "x", 0, math.Inf(1))
	if err := p.SetObjective(Minimize, []Term{{x, 1}}); err != nil {
		t.Fatal(err)
	}
	sol := solveOptimal(t, p)
	if sol.Values[x] != 0 {
		t.Errorf("x = %g, want 0", sol.Values[x])
	}
}

func TestAddVarErrors(t *testing.T) {
	p := NewProblem()
	if _, err := p.AddVar("bad", 2, 1); err == nil {
		t.Error("lo > hi: expected error")
	}
	if _, err := p.AddVar("nan", math.NaN(), 1); err == nil {
		t.Error("NaN bound: expected error")
	}
}

func TestAddConstraintErrors(t *testing.T) {
	p := NewProblem()
	x := mustVar(t, p, "x", 0, 1)
	if err := p.AddConstraint("bad-var", []Term{{VarID(9), 1}}, LE, 0); err == nil {
		t.Error("unknown var: expected error")
	}
	if err := p.AddConstraint("bad-rhs", []Term{{x, 1}}, LE, math.Inf(1)); err == nil {
		t.Error("infinite rhs: expected error")
	}
	if err := p.AddConstraint("bad-rel", []Term{{x, 1}}, Rel(0), 0); err == nil {
		t.Error("invalid rel: expected error")
	}
	if err := p.AddConstraint("bad-coeff", []Term{{x, math.NaN()}}, LE, 0); err == nil {
		t.Error("NaN coeff: expected error")
	}
}

func TestSetObjectiveErrors(t *testing.T) {
	p := NewProblem()
	x := mustVar(t, p, "x", 0, 1)
	if err := p.SetObjective(Sense(0), []Term{{x, 1}}); err == nil {
		t.Error("invalid sense: expected error")
	}
	if err := p.SetObjective(Minimize, []Term{{VarID(7), 1}}); err == nil {
		t.Error("unknown var: expected error")
	}
}

func TestStringers(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("Rel.String broken")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" {
		t.Error("Status.String broken")
	}
	if Rel(99).String() == "" || Status(99).String() == "" {
		t.Error("unknown values must still render")
	}
}

// TestRandomFeasibilityAgainstBruteForce cross-checks LP feasibility of
// random interval systems a ≤ x ≤ b ∧ c ≤ x ≤ d against the closed-form
// answer.
func TestRandomFeasibilityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		a, b := rng.Float64()*10-5, rng.Float64()*10-5
		c, d := rng.Float64()*10-5, rng.Float64()*10-5
		if a > b {
			a, b = b, a
		}
		if c > d {
			c, d = d, c
		}
		p := NewProblem()
		x, err := p.AddVar("x", math.Inf(-1), math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, con := range []struct {
			rel Rel
			rhs float64
		}{{GE, a}, {LE, b}, {GE, c}, {LE, d}} {
			if err := p.AddConstraint("c", []Term{{x, 1}}, con.rel, con.rhs); err != nil {
				t.Fatal(err)
			}
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		wantFeasible := math.Max(a, c) <= math.Min(b, d)+1e-12
		gotFeasible := sol.Status == Optimal
		if gotFeasible != wantFeasible {
			t.Fatalf("trial %d: intervals [%g,%g] [%g,%g]: got %v want feasible=%v",
				trial, a, b, c, d, sol.Status, wantFeasible)
		}
	}
}

// TestRandomLPsAgainstVertexEnumeration solves random small 2-D LPs and
// cross-checks the optimum against brute-force vertex enumeration.
func TestRandomLPsAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		// Box 0 ≤ x,y ≤ 10 plus 3 random ≤ half-planes keeps it bounded.
		type halfPlane struct{ a, b, rhs float64 }
		hps := []halfPlane{
			{1, 0, 10}, {0, 1, 10}, {-1, 0, 0}, {0, -1, 0},
		}
		for k := 0; k < 3; k++ {
			hps = append(hps, halfPlane{
				a:   rng.Float64()*4 - 2,
				b:   rng.Float64()*4 - 2,
				rhs: rng.Float64() * 8,
			})
		}
		cx, cy := rng.Float64()*2-1, rng.Float64()*2-1

		p := NewProblem()
		x := mustVar(t, p, "x", math.Inf(-1), math.Inf(1))
		y := mustVar(t, p, "y", math.Inf(-1), math.Inf(1))
		for _, h := range hps {
			if err := p.AddConstraint("h", []Term{{x, h.a}, {y, h.b}}, LE, h.rhs); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.SetObjective(Maximize, []Term{{x, cx}, {y, cy}}); err != nil {
			t.Fatal(err)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}

		// Brute force: intersect every pair of boundary lines, keep feasible
		// vertices, take the best objective.
		best := math.Inf(-1)
		feasibleFound := false
		for i := 0; i < len(hps); i++ {
			for j := i + 1; j < len(hps); j++ {
				det := hps[i].a*hps[j].b - hps[j].a*hps[i].b
				if math.Abs(det) < 1e-9 {
					continue
				}
				vx := (hps[i].rhs*hps[j].b - hps[j].rhs*hps[i].b) / det
				vy := (hps[i].a*hps[j].rhs - hps[j].a*hps[i].rhs) / det
				ok := true
				for _, h := range hps {
					if h.a*vx+h.b*vy > h.rhs+1e-7 {
						ok = false
						break
					}
				}
				if ok {
					feasibleFound = true
					if v := cx*vx + cy*vy; v > best {
						best = v
					}
				}
			}
		}
		if !feasibleFound {
			// Origin region could still be feasible without 2 tight rows;
			// skip the cross-check in that unlikely degenerate case.
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v with feasible vertices", trial, sol.Status)
		}
		if math.Abs(sol.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: objective %g, brute force %g", trial, sol.Objective, best)
		}
	}
}

// TestDeterminism verifies that solving the identical problem twice yields
// bit-identical results — the property consensus processes rely on.
func TestDeterminism(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		x, _ := p.AddVar("x", math.Inf(-1), math.Inf(1))
		y, _ := p.AddVar("y", 0, 5)
		_ = p.AddConstraint("c1", []Term{{x, 1}, {y, 2}}, LE, 7)
		_ = p.AddConstraint("c2", []Term{{x, 3}, {y, -1}}, GE, 1)
		_ = p.SetObjective(Maximize, []Term{{x, 1}, {y, 1}})
		return p
	}
	s1, err := build().Solve()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := build().Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Status != s2.Status || s1.Objective != s2.Objective {
		t.Fatal("non-deterministic status/objective")
	}
	for i := range s1.Values {
		if s1.Values[i] != s2.Values[i] {
			t.Fatalf("non-deterministic value[%d]: %g vs %g", i, s1.Values[i], s2.Values[i])
		}
	}
}

// TestBadlyScaledIntersection is a regression test for the row-equilibration
// fix: constraint data spanning orders of magnitude (values near 1 vs
// values in the hundreds) used to make the simplex mis-declare optimality.
func TestBadlyScaledIntersection(t *testing.T) {
	// Feasibility: z in [−7.1, −6.9] (tight rows) and z ≤ 540 (huge row),
	// minimize z. Mixed magnitudes on one variable.
	p := NewProblem()
	z := mustVar(t, p, "z", math.Inf(-1), math.Inf(1))
	if err := p.AddConstraint("lo", []Term{{z, 1}}, GE, -7.1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("hi", []Term{{z, 1}}, LE, -6.9); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("huge", []Term{{z, 540}}, LE, 540*540); err != nil {
		t.Fatal(err)
	}
	if err := p.SetObjective(Minimize, []Term{{z, 1}}); err != nil {
		t.Fatal(err)
	}
	sol := solveOptimal(t, p)
	if math.Abs(sol.Values[z]+7.1) > 1e-6 {
		t.Errorf("z = %g, want -7.1", sol.Values[z])
	}
}

// TestMixedMagnitudeConvexCombination reproduces the structure of the
// gradient-aggregation failure: a target point expressible as a convex
// combination of clustered small points, with two enormous outliers in the
// candidate set.
func TestMixedMagnitudeConvexCombination(t *testing.T) {
	points := [][2]float64{
		{-6.99947, 6.01334},
		{-7.0819, 5.95616},
		{-6.9863, 5.9543},
		{540, 460},
		{540, 460},
	}
	// Find weights putting the combination at the cluster centroid-ish
	// target (-7.03, 5.97): the huge outliers must get ~0 weight.
	p := NewProblem()
	alphas := make([]VarID, len(points))
	for i := range points {
		alphas[i] = mustVar(t, p, "a", 0, math.Inf(1))
	}
	sum := make([]Term, len(points))
	for i, a := range alphas {
		sum[i] = Term{Var: a, Coeff: 1}
	}
	if err := p.AddConstraint("sum", sum, EQ, 1); err != nil {
		t.Fatal(err)
	}
	for dim := 0; dim < 2; dim++ {
		terms := make([]Term, len(points))
		for i, a := range alphas {
			terms[i] = Term{Var: a, Coeff: points[i][dim]}
		}
		target := []float64{-7.03, 5.97}[dim]
		if err := p.AddConstraint("eq", terms, EQ, target); err != nil {
			t.Fatal(err)
		}
	}
	sol := solveOptimal(t, p)
	var recon [2]float64
	for i, a := range alphas {
		recon[0] += sol.Values[a] * points[i][0]
		recon[1] += sol.Values[a] * points[i][1]
	}
	if math.Abs(recon[0]+7.03) > 1e-5 || math.Abs(recon[1]-5.97) > 1e-5 {
		t.Errorf("reconstruction = %v, want (-7.03, 5.97)", recon)
	}
}
