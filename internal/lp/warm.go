package lp

import (
	"errors"
	"fmt"
	"math"
)

// This file is the warm-start layer of the solver: reusing the work of a
// previous solve instead of re-running Phase 1 from the all-artificial basis.
//
// Two forms are provided, matching the two reuse shapes of the Γ-point
// pipeline:
//
//   - Basis + SolveWithBasis: restart a *sibling* program (same shape,
//     slightly different coefficients — e.g. the hull-membership LPs of
//     consecutive candidate subsets walked in Gray-code order) from the
//     previous program's optimal basis. The basis is pivoted into the fresh
//     tableau; if it is primal feasible there, Phase 1 is skipped entirely
//     and Phase 2 runs from a near-optimal vertex.
//   - Hot + AppendLE + Resolve: keep *one* program's final tableau alive
//     across objective changes and appended ≤-rows (the lex-min pinning
//     chain), re-pricing the retained tableau instead of rebuilding it.
//
// CAUTION — determinism vs. purity. Every solve here is deterministic (same
// inputs, same basis → same bits), but a warm-started *solution vector* is a
// function of the program AND the starting basis: on a degenerate optimal
// face, different bases can reach different optimal vertices. Callers that
// memoize or exchange solution points must therefore only use warm starts
// where the consumed output is basis-independent (feasibility/emptiness
// verdicts, objective values within tolerance) or where the whole warm chain
// is a pure function of the memo key (the lex-min stages of one candidate
// set). See internal/hull for both patterns.

// Basis is a reusable snapshot of an optimal simplex basis: the set of basic
// columns in standard-form column space. Its zero value is empty (cold). A
// Basis may be carried between Problems of identical shape; SolveWithBasis
// validates it against the target program and silently falls back to a cold
// two-phase solve when it does not fit.
type Basis struct {
	cols []int
	m, n int
}

// Valid reports whether the basis holds a usable snapshot.
func (b *Basis) Valid() bool { return b != nil && len(b.cols) > 0 }

// Reset clears the snapshot (the next SolveWithBasis runs cold).
func (b *Basis) Reset() { b.cols = b.cols[:0] }

// capture snapshots the final basis of a solve when every basic column is
// structural or slack (an artificial left basic — a degenerate null row —
// cannot seed a warm start, so the snapshot is invalidated instead).
func (b *Basis) capture(basis []int, m, n int) {
	b.m, b.n = m, n
	b.cols = b.cols[:0]
	for _, c := range basis {
		if c >= n {
			return // leaves cols empty → invalid
		}
	}
	b.cols = append(b.cols, basis...)
}

// Reset clears the problem's variables, constraints and objective while
// keeping the allocated capacity, so one Problem value can be rebuilt many
// times without per-build allocation (the membership testers of
// internal/hull rebuild a same-shaped program per candidate subset).
func (p *Problem) Reset() {
	p.varLo = p.varLo[:0]
	p.varHi = p.varHi[:0]
	p.varNames = p.varNames[:0]
	p.rows = p.rows[:0]
	p.rels = p.rels[:0]
	p.rhs = p.rhs[:0]
	p.rowNames = p.rowNames[:0]
	p.objSense = Minimize
	p.obj = p.obj[:0]
}

// SolveWithBasis is SolveWith seeded by a previous optimal basis. On the
// revised core the candidate basis is refactored directly against the new
// program's coefficients (one LU factorization instead of Phase 1); on the
// dense core the basis columns are pivoted into a fresh tableau. Either
// way, when the resulting basic solution is primal feasible the solve
// proceeds directly to Phase 2 — skipping Phase 1, which dominates cold
// solves of the sibling programs the Γ-point pipeline generates. When the
// basis does not fit (wrong shape, singular factorization, infeasible basic
// point) the solve falls back to the cold two-phase path. On an Optimal
// outcome the basis snapshot is replaced by this solve's final basis;
// otherwise it is invalidated.
//
// See the package note above on when a warm-started solution may be used.
func (p *Problem) SolveWithBasis(ws *Workspace, bas *Basis) (*Solution, error) {
	if bas == nil {
		return p.SolveWith(ws)
	}
	std, err := p.standardize(ws)
	if err != nil {
		return nil, err
	}
	var (
		status Status
		x      []float64
		warmed bool
	)
	if bas.Valid() && bas.m == std.m && bas.n == std.n {
		if ActiveCore() == CoreDense || std.m <= smallCoreRows {
			status, x, warmed = std.solveWarm(ws, bas.cols)
		} else {
			status, x, warmed = std.solveWarmRevised(ws, bas.cols)
		}
	}
	if !warmed {
		status, x, err = std.solveActive(ws)
		if err != nil {
			bas.Reset()
			return nil, err
		}
	}
	if status == Optimal {
		bas.capture(ws.basis, std.m, std.n)
	} else {
		bas.Reset()
	}
	return p.assemble(std, status, x)
}

// solveWarm attempts the warm path: rebuild the tableau, pivot the given
// basis in, verify primal feasibility, run Phase 2. The boolean result
// reports whether the warm path produced a verdict; false means the caller
// must run the cold path (nothing observable has been decided).
func (s *standard) solveWarm(ws *Workspace, cols []int) (Status, []float64, bool) {
	m, n := s.m, s.n
	if m == 0 || len(cols) != m {
		return 0, nil, false
	}
	t, basis := s.buildTableau(ws)
	width := n + m + 1
	// Pivot each basis column into an unassigned row, choosing the largest
	// eligible pivot for stability. A near-zero column means the basis is
	// singular for this program's coefficients: fall back.
	assigned := grow(&ws.rowUsed, m)
	for i := range assigned {
		assigned[i] = false
	}
	for _, col := range cols {
		if col < 0 || col >= n {
			return 0, nil, false
		}
		row, best := -1, pivotEps
		for i := 0; i < m; i++ {
			if assigned[i] {
				continue
			}
			if a := math.Abs(t[i*width+col]); a > best {
				row, best = i, a
			}
		}
		if row < 0 {
			return 0, nil, false
		}
		pivot(t, m, width, basis, row, col)
		assigned[row] = true
	}
	// Primal feasibility of the warm basic solution. Values inside the
	// feasibility tolerance are clamped to exactly zero so the ratio test
	// never divides against negative noise.
	for i := 0; i < m; i++ {
		b := t[i*width+width-1]
		if b < -feasEps {
			return 0, nil, false
		}
		if b < 0 {
			t[i*width+width-1] = 0
		}
	}
	// Phase 2 from the warm vertex.
	p2c := growZero(&ws.cvec, width)
	copy(p2c, s.c)
	reprice(t, m, width, basis, p2c)
	if err := simplexLoop(t, m, width, basis, n, p2c); err != nil {
		if errors.Is(err, errUnboundedPivot) {
			return Unbounded, nil, true
		}
		return 0, nil, false // numeric trouble: let the cold path decide
	}
	x := growZero(&ws.x, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = t[i*width+width-1]
		}
	}
	return Optimal, x, true
}

// assemble converts a standard-form outcome into the public Solution,
// mirroring SolveWith's epilogue.
func (p *Problem) assemble(std *standard, status Status, x []float64) (*Solution, error) {
	sol := &Solution{Status: status}
	if status != Optimal {
		return sol, nil
	}
	sol.Values = std.recover(x)
	var obj float64
	for _, t := range p.obj {
		obj += t.Coeff * sol.Values[t.Var]
	}
	sol.Objective = obj
	return sol, nil
}

// ErrHotInfeasible is returned by Hot.AppendLE when the appended row cuts
// off the current optimal vertex — the retained tableau cannot absorb it and
// the caller must fall back to a cold solve of the extended program.
var ErrHotInfeasible = errors.New("lp: appended row infeasible at the current vertex")

// Hot is the retained state of a solved Problem: the final basis (the LU
// factors and update file on the revised core; the full tableau on the
// dense core) and standardization stay live in the Workspace, so follow-up
// solves that only change the objective (Resolve) or append a ≤-row
// satisfied by the current vertex (AppendLE) re-price and run Phase 2
// pivots instead of re-standardizing and re-running Phase 1. This is the
// solver half of the lex-min warm-start ladder: internal/hull pins
// coordinate l by appending one ≤-row and re-minimizing coordinate l+1 on
// the same retained state. On the revised core an appended row costs one
// bordered-row operator over the retained factors — the appended slack
// enters the basis on the new row, which keeps the extended basis
// block-triangular, so nothing is refactored.
//
// A Hot handle owns its Workspace until dropped: the caller must not issue
// other solves through the same Workspace while the handle is in use. All
// operations are deterministic; the purity caveat in the package note
// applies (a Hot chain's outputs are a pure function of the root program and
// the exact operation sequence).
type Hot struct {
	p     *Problem
	ws    *Workspace
	std   *standard
	rev   *hotRev // revised-core state; nil on the dense core
	m, n  int     // current tableau dimensions (dense core; grow with AppendLE)
	width int
}

// SolveHot is SolveWith that additionally returns a Hot handle retaining the
// solved basis for objective changes and row appends. The handle is only
// returned on an Optimal outcome (there is nothing to retain otherwise).
func (p *Problem) SolveHot(ws *Workspace) (*Solution, *Hot, error) {
	std, err := p.standardize(ws)
	if err != nil {
		return nil, nil, err
	}
	if ActiveCore() == CoreDense || std.m <= smallCoreRows {
		status, x, err := std.solve(ws)
		if err != nil {
			return nil, nil, err
		}
		sol, err := p.assemble(std, status, x)
		if err != nil || status != Optimal {
			return sol, nil, err
		}
		return sol, &Hot{p: p, ws: ws, std: std, m: std.m, n: std.n, width: std.n + std.m + 1}, nil
	}
	status, x, rv, err := std.solveRevisedKeep(ws)
	if err != nil {
		return nil, nil, err
	}
	sol, err := p.assemble(std, status, x)
	if err != nil || status != Optimal || rv == nil {
		return sol, nil, err
	}
	return sol, &Hot{p: p, ws: ws, std: std, rev: &hotRev{rv: rv}}, nil
}

// AppendLE appends the constraint Σ termᵢ ≤ rhs to the retained tableau.
// The new row is expressed in the current basis by eliminating the basic
// columns, and its slack becomes the new row's basic variable — valid
// precisely when the current vertex satisfies the row (slack ≥ 0), which is
// the lex-min pinning case by construction (the pin bound is the current
// optimum plus slack). ErrHotInfeasible reports a violated row; the tableau
// is unchanged and still usable in that case.
func (h *Hot) AppendLE(terms []Term, rhs float64) error {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return errors.New("lp: appended row has non-finite rhs")
	}
	for _, tm := range terms {
		if int(tm.Var) < 0 || int(tm.Var) >= len(h.p.varLo) {
			return fmt.Errorf("lp: appended row references unknown variable %d", tm.Var)
		}
		if math.IsNaN(tm.Coeff) || math.IsInf(tm.Coeff, 0) {
			return errors.New("lp: appended row has non-finite coefficient")
		}
	}
	if h.rev != nil {
		return h.rev.appendLE(h.std, h.ws, terms, rhs)
	}
	ws := h.ws
	m, n, width := h.m, h.n, h.width
	t := ws.tab

	// Build the raw standardized row (new layout: structural+slack columns
	// 0..n−1, the new slack at n, artificials shifted to n+1.., rhs last).
	newWidth := width + 2
	newRow := growZero(&ws.rowBuf, newWidth)
	b := rhs
	for _, tm := range terms {
		v := h.std.varMap[tm.Var]
		switch v.kind {
		case varShift:
			newRow[v.col] += tm.Coeff
			b -= tm.Coeff * v.off
		case varMirror:
			newRow[v.col] -= tm.Coeff
			b -= tm.Coeff * v.off
		case varSplit:
			newRow[v.col] += tm.Coeff
			newRow[v.col2] -= tm.Coeff
		}
	}
	newRow[n] = 1 // the appended row's slack
	newRow[newWidth-1] = b

	// Re-lay the tableau with one more column pair (slack + rhs shift) and
	// one more constraint row, into the alternate slab. Nothing the Hot
	// handle owns (ws.tab, ws.basis) is mutated until the row is accepted,
	// so a refused append leaves the retained state untouched.
	nt := growZero(&ws.tab2, (m+2)*newWidth)
	for i := 0; i < m; i++ {
		src := t[i*width : i*width+width]
		dst := nt[i*newWidth : i*newWidth+newWidth]
		copy(dst[:n], src[:n])
		copy(dst[n+1:n+1+m], src[n:n+m])
		dst[newWidth-1] = src[width-1]
	}
	// shifted maps a basic column into the new layout (artificial columns
	// — basic on null rows after a degenerate Phase 1 — move right by one).
	shifted := func(c int) int {
		if c >= n {
			return c + 1
		}
		return c
	}
	basis := ws.basis

	// Express the new row in the current basis: eliminate every basic
	// column using the (already reduced) rows above.
	for i := 0; i < m; i++ {
		c := shifted(basis[i])
		f := newRow[c]
		if f == 0 {
			continue
		}
		row := nt[i*newWidth : i*newWidth+newWidth]
		for j := range newRow {
			newRow[j] -= f * row[j]
		}
		newRow[c] = 0 // exact
	}
	slackVal := newRow[newWidth-1]
	if slackVal < -feasEps {
		return ErrHotInfeasible
	}
	if slackVal < 0 {
		newRow[newWidth-1] = 0
	}
	copy(nt[m*newWidth:(m+1)*newWidth], newRow)

	// Commit: swap slabs, shift the basis into the new layout, grow it
	// with the new slack.
	for i, c := range basis {
		basis[i] = shifted(c)
	}
	ws.tab, ws.tab2 = nt, ws.tab
	ws.basis = append(basis, n)
	h.m, h.n, h.width = m+1, n+1, newWidth
	return nil
}

// Resolve re-optimizes the retained state for the Problem's *current*
// objective (callers change it with SetObjective between stages): the
// reduced costs are re-priced from the new cost vector and Phase 2 runs
// from the current vertex — no re-standardization, no Phase 1. The possible
// statuses are Optimal and Unbounded (the vertex is feasible by
// construction).
func (h *Hot) Resolve() (*Solution, error) {
	if h.rev != nil {
		st, x, err := h.rev.resolve(h.p, h.std, h.ws)
		if err != nil {
			return nil, err
		}
		if st != Optimal {
			return &Solution{Status: st}, nil
		}
		return h.p.assemble(h.std, Optimal, x)
	}
	ws := h.ws
	m, n, width := h.m, h.n, h.width
	t := ws.tab
	basis := ws.basis

	// Standard-form cost vector for the current objective. Columns beyond
	// the original structural/slack set (appended slacks) cost zero.
	c := growZero(&ws.cvec, width)
	sign := 1.0
	if h.p.objSense == Maximize {
		sign = -1
	}
	for _, tm := range h.p.obj {
		v := h.std.varMap[tm.Var]
		switch v.kind {
		case varShift:
			c[v.col] += sign * tm.Coeff
		case varMirror:
			c[v.col] -= sign * tm.Coeff
		case varSplit:
			c[v.col] += sign * tm.Coeff
			c[v.col2] -= sign * tm.Coeff
		}
	}
	reprice(t, m, width, basis, c)
	if err := simplexLoop(t, m, width, basis, n, c); err != nil {
		if errors.Is(err, errUnboundedPivot) {
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}
	x := growZero(&ws.x, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = t[i*width+width-1]
		}
	}
	return h.p.assemble(h.std, Optimal, x)
}
