package safearea

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
	"repro/internal/hull"
)

// TestPointAlwaysInEverySubsetHull is the validity-side property behind
// Lemma 1's use in the algorithms: the deterministic Γ point must lie in
// the hull of EVERY (|Y|−f)-subset — in particular in the hull of whatever
// subset happens to be the correct processes' inputs.
func TestPointAlwaysInEverySubsetHull(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(2)
		f := 1 + rng.Intn(2)
		size := (d+1)*f + 1 + rng.Intn(2)
		ms := randomMultiset(rng, size, d)
		pt, err := Point(ms, f)
		if err != nil {
			t.Fatalf("trial %d (d=%d f=%d |Y|=%d): %v", trial, d, f, size, err)
		}
		in, err := Contains(ms, f, pt, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if !in {
			t.Fatalf("trial %d: point %v outside Γ", trial, pt)
		}
	}
}

// TestPointStableUnderClone: identical multisets (even via deep copies)
// yield bit-identical points — the cross-process determinism requirement.
func TestPointStableUnderClone(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		d := 1 + rng.Intn(3)
		f := 1
		ms := randomMultiset(rng, d+2+rng.Intn(3), d)
		a, err := Point(ms, f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Point(ms.Clone(), f)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("trial %d: %v vs %v", trial, a, b)
		}
	}
}

// TestGammaMonotoneInF: increasing f shrinks Γ (more subsets intersected),
// so a point of Γ(Y, f+1) is always inside Γ(Y, f).
func TestGammaMonotoneInF(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		d := 1 + rng.Intn(2)
		size := 3*(d+1) + 1 // enough for f = 2 and beyond
		ms := randomMultiset(rng, size, d)
		ptHiF, err := Point(ms, 2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		in, err := Contains(ms, 1, ptHiF, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if !in {
			t.Fatalf("trial %d: Γ(f=2) point %v escaped Γ(f=1)", trial, ptHiF)
		}
	}
}

// TestGammaScaleAndTranslateEquivariance: Γ commutes with affine scaling
// and translation — translate/scale the inputs and the (lex-min) point
// moves with them.
func TestGammaScaleAndTranslateEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		d := 1 + rng.Intn(2)
		size := (d+1)*1 + 1 + rng.Intn(2)
		ms := randomMultiset(rng, size, d)
		shift := rng.Float64()*10 - 5
		scale := 0.5 + rng.Float64()*3 // positive: preserves lex order

		moved := geometry.NewMultiset(d)
		for i := 0; i < ms.Len(); i++ {
			p := ms.At(i).Scale(scale)
			for j := range p {
				p[j] += shift
			}
			if err := moved.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		base, err := Point(ms, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Point(moved, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := base.Scale(scale)
		for j := range want {
			want[j] += shift
		}
		if !got.ApproxEqual(want, 1e-6) {
			t.Fatalf("trial %d: equivariance broken: got %v want %v", trial, got, want)
		}
	}
}

// TestContainsConsistentWithHullForF0: with f = 0, Γ(Y) = conv(Y), so
// Contains must agree with plain hull membership.
func TestContainsConsistentWithHullForF0(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		d := 1 + rng.Intn(2)
		ms := randomMultiset(rng, 3+rng.Intn(4), d)
		z := geometry.NewVector(d)
		for j := range z {
			z[j] = rng.Float64()*12 - 6
		}
		inGamma, err := Contains(ms, 0, z, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		inHull, err := hull.Contains(ms.Points(), z, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		if inGamma != inHull {
			t.Fatalf("trial %d: Γ(f=0) membership %v, hull membership %v", trial, inGamma, inHull)
		}
	}
}
