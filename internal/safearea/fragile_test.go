package safearea

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
	"repro/internal/lp"
)

// fragileCorpus enumerates the Γ-solver's formerly fragile regime: random
// candidate multisets exactly at the Lemma-1 threshold |Y| = (d+1)f+1 for
// f = 2 — the tight-bound restricted-sync cells (and the shared-subset size
// of restricted-async runs) where Γ(Y) degenerates toward a single point
// and the joint lex-min LP runs on big degenerate hull intersections.
//
// Under the dense accumulated-tableau core these instances failed at a
// ~25% rate ("hull: lexmin stage 1 infeasible after pinning", simplex
// iteration cap); PR 3 mapped the region empirically and cmd/bvcsweep
// skipped it by default (harness.SweepCell.FragileGamma). The revised
// LU-based simplex core retires the failure mode; this corpus pins that.
var fragileCorpus = []struct {
	d, f  int
	seeds int
}{
	{d: 2, f: 2, seeds: 30},
	{d: 3, f: 2, seeds: 30},
}

// fragileInstance builds the seed's random multiset at the threshold size.
func fragileInstance(t *testing.T, d, f int, seed int64) *geometry.Multiset {
	t.Helper()
	size := (d+1)*f + 1
	rng := rand.New(rand.NewSource(seed))
	ms := geometry.NewMultiset(d)
	for i := 0; i < size; i++ {
		v := geometry.NewVector(d)
		for j := range v {
			v[j] = rng.Float64()
		}
		if err := ms.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	return ms
}

// TestFragileRegionLexMinLP forces the LP path (MethodLexMinLP — the
// Tverberg-lift fallback disabled) on every corpus instance and requires
// 0/30 failures per (d, f) cell, each returned point verified to lie in
// Γ(Y). This is the regression gate for the revised simplex core: the
// dense core fails a double-digit percentage of exactly these instances
// (see TestFragileRegionDenseCoreComparison for the measured gap).
func TestFragileRegionLexMinLP(t *testing.T) {
	for _, c := range fragileCorpus {
		failures := 0
		for seed := int64(0); seed < int64(c.seeds); seed++ {
			ms := fragileInstance(t, c.d, c.f, seed)
			pt, err := PointWith(ms, c.f, MethodLexMinLP)
			if err != nil {
				t.Errorf("d=%d f=%d seed=%d: LP path failed: %v", c.d, c.f, seed, err)
				failures++
				continue
			}
			in, err := Contains(ms, c.f, pt, 1e-6)
			if err != nil {
				t.Errorf("d=%d f=%d seed=%d: verify: %v", c.d, c.f, seed, err)
				failures++
				continue
			}
			if !in {
				t.Errorf("d=%d f=%d seed=%d: point %v outside Γ(Y)", c.d, c.f, seed, pt)
				failures++
			}
		}
		if failures != 0 {
			t.Errorf("d=%d f=%d: %d/%d corpus failures (want 0)", c.d, c.f, failures, c.seeds)
		}
	}
}

// TestFragileRegionDenseCoreComparison measures the dense core on the same
// corpus, for the record: it must not be BETTER than the revised core, and
// historically it fails a substantial fraction. The test is informational
// about the exact rate (numerics differ across platforms) but hard-fails
// if the dense core somehow beats a failing revised core, which would mean
// the flag plumbing is backwards.
func TestFragileRegionDenseCoreComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("dense-core comparison is informational; skip in -short")
	}
	prev := lp.SetCore(lp.CoreDense)
	defer lp.SetCore(prev)
	failures, total := 0, 0
	for _, c := range fragileCorpus {
		for seed := int64(0); seed < int64(c.seeds); seed++ {
			total++
			ms := fragileInstance(t, c.d, c.f, seed)
			pt, err := PointWith(ms, c.f, MethodLexMinLP)
			if err != nil {
				failures++
				continue
			}
			if in, err := Contains(ms, c.f, pt, 1e-6); err != nil || !in {
				failures++
			}
		}
	}
	t.Logf("dense core: %d/%d fragile-corpus failures (revised must be 0)", failures, total)
}
