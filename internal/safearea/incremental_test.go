package safearea

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

func randVector(rng *rand.Rand, d int) geometry.Vector {
	v := geometry.NewVector(d)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

func randMultiset(rng *rand.Rand, n, d int) *geometry.Multiset {
	ms := geometry.NewMultiset(d)
	for i := 0; i < n; i++ {
		if err := ms.Add(randVector(rng, d)); err != nil {
			panic(err)
		}
	}
	return ms
}

// TestResolveMatchesLadder pins Resolve to PointWith's MethodAuto ladder.
func TestResolveMatchesLadder(t *testing.T) {
	cases := []struct {
		n, d, f int
		want    Method
	}{
		{5, 1, 1, MethodAuto},         // d = 1 closed form
		{5, 2, 0, MethodAuto},         // f = 0 lex-min member
		{5, 2, 1, MethodRadon},        // f = 1, n ≥ d+2
		{3, 2, 1, MethodLexMinLP},     // f = 1, below d+2
		{7, 2, 2, MethodTverbergLift}, // n ≥ (d+1)f+1
		{6, 2, 2, MethodLexMinLP},     // below the Lemma-1 threshold
		{9, 3, 2, MethodTverbergLift}, // n ≥ 9
	}
	for _, c := range cases {
		if got := Resolve(c.n, c.d, c.f, MethodAuto); got != c.want {
			t.Errorf("Resolve(%d,%d,%d, auto) = %v, want %v", c.n, c.d, c.f, got, c.want)
		}
	}
	if got := Resolve(9, 3, 2, MethodLexMinLP); got != MethodLexMinLP {
		t.Errorf("explicit method must resolve to itself, got %v", got)
	}
}

// TestPrefixLen pins the dependence lengths of the ladder's methods.
func TestPrefixLen(t *testing.T) {
	cases := []struct {
		n, d, f int
		method  Method
		want    int
	}{
		{13, 3, 2, MethodAuto, 9},      // lift: (d+1)f+1
		{13, 4, 1, MethodAuto, 6},      // radon: d+2
		{9, 4, 1, MethodAuto, 6},       // radon below full
		{9, 1, 2, MethodAuto, 9},       // d = 1: full
		{9, 3, 0, MethodAuto, 9},       // f = 0: full
		{13, 3, 2, MethodLexMinLP, 13}, // joint LP: full
		{9, 3, 2, MethodAuto, 9},       // lift at exactly (d+1)f+1: full
		{13, 3, 2, MethodTverbergSearch, 13},
	}
	for _, c := range cases {
		if got := PrefixLen(c.n, c.d, c.f, c.method); got != c.want {
			t.Errorf("PrefixLen(%d,%d,%d,%v) = %d, want %d", c.n, c.d, c.f, c.method, got, c.want)
		}
	}
}

// TestPointOnPrefixMatchesFull: whenever PointOnPrefix certifies a point
// from the prefix, PointWith on ANY superset sharing that prefix must return
// the identical point, bit for bit.
func TestPointOnPrefixMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ n, d, f int }{
		{13, 3, 2}, {11, 4, 2}, {9, 2, 2}, {9, 4, 1}, {7, 2, 1}, {13, 3, 3},
	}
	for _, c := range cases {
		for trial := 0; trial < 10; trial++ {
			full := randMultiset(rng, c.n, c.d)
			m := PrefixLen(c.n, c.d, c.f, MethodAuto)
			if m == c.n {
				continue
			}
			prefixIdx := make([]int, m)
			for i := range prefixIdx {
				prefixIdx[i] = i
			}
			prefix, err := full.Subset(prefixIdx)
			if err != nil {
				t.Fatal(err)
			}
			pt, ok, err := PointOnPrefix(prefix, c.f, MethodAuto)
			if err != nil {
				t.Fatalf("n=%d d=%d f=%d: %v", c.n, c.d, c.f, err)
			}
			if !ok {
				continue // not certified: caller falls back, nothing to check
			}
			want, err := PointWith(full, c.f, MethodAuto)
			if err != nil {
				t.Fatalf("full PointWith: %v", err)
			}
			if !pt.Equal(want) {
				t.Fatalf("n=%d d=%d f=%d trial %d: prefix point %v, full point %v",
					c.n, c.d, c.f, trial, pt, want)
			}
			// And the certified point is a genuine Γ(full) member.
			in, err := Contains(full, c.f, pt, 1e-6)
			if err != nil {
				t.Fatal(err)
			}
			if !in {
				t.Fatalf("certified prefix point outside Γ of the superset")
			}
		}
	}
}

// TestIncrementalMatchesFromScratch drives an Incremental through random
// Swap/Add/Remove deltas and checks Point, IsEmpty and Contains against
// from-scratch computations on the same multiset after every delta.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const d, f = 2, 1
	ms := randMultiset(rng, 6, d)
	inc, err := NewIncremental(ms, f)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		switch op := rng.Intn(4); {
		case op == 0 && inc.Len() > 5:
			if err := inc.Remove(rng.Intn(inc.Len())); err != nil {
				t.Fatalf("step %d remove: %v", step, err)
			}
		case op == 1 && inc.Len() < 9:
			if err := inc.Add(randVector(rng, d)); err != nil {
				t.Fatalf("step %d add: %v", step, err)
			}
		default:
			if err := inc.Swap(rng.Intn(inc.Len()), randVector(rng, d)); err != nil {
				t.Fatalf("step %d swap: %v", step, err)
			}
		}
		cur := inc.Multiset()

		wantPt, wantErr := PointWith(cur, f, MethodAuto)
		gotPt, gotErr := inc.Point(MethodAuto)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("step %d: point errors diverge: %v vs %v", step, gotErr, wantErr)
		}
		if wantErr == nil && !gotPt.Equal(wantPt) {
			t.Fatalf("step %d: incremental point %v, from-scratch %v", step, gotPt, wantPt)
		}

		wantEmpty, err := IsEmpty(cur, f)
		if err != nil {
			t.Fatal(err)
		}
		gotEmpty, err := inc.IsEmpty()
		if err != nil {
			t.Fatal(err)
		}
		if wantEmpty != gotEmpty {
			t.Fatalf("step %d: emptiness diverges: %v vs %v", step, gotEmpty, wantEmpty)
		}

		// Membership of a few probes, including the Γ-point when present.
		probes := []geometry.Vector{randVector(rng, d), randVector(rng, d)}
		if wantErr == nil {
			probes = append(probes, wantPt)
		}
		for _, z := range probes {
			want, err := Contains(cur, f, z, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := inc.Contains(z, 0)
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Fatalf("step %d: membership of %v diverges: %v vs %v", step, z, got, want)
			}
		}
	}
	if inc.Groups() <= 1 {
		t.Fatalf("family degenerated to %d groups", inc.Groups())
	}
}
