package safearea

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

func vec(xs ...float64) geometry.Vector { return geometry.Vector(xs) }

// randomMultiset builds n random points in [-5,5]^d.
func randomMultiset(rng *rand.Rand, n, d int) *geometry.Multiset {
	ms := geometry.NewMultiset(d)
	for i := 0; i < n; i++ {
		p := geometry.NewVector(d)
		for j := range p {
			p[j] = rng.Float64()*10 - 5
		}
		if err := ms.Add(p); err != nil {
			panic(err)
		}
	}
	return ms
}

func TestSubsetCount(t *testing.T) {
	if got := SubsetCount(7, 2); got != 21 {
		t.Errorf("SubsetCount(7,2) = %d, want 21", got)
	}
	if got := SubsetCount(4, 1); got != 4 {
		t.Errorf("SubsetCount(4,1) = %d, want 4", got)
	}
}

func TestInterval1D(t *testing.T) {
	// Sorted members: 1 2 3 4 5; f=1 → Γ = [2, 4].
	ms := geometry.MustMultisetOf(vec(3), vec(1), vec(5), vec(2), vec(4))
	lo, hi, err := Interval(ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 2 || hi != 4 {
		t.Errorf("Γ = [%g,%g], want [2,4]", lo, hi)
	}
	// f=2 → Γ = [3,3].
	lo, hi, err = Interval(ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 3 || hi != 3 {
		t.Errorf("Γ = [%g,%g], want [3,3]", lo, hi)
	}
}

func TestIntervalEmptyWhenTooFew(t *testing.T) {
	// |Y| = 2f: Γ must be empty (lo > hi).
	ms := geometry.MustMultisetOf(vec(0), vec(1))
	lo, hi, err := Interval(ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo <= hi {
		t.Errorf("Γ = [%g,%g], want empty", lo, hi)
	}
	empty, err := IsEmpty(ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Error("IsEmpty should report empty")
	}
}

func TestIntervalRequires1D(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(0, 0))
	if _, _, err := Interval(ms, 0); err == nil {
		t.Error("d=2: expected error")
	}
}

func TestValidateErrors(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(0), vec(1))
	if _, err := Point(nil, 0); err == nil {
		t.Error("nil multiset: expected error")
	}
	if _, err := Point(ms, -1); err == nil {
		t.Error("negative f: expected error")
	}
	if _, err := Point(ms, 2); err == nil {
		t.Error("f = |Y|: expected error")
	}
}

// TestLemma1NonEmptyAtThreshold is experiment E3's core assertion: random
// multisets with |Y| = (d+1)f+1 always have non-empty Γ(Y) (Lemma 1).
func TestLemma1NonEmptyAtThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		d := 1 + rng.Intn(3)
		f := 1 + rng.Intn(2)
		n := (d+1)*f + 1
		ms := randomMultiset(rng, n, d)
		empty, err := IsEmpty(ms, f)
		if err != nil {
			t.Fatalf("trial %d (d=%d f=%d): %v", trial, d, f, err)
		}
		if empty {
			t.Fatalf("trial %d (d=%d f=%d): Lemma 1 violated — Γ empty at threshold", trial, d, f)
		}
	}
}

// TestGammaEmptyBelowThreshold reproduces the Theorem 1 counterexample: the
// standard basis plus origin (|Y| = d+1, f = 1) has empty Γ.
func TestGammaEmptyBelowThreshold(t *testing.T) {
	for d := 1; d <= 4; d++ {
		ms := geometry.NewMultiset(d)
		for i := 0; i < d; i++ {
			e := geometry.NewVector(d)
			e[i] = 1
			if err := ms.Add(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := ms.Add(geometry.NewVector(d)); err != nil {
			t.Fatal(err)
		}
		empty, err := IsEmpty(ms, 1)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !empty {
			t.Errorf("d=%d: basis construction should have empty Γ (Theorem 1)", d)
		}
		if _, err := PointWith(ms, 1, MethodLexMinLP); !errors.Is(err, ErrEmpty) {
			t.Errorf("d=%d: PointWith should return ErrEmpty, got %v", d, err)
		}
	}
}

func TestGammaF0IsHull(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(1, 2), vec(0, 0), vec(3, 1))
	empty, err := IsEmpty(ms, 0)
	if err != nil || empty {
		t.Fatalf("f=0 Γ=H(Y) must be non-empty: empty=%v err=%v", empty, err)
	}
	pt, err := Point(ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Lex-min member is (0,0).
	if !pt.ApproxEqual(vec(0, 0), 1e-9) {
		t.Errorf("f=0 point = %v, want (0,0)", pt)
	}
	in, err := Contains(ms, 0, pt, 0)
	if err != nil || !in {
		t.Errorf("point must be in Γ: in=%v err=%v", in, err)
	}
}

// TestPointMethodsAgreeOnMembership: every method must return a point that
// membership-tests into Γ(Y).
func TestPointMethodsAgreeOnMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	methods := []Method{MethodAuto, MethodLexMinLP, MethodTverbergSearch}
	for trial := 0; trial < 25; trial++ {
		d := 1 + rng.Intn(2)
		f := 1
		n := (d+1)*f + 1 + rng.Intn(2)
		ms := randomMultiset(rng, n, d)
		for _, m := range methods {
			pt, err := PointWith(ms, f, m)
			if err != nil {
				t.Fatalf("trial %d method %v: %v", trial, m, err)
			}
			in, err := Contains(ms, f, pt, 1e-6)
			if err != nil {
				t.Fatal(err)
			}
			if !in {
				t.Fatalf("trial %d method %v: point %v not in Γ", trial, m, pt)
			}
		}
	}
}

func TestPointRadonFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		d := 1 + rng.Intn(3)
		n := d + 2 + rng.Intn(3)
		ms := randomMultiset(rng, n, d)
		pt, err := PointWith(ms, 1, MethodRadon)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		in, err := Contains(ms, 1, pt, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if !in {
			t.Fatalf("trial %d: Radon point %v not in Γ(Y) (d=%d n=%d)", trial, pt, d, n)
		}
	}
}

func TestPointRadonRequiresF1(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(0, 0), vec(1, 0), vec(0, 1), vec(1, 1), vec(2, 2), vec(3, 0), vec(0, 3))
	if _, err := PointWith(ms, 2, MethodRadon); err == nil {
		t.Error("f=2 with Radon: expected error")
	}
}

func TestPointRadonRequiresEnoughPoints(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(0, 0), vec(1, 0), vec(0, 1))
	if _, err := PointWith(ms, 1, MethodRadon); err == nil {
		t.Error("|Y| < d+2 with Radon: expected error")
	}
}

func TestPointUnknownMethod(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(0), vec(1), vec(2))
	if _, err := PointWith(ms, 1, Method(99)); err == nil {
		t.Error("unknown method: expected error")
	}
}

func TestPointDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ms := randomMultiset(rng, 7, 2)
	a, err := Point(ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Point(ms.Clone(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("non-deterministic point: %v vs %v", a, b)
	}
}

func TestPoint1DClosedForm(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(5), vec(1), vec(3), vec(2), vec(9))
	pt, err := Point(ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pt[0] != 2 {
		t.Errorf("d=1 point = %v, want y₍f+1₎ = 2", pt)
	}
}

// TestGammaPointInsideEveryHullExplicit cross-checks Γ membership by
// explicitly verifying the defining property on a concrete instance.
func TestGammaPointInsideEveryHullExplicit(t *testing.T) {
	// 5 points in R², f = 1: point must be inside all five 4-point hulls.
	ms := geometry.MustMultisetOf(vec(0, 0), vec(4, 0), vec(0, 4), vec(4, 4), vec(2, 2))
	pt, err := Point(ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Contains(ms, 1, pt, 1e-7)
	if err != nil || !in {
		t.Fatalf("in=%v err=%v", in, err)
	}
	// (2,2) is a member of every 4-subset's hull interior here; but e.g.
	// (0,0) is not in the hull of {(4,0),(0,4),(4,4),(2,2)}.
	in, err = Contains(ms, 1, vec(0, 0), 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if in {
		t.Error("(0,0) must not be in Γ")
	}
}

func TestContainsDimMismatch(t *testing.T) {
	ms := geometry.MustMultisetOf(vec(0, 0), vec(1, 1))
	if _, err := Contains(ms, 0, vec(1), 0); err == nil {
		t.Error("dim mismatch: expected error")
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range []Method{MethodAuto, MethodLexMinLP, MethodRadon, MethodTverbergSearch} {
		if m.String() == "" {
			t.Errorf("method %d renders empty", m)
		}
	}
	if Method(42).String() == "" {
		t.Error("unknown method renders empty")
	}
}

// TestProbabilitySimplexStaysInside: inputs on the probability simplex must
// yield a Γ point on the simplex (the paper's motivating invariant).
func TestProbabilitySimplexStaysInside(t *testing.T) {
	ms := geometry.MustMultisetOf(
		vec(2.0/3, 1.0/6, 1.0/6),
		vec(1.0/6, 2.0/3, 1.0/6),
		vec(1.0/6, 1.0/6, 2.0/3),
		vec(1.0/3, 1.0/3, 1.0/3),
		vec(0.5, 0.25, 0.25),
		vec(0.25, 0.5, 0.25),
	)
	pt, err := Point(ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, x := range pt {
		if x < -1e-7 {
			t.Errorf("negative coordinate %g", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("coordinates sum to %g, want 1 (point must stay on simplex)", sum)
	}
}

func TestContainsParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		d := 1 + rng.Intn(3)
		f := 1 + rng.Intn(2)
		n := (d+1)*f + 1 + rng.Intn(3)
		ms := geometry.NewMultiset(d)
		for i := 0; i < n; i++ {
			v := geometry.NewVector(d)
			for l := range v {
				v[l] = rng.Float64()
			}
			if err := ms.Add(v); err != nil {
				t.Fatal(err)
			}
		}
		// Probe points: one likely inside (a Γ point when it exists), one
		// certainly outside the input box.
		var probes []geometry.Vector
		if pt, err := Point(ms, f); err == nil {
			probes = append(probes, pt)
		}
		out := geometry.NewVector(d)
		for l := range out {
			out[l] = 5 + rng.Float64()
		}
		probes = append(probes, out)
		for _, z := range probes {
			want, werr := Contains(ms, f, z, 0)
			for _, workers := range []int{2, 4} {
				got, gerr := ContainsParallel(ms, f, z, 0, workers)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("trial %d workers %d: serial err=%v parallel err=%v", trial, workers, werr, gerr)
				}
				if got != want {
					t.Fatalf("trial %d workers %d: serial=%v parallel=%v for z=%v", trial, workers, want, got, z)
				}
			}
		}
	}
}
