package safearea

import (
	"math/rand"
	"testing"

	"repro/internal/combin"
	"repro/internal/geometry"
)

func familyPool(rng *rand.Rand, n, d int) []geometry.Vector {
	out := make([]geometry.Vector, n)
	for i := range out {
		v := geometry.NewVector(d)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

// familyReference computes the family points the slow way: one PointWith
// per lexicographic subset.
func familyReference(t *testing.T, vals []geometry.Vector, f, k int) []geometry.Vector {
	t.Helper()
	var pts []geometry.Vector
	err := combin.Combinations(len(vals), k, func(idx []int) bool {
		ms := geometry.NewMultiset(vals[0].Dim())
		for _, j := range idx {
			if err := ms.Add(vals[j]); err != nil {
				t.Fatal(err)
			}
		}
		pt, err := PointWith(ms, f, MethodAuto)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, pt)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

// TestRadonFamilyMatchesReference: a fresh family must hold bit-identical
// points (and mean) to the independent subset walk.
func TestRadonFamilyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range []struct{ n, d int }{{7, 2}, {8, 3}, {9, 4}} {
		k := c.d + 2
		vals := familyPool(rng, c.n, c.d)
		fam, solved, err := NewRadonFamily(vals, 1, k, MethodAuto)
		if err != nil {
			t.Fatal(err)
		}
		want := familyReference(t, vals, 1, k)
		if solved != len(want) {
			t.Fatalf("n=%d d=%d: solved %d, want %d", c.n, c.d, solved, len(want))
		}
		for r := range want {
			for l := range want[r] {
				if fam.pts[r][l] != want[r][l] {
					t.Fatalf("n=%d d=%d rank %d: %v != %v", c.n, c.d, r, fam.pts[r], want[r])
				}
			}
		}
		mean, size, err := fam.MeanPoint()
		if err != nil || size != len(want) {
			t.Fatalf("mean: size=%d err=%v", size, err)
		}
		ref, err := geometry.Mean(want)
		if err != nil {
			t.Fatal(err)
		}
		for l := range ref {
			if mean[l] != ref[l] {
				t.Fatalf("mean mismatch: %v != %v", mean, ref)
			}
		}
	}
}

// TestRadonFamilyDeltaMatchesFresh: a delta-built family must be
// bit-identical to a from-scratch build of the same pool while reusing
// every subset that avoids the changed slot. The delta shape mirrors the
// restricted-async round structure: sibling B sets are "everyone except
// one straggler", i.e. single-member deltas of each other.
func TestRadonFamilyDeltaMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const d, k = 3, 5
	pool := familyPool(rng, 9, d) // process universe
	// B_a = pool without slot 3; B_b = pool without slot 6.
	without := func(skip int) []geometry.Vector {
		out := make([]geometry.Vector, 0, len(pool)-1)
		for i, v := range pool {
			if i != skip {
				out = append(out, v)
			}
		}
		return out
	}
	ba, bb := without(3), without(6)
	famA, _, err := NewRadonFamily(ba, 1, k, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	// B_b = B_a with member at (B_a slot 5 = pool slot 6) removed and the
	// pool-slot-3 value inserted at B_b slot 3.
	famB, reused, solved, err := NewRadonFamilyFrom(famA, bb, 3, 5, 1, k, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	fresh, total, err := NewRadonFamily(bb, 1, k, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	if reused+solved != total {
		t.Fatalf("reused %d + solved %d != total %d", reused, solved, total)
	}
	wantReused := int(combin.Binomial(len(bb)-1, k))
	if reused != wantReused {
		t.Fatalf("reused %d, want C(%d, %d) = %d", reused, len(bb)-1, k, wantReused)
	}
	for r := range fresh.pts {
		for l := range fresh.pts[r] {
			if famB.pts[r][l] != fresh.pts[r][l] {
				t.Fatalf("rank %d: delta %v != fresh %v", r, famB.pts[r], fresh.pts[r])
			}
		}
	}
	ma, _, _ := famB.MeanPoint()
	mb, _, _ := fresh.MeanPoint()
	for l := range ma {
		if ma[l] != mb[l] {
			t.Fatalf("mean: delta %v != fresh %v", ma, mb)
		}
	}
	// Mismatched family parameters fall back to a fresh build (no reuse).
	fam2, reused2, _, err := NewRadonFamilyFrom(famA, bb, 3, 5, 1, k, MethodRadon)
	if err != nil || fam2 == nil || reused2 != 0 {
		t.Fatalf("parameter-mismatch fallback: fam=%v reused=%d err=%v", fam2, reused2, err)
	}
}
