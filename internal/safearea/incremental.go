// Incremental Γ(Y) support: the prefix-dependence contract of the method
// ladder (the delta keys of core.Engine's sub-family memoization) and an
// incremental hull-family representation for single-point deltas
// Γ(Y ∪ {y}) / Γ(Y \ {x}) / swaps.
package safearea

import (
	"fmt"

	"repro/internal/combin"
	"repro/internal/geometry"
	"repro/internal/hull"
	"repro/internal/tverberg"
)

// Resolve maps MethodAuto to the concrete method the ladder would run for a
// candidate multiset of the given size (n = |Y|), dimension and fault bound.
// Non-auto methods resolve to themselves. This mirrors PointWith's ladder
// exactly; keeping the two adjacent is load-bearing — the Engine's memo keys
// include the resolved method.
func Resolve(n, d, f int, method Method) Method {
	if method != MethodAuto {
		return method
	}
	switch {
	case d == 1, f == 0:
		return MethodAuto // closed forms; no sub-method to name
	case f == 1 && n >= d+2:
		return MethodRadon
	case n >= (d+1)*f+1:
		return MethodTverbergLift
	default:
		return MethodLexMinLP
	}
}

// PrefixLen returns how many leading members of a canonical (origin-sorted)
// candidate multiset of size n the Γ-point computed by PointWith actually
// depends on:
//
//   - MethodRadon reads the first d+2 members (RadonOfFirst);
//   - MethodTverbergLift reads the first (d+1)f+1 members (the lifted search
//     appends the rest to the last block, which cannot move the point);
//   - every other method — the d = 1 closed form, the f = 0 lex-min member,
//     the joint lex-min LP, the exhaustive search — depends on all n.
//
// Two candidate sets sharing their first PrefixLen members therefore share
// the Γ-point, PROVIDED the prefix computation certifies itself
// (PointOnPrefix): the Tverberg-lift fallback to the joint LP re-reads the
// whole multiset, so an unverified lift re-opens full dependence.
func PrefixLen(n, d, f int, method Method) int {
	switch Resolve(n, d, f, method) {
	case MethodRadon:
		if f == 1 && n > d+2 {
			return d + 2
		}
	case MethodTverbergLift:
		if m := (d+1)*f + 1; n > m {
			return m
		}
	}
	return n
}

// PointOnPrefix computes the Γ-point of any candidate multiset whose first
// members equal prefix (with |prefix| = PrefixLen(n, d, f, method) < n for
// the superset size n in question). The boolean result reports whether the
// point is *certified* from the prefix alone — bit-identical to what
// PointWith returns for every such superset:
//
//   - Radon: always certified (PointWith never verifies the f = 1 Radon
//     point; the partition extension only grows the second block's hull).
//   - Tverberg lift: certified iff the lifted partition of the prefix
//     verifies geometrically. Appending members only grows the last block's
//     hull, so prefix verification implies superset verification and the
//     superset path returns the identical lift point. An unverified prefix
//     is NOT certified: the superset's fallback (full-multiset joint LP, or
//     a verification rescued by the appended members — impossible, but kept
//     out of the trust base) must run from scratch.
//
// (false, nil) means the caller must fall back to the full candidate set.
func PointOnPrefix(prefix *geometry.Multiset, f int, method Method) (geometry.Vector, bool, error) {
	d := prefix.Dim()
	if d > 1 && f > 0 && multisetSpread(prefix) <= hull.DefaultTol {
		// The full multiset may take the degenerate-spread shortcut
		// (PointWith), whose result depends on ALL members — a prefix
		// cannot certify it.
		return nil, false, nil
	}
	switch Resolve(prefix.Len(), d, f, method) {
	case MethodRadon:
		if f != 1 || prefix.Len() < d+2 {
			return nil, false, nil
		}
		part, err := tverberg.RadonOfFirst(prefix)
		if err != nil {
			return nil, false, err
		}
		return part.Point, true, nil
	case MethodTverbergLift:
		if prefix.Len() < (d+1)*f+1 {
			return nil, false, nil
		}
		// Mirror PointWith's degenerate-input normalization exactly: the
		// parameters derive from the lift prefix — i.e. this whole
		// multiset — so the certified point stays bit-identical to the
		// full-set path.
		if lo, spread := normParamsOf(prefix, prefix.Len()); spread > 0 && (spread < 0.25 || spread > 4) {
			pt, ok, err := PointOnPrefix(normalizeMultiset(prefix, lo, spread), f, method)
			if err != nil || !ok {
				return nil, ok, err
			}
			return denormalizePoint(pt, lo, spread), true, nil
		}
		part, err := tverberg.Lift(prefix, f+1)
		if err != nil {
			return nil, false, nil // fall back to the full set, as PointWith would
		}
		if verr := tverberg.Verify(prefix, part, liftVerifyTol); verr != nil {
			return nil, false, nil
		}
		return part.Point, true, nil
	default:
		return nil, false, nil
	}
}

// Incremental maintains Γ(Y) for a working multiset under single-point
// deltas. It materializes the hull family {H(T) : T ⊆ Y, |T| = |Y|−f} once
// and, on Add/Remove/Swap, rebuilds only the groups whose index set contains
// a changed slot — the C(|Y|−1, f)-sized sub-family avoiding the slot is
// shared untouched. Membership queries keep one warm simplex basis per group
// (verdicts are basis-independent), so re-testing after a delta re-solves
// only the affected groups from cold.
//
// Point queries route through the identical method ladder as PointWith and
// return bit-identical results — Incremental is a representation, not an
// approximation. It is not safe for concurrent use.
type Incremental struct {
	f    int
	y    *geometry.Multiset
	keep int

	// groups[g] lists the member slots of group g (ascending); the order is
	// the lexicographic subset order, matching groups()/ContainsParallel.
	groups [][]int
	pts    [][]geometry.Vector // materialized group point sets (shared vectors)
	basis  []hullBasis         // per-group warm membership state
}

// hullBasis pairs a per-group membership tester so each group's warm basis
// survives deltas to other groups.
type hullBasis struct {
	mt *hull.MembershipTester
}

// NewIncremental builds the incremental representation of Γ(Y).
func NewIncremental(y *geometry.Multiset, f int) (*Incremental, error) {
	keep, err := validate(y, f)
	if err != nil {
		return nil, err
	}
	inc := &Incremental{f: f, y: y.Clone(), keep: keep}
	if err := inc.rebuild(); err != nil {
		return nil, err
	}
	return inc, nil
}

// rebuild materializes the group index sets and point views from scratch.
func (inc *Incremental) rebuild() error {
	n := inc.y.Len()
	count := combin.Binomial(n, inc.keep)
	if count <= 0 {
		return fmt.Errorf("safearea: no size-%d subsets of |Y| = %d", inc.keep, n)
	}
	inc.groups = inc.groups[:0]
	inc.pts = inc.pts[:0]
	err := combin.Combinations(n, inc.keep, func(idx []int) bool {
		g := make([]int, len(idx))
		copy(g, idx)
		pts := make([]geometry.Vector, len(idx))
		for i, j := range idx {
			pts[i] = inc.y.At(j)
		}
		inc.groups = append(inc.groups, g)
		inc.pts = append(inc.pts, pts)
		return true
	})
	if err != nil {
		return err
	}
	inc.basis = make([]hullBasis, len(inc.groups))
	return nil
}

// Len returns |Y|.
func (inc *Incremental) Len() int { return inc.y.Len() }

// Multiset returns a copy of the working multiset.
func (inc *Incremental) Multiset() *geometry.Multiset { return inc.y.Clone() }

// Groups returns the number of hulls in the family: C(|Y|, f).
func (inc *Incremental) Groups() int { return len(inc.groups) }

// Key appends the canonical multiset key of the working Y to dst — the
// identity under which Γ(Y) results may be shared (geometry.AppendKey per
// member, in order).
func (inc *Incremental) Key(dst []byte) []byte {
	for i := 0; i < inc.y.Len(); i++ {
		dst = geometry.AppendKey(dst, inc.y.At(i))
	}
	return dst
}

// Swap replaces member i with v: Γ(Y \ {yᵢ} ∪ {v}). Only the C(|Y|−1, f−1)…
// groups containing slot i are re-materialized (their warm bases drop); the
// rest of the family — C(|Y|−1, f) groups — is untouched.
func (inc *Incremental) Swap(i int, v geometry.Vector) error {
	if i < 0 || i >= inc.y.Len() {
		return fmt.Errorf("safearea: swap index %d out of range [0,%d)", i, inc.y.Len())
	}
	if v.Dim() != inc.y.Dim() {
		return fmt.Errorf("safearea: swap dimension %d, multiset dimension %d", v.Dim(), inc.y.Dim())
	}
	old := inc.y.At(i)
	copy(old, v) // members are owned clones; update in place so views stay live
	for g, slots := range inc.groups {
		for _, s := range slots {
			if s == i {
				if inc.basis[g].mt != nil {
					inc.basis[g].mt = nil // invalidate the warm basis
				}
				break
			}
		}
	}
	return nil
}

// Add appends member v: Γ(Y ∪ {v}). The family is re-enumerated (group
// count changes), but group point views over unchanged slots are rebuilt
// from shared vectors, not re-cloned.
func (inc *Incremental) Add(v geometry.Vector) error {
	if err := inc.y.Add(v); err != nil {
		return err
	}
	inc.keep = inc.y.Len() - inc.f
	return inc.rebuild()
}

// Remove deletes member i: Γ(Y \ {yᵢ}).
func (inc *Incremental) Remove(i int) error {
	y, err := inc.y.WithoutIndex(i)
	if err != nil {
		return err
	}
	if _, err := validate(y, inc.f); err != nil {
		return err
	}
	inc.y = y.Clone() // own the member vectors (WithoutIndex shares them)
	inc.keep = inc.y.Len() - inc.f
	return inc.rebuild()
}

// Contains reports whether z ∈ Γ(Y) within tol, walking the family with
// per-group warm-started membership solves. The verdict is identical to
// Contains/ContainsParallel on the working multiset.
func (inc *Incremental) Contains(z geometry.Vector, tol float64) (bool, error) {
	if z.Dim() != inc.y.Dim() {
		return false, fmt.Errorf("safearea: point dimension %d, multiset dimension %d", z.Dim(), inc.y.Dim())
	}
	for g := range inc.groups {
		if inc.basis[g].mt == nil {
			inc.basis[g].mt = hull.NewMembershipTester()
		}
		ok, err := inc.basis[g].mt.Test(inc.pts[g], z, tol)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// IsEmpty reports whether Γ(Y) is empty for the working multiset.
func (inc *Incremental) IsEmpty() (bool, error) {
	if inc.f == 0 {
		return false, nil
	}
	if inc.y.Dim() == 1 {
		lo, hi, err := interval(inc.y, inc.f)
		if err != nil {
			return false, err
		}
		return lo > hi, nil
	}
	return hull.IntersectionEmpty(inc.pts)
}

// Point returns the deterministic Γ-point of the working multiset under
// method — bit-identical to PointWith on the same multiset.
func (inc *Incremental) Point(method Method) (geometry.Vector, error) {
	return PointWith(inc.y, inc.f, method)
}
