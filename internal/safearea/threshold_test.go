package safearea

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

// TestPointAutoAtThreshold: MethodAuto must produce a verified Γ-point on
// every random multiset at the Lemma 1 threshold |Y| = (d+1)f+1 for the
// d ≥ 2, f ≥ 2 grids the scale experiments use. These sizes route through
// the lifted Tverberg search; the joint lex-min LP alone fails a double-
// digit percentage of such instances (numerically degenerate hull
// intersections), which is exactly why the lift exists.
func TestPointAutoAtThreshold(t *testing.T) {
	cases := []struct{ d, f int }{{2, 2}, {3, 2}, {3, 3}, {4, 2}}
	for _, c := range cases {
		size := (c.d+1)*c.f + 1
		for seed := int64(0); seed < 30; seed++ {
			rng := rand.New(rand.NewSource(seed))
			ms := geometry.NewMultiset(c.d)
			for i := 0; i < size; i++ {
				v := geometry.NewVector(c.d)
				for j := range v {
					v[j] = rng.Float64()
				}
				if err := ms.Add(v); err != nil {
					t.Fatal(err)
				}
			}
			pt, err := PointWith(ms, c.f, MethodAuto)
			if err != nil {
				t.Fatalf("d=%d f=%d seed=%d: %v", c.d, c.f, seed, err)
			}
			in, err := Contains(ms, c.f, pt, 1e-6)
			if err != nil {
				t.Fatalf("d=%d f=%d seed=%d: verify: %v", c.d, c.f, seed, err)
			}
			if !in {
				t.Fatalf("d=%d f=%d seed=%d: point %v outside Γ(Y)", c.d, c.f, seed, pt)
			}
		}
	}
}
