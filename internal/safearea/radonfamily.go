// Per-B-set incremental Γ walk for the Radon regime: the restricted-async
// algorithm at f = 1 reduces each round to the mean of the Radon points of
// every (d+2)-subset of a process's B set. B sets of sibling processes in
// one round are single-member deltas of each other (each holds "everyone
// except one straggler"), so the C(|B|−1, d+2) subsets avoiding the delta
// — the vast majority — have identical Γ-points. RadonFamily materializes
// one B set's subset points in canonical (lexicographic) order and can be
// built from a sibling family by recomputing only the subsets containing
// the changed slot; reused points are bit-identical to a from-scratch walk
// because they ARE the from-scratch points (the family is a
// representation, not an approximation — the same contract as
// Incremental).
package safearea

import (
	"fmt"

	"repro/internal/combin"
	"repro/internal/geometry"
)

// RadonFamily holds the Γ-points of every k-subset of a canonical
// (origin-sorted) candidate pool, in lexicographic subset order. It is
// immutable after construction; core.Engine shares families across
// goroutines and rounds.
type RadonFamily struct {
	f, k   int
	method Method
	vals   []geometry.Vector // owned clones of the pool members, in order
	pts    []geometry.Vector // Γ-point per lex-rank subset
}

// newFamilyShell validates the pool and prepares the point slots.
func newFamilyShell(vals []geometry.Vector, f, k int, method Method) (*RadonFamily, error) {
	n := len(vals)
	if k <= 0 || k > n {
		return nil, fmt.Errorf("safearea: radon family subset size %d of %d members", k, n)
	}
	total := combin.Binomial(n, k)
	if total <= 0 {
		return nil, fmt.Errorf("safearea: radon family C(%d, %d) overflow", n, k)
	}
	rf := &RadonFamily{f: f, k: k, method: method,
		vals: make([]geometry.Vector, n), pts: make([]geometry.Vector, total)}
	for i, v := range vals {
		rf.vals[i] = v.Clone()
	}
	return rf, nil
}

// pointOf computes one subset's Γ-point through the identical ladder the
// engine's from-scratch path uses (PointWith on the subset multiset), so
// family points are bit-identical to uncached solves.
func (rf *RadonFamily) pointOf(idx []int) (geometry.Vector, error) {
	ms := geometry.NewMultiset(rf.vals[0].Dim())
	for _, j := range idx {
		if err := ms.Add(rf.vals[j]); err != nil {
			return nil, err
		}
	}
	return PointWith(ms, rf.f, rf.method)
}

// NewRadonFamily materializes the family from scratch. The solved count is
// the number of Γ-point computations performed (every subset).
func NewRadonFamily(vals []geometry.Vector, f, k int, method Method) (*RadonFamily, int, error) {
	rf, err := newFamilyShell(vals, f, k, method)
	if err != nil {
		return nil, 0, err
	}
	r := 0
	var perr error
	err = combin.Combinations(len(rf.vals), k, func(idx []int) bool {
		pt, err := rf.pointOf(idx)
		if err != nil {
			perr = err
			return false
		}
		rf.pts[r] = pt
		r++
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	if perr != nil {
		return nil, 0, perr
	}
	return rf, len(rf.pts), nil
}

// NewRadonFamilyFrom builds the family for a pool that equals prev's pool
// with member jOld removed and a new value inserted at slot iNew (so
// vals[iNew] is the new member and the remaining members appear in both
// pools in the same order). Subsets avoiding iNew reuse prev's points
// outright; only subsets containing the new member are solved. It returns
// the reused and solved counts alongside the family.
func NewRadonFamilyFrom(prev *RadonFamily, vals []geometry.Vector, iNew, jOld int, f, k int, method Method) (*RadonFamily, int, int, error) {
	if prev == nil || prev.f != f || prev.k != k || prev.method != method ||
		len(prev.vals) != len(vals) {
		rf, solved, err := NewRadonFamily(vals, f, k, method)
		return rf, 0, solved, err
	}
	rf, err := newFamilyShell(vals, f, k, method)
	if err != nil {
		return nil, 0, 0, err
	}
	n := len(vals)
	mapped := make([]int, k)
	r := 0
	reused, solved := 0, 0
	var perr error
	err = combin.Combinations(n, k, func(idx []int) bool {
		containsNew := false
		for _, j := range idx {
			if j == iNew {
				containsNew = true
				break
			}
		}
		if !containsNew {
			// Map the slots through the common-member correspondence:
			// slot s here is common index s (s < iNew) or s−1 (s > iNew);
			// common index c is prev slot c (c < jOld) or c+1 (c ≥ jOld).
			for t, s := range idx {
				c := s
				if s > iNew {
					c = s - 1
				}
				ps := c
				if c >= jOld {
					ps = c + 1
				}
				mapped[t] = ps
			}
			prevRank, err := combin.Rank(n, mapped)
			if err != nil {
				perr = err
				return false
			}
			rf.pts[r] = prev.pts[prevRank]
			reused++
			r++
			return true
		}
		pt, err := rf.pointOf(idx)
		if err != nil {
			perr = err
			return false
		}
		rf.pts[r] = pt
		solved++
		r++
		return true
	})
	if err != nil {
		return nil, 0, 0, err
	}
	if perr != nil {
		return nil, 0, 0, perr
	}
	return rf, reused, solved, nil
}

// MeanPoint returns the average of the family's points in lexicographic
// subset order — bit-identical to the engine's serial reduction over the
// same canonical pool — along with the family size.
func (rf *RadonFamily) MeanPoint() (geometry.Vector, int, error) {
	avg, err := geometry.Mean(rf.pts)
	if err != nil {
		return nil, 0, err
	}
	return avg, len(rf.pts), nil
}
