// Package safearea computes the paper's safe area
//
//	Γ(Y) = ∩_{T ⊆ Y, |T| = |Y|−f} H(T)            (paper eq. (1))
//
// — the intersection of the convex hulls of all subsets of Y that exclude f
// members. Lemma 1 guarantees Γ(Y) ≠ ∅ whenever |Y| ≥ (d+1)f+1; the Exact
// BVC algorithm decides on a deterministic point of Γ(S), and the
// approximate algorithms collect points of Γ(Φ(C)) per round.
//
// Three point-selection strategies are provided and benchmarked as an
// ablation (BenchmarkSafePoint in the root package; docs/ARCHITECTURE.md
// describes the auto-selection ladder):
//
//   - MethodLexMinLP: the paper's §2.2 linear program, extended to return
//     the lexicographically minimal point (deterministic across processes).
//   - MethodRadon: for f = 1, the Radon point of the first d+2 members is a
//     Tverberg point and therefore lies in Γ(Y); O(d³) instead of an LP.
//   - MethodTverbergLift: for any f with |Y| ≥ (d+1)f+1, a Tverberg point
//     of the first (d+1)f+1 members via Sarkaria's lifting — polynomial
//     where the joint lex-min LP grows combinatorially, and the key to the
//     d ≥ 2, f ≥ 2 grids. The partition is verified geometrically and the
//     joint LP is the deterministic fallback.
//   - MethodTverbergSearch: exhaustive Tverberg partition search (small
//     inputs; used for validation).
//
// For d = 1 everything collapses to closed form: Γ(Y) is the interval
// [y₍f+1₎, y₍|Y|−f₎] of the sorted members.
package safearea

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/combin"
	"repro/internal/geometry"
	"repro/internal/hull"
	"repro/internal/tverberg"
)

// Method selects how a point of Γ(Y) is computed.
type Method int

// Point-selection methods.
const (
	// MethodAuto picks the cheapest applicable method: closed form for
	// d = 1, Radon for f = 1, otherwise the lex-min LP.
	MethodAuto Method = iota + 1
	// MethodLexMinLP solves the paper's LP, lexicographically minimized.
	MethodLexMinLP
	// MethodRadon uses the Radon-point fast path (requires f == 1).
	MethodRadon
	// MethodTverbergSearch exhaustively searches for a Tverberg partition
	// and returns its Tverberg point (small |Y| only).
	MethodTverbergSearch
	// MethodTverbergLift computes a Tverberg point of the first (d+1)f+1
	// members via Sarkaria's lifted colorful-Carathéodory search (any f,
	// polynomial), verifying the partition and falling back to the lex-min
	// LP if verification fails.
	MethodTverbergLift
)

func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodLexMinLP:
		return "lexmin-lp"
	case MethodRadon:
		return "radon"
	case MethodTverbergSearch:
		return "tverberg-search"
	case MethodTverbergLift:
		return "tverberg-lift"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ErrEmpty is returned by Point when Γ(Y) is empty.
var ErrEmpty = errors.New("safearea: Γ(Y) is empty")

// SubsetCount returns the number of hulls intersected in Γ(Y):
// C(|Y|, |Y|−f) = C(|Y|, f).
func SubsetCount(size, f int) int64 {
	return combin.Binomial(size, f)
}

// validate checks the (Y, f) pair and returns |Y| − f.
func validate(y *geometry.Multiset, f int) (int, error) {
	if y == nil || y.Len() == 0 {
		return 0, errors.New("safearea: empty multiset")
	}
	if f < 0 {
		return 0, fmt.Errorf("safearea: negative f = %d", f)
	}
	keep := y.Len() - f
	if keep <= 0 {
		return 0, fmt.Errorf("safearea: |Y| = %d with f = %d leaves no subset", y.Len(), f)
	}
	return keep, nil
}

// groups collects the point sets of all (|Y|−f)-subsets of Y for the joint
// hull-intersection LP. The subsets are streamed from combin.Combinations
// into a single flat backing array (two allocations total instead of one per
// subset); the vectors themselves are shared with y.
func groups(y *geometry.Multiset, keep int) ([][]geometry.Vector, error) {
	count := combin.Binomial(y.Len(), keep)
	if count <= 0 {
		return nil, fmt.Errorf("safearea: no size-%d subsets of |Y| = %d", keep, y.Len())
	}
	flat := make([]geometry.Vector, 0, int(count)*keep)
	out := make([][]geometry.Vector, 0, count)
	err := combin.Combinations(y.Len(), keep, func(idx []int) bool {
		start := len(flat)
		for _, j := range idx {
			flat = append(flat, y.At(j))
		}
		out = append(out, flat[start:len(flat):len(flat)])
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// IsEmpty reports whether Γ(Y) is empty for the given fault bound.
func IsEmpty(y *geometry.Multiset, f int) (bool, error) {
	keep, err := validate(y, f)
	if err != nil {
		return false, err
	}
	if f == 0 {
		return false, nil // Γ(Y) = H(Y), never empty for non-empty Y
	}
	if y.Dim() == 1 {
		lo, hi, err := interval(y, f)
		if err != nil {
			return false, err
		}
		return lo > hi, nil
	}
	gs, err := groups(y, keep)
	if err != nil {
		return false, err
	}
	return hull.IntersectionEmpty(gs)
}

// Contains reports whether z ∈ Γ(Y) within tolerance tol (hull.DefaultTol
// if tol ≤ 0): z must lie in the hull of every (|Y|−f)-subset.
func Contains(y *geometry.Multiset, f int, z geometry.Vector, tol float64) (bool, error) {
	return ContainsParallel(y, f, z, tol, 1)
}

// ContainsParallel is Contains with the C(|Y|, f) independent hull-membership
// LPs fanned across a bounded worker pool (workers ≤ 1 or a single subset
// runs serially). Subsets are streamed by lexicographic rank — workers pull
// ranks from a shared counter and reconstruct their subset with
// combin.Unrank, so nothing is materialized — and the reduction is
// deterministic: the verdict is the conjunction over all subsets, and when
// several subsets fail (or error) the one with the lowest rank decides the
// reported error, exactly as in serial order.
func ContainsParallel(y *geometry.Multiset, f int, z geometry.Vector, tol float64, workers int) (bool, error) {
	keep, err := validate(y, f)
	if err != nil {
		return false, err
	}
	if z.Dim() != y.Dim() {
		return false, fmt.Errorf("safearea: point dimension %d, multiset dimension %d", z.Dim(), y.Dim())
	}
	total := combin.Binomial(y.Len(), keep)
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(workers) > total {
		workers = int(total)
	}

	if workers <= 1 {
		// Serial walk in revolving-door (Gray) order: consecutive subsets
		// differ by one swap, so the warm-started membership tester reuses
		// its previous simplex basis instead of re-running Phase 1. The
		// verdict is basis- and order-independent (feasibility of each
		// subset's LP). On an LP error the classic lexicographic walk
		// re-runs wholesale and its outcome — stop at the lowest-rank
		// event, failure or error — is returned verbatim, so error-path
		// results match the parallel reduction (and the pre-Gray serial
		// semantics) exactly.
		inside := true
		var cerr error
		pts := make([]geometry.Vector, keep)
		mt := hull.NewMembershipTester()
		err = combin.GrayCombinations(y.Len(), keep, func(idx []int, _, _ int) bool {
			for i, j := range idx {
				pts[i] = y.At(j)
			}
			ok, err := mt.Test(pts, z, tol)
			if err != nil {
				cerr = err
				return false
			}
			if !ok {
				inside = false
				return false
			}
			return true
		})
		if err != nil {
			return false, err
		}
		if cerr != nil {
			return containsLex(y, keep, z, tol)
		}
		return inside, nil
	}

	var (
		next      atomic.Int64
		eventRank atomic.Int64 // lowest rank that failed or errored
		mu        sync.Mutex
		eventErr  error
		wg        sync.WaitGroup
	)
	eventRank.Store(total)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			idx := make([]int, keep)
			pts := make([]geometry.Vector, keep)
			// One warm tester per worker: consecutive pulled ranks share
			// most of their subset, and the verdict is basis-independent.
			mt := hull.NewMembershipTester()
			for {
				r := next.Add(1) - 1
				if r >= total || r >= eventRank.Load() {
					return // ranks past the decisive event cannot change the result
				}
				idx, err := combin.Unrank(y.Len(), keep, r, idx)
				if err != nil {
					recordEvent(&eventRank, &mu, &eventErr, r, err)
					return
				}
				for i, j := range idx {
					pts[i] = y.At(j)
				}
				ok, err := mt.Test(pts, z, tol)
				if err != nil || !ok {
					recordEvent(&eventRank, &mu, &eventErr, r, err)
				}
			}
		}()
	}
	wg.Wait()
	if eventRank.Load() < total {
		mu.Lock()
		defer mu.Unlock()
		if eventErr != nil {
			return false, eventErr
		}
		return false, nil
	}
	return true, nil
}

// containsLex is the classic serial membership walk: subsets in
// lexicographic order, stopping at the first event — a non-containing
// subset or an LP error, whichever has the lower rank. It is the canonical
// semantics the parallel reduction reproduces; the Gray-order fast path
// delegates to it whenever an error surfaces.
func containsLex(y *geometry.Multiset, keep int, z geometry.Vector, tol float64) (bool, error) {
	inside := true
	var cerr error
	pts := make([]geometry.Vector, keep)
	err := combin.Combinations(y.Len(), keep, func(idx []int) bool {
		for i, j := range idx {
			pts[i] = y.At(j)
		}
		ok, err := hull.Contains(pts, z, tol)
		if err != nil {
			cerr = err
			return false
		}
		if !ok {
			inside = false
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	if cerr != nil {
		return false, cerr
	}
	return inside, nil
}

// recordEvent folds a failed/errored subset rank into the running minimum,
// keeping the error of the lowest rank (serial semantics).
func recordEvent(eventRank *atomic.Int64, mu *sync.Mutex, eventErr *error, r int64, err error) {
	mu.Lock()
	defer mu.Unlock()
	if r < eventRank.Load() {
		eventRank.Store(r)
		*eventErr = err
	}
}

// Point returns a deterministic point of Γ(Y) using MethodAuto.
// All correct processes calling Point on identical (Y, f) obtain the
// identical point — the property Exact BVC step 2 requires.
func Point(y *geometry.Multiset, f int) (geometry.Vector, error) {
	return PointWith(y, f, MethodAuto)
}

// PointWith returns a deterministic point of Γ(Y) computed with the given
// method. It returns ErrEmpty if Γ(Y) is empty (only possible when |Y| <
// (d+1)f+1; Lemma 1 guarantees non-emptiness above that threshold).
func PointWith(y *geometry.Multiset, f int, method Method) (geometry.Vector, error) {
	keep, err := validate(y, f)
	if err != nil {
		return nil, err
	}
	d := y.Dim()

	if method == MethodAuto {
		switch {
		case d == 1:
			lo, hi, err := interval(y, f)
			if err != nil {
				return nil, err
			}
			if lo > hi {
				return nil, ErrEmpty
			}
			return geometry.Vector{lo}, nil
		case f == 0:
			// Γ(Y) = H(Y): any member is inside; pick the lex-min member.
			return lexMinMember(y), nil
		case f == 1 && y.Len() >= d+2:
			method = MethodRadon
		case y.Len() >= (d+1)*f+1:
			// Above the Lemma 1 threshold the lifted Tverberg search is
			// polynomial and numerically robust where the joint LP over
			// C(|Y|, f) hulls is neither; every product candidate set
			// (exact S, restricted and async Φ(C)) lands here.
			method = MethodTverbergLift
		default:
			method = MethodLexMinLP
		}
	}

	switch method {
	case MethodLexMinLP:
		gs, err := groups(y, keep)
		if err != nil {
			return nil, err
		}
		pt, ok, err := hull.LexMinCommonPoint(gs)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, ErrEmpty
		}
		return pt, nil

	case MethodRadon:
		if f != 1 {
			return nil, fmt.Errorf("safearea: Radon method requires f = 1, got f = %d", f)
		}
		if y.Len() < d+2 {
			return nil, fmt.Errorf("safearea: Radon method needs |Y| ≥ d+2 = %d, got %d", d+2, y.Len())
		}
		part, err := tverberg.RadonOfFirst(y)
		if err != nil {
			return nil, err
		}
		return part.Point, nil

	case MethodTverbergSearch:
		part, ok, err := tverberg.Search(y, f+1)
		if err != nil {
			return nil, err
		}
		if !ok {
			// No Tverberg partition found. Γ may still be non-empty in
			// exotic cases; fall back to the LP to decide conclusively.
			return PointWith(y, f, MethodLexMinLP)
		}
		return part.Point, nil

	case MethodTverbergLift:
		if y.Len() < (d+1)*f+1 {
			// Below the Tverberg number the lifting does not apply; the
			// LP decides emptiness conclusively.
			return PointWith(y, f, MethodLexMinLP)
		}
		part, err := tverberg.Lift(y, f+1)
		if err == nil {
			if verr := tverberg.Verify(y, part, hull.DefaultTol); verr == nil {
				return part.Point, nil
			}
		}
		// Numerical failure or unverifiable partition: both are
		// deterministic outcomes, so every correct process takes the same
		// fallback and the decision stays canonical.
		return PointWith(y, f, MethodLexMinLP)

	default:
		return nil, fmt.Errorf("safearea: unknown method %v", method)
	}
}

// Interval returns the closed-form Γ(Y) = [y₍f+1₎, y₍|Y|−f₎] for d = 1
// multisets (members sorted ascending; 1-indexed as in the paper).
func Interval(y *geometry.Multiset, f int) (lo, hi float64, err error) {
	if _, err := validate(y, f); err != nil {
		return 0, 0, err
	}
	if y.Dim() != 1 {
		return 0, 0, fmt.Errorf("safearea: Interval requires d = 1, got d = %d", y.Dim())
	}
	return interval(y, f)
}

func interval(y *geometry.Multiset, f int) (lo, hi float64, err error) {
	vals := make([]float64, y.Len())
	for i := 0; i < y.Len(); i++ {
		vals[i] = y.At(i)[0]
	}
	sort.Float64s(vals)
	if f >= len(vals) {
		return 0, 0, fmt.Errorf("safearea: f = %d too large for |Y| = %d", f, len(vals))
	}
	return vals[f], vals[len(vals)-1-f], nil
}

// lexMinMember returns the lexicographically smallest member of y.
func lexMinMember(y *geometry.Multiset) geometry.Vector {
	best := y.At(0)
	for i := 1; i < y.Len(); i++ {
		if y.At(i).Compare(best) < 0 {
			best = y.At(i)
		}
	}
	return best.Clone()
}
