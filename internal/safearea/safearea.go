// Package safearea computes the paper's safe area
//
//	Γ(Y) = ∩_{T ⊆ Y, |T| = |Y|−f} H(T)            (paper eq. (1))
//
// — the intersection of the convex hulls of all subsets of Y that exclude f
// members. Lemma 1 guarantees Γ(Y) ≠ ∅ whenever |Y| ≥ (d+1)f+1; the Exact
// BVC algorithm decides on a deterministic point of Γ(S), and the
// approximate algorithms collect points of Γ(Φ(C)) per round.
//
// Three point-selection strategies are provided and benchmarked as an
// ablation (BenchmarkSafePoint in the root package; docs/ARCHITECTURE.md
// describes the auto-selection ladder):
//
//   - MethodLexMinLP: the paper's §2.2 linear program, extended to return
//     the lexicographically minimal point (deterministic across processes).
//   - MethodRadon: for f = 1, the Radon point of the first d+2 members is a
//     Tverberg point and therefore lies in Γ(Y); O(d³) instead of an LP.
//   - MethodTverbergLift: for any f with |Y| ≥ (d+1)f+1, a Tverberg point
//     of the first (d+1)f+1 members via Sarkaria's lifting — polynomial
//     where the joint lex-min LP grows combinatorially, and the key to the
//     d ≥ 2, f ≥ 2 grids. The partition is verified geometrically; on
//     failure the ladder scans (f+1)-partitions for one whose block hulls
//     admit a common point (any such point is in Γ), with the joint LP as
//     the conclusive last resort. Proportionally degenerate inputs are
//     affinely normalized to unit spread first (Γ is affine-equivariant).
//   - MethodTverbergSearch: exhaustive Tverberg partition search (small
//     inputs; used for validation).
//
// For d = 1 everything collapses to closed form: Γ(Y) is the interval
// [y₍f+1₎, y₍|Y|−f₎] of the sorted members.
package safearea

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/combin"
	"repro/internal/geometry"
	"repro/internal/hull"
	"repro/internal/tverberg"
)

// Method selects how a point of Γ(Y) is computed.
type Method int

// Point-selection methods.
const (
	// MethodAuto picks the cheapest applicable method: closed form for
	// d = 1, Radon for f = 1, otherwise the lex-min LP.
	MethodAuto Method = iota + 1
	// MethodLexMinLP solves the paper's LP, lexicographically minimized.
	MethodLexMinLP
	// MethodRadon uses the Radon-point fast path (requires f == 1).
	MethodRadon
	// MethodTverbergSearch exhaustively searches for a Tverberg partition
	// and returns its Tverberg point (small |Y| only).
	MethodTverbergSearch
	// MethodTverbergLift computes a Tverberg point of the first (d+1)f+1
	// members via Sarkaria's lifted colorful-Carathéodory search (any f,
	// polynomial), verifying the partition and falling back to the
	// partition scan and then the lex-min LP if verification fails.
	MethodTverbergLift
)

func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodLexMinLP:
		return "lexmin-lp"
	case MethodRadon:
		return "radon"
	case MethodTverbergSearch:
		return "tverberg-search"
	case MethodTverbergLift:
		return "tverberg-lift"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ErrEmpty is returned by Point when Γ(Y) is empty.
var ErrEmpty = errors.New("safearea: Γ(Y) is empty")

// liftVerifyTol is the geometric tolerance for accepting a lifted Tverberg
// partition. The candidate multisets of late protocol rounds hold
// nearly-coincident points (the algorithm is converging), where the lifted
// search's point routinely verifies to 1e-6 but not to hull.DefaultTol —
// rejecting those sends an avalanche of solves down the far more expensive
// joint-LP fallback for no accuracy the consumers can observe (decisions
// are validity-checked end-to-end at the default tolerance and pass).
// PointOnPrefix certifies with the same tolerance, keeping prefix-shared
// points bit-identical to the full-set path.
const liftVerifyTol = 1e-6

// SubsetCount returns the number of hulls intersected in Γ(Y):
// C(|Y|, |Y|−f) = C(|Y|, f).
func SubsetCount(size, f int) int64 {
	return combin.Binomial(size, f)
}

// validate checks the (Y, f) pair and returns |Y| − f.
func validate(y *geometry.Multiset, f int) (int, error) {
	if y == nil || y.Len() == 0 {
		return 0, errors.New("safearea: empty multiset")
	}
	if f < 0 {
		return 0, fmt.Errorf("safearea: negative f = %d", f)
	}
	keep := y.Len() - f
	if keep <= 0 {
		return 0, fmt.Errorf("safearea: |Y| = %d with f = %d leaves no subset", y.Len(), f)
	}
	return keep, nil
}

// groups collects the point sets of all (|Y|−f)-subsets of Y for the joint
// hull-intersection LP. The subsets are streamed from combin.Combinations
// into a single flat backing array (two allocations total instead of one per
// subset); the vectors themselves are shared with y.
func groups(y *geometry.Multiset, keep int) ([][]geometry.Vector, error) {
	count := combin.Binomial(y.Len(), keep)
	if count <= 0 {
		return nil, fmt.Errorf("safearea: no size-%d subsets of |Y| = %d", keep, y.Len())
	}
	flat := make([]geometry.Vector, 0, int(count)*keep)
	out := make([][]geometry.Vector, 0, count)
	err := combin.Combinations(y.Len(), keep, func(idx []int) bool {
		start := len(flat)
		for _, j := range idx {
			flat = append(flat, y.At(j))
		}
		out = append(out, flat[start:len(flat):len(flat)])
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// IsEmpty reports whether Γ(Y) is empty for the given fault bound.
func IsEmpty(y *geometry.Multiset, f int) (bool, error) {
	keep, err := validate(y, f)
	if err != nil {
		return false, err
	}
	if f == 0 {
		return false, nil // Γ(Y) = H(Y), never empty for non-empty Y
	}
	if y.Dim() == 1 {
		lo, hi, err := interval(y, f)
		if err != nil {
			return false, err
		}
		return lo > hi, nil
	}
	gs, err := groups(y, keep)
	if err != nil {
		return false, err
	}
	return hull.IntersectionEmpty(gs)
}

// Contains reports whether z ∈ Γ(Y) within tolerance tol (hull.DefaultTol
// if tol ≤ 0): z must lie in the hull of every (|Y|−f)-subset.
func Contains(y *geometry.Multiset, f int, z geometry.Vector, tol float64) (bool, error) {
	return ContainsParallel(y, f, z, tol, 1)
}

// ContainsParallel is Contains with the C(|Y|, f) independent hull-membership
// LPs fanned across a bounded worker pool (workers ≤ 1 or a single subset
// runs serially). Subsets are streamed by lexicographic rank — workers pull
// ranks from a shared counter and reconstruct their subset with
// combin.Unrank, so nothing is materialized — and the reduction is
// deterministic: the verdict is the conjunction over all subsets, and when
// several subsets fail (or error) the one with the lowest rank decides the
// reported error, exactly as in serial order.
func ContainsParallel(y *geometry.Multiset, f int, z geometry.Vector, tol float64, workers int) (bool, error) {
	keep, err := validate(y, f)
	if err != nil {
		return false, err
	}
	if z.Dim() != y.Dim() {
		return false, fmt.Errorf("safearea: point dimension %d, multiset dimension %d", z.Dim(), y.Dim())
	}
	total := combin.Binomial(y.Len(), keep)
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(workers) > total {
		workers = int(total)
	}

	if workers <= 1 {
		// Serial walk in revolving-door (Gray) order: consecutive subsets
		// differ by one swap, so the warm-started membership tester reuses
		// its previous simplex basis instead of re-running Phase 1. The
		// verdict is basis- and order-independent (feasibility of each
		// subset's LP). On an LP error the classic lexicographic walk
		// re-runs wholesale and its outcome — stop at the lowest-rank
		// event, failure or error — is returned verbatim, so error-path
		// results match the parallel reduction (and the pre-Gray serial
		// semantics) exactly.
		inside := true
		var cerr error
		pts := make([]geometry.Vector, keep)
		mt := hull.NewMembershipTester()
		err = combin.GrayCombinations(y.Len(), keep, func(idx []int, _, _ int) bool {
			for i, j := range idx {
				pts[i] = y.At(j)
			}
			ok, err := mt.Test(pts, z, tol)
			if err != nil {
				cerr = err
				return false
			}
			if !ok {
				inside = false
				return false
			}
			return true
		})
		if err != nil {
			return false, err
		}
		if cerr != nil {
			return containsLex(y, keep, z, tol)
		}
		return inside, nil
	}

	var (
		next      atomic.Int64
		eventRank atomic.Int64 // lowest rank that failed or errored
		mu        sync.Mutex
		eventErr  error
		wg        sync.WaitGroup
	)
	eventRank.Store(total)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			idx := make([]int, keep)
			pts := make([]geometry.Vector, keep)
			// One warm tester per worker: consecutive pulled ranks share
			// most of their subset, and the verdict is basis-independent.
			mt := hull.NewMembershipTester()
			for {
				r := next.Add(1) - 1
				if r >= total || r >= eventRank.Load() {
					return // ranks past the decisive event cannot change the result
				}
				idx, err := combin.Unrank(y.Len(), keep, r, idx)
				if err != nil {
					recordEvent(&eventRank, &mu, &eventErr, r, err)
					return
				}
				for i, j := range idx {
					pts[i] = y.At(j)
				}
				ok, err := mt.Test(pts, z, tol)
				if err != nil || !ok {
					recordEvent(&eventRank, &mu, &eventErr, r, err)
				}
			}
		}()
	}
	wg.Wait()
	if eventRank.Load() < total {
		mu.Lock()
		defer mu.Unlock()
		if eventErr != nil {
			return false, eventErr
		}
		return false, nil
	}
	return true, nil
}

// containsLex is the classic serial membership walk: subsets in
// lexicographic order, stopping at the first event — a non-containing
// subset or an LP error, whichever has the lower rank. It is the canonical
// semantics the parallel reduction reproduces; the Gray-order fast path
// delegates to it whenever an error surfaces.
func containsLex(y *geometry.Multiset, keep int, z geometry.Vector, tol float64) (bool, error) {
	inside := true
	var cerr error
	pts := make([]geometry.Vector, keep)
	err := combin.Combinations(y.Len(), keep, func(idx []int) bool {
		for i, j := range idx {
			pts[i] = y.At(j)
		}
		ok, err := hull.Contains(pts, z, tol)
		if err != nil {
			cerr = err
			return false
		}
		if !ok {
			inside = false
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	if cerr != nil {
		return false, cerr
	}
	return inside, nil
}

// recordEvent folds a failed/errored subset rank into the running minimum,
// keeping the error of the lowest rank (serial semantics).
func recordEvent(eventRank *atomic.Int64, mu *sync.Mutex, eventErr *error, r int64, err error) {
	mu.Lock()
	defer mu.Unlock()
	if r < eventRank.Load() {
		eventRank.Store(r)
		*eventErr = err
	}
}

// Point returns a deterministic point of Γ(Y) using MethodAuto.
// All correct processes calling Point on identical (Y, f) obtain the
// identical point — the property Exact BVC step 2 requires.
func Point(y *geometry.Multiset, f int) (geometry.Vector, error) {
	return PointWith(y, f, MethodAuto)
}

// PointWith returns a deterministic point of Γ(Y) computed with the given
// method. It returns ErrEmpty if Γ(Y) is empty (only possible when |Y| <
// (d+1)f+1; Lemma 1 guarantees non-emptiness above that threshold).
func PointWith(y *geometry.Multiset, f int, method Method) (geometry.Vector, error) {
	keep, err := validate(y, f)
	if err != nil {
		return nil, err
	}
	d := y.Dim()

	// Degenerate-spread shortcut: when every member lies within the
	// geometric tolerance of every other (the converging tail of a
	// protocol run — spreads decay geometrically, so late rounds sit at
	// 1e-8 and below), every subset hull contains every member to within
	// that tolerance, and the lexicographically smallest member is a
	// deterministic within-tolerance Γ-point. Grinding the solvers on
	// these all-noise slivers is where the fragile regime burned its time.
	if d > 1 && f > 0 && y.Len() > keep && multisetSpread(y) <= hull.DefaultTol {
		return lexMinMember(y), nil
	}

	if method == MethodAuto {
		switch {
		case d == 1:
			lo, hi, err := interval(y, f)
			if err != nil {
				return nil, err
			}
			if lo > hi {
				return nil, ErrEmpty
			}
			return geometry.Vector{lo}, nil
		case f == 0:
			// Γ(Y) = H(Y): any member is inside; pick the lex-min member.
			return lexMinMember(y), nil
		case f == 1 && y.Len() >= d+2:
			method = MethodRadon
		case y.Len() >= (d+1)*f+1:
			// Above the Lemma 1 threshold the lifted Tverberg search is
			// polynomial and numerically robust where the joint LP over
			// C(|Y|, f) hulls is neither; every product candidate set
			// (exact S, restricted and async Φ(C)) lands here.
			method = MethodTverbergLift
		default:
			method = MethodLexMinLP
		}
	}

	// Normalize proportionally degenerate inputs for the numeric-heavy
	// methods: the solvers' tolerances are absolute and tuned for O(1)
	// data, but mid-run candidate sets span ever-smaller ranges as the
	// protocol converges. Γ is affine-equivariant — Γ(aY+b) = a·Γ(Y)+b,
	// and the lex-min point maps along — so the set is translated and
	// scaled to unit spread, solved there, and the point mapped back. The
	// parameters derive from exactly the members the method reads (the
	// lift's (d+1)f+1-prefix, or all members for the joint LP), keeping
	// prefix-certified points bit-identical to the full-set path.
	if method == MethodTverbergLift || method == MethodLexMinLP {
		pl := y.Len()
		if m := (d+1)*f + 1; method == MethodTverbergLift && m < pl {
			pl = m
		}
		if lo, spread := normParamsOf(y, pl); spread > 0 && (spread < 0.25 || spread > 4) {
			pt, err := PointWith(normalizeMultiset(y, lo, spread), f, method)
			if err != nil {
				return nil, err
			}
			return denormalizePoint(pt, lo, spread), nil
		}
	}

	switch method {
	case MethodLexMinLP:
		gs, err := groups(y, keep)
		if err != nil {
			return nil, err
		}
		pt, ok, err := hull.LexMinCommonPoint(gs)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, ErrEmpty
		}
		return pt, nil

	case MethodRadon:
		if f != 1 {
			return nil, fmt.Errorf("safearea: Radon method requires f = 1, got f = %d", f)
		}
		if y.Len() < d+2 {
			return nil, fmt.Errorf("safearea: Radon method needs |Y| ≥ d+2 = %d, got %d", d+2, y.Len())
		}
		part, err := tverberg.RadonOfFirst(y)
		if err != nil {
			return nil, err
		}
		return part.Point, nil

	case MethodTverbergSearch:
		part, ok, err := tverberg.Search(y, f+1)
		if err != nil {
			return nil, err
		}
		if !ok {
			// No Tverberg partition found. Γ may still be non-empty in
			// exotic cases; fall back to the LP to decide conclusively.
			return PointWith(y, f, MethodLexMinLP)
		}
		return part.Point, nil

	case MethodTverbergLift:
		if y.Len() < (d+1)*f+1 {
			// Below the Tverberg number the lifting does not apply; the
			// LP decides emptiness conclusively.
			return PointWith(y, f, MethodLexMinLP)
		}
		part, err := tverberg.Lift(y, f+1)
		if err == nil {
			if verr := tverberg.Verify(y, part, liftVerifyTol); verr == nil {
				return part.Point, nil
			}
		}
		// The lifted partition failed (numerically or geometrically) —
		// a deterministic outcome, so every correct process takes the
		// same fallback chain. On this branch |Y| ≥ (d+1)f+1, so a
		// Tverberg partition EXISTS (Tverberg's theorem): enumerate
		// partitions in canonical order and accept the first whose block
		// hulls admit a common point — that point lies in Γ(Y) (removing
		// any f members leaves at least one block intact), each probe is
		// a tiny (f+1)-group LP, and the walk is deterministic. The
		// combinatorial joint lex-min LP over all C(|Y|, f) hulls — the
		// historical fallback, and the one solver these degenerate
		// cluster-plus-outlier slivers can exhaust — becomes the true
		// last resort, consulted only if the scan finds nothing.
		if pt, ok := scanTverbergPoint(y, f); ok {
			return pt, nil
		}
		return PointWith(y, f, MethodLexMinLP)

	default:
		return nil, fmt.Errorf("safearea: unknown method %v", method)
	}
}

// Interval returns the closed-form Γ(Y) = [y₍f+1₎, y₍|Y|−f₎] for d = 1
// multisets (members sorted ascending; 1-indexed as in the paper).
func Interval(y *geometry.Multiset, f int) (lo, hi float64, err error) {
	if _, err := validate(y, f); err != nil {
		return 0, 0, err
	}
	if y.Dim() != 1 {
		return 0, 0, fmt.Errorf("safearea: Interval requires d = 1, got d = %d", y.Dim())
	}
	return interval(y, f)
}

func interval(y *geometry.Multiset, f int) (lo, hi float64, err error) {
	vals := make([]float64, y.Len())
	for i := 0; i < y.Len(); i++ {
		vals[i] = y.At(i)[0]
	}
	sort.Float64s(vals)
	if f >= len(vals) {
		return 0, 0, fmt.Errorf("safearea: f = %d too large for |Y| = %d", f, len(vals))
	}
	return vals[f], vals[len(vals)-1-f], nil
}

// normParamsOf returns the per-coordinate minima and the maximum
// coordinate spread of y's first pl members — the affine normalization
// parameters of the degenerate-input rescale.
func normParamsOf(y *geometry.Multiset, pl int) (geometry.Vector, float64) {
	d := y.Dim()
	lo := geometry.NewVector(d)
	var spread float64
	for l := 0; l < d; l++ {
		mn, mx := y.At(0)[l], y.At(0)[l]
		for i := 1; i < pl; i++ {
			v := y.At(i)[l]
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		lo[l] = mn
		if s := mx - mn; s > spread {
			spread = s
		}
	}
	return lo, spread
}

// normalizeMultiset maps every member x to (x − lo)/spread.
func normalizeMultiset(y *geometry.Multiset, lo geometry.Vector, spread float64) *geometry.Multiset {
	ny := geometry.NewMultiset(y.Dim())
	inv := 1 / spread
	for i := 0; i < y.Len(); i++ {
		v := y.At(i)
		nv := geometry.NewVector(y.Dim())
		for l := range nv {
			nv[l] = (v[l] - lo[l]) * inv
		}
		if err := ny.Add(nv); err != nil {
			panic(err) // dimensions match by construction
		}
	}
	return ny
}

// denormalizePoint maps a normalized-space point back: pt·spread + lo.
func denormalizePoint(pt geometry.Vector, lo geometry.Vector, spread float64) geometry.Vector {
	out := geometry.NewVector(len(pt))
	for l := range pt {
		out[l] = pt[l]*spread + lo[l]
	}
	return out
}

// scanTverbergPoint enumerates (f+1)-block partitions of y in canonical
// order and returns the lex-min common point of the first partition whose
// block hulls intersect. Feasibility of the tiny (f+1)-group LP is the
// Tverberg certificate: any common point of the blocks lies in Γ(Y),
// because removing f members leaves at least one block untouched. The walk
// is deterministic and bounded; false means no partition verified within
// the probe budget (the caller falls back to the joint LP).
func scanTverbergPoint(y *geometry.Multiset, f int) (geometry.Vector, bool) {
	const maxProbes = 20000
	var (
		found  geometry.Vector
		probes int
	)
	gs := make([][]geometry.Vector, f+1)
	err := combin.Partitions(y.Len(), f+1, func(blocks [][]int) bool {
		if probes++; probes > maxProbes {
			return false
		}
		for g, blk := range blocks {
			pts := make([]geometry.Vector, len(blk))
			for i, idx := range blk {
				pts[i] = y.At(idx)
			}
			gs[g] = pts
		}
		pt, ok, lerr := hull.LexMinCommonPoint(gs)
		if lerr != nil || !ok {
			return true // keep scanning
		}
		found = pt
		return false
	})
	if err != nil || found == nil {
		return nil, false
	}
	return found, true
}

// multisetSpread returns the maximum pairwise ∞-distance of y's members
// (the spread half of the normalization parameters).
func multisetSpread(y *geometry.Multiset) float64 {
	_, spread := normParamsOf(y, y.Len())
	return spread
}

// lexMinMember returns the lexicographically smallest member of y.
func lexMinMember(y *geometry.Multiset) geometry.Vector {
	best := y.At(0)
	for i := 1; i < y.Len(); i++ {
		if y.At(i).Compare(best) < 0 {
			best = y.At(i)
		}
	}
	return best.Clone()
}
