package harness

import "repro"

// engineOptions is the harness-wide simulation-engine configuration folded
// into every experiment's SimOptions. The zero value selects the library
// defaults (GOMAXPROCS for both worker pools, memoization on);
// cmd/bvcbench's -workers, -gammacache and -nodeworkers flags change it.
// Every configuration produces bit-identical experiment tables — the engine
// knobs only move work and memory around.
var engineOptions struct {
	workers      int
	disableCache bool
	nodeWorkers  int
}

// SetEngineOptions configures the simulation engines used by all
// experiments: workers bounds concurrent Γ-point solves within one node's
// Zi fan-out (0 = GOMAXPROCS, 1 = serial), disableCache turns off
// cross-process Γ-point memoization, and nodeWorkers bounds how many
// simulated nodes step concurrently per round (0 = GOMAXPROCS, 1 = serial).
func SetEngineOptions(workers int, disableCache bool, nodeWorkers int) {
	engineOptions.workers = workers
	engineOptions.disableCache = disableCache
	engineOptions.nodeWorkers = nodeWorkers
}

// withEngine folds the harness engine configuration into o.
func withEngine(o bvc.SimOptions) bvc.SimOptions {
	o.Workers = engineOptions.workers
	o.DisableGammaCache = engineOptions.disableCache
	o.NodeWorkers = engineOptions.nodeWorkers
	return o
}
