package harness

import "repro"

// engineOptions is the harness-wide Γ-point engine configuration folded into
// every experiment's SimOptions. The zero value selects the library default
// (GOMAXPROCS workers, memoization on); cmd/bvcbench's -workers and
// -gammacache flags change it. Every configuration produces bit-identical
// experiment tables — the engine knobs only move work and memory around.
var engineOptions struct {
	workers      int
	disableCache bool
}

// SetEngineOptions configures the Γ-point engine used by all experiments:
// workers bounds concurrent Γ-point solves (0 = GOMAXPROCS, 1 = serial) and
// disableCache turns off cross-process memoization.
func SetEngineOptions(workers int, disableCache bool) {
	engineOptions.workers = workers
	engineOptions.disableCache = disableCache
}

// withEngine folds the harness engine configuration into o.
func withEngine(o bvc.SimOptions) bvc.SimOptions {
	o.Workers = engineOptions.workers
	o.DisableGammaCache = engineOptions.disableCache
	return o
}
