package harness

import (
	"math"
	"testing"

	"repro"
)

func TestGammaBudgetExact(t *testing.T) {
	b := GammaBudget(bvc.ExactSync, 9, 2, 1, 0.05, false)
	if !b.Full || b.Rounds != 3 {
		t.Errorf("exact budget = %+v, want full with f+1 = 3 rounds", b)
	}
}

func TestGammaBudgetFullWhenAffordable(t *testing.T) {
	// Witness-optimized async at n = 5, f = 1: γ = 1/25, analytic bound
	// 75 — over the cap, so even small sweeps run the horizon. A coarse ε
	// brings the bound under the cap and the budget must stay analytic.
	b := GammaBudget(bvc.ApproxAsync, 5, 1, 1, 0.5, true)
	gamma := bvc.Gamma(bvc.ApproxAsync, 5, 1, true)
	if want := bvc.RoundBound(gamma, 1, 0.5); !b.Full || b.Rounds != want {
		t.Errorf("budget = %+v, want full analytic bound %d", b, want)
	}
}

func TestGammaBudgetHorizonScalesWithGamma(t *testing.T) {
	// Restricted async at n = 15, f = 2: γ = 1/(15·C(13,9)) ≈ 9.3·10⁻⁵,
	// analytic bound ≈ 3.2·10⁴ rounds. The γ-aware horizon must be
	// ⌈log₂(1/γ)⌉, clamped into [4, 24].
	b := GammaBudget(bvc.RestrictedAsync, 15, 2, 1, 0.05, false)
	if b.Full {
		t.Fatalf("budget = %+v, want horizon mode", b)
	}
	gamma := bvc.Gamma(bvc.RestrictedAsync, 15, 2, false)
	want := int(math.Ceil(math.Log2(1 / gamma)))
	if want > 24 {
		want = 24
	}
	if b.Rounds != want {
		t.Errorf("horizon = %d, want ⌈log₂(1/γ)⌉ = %d", b.Rounds, want)
	}
	if analytic := bvc.RoundBound(gamma, 1, 0.05); analytic < 1000 {
		t.Errorf("test premise broken: analytic bound %d is not blown up", analytic)
	}
	// The horizon grows only polynomially in n while the analytic bound
	// explodes combinatorially.
	b17 := GammaBudget(bvc.RestrictedAsync, 17, 2, 1, 0.05, false)
	if b17.Full || b17.Rounds > 24 {
		t.Errorf("n=17 budget = %+v, want clamped horizon", b17)
	}
}

func TestSweepCellNormalize(t *testing.T) {
	c, err := SweepCell{Variant: "rsync", D: 2, F: 1, Adversary: "none", Delay: "uniform"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.N != bvc.MinProcesses(bvc.RestrictedSync, 2, 1) {
		t.Errorf("tight bound n = %d", c.N)
	}
	if c.Delay != "none" {
		t.Errorf("synchronous cell kept delay %q", c.Delay)
	}
	if c.Epsilon != 0.05 {
		t.Errorf("default ε = %g", c.Epsilon)
	}
	if _, err := (SweepCell{Variant: "exact", D: 2, F: 2, N: 5, Adversary: "none"}).Normalize(); err == nil {
		t.Error("below-bound cell normalized without error")
	}
	if _, err := (SweepCell{Variant: "warp", D: 2, F: 1, Adversary: "none"}).Normalize(); err == nil {
		t.Error("unknown variant normalized without error")
	}
}

func TestFragileGamma(t *testing.T) {
	cases := []struct {
		cell SweepCell
		want bool
	}{
		// Restricted sync at the tight bound: candidate size n−f equals the
		// Lemma-1 threshold (d+1)f+1 — fragile for f ≥ 2.
		{SweepCell{Variant: "rsync", N: 11, D: 3, F: 2}, true},
		{SweepCell{Variant: "rsync", N: 13, D: 3, F: 2}, false}, // above threshold
		{SweepCell{Variant: "rsync", N: 5, D: 2, F: 1}, false},  // f = 1: Radon path
		{SweepCell{Variant: "rasync", N: 13, D: 2, F: 2}, true}, // rasync f ≥ 2: always
		{SweepCell{Variant: "rasync", N: 15, D: 2, F: 2}, true},
		{SweepCell{Variant: "rasync", N: 9, D: 2, F: 1}, false},
		{SweepCell{Variant: "exact", N: 9, D: 2, F: 2}, false},
		{SweepCell{Variant: "approx", N: 9, D: 2, F: 2}, false},
	}
	for _, tc := range cases {
		if got := tc.cell.FragileGamma(); got != tc.want {
			t.Errorf("FragileGamma(%+v) = %v, want %v", tc.cell, got, tc.want)
		}
	}
}

// TestRunSweepCellFullBudget: an exact cell runs to termination and
// verifies under the full regime.
func TestRunSweepCellFullBudget(t *testing.T) {
	out, err := RunSweepCell(SweepCell{Variant: "exact", D: 2, F: 1, Adversary: "equivocate", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verified || out.VerifyMode != "exact" || !out.Budget.Full {
		t.Errorf("outcome %+v, want verified full-budget exact run", out)
	}
	if out.Rounds != out.Cell.F+1 {
		t.Errorf("rounds = %d, want f+1 = %d", out.Rounds, out.Cell.F+1)
	}
}

// TestRunSweepCellHorizonBudget: a restricted cell over the cap runs the
// γ-horizon and is judged by contraction + validity.
func TestRunSweepCellHorizonBudget(t *testing.T) {
	out, err := RunSweepCell(SweepCell{Variant: "rsync", D: 2, F: 1, Adversary: "lure", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Budget.Full {
		t.Fatalf("budget %+v, want horizon mode", out.Budget)
	}
	if out.Rounds != out.Budget.Rounds {
		t.Errorf("executed %d rounds, budget %d", out.Rounds, out.Budget.Rounds)
	}
	if !out.Verified || out.VerifyMode != "contraction+validity" || !out.Contracted || !out.ValidOK {
		t.Errorf("outcome %+v, want contracted and valid", out)
	}
	if !(out.SpreadEnd < out.SpreadStart) {
		t.Errorf("range did not contract: %g → %g", out.SpreadStart, out.SpreadEnd)
	}
}

// TestRunSweepCellDeterministic: identical cells produce identical
// measured outcomes (the property resume and shard merging rely on).
func TestRunSweepCellDeterministic(t *testing.T) {
	cell := SweepCell{Variant: "approx", D: 2, F: 1, Adversary: "mixed", Delay: "exponential", Seed: 11}
	a, err := RunSweepCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweepCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || a.Rounds != b.Rounds ||
		a.SpreadStart != b.SpreadStart || a.SpreadEnd != b.SpreadEnd || a.Verified != b.Verified {
		t.Errorf("re-run diverged:\n%+v\n%+v", a, b)
	}
}
