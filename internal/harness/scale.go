package harness

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
)

// E10RowCells are the committed E10 restricted/async γ-budget rows, also
// measured as individual BENCH records (named by E10RowName) so the
// trajectory tracks the Γ-engine hot path per row — these n = 15 cells are
// where the incremental Γ layers (sub-family memo, round-level memo,
// warm-started solves) must show, and CI's reuse gate checks their cache
// counters stay nonzero.
var E10RowCells = []SweepCell{
	{Variant: "rsync", D: 3, F: 2, N: 15, Adversary: "mixed", Seed: 1},
	{Variant: "approx", D: 4, F: 2, N: 15, Adversary: "lure", Delay: "exponential", Seed: 1},
	// Formerly fragile cells (FragileGamma), unlocked by the revised
	// simplex core: the restricted-sync Lemma-1 tight bound and a
	// restricted-async f = 2 row. The rasync row runs the
	// shifted-exponential delay model, so it also exercises nonzero
	// lookahead under a heavy-tailed schedule.
	{Variant: "rsync", D: 3, F: 2, N: 11, Adversary: "mixed", Seed: 1},
	{Variant: "rasync", D: 2, F: 2, N: 13, Adversary: "mixed", Delay: "shiftedexp", Seed: 1},
}

// E10RowName returns the BENCH record name of one E10RowCells entry, e.g.
// "e10/rsync-n15".
func E10RowName(c SweepCell) string {
	return fmt.Sprintf("e10/%s-n%d", c.Variant, c.N)
}

// E10RowRunner adapts one E10 row cell to the experiment-runner shape used
// by the BENCH measurement protocol (MeasureTable).
func E10RowRunner(c SweepCell) func() (*Table, error) {
	return func() (*Table, error) {
		out, err := RunSweepCell(c)
		if err != nil {
			return nil, err
		}
		return &Table{ID: E10RowName(c), Pass: out.Verified}, nil
	}
}

// E10ScaleSweep pushes the verified grids to the largest (n, d, f)
// configurations the engine stack makes practical — up to n = 13 processes
// at d ≥ 3 with f > 1, the regime the lifted Tverberg Γ-point method and
// cross-node parallel stepping (SimOptions.NodeWorkers) exist for. Exact
// BVC runs at the tight bound under full-strength adversaries (f Byzantine
// processes at once, unlike E2's single-adversary rows); the asynchronous
// algorithm runs at n = 13 on a fixed horizon and must contract its range
// while staying valid. Every execution is verified, and the e10 record in
// the BENCH_*.json trajectory measures this sweep with serial vs parallel
// node stepping.
func E10ScaleSweep(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Scale sweep: largest verified (n, d, f) grids",
		Claim: "Theorems 3 and 5 hold unchanged at n = 13, d ≥ 3, f up to 3 with full-strength adversaries; at n = 15 the per-round contraction guarantees hold under γ-aware budgets",
		Columns: []string{
			"variant", "d", "f", "n", "adversary", "rounds", "messages", "agreement", "validity",
		},
		Pass: true,
	}
	rng := rand.New(rand.NewSource(seed))

	// Exact BVC at the tight synchronous bound. The adversary set scales
	// with f: all f Byzantine slots are used at once, mixing strategies.
	mkByz := func(cfg bvc.Config) []bvc.Byzantine {
		lo := make(bvc.Vector, cfg.D)
		hi := make(bvc.Vector, cfg.D)
		for i := 0; i < cfg.D; i++ {
			lo[i] = -3
			hi[i] = 7
		}
		strategies := []bvc.Strategy{bvc.StrategyEquivocate, bvc.StrategySilent, bvc.StrategyLure}
		byz := make([]bvc.Byzantine, 0, cfg.F)
		for k := 0; k < cfg.F; k++ {
			b := bvc.Byzantine{ID: cfg.N - 1 - k, Strategy: strategies[k%len(strategies)]}
			switch b.Strategy {
			case bvc.StrategyEquivocate:
				b.Target, b.Target2 = lo, hi
			case bvc.StrategyLure:
				b.Target = hi
			}
			byz = append(byz, b)
		}
		return byz
	}
	for _, df := range [][2]int{{3, 2}, {4, 2}, {3, 3}} {
		d, f := df[0], df[1]
		n := bvc.MinProcesses(bvc.ExactSync, d, f)
		cfg := bvc.Config{N: n, F: f, D: d, Lo: []float64{0}, Hi: []float64{1}}
		for _, adv := range []string{"none", fmt.Sprintf("mixed×%d", f)} {
			var byz []bvc.Byzantine
			if adv != "none" {
				byz = mkByz(cfg)
			}
			inputs := UniformInputs(rng, n, d, 0, 1)
			for _, b := range byz {
				inputs[b.ID] = nil
			}
			res, err := bvc.SimulateExact(cfg, inputs, byz, withEngine(bvc.SimOptions{Seed: seed}))
			if err != nil {
				return nil, fmt.Errorf("E10 exact d=%d f=%d %s: %w", d, f, adv, err)
			}
			agreeOK := res.VerifyExact() == nil
			validOK := res.VerifyValidity() == nil
			if !agreeOK || !validOK {
				t.Pass = false
			}
			t.AddRow("exact", d, f, n, adv, f+1, res.Messages, check(agreeOK), check(validOK))
		}
	}

	// Approximate asynchronous BVC at n = 13 (d = 4, f = 2) with the
	// Appendix-F witness optimization, on a fixed horizon under a lure
	// adversary and heavy-tailed delays. The full termination rule needs
	// Θ(n² log(1/ε)) rounds at this scale, so the horizon run checks the
	// per-round guarantees instead: the range must contract and every
	// decision must stay inside the correct inputs' hull.
	{
		const d, f, horizon = 4, 2, 4
		n := bvc.MinProcesses(bvc.ApproxAsync, d, f)
		cfg := bvc.Config{
			N: n, F: f, D: d, Epsilon: 0.05,
			Lo: []float64{0}, Hi: []float64{1},
			WitnessOptimization: true,
			MaxRounds:           horizon,
		}
		one := make(bvc.Vector, d)
		for i := range one {
			one[i] = 1
		}
		inputs := UniformInputs(rng, n, d, 0, 1)
		byz := []bvc.Byzantine{
			{ID: n - 1, Strategy: bvc.StrategyLure, Target: one},
			{ID: n - 2, Strategy: bvc.StrategySilent},
		}
		for _, b := range byz {
			inputs[b.ID] = nil
		}
		res, err := bvc.SimulateApproxAsync(cfg, inputs, byz, withEngine(bvc.SimOptions{
			Seed:  seed,
			Delay: bvc.DelaySpec{Kind: bvc.DelayExponential, Mean: 3 * time.Millisecond},
		}))
		if err != nil {
			return nil, fmt.Errorf("E10 async n=%d: %w", n, err)
		}
		spreads := historySpreads(res)
		contracted := len(spreads) > 1 && spreads[len(spreads)-1] < spreads[0]
		validOK := res.VerifyValidity() == nil
		if !contracted || !validOK {
			t.Pass = false
		}
		t.AddRow("approx-async/witness", d, f, n, "lure+silent", horizon, res.Messages,
			check(contracted)+" (ρ contracts)", check(validOK))
		if len(spreads) > 1 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"async n=%d range: ρ[0]=%.4g → ρ[%d]=%.4g over the fixed horizon",
				n, spreads[0], len(spreads)-1, spreads[len(spreads)-1]))
		}
	}
	// Past n = 13 the analytic termination bounds of the restricted
	// variants blow up with γ's combinatorial decay (restricted sync at
	// n = 15, f = 2 would need ≈ 4.7·10³ rounds, restricted async ≈
	// 3.2·10⁴), so the n = 15 rows run
	// under the γ-aware budget (GammaBudget): a ⌈log₂(1/γ)⌉ horizon judged
	// by range contraction plus validity — the per-round guarantees the
	// termination proof iterates. cmd/bvcsweep grids use the same budget.
	for _, cell := range []SweepCell{
		{Variant: "rsync", D: 3, F: 2, N: 15, Adversary: "mixed", Seed: seed},
		{Variant: "approx", D: 4, F: 2, N: 15, Adversary: "lure", Delay: "exponential", Seed: seed},
		// Formerly fragile rows (see E10RowCells): the rsync Lemma-1
		// tight bound and restricted-async f = 2 under the
		// shifted-exponential (lookahead-friendly heavy-tail) schedule.
		{Variant: "rsync", D: 3, F: 2, N: 11, Adversary: "mixed", Seed: seed},
		{Variant: "rasync", D: 2, F: 2, N: 13, Adversary: "mixed", Delay: "shiftedexp", Seed: seed},
	} {
		out, err := RunSweepCell(cell)
		if err != nil {
			return nil, fmt.Errorf("E10 γ-budget %s: %w", cell.Variant, err)
		}
		if !out.Verified {
			t.Pass = false
		}
		t.AddRow(out.Cell.Variant+"/γ-budget", out.Cell.D, out.Cell.F, out.Cell.N,
			out.Cell.Adversary, out.Rounds, out.Messages,
			check(out.Contracted)+" (ρ contracts)", check(out.ValidOK))
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s n=%d: γ=%.3g ⇒ analytic bound %d rounds; γ-budget horizon %d, ρ %.4g → %.4g",
			out.Cell.Variant, out.Cell.N, out.Budget.Gamma,
			bvc.RoundBound(out.Budget.Gamma, 1, out.Cell.Epsilon),
			out.Budget.Rounds, out.SpreadStart, out.SpreadEnd))
	}
	t.Notes = append(t.Notes,
		"exact rows use all f Byzantine slots simultaneously (equivocate/silent/lure mix)",
		"Γ-points at these sizes route through the lifted Tverberg search (the joint lex-min LP is combinatorial here)")
	return t, nil
}
