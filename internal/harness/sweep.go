package harness

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
)

// SweepCell is one grid point of a cmd/bvcsweep experiment sweep: a fully
// specified simulated execution. The zero values of Epsilon (→ 0.05) and
// N (→ the paper's tight bound) are resolved by Normalize.
type SweepCell struct {
	// Variant is one of "exact", "approx", "rsync", "rasync".
	Variant string
	// N, D, F are the process count, dimension and fault bound. N = 0
	// selects the paper's tight bound for the variant.
	N, D, F int
	// Adversary is one of "none", "mixed", "silent", "equivocate", "lure",
	// "random". "mixed" fills all F Byzantine slots with a rotating
	// equivocate/silent/lure mix (the full-strength configuration of E10).
	Adversary string
	// Delay is "none" (synchronous variants), "constant", "uniform",
	// "exponential" or "shiftedexp".
	Delay string
	// Seed drives inputs, schedules and adversary randomness.
	Seed int64
	// Epsilon is the ε of ε-agreement (approximate variants; 0 → 0.05).
	Epsilon float64
}

// SweepVariants lists the accepted SweepCell.Variant values.
var SweepVariants = []string{"exact", "approx", "rsync", "rasync"}

// SweepAdversaries lists the accepted SweepCell.Adversary values.
var SweepAdversaries = []string{"none", "mixed", "silent", "equivocate", "lure", "random"}

// SweepDelays lists the accepted SweepCell.Delay values for asynchronous
// variants; synchronous variants use "none". "shiftedexp" is the
// shifted-exponential model (constant floor + exponential tail): the
// heavy-tailed stress schedule with a nonzero Lookahead bound, so the
// discrete-event engine batches whole delay windows instead of single
// timestamps.
var SweepDelays = []string{"none", "constant", "uniform", "exponential", "shiftedexp"}

func (c SweepCell) variant() (bvc.Variant, error) {
	switch c.Variant {
	case "exact":
		return bvc.ExactSync, nil
	case "approx":
		return bvc.ApproxAsync, nil
	case "rsync":
		return bvc.RestrictedSync, nil
	case "rasync":
		return bvc.RestrictedAsync, nil
	default:
		return 0, fmt.Errorf("harness: unknown sweep variant %q", c.Variant)
	}
}

// Synchronous reports whether the cell's variant runs on the lock-step
// simulator (and therefore ignores the delay model).
func (c SweepCell) Synchronous() bool {
	return c.Variant == "exact" || c.Variant == "rsync"
}

// Normalize resolves defaults (tight-bound N, ε = 0.05, delay "none" for
// synchronous variants) and validates the cell. The returned cell is
// canonical: two specs expanding to the same execution produce identical
// normalized cells, which is what sweep resume and shard assignment key on.
func (c SweepCell) Normalize() (SweepCell, error) {
	v, err := c.variant()
	if err != nil {
		return c, err
	}
	if c.D < 1 || c.F < 0 {
		return c, fmt.Errorf("harness: sweep cell d=%d f=%d invalid", c.D, c.F)
	}
	min := bvc.MinProcesses(v, c.D, c.F)
	if c.N == 0 {
		c.N = min
	}
	if c.N < min {
		return c, fmt.Errorf("harness: %s requires n ≥ %d for d=%d f=%d, got n=%d",
			c.Variant, min, c.D, c.F, c.N)
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.Epsilon < 0 {
		return c, fmt.Errorf("harness: sweep cell ε=%g invalid", c.Epsilon)
	}
	if c.Synchronous() {
		c.Delay = "none"
	} else if c.Delay == "" || c.Delay == "none" {
		c.Delay = "constant"
	}
	okDelay := false
	for _, d := range SweepDelays {
		if c.Delay == d {
			okDelay = true
		}
	}
	if !okDelay {
		return c, fmt.Errorf("harness: unknown sweep delay %q", c.Delay)
	}
	okAdv := false
	for _, a := range SweepAdversaries {
		if c.Adversary == a {
			okAdv = true
		}
	}
	if !okAdv {
		return c, fmt.Errorf("harness: unknown sweep adversary %q", c.Adversary)
	}
	return c, nil
}

// FragileGamma reports whether the cell sits in the FORMERLY fragile Γ
// regime: restricted-sync cells with f ≥ 2 whose candidate sets are
// exactly at the Lemma-1 threshold (n − f = (d+1)f + 1 — tight-bound
// cells, where Γ degenerates toward a single point), and every
// restricted-async cell with f ≥ 2. The dense-tableau lex-min LP could
// fail on these degenerate hull intersections, so cmd/bvcsweep used to
// skip them by default; the revised LU-based simplex core retired that
// failure mode (internal/lp, pinned by internal/safearea's
// fragile-region regression corpus) and the cells now run by default.
// The predicate remains for the spec-level `exclude_fragile` escape hatch
// and for labeling the regime in reports.
func (c SweepCell) FragileGamma() bool {
	if c.F < 2 {
		return false
	}
	switch c.Variant {
	case "rasync":
		return true
	case "rsync":
		return c.N-c.F == (c.D+1)*c.F+1
	default:
		return false
	}
}

// Name returns the cell's stable record identifier, e.g.
// "sweep/rasync/n15d3f2/mixed/exponential/s1". Resume and shard merging
// key on it, so its format is part of the BENCH record contract
// (docs/BENCH_FORMAT.md).
func (c SweepCell) Name() string {
	return fmt.Sprintf("sweep/%s/n%dd%df%d/%s/%s/s%d",
		c.Variant, c.N, c.D, c.F, c.Adversary, c.Delay, c.Seed)
}

// SweepOutcome reports one executed sweep cell.
type SweepOutcome struct {
	// Cell is the normalized cell that ran.
	Cell SweepCell
	// Budget is the γ-aware round budget the run used.
	Budget RoundBudget
	// Rounds is the executed round count of a correct process; Messages the
	// total messages carried.
	Rounds   int
	Messages int64
	// Verified reports the overall geometric verification verdict;
	// VerifyMode names the regime ("exact", "eps-agreement" or
	// "contraction+validity"). Contracted and ValidOK break the verdict
	// down: whether the correct processes' range shrank over the run
	// (approximate variants with histories) and whether every decision
	// stayed inside the correct inputs' hull.
	Verified   bool
	VerifyMode string
	Contracted bool
	ValidOK    bool
	// SpreadStart / SpreadEnd are the correct processes' per-coordinate
	// range before and after the run (approximate variants with recorded
	// histories; 0 otherwise).
	SpreadStart, SpreadEnd float64
}

// byzantineFor builds the cell's adversary set. "mixed" fills all F slots
// with the rotating strategy mix of E10; the single-strategy names place
// one Byzantine process (matching E2's per-strategy rows).
func (c SweepCell) byzantineFor() []bvc.Byzantine {
	lo := make(bvc.Vector, c.D)
	hi := make(bvc.Vector, c.D)
	for i := 0; i < c.D; i++ {
		lo[i] = -3
		hi[i] = 7
	}
	one := make(bvc.Vector, c.D)
	for i := range one {
		one[i] = 1
	}
	switch c.Adversary {
	case "none":
		return nil
	case "mixed":
		strategies := []bvc.Strategy{bvc.StrategyEquivocate, bvc.StrategySilent, bvc.StrategyLure}
		byz := make([]bvc.Byzantine, 0, c.F)
		for k := 0; k < c.F; k++ {
			b := bvc.Byzantine{ID: c.N - 1 - k, Strategy: strategies[k%len(strategies)]}
			switch b.Strategy {
			case bvc.StrategyEquivocate:
				b.Target, b.Target2 = lo, hi
			case bvc.StrategyLure:
				b.Target = hi
			}
			byz = append(byz, b)
		}
		return byz
	case "silent":
		return []bvc.Byzantine{{ID: c.N - 1, Strategy: bvc.StrategySilent}}
	case "equivocate":
		return []bvc.Byzantine{{ID: c.N - 1, Strategy: bvc.StrategyEquivocate, Target: lo, Target2: hi}}
	case "lure":
		return []bvc.Byzantine{{ID: c.N - 1, Strategy: bvc.StrategyLure, Target: one}}
	case "random":
		return []bvc.Byzantine{{ID: c.N - 1, Strategy: bvc.StrategyRandom}}
	default:
		return nil
	}
}

func (c SweepCell) delaySpec() bvc.DelaySpec {
	switch c.Delay {
	case "uniform":
		return bvc.DelaySpec{Kind: bvc.DelayUniform, Min: time.Millisecond, Max: 10 * time.Millisecond}
	case "exponential":
		return bvc.DelaySpec{Kind: bvc.DelayExponential, Mean: 3 * time.Millisecond}
	case "shiftedexp":
		return bvc.DelaySpec{Kind: bvc.DelayShiftedExp, Min: time.Millisecond, Mean: 3 * time.Millisecond}
	default:
		return bvc.DelaySpec{Kind: bvc.DelayConstant, Mean: time.Millisecond}
	}
}

// RunSweepCell executes one sweep cell under its γ-aware round budget and
// verifies the execution geometrically. Full-budget runs must satisfy the
// variant's complete correctness conditions (Exact BVC: Agreement +
// Validity; approximate: ε-Agreement + Validity). Horizon runs — where the
// analytic termination bound has blown up with γ's combinatorial decay —
// must contract the correct processes' range over the horizon while every
// decision stays inside the correct inputs' hull (validity) — the
// per-round guarantees the termination proof iterates.
func RunSweepCell(c SweepCell) (*SweepOutcome, error) {
	c, err := c.Normalize()
	if err != nil {
		return nil, err
	}
	v, err := c.variant()
	if err != nil {
		return nil, err
	}
	budget := GammaBudget(v, c.N, c.F, 1, c.Epsilon, c.Variant == "approx")
	cfg := bvc.Config{
		N: c.N, F: c.F, D: c.D,
		Epsilon: c.Epsilon,
		Lo:      []float64{0}, Hi: []float64{1},
		// The witness optimization is what makes the §3.2 algorithm
		// practical at sweep scale (|Zi| ≤ n vs C(n, n−f)); grids always
		// use it.
		WitnessOptimization: c.Variant == "approx",
	}
	if !budget.Full {
		cfg.MaxRounds = budget.Rounds
	}

	rng := rand.New(rand.NewSource(c.Seed))
	inputs := UniformInputs(rng, c.N, c.D, 0, 1)
	byz := c.byzantineFor()
	for _, b := range byz {
		inputs[b.ID] = nil
	}
	opts := withEngine(bvc.SimOptions{Seed: c.Seed, Delay: c.delaySpec()})

	var res *bvc.Result
	switch c.Variant {
	case "exact":
		res, err = bvc.SimulateExact(cfg, inputs, byz, opts)
	case "approx":
		res, err = bvc.SimulateApproxAsync(cfg, inputs, byz, opts)
	case "rsync":
		res, err = bvc.SimulateRestrictedSync(cfg, inputs, byz, opts)
	case "rasync":
		res, err = bvc.SimulateRestrictedAsync(cfg, inputs, byz, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("harness: sweep cell %s: %w", c.Name(), err)
	}

	out := &SweepOutcome{Cell: c, Budget: budget, Messages: res.Messages}
	for _, p := range res.Processes {
		if !p.Byzantine {
			out.Rounds = p.Rounds
			break
		}
	}
	spreads := historySpreads(res)
	if len(spreads) > 0 {
		out.SpreadStart = spreads[0]
		out.SpreadEnd = spreads[len(spreads)-1]
	}
	out.Contracted = len(spreads) > 1 && spreads[len(spreads)-1] < spreads[0]
	out.ValidOK = res.VerifyValidity() == nil
	switch {
	case c.Variant == "exact":
		out.VerifyMode = "exact"
		out.Verified = res.VerifyExact() == nil
	case budget.Full:
		out.VerifyMode = "eps-agreement"
		out.Verified = res.VerifyApprox() == nil
	default:
		out.VerifyMode = "contraction+validity"
		out.Verified = out.Contracted && out.ValidOK
	}
	return out, nil
}
