package harness

import (
	"testing"

	"repro"
)

// MeasureTable measures one experiment runner (or the calibration
// kernel) with the standard benchmark machinery — the single measurement
// protocol behind every BENCH record, shared by cmd/bvcbench and
// cmd/bvcsweep so their ns/op stay comparable. The Γ-point caches are
// reset before every iteration so each measures a cold-cache run
// (within-run memoization still counts — that is product behavior);
// without the reset, later iterations would replay the process-wide memo
// table and ns/op would shrink with iteration count instead of measuring
// the engine.
//
// The returned GammaCounters are PER-OP: the Γ-reuse counter deltas of the
// final measured invocation divided by its iteration count. Snapshotting
// inside the benchmark closure matters — testing.Benchmark ramps through
// probe invocations before the measured one, and folding their counters in
// would inflate every per-op value by a factor that varies with the
// (timing-dependent) iteration schedule.
func MeasureTable(run func() (*Table, error)) (*Table, testing.BenchmarkResult, bvc.GammaCounters, error) {
	var (
		tbl      *Table
		rerr     error
		counters bvc.GammaCounters
	)
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		before := bvc.EngineGammaCounters()
		for i := 0; i < b.N; i++ {
			bvc.ResetEngineCaches()
			tbl, rerr = run()
			if rerr != nil {
				b.Fatalf("%v", rerr)
			}
		}
		delta := bvc.EngineGammaCounters().Sub(before)
		n := uint64(b.N)
		counters = bvc.GammaCounters{
			Solves:     delta.Solves / n,
			CacheHits:  delta.CacheHits / n,
			PrefixHits: delta.PrefixHits / n,
			RoundHits:  delta.RoundHits / n,
		}
	})
	return tbl, br, counters, rerr
}

// RunSerialNodes runs fn with simulated-node stepping forced serial
// (NodeWorkers = 1), restoring the configured engine options afterwards —
// the "e10/nodeworkers=1" companion measurement, which records the
// cross-node parallelism headroom in BENCH trajectories.
func RunSerialNodes(fn func() (*Table, error)) (*Table, error) {
	saved := engineOptions
	SetEngineOptions(saved.workers, saved.disableCache, 1)
	defer SetEngineOptions(saved.workers, saved.disableCache, saved.nodeWorkers)
	return fn()
}
