package harness

import "math"

// ExperimentOrder fixes the canonical emission order of the experiment
// suite — cmd/bvcbench's -json trajectory and cmd/bvcsweep's experiment
// units both follow it, so records stay in a stable order across tools.
var ExperimentOrder = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "f1", "f2"}

// Runners returns the experiment registry: one runner per ExperimentOrder
// entry, closed over the master seed and the trial count of the
// statistical experiments (E3).
func Runners(seed int64, trials int) map[string]func() (*Table, error) {
	return map[string]func() (*Table, error){
		"e1":  func() (*Table, error) { return E1SyncNecessity(seed) },
		"e2":  func() (*Table, error) { return E2ExactSufficiency(seed) },
		"e3":  func() (*Table, error) { return E3TverbergLemma(seed, trials) },
		"e4":  E4AsyncNecessity,
		"e5":  func() (*Table, error) { return E5AsyncConvergence(seed) },
		"e6":  func() (*Table, error) { return E6RestrictedSync(seed) },
		"e7":  func() (*Table, error) { return E7RestrictedAsync(seed) },
		"e8":  func() (*Table, error) { return E8CoordinateWise(seed) },
		"e9":  func() (*Table, error) { return E9WitnessAblation(seed) },
		"e10": func() (*Table, error) { return E10ScaleSweep(seed) },
		"f1":  F1Heptagon,
		"f2":  func() (*Table, error) { return F2ConvergenceSeries(seed) },
	}
}

// calibrateSink keeps the calibration kernel's result observable so the
// compiler cannot elide the work.
var calibrateSink float64

// Calibrate runs a fixed, deterministic CPU workload that is deliberately
// INDEPENDENT of every product kernel: it must measure only machine speed.
// Building it from the suite's own hot paths would be self-defeating — a
// regression in those kernels would slow the calibration record equally
// and cmd/benchdiff's normalization would cancel the very signal the gate
// exists to catch. The mix (floating-point arithmetic plus a pseudo-random
// walk over an L1/L2-sized buffer) approximates the suite's compute/memory
// balance without sharing any of its code.
//
// Both cmd/bvcbench and cmd/bvcsweep workers lead their trajectories with
// a benchmark of this kernel (the "calibrate" record); cmd/benchdiff uses
// the ratio between two such records to normalize away hardware-speed
// differences, including per-host differences between sweep shards (see
// docs/BENCH_FORMAT.md).
func Calibrate() (*Table, error) {
	x, s := 1.1, 0.0
	for i := 0; i < 4_000_000; i++ {
		x = x*1.0000001 + 1e-9
		if x > 2 {
			x--
		}
		s += math.Sqrt(x)
	}
	buf := make([]float64, 1<<15)
	for i := range buf {
		buf[i] = float64(i%97) * 0.5
	}
	idx := 1
	for iter := 0; iter < 150; iter++ {
		for j := range buf {
			idx = (idx*1103515245 + 12345) & (len(buf) - 1)
			buf[j] = buf[idx]*0.9999 + float64(j&7)
		}
	}
	calibrateSink = s + buf[0]
	return &Table{ID: "calibrate", Pass: true}, nil
}
