package harness

import (
	"math/rand"
	"strings"
	"testing"
)

func TestE1SyncNecessity(t *testing.T) {
	tbl, err := E1SyncNecessity(1)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Errorf("E1 failed:\n%s", tbl)
	}
	if len(tbl.Rows) != 10 { // d ∈ 1..5 × f ∈ 1..2
		t.Errorf("rows = %d, want 10", len(tbl.Rows))
	}
}

func TestE2ExactSufficiency(t *testing.T) {
	tbl, err := E2ExactSufficiency(2)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Errorf("E2 failed:\n%s", tbl)
	}
	if len(tbl.Rows) != 5*6 { // 5 (d,f) pairs × 6 adversaries
		t.Errorf("rows = %d, want 30", len(tbl.Rows))
	}
}

func TestE3TverbergLemma(t *testing.T) {
	tbl, err := E3TverbergLemma(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Errorf("E3 failed:\n%s", tbl)
	}
}

func TestE4AsyncNecessity(t *testing.T) {
	tbl, err := E4AsyncNecessity()
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Errorf("E4 failed:\n%s", tbl)
	}
	if len(tbl.Rows) != 5 {
		t.Errorf("rows = %d, want 5", len(tbl.Rows))
	}
}

func TestE5AsyncConvergence(t *testing.T) {
	tbl, err := E5AsyncConvergence(5)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Errorf("E5 failed:\n%s", tbl)
	}
}

func TestE6RestrictedSync(t *testing.T) {
	tbl, err := E6RestrictedSync(6)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Errorf("E6 failed:\n%s", tbl)
	}
}

func TestE7RestrictedAsync(t *testing.T) {
	tbl, err := E7RestrictedAsync(7)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Errorf("E7 failed:\n%s", tbl)
	}
}

func TestE8CoordinateWise(t *testing.T) {
	tbl, err := E8CoordinateWise(8)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Errorf("E8 failed:\n%s", tbl)
	}
}

func TestE9WitnessAblation(t *testing.T) {
	tbl, err := E9WitnessAblation(9)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Errorf("E9 failed:\n%s", tbl)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(tbl.Rows))
	}
}

func TestE10ScaleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("n=13 scale sweep in -short mode")
	}
	tbl, err := E10ScaleSweep(10)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Errorf("E10 failed:\n%s", tbl)
	}
	if len(tbl.Rows) != 11 { // 3 exact grids × 2 adversary sets + 1 async row + 4 γ-budget rows
		t.Errorf("rows = %d, want 11", len(tbl.Rows))
	}
}

func TestF1Heptagon(t *testing.T) {
	tbl, err := F1Heptagon()
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Errorf("F1 failed:\n%s", tbl)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("rows = %d, want 3 blocks", len(tbl.Rows))
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID: "T", Title: "demo", Claim: "c",
		Columns: []string{"a", "bb"},
		Notes:   []string{"n1"},
		Pass:    true,
	}
	tbl.AddRow(1, "x")
	tbl.AddRow(2.5, "longer")
	s := tbl.String()
	for _, want := range []string{"T — demo [PASS]", "claim: c", "a", "bb", "longer", "note: n1", "2.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q in:\n%s", want, s)
		}
	}
	tbl.Pass = false
	if !strings.Contains(tbl.String(), "[FAIL]") {
		t.Error("FAIL verdict missing")
	}
}

func TestWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := UniformInputs(rng, 5, 3, -1, 1)
	if len(u) != 5 || len(u[0]) != 3 {
		t.Errorf("uniform shape wrong")
	}
	for _, v := range u {
		for _, x := range v {
			if x < -1 || x > 1 {
				t.Errorf("uniform out of range: %v", v)
			}
		}
	}
	s := SimplexInputs(rng, 4, 3)
	for _, v := range s {
		var total float64
		for _, x := range v {
			if x < 0 {
				t.Errorf("simplex negative: %v", v)
			}
			total += x
		}
		if total < 0.999 || total > 1.001 {
			t.Errorf("simplex sum = %g", total)
		}
	}
	c := ClusteredInputs(rng, 6, 2, 0, 10, 1)
	sp := spreadInf(c)
	if sp > 2.01 {
		t.Errorf("clustered spread = %g, want ≤ 2", sp)
	}
	g := GradientInputs(rng, 5, 4, 2)
	for _, v := range g {
		for _, x := range v {
			if x < -2 || x > 2 {
				t.Errorf("gradient out of bound: %v", v)
			}
		}
	}
}

func TestSpreadInf(t *testing.T) {
	if got := spreadInf(nil); got != 0 {
		t.Errorf("empty spread = %g", got)
	}
	got := spreadInf([]Vector2{{0, 0}, {1, 3}, {0.5, -1}})
	if got != 4 {
		t.Errorf("spread = %g, want 4", got)
	}
}

// Vector2 aliases the public vector type for test brevity.
type Vector2 = []float64

func TestF2ConvergenceSeries(t *testing.T) {
	tbl, err := F2ConvergenceSeries(12)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Errorf("F2 failed:\n%s", tbl)
	}
	if len(tbl.Rows) == 0 {
		t.Error("F2 has no series rows")
	}
}

func TestAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	tables, err := All(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 12 {
		t.Fatalf("tables = %d, want 12", len(tables))
	}
	for _, tbl := range tables {
		if !tbl.Pass {
			t.Errorf("%s failed:\n%s", tbl.ID, tbl)
		}
	}
}
