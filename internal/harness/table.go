// Package harness turns the paper's claims into runnable experiments: each
// experiment E1–E10 and figure F1/F2 executes workloads on the simulator,
// measures outcomes, and renders a table comparing the paper's claim with
// the measured result (the README's experiment table summarizes them).
// cmd/bvcbench regenerates all of them; the test suite asserts their
// pass/fail verdicts. The package also provides the shared experiment
// registry (Runners, ExperimentOrder), the BENCH hardware-calibration
// kernel (Calibrate), and the sweep-cell substrate cmd/bvcsweep executes
// grids with (SweepCell, RunSweepCell, GammaBudget).
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's rendered result.
type Table struct {
	// ID is the experiment identifier (E1…E9, F1).
	ID string
	// Title is a one-line description.
	Title string
	// Claim quotes the paper's claim under test.
	Claim string
	// Columns and Rows hold the tabular results.
	Columns []string
	Rows    [][]string
	// Notes carries measurement commentary (one line each).
	Notes []string
	// Pass reports whether every checked assertion held.
	Pass bool
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	verdict := "PASS"
	if !t.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "%s — %s [%s]\n", t.ID, t.Title, verdict)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	if len(t.Columns) > 0 {
		widths := make([]int, len(t.Columns))
		for i, c := range t.Columns {
			widths[i] = len(c)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, cell := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
			b.WriteByte('\n')
		}
		writeRow(t.Columns)
		for i, wdt := range widths {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", wdt))
		}
		b.WriteByte('\n')
		for _, row := range t.Rows {
			writeRow(row)
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("table %s: render error: %v", t.ID, err)
	}
	return b.String()
}

func check(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
