package harness

import (
	"math"
	"math/rand"

	"repro"
)

// UniformInputs draws n input vectors uniformly from [lo, hi]^d.
func UniformInputs(rng *rand.Rand, n, d int, lo, hi float64) []bvc.Vector {
	out := make([]bvc.Vector, n)
	for i := range out {
		v := make(bvc.Vector, d)
		for j := range v {
			v[j] = lo + rng.Float64()*(hi-lo)
		}
		out[i] = v
	}
	return out
}

// SimplexInputs draws n probability vectors (non-negative, coordinates
// summing to 1) — the paper's motivating workload where validity means
// "the decision is still a probability vector".
func SimplexInputs(rng *rand.Rand, n, d int) []bvc.Vector {
	out := make([]bvc.Vector, n)
	for i := range out {
		v := make(bvc.Vector, d)
		var sum float64
		for j := range v {
			v[j] = -math.Log(1 - rng.Float64()) // Exp(1): Dirichlet(1,…,1)
			sum += v[j]
		}
		for j := range v {
			v[j] /= sum
		}
		out[i] = v
	}
	return out
}

// ClusteredInputs draws n points near a common center with the given
// spread, clamped into [lo, hi]^d — the mobile-robot rendezvous workload
// (robots near each other in a bounded arena).
func ClusteredInputs(rng *rand.Rand, n, d int, lo, hi, spread float64) []bvc.Vector {
	center := make(bvc.Vector, d)
	for j := range center {
		center[j] = lo + (0.25+0.5*rng.Float64())*(hi-lo)
	}
	out := make([]bvc.Vector, n)
	for i := range out {
		v := make(bvc.Vector, d)
		for j := range v {
			x := center[j] + (rng.Float64()*2-1)*spread
			if x < lo {
				x = lo
			}
			if x > hi {
				x = hi
			}
			v[j] = x
		}
		out[i] = v
	}
	return out
}

// GradientInputs draws n gradient-like vectors: a shared direction plus
// per-process noise, clamped into [-bound, bound]^d — the Byzantine-ML
// aggregation workload.
func GradientInputs(rng *rand.Rand, n, d int, bound float64) []bvc.Vector {
	direction := make(bvc.Vector, d)
	for j := range direction {
		direction[j] = (rng.Float64()*2 - 1) * bound / 2
	}
	out := make([]bvc.Vector, n)
	for i := range out {
		v := make(bvc.Vector, d)
		for j := range v {
			x := direction[j] + gaussian(rng)*bound/8
			if x < -bound {
				x = -bound
			}
			if x > bound {
				x = bound
			}
			v[j] = x
		}
		out[i] = v
	}
	return out
}

// gaussian draws a standard normal variate (Box–Muller; rng-pure).
func gaussian(rng *rand.Rand) float64 {
	u1 := 1 - rng.Float64()
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// spreadInf returns the largest per-coordinate range over the vectors at
// one history index.
func spreadInf(vectors []bvc.Vector) float64 {
	if len(vectors) == 0 {
		return 0
	}
	d := len(vectors[0])
	var worst float64
	for j := 0; j < d; j++ {
		lo, hi := vectors[0][j], vectors[0][j]
		for _, v := range vectors[1:] {
			if v[j] < lo {
				lo = v[j]
			}
			if v[j] > hi {
				hi = v[j]
			}
		}
		if r := hi - lo; r > worst {
			worst = r
		}
	}
	return worst
}

// historySpreads aligns correct processes' histories and returns the spread
// per round.
func historySpreads(res *bvc.Result) []float64 {
	var hs [][]bvc.Vector
	minLen := -1
	for _, p := range res.Processes {
		if p.Byzantine || len(p.History) == 0 {
			continue
		}
		hs = append(hs, p.History)
		if minLen < 0 || len(p.History) < minLen {
			minLen = len(p.History)
		}
	}
	if minLen <= 0 {
		return nil
	}
	out := make([]float64, minLen)
	for round := 0; round < minLen; round++ {
		col := make([]bvc.Vector, len(hs))
		for i, h := range hs {
			col[i] = h[round]
		}
		out[round] = spreadInf(col)
	}
	return out
}
