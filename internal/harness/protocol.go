package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/safearea"
	"repro/internal/sim"
)

// E2ExactSufficiency runs Exact BVC at the tight bound across a (d, f) grid
// and the full adversary library, verifying Agreement, Validity and
// Termination on every execution (Theorem 3).
func E2ExactSufficiency(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Exact BVC sufficiency (synchronous) at n = max(3f+1, (d+1)f+1)",
		Claim: "Theorem 3: the §2.2 algorithm achieves Exact BVC at the tight bound",
		Columns: []string{
			"d", "f", "n", "adversary", "rounds", "messages", "agreement", "validity",
		},
		Pass: true,
	}
	rng := rand.New(rand.NewSource(seed))
	type advCase struct {
		name string
		mk   func(cfg bvc.Config) []bvc.Byzantine
	}
	mkTargets := func(cfg bvc.Config) (bvc.Vector, bvc.Vector) {
		a := make(bvc.Vector, cfg.D)
		b := make(bvc.Vector, cfg.D)
		for i := 0; i < cfg.D; i++ {
			a[i] = -3
			b[i] = 7
		}
		return a, b
	}
	cases := []advCase{
		{name: "none", mk: func(bvc.Config) []bvc.Byzantine { return nil }},
		{name: "silent", mk: func(cfg bvc.Config) []bvc.Byzantine {
			return []bvc.Byzantine{{ID: cfg.N - 1, Strategy: bvc.StrategySilent}}
		}},
		{name: "crash", mk: func(cfg bvc.Config) []bvc.Byzantine {
			return []bvc.Byzantine{{ID: cfg.N - 1, Strategy: bvc.StrategyCrash, CrashAfter: 1}}
		}},
		{name: "equivocate", mk: func(cfg bvc.Config) []bvc.Byzantine {
			a, b := mkTargets(cfg)
			return []bvc.Byzantine{{ID: cfg.N - 1, Strategy: bvc.StrategyEquivocate, Target: a, Target2: b}}
		}},
		{name: "random", mk: func(cfg bvc.Config) []bvc.Byzantine {
			return []bvc.Byzantine{{ID: cfg.N - 1, Strategy: bvc.StrategyRandom}}
		}},
		{name: "lure", mk: func(cfg bvc.Config) []bvc.Byzantine {
			a, _ := mkTargets(cfg)
			return []bvc.Byzantine{{ID: cfg.N - 1, Strategy: bvc.StrategyLure, Target: a}}
		}},
	}
	for _, df := range [][2]int{{1, 1}, {2, 1}, {3, 1}, {2, 2}, {3, 2}} {
		d, f := df[0], df[1]
		n := bvc.MinProcesses(bvc.ExactSync, d, f)
		cfg := bvc.Config{N: n, F: f, D: d, Lo: []float64{0}, Hi: []float64{1}}
		for _, c := range cases {
			byz := c.mk(cfg)
			inputs := UniformInputs(rng, n, d, 0, 1)
			for _, b := range byz {
				inputs[b.ID] = nil
			}
			res, err := bvc.SimulateExact(cfg, inputs, byz, withEngine(bvc.SimOptions{Seed: seed}))
			if err != nil {
				return nil, fmt.Errorf("E2 d=%d f=%d %s: %w", d, f, c.name, err)
			}
			agreeOK := res.VerifyExact() == nil
			validOK := res.VerifyValidity() == nil
			if !agreeOK || !validOK {
				t.Pass = false
			}
			t.AddRow(d, f, n, c.name, f+1, res.Messages, check(agreeOK), check(validOK))
		}
	}
	return t, nil
}

// E5AsyncConvergence measures the per-round range contraction of the §3.2
// asynchronous algorithm against the analytic bound (1−γ)^t, then runs the
// full termination rule and verifies ε-agreement and validity (Theorem 5).
// The per-round series is the repository's "figure" for the convergence
// behaviour.
func E5AsyncConvergence(seed int64) (*Table, error) {
	const (
		n, f, d   = 5, 1, 2
		eps       = 0.05
		fixRounds = 15
	)
	gamma := bvc.Gamma(bvc.ApproxAsync, n, f, false)
	t := &Table{
		ID:    "E5",
		Title: fmt.Sprintf("Approximate BVC convergence (asynchronous), n=%d f=%d d=%d, γ=%.4g", n, f, d, gamma),
		Claim: "Theorem 5 / eq. (12): ρ[t] ≤ (1−γ)·ρ[t−1]; termination after 1+⌈log_{1/(1−γ)}((U−ν)/ε)⌉ rounds",
		Columns: []string{
			"round t", "measured ρ[t]", "bound ρ[0]·(1−γ)^t", "within bound",
		},
		Pass: true,
	}
	rng := rand.New(rand.NewSource(seed))
	cfg := bvc.Config{
		N: n, F: f, D: d, Epsilon: eps,
		Lo: []float64{0}, Hi: []float64{1},
		MaxRounds: fixRounds,
	}
	inputs := UniformInputs(rng, n, d, 0, 1)
	inputs[n-1] = nil
	byz := []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategyLure, Target: bvc.Vector{1, 1}}}
	// Starve one correct process: under a homogeneous schedule every
	// correct process assembles the identical B set and the range
	// collapses in one round; the adversarial schedule below keeps the
	// B sets heterogeneous, exposing the actual contraction behaviour
	// the (1−γ) bound quantifies over.
	delay := bvc.DelaySpec{
		Kind: bvc.DelayExponential, Mean: 4 * time.Millisecond,
		StarveSet: []int{0}, StarveExtra: 40 * time.Millisecond,
	}
	res, err := bvc.SimulateApproxAsync(cfg, inputs, byz, withEngine(bvc.SimOptions{Seed: seed, Delay: delay}))
	if err != nil {
		return nil, err
	}
	spreads := historySpreads(res)
	if len(spreads) == 0 {
		return nil, fmt.Errorf("E5: no histories recorded")
	}
	rho0 := spreads[0]
	bound := rho0
	for round := 1; round < len(spreads); round++ {
		bound *= 1 - gamma
		ok := spreads[round] <= bound+1e-9
		if !ok {
			t.Pass = false
		}
		t.AddRow(round, spreads[round], bound, check(ok))
	}

	// Full run with the analytic termination rule.
	cfg.MaxRounds = 0
	full, err := bvc.SimulateApproxAsync(cfg, inputs, byz, withEngine(bvc.SimOptions{Seed: seed + 1, Delay: delay}))
	if err != nil {
		return nil, err
	}
	if err := full.VerifyApprox(); err != nil {
		t.Pass = false
		t.Notes = append(t.Notes, "full run verification failed: "+err.Error())
	}
	var rounds int
	for _, p := range full.Processes {
		if !p.Byzantine {
			rounds = p.Rounds
			break
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("full run: ε=%g ⇒ %d rounds (analytic bound %d), %d messages, ε-agreement and validity verified",
			eps, rounds, bvc.RoundBound(gamma, 1, eps), full.Messages),
		"measured contraction is drastically faster than the worst-case (1−γ) bound: the witness exchange",
		"forces |Bi∩Bj| ≥ n−f, and under realistic schedules the B sets coincide entirely, collapsing the",
		"range in one round — the slow geometric decay the bound allows needs a surgical adversarial schedule",
		"(see F2 for a visible contraction curve under the restricted round structure)")
	return t, nil
}

// F2ConvergenceSeries is the repository's convergence "figure": the
// per-round range ρ[t] of the restricted asynchronous algorithm (whose
// first-n−f−1-arrivals structure keeps the per-process views heterogeneous,
// unlike the strongly synchronizing witness exchange of E5) against the
// analytic (1−γ)^t envelope.
func F2ConvergenceSeries(seed int64) (*Table, error) {
	const (
		n, f, d = 7, 1, 2
		eps     = 0.05
	)
	gamma := bvc.Gamma(bvc.RestrictedAsync, n, f, false)
	t := &Table{
		ID:    "F2",
		Title: fmt.Sprintf("Convergence figure: restricted async BVC range per round (n=%d f=%d d=%d, γ=%.4g)", n, f, d, gamma),
		Claim: "eq. (13): ρ[t] ≤ (1−γ)^t·ρ[0]; measured decay is much faster",
		Columns: []string{
			"round t", "measured ρ[t]", "ρ[t]/ρ[t−1]", "bound ρ[0]·(1−γ)^t", "within bound",
		},
		Pass: true,
	}
	rng := rand.New(rand.NewSource(seed))
	cfg := bvc.Config{N: n, F: f, D: d, Epsilon: eps, Lo: []float64{0}, Hi: []float64{1}}
	inputs := UniformInputs(rng, n, d, 0, 1)
	inputs[n-1] = nil
	byz := []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategyEquivocate,
		Target: make(bvc.Vector, d), Target2: bvc.Vector{1, 1}}}
	res, err := bvc.SimulateRestrictedAsync(cfg, inputs, byz, withEngine(bvc.SimOptions{
		Seed:  seed,
		Delay: bvc.DelaySpec{Kind: bvc.DelayExponential, Mean: 10 * time.Millisecond},
	}))
	if err != nil {
		return nil, err
	}
	if err := res.VerifyApprox(); err != nil {
		t.Pass = false
		t.Notes = append(t.Notes, "verification failed: "+err.Error())
	}
	spreads := historySpreads(res)
	if len(spreads) == 0 {
		return nil, fmt.Errorf("F2: no histories recorded")
	}
	bound := spreads[0]
	maxRows := len(spreads)
	if maxRows > 13 {
		maxRows = 13 // the tail is all ~0; keep the figure readable
	}
	for round := 1; round < maxRows; round++ {
		bound *= 1 - gamma
		ratio := 0.0
		if spreads[round-1] > 0 {
			ratio = spreads[round] / spreads[round-1]
		}
		ok := spreads[round] <= bound+1e-9
		if !ok {
			t.Pass = false
		}
		t.AddRow(round, spreads[round], ratio, bound, check(ok))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("ρ[0] = %.4g; rounds executed: %d; series truncated once ρ ≈ 0", spreads[0], len(spreads)-1),
		"measured per-round ratio ≈ 0.1–0.5, far below the worst-case 1−γ ≈ "+fmt.Sprintf("%.4f", 1-gamma))
	return t, nil
}

// E6RestrictedSync validates the §4 restricted synchronous algorithm at
// n = (d+2)f+1 across adversaries, and demonstrates why (d+2)f does not
// suffice: a candidate set of n−f = (d+1)f states can have an empty safe
// area, leaving Step 2 with nothing to choose.
func E6RestrictedSync(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Restricted-round synchronous BVC at n = (d+2)f+1",
		Claim: "Theorem 6 (sync): n ≥ (d+2)f+1 is necessary and sufficient with the restricted structure",
		Columns: []string{
			"d", "f", "n", "adversary", "rounds", "ε-agreement", "validity",
		},
		Pass: true,
	}
	rng := rand.New(rand.NewSource(seed))
	for _, df := range [][2]int{{1, 1}, {2, 1}} {
		d, f := df[0], df[1]
		n := bvc.MinProcesses(bvc.RestrictedSync, d, f)
		cfg := bvc.Config{N: n, F: f, D: d, Epsilon: 0.1, Lo: []float64{0}, Hi: []float64{1}}
		one := make(bvc.Vector, d)
		zero := make(bvc.Vector, d)
		for i := range one {
			one[i] = 1
		}
		cases := map[string][]bvc.Byzantine{
			"none":       nil,
			"silent":     {{ID: n - 1, Strategy: bvc.StrategySilent}},
			"equivocate": {{ID: n - 1, Strategy: bvc.StrategyEquivocate, Target: zero, Target2: one}},
			"lure":       {{ID: n - 1, Strategy: bvc.StrategyLure, Target: one}},
			"random":     {{ID: n - 1, Strategy: bvc.StrategyRandom}},
		}
		for _, name := range []string{"none", "silent", "equivocate", "lure", "random"} {
			byz := cases[name]
			inputs := UniformInputs(rng, n, d, 0, 1)
			for _, b := range byz {
				inputs[b.ID] = nil
			}
			res, err := bvc.SimulateRestrictedSync(cfg, inputs, byz, withEngine(bvc.SimOptions{Seed: seed}))
			if err != nil {
				return nil, fmt.Errorf("E6 d=%d %s: %w", d, name, err)
			}
			epsOK := res.VerifyApprox() == nil
			validOK := res.VerifyValidity() == nil
			if !epsOK || !validOK {
				t.Pass = false
			}
			var rounds int
			for _, p := range res.Processes {
				if !p.Byzantine {
					rounds = p.Rounds
					break
				}
			}
			t.AddRow(d, f, n, name, rounds, check(epsOK), check(validOK))
		}
	}
	// Below the bound: with n = (d+2)f, a candidate set has only
	// (d+1)f states — Lemma 1 no longer applies, and the proof's basis
	// instance makes Γ empty.
	d, f := 2, 1
	bad := []bvc.Vector{{1, 0}, {0, 1}, {0, 0}} // (d+1)f = 3 states
	empty, err := bvc.SafeAreaEmpty(bad, f)
	if err != nil {
		return nil, err
	}
	if !empty {
		t.Pass = false
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("below the bound (n=(d+2)f, d=%d f=%d): a candidate set of (d+1)f states can have empty Γ — Step 2 impossible: %s",
			d, f, check(empty)))
	return t, nil
}

// E7RestrictedAsync validates the §4 restricted asynchronous algorithm at
// n = (d+4)f+1 under benign and adversarial schedules (Theorem 6).
func E7RestrictedAsync(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Restricted-round asynchronous BVC at n = (d+4)f+1",
		Claim: "Theorem 6 (async): n ≥ (d+4)f+1 is necessary and sufficient with the restricted structure",
		Columns: []string{
			"d", "f", "n", "schedule", "adversary", "rounds", "messages", "ε-agreement", "validity",
		},
		Pass: true,
	}
	rng := rand.New(rand.NewSource(seed))
	for _, df := range [][2]int{{1, 1}, {2, 1}} {
		d, f := df[0], df[1]
		n := bvc.MinProcesses(bvc.RestrictedAsync, d, f)
		cfg := bvc.Config{N: n, F: f, D: d, Epsilon: 0.1, Lo: []float64{0}, Hi: []float64{1}}
		one := make(bvc.Vector, d)
		for i := range one {
			one[i] = 1
		}
		type runCase struct {
			schedule string
			delay    bvc.DelaySpec
			advName  string
			byz      []bvc.Byzantine
		}
		cases := []runCase{
			{"uniform", bvc.DelaySpec{Kind: bvc.DelayUniform, Min: time.Millisecond, Max: 10 * time.Millisecond}, "none", nil},
			{"exponential", bvc.DelaySpec{Kind: bvc.DelayExponential, Mean: 5 * time.Millisecond}, "equivocate",
				[]bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategyEquivocate, Target: make(bvc.Vector, d), Target2: one}}},
			{"starve-1-correct", bvc.DelaySpec{
				Kind: bvc.DelayConstant, Mean: time.Millisecond,
				StarveSet: []int{0}, StarveExtra: 250 * time.Millisecond,
			}, "silent", []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategySilent}}},
		}
		for _, c := range cases {
			inputs := UniformInputs(rng, n, d, 0, 1)
			for _, b := range c.byz {
				inputs[b.ID] = nil
			}
			res, err := bvc.SimulateRestrictedAsync(cfg, inputs, c.byz, withEngine(bvc.SimOptions{Seed: seed, Delay: c.delay}))
			if err != nil {
				return nil, fmt.Errorf("E7 d=%d %s: %w", d, c.schedule, err)
			}
			epsOK := res.VerifyApprox() == nil
			validOK := res.VerifyValidity() == nil
			if !epsOK || !validOK {
				t.Pass = false
			}
			var rounds int
			for _, p := range res.Processes {
				if !p.Byzantine {
					rounds = p.Rounds
					break
				}
			}
			t.AddRow(d, f, n, c.schedule, c.advName, rounds, res.Messages, check(epsOK), check(validOK))
		}
	}
	t.Notes = append(t.Notes,
		"the asynchronous restricted bound exceeds the AAD-based bound by 2f — the paper's stated price of the simpler round structure")
	return t, nil
}

// E8CoordinateWise reproduces the paper's §1 counterexample: coordinate-wise
// scalar consensus satisfies per-dimension validity yet leaves the convex
// hull of the correct inputs (it even leaves the probability simplex), while
// Exact BVC on the same workload does not.
func E8CoordinateWise(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Coordinate-wise scalar consensus violates vector validity",
		Claim: "§1: scalar consensus per dimension does not solve vector consensus",
		Columns: []string{
			"workload", "algorithm", "n", "decision", "coord sum", "in correct hull",
		},
		Pass: true,
	}

	// The paper's exact instance.
	paperInputs := []bvc.Vector{
		{2.0 / 3, 1.0 / 6, 1.0 / 6},
		{1.0 / 6, 2.0 / 3, 1.0 / 6},
		{1.0 / 6, 1.0 / 6, 2.0 / 3},
		nil,
	}
	byz := []bvc.Byzantine{{ID: 3, Strategy: bvc.StrategyLure, Target: bvc.Vector{0, 0, 0}}}
	cw, err := bvc.SimulateCoordinateWise(bvc.Config{N: 4, F: 1, D: 3}, paperInputs, byz, withEngine(bvc.SimOptions{Seed: seed}))
	if err != nil {
		return nil, err
	}
	cwDec := cw.Decisions()[0]
	cwValid := cw.VerifyValidity() == nil
	if cwValid {
		t.Pass = false // the whole point is that it must NOT be valid
	}
	t.AddRow("paper §1", "coordinate-wise", 4, fmt.Sprintf("%.4g", cwDec), sum(cwDec), check(cwValid))

	// Exact BVC needs one more process for d = 3 and stays valid.
	bvcInputs := []bvc.Vector{
		paperInputs[0], paperInputs[1], paperInputs[2],
		{1.0 / 3, 1.0 / 3, 1.0 / 3},
		nil,
	}
	byz5 := []bvc.Byzantine{{ID: 4, Strategy: bvc.StrategyLure, Target: bvc.Vector{0, 0, 0}}}
	ex, err := bvc.SimulateExact(bvc.Config{N: 5, F: 1, D: 3}, bvcInputs, byz5, withEngine(bvc.SimOptions{Seed: seed}))
	if err != nil {
		return nil, err
	}
	exDec := ex.Decisions()[0]
	exValid := ex.VerifyExact() == nil
	if !exValid {
		t.Pass = false
	}
	t.AddRow("paper §1", "Exact BVC", 5, fmt.Sprintf("%.4g", exDec), sum(exDec), check(exValid))

	// Randomized simplex workloads: count violations across seeds.
	rng := rand.New(rand.NewSource(seed))
	violations := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		inputs := SimplexInputs(rng, 4, 3)
		inputs[3] = nil
		res, err := bvc.SimulateCoordinateWise(bvc.Config{N: 4, F: 1, D: 3}, inputs,
			[]bvc.Byzantine{{ID: 3, Strategy: bvc.StrategyLure, Target: bvc.Vector{0, 0, 0}}},
			withEngine(bvc.SimOptions{Seed: int64(trial)}))
		if err != nil {
			return nil, err
		}
		if res.VerifyValidity() != nil {
			violations++
		}
	}
	t.AddRow("random simplex ×10", "coordinate-wise", 4,
		fmt.Sprintf("%d/%d validity violations", violations, trials), "-", "-")
	if violations == 0 {
		t.Notes = append(t.Notes, "warning: no violations on random workloads (paper instance still violates)")
	}
	t.Notes = append(t.Notes,
		"coordinate-wise decision sums to 1/2 on the paper instance — it is not a probability vector",
		"Exact BVC decisions always sum to 1: the simplex is preserved (convexity)")
	return t, nil
}

// E9WitnessAblation compares §3.2's full Zi construction (all C(n, n−f)
// subsets of Bi[t]) with the Appendix-F witness optimization (|Zi| ≤ n):
// candidate-set counts, contraction weights γ, analytic round bounds, and
// measured rounds-to-ε.
func E9WitnessAblation(seed int64) (*Table, error) {
	const (
		n, f, d = 7, 2, 1
		eps     = 0.1
	)
	t := &Table{
		ID:    "E9",
		Title: fmt.Sprintf("Appendix-F witness optimization ablation (n=%d, f=%d, d=%d)", n, f, d),
		Claim: "Appendix F: |Zi| ≤ n with γ = 1/n², vs C(n,n−f) subsets with γ = 1/(n·C(n,n−f))",
		Columns: []string{
			"variant", "γ", "analytic rounds", "measured rounds to ε", "max |Zi|", "messages",
		},
		Pass: true,
	}
	for _, witness := range []bool{false, true} {
		gamma := core.Gamma(core.VariantApproxAsync, n, f, witness)
		analytic := core.RoundBound(gamma, 1, eps)
		cfg := core.AsyncConfig{
			Params: core.Params{
				N: n, F: f, D: d, Epsilon: eps,
				Bounds: geometry.UniformBox(d, 0, 1),
				Method: safearea.MethodAuto,
			},
			WitnessOpt: witness,
			MaxRounds:  40, // fixed horizon to measure actual convergence
		}
		rng := rand.New(rand.NewSource(seed))
		nodes := make([]sim.Node, n)
		impls := make([]*core.AsyncNode, n)
		for i := 0; i < n; i++ {
			input := geometry.Vector{rng.Float64()}
			nd, err := core.NewAsyncNode(cfg, sim.ProcID(i), input)
			if err != nil {
				return nil, err
			}
			impls[i] = nd
			nodes[i] = nd
		}
		// Starve two correct processes (f = 2) so B sets differ across
		// processes and convergence takes measurable rounds (see E5).
		eng, err := sim.NewEngine(sim.Config{
			N: n, Seed: seed,
			Delay: sim.StarveSenders{
				Inner: sim.ExponentialDelay{Mean: 4 * time.Millisecond},
				Slow:  map[sim.ProcID]bool{0: true, 1: true},
				Extra: 40 * time.Millisecond,
			},
		}, nodes)
		if err != nil {
			return nil, err
		}
		stats, err := eng.Run()
		if err != nil {
			return nil, err
		}

		// Measured rounds to ε and max |Zi|.
		maxZi := 0
		var hs [][]geometry.Vector
		minLen := -1
		for _, nd := range impls {
			for _, z := range nd.ZiSizes() {
				if z > maxZi {
					maxZi = z
				}
			}
			h := nd.History()
			hs = append(hs, h)
			if minLen < 0 || len(h) < minLen {
				minLen = len(h)
			}
		}
		measured := -1
		for round := 0; round < minLen; round++ {
			col := make([]bvc.Vector, len(hs))
			for i, h := range hs {
				col[i] = bvc.Vector(h[round])
			}
			if spreadInf(col) <= eps {
				measured = round
				break
			}
		}
		if measured < 0 {
			t.Pass = false
			measured = minLen
		}
		name := "full subsets"
		if witness {
			name = "witness-opt"
			if maxZi > n {
				t.Pass = false
			}
		}
		t.AddRow(name, gamma, analytic, measured, maxZi, stats.Sent)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("full: C(%d,%d) = %d candidate sets per round; witness-opt: ≤ %d", n, n-f, combinCount(n, n-f), n),
		"witness-opt wins on both per-round cost and analytic round bound; measured convergence is similar",
	)
	return t, nil
}

func combinCount(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := int64(1)
	for i := 1; i <= k; i++ {
		out = out * int64(n-k+i) / int64(i)
	}
	return out
}

func sum(v bvc.Vector) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// All runs every experiment in ExperimentOrder and returns the tables.
func All(seed int64) ([]*Table, error) {
	runners := Runners(seed, 20)
	out := make([]*Table, 0, len(ExperimentOrder))
	for _, name := range ExperimentOrder {
		tbl, err := runners[name]()
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", strings.ToUpper(name), err)
		}
		out = append(out, tbl)
	}
	return out, nil
}
