package harness

import (
	"testing"

	"repro"
)

// benchE10Row measures one committed E10 row cell cold-cache per iteration —
// the same workload the "e10/<variant>-n15" BENCH records track.
func benchE10Row(b *testing.B, c SweepCell) {
	for i := 0; i < b.N; i++ {
		bvc.ResetEngineCaches()
		out, err := RunSweepCell(c)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Verified {
			b.Fatal("cell did not verify")
		}
	}
}

func BenchmarkE10RowRsync15(b *testing.B)  { benchE10Row(b, E10RowCells[0]) }
func BenchmarkE10RowApprox15(b *testing.B) { benchE10Row(b, E10RowCells[1]) }
