package harness

import (
	"fmt"
	"math"
	"math/rand"

	"repro"
	"repro/internal/geometry"
	"repro/internal/hull"
	"repro/internal/safearea"
	"repro/internal/tverberg"
)

// E1SyncNecessity reproduces Theorem 1's necessity argument: with
// n = (d+1)f processes, the proof's standard-basis construction (each basis
// vector and the origin replicated f times) makes the safe-area
// intersection empty, so no decision can satisfy agreement and validity;
// one more process restores Lemma 1's guarantee on every random instance.
func E1SyncNecessity(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Exact BVC necessity (synchronous): n = (d+1)f is insufficient",
		Claim: "Theorem 1: n ≥ max(3f+1, (d+1)f+1) is necessary for Exact BVC",
		Columns: []string{
			"d", "f", "n=(d+1)f", "Γ empty (proof's instance)",
			"n=(d+1)f+1", "Γ point found+verified (random)",
		},
		Pass: true,
	}
	rng := rand.New(rand.NewSource(seed))
	for d := 1; d <= 5; d++ {
		for f := 1; f <= 2; f++ {
			// The proof's construction, replicated f× (simulation
			// argument for f > 1): f copies each of e_1 … e_d and 0.
			bad := make([]bvc.Vector, 0, (d+1)*f)
			for i := 0; i < d; i++ {
				e := make(bvc.Vector, d)
				e[i] = 1
				for k := 0; k < f; k++ {
					bad = append(bad, e)
				}
			}
			for k := 0; k < f; k++ {
				bad = append(bad, make(bvc.Vector, d))
			}
			empty, err := bvc.SafeAreaEmpty(bad, f)
			if err != nil {
				return nil, fmt.Errorf("E1 d=%d f=%d: %w", d, f, err)
			}

			// At the threshold, Lemma 1 guarantees non-emptiness for any
			// multiset. Verify constructively: find a Tverberg point
			// (Radon for f = 1) and membership-test it into every
			// (|Y|−f)-subset hull — numerically far better conditioned
			// than one monolithic emptiness LP. The exhaustive partition
			// search is kept to small instances (f = 1, or d ≤ 3).
			verdict := "-"
			if f == 1 || d <= 3 {
				allVerified := true
				for trial := 0; trial < 5; trial++ {
					pts := UniformInputs(rng, (d+1)*f+1, d, -1, 1)
					method := bvc.MethodRadon
					if f > 1 {
						method = bvc.MethodTverbergSearch
					}
					pt, err := bvc.SafePointWith(pts, f, method)
					if err != nil {
						return nil, fmt.Errorf("E1 threshold d=%d f=%d: %w", d, f, err)
					}
					in, err := bvc.SafeAreaContainsWorkers(pts, f, pt, engineOptions.workers)
					if err != nil {
						return nil, err
					}
					if !in {
						allVerified = false
					}
				}
				verdict = check(allVerified)
				if !allVerified {
					t.Pass = false
				}
			}
			if !empty {
				t.Pass = false
			}
			t.AddRow(d, f, (d+1)*f, check(empty), (d+1)*f+1, verdict)
		}
	}
	t.Notes = append(t.Notes,
		"the proof's instance has empty Γ one process below the bound; at the bound a Γ point is constructed and verified",
		"'-': constructive check skipped (exhaustive Tverberg search too large); covered by Lemma 1 + E3")
	return t, nil
}

// E3TverbergLemma validates Lemma 1 and Theorem 2 statistically: every
// random multiset with |Y| = (d+1)f+1 points has a non-empty Γ(Y) and an
// exhaustively-findable Tverberg partition into f+1 parts.
func E3TverbergLemma(seed int64, trials int) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Lemma 1 / Tverberg's theorem on random multisets",
		Claim: "Γ(Y) ≠ ∅ and a Tverberg partition into f+1 parts exists whenever |Y| ≥ (d+1)f+1",
		Columns: []string{
			"d", "f", "|Y|", "trials", "Γ non-empty", "partition found", "partition verified",
		},
		Pass: true,
	}
	rng := rand.New(rand.NewSource(seed))
	for _, df := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}} {
		d, f := df[0], df[1]
		size := (d+1)*f + 1
		nonEmpty, found, verified := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			pts := UniformInputs(rng, size, d, -5, 5)
			empty, err := bvc.SafeAreaEmpty(pts, f)
			if err != nil {
				return nil, err
			}
			if !empty {
				nonEmpty++
			}
			blocks, point, ok, err := bvc.TverbergPartition(pts, f+1)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			found++
			okAll := true
			for _, blk := range blocks {
				var blkPts []bvc.Vector
				for _, idx := range blk {
					blkPts = append(blkPts, pts[idx])
				}
				in, err := bvc.InConvexHull(blkPts, point)
				if err != nil {
					return nil, err
				}
				if !in {
					okAll = false
				}
			}
			if okAll {
				verified++
			}
		}
		if nonEmpty != trials || found != trials || verified != trials {
			t.Pass = false
		}
		t.AddRow(d, f, size, trials,
			fmt.Sprintf("%d/%d", nonEmpty, trials),
			fmt.Sprintf("%d/%d", found, trials),
			fmt.Sprintf("%d/%d", verified, trials))
	}
	return t, nil
}

// E4AsyncNecessity reproduces Theorem 4's necessity argument: with
// n = d+2 processes and f = 1 in an asynchronous system, the proof's input
// construction (x_i = 4ε·e_i for i ≤ d; x_{d+1} = 0; p_{d+2} arbitrarily
// slow) forces every process p_i (i ≤ d+1) to decide exactly its own
// input, so two correct decisions differ by 4ε — ε-agreement is impossible.
func E4AsyncNecessity() (*Table, error) {
	const eps = 0.25
	t := &Table{
		ID:    "E4",
		Title: "Approximate BVC necessity (asynchronous): n = d+2 is insufficient",
		Claim: "Theorem 4: n ≥ (d+2)f+1 is necessary for approximate BVC",
		Columns: []string{
			"d", "n=d+2", "forced decisions = own inputs", "max pairwise gap", "vs ε",
		},
		Pass: true,
	}
	for d := 1; d <= 5; d++ {
		inputs := make([]geometry.Vector, d+1) // x_1 … x_{d+1}; p_{d+2} silent
		for i := 0; i < d; i++ {
			v := geometry.NewVector(d)
			v[i] = 4 * eps
			inputs[i] = v
		}
		inputs[d] = geometry.NewVector(d)

		allForced := true
		for i := 0; i <= d; i++ {
			forced, err := forcedRegionIsOwnInput(inputs, i)
			if err != nil {
				return nil, fmt.Errorf("E4 d=%d process %d: %w", d, i, err)
			}
			if !forced {
				allForced = false
			}
		}
		// Max pairwise input gap: between any two of x_1…x_{d+1} at least
		// one coordinate differs by 4ε.
		gap := 4 * eps
		if !allForced {
			t.Pass = false
		}
		t.AddRow(d, d+2, check(allForced), gap, fmt.Sprintf("> ε = %g", eps))
	}
	t.Notes = append(t.Notes,
		"each p_i's validity-feasible region ∩_{j≠i} H(X_i^j) collapses to {x_i}: decisions 4ε apart",
		"with one more process ((d+2)f+1) the sufficiency runs of E5 converge to any ε")
	return t, nil
}

// forcedRegionIsOwnInput checks that ∩_{j≠i} H(X^j) = {inputs[i]}, where
// X^j drops input j — the decision region available to process i in the
// proof of Theorem 4. A convex region is a single point iff its
// lexicographic minimum and maximum coincide.
func forcedRegionIsOwnInput(inputs []geometry.Vector, i int) (bool, error) {
	var groups [][]geometry.Vector
	var negGroups [][]geometry.Vector
	for j := range inputs {
		if j == i {
			continue
		}
		var grp, neg []geometry.Vector
		for k := range inputs {
			if k == j {
				continue
			}
			grp = append(grp, inputs[k])
			neg = append(neg, inputs[k].Scale(-1))
		}
		groups = append(groups, grp)
		negGroups = append(negGroups, neg)
	}
	lexMin, ok, err := hull.LexMinCommonPoint(groups)
	if err != nil || !ok {
		return false, fmt.Errorf("region empty or error: %v", err)
	}
	negMin, ok, err := hull.LexMinCommonPoint(negGroups)
	if err != nil || !ok {
		return false, fmt.Errorf("negated region empty or error: %v", err)
	}
	lexMax := negMin.Scale(-1)
	const tol = 1e-6
	return lexMin.ApproxEqual(inputs[i], tol) && lexMax.ApproxEqual(inputs[i], tol), nil
}

// F1Heptagon reproduces the paper's Figure 1: the regular heptagon
// (n = (d+1)f+1 with d = 2, f = 2) admits a Tverberg partition into three
// parts — one triangle and two segments — with a common point.
func F1Heptagon() (*Table, error) {
	t := &Table{
		ID:      "F1",
		Title:   "Figure 1: Tverberg partition of the regular heptagon (d=2, f=2)",
		Claim:   "Theorem 2 guarantees a partition into f+1 = 3 parts with intersecting hulls",
		Columns: []string{"block", "vertex indices", "size"},
		Pass:    true,
	}
	ms := geometry.NewMultiset(2)
	for k := 0; k < 7; k++ {
		a := 2 * math.Pi * float64(k) / 7
		if err := ms.Add(geometry.Vector{math.Cos(a), math.Sin(a)}); err != nil {
			return nil, err
		}
	}
	part, ok, err := tverberg.Search(ms, 3)
	if err != nil {
		return nil, err
	}
	if !ok {
		t.Pass = false
		t.Notes = append(t.Notes, "no partition found — Theorem 2 violated")
		return t, nil
	}
	if err := tverberg.Verify(ms, part, 1e-6); err != nil {
		t.Pass = false
		t.Notes = append(t.Notes, "partition failed verification: "+err.Error())
	}
	sizes := map[int]int{}
	for b, blk := range part.Blocks {
		t.AddRow(b+1, fmt.Sprintf("%v", blk), len(blk))
		sizes[len(blk)]++
	}
	if sizes[3] != 1 || sizes[2] != 2 {
		t.Pass = false
		t.Notes = append(t.Notes, "expected one triangle and two segments")
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Tverberg point: %v (inside all three hulls)", part.Point))
	// The point is also in Γ of the heptagon with f = 2 (Lemma 1's chain).
	in, err := safearea.Contains(ms, 2, part.Point, 1e-6)
	if err != nil {
		return nil, err
	}
	if !in {
		t.Pass = false
		t.Notes = append(t.Notes, "Tverberg point not in Γ(Y) — Lemma 1 violated")
	} else {
		t.Notes = append(t.Notes, "Tverberg point confirmed inside Γ(Y) (Lemma 1)")
	}
	return t, nil
}
