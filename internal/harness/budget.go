package harness

import (
	"math"

	"repro"
)

// Round-budget tuning knobs. FullTerminationCap is the largest analytic
// round bound a sweep is willing to execute to completion; beyond it the
// γ-aware fixed horizon takes over. The horizon clamp keeps pathological γ
// values (γ → 0 at n ≥ 17 restricted grids) from re-introducing the blowup
// the budget exists to avoid.
const (
	fullTerminationCap = 64
	minHorizon         = 4
	maxHorizon         = 24
)

// RoundBudget is a γ-aware execution budget for one approximate-variant
// run. When Full is true the analytic termination bound is affordable: run
// it unchanged (Rounds is that bound) and judge the execution by full
// ε-agreement plus validity. When Full is false the analytic bound has
// blown up with γ's combinatorial decay in n; run the fixed horizon Rounds
// instead and judge the execution by per-round range contraction plus
// validity — the per-round guarantees (paper eqs. (12)/(13)) that the
// termination proof iterates.
type RoundBudget struct {
	// Rounds is the round horizon to execute (Config.MaxRounds for
	// horizon-mode runs; the analytic bound for full runs).
	Rounds int
	// Full reports whether Rounds is the analytic termination bound.
	Full bool
	// Gamma is the variant's contraction weight at this (n, f).
	Gamma float64
}

// Mode names the verification regime of the budget for records and tables.
func (b RoundBudget) Mode() string {
	if b.Full {
		return "full"
	}
	return "horizon"
}

// GammaBudget computes the γ-aware round budget for an approximate variant
// at (n, f) with input range rng and agreement parameter eps. The analytic
// bound 1+⌈log_{1/(1−γ)}(rng/ε)⌉ grows like (1/γ)·ln(rng/ε), and for the
// restricted variants γ = 1/(n·C(n, n−f)) (sync) or 1/(n·C(n−f, n−3f))
// (async) decays combinatorially in n — at n = 15, f = 2 the restricted
// asynchronous bound is already ≈ 3.2·10⁴ rounds. Whenever the analytic
// bound exceeds FullTerminationCap, GammaBudget returns a fixed horizon
// scaled to γ's decay, ⌈log₂(1/γ)⌉ clamped into [4, 24]: enough rounds
// that measured contraction is unambiguous (observed per-round ratios are
// ≈ 0.1–0.5, far below 1−γ; see E5/F2), while growing only logarithmically
// in 1/γ — i.e. polynomially in n — as the grid scales.
//
// Exact BVC has no contraction budget (it terminates in f+1 rounds);
// GammaBudget returns Full with Rounds = f+1 for it so callers can treat
// every variant uniformly.
func GammaBudget(v bvc.Variant, n, f int, rng, eps float64, witnessOpt bool) RoundBudget {
	if v == bvc.ExactSync {
		return RoundBudget{Rounds: f + 1, Full: true}
	}
	gamma := bvc.Gamma(v, n, f, witnessOpt)
	analytic := bvc.RoundBound(gamma, rng, eps)
	if analytic <= fullTerminationCap {
		return RoundBudget{Rounds: analytic, Full: true, Gamma: gamma}
	}
	horizon := minHorizon
	if gamma > 0 && gamma < 1 {
		horizon = int(math.Ceil(math.Log2(1 / gamma)))
	}
	if horizon < minHorizon {
		horizon = minHorizon
	}
	if horizon > maxHorizon {
		horizon = maxHorizon
	}
	return RoundBudget{Rounds: horizon, Gamma: gamma}
}
