package broadcast

import (
	"testing"

	"repro/internal/geometry"
	"repro/internal/sim"
)

// rbcBus delivers RBC messages among a set of correct processes, with a
// configurable delivery order (fifo or lifo) to exercise asynchrony.
type rbcBus struct {
	t     *testing.T
	procs map[sim.ProcID]*RBC
	queue []busItem
	lifo  bool

	delivered map[sim.ProcID][]RBCDelivery
}

type busItem struct {
	from sim.ProcID
	to   sim.ProcID
	msg  RBCMsg
}

func newRBCBus(t *testing.T, n, f, dim int, correct []sim.ProcID) *rbcBus {
	t.Helper()
	b := &rbcBus{t: t, procs: make(map[sim.ProcID]*RBC), delivered: make(map[sim.ProcID][]RBCDelivery)}
	for _, id := range correct {
		r, err := NewRBC(n, f, id, dim)
		if err != nil {
			t.Fatalf("NewRBC(%d): %v", id, err)
		}
		b.procs[id] = r
	}
	return b
}

// broadcastFrom enqueues msg from `from` to every correct process.
func (b *rbcBus) broadcastFrom(from sim.ProcID, msg RBCMsg) {
	for to := range b.procs {
		b.queue = append(b.queue, busItem{from: from, to: to, msg: msg})
	}
}

// inject sends msg from a (possibly Byzantine) process to one recipient.
func (b *rbcBus) inject(from, to sim.ProcID, msg RBCMsg) {
	b.queue = append(b.queue, busItem{from: from, to: to, msg: msg})
}

// drain delivers queued messages until quiescence.
func (b *rbcBus) drain() {
	for len(b.queue) > 0 {
		var it busItem
		if b.lifo {
			it = b.queue[len(b.queue)-1]
			b.queue = b.queue[:len(b.queue)-1]
		} else {
			it = b.queue[0]
			b.queue = b.queue[1:]
		}
		proc, ok := b.procs[it.to]
		if !ok {
			continue
		}
		out, dels := proc.Handle(it.from, it.msg)
		for _, o := range out {
			b.broadcastFrom(it.to, o)
		}
		if len(dels) > 0 {
			b.delivered[it.to] = append(b.delivered[it.to], dels...)
		}
	}
}

func ids(xs ...int) []sim.ProcID {
	out := make([]sim.ProcID, len(xs))
	for i, x := range xs {
		out[i] = sim.ProcID(x)
	}
	return out
}

func TestRBCHonestOriginAllDeliver(t *testing.T) {
	for _, lifo := range []bool{false, true} {
		b := newRBCBus(t, 4, 1, 2, ids(0, 1, 2, 3))
		value := vec(2, 3)
		initMsg, err := b.procs[0].Broadcast(5, value)
		if err != nil {
			t.Fatal(err)
		}
		b.broadcastFrom(0, initMsg)
		b.lifo = lifo
		b.drain()
		for id, dels := range b.delivered {
			if len(dels) != 1 {
				t.Fatalf("lifo=%v: process %d delivered %d times", lifo, id, len(dels))
			}
			d := dels[0]
			if d.Origin != 0 || d.Tag != 5 || !d.Value.Equal(value) {
				t.Errorf("lifo=%v: process %d delivered %+v", lifo, id, d)
			}
		}
		if len(b.delivered) != 4 {
			t.Errorf("lifo=%v: %d of 4 processes delivered", lifo, len(b.delivered))
		}
	}
}

func TestRBCEquivocatingOriginAgreement(t *testing.T) {
	// Byzantine origin 3 sends INIT(a) to {0,1} and INIT(b) to {2}; n = 4,
	// f = 1. Correct processes may or may not deliver, but any deliveries
	// must carry the same value.
	b := newRBCBus(t, 4, 1, 1, ids(0, 1, 2))
	a, v2 := vec(1), vec(2)
	b.inject(3, 0, RBCMsg{Phase: RBCInit, Origin: 3, Tag: 1, Value: a})
	b.inject(3, 1, RBCMsg{Phase: RBCInit, Origin: 3, Tag: 1, Value: a})
	b.inject(3, 2, RBCMsg{Phase: RBCInit, Origin: 3, Tag: 1, Value: v2})
	b.drain()
	var seen geometry.Vector
	for id, dels := range b.delivered {
		for _, d := range dels {
			if seen == nil {
				seen = d.Value
				continue
			}
			if !d.Value.Equal(seen) {
				t.Errorf("process %d delivered %v, another delivered %v", id, d.Value, seen)
			}
		}
	}
}

func TestRBCEquivocationWithByzantineEchoes(t *testing.T) {
	// The Byzantine origin also echoes and readies both values, trying to
	// drive two quorums. With n = 4, f = 1 the echo quorum is 3, so the two
	// correct-echo camps (2 vs 1) plus one Byzantine echo each reach at
	// most 3 for value a — never both.
	b := newRBCBus(t, 4, 1, 1, ids(0, 1, 2))
	a, v2 := vec(1), vec(2)
	b.inject(3, 0, RBCMsg{Phase: RBCInit, Origin: 3, Tag: 1, Value: a})
	b.inject(3, 1, RBCMsg{Phase: RBCInit, Origin: 3, Tag: 1, Value: a})
	b.inject(3, 2, RBCMsg{Phase: RBCInit, Origin: 3, Tag: 1, Value: v2})
	for _, to := range ids(0, 1, 2) {
		b.inject(3, to, RBCMsg{Phase: RBCEcho, Origin: 3, Tag: 1, Value: a})
		b.inject(3, to, RBCMsg{Phase: RBCEcho, Origin: 3, Tag: 1, Value: v2})
		b.inject(3, to, RBCMsg{Phase: RBCReady, Origin: 3, Tag: 1, Value: a})
		b.inject(3, to, RBCMsg{Phase: RBCReady, Origin: 3, Tag: 1, Value: v2})
	}
	b.drain()
	var seen geometry.Vector
	total := 0
	for _, dels := range b.delivered {
		for _, d := range dels {
			total++
			if seen == nil {
				seen = d.Value
			} else if !d.Value.Equal(seen) {
				t.Fatalf("two different values delivered: %v and %v", seen, d.Value)
			}
		}
	}
	// Totality: if anyone delivered, everyone must have.
	if total != 0 && total != 3 {
		t.Errorf("deliveries = %d, want 0 or 3 (totality)", total)
	}
}

func TestRBCSpoofedInitIgnored(t *testing.T) {
	// Process 1 sends an INIT claiming origin 0 — must be ignored.
	b := newRBCBus(t, 4, 1, 1, ids(0, 1, 2, 3))
	b.inject(1, 2, RBCMsg{Phase: RBCInit, Origin: 0, Tag: 1, Value: vec(9)})
	b.drain()
	if len(b.delivered) != 0 {
		t.Errorf("spoofed init led to deliveries: %v", b.delivered)
	}
}

func TestRBCDuplicateEchoIgnored(t *testing.T) {
	r, err := NewRBC(4, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two echoes from the same process count once: with quorum 3, echoes
	// from {1, 1, 2} must not trigger a ready.
	msgs := []struct {
		from sim.ProcID
		msg  RBCMsg
	}{
		{1, RBCMsg{Phase: RBCEcho, Origin: 3, Tag: 1, Value: vec(4)}},
		{1, RBCMsg{Phase: RBCEcho, Origin: 3, Tag: 1, Value: vec(4)}},
		{2, RBCMsg{Phase: RBCEcho, Origin: 3, Tag: 1, Value: vec(4)}},
	}
	var outs []RBCMsg
	for _, m := range msgs {
		out, _ := r.Handle(m.from, m.msg)
		outs = append(outs, out...)
	}
	if len(outs) != 0 {
		t.Errorf("duplicate echoes triggered %v", outs)
	}
	// A third distinct echo completes the quorum.
	out, _ := r.Handle(3, RBCMsg{Phase: RBCEcho, Origin: 3, Tag: 1, Value: vec(4)})
	if len(out) != 1 || out[0].Phase != RBCReady {
		t.Errorf("expected ready after 3 distinct echoes, got %v", out)
	}
}

func TestRBCReadyAmplification(t *testing.T) {
	// f+1 = 2 readies without any echo quorum must trigger our own ready.
	r, err := NewRBC(4, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := r.Handle(1, RBCMsg{Phase: RBCReady, Origin: 3, Tag: 1, Value: vec(4)})
	if len(out) != 0 {
		t.Fatalf("one ready must not amplify, got %v", out)
	}
	out, _ = r.Handle(2, RBCMsg{Phase: RBCReady, Origin: 3, Tag: 1, Value: vec(4)})
	if len(out) != 1 || out[0].Phase != RBCReady {
		t.Fatalf("two readies must amplify, got %v", out)
	}
	// 2f+1 = 3 readies deliver.
	_, dels := r.Handle(3, RBCMsg{Phase: RBCReady, Origin: 3, Tag: 1, Value: vec(4)})
	if len(dels) != 1 || !dels[0].Value.Equal(vec(4)) {
		t.Fatalf("three readies must deliver, got %v", dels)
	}
	// No double delivery.
	_, dels = r.Handle(0, RBCMsg{Phase: RBCReady, Origin: 3, Tag: 1, Value: vec(4)})
	if len(dels) != 0 {
		t.Error("delivered twice")
	}
}

func TestRBCInvalidValuesDropped(t *testing.T) {
	r, err := NewRBC(4, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []RBCMsg{
		{Phase: RBCInit, Origin: 1, Tag: 1, Value: vec(1)},         // wrong dim
		{Phase: RBCInit, Origin: 9, Tag: 1, Value: vec(1, 2)},      // bad origin
		{Phase: RBCPhase(99), Origin: 1, Tag: 1, Value: vec(1, 2)}, // bad phase
		{Phase: RBCEcho, Origin: 1, Tag: 1, Value: nil},            // nil value
	}
	for _, m := range cases {
		out, dels := r.Handle(m.Origin, m)
		if len(out) != 0 || len(dels) != 0 {
			t.Errorf("malformed %+v produced output", m)
		}
	}
}

func TestRBCConfigValidation(t *testing.T) {
	if _, err := NewRBC(3, 1, 0, 1); err == nil {
		t.Error("n = 3f: expected error")
	}
	if _, err := NewRBC(4, -1, 0, 1); err == nil {
		t.Error("negative f: expected error")
	}
	if _, err := NewRBC(4, 1, 7, 1); err == nil {
		t.Error("self out of range: expected error")
	}
	if _, err := NewRBC(4, 1, 0, 0); err == nil {
		t.Error("dim 0: expected error")
	}
}

func TestRBCBroadcastValidation(t *testing.T) {
	r, err := NewRBC(4, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Broadcast(1, vec(1)); err == nil {
		t.Error("wrong dim: expected error")
	}
}

func TestRBCManyTagsIndependent(t *testing.T) {
	// Instances with different tags are independent even for one origin.
	b := newRBCBus(t, 4, 1, 1, ids(0, 1, 2, 3))
	for tag := 1; tag <= 3; tag++ {
		msg, err := b.procs[1].Broadcast(tag, vec(float64(tag)))
		if err != nil {
			t.Fatal(err)
		}
		b.broadcastFrom(1, msg)
	}
	b.drain()
	for id, dels := range b.delivered {
		if len(dels) != 3 {
			t.Fatalf("process %d delivered %d, want 3", id, len(dels))
		}
		seen := make(map[int]bool)
		for _, d := range dels {
			if !d.Value.Equal(vec(float64(d.Tag))) {
				t.Errorf("tag %d delivered %v", d.Tag, d.Value)
			}
			seen[d.Tag] = true
		}
		if len(seen) != 3 {
			t.Errorf("process %d tags %v", id, seen)
		}
	}
}

func TestRBCPhaseString(t *testing.T) {
	if RBCInit.String() != "init" || RBCEcho.String() != "echo" || RBCReady.String() != "ready" {
		t.Error("phase strings broken")
	}
	if RBCPhase(42).String() == "" {
		t.Error("unknown phase renders empty")
	}
}
