// Package broadcast implements the two broadcast substrates the BVC
// algorithms are built on:
//
//   - EIG: synchronous Byzantine broadcast by exponential information
//     gathering (the Lamport–Shostak–Pease oral-messages protocol in its
//     EIG-tree formulation), correct for n ≥ 3f+1 in f+1 rounds. Exact BVC
//     step 1 runs one instance per process to make all correct processes
//     agree on the full input multiset S.
//
//   - RBC: asynchronous reliable broadcast (Bracha's echo/ready protocol),
//     correct for n > 3f. It supplies AAD Properties 2 and 3 — at most one
//     value delivered per (origin, round), and the origin's own value when
//     the origin is correct — on which the witness mechanism (internal/aad)
//     builds Property 1.
package broadcast

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/geometry"
	"repro/internal/sim"
	"repro/internal/wire"
)

func init() {
	// Wire registration for live transports (sanctioned init use:
	// encoding type registry).
	wire.Register(EIGRoundMsg{})
	wire.Register(RBCMsg{})
}

// EIGRelay is one (path, value) pair relayed in an EIG round: "the chain of
// processes `Path` claims the instance's sender said `Value`".
type EIGRelay struct {
	Path  []sim.ProcID
	Value geometry.Vector
}

// EIGInstanceRelays groups the relays of one EIG instance (identified by
// its designated sender).
type EIGInstanceRelays struct {
	Sender sim.ProcID
	Relays []EIGRelay
}

// EIGRoundMsg is the single per-recipient message of a (possibly multi-
// instance) EIG round.
type EIGRoundMsg struct {
	Round     int
	Instances []EIGInstanceRelays
}

// EIG is one instance of synchronous Byzantine broadcast with a designated
// sender, run for f+1 lock-step rounds and then resolved. The zero value is
// not usable; construct with NewEIG.
type EIG struct {
	n, f   int
	self   sim.ProcID
	sender sim.ProcID
	def    geometry.Vector
	dim    int
	input  geometry.Vector // set iff self == sender

	// vals[k] stores level-(k+1) tree nodes: pathKey(σ) → node, |σ| = k+1.
	// The node keeps the decoded path so the relay step never re-parses
	// keys, and the stored values are treated as immutable (they are cloned
	// nowhere on the hot path — see Receive).
	vals []map[string]eigNode

	keyBuf []byte // scratch for allocation-free key lookups
}

// eigNode is one EIG tree node: the (already validated) relay path and the
// value the path's last process claimed.
type eigNode struct {
	path  []sim.ProcID
	value geometry.Vector
}

// NewEIG builds an EIG instance. def is the default value used for missing
// or malformed relays (all correct processes must use the same default; the
// BVC algorithms use the all-zero vector of dimension d). input is this
// process's value when self == sender (ignored otherwise).
func NewEIG(n, f int, self, sender sim.ProcID, input, def geometry.Vector) (*EIG, error) {
	if n < 3*f+1 {
		return nil, fmt.Errorf("broadcast: EIG requires n ≥ 3f+1, got n=%d f=%d", n, f)
	}
	if f < 0 {
		return nil, fmt.Errorf("broadcast: negative f=%d", f)
	}
	if int(self) < 0 || int(self) >= n || int(sender) < 0 || int(sender) >= n {
		return nil, fmt.Errorf("broadcast: ids self=%d sender=%d out of range n=%d", self, sender, n)
	}
	if def == nil {
		return nil, errors.New("broadcast: nil default value")
	}
	e := &EIG{
		n: n, f: f,
		self:   self,
		sender: sender,
		def:    def.Clone(),
		dim:    def.Dim(),
		vals:   make([]map[string]eigNode, f+1),
	}
	for i := range e.vals {
		e.vals[i] = make(map[string]eigNode)
	}
	if self == sender {
		if input == nil || input.Dim() != e.dim || !input.IsFinite() {
			return nil, fmt.Errorf("broadcast: sender input invalid (dim %d, want %d)", input.Dim(), e.dim)
		}
		e.input = input.Clone()
	}
	return e, nil
}

// Rounds returns the number of synchronous rounds, f+1.
func (e *EIG) Rounds() int { return e.f + 1 }

// Outgoing returns the relays this (honest) process sends in round r; the
// same relays go to every recipient. Round 1 carries only the sender's
// value; round r > 1 relays level-(r−1) tree values not containing self.
func (e *EIG) Outgoing(r int) []EIGRelay {
	if r < 1 || r > e.f+1 {
		return nil
	}
	if r == 1 {
		if e.self != e.sender {
			return nil
		}
		return []EIGRelay{{Path: nil, Value: e.input.Clone()}}
	}
	level := e.vals[r-2] // paths of length r−1
	out := make([]EIGRelay, 0, len(level))
	for _, node := range level {
		if containsID(node.path, e.self) {
			continue
		}
		// The stored path and value are immutable once ingested, so the
		// relay shares them rather than cloning.
		out = append(out, EIGRelay{Path: node.path, Value: node.value})
	}
	sortRelays(out)
	return out
}

// Receive ingests the relays sent by process `from` in round r. Malformed
// relays (bad path shape, duplicate ids, wrong dimension, non-finite
// values) are discarded — the resolve step substitutes the default, exactly
// as the protocol prescribes for missing messages. Ingested paths and values
// are retained without cloning: callers must not mutate them afterwards
// (protocol messages are immutable once sent).
func (e *EIG) Receive(r int, from sim.ProcID, relays []EIGRelay) {
	if r < 1 || r > e.f+1 {
		return
	}
	for _, relay := range relays {
		if len(relay.Path) != r-1 {
			continue
		}
		if r == 1 {
			if from != e.sender {
				continue
			}
		} else {
			if relay.Path[0] != e.sender || !validPath(relay.Path, e.n) || containsID(relay.Path, from) {
				continue
			}
		}
		if relay.Value.Dim() != e.dim || !relay.Value.IsFinite() {
			continue
		}
		buf := e.keyBuf[:0]
		for _, id := range relay.Path {
			buf = appendKeyID(buf, id)
		}
		buf = appendKeyID(buf, from)
		e.keyBuf = buf
		if _, dup := e.vals[r-1][string(buf)]; dup {
			continue // first occurrence wins
		}
		newPath := make([]sim.ProcID, 0, len(relay.Path)+1)
		newPath = append(append(newPath, relay.Path...), from)
		e.vals[r-1][string(buf)] = eigNode{path: newPath, value: relay.Value}
	}
}

// Resolve computes the broadcast decision after the final round by the
// recursive-majority rule on the EIG tree. All correct processes resolve to
// the same value, and to the sender's value when the sender is correct
// (n ≥ 3f+1).
func (e *EIG) Resolve() geometry.Vector {
	// One path buffer serves the whole depth-first recursion: each level
	// writes its own position, so sibling calls may reuse the backing.
	path := make([]sim.ProcID, 1, e.f+2)
	path[0] = e.sender
	// Scratch for one level's children; levels recurse before collecting,
	// so each needs its own window.
	scratch := make([]geometry.Vector, 0, e.n*(e.f+1))
	return e.resolve(path, scratch).Clone()
}

func (e *EIG) resolve(path []sim.ProcID, scratch []geometry.Vector) geometry.Vector {
	level := len(path) - 1
	if len(path) == e.f+1 {
		buf := e.keyBuf[:0]
		for _, id := range path {
			buf = appendKeyID(buf, id)
		}
		e.keyBuf = buf
		if node, ok := e.vals[level][string(buf)]; ok {
			return node.value
		}
		return e.def
	}
	// Strict majority over children W(σ·j), j ∉ σ. The strict-majority
	// value is unique when it exists, so a Boyer-Moore vote (candidate
	// pass + count pass) replaces the per-node hash maps: no allocation,
	// same deterministic result on every correct process.
	children := scratch[len(scratch):len(scratch):cap(scratch)]
	for j := 0; j < e.n; j++ {
		id := sim.ProcID(j)
		if containsID(path, id) {
			continue
		}
		children = append(children, e.resolve(append(path, id), children))
	}
	var candidate geometry.Vector
	lead := 0
	for _, child := range children {
		switch {
		case lead == 0:
			candidate, lead = child, 1
		case candidate.Equal(child):
			lead++
		default:
			lead--
		}
	}
	if candidate != nil {
		count := 0
		for _, child := range children {
			if candidate.Equal(child) {
				count++
			}
		}
		if 2*count > len(children) {
			return candidate
		}
	}
	return e.def
}

// appendKeyID appends one process id to a path key under construction,
// producing the same representation as pathKey without allocating.
func appendKeyID(dst []byte, id sim.ProcID) []byte {
	if len(dst) > 0 {
		dst = append(dst, ',')
	}
	return strconv.AppendInt(dst, int64(id), 10)
}

// pathKey encodes a path deterministically for map storage.
func pathKey(path []sim.ProcID) string {
	var b []byte
	for _, id := range path {
		b = appendKeyID(b, id)
	}
	return string(b)
}

// decodePath is the inverse of pathKey (inputs are internally produced,
// so malformed keys cannot occur).
func decodePath(key string) []sim.ProcID {
	if key == "" {
		return nil
	}
	parts := strings.Split(key, ",")
	out := make([]sim.ProcID, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			panic("broadcast: corrupt internal path key: " + key)
		}
		out[i] = sim.ProcID(v)
	}
	return out
}

// validPath reports whether ids are in range and pairwise distinct (paths
// are short — at most f+1 ids — so the quadratic scan beats a map).
func validPath(path []sim.ProcID, n int) bool {
	for i, id := range path {
		if int(id) < 0 || int(id) >= n {
			return false
		}
		for _, prev := range path[:i] {
			if prev == id {
				return false
			}
		}
	}
	return true
}

func containsID(path []sim.ProcID, id sim.ProcID) bool {
	for _, p := range path {
		if p == id {
			return true
		}
	}
	return false
}

// sortRelays orders relays by path (numeric, position-wise) for
// deterministic message layout.
func sortRelays(relays []EIGRelay) {
	for i := 1; i < len(relays); i++ {
		for j := i; j > 0 && pathLess(relays[j].Path, relays[j-1].Path); j-- {
			relays[j], relays[j-1] = relays[j-1], relays[j]
		}
	}
}

// pathLess compares paths lexicographically by process id.
func pathLess(a, b []sim.ProcID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// MultiEIG runs n concurrent EIG instances, one per designated sender —
// exactly step 1 of the Exact BVC algorithm, where every process broadcasts
// its input vector and all correct processes assemble an identical multiset
// S of n vectors. It implements sim.SyncNode for the lock-step engine.
type MultiEIG struct {
	n, f      int
	self      sim.ProcID
	instances []*EIG
	round     int
	done      bool
	decisions []geometry.Vector
}

var _ sim.SyncNode = (*MultiEIG)(nil)

// NewMultiEIG creates the n-instance broadcast stage for a process with the
// given input vector; def is the shared default value (all-zero vector of
// the input dimension in the BVC algorithms).
func NewMultiEIG(n, f int, self sim.ProcID, input, def geometry.Vector) (*MultiEIG, error) {
	m := &MultiEIG{n: n, f: f, self: self, instances: make([]*EIG, n)}
	for s := 0; s < n; s++ {
		inst, err := NewEIG(n, f, self, sim.ProcID(s), input, def)
		if err != nil {
			return nil, err
		}
		m.instances[s] = inst
	}
	return m, nil
}

// Rounds returns f+1.
func (m *MultiEIG) Rounds() int { return m.f + 1 }

// Outbox implements sim.SyncNode: the honest combined message of round r,
// identical for every recipient.
func (m *MultiEIG) Outbox(r int) map[sim.ProcID]sim.Message {
	if m.done {
		return nil
	}
	msg := EIGRoundMsg{Round: r}
	for s, inst := range m.instances {
		relays := inst.Outgoing(r)
		if len(relays) == 0 {
			continue
		}
		msg.Instances = append(msg.Instances, EIGInstanceRelays{Sender: sim.ProcID(s), Relays: relays})
	}
	out := make(map[sim.ProcID]sim.Message, m.n)
	for to := 0; to < m.n; to++ {
		out[sim.ProcID(to)] = msg
	}
	return out
}

// Deliver implements sim.SyncNode.
func (m *MultiEIG) Deliver(r int, inbox map[sim.ProcID]sim.Message) {
	for from := 0; from < m.n; from++ {
		raw, ok := inbox[sim.ProcID(from)]
		if !ok {
			continue
		}
		msg, ok := raw.(EIGRoundMsg)
		if !ok || msg.Round != r {
			continue
		}
		for _, ir := range msg.Instances {
			if int(ir.Sender) < 0 || int(ir.Sender) >= m.n {
				continue
			}
			m.instances[ir.Sender].Receive(r, sim.ProcID(from), ir.Relays)
		}
	}
	m.round = r
	if m.round >= m.f+1 {
		m.decisions = make([]geometry.Vector, m.n)
		for s, inst := range m.instances {
			m.decisions[s] = inst.Resolve()
		}
		m.done = true
	}
}

// Done implements sim.SyncNode.
func (m *MultiEIG) Done() bool { return m.done }

// Decisions returns, after the final round, the agreed value of every
// instance: Decisions()[s] is what all correct processes agree process s
// broadcast. It returns nil before completion.
func (m *MultiEIG) Decisions() []geometry.Vector {
	if !m.done {
		return nil
	}
	out := make([]geometry.Vector, len(m.decisions))
	for i, v := range m.decisions {
		out[i] = v.Clone()
	}
	return out
}
