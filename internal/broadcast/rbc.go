package broadcast

import (
	"fmt"

	"repro/internal/geometry"
	"repro/internal/sim"
)

// RBCPhase is the protocol phase of an RBC message.
type RBCPhase int

// Bracha protocol phases.
const (
	RBCInit RBCPhase = iota + 1
	RBCEcho
	RBCReady
)

func (p RBCPhase) String() string {
	switch p {
	case RBCInit:
		return "init"
	case RBCEcho:
		return "echo"
	case RBCReady:
		return "ready"
	default:
		return fmt.Sprintf("RBCPhase(%d)", int(p))
	}
}

// RBCMsg is a Bracha reliable-broadcast message for the instance identified
// by (Origin, Tag). Tag carries the asynchronous round number in the BVC
// protocols.
type RBCMsg struct {
	Phase  RBCPhase
	Origin sim.ProcID
	Tag    int
	Value  geometry.Vector
}

// RBCDelivery reports one completed reliable broadcast.
type RBCDelivery struct {
	Origin sim.ProcID
	Tag    int
	Value  geometry.Vector
}

// RBC multiplexes Bracha reliable-broadcast instances keyed by (origin,
// tag). It guarantees, for n > 3f with at most f Byzantine processes:
//
//   - integrity: per instance, a correct process delivers at most one value;
//   - agreement: no two correct processes deliver different values for the
//     same instance;
//   - validity: if the origin is correct, every correct process eventually
//     delivers the origin's value;
//   - totality: if any correct process delivers, every correct process
//     eventually delivers.
//
// These are exactly AAD Properties 2 and 3 plus the liveness the witness
// mechanism needs. RBC is a pure state machine: Handle returns the messages
// to broadcast, and the caller owns actual transmission (engine, runtime,
// or test harness).
type RBC struct {
	n, f  int
	self  sim.ProcID
	dim   int
	insts map[rbcKey]*rbcInst

	keyBuf []byte // scratch for bit-exact value keys (no per-message alloc)
}

type rbcKey struct {
	origin sim.ProcID
	tag    int
}

type rbcInst struct {
	echoed    bool
	readied   bool
	delivered bool
	// echoFrom / readyFrom mark processes whose echo/ready was already
	// counted: correct processes send at most one of each, and counting a
	// Byzantine process once per phase is strictly harder for the
	// adversary, preserving quorum-intersection safety.
	echoFrom  []bool
	readyFrom []bool
	// vals holds the per-distinct-value tallies. Correct instances carry one
	// value; equivocation adds at most a handful, so a linear scan beats a
	// map (and the bit-exact key is only materialized on first sight).
	vals []rbcVal
}

// rbcVal tallies one distinct broadcast value within an instance, identified
// by its bit-exact geometry key (vote counting must be exact, not
// tolerance-based, or near-identical Byzantine values could split quorums).
type rbcVal struct {
	key     string
	value   geometry.Vector
	echoes  int
	readies int
}

// NewRBC creates an RBC multiplexer for process self among n processes
// carrying dim-dimensional vector values.
func NewRBC(n, f int, self sim.ProcID, dim int) (*RBC, error) {
	if f < 0 || n <= 3*f {
		return nil, fmt.Errorf("broadcast: RBC requires n > 3f, got n=%d f=%d", n, f)
	}
	if int(self) < 0 || int(self) >= n {
		return nil, fmt.Errorf("broadcast: self=%d out of range n=%d", self, n)
	}
	if dim < 1 {
		return nil, fmt.Errorf("broadcast: invalid value dimension %d", dim)
	}
	return &RBC{n: n, f: f, self: self, dim: dim, insts: make(map[rbcKey]*rbcInst)}, nil
}

// echoQuorum is ⌊(n+f)/2⌋+1: two echo quorums for different values must
// intersect in a correct process, which echoes only once.
func (r *RBC) echoQuorum() int { return (r.n+r.f)/2 + 1 }

// Broadcast starts this process's own instance for the given tag and
// returns the INIT message to send to every process (including self).
func (r *RBC) Broadcast(tag int, value geometry.Vector) (RBCMsg, error) {
	if value.Dim() != r.dim || !value.IsFinite() {
		return RBCMsg{}, fmt.Errorf("broadcast: invalid RBC value (dim %d, want %d)", value.Dim(), r.dim)
	}
	return RBCMsg{Phase: RBCInit, Origin: r.self, Tag: tag, Value: value.Clone()}, nil
}

// Handle processes one message from the network. It returns protocol
// messages to broadcast to all processes and any deliveries triggered.
// Malformed or equivocating messages are dropped or ignored per protocol.
func (r *RBC) Handle(from sim.ProcID, msg RBCMsg) ([]RBCMsg, []RBCDelivery) {
	if int(msg.Origin) < 0 || int(msg.Origin) >= r.n || int(from) < 0 || int(from) >= r.n {
		return nil, nil
	}
	if msg.Value.Dim() != r.dim || !msg.Value.IsFinite() {
		return nil, nil
	}
	key := rbcKey{origin: msg.Origin, tag: msg.Tag}
	inst := r.insts[key]
	if inst == nil {
		inst = &rbcInst{
			echoFrom:  make([]bool, r.n),
			readyFrom: make([]bool, r.n),
		}
		r.insts[key] = inst
	}

	var out []RBCMsg
	var deliveries []RBCDelivery

	switch msg.Phase {
	case RBCInit:
		// Only the origin itself may INIT its instance; first INIT wins.
		if from != msg.Origin || inst.echoed {
			return nil, nil
		}
		inst.echoed = true
		out = append(out, RBCMsg{Phase: RBCEcho, Origin: msg.Origin, Tag: msg.Tag, Value: msg.Value.Clone()})

	case RBCEcho:
		if inst.echoFrom[from] {
			return nil, nil
		}
		inst.echoFrom[from] = true
		r.keyBuf = geometry.AppendKey(r.keyBuf[:0], msg.Value)
		c := inst.count(r.keyBuf, msg.Value)
		c.echoes++
		if c.echoes >= r.echoQuorum() && !inst.readied {
			inst.readied = true
			out = append(out, RBCMsg{Phase: RBCReady, Origin: msg.Origin, Tag: msg.Tag, Value: msg.Value.Clone()})
		}

	case RBCReady:
		if inst.readyFrom[from] {
			return nil, nil
		}
		inst.readyFrom[from] = true
		r.keyBuf = geometry.AppendKey(r.keyBuf[:0], msg.Value)
		c := inst.count(r.keyBuf, msg.Value)
		c.readies++
		if c.readies >= r.f+1 && !inst.readied {
			inst.readied = true
			out = append(out, RBCMsg{Phase: RBCReady, Origin: msg.Origin, Tag: msg.Tag, Value: msg.Value.Clone()})
		}
		if c.readies >= 2*r.f+1 && !inst.delivered {
			inst.delivered = true
			deliveries = append(deliveries, RBCDelivery{Origin: msg.Origin, Tag: msg.Tag, Value: c.value.Clone()})
		}

	default:
		return nil, nil
	}
	return out, deliveries
}

// count returns the tally of the value identified by vkey, creating it (with
// an owned copy of the key and value) on first sight. The returned pointer
// is only valid until the next count call on this instance.
func (i *rbcInst) count(vkey []byte, value geometry.Vector) *rbcVal {
	for idx := range i.vals {
		if i.vals[idx].key == string(vkey) {
			return &i.vals[idx]
		}
	}
	i.vals = append(i.vals, rbcVal{key: string(vkey), value: value.Clone()})
	return &i.vals[len(i.vals)-1]
}
