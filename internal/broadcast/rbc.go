package broadcast

import (
	"fmt"

	"repro/internal/geometry"
	"repro/internal/sim"
)

// RBCPhase is the protocol phase of an RBC message.
type RBCPhase int

// Bracha protocol phases.
const (
	RBCInit RBCPhase = iota + 1
	RBCEcho
	RBCReady
)

func (p RBCPhase) String() string {
	switch p {
	case RBCInit:
		return "init"
	case RBCEcho:
		return "echo"
	case RBCReady:
		return "ready"
	default:
		return fmt.Sprintf("RBCPhase(%d)", int(p))
	}
}

// RBCMsg is a Bracha reliable-broadcast message for the instance identified
// by (Origin, Tag). Tag carries the asynchronous round number in the BVC
// protocols.
type RBCMsg struct {
	Phase  RBCPhase
	Origin sim.ProcID
	Tag    int
	Value  geometry.Vector
}

// RBCDelivery reports one completed reliable broadcast.
type RBCDelivery struct {
	Origin sim.ProcID
	Tag    int
	Value  geometry.Vector
}

// RBC multiplexes Bracha reliable-broadcast instances keyed by (origin,
// tag). It guarantees, for n > 3f with at most f Byzantine processes:
//
//   - integrity: per instance, a correct process delivers at most one value;
//   - agreement: no two correct processes deliver different values for the
//     same instance;
//   - validity: if the origin is correct, every correct process eventually
//     delivers the origin's value;
//   - totality: if any correct process delivers, every correct process
//     eventually delivers.
//
// These are exactly AAD Properties 2 and 3 plus the liveness the witness
// mechanism needs. RBC is a pure state machine: Handle returns the messages
// to broadcast, and the caller owns actual transmission (engine, runtime,
// or test harness).
type RBC struct {
	n, f  int
	self  sim.ProcID
	dim   int
	insts map[rbcKey]*rbcInst
}

type rbcKey struct {
	origin sim.ProcID
	tag    int
}

type rbcInst struct {
	echoed    bool
	readied   bool
	delivered bool
	// echoFrom / readyFrom record the first echo/ready value key per
	// process: correct processes send at most one of each, and counting a
	// Byzantine process once per phase is strictly harder for the
	// adversary, preserving quorum-intersection safety.
	echoFrom  map[sim.ProcID]string
	readyFrom map[sim.ProcID]string
	counts    map[string]*rbcCounts
	values    map[string]geometry.Vector
}

type rbcCounts struct {
	echoes  int
	readies int
}

// NewRBC creates an RBC multiplexer for process self among n processes
// carrying dim-dimensional vector values.
func NewRBC(n, f int, self sim.ProcID, dim int) (*RBC, error) {
	if f < 0 || n <= 3*f {
		return nil, fmt.Errorf("broadcast: RBC requires n > 3f, got n=%d f=%d", n, f)
	}
	if int(self) < 0 || int(self) >= n {
		return nil, fmt.Errorf("broadcast: self=%d out of range n=%d", self, n)
	}
	if dim < 1 {
		return nil, fmt.Errorf("broadcast: invalid value dimension %d", dim)
	}
	return &RBC{n: n, f: f, self: self, dim: dim, insts: make(map[rbcKey]*rbcInst)}, nil
}

// echoQuorum is ⌊(n+f)/2⌋+1: two echo quorums for different values must
// intersect in a correct process, which echoes only once.
func (r *RBC) echoQuorum() int { return (r.n+r.f)/2 + 1 }

// Broadcast starts this process's own instance for the given tag and
// returns the INIT message to send to every process (including self).
func (r *RBC) Broadcast(tag int, value geometry.Vector) (RBCMsg, error) {
	if value.Dim() != r.dim || !value.IsFinite() {
		return RBCMsg{}, fmt.Errorf("broadcast: invalid RBC value (dim %d, want %d)", value.Dim(), r.dim)
	}
	return RBCMsg{Phase: RBCInit, Origin: r.self, Tag: tag, Value: value.Clone()}, nil
}

// Handle processes one message from the network. It returns protocol
// messages to broadcast to all processes and any deliveries triggered.
// Malformed or equivocating messages are dropped or ignored per protocol.
func (r *RBC) Handle(from sim.ProcID, msg RBCMsg) ([]RBCMsg, []RBCDelivery) {
	if int(msg.Origin) < 0 || int(msg.Origin) >= r.n {
		return nil, nil
	}
	if msg.Value.Dim() != r.dim || !msg.Value.IsFinite() {
		return nil, nil
	}
	key := rbcKey{origin: msg.Origin, tag: msg.Tag}
	inst := r.insts[key]
	if inst == nil {
		inst = &rbcInst{
			echoFrom:  make(map[sim.ProcID]string),
			readyFrom: make(map[sim.ProcID]string),
			counts:    make(map[string]*rbcCounts),
			values:    make(map[string]geometry.Vector),
		}
		r.insts[key] = inst
	}

	var out []RBCMsg
	var deliveries []RBCDelivery
	vkey := geometry.Key(msg.Value)

	switch msg.Phase {
	case RBCInit:
		// Only the origin itself may INIT its instance; first INIT wins.
		if from != msg.Origin || inst.echoed {
			return nil, nil
		}
		inst.echoed = true
		out = append(out, RBCMsg{Phase: RBCEcho, Origin: msg.Origin, Tag: msg.Tag, Value: msg.Value.Clone()})

	case RBCEcho:
		if _, dup := inst.echoFrom[from]; dup {
			return nil, nil
		}
		inst.echoFrom[from] = vkey
		c := inst.count(vkey, msg.Value)
		c.echoes++
		if c.echoes >= r.echoQuorum() && !inst.readied {
			inst.readied = true
			out = append(out, RBCMsg{Phase: RBCReady, Origin: msg.Origin, Tag: msg.Tag, Value: msg.Value.Clone()})
		}

	case RBCReady:
		if _, dup := inst.readyFrom[from]; dup {
			return nil, nil
		}
		inst.readyFrom[from] = vkey
		c := inst.count(vkey, msg.Value)
		c.readies++
		if c.readies >= r.f+1 && !inst.readied {
			inst.readied = true
			out = append(out, RBCMsg{Phase: RBCReady, Origin: msg.Origin, Tag: msg.Tag, Value: msg.Value.Clone()})
		}
		if c.readies >= 2*r.f+1 && !inst.delivered {
			inst.delivered = true
			deliveries = append(deliveries, RBCDelivery{Origin: msg.Origin, Tag: msg.Tag, Value: inst.values[vkey].Clone()})
		}

	default:
		return nil, nil
	}
	return out, deliveries
}

func (i *rbcInst) count(vkey string, value geometry.Vector) *rbcCounts {
	c := i.counts[vkey]
	if c == nil {
		c = &rbcCounts{}
		i.counts[vkey] = c
		i.values[vkey] = value.Clone()
	}
	return c
}
