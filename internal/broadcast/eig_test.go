package broadcast

import (
	"testing"

	"repro/internal/geometry"
	"repro/internal/sim"
)

func vec(xs ...float64) geometry.Vector { return geometry.Vector(xs) }

// runEIG drives one EIG instance among n processes by hand. honest maps
// process id → instance (Byzantine processes are absent). byz, when
// non-nil, supplies the relays a Byzantine process sends in round r to a
// specific recipient.
func runEIG(t *testing.T, n, f int, honest map[sim.ProcID]*EIG,
	byz map[sim.ProcID]func(r int, to sim.ProcID) []EIGRelay) {
	t.Helper()
	rounds := f + 1
	for r := 1; r <= rounds; r++ {
		// Honest relays are recipient-independent.
		honestOut := make(map[sim.ProcID][]EIGRelay, len(honest))
		for id, inst := range honest {
			honestOut[id] = inst.Outgoing(r)
		}
		for to, inst := range honest {
			for from := 0; from < n; from++ {
				fromID := sim.ProcID(from)
				if h, ok := honestOut[fromID]; ok {
					inst.Receive(r, fromID, h)
				} else if fn, ok := byz[fromID]; ok && fn != nil {
					inst.Receive(r, fromID, fn(r, to))
				}
			}
		}
	}
}

func newEIGorFatal(t *testing.T, n, f int, self, sender sim.ProcID, input geometry.Vector) *EIG {
	t.Helper()
	def := geometry.NewVector(2)
	e, err := NewEIG(n, f, self, sender, input, def)
	if err != nil {
		t.Fatalf("NewEIG: %v", err)
	}
	return e
}

func TestEIGHonestSender(t *testing.T) {
	const n, f = 4, 1
	value := vec(3, -1)
	honest := make(map[sim.ProcID]*EIG, n)
	for i := 0; i < n; i++ {
		var input geometry.Vector
		if i == 0 {
			input = value
		}
		honest[sim.ProcID(i)] = newEIGorFatal(t, n, f, sim.ProcID(i), 0, input)
	}
	runEIG(t, n, f, honest, nil)
	for id, inst := range honest {
		if got := inst.Resolve(); !got.Equal(value) {
			t.Errorf("process %d resolved %v, want %v", id, got, value)
		}
	}
}

func TestEIGSilentSenderDefaults(t *testing.T) {
	const n, f = 4, 1
	// Sender (id 0) is Byzantine-silent: relays nothing.
	honest := make(map[sim.ProcID]*EIG, n-1)
	for i := 1; i < n; i++ {
		honest[sim.ProcID(i)] = newEIGorFatal(t, n, f, sim.ProcID(i), 0, nil)
	}
	runEIG(t, n, f, honest, nil)
	def := geometry.NewVector(2)
	for id, inst := range honest {
		if got := inst.Resolve(); !got.Equal(def) {
			t.Errorf("process %d resolved %v, want default %v", id, got, def)
		}
	}
}

func TestEIGEquivocatingSenderAgreement(t *testing.T) {
	// Byzantine sender tells each process a different value; with n = 4,
	// f = 1 all correct processes must still agree (on anything).
	const n, f = 4, 1
	honest := make(map[sim.ProcID]*EIG, n-1)
	for i := 1; i < n; i++ {
		honest[sim.ProcID(i)] = newEIGorFatal(t, n, f, sim.ProcID(i), 0, nil)
	}
	byz := map[sim.ProcID]func(r int, to sim.ProcID) []EIGRelay{
		0: func(r int, to sim.ProcID) []EIGRelay {
			if r != 1 {
				return nil
			}
			return []EIGRelay{{Path: nil, Value: vec(float64(to), 0)}}
		},
	}
	runEIG(t, n, f, honest, byz)
	var first geometry.Vector
	for id := 1; id < n; id++ {
		got := honest[sim.ProcID(id)].Resolve()
		if first == nil {
			first = got
			continue
		}
		if !got.Equal(first) {
			t.Errorf("agreement violated: process %d resolved %v, process 1 resolved %v", id, got, first)
		}
	}
}

func TestEIGByzantineRelayCannotBreakValidity(t *testing.T) {
	// Correct sender, one Byzantine relay lying about the sender's value in
	// round 2: majority resolution must restore the sender's value.
	const n, f = 4, 1
	value := vec(7, 7)
	honest := make(map[sim.ProcID]*EIG, n-1)
	honest[0] = newEIGorFatal(t, n, f, 0, 0, value)
	for i := 1; i < 3; i++ {
		honest[sim.ProcID(i)] = newEIGorFatal(t, n, f, sim.ProcID(i), 0, nil)
	}
	byz := map[sim.ProcID]func(r int, to sim.ProcID) []EIGRelay{
		3: func(r int, to sim.ProcID) []EIGRelay {
			if r != 2 {
				return nil
			}
			return []EIGRelay{{Path: []sim.ProcID{0}, Value: vec(-99, -99)}}
		},
	}
	runEIG(t, n, f, honest, byz)
	for id, inst := range honest {
		if got := inst.Resolve(); !got.Equal(value) {
			t.Errorf("validity violated at %d: %v, want %v", id, got, value)
		}
	}
}

func TestEIGTwoFaultsNeedsSevenProcesses(t *testing.T) {
	// f = 2, n = 7: equivocating sender plus a colluding relay; correct
	// processes must agree after 3 rounds.
	const n, f = 7, 2
	honest := make(map[sim.ProcID]*EIG, n-2)
	for i := 2; i < n; i++ {
		honest[sim.ProcID(i)] = newEIGorFatal(t, n, f, sim.ProcID(i), 0, nil)
	}
	byz := map[sim.ProcID]func(r int, to sim.ProcID) []EIGRelay{
		0: func(r int, to sim.ProcID) []EIGRelay { // equivocating sender
			if r != 1 {
				return nil
			}
			return []EIGRelay{{Path: nil, Value: vec(float64(int(to)%2), 1)}}
		},
		1: func(r int, to sim.ProcID) []EIGRelay { // colluder lies in later rounds
			if r == 1 {
				return nil
			}
			return []EIGRelay{{Path: []sim.ProcID{0}, Value: vec(float64(int(to)%3), 2)}}
		},
	}
	runEIG(t, n, f, honest, byz)
	var first geometry.Vector
	for i := 2; i < n; i++ {
		got := honest[sim.ProcID(i)].Resolve()
		if first == nil {
			first = got
			continue
		}
		if !got.Equal(first) {
			t.Fatalf("agreement violated under f=2 attack: %v vs %v", got, first)
		}
	}
}

func TestEIGRejectsMalformedRelays(t *testing.T) {
	const n, f = 4, 1
	inst := newEIGorFatal(t, n, f, 1, 0, nil)
	// All of these must be ignored without panicking.
	inst.Receive(1, 2, []EIGRelay{{Path: nil, Value: vec(1, 1)}})             // round-1 from non-sender
	inst.Receive(2, 2, []EIGRelay{{Path: []sim.ProcID{5}, Value: vec(1, 1)}}) // id out of range
	inst.Receive(2, 2, []EIGRelay{{Path: []sim.ProcID{1}, Value: vec(1, 1)}}) // path not starting at sender
	inst.Receive(2, 2, []EIGRelay{{Path: []sim.ProcID{0, 2}, Value: vec(1)}}) // wrong length
	inst.Receive(2, 2, []EIGRelay{{Path: []sim.ProcID{2}, Value: vec(1, 1)}}) // wrong root
	inst.Receive(2, 2, []EIGRelay{{Path: []sim.ProcID{0}, Value: vec(1)}})    // wrong dimension
	inst.Receive(0, 0, nil)                                                   // out-of-range round
	inst.Receive(9, 0, nil)
	def := geometry.NewVector(2)
	if got := inst.Resolve(); !got.Equal(def) {
		t.Errorf("resolved %v, want default", got)
	}
}

func TestEIGConfigValidation(t *testing.T) {
	def := geometry.NewVector(1)
	if _, err := NewEIG(3, 1, 0, 0, vec(1), def); err == nil {
		t.Error("n < 3f+1: expected error")
	}
	if _, err := NewEIG(4, -1, 0, 0, vec(1), def); err == nil {
		t.Error("negative f: expected error")
	}
	if _, err := NewEIG(4, 1, 9, 0, vec(1), def); err == nil {
		t.Error("self out of range: expected error")
	}
	if _, err := NewEIG(4, 1, 0, 9, vec(1), def); err == nil {
		t.Error("sender out of range: expected error")
	}
	if _, err := NewEIG(4, 1, 0, 0, nil, def); err == nil {
		t.Error("nil sender input: expected error")
	}
	if _, err := NewEIG(4, 1, 0, 0, vec(1, 2), def); err == nil {
		t.Error("input dim mismatch: expected error")
	}
	if _, err := NewEIG(4, 1, 0, 0, vec(1), nil); err == nil {
		t.Error("nil default: expected error")
	}
}

func TestEIGF0SingleRound(t *testing.T) {
	const n, f = 2, 0
	value := vec(5, 5)
	honest := map[sim.ProcID]*EIG{
		0: newEIGorFatal(t, n, f, 0, 0, value),
		1: newEIGorFatal(t, n, f, 1, 0, nil),
	}
	runEIG(t, n, f, honest, nil)
	for id, inst := range honest {
		if got := inst.Resolve(); !got.Equal(value) {
			t.Errorf("process %d resolved %v", id, got)
		}
	}
}

func TestMultiEIGAllHonest(t *testing.T) {
	const n, f = 4, 1
	def := geometry.NewVector(2)
	inputs := []geometry.Vector{vec(0, 0), vec(1, 0), vec(0, 1), vec(1, 1)}
	nodes := make([]sim.SyncNode, n)
	impls := make([]*MultiEIG, n)
	for i := 0; i < n; i++ {
		m, err := NewMultiEIG(n, f, sim.ProcID(i), inputs[i], def)
		if err != nil {
			t.Fatal(err)
		}
		impls[i] = m
		nodes[i] = m
	}
	stats, err := sim.RunSync(nodes, f+2)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AllDone || stats.Rounds != f+1 {
		t.Errorf("stats = %+v", stats)
	}
	for i, m := range impls {
		ds := m.Decisions()
		if ds == nil {
			t.Fatalf("node %d has no decisions", i)
		}
		for s, got := range ds {
			if !got.Equal(inputs[s]) {
				t.Errorf("node %d instance %d: %v, want %v", i, s, got, inputs[s])
			}
		}
	}
}

// byzMultiEIG equivocates in every instance and round.
type byzMultiEIG struct {
	n     int
	round int
	done  bool
}

func (b *byzMultiEIG) Outbox(r int) map[sim.ProcID]sim.Message {
	out := make(map[sim.ProcID]sim.Message, b.n)
	for to := 0; to < b.n; to++ {
		msg := EIGRoundMsg{Round: r}
		if r == 1 {
			msg.Instances = []EIGInstanceRelays{{
				Sender: 3,
				Relays: []EIGRelay{{Path: nil, Value: vec(float64(to*10), -5)}},
			}}
		} else {
			msg.Instances = []EIGInstanceRelays{{
				Sender: 0,
				Relays: []EIGRelay{{Path: []sim.ProcID{0}, Value: vec(float64(-to), 99)}},
			}}
		}
		out[sim.ProcID(to)] = msg
	}
	return out
}

func (b *byzMultiEIG) Deliver(r int, _ map[sim.ProcID]sim.Message) {
	b.round = r
	if r >= 2 {
		b.done = true
	}
}

func (b *byzMultiEIG) Done() bool { return b.done }

func TestMultiEIGWithByzantine(t *testing.T) {
	const n, f = 4, 1
	def := geometry.NewVector(2)
	inputs := []geometry.Vector{vec(0, 0), vec(1, 0), vec(0, 1)}
	nodes := make([]sim.SyncNode, n)
	impls := make([]*MultiEIG, 3)
	for i := 0; i < 3; i++ {
		m, err := NewMultiEIG(n, f, sim.ProcID(i), inputs[i], def)
		if err != nil {
			t.Fatal(err)
		}
		impls[i] = m
		nodes[i] = m
	}
	nodes[3] = &byzMultiEIG{n: n}
	if _, err := sim.RunSync(nodes, f+2); err != nil {
		t.Fatal(err)
	}
	// Agreement: identical decision multiset across correct processes.
	base := impls[0].Decisions()
	for i := 1; i < 3; i++ {
		ds := impls[i].Decisions()
		for s := range ds {
			if !ds[s].Equal(base[s]) {
				t.Errorf("instance %d: node %d decided %v, node 0 decided %v", s, i, ds[s], base[s])
			}
		}
	}
	// Validity: correct senders' instances carry their true inputs.
	for s := 0; s < 3; s++ {
		if !base[s].Equal(inputs[s]) {
			t.Errorf("instance %d decided %v, want input %v", s, base[s], inputs[s])
		}
	}
}

func TestMultiEIGDecisionsNilBeforeDone(t *testing.T) {
	m, err := NewMultiEIG(4, 1, 0, vec(1, 1), geometry.NewVector(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Decisions() != nil {
		t.Error("Decisions should be nil before completion")
	}
}

func TestPathKeyRoundTrip(t *testing.T) {
	paths := [][]sim.ProcID{nil, {0}, {3, 1, 4}, {10, 2}}
	for _, p := range paths {
		got := decodePath(pathKey(p))
		if len(got) != len(p) {
			t.Errorf("round trip %v → %v", p, got)
			continue
		}
		for i := range p {
			if got[i] != p[i] {
				t.Errorf("round trip %v → %v", p, got)
			}
		}
	}
}
