package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// sinkConn is a net.Conn that records everything written to it.
type sinkConn struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *sinkConn) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(b)
}

func (s *sinkConn) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}

func (s *sinkConn) Read([]byte) (int, error)         { select {} }
func (s *sinkConn) Close() error                     { return nil }
func (s *sinkConn) LocalAddr() net.Addr              { return nil }
func (s *sinkConn) RemoteAddr() net.Addr             { return nil }
func (s *sinkConn) SetDeadline(time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(time.Time) error { return nil }

// testFrames builds a deterministic sequence of consensus frames.
func testFrames(n int) [][]byte {
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = wire.AppendConsensus(nil, uint64(i), &wire.ConsensusMsg{
			Kind: wire.ConsensusRBC, Phase: 1, Origin: uint32(i % 5), Round: uint32(i),
			Value: []float64{float64(i), 0.5},
		})
	}
	return frames
}

// faultyScenario is a scenario exercising every per-frame fault.
func faultyScenario() *Scenario {
	return &Scenario{
		Name: "unit",
		Seed: 42,
		Links: []LinkFault{
			{From: Wildcard, To: Wildcard, Drop: 0.1, Duplicate: 0.1, Reorder: 0.15, Corrupt: 0.1},
		},
	}
}

// runThrough pushes the frames through a fresh injector's link 0→1,
// splitting the stream at the given chunk size (0 = one frame per
// Write), and returns the emitted bytes and counters.
func runThrough(t *testing.T, scn *Scenario, frames [][]byte, chunk int) ([]byte, Counters) {
	t.Helper()
	inj, err := NewInjector(scn, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	sink := &sinkConn{}
	conn := inj.Accepted(1, sink)
	if chunk == 0 {
		for _, f := range frames {
			if _, err := conn.Write(f); err != nil {
				t.Fatal(err)
			}
		}
	} else {
		var stream []byte
		for _, f := range frames {
			stream = append(stream, f...)
		}
		for at := 0; at < len(stream); at += chunk {
			end := at + chunk
			if end > len(stream) {
				end = len(stream)
			}
			if _, err := conn.Write(stream[at:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sink.bytes(), inj.Counters()
}

// TestInjectorDeterministicDecisions is the replay anchor: the same
// scenario, seed, and frame sequence produce bit-identical emitted bytes
// and counters — and the decisions depend only on the frame sequence,
// not on how Write calls chunk the stream.
func TestInjectorDeterministicDecisions(t *testing.T) {
	frames := testFrames(400)
	outA, ctrA := runThrough(t, faultyScenario(), frames, 0)
	outB, ctrB := runThrough(t, faultyScenario(), frames, 0)
	if !bytes.Equal(outA, outB) {
		t.Fatalf("same seed, same frames: emitted bytes diverge (%d vs %d bytes)", len(outA), len(outB))
	}
	if ctrA != ctrB {
		t.Fatalf("same seed, same frames: counters diverge:\n%+v\n%+v", ctrA, ctrB)
	}
	if ctrA.Dropped == 0 || ctrA.Duplicated == 0 || ctrA.Reordered == 0 || ctrA.Corrupted == 0 {
		t.Fatalf("scenario did not exercise all faults: %+v", ctrA)
	}
	// Frame granularity: chunking the stream differently changes nothing.
	for _, chunk := range []int{1, 7, 64, 1 << 20} {
		out, ctr := runThrough(t, faultyScenario(), frames, chunk)
		if !bytes.Equal(outA, out) {
			t.Fatalf("chunk=%d: emitted bytes diverge from per-frame writes", chunk)
		}
		if ctrA != ctr {
			t.Fatalf("chunk=%d: counters diverge: %+v vs %+v", chunk, ctrA, ctr)
		}
	}
	// A different seed must (overwhelmingly) decide differently.
	other := faultyScenario()
	other.Seed = 43
	outC, ctrC := runThrough(t, other, frames, 0)
	if bytes.Equal(outA, outC) && ctrA == ctrC {
		t.Fatal("different seeds produced identical fault decisions")
	}
}

// TestInjectorEmissionsParse asserts every emitted frame still parses at
// the stream level (corruption flips bytes past the length prefix only).
func TestInjectorEmissionsParse(t *testing.T) {
	out, ctr := runThrough(t, faultyScenario(), testFrames(300), 0)
	r := bytes.NewReader(out)
	var buf []byte
	frames := 0
	for {
		frame, nb, err := wire.ReadFrameInto(r, buf)
		if err != nil {
			if r.Len() != 0 {
				t.Fatalf("stream desynced after %d frames: %v (%d bytes left)", frames, err, r.Len())
			}
			break
		}
		buf = nb
		_ = frame
		frames++
	}
	want := ctr.Frames - ctr.Dropped - ctr.Blackholed + ctr.Duplicated
	if int64(frames) < want-1 || int64(frames) > want {
		// A frame held for reorder with no successor stays held; allow 1.
		t.Fatalf("emitted %d parseable frames, counters imply %d", frames, want)
	}
}

// TestTimelineDeterministic double-expands a scenario with every
// transport action and requires identical timelines.
func TestTimelineDeterministic(t *testing.T) {
	scn := &Scenario{
		Seed: 7,
		Events: []Event{
			{At: Dur(100 * time.Millisecond), Action: ActionCut, From: 0, To: Wildcard},
			{At: Dur(200 * time.Millisecond), Action: ActionPartition, Groups: [][]int{{0}, {1, 2, 3}}},
			{At: Dur(300 * time.Millisecond), Action: ActionHeal, From: 0, To: 1},
			{At: Dur(400 * time.Millisecond), Action: ActionHealAll},
			{At: Dur(500 * time.Millisecond), Action: ActionCrash, Proc: 2},
			{At: Dur(600 * time.Millisecond), Action: ActionRestart, Proc: 2},
		},
	}
	if err := scn.Validate(4); err != nil {
		t.Fatal(err)
	}
	for local := 0; local < 4; local++ {
		a, b := scn.Timeline(4, local), scn.Timeline(4, local)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("local %d: timeline not deterministic", local)
		}
		for _, op := range a {
			if op.Peer == local {
				t.Fatalf("local %d: self-link op %+v", local, op)
			}
		}
	}
	// Partition semantics: proc 0 isolated and severed from everyone.
	tl := scn.Timeline(4, 0)
	sawIsolate1, sawSever1 := false, false
	for _, op := range tl {
		if op.At == 200*time.Millisecond && op.Peer == 1 {
			switch op.Op {
			case "isolate":
				sawIsolate1 = true
			case "sever":
				sawSever1 = true
			}
		}
	}
	if !sawIsolate1 || !sawSever1 {
		t.Fatalf("partition did not isolate+sever 0→1: %+v", tl)
	}
	procs := scn.ProcEvents()
	if len(procs) != 2 || procs[0].Action != ActionCrash || procs[1].Action != ActionRestart {
		t.Fatalf("proc events: %+v", procs)
	}
}

// TestCutBlackholesAndRefusesDials covers the manual control surface.
func TestCutBlackholesAndRefusesDials(t *testing.T) {
	inj, err := NewInjector(nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	sink := &sinkConn{}
	conn := inj.Accepted(1, sink)
	frame := wire.AppendGoodbye(nil)

	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if got := sink.bytes(); !bytes.Equal(got, frame) {
		t.Fatalf("healthy link altered frame: %x vs %x", got, frame)
	}

	inj.Cut(1)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if got := sink.bytes(); !bytes.Equal(got, frame) {
		t.Fatalf("cut link leaked bytes: %x", got)
	}
	if ctr := inj.Counters(); ctr.Blackholed != 1 {
		t.Fatalf("blackholed = %d, want 1", ctr.Blackholed)
	}

	ln, err := inj.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	if _, err := inj.Dial(context.Background(), 1, ln.Addr().String()); err != ErrLinkCut {
		t.Fatalf("dial on cut link: err=%v, want ErrLinkCut", err)
	}
	if ctr := inj.Counters(); ctr.RefusedDials != 1 {
		t.Fatalf("refusedDials = %d, want 1", ctr.RefusedDials)
	}
	inj.Heal(1)
	c, err := inj.Dial(context.Background(), 1, ln.Addr().String())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c.Close()
	inj.Stop()
}

// TestPacingPreservesOrder pushes frames through a delayed link and
// requires the full sequence to arrive unchanged and in order.
func TestPacingPreservesOrder(t *testing.T) {
	scn := &Scenario{
		Seed:  1,
		Links: []LinkFault{{From: Wildcard, To: Wildcard, Delay: Dur(time.Millisecond), Jitter: Dur(2 * time.Millisecond), BandwidthBps: 1 << 20}},
	}
	inj, err := NewInjector(scn, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	sink := &sinkConn{}
	conn := inj.Accepted(1, sink)
	frames := testFrames(50)
	var want []byte
	for _, f := range frames {
		want = append(want, f...)
		if _, err := conn.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.bytes()) < len(want) {
		if time.Now().After(deadline) {
			t.Fatalf("pump delivered %d/%d bytes before deadline", len(sink.bytes()), len(want))
		}
		time.Sleep(time.Millisecond)
	}
	if got := sink.bytes(); !bytes.Equal(got, want) {
		t.Fatalf("paced link altered or reordered the stream (%d vs %d bytes)", len(got), len(want))
	}
	if ctr := inj.Counters(); ctr.Delayed != int64(len(frames)) {
		t.Fatalf("delayed = %d, want %d", ctr.Delayed, len(frames))
	}
	conn.Close()
	inj.Stop()
}

// TestSeverKillsConns covers partition-grade conn killing.
func TestSeverKillsConns(t *testing.T) {
	inj, err := NewInjector(nil, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer b.Close()
	wrapped := inj.Accepted(1, a)
	inj.Partition([][]int{{0}, {1, 2}})
	if !inj.CutTo(1) || !inj.CutTo(2) {
		t.Fatal("partition did not cut cross-group links")
	}
	if ctr := inj.Counters(); ctr.KilledConns != 1 {
		t.Fatalf("killedConns = %d, want 1", ctr.KilledConns)
	}
	if _, err := wrapped.(*faultConn).Conn.Write([]byte{0}); err == nil {
		// net.Pipe returns io.ErrClosedPipe once closed.
		t.Fatal("severed conn still writable")
	}
	inj.HealAll()
	if inj.CutTo(1) || inj.CutTo(2) {
		t.Fatal("heal-all left a cut")
	}
}

// TestScenarioJSON covers the Dur forms and Load/Validate plumbing.
func TestScenarioJSON(t *testing.T) {
	blob := []byte(`{
		"name": "x", "seed": 9, "duration": "2s",
		"links": [{"from": -1, "to": 0, "delay": "5ms", "jitter": 2.5, "drop": 0.01}],
		"events": [
			{"at": "500ms", "action": "partition", "groups": [[0],[1,2]]},
			{"at": 800, "action": "heal-all"},
			{"at": "1s", "action": "crash", "proc": 1},
			{"at": "1.5s", "action": "restart", "proc": 1}
		]
	}`)
	var s Scenario
	if err := json.Unmarshal(blob, &s); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(3); err != nil {
		t.Fatal(err)
	}
	if s.Links[0].Delay.D() != 5*time.Millisecond {
		t.Fatalf("delay = %v", s.Links[0].Delay.D())
	}
	if s.Links[0].Jitter.D() != 2500*time.Microsecond {
		t.Fatalf("numeric jitter = %v, want 2.5ms", s.Links[0].Jitter.D())
	}
	if s.Events[1].At.D() != 800*time.Millisecond {
		t.Fatalf("numeric at = %v", s.Events[1].At.D())
	}
	if h := s.Horizon(); h != 2*time.Second {
		t.Fatalf("horizon = %v", h)
	}
	if prof := s.Profile(2, 0); prof.Drop != 0.01 {
		t.Fatalf("profile 2→0 = %+v", prof)
	}
	if prof := s.Profile(0, 1); prof.Drop != 0 {
		t.Fatalf("profile 0→1 should be clean: %+v", prof)
	}

	for i, bad := range []Scenario{
		{Links: []LinkFault{{From: 5, To: 0}}},
		{Links: []LinkFault{{Drop: 1.5}}},
		{Events: []Event{{Action: "explode"}}},
		{Events: []Event{{Action: ActionPartition}}},
		{Events: []Event{{Action: ActionPartition, Groups: [][]int{{0}, {0}}}}},
		{Events: []Event{{Action: ActionCrash, Proc: 7}}},
	} {
		if err := bad.Validate(3); err == nil {
			t.Errorf("bad scenario %d validated", i)
		}
	}
}

// TestScheduledEvents runs a real (fast) scheduled timeline.
func TestScheduledEvents(t *testing.T) {
	scn := &Scenario{
		Seed: 3,
		Events: []Event{
			{At: Dur(10 * time.Millisecond), Action: ActionCut, From: 0, To: 1},
			{At: Dur(60 * time.Millisecond), Action: ActionHeal, From: 0, To: 1},
		},
	}
	inj, err := NewInjector(scn, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start(time.Now())
	deadline := time.Now().Add(2 * time.Second)
	for !inj.CutTo(1) {
		if time.Now().After(deadline) {
			t.Fatal("cut never applied")
		}
		time.Sleep(time.Millisecond)
	}
	for inj.CutTo(1) {
		if time.Now().After(deadline) {
			t.Fatal("heal never applied")
		}
		time.Sleep(time.Millisecond)
	}
	inj.Stop()
}

// TestLossOverrideDeterministic covers the one-directional loss op: a
// lose override drops at the scheduled rate on the overridden direction
// only, clearing restores the profile, and flipping the rate mid-run
// keeps later decisions aligned with an uninterrupted run (fixed draw
// order).
func TestLossOverrideDeterministic(t *testing.T) {
	frames := testFrames(300)
	run := func(flip bool) ([]byte, Counters) {
		inj, err := NewInjector(&Scenario{Seed: 5}, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		sink := &sinkConn{}
		conn := inj.Accepted(1, sink)
		for i, f := range frames {
			if flip && i == 100 {
				inj.SetLoss(1, 1)
			}
			if flip && i == 200 {
				inj.SetLoss(1, 0)
			}
			if _, err := conn.Write(f); err != nil {
				t.Fatal(err)
			}
		}
		return sink.bytes(), inj.Counters()
	}
	clean, cleanCtr := run(false)
	lossy, lossyCtr := run(true)
	if cleanCtr.Dropped != 0 {
		t.Fatalf("clean run dropped %d frames", cleanCtr.Dropped)
	}
	if lossyCtr.Dropped != 100 {
		t.Fatalf("rate-1 window dropped %d frames, want exactly 100", lossyCtr.Dropped)
	}
	// Outside the override window the streams agree: the first 100 and
	// last 100 frames survive identically (draws stayed aligned).
	var head, tail []byte
	for _, f := range frames[:100] {
		head = append(head, f...)
	}
	for _, f := range frames[200:] {
		tail = append(tail, f...)
	}
	if !bytes.Equal(lossy, append(append([]byte(nil), head...), tail...)) {
		t.Fatal("loss override desynced decisions outside its window")
	}
	if !bytes.Equal(clean[:len(head)], head) {
		t.Fatal("clean run altered frames")
	}
	// The other direction is untouched by construction: a fresh link 0→2
	// with the override on 0→1 drops nothing.
	inj, err := NewInjector(&Scenario{Seed: 5}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	inj.SetLoss(1, 1)
	sink := &sinkConn{}
	conn := inj.Accepted(2, sink)
	if _, err := conn.Write(frames[0]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.bytes(), frames[0]) {
		t.Fatal("loss on 0→1 leaked onto 0→2")
	}
}

// TestSkewStretchesPacing pins clock-skewed pacing: the same delayed
// link paced at skew 4 holds its horizon out ~4× as far as at skew 1,
// without changing which frames are emitted.
func TestSkewStretchesPacing(t *testing.T) {
	const delay = 20 * time.Millisecond
	pace := func(factor float64) time.Duration {
		inj, err := NewInjector(&Scenario{
			Seed:  2,
			Links: []LinkFault{{From: Wildcard, To: Wildcard, Delay: Dur(delay)}},
		}, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if factor != 1 {
			inj.SetSkew(1, factor)
		}
		sink := &sinkConn{}
		conn := inj.Accepted(1, sink)
		start := time.Now()
		if _, err := conn.Write(testFrames(1)[0]); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	nominal, skewed := pace(1), pace(4)
	if nominal < delay || skewed < 4*delay {
		t.Fatalf("pacing under floor: nominal %v (≥ %v), skewed %v (≥ %v)", nominal, delay, skewed, 4*delay)
	}
	if skewed < 2*nominal {
		t.Fatalf("skew 4 paced %v, nominal %v: not stretched", skewed, nominal)
	}
}

// TestBurstQuantizesReleases covers the slow-then-burst profile: frames
// written just after a boundary all release together at the next one,
// arriving as a burst rather than a trickle.
func TestBurstQuantizesReleases(t *testing.T) {
	const every = 60 * time.Millisecond
	inj, err := NewInjector(&Scenario{
		Seed:  8,
		Links: []LinkFault{{From: Wildcard, To: Wildcard, BurstEvery: Dur(every)}},
	}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	sink := &sinkConn{}
	conn := inj.Accepted(1, sink)
	frames := testFrames(5)
	var want []byte
	start := time.Now()
	for _, f := range frames {
		want = append(want, f...)
		if _, err := conn.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// Five writes, each quantized to a boundary: the first waits out most
	// of one period; the rest land on already-reached boundaries as the
	// writes trail the sleeps. Total stays within a few periods but is at
	// least one (the first frame's wait) — and nothing is lost.
	if elapsed < every/2 {
		t.Fatalf("burst link released in %v, want ≥ %v of boundary wait", elapsed, every/2)
	}
	if got := sink.bytes(); !bytes.Equal(got, want) {
		t.Fatalf("burst link altered the stream (%d vs %d bytes)", len(got), len(want))
	}
	if ctr := inj.Counters(); ctr.Delayed != int64(len(frames)) {
		t.Fatalf("delayed = %d, want %d", ctr.Delayed, len(frames))
	}
}

// TestAsymmetricEventJSON covers the lose/skew/replace vocabulary end to
// end: JSON forms, validation bounds, timeline expansion with values,
// and replace surfacing in ProcEvents.
func TestAsymmetricEventJSON(t *testing.T) {
	blob := []byte(`{
		"name": "asym", "seed": 4,
		"links": [{"from": 0, "to": 1, "delay": "2ms", "skew": 3, "burst_every": "50ms"}],
		"events": [
			{"at": "100ms", "action": "lose", "from": 0, "to": 1, "rate": 0.4},
			{"at": "200ms", "action": "skew", "from": 0, "to": -1, "factor": 2.5},
			{"at": "300ms", "action": "replace", "proc": 2, "addr": "127.0.0.1:7777"},
			{"at": "400ms", "action": "lose", "from": 0, "to": 1}
		]
	}`)
	var s Scenario
	if err := json.Unmarshal(blob, &s); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(3); err != nil {
		t.Fatal(err)
	}
	if p := s.Profile(0, 1); p.Skew != 3 || p.BurstEvery.D() != 50*time.Millisecond {
		t.Fatalf("profile lost asymmetric fields: %+v", p)
	}
	tl := s.Timeline(3, 0)
	var sawLose, sawSkew, sawClear bool
	for _, op := range tl {
		switch {
		case op.Op == ActionLose && op.Peer == 1 && op.Val == 0.4:
			sawLose = true
		case op.Op == ActionSkew && op.Val == 2.5:
			sawSkew = true
		case op.Op == ActionLose && op.Val == 0:
			sawClear = true
		}
	}
	if !sawLose || !sawSkew || !sawClear {
		t.Fatalf("timeline missing asymmetric ops: %+v", tl)
	}
	procs := s.ProcEvents()
	if len(procs) != 1 || procs[0].Action != ActionReplace || procs[0].Addr != "127.0.0.1:7777" {
		t.Fatalf("replace not in proc events: %+v", procs)
	}
	for i, bad := range []Scenario{
		{Events: []Event{{Action: ActionLose, Rate: 1.5}}},
		{Events: []Event{{Action: ActionSkew, Factor: -1}}},
		{Events: []Event{{Action: ActionReplace, Proc: 0}}},
		{Events: []Event{{Action: ActionReplace, Proc: 9, Addr: "x"}}},
		{Links: []LinkFault{{Skew: -2}}},
		{Links: []LinkFault{{BurstEvery: Dur(-time.Second)}}},
	} {
		if err := bad.Validate(3); err == nil {
			t.Errorf("bad asymmetric scenario %d validated", i)
		}
	}
}

// TestProfileLastMatchWins pins the profile resolution rule.
func TestProfileLastMatchWins(t *testing.T) {
	s := &Scenario{Links: []LinkFault{
		{From: Wildcard, To: Wildcard, Drop: 0.5},
		{From: 0, To: 1, Drop: 0.1},
	}}
	if p := s.Profile(0, 1); p.Drop != 0.1 {
		t.Fatalf("specific entry should win: %+v", p)
	}
	if p := s.Profile(1, 0); p.Drop != 0.5 {
		t.Fatalf("wildcard should apply elsewhere: %+v", p)
	}
	if p := s.Profile(0, 2); p.From != 0 || p.To != 2 {
		t.Fatalf("profile endpoints not normalized: %+v", p)
	}
}
