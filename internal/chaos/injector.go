package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrLinkCut is returned by Dial while the directed link to the peer is
// cut.
var ErrLinkCut = errors.New("chaos: link cut")

// Counters is a snapshot of one injector's fault counters. All fields
// count frames except KilledConns and RefusedDials. For a fixed frame
// sequence per link, every field is a deterministic function of the
// scenario and seed.
type Counters struct {
	// Frames counts frames that crossed the injector's write path.
	Frames int64
	// Delayed counts frames paced by the latency/bandwidth model.
	Delayed int64
	// Dropped, Duplicated, Reordered, Corrupted count per-frame fault
	// decisions from the link PRNGs.
	Dropped, Duplicated, Reordered, Corrupted int64
	// Blackholed counts frames swallowed by an active cut; RefusedWrites
	// counts frames refused (with ErrLinkIsolated, retained by the
	// sender) on an isolated link.
	Blackholed, RefusedWrites int64
	// KilledConns counts established conns severed by partitions (or
	// Sever); RefusedDials counts dials refused by an active cut.
	KilledConns, RefusedDials int64
}

// Add accumulates o into c (for mesh-wide totals).
func (c *Counters) Add(o Counters) {
	c.Frames += o.Frames
	c.Delayed += o.Delayed
	c.Dropped += o.Dropped
	c.Duplicated += o.Duplicated
	c.Reordered += o.Reordered
	c.Corrupted += o.Corrupted
	c.Blackholed += o.Blackholed
	c.RefusedWrites += o.RefusedWrites
	c.KilledConns += o.KilledConns
	c.RefusedDials += o.RefusedDials
}

// injCounters is the internal atomic form.
type injCounters struct {
	frames, delayed                         atomic.Int64
	dropped, duplicated, reorder, corrupted atomic.Int64
	blackholed, refusedWrites               atomic.Int64
	killedConns, refusedDials               atomic.Int64
}

// Injector applies one process's half of a Scenario: it owns the fault
// state of every directed link local→peer (each direction of a link is
// controlled by its writer's endpoint) and implements the service's
// Transport surface — Listen passes through, Dial refuses cut links and
// wraps the conn, Accepted wraps inbound conns. Zero-valued scenarios
// wrap into pure passthroughs, so an Injector with only manual
// Cut/Heal/Partition control is also the fault backend for
// verify.ServiceSystem.
type Injector struct {
	scn   *Scenario
	n     int
	local int
	ctr   injCounters

	mu    sync.Mutex
	links []*linkState // by peer id; nil at local

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	wg        sync.WaitGroup
}

// linkState is the shared fault state of the directed link local→peer:
// the PRNG all fault decisions draw from (in frame order), the cut and
// isolate flags, the pacing horizon latency/bandwidth extends, the
// one-frame reorder hold, and the live conns to sever on partition.
type linkState struct {
	inj   *Injector
	peer  int
	prof  LinkFault
	paced bool // profile delays, jitters, or caps bandwidth

	mu      sync.Mutex
	rng     *rand.Rand
	cut     bool      // frames swallowed silently, dials refused
	refuse  bool      // writes refused with ErrLinkIsolated, dials refused
	loss    float64   // dynamic one-directional loss rate; -1 = use profile Drop
	skew    float64   // pacing clock multiplier (1 = nominal)
	held    []byte    // frame held back by a reorder decision
	horizon time.Time // FIFO floor: next frame releases no earlier
	bwFree  time.Time // bandwidth horizon: when the capped link is idle
	anchor  time.Time // slow-then-burst boundary anchor (first paced frame)
	conns   map[*faultConn]struct{}
}

// NewInjector builds the fault injector for process local of an n-process
// mesh. The scenario may be nil (pure manual control, no static faults).
func NewInjector(scn *Scenario, n, local int) (*Injector, error) {
	if scn == nil {
		scn = &Scenario{}
	}
	if err := scn.Validate(n); err != nil {
		return nil, err
	}
	if local < 0 || local >= n {
		return nil, fmt.Errorf("chaos: local id %d out of range for n=%d", local, n)
	}
	in := &Injector{scn: scn, n: n, local: local, stopCh: make(chan struct{})}
	in.links = make([]*linkState, n)
	for peer := 0; peer < n; peer++ {
		if peer == local {
			continue
		}
		prof := scn.Profile(local, peer)
		skew := prof.Skew
		if skew == 0 {
			skew = 1
		}
		in.links[peer] = &linkState{
			inj:   in,
			peer:  peer,
			prof:  prof,
			paced: prof.Delay > 0 || prof.Jitter > 0 || prof.BandwidthBps > 0 || prof.BurstEvery > 0,
			rng:   rand.New(rand.NewSource(linkSeed(scn.Seed, local, peer))),
			loss:  -1,
			skew:  skew,
			conns: make(map[*faultConn]struct{}),
		}
	}
	return in, nil
}

// linkSeed mixes the scenario seed with the directed link identity.
func linkSeed(seed int64, from, to int) int64 {
	z := uint64(seed) ^ (uint64(from+1) * 0x9e3779b97f4a7c15) ^ (uint64(to+1) * 0xbf58476d1ce4e5b9)
	z ^= z >> 30
	z *= 0x94d049bb133111eb
	z ^= z >> 27
	return int64(z)
}

// Start schedules the scenario's transport events relative to t0. Manual
// control works without Start; calling it twice is a no-op.
func (in *Injector) Start(t0 time.Time) {
	in.startOnce.Do(func() {
		ops := in.scn.Timeline(in.n, in.local)
		if len(ops) == 0 {
			return
		}
		in.wg.Add(1)
		go func() {
			defer in.wg.Done()
			for _, op := range ops {
				select {
				case <-time.After(time.Until(t0.Add(op.At))):
				case <-in.stopCh:
					return
				}
				in.apply(op)
			}
		}()
	})
}

// Stop halts the event scheduler and closes every wrapped conn.
func (in *Injector) Stop() {
	in.stopOnce.Do(func() { close(in.stopCh) })
	for _, lk := range in.links {
		if lk == nil {
			continue
		}
		lk.mu.Lock()
		conns := make([]*faultConn, 0, len(lk.conns))
		for c := range lk.conns {
			conns = append(conns, c)
		}
		lk.mu.Unlock()
		for _, c := range conns {
			_ = c.Close()
		}
	}
	in.wg.Wait()
}

// apply executes one timeline operation.
func (in *Injector) apply(op LinkOp) {
	switch op.Op {
	case ActionCut:
		in.Cut(op.Peer)
	case ActionHeal:
		in.Heal(op.Peer)
	case ActionLose:
		in.SetLoss(op.Peer, op.Val)
	case ActionSkew:
		in.SetSkew(op.Peer, op.Val)
	case "isolate":
		in.Isolate(op.Peer)
	case "sever":
		in.Sever(op.Peer)
	}
}

// SetLoss overrides the one-directional loss rate of local→peer: each
// frame is dropped with probability rate until the override is cleared
// (rate 0 restores the static profile's Drop). The drop draw keeps its
// fixed position in the per-frame draw order, so changing the rate
// mid-run never desynchronizes later fault decisions.
func (in *Injector) SetLoss(peer int, rate float64) {
	if lk := in.link(peer); lk != nil {
		lk.mu.Lock()
		if rate <= 0 {
			lk.loss = -1
		} else {
			lk.loss = rate
		}
		lk.mu.Unlock()
	}
}

// SetSkew sets the pacing clock multiplier of local→peer: delay, jitter,
// and bandwidth transmission times stretch by factor — the clock-skewed
// writer whose traffic paces out slow (or fast, factor < 1). Factor 0 or
// 1 restores nominal pace. Skew scales an existing pacing profile; it
// never changes PRNG draw order, and an unpaced link stays unpaced.
func (in *Injector) SetSkew(peer int, factor float64) {
	if lk := in.link(peer); lk != nil {
		lk.mu.Lock()
		if factor <= 0 {
			factor = 1
		}
		lk.skew = factor
		lk.mu.Unlock()
	}
}

// Isolate refuses writes and dials on the directed link local→peer with
// ErrLinkIsolated — the lossless partition primitive: a sender with
// retransmission retains everything for the heal. Contrast Cut, which
// swallows frames silently.
func (in *Injector) Isolate(peer int) {
	if lk := in.link(peer); lk != nil {
		lk.mu.Lock()
		lk.refuse = true
		lk.mu.Unlock()
	}
}

// Cut blackholes the directed link local→peer: frames vanish, dials are
// refused. Established conns stay up (silent partition); use Sever to
// kill them too.
func (in *Injector) Cut(peer int) {
	if lk := in.link(peer); lk != nil {
		lk.mu.Lock()
		lk.cut = true
		lk.held = nil
		lk.mu.Unlock()
	}
}

// Heal clears a cut, isolation, or loss override on local→peer — the
// link returns to its static profile.
func (in *Injector) Heal(peer int) {
	if lk := in.link(peer); lk != nil {
		lk.mu.Lock()
		lk.cut = false
		lk.refuse = false
		lk.loss = -1
		lk.mu.Unlock()
	}
}

// HealAll clears every cut.
func (in *Injector) HealAll() {
	for peer := range in.links {
		in.Heal(peer)
	}
}

// Sever kills every established conn on local→peer. TCP conns are
// half-closed (FIN after the kernel flushes the send buffer) rather than
// closed outright: a full close with unread receive data answers the
// peer with RST, which can discard delivered-but-unread frames — loss
// the scenario never scheduled. The peer sees EOF, both services mark
// the link failed and close their ends, and redial/backoff runs. The
// conns are shared with the peer's inbound direction, so severing is
// inherently bidirectional, like a real partition.
func (in *Injector) Sever(peer int) {
	lk := in.link(peer)
	if lk == nil {
		return
	}
	lk.mu.Lock()
	conns := make([]*faultConn, 0, len(lk.conns))
	for c := range lk.conns {
		conns = append(conns, c)
	}
	lk.mu.Unlock()
	for _, c := range conns {
		in.ctr.killedConns.Add(1)
		if cw, ok := c.Conn.(interface{ CloseWrite() error }); ok {
			_ = cw.CloseWrite()
		} else {
			_ = c.Close()
		}
	}
}

// Partition applies ActionPartition semantics immediately (manual
// control): cross-group links isolated then severed — isolation first,
// so a writer racing the sever gets a refusal (and retains its frames)
// rather than slipping through or being silently swallowed. In-group
// links heal.
func (in *Injector) Partition(groups [][]int) {
	idx := groupIndex(groups, in.n)
	for peer := 0; peer < in.n; peer++ {
		if peer == in.local {
			continue
		}
		if idx[in.local] == idx[peer] {
			in.Heal(peer)
		} else {
			in.Isolate(peer)
			in.Sever(peer)
		}
	}
}

// CutTo reports whether the directed link local→peer is currently cut or
// isolated (either way, dials are refused).
func (in *Injector) CutTo(peer int) bool {
	lk := in.link(peer)
	if lk == nil {
		return false
	}
	lk.mu.Lock()
	defer lk.mu.Unlock()
	return lk.cut || lk.refuse
}

// Counters snapshots the injector's fault counters.
func (in *Injector) Counters() Counters {
	return Counters{
		Frames:        in.ctr.frames.Load(),
		Delayed:       in.ctr.delayed.Load(),
		Dropped:       in.ctr.dropped.Load(),
		Duplicated:    in.ctr.duplicated.Load(),
		Reordered:     in.ctr.reorder.Load(),
		Corrupted:     in.ctr.corrupted.Load(),
		Blackholed:    in.ctr.blackholed.Load(),
		RefusedWrites: in.ctr.refusedWrites.Load(),
		KilledConns:   in.ctr.killedConns.Load(),
		RefusedDials:  in.ctr.refusedDials.Load(),
	}
}

func (in *Injector) link(peer int) *linkState {
	if peer < 0 || peer >= in.n {
		return nil
	}
	return in.links[peer]
}

// Listen implements the Transport surface: a plain TCP listener (inbound
// faults are the remote writer's business).
func (in *Injector) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Dial dials peer, refusing while the link is cut, and wraps the conn so
// outbound frames pass the fault path.
func (in *Injector) Dial(ctx context.Context, peer int, addr string) (net.Conn, error) {
	if in.CutTo(peer) {
		in.ctr.refusedDials.Add(1)
		return nil, ErrLinkCut
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return in.wrap(peer, conn), nil
}

// Accepted wraps an inbound conn once the handshake has identified the
// peer, so this side's outbound frames (echoes, reports, challenge
// replies) pass the fault path too.
func (in *Injector) Accepted(peer int, conn net.Conn) net.Conn {
	return in.wrap(peer, conn)
}

// wrap builds the fault conn for one established connection on
// local→peer.
func (in *Injector) wrap(peer int, conn net.Conn) net.Conn {
	lk := in.link(peer)
	if lk == nil {
		return conn // unknown peer: leave the conn alone
	}
	fc := newFaultConn(lk, conn)
	lk.mu.Lock()
	lk.conns[fc] = struct{}{}
	lk.mu.Unlock()
	return fc
}

func (lk *linkState) drop(fc *faultConn) {
	lk.mu.Lock()
	delete(lk.conns, fc)
	lk.mu.Unlock()
}
