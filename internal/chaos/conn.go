package chaos

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// ErrLinkIsolated is returned by Write while the link is isolated by a
// partition. Unlike a cut — which swallows frames silently, modeling a
// gray failure the sender cannot see — isolation refuses the write, so a
// sender with retransmission (the service's writeLoop) retains the frames
// and delivers them after the heal. Partitions are therefore lossless for
// well-behaved senders; cuts are not.
var ErrLinkIsolated = errors.New("chaos: link isolated")

// faultConn wraps one established conn on the directed link local→peer.
// Only the write side is intercepted: each direction of a link is faulted
// by its writer's endpoint, so reads pass through untouched (the remote
// injector already faulted them). The service's per-peer writer coalesces
// many frames into one Write, so the conn re-splits the byte stream at
// the v2 length prefixes and applies fault decisions per frame.
//
// Paced delivery is synchronous: Write sleeps until the latest release
// time among the batch's surviving frames, then forwards them. Nothing is
// ever acknowledged before it reaches the underlying conn, so severing a
// link mid-flight surfaces as a write error instead of silently losing
// frames the sender believes were delivered — the property the service's
// write-retry depends on. Senders pipeline by batching: while one Write
// sleeps, the next batch accumulates behind it.
type faultConn struct {
	net.Conn
	lk *linkState

	wmu   sync.Mutex
	carry []byte // partial frame spanning Write calls
	raw   bool   // non-frame traffic detected: passthrough from here on
	out   []byte // per-Write emission scratch

	closeOnce sync.Once
	closeErr  error
}

func newFaultConn(lk *linkState, conn net.Conn) *faultConn {
	return &faultConn{Conn: conn, lk: lk}
}

// Write splits the stream into frames, applies the link's fault program,
// sleeps out the batch's propagation delay, and forwards the surviving
// bytes. It reports the full length as written even when frames were
// dropped: silent loss is the fault being injected. An isolated link
// refuses the whole batch with ErrLinkIsolated instead.
func (fc *faultConn) Write(b []byte) (int, error) {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	if fc.raw {
		return fc.Conn.Write(b)
	}
	fc.carry = append(fc.carry, b...)
	fc.out = fc.out[:0]
	var rel time.Time
	for {
		if len(fc.carry) < 4 {
			break
		}
		size := int(binary.BigEndian.Uint32(fc.carry))
		if size > wire.MaxFrameSize {
			// Not our framing; stop interpreting this conn's stream.
			fc.raw = true
			fc.out = append(fc.out, fc.carry...)
			fc.carry = nil
			break
		}
		if len(fc.carry) < 4+size {
			break
		}
		frame := fc.carry[:4+size]
		r, err := fc.lk.process(frame, &fc.out)
		if err != nil {
			fc.carry = nil
			return 0, err
		}
		if r.After(rel) {
			rel = r
		}
		fc.carry = fc.carry[4+size:]
	}
	if len(fc.carry) > 0 {
		// Keep the partial tail without aliasing the consumed prefix.
		fc.carry = append([]byte(nil), fc.carry...)
	} else {
		fc.carry = nil
	}
	if len(fc.out) == 0 {
		return len(b), nil
	}
	if d := time.Until(rel); d > 0 {
		time.Sleep(d)
	}
	if _, err := fc.Conn.Write(fc.out); err != nil {
		return 0, err
	}
	return len(b), nil
}

// Close unregisters the conn from its link.
func (fc *faultConn) Close() error {
	fc.closeOnce.Do(func() {
		fc.lk.drop(fc)
		fc.closeErr = fc.Conn.Close()
	})
	return fc.closeErr
}

// process applies the link's fault program to one frame, appending
// surviving bytes to out and returning the latest release time among the
// emitted copies (zero when the link is unpaced or nothing survived). All
// PRNG draws happen here, under the link lock, in frame order — the
// per-frame decisions are a pure function of the seed and the frame
// sequence. Draw order is fixed (drop, corrupt, duplicate, reorder)
// regardless of outcomes so decisions stay aligned per frame.
func (lk *linkState) process(frame []byte, out *[]byte) (time.Time, error) {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	ctr := &lk.inj.ctr
	ctr.frames.Add(1)
	if lk.refuse {
		ctr.refusedWrites.Add(1)
		return time.Time{}, ErrLinkIsolated
	}
	if lk.cut {
		ctr.blackholed.Add(1)
		return time.Time{}, nil
	}
	p := lk.prof
	pDrop := lk.rng.Float64()
	pCorrupt := lk.rng.Float64()
	pDup := lk.rng.Float64()
	pReorder := lk.rng.Float64()
	drop := p.Drop
	if lk.loss >= 0 {
		// A scheduled one-directional loss override replaces the static
		// rate; the draw above happened regardless, keeping alignment.
		drop = lk.loss
	}
	if pDrop < drop {
		ctr.dropped.Add(1)
		return time.Time{}, nil
	}
	f := append([]byte(nil), frame...)
	if pCorrupt < p.Corrupt && len(f) > 4 {
		// Flip one byte past the length prefix: the stream stays framed,
		// the receiver's parse path sees the damage.
		f[4+lk.rng.Intn(len(f)-4)] ^= byte(1 + lk.rng.Intn(255))
		ctr.corrupted.Add(1)
	}
	var emits [][]byte
	switch {
	case lk.held != nil:
		// A held frame waits for its successor: emit the new frame first,
		// then the held one — adjacent frames swapped.
		emits = append(emits, f, lk.held)
		lk.held = nil
	case pReorder < p.Reorder:
		lk.held = f
		ctr.reorder.Add(1)
	default:
		emits = append(emits, f)
		if pDup < p.Duplicate {
			ctr.duplicated.Add(1)
			emits = append(emits, append([]byte(nil), f...))
		}
	}
	var rel time.Time
	for _, e := range emits {
		if lk.paced {
			ctr.delayed.Add(1)
			if r := lk.release(len(e)); r.After(rel) {
				rel = r
			}
		}
		*out = append(*out, e...)
	}
	return rel, nil
}

// release computes the paced release time of the next size-byte frame.
// Delay and jitter model propagation: they push each frame's release out
// but do not serialize — frames in one batch ride the link concurrently,
// like a real wire. Only the bandwidth cap serializes, charging each
// frame's transmission time against the link's bandwidth horizon. All
// pacing durations stretch by the link's clock skew; a slow-then-burst
// profile then quantizes the release up to the next burst boundary, so
// the link sits silent between boundaries and flushes at each one. FIFO
// order is preserved by flooring every release at its predecessor's.
// Caller holds lk.mu.
func (lk *linkState) release(size int) time.Time {
	p := lk.prof
	now := time.Now()
	rel := now.Add(skewed(p.Delay.D(), lk.skew))
	if p.Jitter > 0 {
		rel = rel.Add(skewed(time.Duration(lk.rng.Int63n(int64(p.Jitter)+1)), lk.skew))
	}
	if p.BandwidthBps > 0 {
		start := now
		if lk.bwFree.After(start) {
			start = lk.bwFree
		}
		tx := skewed(time.Duration(float64(size)/float64(p.BandwidthBps)*float64(time.Second)), lk.skew)
		lk.bwFree = start.Add(tx)
		if lk.bwFree.After(rel) {
			rel = lk.bwFree
		}
	}
	if every := skewed(p.BurstEvery.D(), lk.skew); every > 0 {
		if lk.anchor.IsZero() {
			lk.anchor = now
		}
		// Round the release up to the next burst boundary after it.
		if since := rel.Sub(lk.anchor); since > 0 {
			bursts := (since + every - 1) / every
			rel = lk.anchor.Add(bursts * every)
		}
	}
	if rel.Before(lk.horizon) {
		rel = lk.horizon
	}
	lk.horizon = rel
	return rel
}

// skewed stretches a pacing duration by the link's clock-skew factor.
func skewed(d time.Duration, factor float64) time.Duration {
	if factor == 1 || d == 0 {
		return d
	}
	return time.Duration(float64(d) * factor)
}
