// Package chaos is the deterministic fault-injection layer for the live
// service: it wraps the service's dialer/listener/conn surface
// (service.Transport) and subjects every directed link to a scheduled,
// seeded fault program — added latency and jitter, bandwidth caps, silent
// frame drops, duplication and reordering at frame granularity, byte
// corruption (exercising the internal/wire parse paths), directed link
// cuts, full partitions with timed heals, and the asymmetric faults:
// one-directional loss overrides (lose), clock-skewed pacing (skew, a
// writer whose pacing clock runs at a multiple of real time), and
// slow-then-burst profiles (burst_every, a link that sits silent and
// flushes at boundaries). Every fault is directional — each direction of
// a link is owned by its writer's endpoint — so loss, skew, and bursts
// on A→B leave B→A untouched.
//
// Faults are driven by a JSON Scenario, replayable the way
// adversary.Instance replays a schedule search: the same scenario and
// seed produce the same fault timeline and — for a given frame sequence
// on a link — the same per-frame fault decisions and counters. Process
// crash/restart events are part of the scenario vocabulary but are
// executed by the driver (cmd/bvcload, the e2e tests), not the injector:
// killing a process is a lifecycle operation on the Service, not on its
// conns.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"
)

// Dur is a JSON-friendly duration: strings use time.ParseDuration syntax
// ("250ms", "1.5s"); bare numbers are milliseconds.
type Dur time.Duration

// D returns the duration as a time.Duration.
func (d Dur) D() time.Duration { return time.Duration(d) }

// UnmarshalJSON accepts "250ms"-style strings or numeric milliseconds.
func (d *Dur) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("chaos: duration %q: %w", s, err)
		}
		*d = Dur(v)
		return nil
	}
	ms, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("chaos: duration %s: %w", b, err)
	}
	*d = Dur(time.Duration(ms * float64(time.Millisecond)))
	return nil
}

// MarshalJSON renders the string form.
func (d Dur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Wildcard matches any process id in a LinkFault endpoint.
const Wildcard = -1

// LinkFault is one directed link's static fault profile. From/To select
// the links it applies to (Wildcard matches every id); when several
// entries match a link, the last one wins whole — profiles do not merge
// field-by-field.
type LinkFault struct {
	// From/To are the sender and receiver process ids (Wildcard = any).
	From int `json:"from"`
	To   int `json:"to"`
	// Delay is added to every frame; Jitter adds a uniform [0, Jitter)
	// extra, drawn per frame from the link's seeded PRNG. Delivery order
	// within the link is preserved (delays are monotone).
	Delay  Dur `json:"delay,omitempty"`
	Jitter Dur `json:"jitter,omitempty"`
	// BandwidthBps caps the link's throughput in bytes per second; 0 is
	// uncapped.
	BandwidthBps int64 `json:"bandwidth_bps,omitempty"`
	// Drop, Duplicate, Reorder, Corrupt are per-frame probabilities in
	// [0, 1]: silently drop the frame, send it twice, swap it with the
	// next frame, or flip one body byte (the length prefix is preserved
	// so the stream stays framed and the receiver's parse path sees the
	// garbage).
	Drop      float64 `json:"drop,omitempty"`
	Duplicate float64 `json:"duplicate,omitempty"`
	Reorder   float64 `json:"reorder,omitempty"`
	Corrupt   float64 `json:"corrupt,omitempty"`
	// Skew multiplies the link's pacing clock (delay, jitter draw, and
	// bandwidth transmission time): a writer whose clock runs slow paces
	// frames out at Skew× the nominal durations. 0 means 1 (no skew).
	// Skew is asymmetric by construction — it applies to this direction
	// only — and changes no PRNG draw order.
	Skew float64 `json:"skew,omitempty"`
	// BurstEvery turns the link into a slow-then-burst profile: paced
	// releases are quantized up to the next multiple of BurstEvery on
	// the writer's clock, so the link sits silent and then flushes the
	// accumulated frames at each boundary. 0 disables. Order within the
	// link is preserved (the quantized releases stay monotone).
	BurstEvery Dur `json:"burst_every,omitempty"`
}

// Event actions.
const (
	// ActionCut blackholes the directed link From→To from At on: frames
	// vanish silently and new dials are refused, but established conns
	// stay up — the silent-partition failure mode.
	ActionCut = "cut"
	// ActionHeal clears a cut on From→To.
	ActionHeal = "heal"
	// ActionPartition severs the mesh into Groups: every link crossing a
	// group boundary is isolated in both directions (writes refused with
	// ErrLinkIsolated, dials refused) and its established conns are
	// killed, so redial/backoff/suspicion run. Unlike a cut, isolation is
	// lossless for a sender with retransmission: refused frames are
	// retained and flow at the heal. Links within a group are healed.
	// Processes not named in any group form one implicit remainder group.
	ActionPartition = "partition"
	// ActionHealAll clears every cut and isolation.
	ActionHealAll = "heal-all"
	// ActionCrash closes process Proc; executed by the driver.
	ActionCrash = "crash"
	// ActionRestart rebuilds process Proc on its old address and
	// re-establishes its links; executed by the driver.
	ActionRestart = "restart"
	// ActionReplace retires process Proc permanently and admits a
	// replacement at address Addr under the next membership epoch:
	// the driver Reconfigures the survivors to epoch+1 with Proc's
	// slot re-addressed and starts a fresh process there. Executed by
	// the driver (membership is a Service lifecycle operation).
	ActionReplace = "replace"
	// ActionLose sets the one-directional loss rate of From→To to Rate
	// from At on, overriding the static profile's Drop. Rate 0 restores
	// the profile. The loss draw stays in the fixed per-frame draw
	// order, so flipping the rate mid-run changes outcomes but not the
	// alignment of later decisions.
	ActionLose = "lose"
	// ActionSkew sets the pacing clock skew of From→To to Factor from
	// At on (see LinkFault.Skew). Factor 0 or 1 restores nominal pace.
	ActionSkew = "skew"
)

// Event is one scheduled fault transition at offset At from scenario
// start.
type Event struct {
	At     Dur     `json:"at"`
	Action string  `json:"action"`
	From   int     `json:"from,omitempty"`   // cut/heal/lose/skew
	To     int     `json:"to,omitempty"`     // cut/heal/lose/skew
	Groups [][]int `json:"groups,omitempty"` // partition
	Proc   int     `json:"proc,omitempty"`   // crash/restart/replace
	Addr   string  `json:"addr,omitempty"`   // replace: the successor's address
	Rate   float64 `json:"rate,omitempty"`   // lose: loss probability in [0, 1]
	Factor float64 `json:"factor,omitempty"` // skew: pacing clock multiplier
}

// Scenario is a complete, replayable fault program for one mesh run.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Seed feeds every per-link fault PRNG; the fault timeline and all
	// per-frame decisions are a pure function of (scenario, seed, frame
	// sequence).
	Seed int64 `json:"seed"`
	// Duration is the suggested soak horizon for drivers; the effective
	// horizon is at least Horizon().
	Duration Dur `json:"duration,omitempty"`
	// Links are the static per-link fault profiles (last match wins).
	Links []LinkFault `json:"links,omitempty"`
	// Events are the scheduled fault transitions, applied in At order.
	Events []Event `json:"events,omitempty"`
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	var s Scenario
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("chaos: parse %s: %w", path, err)
	}
	return &s, nil
}

// Validate checks the scenario against a mesh of n processes.
func (s *Scenario) Validate(n int) error {
	if n < 2 {
		return fmt.Errorf("chaos: mesh of %d processes", n)
	}
	checkID := func(what string, id int, wild bool) error {
		if wild && id == Wildcard {
			return nil
		}
		if id < 0 || id >= n {
			return fmt.Errorf("chaos: %s id %d out of range for n=%d", what, id, n)
		}
		return nil
	}
	for i, lf := range s.Links {
		if err := checkID(fmt.Sprintf("links[%d].from", i), lf.From, true); err != nil {
			return err
		}
		if err := checkID(fmt.Sprintf("links[%d].to", i), lf.To, true); err != nil {
			return err
		}
		for _, p := range []struct {
			name string
			v    float64
		}{{"drop", lf.Drop}, {"duplicate", lf.Duplicate}, {"reorder", lf.Reorder}, {"corrupt", lf.Corrupt}} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("chaos: links[%d].%s = %g outside [0, 1]", i, p.name, p.v)
			}
		}
		if lf.Delay < 0 || lf.Jitter < 0 || lf.BandwidthBps < 0 {
			return fmt.Errorf("chaos: links[%d] negative delay/jitter/bandwidth", i)
		}
		if lf.Skew < 0 || lf.BurstEvery < 0 {
			return fmt.Errorf("chaos: links[%d] negative skew/burst_every", i)
		}
	}
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("chaos: events[%d] negative time", i)
		}
		switch ev.Action {
		case ActionCut, ActionHeal, ActionLose, ActionSkew:
			if err := checkID(fmt.Sprintf("events[%d].from", i), ev.From, true); err != nil {
				return err
			}
			if err := checkID(fmt.Sprintf("events[%d].to", i), ev.To, true); err != nil {
				return err
			}
			if ev.Action == ActionLose && (ev.Rate < 0 || ev.Rate > 1) {
				return fmt.Errorf("chaos: events[%d] lose rate %g outside [0, 1]", i, ev.Rate)
			}
			if ev.Action == ActionSkew && ev.Factor < 0 {
				return fmt.Errorf("chaos: events[%d] negative skew factor %g", i, ev.Factor)
			}
		case ActionPartition:
			if len(ev.Groups) == 0 {
				return fmt.Errorf("chaos: events[%d] partition without groups", i)
			}
			seen := make(map[int]bool)
			for _, g := range ev.Groups {
				for _, id := range g {
					if err := checkID(fmt.Sprintf("events[%d].groups", i), id, false); err != nil {
						return err
					}
					if seen[id] {
						return fmt.Errorf("chaos: events[%d] process %d in two groups", i, id)
					}
					seen[id] = true
				}
			}
		case ActionHealAll:
		case ActionCrash, ActionRestart:
			if err := checkID(fmt.Sprintf("events[%d].proc", i), ev.Proc, false); err != nil {
				return err
			}
		case ActionReplace:
			if err := checkID(fmt.Sprintf("events[%d].proc", i), ev.Proc, false); err != nil {
				return err
			}
			if ev.Addr == "" {
				return fmt.Errorf("chaos: events[%d] replace without addr", i)
			}
		default:
			return fmt.Errorf("chaos: events[%d] unknown action %q", i, ev.Action)
		}
	}
	return nil
}

// Horizon is the scenario's own time extent: the declared Duration or the
// last event, whichever is later.
func (s *Scenario) Horizon() time.Duration {
	h := s.Duration.D()
	for _, ev := range s.Events {
		if ev.At.D() > h {
			h = ev.At.D()
		}
	}
	return h
}

// Profile resolves the static fault profile of the directed link
// from→to: the last matching Links entry, or the zero profile.
func (s *Scenario) Profile(from, to int) LinkFault {
	var prof LinkFault
	prof.From, prof.To = from, to
	for _, lf := range s.Links {
		if (lf.From == Wildcard || lf.From == from) && (lf.To == Wildcard || lf.To == to) {
			prof = lf
			prof.From, prof.To = from, to
		}
	}
	return prof
}

// LinkOp is one expanded timeline operation on a directed link owned by a
// local process: cut or heal the link local→Peer, additionally sever its
// established conns, or retune it (lose/skew, value in Val).
type LinkOp struct {
	At   time.Duration
	Peer int
	Op   string  // ActionCut, ActionHeal, ActionLose, ActionSkew, "isolate", or "sever"
	Val  float64 // lose rate or skew factor
}

// Timeline expands the scenario's transport events into the ordered
// operation list for one process's outbound links. It is a pure function
// of the scenario — the determinism anchor the injector schedules from
// and the replay tests compare against. Crash/restart/replace events are
// omitted (driver-level; see ProcEvents).
func (s *Scenario) Timeline(n, local int) []LinkOp {
	var ops []LinkOp
	emit := func(at Dur, peer int, op string, val float64) {
		if peer != local {
			ops = append(ops, LinkOp{At: at.D(), Peer: peer, Op: op, Val: val})
		}
	}
	forMatches := func(at Dur, from, to int, op string, val float64) {
		if from != Wildcard && from != local {
			return
		}
		for peer := 0; peer < n; peer++ {
			if to == Wildcard || to == peer {
				emit(at, peer, op, val)
			}
		}
	}
	for _, ev := range s.Events {
		switch ev.Action {
		case ActionCut:
			forMatches(ev.At, ev.From, ev.To, ActionCut, 0)
		case ActionHeal:
			forMatches(ev.At, ev.From, ev.To, ActionHeal, 0)
		case ActionLose:
			forMatches(ev.At, ev.From, ev.To, ActionLose, ev.Rate)
		case ActionSkew:
			forMatches(ev.At, ev.From, ev.To, ActionSkew, ev.Factor)
		case ActionHealAll:
			for peer := 0; peer < n; peer++ {
				emit(ev.At, peer, ActionHeal, 0)
			}
		case ActionPartition:
			group := groupIndex(ev.Groups, n)
			for peer := 0; peer < n; peer++ {
				if peer == local {
					continue
				}
				if group[local] == group[peer] {
					emit(ev.At, peer, ActionHeal, 0)
				} else {
					// Isolate before sever: a writer racing the sever
					// gets a refusal and retains its frames.
					emit(ev.At, peer, "isolate", 0)
					emit(ev.At, peer, "sever", 0)
				}
			}
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].At < ops[j].At })
	return ops
}

// ProcEvents returns the crash/restart/replace events in At order — the
// driver's half of the schedule.
func (s *Scenario) ProcEvents() []Event {
	var evs []Event
	for _, ev := range s.Events {
		if ev.Action == ActionCrash || ev.Action == ActionRestart || ev.Action == ActionReplace {
			evs = append(evs, ev)
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// groupIndex maps each process id to its partition group; unlisted
// processes share the implicit remainder group.
func groupIndex(groups [][]int, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = len(groups) // remainder group
	}
	for g, members := range groups {
		for _, id := range members {
			if id >= 0 && id < n {
				idx[id] = g
			}
		}
	}
	return idx
}
