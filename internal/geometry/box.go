package geometry

import "fmt"

// Box is an axis-aligned box [Lo, Hi] in R^d. The asynchronous algorithm in
// the paper assumes a-priori bounds ν ≤ x_l ≤ U on every input coordinate;
// Box generalizes that to per-coordinate bounds, with UniformBox providing
// the paper's single-[ν,U] form.
type Box struct {
	Lo Vector
	Hi Vector
}

// UniformBox returns the box [lo, hi]^d.
func UniformBox(d int, lo, hi float64) Box {
	l := NewVector(d)
	h := NewVector(d)
	for i := 0; i < d; i++ {
		l[i] = lo
		h[i] = hi
	}
	return Box{Lo: l, Hi: h}
}

// Dim returns the dimension of the box.
func (b Box) Dim() int { return b.Lo.Dim() }

// Validate checks internal consistency: matching dimensions, finite bounds,
// and Lo ≤ Hi coordinate-wise.
func (b Box) Validate() error {
	if b.Lo.Dim() != b.Hi.Dim() {
		return fmt.Errorf("geometry: box dimension mismatch %d vs %d", b.Lo.Dim(), b.Hi.Dim())
	}
	if !b.Lo.IsFinite() || !b.Hi.IsFinite() {
		return fmt.Errorf("geometry: box bounds must be finite")
	}
	for i := range b.Lo {
		if b.Lo[i] > b.Hi[i] {
			return fmt.Errorf("geometry: box lo[%d]=%g > hi[%d]=%g", i, b.Lo[i], i, b.Hi[i])
		}
	}
	return nil
}

// Contains reports whether p lies inside the box (inclusive), within tol.
func (b Box) Contains(p Vector, tol float64) bool {
	if p.Dim() != b.Dim() {
		return false
	}
	for i := range p {
		if p[i] < b.Lo[i]-tol || p[i] > b.Hi[i]+tol {
			return false
		}
	}
	return true
}

// Clamp returns a copy of p with every coordinate clamped into the box.
func (b Box) Clamp(p Vector) Vector {
	out := p.Clone()
	for i := range out {
		if out[i] < b.Lo[i] {
			out[i] = b.Lo[i]
		}
		if out[i] > b.Hi[i] {
			out[i] = b.Hi[i]
		}
	}
	return out
}

// MaxRange returns the largest per-coordinate extent Hi_l − Lo_l, the (U − ν)
// quantity in the paper's round-count bound.
func (b Box) MaxRange() float64 {
	var m float64
	for i := range b.Lo {
		if r := b.Hi[i] - b.Lo[i]; r > m {
			m = r
		}
	}
	return m
}

// Center returns the midpoint of the box.
func (b Box) Center() Vector {
	out := NewVector(b.Dim())
	for i := range out {
		out[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	return out
}
