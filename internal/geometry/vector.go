// Package geometry provides the d-dimensional Euclidean primitives used by
// Byzantine vector consensus: vectors (points in R^d), multisets of points,
// axis-aligned boxes, and small numeric helpers.
//
// The paper treats a process input interchangeably as a "vector" and a
// "point"; this package follows that convention. Vectors are plain []float64
// values; all operations either return fresh slices or document in-place
// behaviour explicitly.
package geometry

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Vector is a point in R^d. The zero-length vector is valid and represents a
// point in R^0; most callers construct vectors with a fixed dimension d ≥ 1.
type Vector []float64

// NewVector returns an all-zero vector of dimension d.
func NewVector(d int) Vector {
	if d < 0 {
		return nil
	}
	return make(Vector, d)
}

// Dim returns the dimension of v.
func (v Vector) Dim() int { return len(v) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w. It panics if dimensions differ; callers validate
// dimensions at system boundaries.
func (v Vector) Add(w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v − w.
func (v Vector) Sub(w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns c·v.
func (v Vector) Scale(c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// Dot returns the inner product v·w.
func (v Vector) Dot(w Vector) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// DistInf returns the L∞ distance between v and w. The paper's ε-agreement
// condition is exactly "per-coordinate within ε", i.e. L∞ distance ≤ ε.
func (v Vector) DistInf(w Vector) float64 {
	mustSameDim(v, w)
	var m float64
	for i := range v {
		if d := math.Abs(v[i] - w[i]); d > m {
			m = d
		}
	}
	return m
}

// Dist returns the Euclidean distance between v and w.
func (v Vector) Dist(w Vector) float64 {
	return v.Sub(w).Norm()
}

// Equal reports whether v and w are identical (exact float equality,
// same dimension).
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether every coordinate of v is within tol of the
// corresponding coordinate of w.
func (v Vector) ApproxEqual(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	return v.DistInf(w) <= tol
}

// IsFinite reports whether every coordinate is a finite float (no NaN/Inf).
// Values received from potentially Byzantine processes must pass this check
// before entering geometric computations.
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// String renders v as "(x1, x2, ..., xd)" with compact float formatting.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatFloat(x, 'g', 6, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Compare orders vectors lexicographically: it returns −1, 0 or +1. Shorter
// vectors order before longer ones when they share a prefix. The ordering is
// total and is used to pick deterministic representatives across processes.
func (v Vector) Compare(w Vector) int {
	n := min(len(v), len(w))
	for i := 0; i < n; i++ {
		switch {
		case v[i] < w[i]:
			return -1
		case v[i] > w[i]:
			return 1
		}
	}
	switch {
	case len(v) < len(w):
		return -1
	case len(v) > len(w):
		return 1
	}
	return 0
}

// Mean returns the coordinate-wise average of the given points, all of which
// must share a dimension. It returns an error for an empty input.
func Mean(points []Vector) (Vector, error) {
	if len(points) == 0 {
		return nil, errors.New("geometry: mean of empty point set")
	}
	d := points[0].Dim()
	sum := NewVector(d)
	for _, p := range points {
		if p.Dim() != d {
			return nil, fmt.Errorf("geometry: mixed dimensions %d and %d", d, p.Dim())
		}
		for i := range sum {
			sum[i] += p[i]
		}
	}
	inv := 1 / float64(len(points))
	for i := range sum {
		sum[i] *= inv
	}
	return sum, nil
}

// Convex returns the convex combination Σ wᵢ·pᵢ. Weights need not sum to 1;
// callers wanting a true convex combination pass normalized weights. It
// returns an error on length mismatch or empty input.
func Convex(points []Vector, weights []float64) (Vector, error) {
	if len(points) == 0 {
		return nil, errors.New("geometry: convex combination of empty point set")
	}
	if len(points) != len(weights) {
		return nil, fmt.Errorf("geometry: %d points but %d weights", len(points), len(weights))
	}
	d := points[0].Dim()
	out := NewVector(d)
	for k, p := range points {
		if p.Dim() != d {
			return nil, fmt.Errorf("geometry: mixed dimensions %d and %d", d, p.Dim())
		}
		for i := range out {
			out[i] += weights[k] * p[i]
		}
	}
	return out, nil
}

// mustSameDim panics on dimension mismatch. Dimension agreement is an
// internal invariant: all external inputs are validated on entry.
func mustSameDim(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("geometry: dimension mismatch %d vs %d", len(v), len(w)))
	}
}
