package geometry

import (
	"math"
	"testing"
)

func TestUniformBox(t *testing.T) {
	b := UniformBox(3, -1, 2)
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if b.Dim() != 3 {
		t.Errorf("Dim = %d", b.Dim())
	}
	if b.MaxRange() != 3 {
		t.Errorf("MaxRange = %g, want 3", b.MaxRange())
	}
	if !b.Center().ApproxEqual(Vector{0.5, 0.5, 0.5}, 1e-12) {
		t.Errorf("Center = %v", b.Center())
	}
}

func TestBoxValidate(t *testing.T) {
	tests := []struct {
		name    string
		box     Box
		wantErr bool
	}{
		{name: "ok", box: Box{Lo: Vector{0}, Hi: Vector{1}}, wantErr: false},
		{name: "degenerate ok", box: Box{Lo: Vector{1}, Hi: Vector{1}}, wantErr: false},
		{name: "dim mismatch", box: Box{Lo: Vector{0}, Hi: Vector{1, 2}}, wantErr: true},
		{name: "inverted", box: Box{Lo: Vector{2}, Hi: Vector{1}}, wantErr: true},
		{name: "nan", box: Box{Lo: Vector{math.NaN()}, Hi: Vector{1}}, wantErr: true},
		{name: "inf", box: Box{Lo: Vector{0}, Hi: Vector{math.Inf(1)}}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.box.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestBoxContains(t *testing.T) {
	b := UniformBox(2, 0, 1)
	tests := []struct {
		name string
		p    Vector
		want bool
	}{
		{name: "inside", p: Vector{0.5, 0.5}, want: true},
		{name: "corner", p: Vector{0, 1}, want: true},
		{name: "outside", p: Vector{1.1, 0}, want: false},
		{name: "below", p: Vector{-0.1, 0}, want: false},
		{name: "wrong dim", p: Vector{0.5}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := b.Contains(tt.p, 1e-9); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestBoxContainsTolerance(t *testing.T) {
	b := UniformBox(1, 0, 1)
	if !b.Contains(Vector{1.0000001}, 1e-6) {
		t.Error("point within tolerance should be contained")
	}
	if b.Contains(Vector{1.1}, 1e-6) {
		t.Error("point outside tolerance should not be contained")
	}
}

func TestBoxClamp(t *testing.T) {
	b := UniformBox(2, 0, 1)
	got := b.Clamp(Vector{-5, 0.5})
	if !got.Equal(Vector{0, 0.5}) {
		t.Errorf("Clamp = %v", got)
	}
	got = b.Clamp(Vector{2, 3})
	if !got.Equal(Vector{1, 1}) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestBoxClampDoesNotMutate(t *testing.T) {
	b := UniformBox(1, 0, 1)
	p := Vector{5}
	_ = b.Clamp(p)
	if p[0] != 5 {
		t.Error("Clamp mutated its argument")
	}
}
