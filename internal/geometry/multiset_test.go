package geometry

import (
	"testing"
)

func TestMultisetOf(t *testing.T) {
	m, err := MultisetOf(Vector{1, 2}, Vector{3, 4}, Vector{1, 2})
	if err != nil {
		t.Fatalf("MultisetOf: %v", err)
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d, want 3", m.Len())
	}
	if m.Dim() != 2 {
		t.Errorf("Dim = %d, want 2", m.Dim())
	}
	// Duplicates are preserved.
	if !m.At(0).Equal(m.At(2)) {
		t.Error("duplicate member not preserved")
	}
}

func TestMultisetOfEmpty(t *testing.T) {
	if _, err := MultisetOf(); err == nil {
		t.Error("expected error for empty MultisetOf")
	}
}

func TestMultisetOfMixedDims(t *testing.T) {
	if _, err := MultisetOf(Vector{1}, Vector{1, 2}); err == nil {
		t.Error("expected error for mixed dimensions")
	}
}

func TestMultisetAddClones(t *testing.T) {
	m := NewMultiset(2)
	p := Vector{1, 1}
	if err := m.Add(p); err != nil {
		t.Fatalf("Add: %v", err)
	}
	p[0] = 99
	if m.At(0)[0] != 1 {
		t.Error("Add did not clone the point")
	}
}

func TestMultisetAddWrongDim(t *testing.T) {
	m := NewMultiset(2)
	if err := m.Add(Vector{1}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestMultisetSubset(t *testing.T) {
	m := MustMultisetOf(Vector{0}, Vector{1}, Vector{2}, Vector{3})
	s, err := m.Subset([]int{3, 1})
	if err != nil {
		t.Fatalf("Subset: %v", err)
	}
	if s.Len() != 2 || s.At(0)[0] != 3 || s.At(1)[0] != 1 {
		t.Errorf("Subset = %v", s)
	}
}

func TestMultisetSubsetOutOfRange(t *testing.T) {
	m := MustMultisetOf(Vector{0})
	if _, err := m.Subset([]int{1}); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := m.Subset([]int{-1}); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestMultisetWithoutIndex(t *testing.T) {
	m := MustMultisetOf(Vector{0}, Vector{1}, Vector{2})
	for i := 0; i < 3; i++ {
		s, err := m.WithoutIndex(i)
		if err != nil {
			t.Fatalf("WithoutIndex(%d): %v", i, err)
		}
		if s.Len() != 2 {
			t.Fatalf("WithoutIndex(%d).Len() = %d", i, s.Len())
		}
		for j := 0; j < s.Len(); j++ {
			if s.At(j)[0] == float64(i) {
				t.Errorf("WithoutIndex(%d) still contains member %d", i, i)
			}
		}
	}
	if _, err := m.WithoutIndex(3); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestMultisetWithoutIndexDoesNotMutate(t *testing.T) {
	m := MustMultisetOf(Vector{0}, Vector{1}, Vector{2})
	if _, err := m.WithoutIndex(1); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 || m.At(1)[0] != 1 {
		t.Error("WithoutIndex mutated receiver")
	}
}

func TestMultisetEqual(t *testing.T) {
	a := MustMultisetOf(Vector{1}, Vector{2})
	b := MustMultisetOf(Vector{1}, Vector{2})
	c := MustMultisetOf(Vector{2}, Vector{1})
	if !a.Equal(b) {
		t.Error("a should equal b")
	}
	if a.Equal(c) {
		t.Error("a should not equal c (order differs)")
	}
	if !a.EqualUnordered(c) {
		t.Error("a should equal c unordered")
	}
}

func TestMultisetEqualUnorderedMultiplicity(t *testing.T) {
	a := MustMultisetOf(Vector{1}, Vector{1}, Vector{2})
	b := MustMultisetOf(Vector{1}, Vector{2}, Vector{2})
	if a.EqualUnordered(b) {
		t.Error("different multiplicities must not compare equal")
	}
}

func TestMultisetBounds(t *testing.T) {
	m := MustMultisetOf(Vector{1, -5}, Vector{-2, 7}, Vector{0, 0})
	lo, hi, err := m.Bounds()
	if err != nil {
		t.Fatalf("Bounds: %v", err)
	}
	if !lo.Equal(Vector{-2, -5}) || !hi.Equal(Vector{1, 7}) {
		t.Errorf("Bounds = %v, %v", lo, hi)
	}
}

func TestMultisetBoundsEmpty(t *testing.T) {
	m := NewMultiset(2)
	if _, _, err := m.Bounds(); err == nil {
		t.Error("expected error on empty multiset")
	}
}

func TestMultisetSpreadInf(t *testing.T) {
	m := MustMultisetOf(Vector{0, 0}, Vector{1, 10})
	s, err := m.SpreadInf()
	if err != nil {
		t.Fatalf("SpreadInf: %v", err)
	}
	if s != 10 {
		t.Errorf("SpreadInf = %g, want 10", s)
	}
}

func TestMultisetClone(t *testing.T) {
	a := MustMultisetOf(Vector{1, 2})
	b := a.Clone()
	b.At(0)[0] = 99
	if a.At(0)[0] != 1 {
		t.Error("Clone shares point storage")
	}
}

func TestMultisetString(t *testing.T) {
	m := MustMultisetOf(Vector{1}, Vector{2})
	if got := m.String(); got != "{(1), (2)}" {
		t.Errorf("String = %q", got)
	}
}
