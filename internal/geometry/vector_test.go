package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewVector(t *testing.T) {
	tests := []struct {
		give int
		want int
	}{
		{give: 0, want: 0},
		{give: 1, want: 1},
		{give: 5, want: 5},
	}
	for _, tt := range tests {
		v := NewVector(tt.give)
		if v.Dim() != tt.want {
			t.Errorf("NewVector(%d).Dim() = %d, want %d", tt.give, v.Dim(), tt.want)
		}
		for i, x := range v {
			if x != 0 {
				t.Errorf("NewVector(%d)[%d] = %g, want 0", tt.give, i, x)
			}
		}
	}
}

func TestNewVectorNegative(t *testing.T) {
	if v := NewVector(-1); v != nil {
		t.Errorf("NewVector(-1) = %v, want nil", v)
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Errorf("mutating clone changed original: v = %v", v)
	}
	if !v.Equal(Vector{1, 2, 3}) {
		t.Errorf("original corrupted: %v", v)
	}
}

func TestVectorCloneNil(t *testing.T) {
	var v Vector
	if got := v.Clone(); got != nil {
		t.Errorf("nil.Clone() = %v, want nil", got)
	}
}

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, -1, 0.5}
	sum := v.Add(w)
	if !sum.Equal(Vector{5, 1, 3.5}) {
		t.Errorf("Add = %v", sum)
	}
	diff := sum.Sub(w)
	if !diff.ApproxEqual(v, 1e-12) {
		t.Errorf("Add then Sub = %v, want %v", diff, v)
	}
}

func TestVectorScale(t *testing.T) {
	v := Vector{1, -2, 0}
	if got := v.Scale(-2); !got.Equal(Vector{-2, 4, 0}) {
		t.Errorf("Scale(-2) = %v", got)
	}
	if got := v.Scale(0); !got.Equal(Vector{0, 0, 0}) {
		t.Errorf("Scale(0) = %v", got)
	}
}

func TestVectorDot(t *testing.T) {
	tests := []struct {
		name string
		v, w Vector
		want float64
	}{
		{name: "orthogonal", v: Vector{1, 0}, w: Vector{0, 1}, want: 0},
		{name: "parallel", v: Vector{2, 3}, w: Vector{2, 3}, want: 13},
		{name: "negative", v: Vector{1, 1}, w: Vector{-1, -1}, want: -2},
		{name: "empty", v: Vector{}, w: Vector{}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Dot(tt.w); got != tt.want {
				t.Errorf("Dot = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestVectorNorm(t *testing.T) {
	if got := (Vector{3, 4}).Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm(3,4) = %g, want 5", got)
	}
	if got := (Vector{}).Norm(); got != 0 {
		t.Errorf("Norm(empty) = %g, want 0", got)
	}
}

func TestVectorDistInf(t *testing.T) {
	v := Vector{0, 0, 0}
	w := Vector{1, -3, 2}
	if got := v.DistInf(w); got != 3 {
		t.Errorf("DistInf = %g, want 3", got)
	}
	if got := v.DistInf(v); got != 0 {
		t.Errorf("DistInf(self) = %g, want 0", got)
	}
}

func TestVectorDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	_ = Vector{1}.Add(Vector{1, 2})
}

func TestVectorEqual(t *testing.T) {
	tests := []struct {
		name string
		v, w Vector
		want bool
	}{
		{name: "equal", v: Vector{1, 2}, w: Vector{1, 2}, want: true},
		{name: "different value", v: Vector{1, 2}, w: Vector{1, 3}, want: false},
		{name: "different dim", v: Vector{1}, w: Vector{1, 0}, want: false},
		{name: "both empty", v: Vector{}, w: Vector{}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Equal(tt.w); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVectorIsFinite(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want bool
	}{
		{name: "finite", v: Vector{1, -2, 0}, want: true},
		{name: "nan", v: Vector{1, math.NaN()}, want: false},
		{name: "posinf", v: Vector{math.Inf(1)}, want: false},
		{name: "neginf", v: Vector{math.Inf(-1)}, want: false},
		{name: "empty", v: Vector{}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.IsFinite(); got != tt.want {
				t.Errorf("IsFinite = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVectorCompare(t *testing.T) {
	tests := []struct {
		name string
		v, w Vector
		want int
	}{
		{name: "less first coord", v: Vector{1, 9}, w: Vector{2, 0}, want: -1},
		{name: "greater second", v: Vector{1, 2}, w: Vector{1, 1}, want: 1},
		{name: "equal", v: Vector{1, 1}, w: Vector{1, 1}, want: 0},
		{name: "prefix shorter", v: Vector{1}, w: Vector{1, 0}, want: -1},
		{name: "prefix longer", v: Vector{1, 0}, w: Vector{1}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Compare(tt.w); got != tt.want {
				t.Errorf("Compare = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestVectorCompareTotalOrder(t *testing.T) {
	// Compare must be antisymmetric and transitive on random data.
	rng := rand.New(rand.NewSource(7))
	vecs := make([]Vector, 30)
	for i := range vecs {
		v := NewVector(3)
		for j := range v {
			v[j] = float64(rng.Intn(4)) // collisions likely
		}
		vecs[i] = v
	}
	for _, a := range vecs {
		for _, b := range vecs {
			if a.Compare(b) != -b.Compare(a) {
				t.Fatalf("antisymmetry broken: %v vs %v", a, b)
			}
			for _, c := range vecs {
				if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
					t.Fatalf("transitivity broken: %v %v %v", a, b, c)
				}
			}
		}
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([]Vector{{0, 0}, {2, 4}})
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if !got.ApproxEqual(Vector{1, 2}, 1e-12) {
		t.Errorf("Mean = %v, want (1,2)", got)
	}
}

func TestMeanErrors(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil): expected error")
	}
	if _, err := Mean([]Vector{{1}, {1, 2}}); err == nil {
		t.Error("Mean(mixed dims): expected error")
	}
}

func TestConvex(t *testing.T) {
	pts := []Vector{{0, 0}, {1, 0}, {0, 1}}
	got, err := Convex(pts, []float64{0.5, 0.25, 0.25})
	if err != nil {
		t.Fatalf("Convex: %v", err)
	}
	if !got.ApproxEqual(Vector{0.25, 0.25}, 1e-12) {
		t.Errorf("Convex = %v, want (0.25, 0.25)", got)
	}
}

func TestConvexErrors(t *testing.T) {
	if _, err := Convex(nil, nil); err == nil {
		t.Error("empty: expected error")
	}
	if _, err := Convex([]Vector{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: expected error")
	}
	if _, err := Convex([]Vector{{1}, {1, 2}}, []float64{0.5, 0.5}); err == nil {
		t.Error("mixed dims: expected error")
	}
}

// Property: Add is commutative and Sub(Add) is identity (up to fp error).
func TestVectorAddCommutativeProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		v := Vector(a[:])
		w := Vector(b[:])
		if !v.IsFinite() || !w.IsFinite() {
			return true
		}
		return v.Add(w).Equal(w.Add(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DistInf satisfies the triangle inequality. Magnitudes near
// ±1e308 are excluded: there subtraction loses more than any additive
// tolerance, and consensus inputs live in known boxes anyway.
func TestDistInfTriangleProperty(t *testing.T) {
	const lim = 1e100
	f := func(a, b, c [3]float64) bool {
		u, v, w := Vector(a[:]), Vector(b[:]), Vector(c[:])
		for _, vec := range []Vector{u, v, w} {
			if !vec.IsFinite() {
				return true
			}
			for _, x := range vec {
				if x > lim || x < -lim {
					return true
				}
			}
		}
		direct := u.DistInf(w)
		viaV := u.DistInf(v) + v.DistInf(w)
		return direct <= viaV+1e-9*(1+direct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a convex combination with valid weights stays inside the
// coordinate-wise bounds of the points.
func TestConvexStaysInBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(5)
		d := 1 + rng.Intn(4)
		pts := make([]Vector, k)
		for i := range pts {
			p := NewVector(d)
			for j := range p {
				p[j] = rng.Float64()*20 - 10
			}
			pts[i] = p
		}
		w := make([]float64, k)
		var sum float64
		for i := range w {
			w[i] = rng.Float64()
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		got, err := Convex(pts, w)
		if err != nil {
			t.Fatalf("Convex: %v", err)
		}
		ms := MustMultisetOf(pts...)
		lo, hi, err := ms.Bounds()
		if err != nil {
			t.Fatalf("Bounds: %v", err)
		}
		for j := 0; j < d; j++ {
			if got[j] < lo[j]-1e-9 || got[j] > hi[j]+1e-9 {
				t.Fatalf("convex combination %v escapes bounds [%v, %v]", got, lo, hi)
			}
		}
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{1, 2.5}
	if got := v.String(); got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
	if got := (Vector{}).String(); got != "()" {
		t.Errorf("empty String = %q", got)
	}
}
