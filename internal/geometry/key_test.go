package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKeyEqualVectorsSameKey(t *testing.T) {
	f := func(xs [3]float64) bool {
		v := Vector(xs[:])
		w := v.Clone()
		return Key(v) == Key(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyDistinguishes(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		same bool
	}{
		{name: "identical", a: Vector{1, 2}, b: Vector{1, 2}, same: true},
		{name: "different value", a: Vector{1, 2}, b: Vector{1, 2.0000001}, same: false},
		{name: "different dim", a: Vector{1}, b: Vector{1, 0}, same: false},
		{name: "negative zero", a: Vector{0.0}, b: Vector{math.Copysign(0, -1)}, same: true},
		{name: "empty", a: Vector{}, b: Vector{}, same: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Key(tt.a) == Key(tt.b); got != tt.same {
				t.Errorf("Key equality = %v, want %v", got, tt.same)
			}
		})
	}
}

func TestKeyMatchesEqualProperty(t *testing.T) {
	// Key(a) == Key(b) ⇔ a.Equal(b) for finite same-length vectors.
	f := func(a, b [2]float64) bool {
		va, vb := Vector(a[:]), Vector(b[:])
		if !va.IsFinite() || !vb.IsFinite() {
			return true
		}
		return (Key(va) == Key(vb)) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyNearMissValues(t *testing.T) {
	// Adjacent floats must produce distinct keys — the broadcast vote
	// counters depend on bit-exactness.
	x := 1.0
	y := math.Nextafter(x, 2)
	if Key(Vector{x}) == Key(Vector{y}) {
		t.Error("adjacent floats share a key")
	}
}
