package geometry

import (
	"encoding/binary"
	"math"
)

// Key returns a canonical, bit-exact map key for v. Two vectors have equal
// keys iff they are Equal (same dimension, identical float bits). The
// broadcast protocols use keys to count votes for "the same value" — vote
// counting must be exact, not tolerance-based, or a Byzantine process could
// split or merge quorums with near-identical values.
func Key(v Vector) string {
	return string(AppendKey(make([]byte, 0, 8*len(v)), v))
}

// AppendKey appends v's canonical key bytes (the Key encoding) to dst and
// returns the extended slice, letting callers build composite keys over many
// vectors without intermediate string allocations.
func AppendKey(dst []byte, v Vector) []byte {
	for _, x := range v {
		if x == 0 {
			x = 0 // collapse −0.0 onto +0.0 so Key agrees with Equal
		}
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}
