package geometry

import (
	"encoding/binary"
	"math"
)

// Key returns a canonical, bit-exact map key for v. Two vectors have equal
// keys iff they are Equal (same dimension, identical float bits). The
// broadcast protocols use keys to count votes for "the same value" — vote
// counting must be exact, not tolerance-based, or a Byzantine process could
// split or merge quorums with near-identical values.
func Key(v Vector) string {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		if x == 0 {
			x = 0 // collapse −0.0 onto +0.0 so Key agrees with Equal
		}
		binary.BigEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
	return string(b)
}
