package geometry

import (
	"fmt"
	"sort"
	"strings"
)

// Multiset is an ordered multiset of points in R^d, the paper's fundamental
// collection type (Appendix B): the same point may occur multiple times, and
// members are addressed by index. Order is significant for determinism — two
// correct processes holding the same multiset in the same order make
// identical deterministic choices.
type Multiset struct {
	points []Vector
	dim    int
}

// NewMultiset returns an empty multiset of points of dimension d.
func NewMultiset(d int) *Multiset {
	return &Multiset{dim: d}
}

// MultisetOf builds a multiset from the given points, which must all share a
// dimension. The points are cloned: later mutation of the arguments does not
// affect the multiset.
func MultisetOf(points ...Vector) (*Multiset, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("geometry: empty multiset needs an explicit dimension; use NewMultiset")
	}
	m := NewMultiset(points[0].Dim())
	for _, p := range points {
		if err := m.Add(p); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// MustMultisetOf is MultisetOf for statically-known-good inputs (tests,
// examples); it panics on error.
func MustMultisetOf(points ...Vector) *Multiset {
	m, err := MultisetOf(points...)
	if err != nil {
		panic(err)
	}
	return m
}

// Add appends a copy of p to the multiset.
func (m *Multiset) Add(p Vector) error {
	if p.Dim() != m.dim {
		return fmt.Errorf("geometry: point dimension %d, multiset dimension %d", p.Dim(), m.dim)
	}
	m.points = append(m.points, p.Clone())
	return nil
}

// Len returns |Y|, the number of members (counting multiplicity).
func (m *Multiset) Len() int { return len(m.points) }

// Dim returns the dimension of the member points.
func (m *Multiset) Dim() int { return m.dim }

// At returns the i-th member. The returned vector is shared; callers must not
// mutate it.
func (m *Multiset) At(i int) Vector { return m.points[i] }

// Points returns a copy of the member slice (vectors shared, slice fresh).
func (m *Multiset) Points() []Vector {
	out := make([]Vector, len(m.points))
	copy(out, m.points)
	return out
}

// Clone returns a deep copy of the multiset.
func (m *Multiset) Clone() *Multiset {
	out := &Multiset{dim: m.dim, points: make([]Vector, len(m.points))}
	for i, p := range m.points {
		out.points[i] = p.Clone()
	}
	return out
}

// Subset returns the sub-multiset selected by the given member indices, in
// the given order. Indices may repeat (the result is still a multiset over
// the original index set when they do not).
func (m *Multiset) Subset(indices []int) (*Multiset, error) {
	out := &Multiset{dim: m.dim, points: make([]Vector, 0, len(indices))}
	for _, i := range indices {
		if i < 0 || i >= len(m.points) {
			return nil, fmt.Errorf("geometry: subset index %d out of range [0,%d)", i, len(m.points))
		}
		out.points = append(out.points, m.points[i])
	}
	return out, nil
}

// WithoutIndex returns the multiset of all members except the one at index i,
// preserving order — the "inputs of the n−1 other processes" construction
// used throughout the necessity proofs.
func (m *Multiset) WithoutIndex(i int) (*Multiset, error) {
	if i < 0 || i >= len(m.points) {
		return nil, fmt.Errorf("geometry: index %d out of range [0,%d)", i, len(m.points))
	}
	out := &Multiset{dim: m.dim, points: make([]Vector, 0, len(m.points)-1)}
	out.points = append(out.points, m.points[:i]...)
	out.points = append(out.points, m.points[i+1:]...)
	return out, nil
}

// Equal reports whether two multisets have identical members in identical
// order.
func (m *Multiset) Equal(o *Multiset) bool {
	if m.dim != o.dim || len(m.points) != len(o.points) {
		return false
	}
	for i := range m.points {
		if !m.points[i].Equal(o.points[i]) {
			return false
		}
	}
	return true
}

// EqualUnordered reports whether two multisets have the same members with the
// same multiplicities, irrespective of order.
func (m *Multiset) EqualUnordered(o *Multiset) bool {
	if m.dim != o.dim || len(m.points) != len(o.points) {
		return false
	}
	a := m.Points()
	b := o.Points()
	sortVectors(a)
	sortVectors(b)
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Bounds returns the coordinate-wise min and max over the members: the
// tightest axis-aligned box containing the multiset. It returns an error for
// an empty multiset.
func (m *Multiset) Bounds() (lo, hi Vector, err error) {
	if len(m.points) == 0 {
		return nil, nil, fmt.Errorf("geometry: bounds of empty multiset")
	}
	lo = m.points[0].Clone()
	hi = m.points[0].Clone()
	for _, p := range m.points[1:] {
		for i := range p {
			if p[i] < lo[i] {
				lo[i] = p[i]
			}
			if p[i] > hi[i] {
				hi[i] = p[i]
			}
		}
	}
	return lo, hi, nil
}

// SpreadInf returns the maximum per-coordinate range max_l (Ω_l − µ_l); this
// is the quantity ρ[t] whose per-round contraction the convergence proof
// bounds (paper Appendix E).
func (m *Multiset) SpreadInf() (float64, error) {
	lo, hi, err := m.Bounds()
	if err != nil {
		return 0, err
	}
	var s float64
	for i := range lo {
		if d := hi[i] - lo[i]; d > s {
			s = d
		}
	}
	return s, nil
}

// String renders the multiset as "{p1, p2, ...}".
func (m *Multiset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range m.points {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}

// sortVectors sorts a slice of vectors lexicographically in place.
func sortVectors(vs []Vector) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
}
