package adversary

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func testSpec(seed int64) SearchSpec {
	return SearchSpec{
		N: 7, F: 1, D: 2,
		Epsilon:    0.05,
		MaxRounds:  3,
		Seed:       seed,
		Iterations: 12,
		Restarts:   1,
		BaseDelay:  time.Millisecond,
		MaxExtra:   8,
	}
}

// TestEvaluateBaseline: the unperturbed schedule (zero genome) satisfies
// the theorem — every correct process decides inside the correct-input
// hull with positive margin and every round contracts.
func TestEvaluateBaseline(t *testing.T) {
	spec := testSpec(3).WithDefaults()
	g := Genome{
		LinkExtra: make([]int, spec.N*spec.N),
		ByzIDs:    []int{spec.N - 1},
		Targets:   [][]float64{{0.5, 0.5}, {0.5, 0.5}},
	}
	res, err := Evaluate(spec, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation || res.Stalled {
		t.Fatalf("baseline schedule broke the protocol: %+v", res)
	}
	if !(res.Slack > 0) || math.IsInf(res.MinMargin, 0) {
		t.Fatalf("degenerate baseline scores: %+v", res)
	}
}

// TestEvaluateCrashWindow: a crash-and-recover window on one correct
// process is schedule noise the theorem must absorb — no violation, no
// stall even when the process stays dark for the whole run — while still
// genuinely changing the execution; and the fault budget is enforced (a
// second correct window with f=1 is an adversary stronger than the model).
func TestEvaluateCrashWindow(t *testing.T) {
	spec := testSpec(3).WithDefaults()
	base := Genome{
		LinkExtra: make([]int, spec.N*spec.N),
		ByzIDs:    []int{spec.N - 1},
		Targets:   [][]float64{{0.5, 0.5}, {0.5, 0.5}},
	}
	resBase, err := Evaluate(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	crashed := base.clone()
	crashed.CrashRounds = make([]int, 2*spec.N)
	crashed.CrashRounds[0], crashed.CrashRounds[1] = 1, spec.MaxRounds+1
	resCrash, err := Evaluate(spec, crashed)
	if err != nil {
		t.Fatal(err)
	}
	if resCrash.Violation || resCrash.Stalled {
		t.Fatalf("crash window broke the protocol at the resilience bound: %+v", resCrash)
	}
	if resCrash.Score == resBase.Score && resCrash.MinMargin == resBase.MinMargin {
		t.Fatal("whole-run crash window left the execution bit-identical — window not wired in")
	}
	again, err := Evaluate(spec, crashed)
	if err != nil {
		t.Fatal(err)
	}
	if again.Score != resCrash.Score || again.MinMargin != resCrash.MinMargin {
		t.Fatalf("crashed evaluation not deterministic: %+v vs %+v", again, resCrash)
	}

	over := crashed.clone()
	over.CrashRounds[2], over.CrashRounds[3] = 2, 3
	if _, err := Evaluate(spec, over); err == nil {
		t.Fatal("two correct crash windows accepted beyond the f=1 budget")
	}
	empty := crashed.clone()
	empty.CrashRounds[0], empty.CrashRounds[1] = 2, 2
	if _, err := Evaluate(spec, empty); err == nil {
		t.Fatal("empty crash window [2, 2) accepted")
	}
	late := crashed.clone()
	late.CrashRounds[0], late.CrashRounds[1] = 1, spec.MaxRounds+2
	if _, err := Evaluate(spec, late); err == nil {
		t.Fatal("restart past MaxRounds+1 accepted")
	}
}

// TestSearchDeterministic: the whole annealed search is a pure function
// of the spec — bit-identical scores and genomes across runs.
func TestSearchDeterministic(t *testing.T) {
	a, err := Search(testSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(testSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score || a.MinMargin != b.MinMargin || a.Slack != b.Slack {
		t.Fatalf("search not deterministic: %+v vs %+v", a, b)
	}
	ja, _ := json.Marshal(a.Genome)
	jb, _ := json.Marshal(b.Genome)
	if string(ja) != string(jb) {
		t.Fatalf("genomes diverged:\n%s\n%s", ja, jb)
	}
}

// TestSearchFindsAdversarialSchedule: the searcher must do at least as
// well as the unperturbed schedule, and across a few seeds it must
// strictly improve on it — otherwise it is not searching.
func TestSearchFindsAdversarialSchedule(t *testing.T) {
	improved := false
	for seed := int64(1); seed <= 3; seed++ {
		spec := testSpec(seed).WithDefaults()
		base, err := Evaluate(spec, Genome{
			LinkExtra: make([]int, spec.N*spec.N),
			ByzIDs:    []int{spec.N - 1},
			Targets:   [][]float64{{0.5, 0.5}, {0.5, 0.5}},
		})
		if err != nil {
			t.Fatal(err)
		}
		found, err := Search(spec)
		if err != nil {
			t.Fatal(err)
		}
		if found.Score > base.Score+1e-12 {
			t.Fatalf("seed %d: search (%.4f) worse than baseline (%.4f)", seed, found.Score, base.Score)
		}
		if found.Score < base.Score-1e-9 {
			improved = true
		}
		// Whatever the search found, the theorem must hold at the
		// resilience bound: no validity violation, no stall.
		if found.Violation || found.Stalled {
			t.Fatalf("seed %d: search broke the protocol at the resilience bound: %+v", seed, found)
		}
	}
	if !improved {
		t.Fatal("search never improved on the baseline schedule across 3 seeds")
	}
}

// TestMinimizeAndReplay: minimization preserves the outcome while
// shrinking the genome, and the serialized instance replays bit-for-bit.
func TestMinimizeAndReplay(t *testing.T) {
	found, err := Search(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	minimized, err := Minimize(found, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if minimized.Violation != found.Violation || minimized.Stalled != found.Stalled {
		t.Fatalf("minimization changed the outcome: %+v vs %+v", minimized, found)
	}
	if nz(minimized.Genome.LinkExtra) > nz(found.Genome.LinkExtra) {
		t.Fatalf("minimization grew the schedule: %d → %d boosts",
			nz(found.Genome.LinkExtra), nz(minimized.Genome.LinkExtra))
	}
	inst := minimized.Instance("unit test")
	blob, err := json.Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayInstance(back)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Score != minimized.Score || replayed.Violation != minimized.Violation ||
		replayed.Stalled != minimized.Stalled {
		t.Fatalf("replay diverged: %+v vs %+v", replayed, minimized)
	}
}

func nz(a []int) int {
	c := 0
	for _, v := range a {
		if v != 0 {
			c++
		}
	}
	return c
}
