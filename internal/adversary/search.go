package adversary

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/hull"
	"repro/internal/sim"
)

// This file is the adaptive adversary: instead of sampling Byzantine
// behaviours and message schedules, Search *optimizes* them. A candidate
// execution is a Genome — per-directed-link delay boosts, per-process
// crash/restart windows, plus the values the Byzantine processes
// advertise — evaluated by running the restricted
// asynchronous algorithm (the variant whose Bi sets are decided by message
// arrival order, so schedule perturbations genuinely change the protocol's
// trajectory) under a deterministic discrete-event engine. The score
// rewards executions that push decisions toward (or past) the correct-
// input hull boundary and that slow the per-round contraction — the two
// failure directions the paper's Theorems exclude at the resilience
// bound. Greedy hill-climbing with annealed acceptance over seeded
// randomness keeps the whole search replayable bit-for-bit; Minimize
// strips a found genome to the components that matter; Instance /
// ReplayInstance serialize survivors into the regression corpus replayed
// by internal/verify.

// SearchSpec configures the schedule/value search. All randomness — the
// correct processes' inputs, the initial genome, mutation and acceptance —
// derives from Seed.
type SearchSpec struct {
	// N, F, D, Epsilon, MaxRounds parameterize the restricted
	// asynchronous run (inputs in the unit box).
	N, F, D   int
	Epsilon   float64
	MaxRounds int
	// Seed drives every random stream of the search.
	Seed int64
	// Iterations is the annealing length per restart; Restarts the number
	// of independent starting genomes.
	Iterations int
	Restarts   int
	// BaseDelay is the floor link delay; link boosts are multiples of
	// BaseDelay/4 up to MaxExtra units.
	BaseDelay time.Duration
	MaxExtra  int
}

// WithDefaults fills unset knobs.
func (s SearchSpec) WithDefaults() SearchSpec {
	if s.Epsilon == 0 {
		s.Epsilon = 0.05
	}
	if s.MaxRounds == 0 {
		s.MaxRounds = 4
	}
	if s.Iterations == 0 {
		s.Iterations = 50
	}
	if s.BaseDelay == 0 {
		s.BaseDelay = time.Millisecond
	}
	if s.MaxExtra == 0 {
		s.MaxExtra = 12
	}
	return s
}

func (s SearchSpec) params() core.Params {
	return core.Params{
		N: s.N, F: s.F, D: s.D,
		Epsilon:   s.Epsilon,
		Bounds:    geometry.UniformBox(s.D, 0, 1),
		MaxRounds: s.MaxRounds,
	}
}

// Genome is one candidate adversarial execution.
type Genome struct {
	// LinkExtra[from*N+to] boosts the from→to link delay by that many
	// quarter-BaseDelay units (0 = the base schedule).
	LinkExtra []int
	// ByzIDs are the f Byzantine process ids, strictly increasing.
	ByzIDs []int
	// Targets holds two advertised vectors per Byzantine process
	// (equivocation: even-numbered receivers get Targets[2k], odd get
	// Targets[2k+1]). Values may lie outside the input box — receivers
	// only check dimension and finiteness, exactly like a real attacker.
	Targets [][]float64
	// CrashRounds holds an optional crash window per process:
	// CrashRounds[2i] is process i's crash round, CrashRounds[2i+1] its
	// restart round (both zero = never crashes; nil = no windows at all).
	// During [crash, restart) the process's outgoing round messages are
	// withheld and re-sent in order at restart (or when it decides) — a
	// crash-and-recover fault expressed purely as scheduling, so every
	// message is still eventually delivered and the execution stays inside
	// the asynchronous model the theorems quantify over. At most F correct
	// processes may carry windows (the fault budget: more simultaneous
	// silences than f can starve the first-(n−f) collection rule outright,
	// which would be an adversary stronger than the model admits). Windows
	// on Byzantine ids are ignored — those processes are already arbitrary.
	CrashRounds []int
}

func (g Genome) clone() Genome {
	out := Genome{
		LinkExtra:   append([]int(nil), g.LinkExtra...),
		ByzIDs:      append([]int(nil), g.ByzIDs...),
		Targets:     make([][]float64, len(g.Targets)),
		CrashRounds: append([]int(nil), g.CrashRounds...),
	}
	for i, t := range g.Targets {
		out.Targets[i] = append([]float64(nil), t...)
	}
	return out
}

// Result is an evaluated genome. Score is minimized by the search: the
// validity margin (how far inside the correct-input hull the worst
// decision sits, radially) plus the contraction slack (1 − the worst
// per-round spread ratio); a validity violation or a stall subtracts a
// large constant, making real counterexamples dominate everything else.
type Result struct {
	Spec   SearchSpec
	Genome Genome
	Score  float64
	// MinMargin is the worst decision's radial hull margin (≤ 0 means at
	// or beyond the correct-input radius); Slack is 1 − max per-round
	// spread ratio (≈ 0 means a round barely contracted).
	MinMargin float64
	Slack     float64
	// Violation is the exact validity oracle: some correct decision left
	// the hull of correct inputs. Stalled means a correct process failed
	// to decide (or the engine hit its event cap).
	Violation bool
	Stalled   bool
}

// scheduleDelay is the genome's delay model: constant base plus the
// per-directed-link boost. Deterministic, so the schedule is a pure
// function of the genome.
type scheduleDelay struct {
	n     int
	base  time.Duration
	unit  time.Duration
	extra []int
}

// Delay implements sim.DelayModel.
func (s scheduleDelay) Delay(from, to sim.ProcID, _ time.Duration, _ *rand.Rand) time.Duration {
	return s.base + time.Duration(s.extra[int(from)*s.n+int(to)])*s.unit
}

// MinDelay implements sim.Lookahead.
func (s scheduleDelay) MinDelay() time.Duration { return s.base }

// Evaluate runs one genome and scores the execution. Errors are
// configuration-level only (bad spec); protocol-level trouble is part of
// the Result.
func Evaluate(spec SearchSpec, g Genome) (*Result, error) {
	spec = spec.WithDefaults()
	params := spec.params()
	byz := make(map[int]int, len(g.ByzIDs)) // id → genome slot
	for k, id := range g.ByzIDs {
		if id < 0 || id >= spec.N {
			return nil, fmt.Errorf("adversary: byz id %d out of range n=%d", id, spec.N)
		}
		byz[id] = k
	}
	if len(byz) != spec.F {
		return nil, fmt.Errorf("adversary: want %d distinct byz ids, got %d", spec.F, len(byz))
	}
	if len(g.LinkExtra) != spec.N*spec.N {
		return nil, fmt.Errorf("adversary: LinkExtra length %d, want %d", len(g.LinkExtra), spec.N*spec.N)
	}
	if len(g.CrashRounds) != 0 && len(g.CrashRounds) != 2*spec.N {
		return nil, fmt.Errorf("adversary: CrashRounds length %d, want 0 or %d", len(g.CrashRounds), 2*spec.N)
	}
	windows := 0
	for i := 0; len(g.CrashRounds) > 0 && i < spec.N; i++ {
		c, r := g.CrashRounds[2*i], g.CrashRounds[2*i+1]
		if c == 0 && r == 0 {
			continue
		}
		if c < 1 || r <= c || r > spec.MaxRounds+1 {
			return nil, fmt.Errorf("adversary: process %d crash window [%d, %d) invalid (want 1 ≤ crash < restart ≤ MaxRounds+1 = %d)",
				i, c, r, spec.MaxRounds+1)
		}
		if _, ok := byz[i]; !ok {
			windows++
		}
	}
	if windows > spec.F {
		return nil, fmt.Errorf("adversary: %d correct crash windows exceed the fault budget f=%d", windows, spec.F)
	}

	// Correct inputs are a pure function of the spec seed, so every
	// genome fights the same honest population.
	inRng := rand.New(rand.NewSource(spec.Seed))
	inputs := make([]geometry.Vector, spec.N)
	for i := range inputs {
		inputs[i] = RandomVector(inRng, params.Bounds)
	}

	nodes := make([]sim.Node, spec.N)
	correct := make([]*core.RestrictedAsyncNode, spec.N)
	for i := 0; i < spec.N; i++ {
		if slot, ok := byz[i]; ok {
			nodes[i] = byzScheduleNode(spec, g, slot)
			continue
		}
		node, err := core.NewRestrictedAsyncNode(params, sim.ProcID(i), inputs[i])
		if err != nil {
			return nil, err
		}
		correct[i] = node
		nodes[i] = node
		if len(g.CrashRounds) > 0 && g.CrashRounds[2*i] > 0 {
			nodes[i] = &crashWindowNode{
				inner:   node,
				crash:   g.CrashRounds[2*i],
				restart: g.CrashRounds[2*i+1],
			}
		}
	}

	eng, err := sim.NewEngine(sim.Config{
		N: spec.N,
		Delay: scheduleDelay{
			n: spec.N, base: spec.BaseDelay, unit: spec.BaseDelay / 4,
			extra: g.LinkExtra,
		},
		Seed:      spec.Seed,
		MaxEvents: 4 * spec.N * spec.N * (spec.MaxRounds + 2) * (spec.MaxExtra + 4),
	}, nodes)
	if err != nil {
		return nil, err
	}
	_, runErr := eng.Run()

	res := &Result{Spec: spec, Genome: g.clone(), Stalled: runErr != nil}
	var correctPts []geometry.Vector
	for i, node := range correct {
		if node != nil {
			correctPts = append(correctPts, inputs[i])
		}
	}
	var decisions []geometry.Vector
	var histories [][]geometry.Vector
	for _, node := range correct {
		if node == nil {
			continue
		}
		histories = append(histories, node.History())
		dec, derr := node.Decision()
		if derr != nil {
			res.Stalled = true
			continue
		}
		decisions = append(decisions, dec)
	}
	res.MinMargin, res.Violation = validityMargin(correctPts, decisions)
	res.Slack = contractionSlack(histories)
	res.Score = res.MinMargin + res.Slack
	if res.Violation {
		res.Score -= 100
	}
	if res.Stalled {
		res.Score -= 1000
	}
	return res, nil
}

// byzScheduleNode front-loads the genome's advertised states: on Init it
// sends round-t StateMsgs for every round up to the horizon, equivocating
// between the slot's two target vectors by receiver parity. Front-loading
// means the Byzantine values are always among the first arrivals, the
// strongest position under the first-(n−f) collection rule.
func byzScheduleNode(spec SearchSpec, g Genome, slot int) sim.Node {
	ta := geometry.Vector(g.Targets[2*slot]).Clone()
	tb := geometry.Vector(g.Targets[2*slot+1]).Clone()
	return &FuncAsync{
		OnInit: func(api sim.API) {
			for r := 1; r <= spec.MaxRounds; r++ {
				for to := 0; to < spec.N; to++ {
					v := ta
					if to%2 == 1 {
						v = tb
					}
					api.Send(sim.ProcID(to), core.StateMsg{Round: r, Value: v.Clone()})
				}
			}
		},
	}
}

// crashWindowNode wraps a correct node and realizes a genome crash window
// as pure scheduling: outgoing round-t states with crash ≤ t < restart are
// withheld (the process looks dead to everyone else), then re-sent in
// their original order the moment the process emits a round ≥ restart
// message or decides. Messages to self pass through — a crash stops a
// process's network, not its local state, and withholding self-delivery
// would deadlock the node against its own silence. Because the window is
// bounded by MaxRounds+1 and any residue flushes before Halt, every
// message is eventually delivered, keeping the execution inside the
// asynchronous fault model.
type crashWindowNode struct {
	inner          sim.Node
	crash, restart int
	held           []heldSend
}

type heldSend struct {
	to  sim.ProcID
	msg sim.Message
}

var _ sim.Node = (*crashWindowNode)(nil)

// Init implements sim.Node.
func (c *crashWindowNode) Init(api sim.API) {
	c.inner.Init(&crashGateAPI{API: api, w: c})
}

// OnMessage implements sim.Node.
func (c *crashWindowNode) OnMessage(api sim.API, from sim.ProcID, msg sim.Message) {
	c.inner.OnMessage(&crashGateAPI{API: api, w: c}, from, msg)
}

// crashGateAPI intercepts the wrapped node's sends to apply the window.
type crashGateAPI struct {
	sim.API
	w *crashWindowNode
}

// Send withholds in-window round states (except to self) and flushes the
// backlog on the first post-window send.
func (g *crashGateAPI) Send(to sim.ProcID, msg sim.Message) {
	if sm, ok := msg.(core.StateMsg); ok && to != g.ID() {
		switch {
		case sm.Round >= g.w.crash && sm.Round < g.w.restart:
			g.w.held = append(g.w.held, heldSend{to: to, msg: msg})
			return
		case sm.Round >= g.w.restart:
			g.flush()
		}
	}
	g.API.Send(to, msg)
}

// Broadcast routes through the gated Send so window filtering applies
// per recipient.
func (g *crashGateAPI) Broadcast(msg sim.Message) {
	for to := 0; to < g.N(); to++ {
		g.Send(sim.ProcID(to), msg)
	}
}

// Halt releases any still-held messages before the node terminates, so a
// window that outlives the decision cannot withhold anything forever.
func (g *crashGateAPI) Halt() {
	g.flush()
	g.API.Halt()
}

func (g *crashGateAPI) flush() {
	for _, h := range g.w.held {
		g.API.Send(h.to, h.msg)
	}
	g.w.held = nil
}

// validityMargin returns the worst radial margin of the decisions against
// the correct-input set and the exact hull-containment verdict. The margin
// is the search gradient (smooth-ish, cheap); the verdict is the oracle.
func validityMargin(correct, decisions []geometry.Vector) (float64, bool) {
	if len(decisions) == 0 || len(correct) == 0 {
		return 0, false
	}
	d := correct[0].Dim()
	c := geometry.NewVector(d)
	for _, p := range correct {
		for l := 0; l < d; l++ {
			c[l] += p[l] / float64(len(correct))
		}
	}
	var maxR float64
	for _, p := range correct {
		maxR = math.Max(maxR, p.DistInf(c))
	}
	if maxR == 0 {
		maxR = 1
	}
	margin := math.Inf(1)
	violated := false
	for _, z := range decisions {
		margin = math.Min(margin, 1-z.DistInf(c)/maxR)
		if in, err := hull.Contains(correct, z, hull.DefaultTol); err == nil && !in {
			violated = true
		}
	}
	return margin, violated
}

// contractionSlack returns 1 − the maximum per-round spread ratio across
// the correct histories: near zero means the adversary found a round that
// barely contracted, the termination-stalling direction.
func contractionSlack(histories [][]geometry.Vector) float64 {
	if len(histories) == 0 {
		return 1
	}
	rounds := math.MaxInt
	for _, h := range histories {
		rounds = min(rounds, len(h))
	}
	var maxRatio float64
	for t := 1; t < rounds; t++ {
		prev := roundSpread(histories, t-1)
		curr := roundSpread(histories, t)
		if prev > 1e-12 {
			maxRatio = math.Max(maxRatio, curr/prev)
		}
	}
	return 1 - maxRatio
}

func roundSpread(histories [][]geometry.Vector, t int) float64 {
	var spread float64
	for i := range histories {
		for j := i + 1; j < len(histories); j++ {
			spread = math.Max(spread, histories[i][t].DistInf(histories[j][t]))
		}
	}
	return spread
}

// Search runs the annealed schedule/value search and returns the
// worst-scoring (most adversarial) evaluated genome.
func Search(spec SearchSpec) (*Result, error) {
	spec = spec.WithDefaults()
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))
	var best *Result
	for restart := 0; restart <= spec.Restarts; restart++ {
		cur, err := Evaluate(spec, randomGenome(spec, rng))
		if err != nil {
			return nil, err
		}
		if best == nil || cur.Score < best.Score {
			best = cur
		}
		temp := 0.2
		for it := 0; it < spec.Iterations; it++ {
			cand, err := Evaluate(spec, mutate(spec, cur.Genome, rng))
			if err != nil {
				return nil, err
			}
			if cand.Score < cur.Score || rng.Float64() < math.Exp((cur.Score-cand.Score)/temp) {
				cur = cand
			}
			if cand.Score < best.Score {
				best = cand
			}
			temp *= 0.96
		}
	}
	return best, nil
}

// randomGenome draws a fresh genome: sparse link boosts, the Byzantine
// ids a random f-subset, targets at inflated-box corners (the strongest
// lure positions).
func randomGenome(spec SearchSpec, rng *rand.Rand) Genome {
	g := Genome{LinkExtra: make([]int, spec.N*spec.N)}
	for i := range g.LinkExtra {
		if rng.Float64() < 0.25 {
			g.LinkExtra[i] = rng.Intn(spec.MaxExtra + 1)
		}
	}
	g.ByzIDs = rng.Perm(spec.N)[:spec.F]
	sortInts(g.ByzIDs)
	for k := 0; k < 2*spec.F; k++ {
		g.Targets = append(g.Targets, cornerTarget(spec, rng))
	}
	if rng.Float64() < 0.4 {
		g.CrashRounds = randomCrashWindow(spec, rng, make([]int, 2*spec.N))
	}
	return g
}

// randomCrashWindow clears every window and places one fresh crash/restart
// pair on a random process. Generation and mutation both go through here,
// so a searched genome never carries more than one window — comfortably
// inside the ≤ f budget Evaluate enforces (windows landing on a Byzantine
// id are simply inert).
func randomCrashWindow(spec SearchSpec, rng *rand.Rand, cw []int) []int {
	for i := range cw {
		cw[i] = 0
	}
	p := rng.Intn(spec.N)
	c := 1 + rng.Intn(spec.MaxRounds)
	cw[2*p] = c
	cw[2*p+1] = c + 1 + rng.Intn(spec.MaxRounds+1-c)
	return cw
}

// cornerTarget picks a vertex of the inflated box [−1, 2]^d (occasionally
// an interior point), the value placements that pull hardest.
func cornerTarget(spec SearchSpec, rng *rand.Rand) []float64 {
	t := make([]float64, spec.D)
	for l := range t {
		switch rng.Intn(4) {
		case 0:
			t[l] = -1
		case 1:
			t[l] = 2
		case 2:
			t[l] = 0
		default:
			t[l] = rng.Float64()
		}
	}
	return t
}

// mutate perturbs one genome component.
func mutate(spec SearchSpec, g Genome, rng *rand.Rand) Genome {
	out := g.clone()
	switch rng.Intn(8) {
	case 0, 1: // bump a link boost
		i := rng.Intn(len(out.LinkExtra))
		out.LinkExtra[i] = rng.Intn(spec.MaxExtra + 1)
	case 2: // clear a link boost
		out.LinkExtra[rng.Intn(len(out.LinkExtra))] = 0
	case 3: // re-place one Byzantine id
		out.ByzIDs = rng.Perm(spec.N)[:spec.F]
		sortInts(out.ByzIDs)
	case 4: // resample a whole target
		out.Targets[rng.Intn(len(out.Targets))] = cornerTarget(spec, rng)
	case 5: // place (or move) the crash window
		if out.CrashRounds == nil {
			out.CrashRounds = make([]int, 2*spec.N)
		}
		out.CrashRounds = randomCrashWindow(spec, rng, out.CrashRounds)
	case 6: // clear the crash window
		for i := range out.CrashRounds {
			out.CrashRounds[i] = 0
		}
	default: // nudge one target coordinate
		t := out.Targets[rng.Intn(len(out.Targets))]
		t[rng.Intn(len(t))] += rng.NormFloat64() * 0.3
	}
	return out
}

// Minimize strips a found result to its essential genome: link boosts are
// zeroed, crash windows dropped, and targets snapped to the box center
// greedily, keeping every change whose re-evaluated score stays within tol
// of the found score
// (and whose Violation/Stalled flags match). The result is the smallest
// schedule the regression corpus needs to reproduce the behaviour.
func Minimize(res *Result, tol float64) (*Result, error) {
	best := res
	tryKeep := func(g Genome) (bool, error) {
		cand, err := Evaluate(best.Spec, g)
		if err != nil {
			return false, err
		}
		if cand.Violation == best.Violation && cand.Stalled == best.Stalled &&
			cand.Score <= best.Score+tol {
			best = cand
			return true, nil
		}
		return false, nil
	}
	for i := range best.Genome.LinkExtra {
		if best.Genome.LinkExtra[i] == 0 {
			continue
		}
		g := best.Genome.clone()
		g.LinkExtra[i] = 0
		if _, err := tryKeep(g); err != nil {
			return nil, err
		}
	}
	for i := 0; 2*i < len(best.Genome.CrashRounds); i++ {
		if best.Genome.CrashRounds[2*i] == 0 {
			continue
		}
		g := best.Genome.clone()
		g.CrashRounds[2*i], g.CrashRounds[2*i+1] = 0, 0
		if _, err := tryKeep(g); err != nil {
			return nil, err
		}
	}
	for k := range best.Genome.Targets {
		g := best.Genome.clone()
		for l := range g.Targets[k] {
			g.Targets[k][l] = 0.5
		}
		if _, err := tryKeep(g); err != nil {
			return nil, err
		}
	}
	return best, nil
}

// Instance is the JSON-serializable regression-corpus form of a Result:
// enough to re-run the execution exactly, plus the recorded outcome the
// replay asserts against.
type Instance struct {
	N, F, D     int
	Epsilon     float64
	MaxRounds   int
	Seed        int64
	BaseDelayNS int64
	MaxExtra    int

	LinkExtra   []int
	ByzIDs      []int
	Targets     [][]float64
	CrashRounds []int `json:",omitempty"`

	Score     float64
	MinMargin float64
	Slack     float64
	Violation bool
	Stalled   bool
	// Note is free-form provenance (search settings, date found).
	Note string `json:",omitempty"`
}

// Instance converts a Result for serialization.
func (r *Result) Instance(note string) Instance {
	return Instance{
		N: r.Spec.N, F: r.Spec.F, D: r.Spec.D,
		Epsilon:     r.Spec.Epsilon,
		MaxRounds:   r.Spec.MaxRounds,
		Seed:        r.Spec.Seed,
		BaseDelayNS: int64(r.Spec.BaseDelay),
		MaxExtra:    r.Spec.MaxExtra,
		LinkExtra:   r.Genome.LinkExtra,
		ByzIDs:      r.Genome.ByzIDs,
		Targets:     r.Genome.Targets,
		CrashRounds: r.Genome.CrashRounds,
		Score:       r.Score,
		MinMargin:   r.MinMargin,
		Slack:       r.Slack,
		Violation:   r.Violation,
		Stalled:     r.Stalled,
		Note:        note,
	}
}

// ReplayInstance re-runs a serialized instance and returns the fresh
// evaluation (the caller compares it against the recorded fields).
func ReplayInstance(inst Instance) (*Result, error) {
	spec := SearchSpec{
		N: inst.N, F: inst.F, D: inst.D,
		Epsilon:   inst.Epsilon,
		MaxRounds: inst.MaxRounds,
		Seed:      inst.Seed,
		BaseDelay: time.Duration(inst.BaseDelayNS),
		MaxExtra:  inst.MaxExtra,
	}
	g := Genome{
		LinkExtra:   inst.LinkExtra,
		ByzIDs:      inst.ByzIDs,
		Targets:     inst.Targets,
		CrashRounds: inst.CrashRounds,
	}
	return Evaluate(spec, g)
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
