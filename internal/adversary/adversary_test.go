package adversary

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/aad"
	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/sim"
)

func TestSilentSync(t *testing.T) {
	s := SilentSync{}
	if out := s.Outbox(1); out != nil {
		t.Errorf("Outbox = %v, want nil", out)
	}
	if !s.Done() {
		t.Error("silent node should always be done")
	}
	s.Deliver(1, nil) // must not panic
}

// scriptedSync is a minimal correct node for crash-wrapping tests.
type scriptedSync struct {
	n         int
	delivered int
}

func (s *scriptedSync) Outbox(r int) map[sim.ProcID]sim.Message {
	out := make(map[sim.ProcID]sim.Message, s.n)
	for to := 0; to < s.n; to++ {
		out[sim.ProcID(to)] = r
	}
	return out
}

func (s *scriptedSync) Deliver(int, map[sim.ProcID]sim.Message) { s.delivered++ }
func (s *scriptedSync) Done() bool                              { return false }

func TestCrashSyncPartialSend(t *testing.T) {
	inner := &scriptedSync{n: 4}
	c := &CrashSync{Wrapped: inner, CrashRound: 2, PartialTo: 2}

	// Round 1: full outbox, delivery forwarded.
	out := c.Outbox(1)
	if len(out) != 4 {
		t.Errorf("round 1 outbox = %d recipients, want 4", len(out))
	}
	c.Deliver(1, nil)
	if inner.delivered != 1 {
		t.Error("pre-crash delivery not forwarded")
	}

	// Round 2: crash mid-broadcast — only ids < 2 served.
	out = c.Outbox(2)
	if len(out) != 2 {
		t.Errorf("crash round outbox = %d recipients, want 2", len(out))
	}
	for to := range out {
		if int(to) >= 2 {
			t.Errorf("recipient %d should not receive from crashed node", to)
		}
	}
	if !c.Done() {
		t.Error("crashed node should be done")
	}

	// Round 3: silence; deliveries no longer forwarded.
	if out := c.Outbox(3); out != nil {
		t.Errorf("post-crash outbox = %v", out)
	}
	c.Deliver(3, nil)
	if inner.delivered != 1 {
		t.Error("post-crash delivery must not be forwarded")
	}
}

func TestFuncSyncLifecycle(t *testing.T) {
	calls := 0
	fsync := &FuncSync{
		Rounds: 2,
		Fn: func(r int) map[sim.ProcID]sim.Message {
			calls++
			return map[sim.ProcID]sim.Message{0: r}
		},
	}
	if fsync.Done() {
		t.Error("done before any round")
	}
	_ = fsync.Outbox(1)
	fsync.Deliver(1, nil)
	if fsync.Done() {
		t.Error("done after round 1 of 2")
	}
	_ = fsync.Outbox(2)
	fsync.Deliver(2, nil)
	if !fsync.Done() {
		t.Error("not done after round 2 of 2")
	}
	if calls != 2 {
		t.Errorf("fn called %d times, want 2", calls)
	}
	empty := &FuncSync{Rounds: 1}
	if out := empty.Outbox(1); out != nil {
		t.Error("nil Fn should produce nil outbox")
	}
}

func TestRandomVectorWithinBox(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := geometry.Box{Lo: geometry.Vector{-1, 5}, Hi: geometry.Vector{1, 6}}
	for i := 0; i < 200; i++ {
		v := RandomVector(rng, box)
		if !box.Contains(v, 0) {
			t.Fatalf("vector %v escapes box", v)
		}
	}
}

func TestSilentAsyncHalts(t *testing.T) {
	nodes := []sim.Node{SilentAsync{}}
	eng, err := sim.NewEngine(sim.Config{N: 1, Seed: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Halted != 1 || stats.Sent != 0 {
		t.Errorf("stats = %+v, want 1 halted, 0 sent", stats)
	}
}

// countingAsync counts deliveries and echoes one message back.
type countingAsync struct{ got int }

func (c *countingAsync) Init(api sim.API) { api.Send(api.ID(), "kick") }

func (c *countingAsync) OnMessage(api sim.API, _ sim.ProcID, _ sim.Message) {
	c.got++
	if c.got < 10 {
		api.Send(api.ID(), "again")
	}
}

func TestCrashAsyncStopsWrapped(t *testing.T) {
	inner := &countingAsync{}
	crash := &CrashAsync{Wrapped: inner, AfterDeliveries: 3}
	eng, err := sim.NewEngine(sim.Config{N: 1, Seed: 1}, []sim.Node{crash})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if inner.got != 3 {
		t.Errorf("wrapped saw %d deliveries, want exactly 3", inner.got)
	}
}

func TestCrashAsyncImmediate(t *testing.T) {
	inner := &countingAsync{}
	crash := &CrashAsync{Wrapped: inner, AfterDeliveries: 0}
	eng, err := sim.NewEngine(sim.Config{N: 1, Seed: 1}, []sim.Node{crash})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if inner.got != 0 || stats.Halted != 1 {
		t.Errorf("got=%d halted=%d, want 0 deliveries and 1 halt", inner.got, stats.Halted)
	}
}

func TestNewEIGEquivocatorShapesMessages(t *testing.T) {
	eq := NewEIGEquivocator(4, 2, 3, func(to sim.ProcID) geometry.Vector {
		return geometry.Vector{float64(to)}
	})
	out := eq.Outbox(1)
	if len(out) != 4 {
		t.Fatalf("recipients = %d, want 4", len(out))
	}
	for to, raw := range out {
		msg, ok := raw.(broadcast.EIGRoundMsg)
		if !ok {
			t.Fatalf("message type %T", raw)
		}
		if len(msg.Instances) != 1 || msg.Instances[0].Sender != 3 {
			t.Errorf("round 1 must announce own instance only: %+v", msg)
		}
		v := msg.Instances[0].Relays[0].Value
		if v[0] != float64(to) {
			t.Errorf("recipient %d got %v — equivocation lost", to, v)
		}
	}
	// Round 2 lies about the other instances.
	out2 := eq.Outbox(2)
	msg2 := out2[0].(broadcast.EIGRoundMsg)
	if len(msg2.Instances) != 3 {
		t.Errorf("round 2 lies about %d instances, want 3", len(msg2.Instances))
	}
}

func TestNewStateEquivocatorSplit(t *testing.T) {
	a, b := geometry.Vector{0}, geometry.Vector{1}
	eq := NewStateEquivocator(4, 5, 2, a, b)
	out := eq.Outbox(3)
	for to, raw := range out {
		msg := raw.(core.StateMsg)
		if msg.Round != 3 {
			t.Errorf("round tag %d, want 3", msg.Round)
		}
		want := b
		if int(to) < 2 {
			want = a
		}
		if !msg.Value.Equal(want) {
			t.Errorf("recipient %d got %v, want %v", to, msg.Value, want)
		}
	}
}

func TestNewStateLureConstant(t *testing.T) {
	target := geometry.Vector{7, 7}
	lure := NewStateLure(3, 4, target)
	for r := 1; r <= 2; r++ {
		for to, raw := range lure.Outbox(r) {
			msg := raw.(core.StateMsg)
			if !msg.Value.Equal(target) {
				t.Errorf("round %d recipient %d: %v", r, to, msg.Value)
			}
		}
	}
}

func TestNewAsyncEquivocatorSendsBothValues(t *testing.T) {
	a, b := geometry.Vector{0}, geometry.Vector{1}
	eq := NewAsyncEquivocator(4, 2, 3, 2, a, b)
	rec := &recordingAPI{n: 4}
	eq.Init(rec)
	// 2 rounds × 4 recipients.
	if len(rec.sent) != 8 {
		t.Fatalf("sent %d messages, want 8", len(rec.sent))
	}
	for _, s := range rec.sent {
		m := s.msg.(aad.Msg)
		if m.Kind != aad.KindRBC || m.RBC.Phase != broadcast.RBCInit || m.RBC.Origin != 3 {
			t.Errorf("unexpected message %+v", m)
		}
		want := b
		if int(s.to) < 2 {
			want = a
		}
		if !m.RBC.Value.Equal(want) {
			t.Errorf("recipient %d got %v, want %v", s.to, m.RBC.Value, want)
		}
	}
}

func TestNewAsyncRandomBudgeted(t *testing.T) {
	adv := NewAsyncRandom(4, 3, 5, geometry.UniformBox(2, -1, 1))
	rec := &recordingAPI{n: 4}
	adv.Init(rec)
	first := len(rec.sent)
	if first == 0 {
		t.Fatal("random adversary sent nothing at init")
	}
	// Hammer it with deliveries; the spray budget must cap total output.
	for i := 0; i < 10_000; i++ {
		adv.OnMessage(rec, 0, "noise")
	}
	if len(rec.sent) > 5*3*4*10+first {
		t.Errorf("budget exceeded: %d messages", len(rec.sent))
	}
}

func TestNewAsyncLureParticipates(t *testing.T) {
	target := geometry.Vector{1}
	lure, err := NewAsyncLure(4, 1, 1, 2, 3, target)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingAPI{n: 4}
	lure.Init(rec)
	// Starts RBC for both rounds: 2 broadcasts × 4 recipients.
	inits := 0
	for _, s := range rec.sent {
		m, ok := s.msg.(aad.Msg)
		if ok && m.Kind == aad.KindRBC && m.RBC.Phase == broadcast.RBCInit {
			if !m.RBC.Value.Equal(target) {
				t.Errorf("lure announced %v, want %v", m.RBC.Value, target)
			}
			inits++
		}
	}
	if inits != 8 {
		t.Errorf("inits = %d, want 2 rounds × 4 recipients", inits)
	}
	// It responds to protocol traffic (echoes another origin's INIT).
	before := len(rec.sent)
	lure.OnMessage(rec, 0, aad.Msg{Kind: aad.KindRBC, RBC: broadcast.RBCMsg{
		Phase: broadcast.RBCInit, Origin: 0, Tag: 1, Value: geometry.Vector{0.5},
	}})
	if len(rec.sent) == before {
		t.Error("lure did not participate in dissemination")
	}
	if _, err := NewAsyncLure(3, 1, 1, 1, 0, target); err == nil {
		t.Error("n=3f: expected constructor error")
	}
}

// recordingAPI captures sends for adversary shape tests.
type recordingAPI struct {
	n    int
	sent []sentMsg
}

type sentMsg struct {
	to  sim.ProcID
	msg sim.Message
}

var _ sim.API = (*recordingAPI)(nil)

func (r *recordingAPI) ID() sim.ProcID { return sim.ProcID(r.n - 1) }
func (r *recordingAPI) N() int         { return r.n }

func (r *recordingAPI) Send(to sim.ProcID, msg sim.Message) {
	r.sent = append(r.sent, sentMsg{to: to, msg: msg})
}

func (r *recordingAPI) Broadcast(msg sim.Message) {
	for i := 0; i < r.n; i++ {
		r.Send(sim.ProcID(i), msg)
	}
}

func (r *recordingAPI) Halt()              {}
func (r *recordingAPI) Rand() *rand.Rand   { return rand.New(rand.NewSource(1)) }
func (r *recordingAPI) Now() time.Duration { return 0 }
