package adversary

import (
	"math/rand"

	"repro/internal/aad"
	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/sim"
)

// NewEIGEquivocator returns a synchronous adversary for the EIG-based
// algorithms (Exact BVC, coordinate-wise baseline) run by process `self`:
// in round 1 it announces a different input vector to every recipient
// (valueFor decides which), and in later rounds it relays per-recipient
// contradictory values for the other instances it should be forwarding.
func NewEIGEquivocator(n, rounds int, self sim.ProcID, valueFor func(to sim.ProcID) geometry.Vector) *FuncSync {
	return &FuncSync{
		Rounds: rounds,
		Fn: func(r int) map[sim.ProcID]sim.Message {
			out := make(map[sim.ProcID]sim.Message, n)
			for to := 0; to < n; to++ {
				toID := sim.ProcID(to)
				v := valueFor(toID)
				msg := broadcast.EIGRoundMsg{Round: r}
				if r == 1 {
					// Equivocated own-instance announcement.
					msg.Instances = []broadcast.EIGInstanceRelays{{
						Sender: self,
						Relays: []broadcast.EIGRelay{{Path: nil, Value: v}},
					}}
				} else {
					// Lie about every other instance, differently per
					// recipient.
					for s := 0; s < n; s++ {
						sid := sim.ProcID(s)
						if sid == self {
							continue
						}
						msg.Instances = append(msg.Instances, broadcast.EIGInstanceRelays{
							Sender: sid,
							Relays: []broadcast.EIGRelay{{Path: []sim.ProcID{sid}, Value: v}},
						})
					}
				}
				out[toID] = msg
			}
			return out
		},
	}
}

// NewEIGRandom returns a synchronous adversary that sprays random relays
// with random (valid-shape) paths and values drawn from box, different for
// every recipient and round.
func NewEIGRandom(n, d, rounds int, box geometry.Box, rng *rand.Rand) *FuncSync {
	return &FuncSync{
		Rounds: rounds,
		Fn: func(r int) map[sim.ProcID]sim.Message {
			out := make(map[sim.ProcID]sim.Message, n)
			for to := 0; to < n; to++ {
				msg := broadcast.EIGRoundMsg{Round: r}
				relayCount := 1 + rng.Intn(3)
				for k := 0; k < relayCount; k++ {
					sender := sim.ProcID(rng.Intn(n))
					var path []sim.ProcID
					if r > 1 {
						path = []sim.ProcID{sender}
						for len(path) < r-1 {
							next := sim.ProcID(rng.Intn(n))
							if !pathContains(path, next) {
								path = append(path, next)
							}
						}
					}
					msg.Instances = append(msg.Instances, broadcast.EIGInstanceRelays{
						Sender: sender,
						Relays: []broadcast.EIGRelay{{Path: path, Value: RandomVector(rng, box)}},
					})
				}
				out[sim.ProcID(to)] = msg
			}
			return out
		},
	}
}

// NewStateEquivocator returns a synchronous adversary for the restricted
// round structure: every round it sends state A to recipients below split
// and state B to the rest.
func NewStateEquivocator(n, rounds int, split int, a, b geometry.Vector) *FuncSync {
	return &FuncSync{
		Rounds: rounds,
		Fn: func(r int) map[sim.ProcID]sim.Message {
			out := make(map[sim.ProcID]sim.Message, n)
			for to := 0; to < n; to++ {
				v := b
				if to < split {
					v = a
				}
				out[sim.ProcID(to)] = core.StateMsg{Round: r, Value: v.Clone()}
			}
			return out
		},
	}
}

// NewStateLure returns a synchronous adversary for the restricted round
// structure that reports the fixed target as its state every round, trying
// to drag the correct states toward it.
func NewStateLure(n, rounds int, target geometry.Vector) *FuncSync {
	return &FuncSync{
		Rounds: rounds,
		Fn: func(r int) map[sim.ProcID]sim.Message {
			out := make(map[sim.ProcID]sim.Message, n)
			for to := 0; to < n; to++ {
				out[sim.ProcID(to)] = core.StateMsg{Round: r, Value: target.Clone()}
			}
			return out
		},
	}
}

// NewStateRandom returns a synchronous adversary for the restricted round
// structure sending random per-recipient states from box each round.
func NewStateRandom(n, rounds int, box geometry.Box, rng *rand.Rand) *FuncSync {
	return &FuncSync{
		Rounds: rounds,
		Fn: func(r int) map[sim.ProcID]sim.Message {
			out := make(map[sim.ProcID]sim.Message, n)
			for to := 0; to < n; to++ {
				out[sim.ProcID(to)] = core.StateMsg{Round: r, Value: RandomVector(rng, box)}
			}
			return out
		},
	}
}

// NewAsyncEquivocator returns an asynchronous adversary for the AAD-based
// algorithm run by process `self`: for every round up to rounds it
// RBC-INITs value a to recipients below split and value b to the rest, all
// up front, plus a matching flood of (legitimate-looking) reports. The RBC
// layer prevents conflicting deliveries; the exchange must still complete
// and stay correct.
func NewAsyncEquivocator(n, rounds int, self sim.ProcID, split int, a, b geometry.Vector) *FuncAsync {
	return &FuncAsync{
		OnInit: func(api sim.API) {
			for t := 1; t <= rounds; t++ {
				for to := 0; to < n; to++ {
					v := b
					if to < split {
						v = a
					}
					api.Send(sim.ProcID(to), aad.Msg{
						Kind: aad.KindRBC,
						RBC: broadcast.RBCMsg{
							Phase:  broadcast.RBCInit,
							Origin: self,
							Tag:    t,
							Value:  v.Clone(),
						},
					})
				}
			}
		},
	}
}

// NewAsyncLure returns an asynchronous adversary that honestly participates
// in dissemination (so its value is actually delivered and lands in the
// correct processes' B sets) but always advertises the fixed target as its
// state in every round — the strongest value-steering attack that remains
// protocol-compliant.
func NewAsyncLure(n, f, d, rounds int, self sim.ProcID, target geometry.Vector) (*FuncAsync, error) {
	coord, err := aad.NewCoordinator(n, f, self, d)
	if err != nil {
		return nil, err
	}
	broadcastAll := func(api sim.API, msgs []aad.Msg) {
		for _, m := range msgs {
			api.Broadcast(m)
		}
	}
	fa := &FuncAsync{}
	fa.OnInit = func(api sim.API) {
		for t := 1; t <= rounds; t++ {
			msgs, err := coord.StartRound(t, target)
			if err != nil {
				return
			}
			broadcastAll(api, msgs)
		}
	}
	fa.OnMsg = func(api sim.API, from sim.ProcID, msg sim.Message) {
		m, ok := msg.(aad.Msg)
		if !ok {
			return
		}
		out, _ := coord.Handle(from, m)
		broadcastAll(api, out)
	}
	return fa, nil
}

// NewAsyncRandom returns an asynchronous adversary that replies to every
// delivery with a burst of random protocol messages: random-phase RBC
// messages with random origins/tags/values and random reports. Total
// output is budgeted so that two colluding random adversaries cannot
// ping-pong forever.
func NewAsyncRandom(n, rounds, burst int, box geometry.Box) *FuncAsync {
	phases := []broadcast.RBCPhase{broadcast.RBCInit, broadcast.RBCEcho, broadcast.RBCReady}
	budget := burst * rounds * n * 10
	spray := func(api sim.API) {
		if budget <= 0 {
			return
		}
		budget -= burst
		rng := api.Rand()
		for k := 0; k < burst; k++ {
			to := sim.ProcID(rng.Intn(n))
			if rng.Intn(2) == 0 {
				origin := sim.ProcID(rng.Intn(n))
				if rng.Intn(4) == 0 {
					origin = api.ID() // sometimes its own instance
				}
				api.Send(to, aad.Msg{
					Kind: aad.KindRBC,
					RBC: broadcast.RBCMsg{
						Phase:  phases[rng.Intn(len(phases))],
						Origin: origin,
						Tag:    1 + rng.Intn(rounds),
						Value:  RandomVector(rng, box),
					},
				})
			} else {
				api.Send(to, aad.Msg{
					Kind: aad.KindReport,
					Report: aad.ReportMsg{
						Round:  1 + rng.Intn(rounds),
						Origin: sim.ProcID(rng.Intn(n)),
					},
				})
			}
		}
	}
	return &FuncAsync{
		OnInit: func(api sim.API) { spray(api) },
		OnMsg:  func(api sim.API, _ sim.ProcID, _ sim.Message) { spray(api) },
	}
}

func pathContains(path []sim.ProcID, id sim.ProcID) bool {
	for _, p := range path {
		if p == id {
			return true
		}
	}
	return false
}
