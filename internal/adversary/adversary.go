// Package adversary provides concrete Byzantine behaviours for the
// sufficiency experiments: the theorems quantify over *all* adversaries, so
// the test suite substitutes a library of canonical attack strategies —
// silence, crashes (including mid-broadcast partial sends), random noise,
// equivocation (different values to different peers), and value-lure
// attacks that try to drag the correct processes' states toward a target.
//
// Synchronous behaviours implement sim.SyncNode and are dropped into the
// lock-step engine next to correct nodes; asynchronous behaviours implement
// sim.Node for the discrete-event engine. None of them can break the
// algorithms at the paper's resilience bounds — that is exactly what the
// experiments verify.
package adversary

import (
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/sim"
)

// SilentSync is a synchronous process that never sends anything — the
// simplest crash fault (crashed from round 1).
type SilentSync struct{}

var _ sim.SyncNode = SilentSync{}

// Outbox implements sim.SyncNode.
func (SilentSync) Outbox(int) map[sim.ProcID]sim.Message { return nil }

// Deliver implements sim.SyncNode.
func (SilentSync) Deliver(int, map[sim.ProcID]sim.Message) {}

// Done implements sim.SyncNode.
func (SilentSync) Done() bool { return true }

// CrashSync wraps a correct synchronous node and crashes it during round
// CrashRound: in that round only recipients with id < PartialTo receive its
// messages (a mid-broadcast crash); afterwards it is silent.
type CrashSync struct {
	Wrapped    sim.SyncNode
	CrashRound int
	PartialTo  int

	crashed bool
}

var _ sim.SyncNode = (*CrashSync)(nil)

// Outbox implements sim.SyncNode.
func (c *CrashSync) Outbox(r int) map[sim.ProcID]sim.Message {
	if c.crashed {
		return nil
	}
	out := c.Wrapped.Outbox(r)
	if r < c.CrashRound {
		return out
	}
	c.crashed = true
	partial := make(map[sim.ProcID]sim.Message, c.PartialTo)
	for to, msg := range out {
		if int(to) < c.PartialTo {
			partial[to] = msg
		}
	}
	return partial
}

// Deliver implements sim.SyncNode.
func (c *CrashSync) Deliver(r int, inbox map[sim.ProcID]sim.Message) {
	if !c.crashed {
		c.Wrapped.Deliver(r, inbox)
	}
}

// Done implements sim.SyncNode.
func (c *CrashSync) Done() bool { return c.crashed || c.Wrapped.Done() }

// FuncSync adapts an outbox function to sim.SyncNode: the function receives
// the round and produces the full per-recipient message map, which makes
// equivocation trivial to express. It reports Done after Rounds rounds.
type FuncSync struct {
	Rounds int
	Fn     func(r int) map[sim.ProcID]sim.Message

	round int
}

var _ sim.SyncNode = (*FuncSync)(nil)

// Outbox implements sim.SyncNode.
func (s *FuncSync) Outbox(r int) map[sim.ProcID]sim.Message {
	if s.Fn == nil {
		return nil
	}
	return s.Fn(r)
}

// Deliver implements sim.SyncNode.
func (s *FuncSync) Deliver(r int, _ map[sim.ProcID]sim.Message) { s.round = r }

// Done implements sim.SyncNode.
func (s *FuncSync) Done() bool { return s.round >= s.Rounds }

// RandomVector draws a vector uniformly from the box.
func RandomVector(rng *rand.Rand, box geometry.Box) geometry.Vector {
	out := geometry.NewVector(box.Dim())
	for i := range out {
		out[i] = box.Lo[i] + rng.Float64()*(box.Hi[i]-box.Lo[i])
	}
	return out
}

// SilentAsync is an asynchronous process that does nothing at all.
type SilentAsync struct{}

var _ sim.Node = SilentAsync{}

// Init implements sim.Node.
func (SilentAsync) Init(api sim.API) { api.Halt() }

// OnMessage implements sim.Node.
func (SilentAsync) OnMessage(sim.API, sim.ProcID, sim.Message) {}

// CrashAsync wraps a correct asynchronous node and stops it (silently)
// after AfterDeliveries message deliveries.
type CrashAsync struct {
	Wrapped         sim.Node
	AfterDeliveries int

	delivered int
	crashed   bool
}

var _ sim.Node = (*CrashAsync)(nil)

// Init implements sim.Node.
func (c *CrashAsync) Init(api sim.API) {
	if c.AfterDeliveries <= 0 {
		c.crashed = true
		api.Halt()
		return
	}
	c.Wrapped.Init(api)
}

// OnMessage implements sim.Node.
func (c *CrashAsync) OnMessage(api sim.API, from sim.ProcID, msg sim.Message) {
	if c.crashed {
		return
	}
	c.delivered++
	if c.delivered > c.AfterDeliveries {
		c.crashed = true
		api.Halt()
		return
	}
	c.Wrapped.OnMessage(api, from, msg)
}

// FuncAsync adapts functions to sim.Node for hand-crafted asynchronous
// attacks (equivocating RBC inits, bogus reports, flooding).
type FuncAsync struct {
	OnInit func(api sim.API)
	OnMsg  func(api sim.API, from sim.ProcID, msg sim.Message)
}

var _ sim.Node = (*FuncAsync)(nil)

// Init implements sim.Node.
func (f *FuncAsync) Init(api sim.API) {
	if f.OnInit != nil {
		f.OnInit(api)
	}
}

// OnMessage implements sim.Node.
func (f *FuncAsync) OnMessage(api sim.API, from sim.ProcID, msg sim.Message) {
	if f.OnMsg != nil {
		f.OnMsg(api, from, msg)
	}
}
