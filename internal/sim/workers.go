package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ResolveWorkers maps a worker-count knob to a concrete pool size: zero (or
// negative) selects GOMAXPROCS, and the result is capped at jobs so no
// worker ever idles from the start.
func ResolveWorkers(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelFor runs fn(i) for every i in [0, jobs) across at most workers
// goroutines and returns when all invocations have completed. Invocations
// for distinct i may run concurrently and in any order, so fn must only
// touch state owned by its own index; workers ≤ 1 degenerates to a plain
// loop on the calling goroutine.
func parallelFor(workers, jobs int, fn func(i int)) {
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 || jobs <= 1 {
		for i := 0; i < jobs; i++ {
			fn(i)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= jobs {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
