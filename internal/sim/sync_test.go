package sim

import (
	"errors"
	"testing"
)

// countingSync broadcasts its id each round and tallies what it hears;
// done after `rounds` rounds.
type countingSync struct {
	id     ProcID
	n      int
	rounds int
	round  int
	heard  map[ProcID]int
}

func newCountingSync(id, n, rounds int) *countingSync {
	return &countingSync{id: ProcID(id), n: n, rounds: rounds, heard: make(map[ProcID]int)}
}

func (c *countingSync) Outbox(r int) map[ProcID]Message {
	out := make(map[ProcID]Message, c.n)
	for i := 0; i < c.n; i++ {
		out[ProcID(i)] = int(c.id)
	}
	return out
}

func (c *countingSync) Deliver(r int, inbox map[ProcID]Message) {
	for from := range inbox {
		c.heard[from]++
	}
	c.round = r
}

func (c *countingSync) Done() bool { return c.round >= c.rounds }

func TestRunSyncAllToAll(t *testing.T) {
	const n, rounds = 4, 3
	nodes := make([]SyncNode, n)
	impls := make([]*countingSync, n)
	for i := range nodes {
		impls[i] = newCountingSync(i, n, rounds)
		nodes[i] = impls[i]
	}
	stats, err := RunSync(nodes, rounds+1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AllDone {
		t.Error("not all done")
	}
	if stats.Rounds != rounds {
		t.Errorf("rounds = %d, want %d", stats.Rounds, rounds)
	}
	if stats.Sent != int64(n*n*rounds) {
		t.Errorf("sent = %d, want %d", stats.Sent, n*n*rounds)
	}
	for i, impl := range impls {
		for from, cnt := range impl.heard {
			if cnt != rounds {
				t.Errorf("node %d heard %d from %d, want %d", i, cnt, from, rounds)
			}
		}
		if len(impl.heard) != n {
			t.Errorf("node %d heard from %d senders, want %d", i, len(impl.heard), n)
		}
	}
}

func TestRunSyncRoundCap(t *testing.T) {
	nodes := []SyncNode{newCountingSync(0, 1, 1000)}
	_, err := RunSync(nodes, 3)
	if !errors.Is(err, ErrRoundCap) {
		t.Errorf("err = %v, want ErrRoundCap", err)
	}
}

func TestRunSyncValidation(t *testing.T) {
	if _, err := RunSync(nil, 5); err == nil {
		t.Error("no nodes: expected error")
	}
	if _, err := RunSync([]SyncNode{newCountingSync(0, 1, 1)}, 0); err == nil {
		t.Error("bad cap: expected error")
	}
}

// silentSync never sends and is done immediately.
type silentSync struct{}

func (silentSync) Outbox(int) map[ProcID]Message   { return nil }
func (silentSync) Deliver(int, map[ProcID]Message) {}
func (silentSync) Done() bool                      { return true }

func TestRunSyncImmediateDone(t *testing.T) {
	stats, err := RunSync([]SyncNode{silentSync{}, silentSync{}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 || !stats.AllDone {
		t.Errorf("stats = %+v, want 0 rounds all-done", stats)
	}
}

// equivocatingSync sends different values to different recipients — the
// fundamental Byzantine capability the sync engine must support.
type equivocatingSync struct {
	done bool
}

func (e *equivocatingSync) Outbox(r int) map[ProcID]Message {
	return map[ProcID]Message{0: "left", 1: "right"}
}

func (e *equivocatingSync) Deliver(int, map[ProcID]Message) { e.done = true }
func (e *equivocatingSync) Done() bool                      { return e.done }

// recorderSync keeps the last value received from each sender.
type recorderSync struct {
	last map[ProcID]Message
	done bool
}

func (r *recorderSync) Outbox(int) map[ProcID]Message { return nil }

func (r *recorderSync) Deliver(_ int, inbox map[ProcID]Message) {
	if r.last == nil {
		r.last = make(map[ProcID]Message)
	}
	for from, m := range inbox {
		r.last[from] = m
	}
	r.done = true
}

func (r *recorderSync) Done() bool { return r.done }

func TestRunSyncEquivocation(t *testing.T) {
	a := &recorderSync{}
	b := &recorderSync{}
	nodes := []SyncNode{a, b, &equivocatingSync{}}
	if _, err := RunSync(nodes, 2); err != nil {
		t.Fatal(err)
	}
	if a.last[2] != "left" || b.last[2] != "right" {
		t.Errorf("equivocation lost: a=%v b=%v", a.last[2], b.last[2])
	}
}

// partialSync sends only to recipient 0 — models a crash mid-broadcast.
type partialSync struct{ done bool }

func (p *partialSync) Outbox(int) map[ProcID]Message {
	return map[ProcID]Message{0: "only-you"}
}
func (p *partialSync) Deliver(int, map[ProcID]Message) { p.done = true }
func (p *partialSync) Done() bool                      { return p.done }

func TestRunSyncPartialSend(t *testing.T) {
	a := &recorderSync{}
	b := &recorderSync{}
	if _, err := RunSync([]SyncNode{a, b, &partialSync{}}, 2); err != nil {
		t.Fatal(err)
	}
	if a.last[2] != "only-you" {
		t.Error("recipient 0 missed the partial send")
	}
	if _, ok := b.last[2]; ok {
		t.Error("recipient 1 should have received nothing from the partial sender")
	}
}

func TestRunSyncDropsInvalidDestinations(t *testing.T) {
	bad := &badDestSync{}
	stats, err := RunSync([]SyncNode{bad}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 0 {
		t.Errorf("sent = %d, want 0", stats.Sent)
	}
}

type badDestSync struct{ done bool }

func (b *badDestSync) Outbox(int) map[ProcID]Message {
	return map[ProcID]Message{5: "x", -1: "y"}
}
func (b *badDestSync) Deliver(int, map[ProcID]Message) { b.done = true }
func (b *badDestSync) Done() bool                      { return b.done }

// crashAtOutboxSync crashes mid-broadcast in a configured round: it sends
// only to the first half and reports Done from then on — the adversary
// shape that makes the engine re-check Done between the Outbox and Deliver
// phases.
type crashAtOutboxSync struct {
	n, crashRound int
	crashed       bool
	round         int
}

func (c *crashAtOutboxSync) Outbox(r int) map[ProcID]Message {
	if c.crashed {
		return nil
	}
	out := make(map[ProcID]Message, c.n)
	limit := c.n
	if r == c.crashRound {
		c.crashed = true
		limit = c.n / 2
	}
	for i := 0; i < limit; i++ {
		out[ProcID(i)] = "v"
	}
	return out
}

func (c *crashAtOutboxSync) Deliver(r int, _ map[ProcID]Message) { c.round = r }

func (c *crashAtOutboxSync) Done() bool { return c.crashed || c.round >= 5 }

// TestRunSyncWorkersDeterministic: an execution's statistics and every
// node's final state must be identical for any SyncOptions.Workers setting,
// including with a mid-broadcast crasher in the mix.
func TestRunSyncWorkersDeterministic(t *testing.T) {
	const n, rounds = 6, 4
	run := func(workers int) ([]map[ProcID]int, SyncStats) {
		nodes := make([]SyncNode, n)
		counters := make([]*countingSync, n-1)
		for i := 0; i < n-1; i++ {
			counters[i] = newCountingSync(i, n, rounds)
			nodes[i] = counters[i]
		}
		nodes[n-1] = &crashAtOutboxSync{n: n, crashRound: 2}
		stats, err := RunSyncWith(nodes, SyncOptions{MaxRounds: rounds + 1, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		heard := make([]map[ProcID]int, len(counters))
		for i, c := range counters {
			heard[i] = c.heard
		}
		return heard, stats
	}
	wantHeard, wantStats := run(1)
	for _, workers := range []int{0, 2, 4, 32} {
		heard, stats := run(workers)
		if stats != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, stats, wantStats)
		}
		for i := range heard {
			if len(heard[i]) != len(wantHeard[i]) {
				t.Fatalf("workers=%d: node %d heard %d senders, want %d", workers, i, len(heard[i]), len(wantHeard[i]))
			}
			for from, count := range wantHeard[i] {
				if heard[i][from] != count {
					t.Fatalf("workers=%d: node %d heard %d from %d, want %d", workers, i, heard[i][from], from, count)
				}
			}
		}
	}
}
