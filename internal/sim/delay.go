package sim

import (
	"math/rand"
	"time"
)

// DelayModel decides the network delay of each message. Implementations
// must be deterministic functions of their arguments and the provided PRNG
// (which the engine seeds deterministically), so executions replay exactly.
// Delay is only ever invoked from the engine goroutine — even when node
// callbacks run on a worker pool, their emitted sends are enqueued (and
// delays drawn) in a deterministic serial merge — so implementations need
// not be safe for concurrent use.
type DelayModel interface {
	// Delay returns the link latency for a message from → to sent at the
	// given virtual time.
	Delay(from, to ProcID, at time.Duration, rng *rand.Rand) time.Duration
}

// Lookahead is optionally implemented by delay models that can promise a
// lower bound on every latency they will ever return. The discrete-event
// engine uses the bound as its conservative lookahead horizon: all events
// within one MinDelay window of the earliest pending event are causally
// independent (any message generated inside the window arrives at or beyond
// its end), so the parallel executor may batch them together instead of
// batching a single timestamp. The bound must hold for every (from, to, at)
// and every PRNG draw — a model that can undercut its own MinDelay would
// silently break the engine's bit-identical determinism contract.
type Lookahead interface {
	// MinDelay returns the lower bound (≤ every Delay return; 0 disables
	// lookahead batching).
	MinDelay() time.Duration
}

// ConstantDelay delivers every message after a fixed latency. With a
// constant delay every process advances in lock step — the most benign
// asynchronous schedule.
type ConstantDelay struct {
	D time.Duration
}

// Delay implements DelayModel.
func (c ConstantDelay) Delay(_, _ ProcID, _ time.Duration, _ *rand.Rand) time.Duration {
	return c.D
}

// MinDelay implements Lookahead: every delay is exactly D.
func (c ConstantDelay) MinDelay() time.Duration {
	if c.D < 0 {
		return 0
	}
	return c.D
}

// UniformDelay draws latencies uniformly from [Min, Max].
type UniformDelay struct {
	Min, Max time.Duration
}

// Delay implements DelayModel.
func (u UniformDelay) Delay(_, _ ProcID, _ time.Duration, rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)+1))
}

// MinDelay implements Lookahead: no draw undercuts Min.
func (u UniformDelay) MinDelay() time.Duration {
	if u.Min < 0 {
		return 0
	}
	return u.Min
}

// ExponentialDelay draws latencies from an exponential distribution with
// the given mean, capped at Cap (0 means 10× mean). Heavy-tailed delays are
// the classic stress test for asynchronous algorithms.
type ExponentialDelay struct {
	Mean time.Duration
	Cap  time.Duration
}

// Delay implements DelayModel.
func (e ExponentialDelay) Delay(_, _ ProcID, _ time.Duration, rng *rand.Rand) time.Duration {
	limit := e.Cap
	if limit <= 0 {
		limit = 10 * e.Mean
	}
	d := time.Duration(rng.ExpFloat64() * float64(e.Mean))
	if d > limit {
		d = limit
	}
	return d
}

// ShiftedExponentialDelay draws latencies as Floor plus an exponential
// tail with the given mean, capped at Cap (0 means Floor + 10× tail mean).
// It keeps the heavy-tailed stress schedule of ExponentialDelay while
// promising a positive minimum latency: a plain exponential has infimum 0,
// which forces the discrete-event engine's conservative lookahead to 0 and
// collapses its batches to single timestamps — the shifted model restores
// wide [t, t+Floor] windows (see Lookahead).
type ShiftedExponentialDelay struct {
	Floor    time.Duration
	TailMean time.Duration
	Cap      time.Duration
}

// Delay implements DelayModel.
func (s ShiftedExponentialDelay) Delay(_, _ ProcID, _ time.Duration, rng *rand.Rand) time.Duration {
	limit := s.Cap
	if limit <= 0 {
		limit = s.Floor + 10*s.TailMean
	}
	d := s.Floor + time.Duration(rng.ExpFloat64()*float64(s.TailMean))
	if d > limit {
		d = limit
	}
	if d < s.Floor {
		d = s.Floor // Cap below Floor: the floor still holds
	}
	return d
}

// MinDelay implements Lookahead: no draw undercuts the constant floor.
func (s ShiftedExponentialDelay) MinDelay() time.Duration {
	if s.Floor < 0 {
		return 0
	}
	return s.Floor
}

// StarveSenders wraps an inner model and adds Extra latency to every message
// *sent by* the processes in Slow. This is the adversarial schedule used by
// the asynchronous lower-bound and restricted-round experiments: the
// scheduler legally hides up to f correct processes from everyone else for
// as long as it likes.
type StarveSenders struct {
	Inner DelayModel
	Slow  map[ProcID]bool
	Extra time.Duration
}

// Delay implements DelayModel.
func (s StarveSenders) Delay(from, to ProcID, at time.Duration, rng *rand.Rand) time.Duration {
	d := s.Inner.Delay(from, to, at, rng)
	if s.Slow[from] {
		d += s.Extra
	}
	return d
}

// MinDelay implements Lookahead: starving only adds latency, so the inner
// model's bound carries over.
func (s StarveSenders) MinDelay() time.Duration {
	if la, ok := s.Inner.(Lookahead); ok {
		return la.MinDelay()
	}
	return 0
}

// StarveLinks adds Extra latency on the specific directed links in Slow,
// keyed "from→to". It lets tests craft fully asymmetric schedules.
type StarveLinks struct {
	Inner DelayModel
	Slow  map[[2]ProcID]bool
	Extra time.Duration
}

// Delay implements DelayModel.
func (s StarveLinks) Delay(from, to ProcID, at time.Duration, rng *rand.Rand) time.Duration {
	d := s.Inner.Delay(from, to, at, rng)
	if s.Slow[[2]ProcID{from, to}] {
		d += s.Extra
	}
	return d
}

// MinDelay implements Lookahead: link starving only adds latency.
func (s StarveLinks) MinDelay() time.Duration {
	if la, ok := s.Inner.(Lookahead); ok {
		return la.MinDelay()
	}
	return 0
}
