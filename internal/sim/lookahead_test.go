package sim

import (
	"math/rand"
	"testing"
	"time"
)

// nowNode records api.Now() at every delivery — the per-event virtual clock
// that lookahead-widened batches must preserve — and keeps gossiping.
type nowNode struct {
	rounds int
	nows   []time.Duration
}

func (n *nowNode) Init(api API) {
	for r := 0; r < n.rounds; r++ {
		api.Broadcast(r)
	}
}

func (n *nowNode) OnMessage(api API, from ProcID, msg Message) {
	n.nows = append(n.nows, api.Now())
	if v := msg.(int); v > 0 && len(n.nows) < 64 {
		api.Send(from, v-1)
	}
}

// runLookahead executes a nowNode mesh and returns the engine (for white-box
// batch inspection), the per-node Now() observations and the delivery trace.
func runLookahead(t *testing.T, n, nodeWorkers int, delay DelayModel) (*Engine, [][]time.Duration, []Delivery, Stats) {
	t.Helper()
	nodes := make([]Node, n)
	impls := make([]*nowNode, n)
	for i := range nodes {
		impls[i] = &nowNode{rounds: 4}
		nodes[i] = impls[i]
	}
	var trace []Delivery
	eng, err := NewEngine(Config{
		N: n, Seed: 17, Delay: delay, NodeWorkers: nodeWorkers,
		Observer: func(ev Delivery) { trace = append(trace, ev) },
	}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	nows := make([][]time.Duration, n)
	for i, impl := range impls {
		nows[i] = impl.nows
	}
	return eng, nows, trace, stats
}

// TestLookaheadWidensBatches: with a constant-delay model promising a
// nonzero MinDelay, the parallel executor must batch whole time windows —
// far fewer batches than deliveries — while the execution (trace, per-event
// Now() observations, statistics) stays bit-identical to the serial loop.
func TestLookaheadWidensBatches(t *testing.T) {
	delay := UniformDelay{Min: time.Millisecond, Max: 4 * time.Millisecond}
	_, wantNows, wantTrace, wantStats := runLookahead(t, 5, 1, delay)
	if len(wantTrace) == 0 {
		t.Fatal("empty reference trace")
	}
	// The serial reference must see strictly increasing per-event times
	// within a node only when events differ — sanity for the Now() plumbing.
	for _, nw := range []int{2, 4, 16} {
		eng, nows, trace, stats := runLookahead(t, 5, nw, delay)
		if stats != wantStats {
			t.Fatalf("nodeworkers=%d: stats %+v, want %+v", nw, stats, wantStats)
		}
		if len(trace) != len(wantTrace) {
			t.Fatalf("nodeworkers=%d: %d deliveries, want %d", nw, len(trace), len(wantTrace))
		}
		for i := range trace {
			if trace[i] != wantTrace[i] {
				t.Fatalf("nodeworkers=%d: delivery %d = %+v, want %+v", nw, i, trace[i], wantTrace[i])
			}
		}
		for p := range nows {
			if len(nows[p]) != len(wantNows[p]) {
				t.Fatalf("nodeworkers=%d: node %d saw %d deliveries, want %d", nw, p, len(nows[p]), len(wantNows[p]))
			}
			for i := range nows[p] {
				if nows[p][i] != wantNows[p][i] {
					t.Fatalf("nodeworkers=%d: node %d delivery %d Now()=%v, want %v", nw, p, i, nows[p][i], wantNows[p][i])
				}
			}
		}
		// The uniform model's MinDelay (1ms) must have widened the windows:
		// strictly fewer batches than deliveries proves multi-timestamp
		// batches occurred (randomized delays make same-timestamp ties rare,
		// so without lookahead batches ≈ deliveries).
		if eng.lookahead != time.Millisecond {
			t.Fatalf("nodeworkers=%d: lookahead %v, want 1ms", nw, eng.lookahead)
		}
		if eng.batches*2 >= stats.Delivered+stats.Suppressed {
			t.Fatalf("nodeworkers=%d: %d batches for %d events — lookahead did not widen",
				nw, eng.batches, stats.Delivered+stats.Suppressed)
		}
	}
}

// TestLookaheadZeroForUnboundedModels: models without a minimum delay must
// disable widening (exponential delays can be arbitrarily small).
func TestLookaheadZeroForUnboundedModels(t *testing.T) {
	eng, _, _, _ := runLookahead(t, 3, 2, ExponentialDelay{Mean: time.Millisecond})
	if eng.lookahead != 0 {
		t.Fatalf("exponential model yielded lookahead %v, want 0", eng.lookahead)
	}
	// Starvation wrappers inherit the inner bound.
	eng2, _, _, _ := runLookahead(t, 3, 2, StarveSenders{
		Inner: ConstantDelay{D: 2 * time.Millisecond},
		Slow:  map[ProcID]bool{0: true},
		Extra: time.Second,
	})
	if eng2.lookahead != 2*time.Millisecond {
		t.Fatalf("starve wrapper yielded lookahead %v, want 2ms", eng2.lookahead)
	}
}

// TestShiftedExponentialWidensBatches: the shifted-exponential model's
// constant floor must restore lookahead batching that the plain
// exponential (infimum 0) disables — while keeping the execution
// bit-identical to the serial loop. This is the white-box contract of
// ShiftedExponentialDelay: heavy-tailed stress schedules AND wide event
// windows.
func TestShiftedExponentialWidensBatches(t *testing.T) {
	delay := ShiftedExponentialDelay{Floor: 2 * time.Millisecond, TailMean: 3 * time.Millisecond}
	_, wantNows, wantTrace, wantStats := runLookahead(t, 5, 1, delay)
	if len(wantTrace) == 0 {
		t.Fatal("empty reference trace")
	}
	for _, nw := range []int{2, 4} {
		eng, nows, trace, stats := runLookahead(t, 5, nw, delay)
		if stats != wantStats {
			t.Fatalf("nodeworkers=%d: stats %+v, want %+v", nw, stats, wantStats)
		}
		for i := range trace {
			if trace[i] != wantTrace[i] {
				t.Fatalf("nodeworkers=%d: delivery %d = %+v, want %+v", nw, i, trace[i], wantTrace[i])
			}
		}
		for p := range nows {
			if len(nows[p]) != len(wantNows[p]) {
				t.Fatalf("nodeworkers=%d: node %d saw %d deliveries, want %d", nw, p, len(nows[p]), len(wantNows[p]))
			}
			for i := range nows[p] {
				if nows[p][i] != wantNows[p][i] {
					t.Fatalf("nodeworkers=%d: node %d delivery %d Now()=%v, want %v", nw, p, i, nows[p][i], wantNows[p][i])
				}
			}
		}
		if eng.lookahead != 2*time.Millisecond {
			t.Fatalf("nodeworkers=%d: lookahead %v, want 2ms", nw, eng.lookahead)
		}
		// The 2ms floor must widen the windows: far fewer batches than
		// events (exponential draws make same-timestamp ties rare, so
		// without lookahead batches ≈ deliveries).
		if eng.batches*2 >= stats.Delivered+stats.Suppressed {
			t.Fatalf("nodeworkers=%d: %d batches for %d events — floor did not widen lookahead",
				nw, eng.batches, stats.Delivered+stats.Suppressed)
		}
	}
	// Degenerate configurations keep the Lookahead contract honest.
	if (ShiftedExponentialDelay{Floor: -time.Millisecond, TailMean: time.Millisecond}).MinDelay() != 0 {
		t.Fatal("negative floor must disable lookahead")
	}
}

// TestShiftedExponentialFloorHolds: no draw may undercut MinDelay — the
// engine's determinism contract rides on the promise.
func TestShiftedExponentialFloorHolds(t *testing.T) {
	d := ShiftedExponentialDelay{Floor: 2 * time.Millisecond, TailMean: 5 * time.Millisecond, Cap: time.Millisecond}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10000; i++ {
		if got := d.Delay(0, 1, 0, rng); got < d.MinDelay() {
			t.Fatalf("draw %d: delay %v under floor %v", i, got, d.MinDelay())
		}
	}
}
