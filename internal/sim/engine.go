package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Engine defaults; overridable via Config.
const (
	defaultMaxEvents = 5_000_000
	// fifoNudge is the minimum spacing enforced between deliveries on the
	// same directed link, preserving the paper's FIFO channel assumption
	// under randomized delays.
	fifoNudge = time.Nanosecond
)

// Config parameterizes a discrete-event execution.
type Config struct {
	// N is the number of processes; must equal len(nodes) at NewEngine.
	N int
	// Delay is the network delay model; defaults to ConstantDelay{1ms}.
	Delay DelayModel
	// Seed seeds all engine randomness (delays and per-process PRNGs).
	Seed int64
	// MaxEvents caps total deliveries as a runaway-protocol guard.
	MaxEvents int
	// MaxTime, when positive, stops the run once virtual time passes it.
	MaxTime time.Duration
	// Observer, when non-nil, is invoked after each delivery (for tests
	// and tracing). It must not retain msg. Observers run on the engine
	// goroutine in delivery order regardless of NodeWorkers.
	Observer func(ev Delivery)
	// NodeWorkers bounds how many nodes handle simultaneous events
	// concurrently: 0 selects GOMAXPROCS, 1 forces the serial event loop.
	// Parallelism never reorders an execution — only deliveries sharing
	// one virtual timestamp run concurrently, deliveries to the same node
	// stay in sequence order on one worker, and all messages emitted by a
	// batch are enqueued afterwards in the order the serial loop would
	// have produced (so delay-model PRNG draws, sequence numbers, and
	// FIFO floors are bit-identical to NodeWorkers=1).
	NodeWorkers int
}

// Delivery describes one delivered message (for observers).
type Delivery struct {
	At   time.Duration
	From ProcID
	To   ProcID
	Msg  Message
	Seq  uint64
}

// Stats summarizes a completed run.
type Stats struct {
	// Sent counts messages enqueued; Delivered counts messages handed to
	// (non-halted) nodes.
	Sent      int64
	Delivered int64
	// Suppressed counts messages addressed to already-halted nodes.
	Suppressed int64
	// FinalTime is the virtual clock when the run ended.
	FinalTime time.Duration
	// Halted is how many nodes called Halt.
	Halted int
}

// ErrMaxEvents is returned when the delivery cap is hit, which indicates a
// non-terminating protocol or a cap set too low.
var ErrMaxEvents = errors.New("sim: max event count exceeded")

// Engine is a deterministic discrete-event executor for asynchronous
// message-passing protocols over reliable FIFO links.
type Engine struct {
	cfg   Config
	nodes []Node
	ctxs  []*engineAPI

	queue   eventQueue
	seq     uint64
	now     time.Duration
	lastArr [][]time.Duration // lastArr[from][to]: latest scheduled arrival
	delay   DelayModel
	rngNet  *rand.Rand
	halted  atomic.Int64 // nodes that called Halt (atomic: see runBatch)

	// lookahead is the delay model's promised minimum link delay (0 when
	// the model implements no Lookahead): the conservative safety horizon
	// within which pending events are causally independent, letting the
	// parallel executor batch a time window instead of a single timestamp.
	lookahead time.Duration
	batches   int64 // parallel batches executed (white-box tests)

	stats Stats
}

type event struct {
	at   time.Duration
	seq  uint64 // tie-break: enqueue order → total determinism
	from ProcID
	to   ProcID
	msg  Message
}

// NewEngine validates the configuration and builds an engine over the given
// nodes (one per process id, in order).
func NewEngine(cfg Config, nodes []Node) (*Engine, error) {
	if cfg.N != len(nodes) {
		return nil, fmt.Errorf("sim: config N=%d but %d nodes", cfg.N, len(nodes))
	}
	if cfg.N <= 0 {
		return nil, errors.New("sim: need at least one node")
	}
	for i, nd := range nodes {
		if nd == nil {
			return nil, fmt.Errorf("sim: node %d is nil", i)
		}
	}
	if cfg.Delay == nil {
		cfg.Delay = ConstantDelay{D: time.Millisecond}
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = defaultMaxEvents
	}
	e := &Engine{
		cfg:    cfg,
		nodes:  nodes,
		delay:  cfg.Delay,
		rngNet: rand.New(rand.NewSource(cfg.Seed ^ 0x5eed_ca11)),
	}
	if la, ok := cfg.Delay.(Lookahead); ok {
		if min := la.MinDelay(); min > 0 {
			e.lookahead = min
		}
	}
	e.lastArr = make([][]time.Duration, cfg.N)
	for i := range e.lastArr {
		e.lastArr[i] = make([]time.Duration, cfg.N)
	}
	e.ctxs = make([]*engineAPI, cfg.N)
	for i := range nodes {
		e.ctxs[i] = &engineAPI{
			engine: e,
			id:     ProcID(i),
			rng:    rand.New(rand.NewSource(cfg.Seed ^ (0x9e3779b9 * int64(i+1)))),
		}
	}
	return e, nil
}

// Run initializes every node and delivers events until the queue drains,
// every node halts, or a cap is hit. It returns the run statistics; the
// only error is ErrMaxEvents (wrapped with context).
//
// With Config.NodeWorkers ≠ 1, deliveries that share a virtual timestamp
// are fanned across a worker pool; the execution (deliveries, emitted
// messages, statistics, observer sequence) is bit-identical to the serial
// loop — see Config.NodeWorkers.
func (e *Engine) Run() (Stats, error) {
	for i, nd := range e.nodes {
		nd.Init(e.ctxs[i])
	}
	workers := ResolveWorkers(e.cfg.NodeWorkers, len(e.nodes))
	if workers <= 1 {
		return e.runSerial()
	}
	return e.runParallel(workers)
}

// runSerial is the classic one-event-at-a-time loop.
func (e *Engine) runSerial() (Stats, error) {
	for {
		if e.halted.Load() == int64(len(e.nodes)) {
			break
		}
		if len(e.queue) == 0 {
			break
		}
		if e.stats.Delivered+e.stats.Suppressed >= int64(e.cfg.MaxEvents) {
			return e.finish(), fmt.Errorf("%w after %d deliveries", ErrMaxEvents, e.stats.Delivered)
		}
		ev := e.queue.pop()
		e.now = ev.at
		if e.cfg.MaxTime > 0 && e.now > e.cfg.MaxTime {
			break
		}
		api := e.ctxs[ev.to]
		if api.halted {
			e.stats.Suppressed++
			continue
		}
		e.stats.Delivered++
		api.now = ev.at
		e.nodes[ev.to].OnMessage(api, ev.from, ev.msg)
		if e.cfg.Observer != nil {
			e.cfg.Observer(Delivery{At: ev.at, From: ev.from, To: ev.to, Msg: ev.msg, Seq: ev.seq})
		}
	}
	return e.finish(), nil
}

// pendingSend is one message emitted by a node while its delivery batch was
// executing concurrently; it is enqueued during the deterministic merge.
type pendingSend struct {
	to  ProcID
	msg Message
}

// runParallel drains the event queue in causally independent batches: all
// pending events inside the conservative lookahead window [t, t+L], where t
// is the earliest pending timestamp and L the delay model's promised minimum
// link delay (L = 0 degenerates to same-timestamp batches). No event in the
// window can causally precede another except through order on a shared
// destination: any message generated inside the window arrives at or beyond
// its end (delay ≥ L, FIFO floors only push later), and per-destination
// events stay in (time, sequence) order on a single worker. Sends performed
// inside OnMessage are buffered per event and enqueued in the merge phase
// below, in originating-event order with the originating event's virtual
// time, which reproduces the serial loop's delay-PRNG draws, sequence
// numbers, and FIFO floors exactly.
func (e *Engine) runParallel(workers int) (Stats, error) {
	var (
		batch        []event
		sends        [][]pendingSend
		delivered    []bool
		haltedDuring []bool
		dests        []ProcID
		byDest       = make([][]int, len(e.nodes)) // dest → batch indices
	)
	for {
		if e.halted.Load() == int64(len(e.nodes)) {
			break
		}
		if len(e.queue) == 0 {
			break
		}
		remaining := int64(e.cfg.MaxEvents) - (e.stats.Delivered + e.stats.Suppressed)
		if remaining <= 0 {
			return e.finish(), fmt.Errorf("%w after %d deliveries", ErrMaxEvents, e.stats.Delivered)
		}
		t := e.queue[0].at
		e.now = t
		if e.cfg.MaxTime > 0 && t > e.cfg.MaxTime {
			break
		}

		// Pop the batch: every queued event inside the lookahead window
		// (they emerge in (time, sequence) order), capped by the remaining
		// event budget so the MaxEvents error fires at exactly the serial
		// loop's delivery, and by MaxTime so no event the serial loop would
		// refuse is executed.
		horizon := t + e.lookahead
		if e.cfg.MaxTime > 0 && horizon > e.cfg.MaxTime {
			horizon = e.cfg.MaxTime
		}
		batch = batch[:0]
		for len(e.queue) > 0 && e.queue[0].at <= horizon && int64(len(batch)) < remaining {
			batch = append(batch, e.queue.pop())
		}
		e.batches++

		// Group by destination, preserving sequence order within a group.
		dests = dests[:0]
		for bi, ev := range batch {
			if len(byDest[ev.to]) == 0 {
				dests = append(dests, ev.to)
			}
			byDest[ev.to] = append(byDest[ev.to], bi)
		}
		for len(sends) < len(batch) {
			sends = append(sends, nil)
		}
		for bi := range batch {
			sends[bi] = sends[bi][:0]
		}
		delivered = growCleared(delivered, len(batch))
		haltedDuring = growCleared(haltedDuring, len(batch))
		haltedAtStart := int(e.halted.Load())

		// Execute: destinations in parallel, each destination serial in
		// (time, sequence) order. A node halting mid-batch suppresses its
		// own later deliveries, exactly as the serial loop would. Each
		// delivery sees its own event's virtual time (api.now) — with
		// lookahead widening, one batch spans a time window.
		parallelFor(workers, len(dests), func(gi int) {
			dest := dests[gi]
			api := e.ctxs[dest]
			for _, bi := range byDest[dest] {
				if api.halted {
					continue
				}
				delivered[bi] = true
				api.now = batch[bi].at
				api.buf = &sends[bi]
				e.nodes[dest].OnMessage(api, batch[bi].from, batch[bi].msg)
				api.buf = nil
				haltedDuring[bi] = api.halted
			}
		})

		// Deterministic merge in batch (sequence) order: update statistics,
		// enqueue the buffered sends, and run observers — the same
		// per-event order the serial loop interleaves. The serial loop
		// stops dead the moment the last node halts, so the merge replays
		// halt transitions and abandons the tail of the batch at that
		// point (those events were skipped by their halted destinations —
		// they carry no sends and no counts).
		haltedNow := haltedAtStart
		for bi, ev := range batch {
			if haltedNow == len(e.nodes) {
				break
			}
			// Advance the engine clock to this event before drawing its
			// sends' delays, exactly as the serial loop does.
			e.now = ev.at
			if !delivered[bi] {
				e.stats.Suppressed++
				continue
			}
			e.stats.Delivered++
			for _, ps := range sends[bi] {
				e.send(ev.to, ps.to, ps.msg)
			}
			if e.cfg.Observer != nil {
				e.cfg.Observer(Delivery{At: ev.at, From: ev.from, To: ev.to, Msg: ev.msg, Seq: ev.seq})
			}
			if haltedDuring[bi] {
				haltedNow++
			}
		}
		for _, dest := range dests {
			byDest[dest] = byDest[dest][:0]
		}
	}
	return e.finish(), nil
}

// growCleared resizes buf to n entries, all false, reusing its backing
// array once grown (no steady-state allocation in the batch loop).
func growCleared(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// finish stamps the final wall state into the statistics.
func (e *Engine) finish() Stats {
	e.stats.FinalTime = e.now
	e.stats.Halted = int(e.halted.Load())
	return e.stats
}

// Stats returns a snapshot of the statistics so far.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.FinalTime = e.now
	s.Halted = int(e.halted.Load())
	return s
}

// send schedules a message respecting the FIFO ordering of the link.
func (e *Engine) send(from, to ProcID, msg Message) {
	if int(to) < 0 || int(to) >= len(e.nodes) {
		// Messages to non-existent processes are dropped; a Byzantine node
		// gains nothing by addressing them.
		return
	}
	d := e.delay.Delay(from, to, e.now, e.rngNet)
	if d < 0 {
		d = 0
	}
	at := e.now + d
	if floor := e.lastArr[from][to] + fifoNudge; at < floor {
		at = floor
	}
	e.lastArr[from][to] = at
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, from: from, to: to, msg: msg})
	e.stats.Sent++
}

// engineAPI implements API for one process inside the engine.
type engineAPI struct {
	engine *Engine
	id     ProcID
	rng    *rand.Rand
	halted bool
	// now is the virtual time of the delivery currently being handled by
	// this process. It is per-process (not the engine clock) because a
	// lookahead-widened batch spans a time window: two nodes may
	// concurrently handle events with different timestamps.
	now time.Duration
	// buf, when non-nil, redirects Send into the current delivery's
	// pending-send buffer (set only while this process's callback runs on
	// a batch worker; the engine enqueues the buffer deterministically
	// afterwards).
	buf *[]pendingSend
}

var _ API = (*engineAPI)(nil)

func (a *engineAPI) ID() ProcID { return a.id }

func (a *engineAPI) N() int { return len(a.engine.nodes) }

func (a *engineAPI) Send(to ProcID, msg Message) {
	if a.buf != nil {
		*a.buf = append(*a.buf, pendingSend{to: to, msg: msg})
		return
	}
	a.engine.send(a.id, to, msg)
}

func (a *engineAPI) Broadcast(msg Message) {
	for to := 0; to < len(a.engine.nodes); to++ {
		a.Send(ProcID(to), msg)
	}
}

func (a *engineAPI) Halt() {
	if !a.halted {
		a.halted = true
		a.engine.halted.Add(1)
	}
}

func (a *engineAPI) Rand() *rand.Rand { return a.rng }

func (a *engineAPI) Now() time.Duration { return a.now }

// eventQueue is a 4-ary min-heap ordered by (time, sequence number). The
// ordering is a total order — no two events share a sequence number — so the
// pop sequence is unique and any correct priority queue yields bit-identical
// executions; the hand-rolled quaternary layout exists purely because the
// queue is the discrete-event engine's hottest structure (container/heap's
// interface indirection and binary fan-out both showed up in profiles).
type eventQueue []event

// before is the strict (time, seq) order.
func (q eventQueue) before(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.before(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // release the Message reference
	h = h[:last]
	*q = h
	i := 0
	for {
		first := 4*i + 1
		if first >= len(h) {
			break
		}
		best := first
		end := first + 4
		if end > len(h) {
			end = len(h)
		}
		for c := first + 1; c < end; c++ {
			if h.before(c, best) {
				best = c
			}
		}
		if !h.before(best, i) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}
