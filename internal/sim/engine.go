package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Engine defaults; overridable via Config.
const (
	defaultMaxEvents = 5_000_000
	// fifoNudge is the minimum spacing enforced between deliveries on the
	// same directed link, preserving the paper's FIFO channel assumption
	// under randomized delays.
	fifoNudge = time.Nanosecond
)

// Config parameterizes a discrete-event execution.
type Config struct {
	// N is the number of processes; must equal len(nodes) at NewEngine.
	N int
	// Delay is the network delay model; defaults to ConstantDelay{1ms}.
	Delay DelayModel
	// Seed seeds all engine randomness (delays and per-process PRNGs).
	Seed int64
	// MaxEvents caps total deliveries as a runaway-protocol guard.
	MaxEvents int
	// MaxTime, when positive, stops the run once virtual time passes it.
	MaxTime time.Duration
	// Observer, when non-nil, is invoked after each delivery (for tests
	// and tracing). It must not retain msg.
	Observer func(ev Delivery)
}

// Delivery describes one delivered message (for observers).
type Delivery struct {
	At   time.Duration
	From ProcID
	To   ProcID
	Msg  Message
	Seq  uint64
}

// Stats summarizes a completed run.
type Stats struct {
	// Sent counts messages enqueued; Delivered counts messages handed to
	// (non-halted) nodes.
	Sent      int64
	Delivered int64
	// Suppressed counts messages addressed to already-halted nodes.
	Suppressed int64
	// FinalTime is the virtual clock when the run ended.
	FinalTime time.Duration
	// Halted is how many nodes called Halt.
	Halted int
}

// ErrMaxEvents is returned when the delivery cap is hit, which indicates a
// non-terminating protocol or a cap set too low.
var ErrMaxEvents = errors.New("sim: max event count exceeded")

// Engine is a deterministic discrete-event executor for asynchronous
// message-passing protocols over reliable FIFO links.
type Engine struct {
	cfg   Config
	nodes []Node
	ctxs  []*engineAPI

	queue   eventQueue
	seq     uint64
	now     time.Duration
	lastArr [][]time.Duration // lastArr[from][to]: latest scheduled arrival
	delay   DelayModel
	rngNet  *rand.Rand

	stats Stats
}

type event struct {
	at   time.Duration
	seq  uint64 // tie-break: enqueue order → total determinism
	from ProcID
	to   ProcID
	msg  Message
}

// NewEngine validates the configuration and builds an engine over the given
// nodes (one per process id, in order).
func NewEngine(cfg Config, nodes []Node) (*Engine, error) {
	if cfg.N != len(nodes) {
		return nil, fmt.Errorf("sim: config N=%d but %d nodes", cfg.N, len(nodes))
	}
	if cfg.N <= 0 {
		return nil, errors.New("sim: need at least one node")
	}
	for i, nd := range nodes {
		if nd == nil {
			return nil, fmt.Errorf("sim: node %d is nil", i)
		}
	}
	if cfg.Delay == nil {
		cfg.Delay = ConstantDelay{D: time.Millisecond}
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = defaultMaxEvents
	}
	e := &Engine{
		cfg:    cfg,
		nodes:  nodes,
		delay:  cfg.Delay,
		rngNet: rand.New(rand.NewSource(cfg.Seed ^ 0x5eed_ca11)),
	}
	e.lastArr = make([][]time.Duration, cfg.N)
	for i := range e.lastArr {
		e.lastArr[i] = make([]time.Duration, cfg.N)
	}
	e.ctxs = make([]*engineAPI, cfg.N)
	for i := range nodes {
		e.ctxs[i] = &engineAPI{
			engine: e,
			id:     ProcID(i),
			rng:    rand.New(rand.NewSource(cfg.Seed ^ (0x9e3779b9 * int64(i+1)))),
		}
	}
	return e, nil
}

// Run initializes every node and delivers events until the queue drains,
// every node halts, or a cap is hit. It returns the run statistics; the
// only error is ErrMaxEvents (wrapped with context).
func (e *Engine) Run() (Stats, error) {
	for i, nd := range e.nodes {
		nd.Init(e.ctxs[i])
	}
	for {
		if e.stats.Halted == len(e.nodes) {
			break
		}
		if len(e.queue) == 0 {
			break
		}
		if e.stats.Delivered+e.stats.Suppressed >= int64(e.cfg.MaxEvents) {
			e.stats.FinalTime = e.now
			return e.stats, fmt.Errorf("%w after %d deliveries", ErrMaxEvents, e.stats.Delivered)
		}
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		if e.cfg.MaxTime > 0 && e.now > e.cfg.MaxTime {
			break
		}
		api := e.ctxs[ev.to]
		if api.halted {
			e.stats.Suppressed++
			continue
		}
		e.stats.Delivered++
		e.nodes[ev.to].OnMessage(api, ev.from, ev.msg)
		if e.cfg.Observer != nil {
			e.cfg.Observer(Delivery{At: ev.at, From: ev.from, To: ev.to, Msg: ev.msg, Seq: ev.seq})
		}
	}
	e.stats.FinalTime = e.now
	return e.stats, nil
}

// Stats returns a snapshot of the statistics so far.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.FinalTime = e.now
	return s
}

// send schedules a message respecting the FIFO ordering of the link.
func (e *Engine) send(from, to ProcID, msg Message) {
	if int(to) < 0 || int(to) >= len(e.nodes) {
		// Messages to non-existent processes are dropped; a Byzantine node
		// gains nothing by addressing them.
		return
	}
	d := e.delay.Delay(from, to, e.now, e.rngNet)
	if d < 0 {
		d = 0
	}
	at := e.now + d
	if floor := e.lastArr[from][to] + fifoNudge; at < floor {
		at = floor
	}
	e.lastArr[from][to] = at
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, from: from, to: to, msg: msg})
	e.stats.Sent++
}

// engineAPI implements API for one process inside the engine.
type engineAPI struct {
	engine *Engine
	id     ProcID
	rng    *rand.Rand
	halted bool
}

var _ API = (*engineAPI)(nil)

func (a *engineAPI) ID() ProcID { return a.id }

func (a *engineAPI) N() int { return len(a.engine.nodes) }

func (a *engineAPI) Send(to ProcID, msg Message) { a.engine.send(a.id, to, msg) }

func (a *engineAPI) Broadcast(msg Message) {
	for to := 0; to < len(a.engine.nodes); to++ {
		a.engine.send(a.id, ProcID(to), msg)
	}
}

func (a *engineAPI) Halt() {
	if !a.halted {
		a.halted = true
		a.engine.stats.Halted++
	}
}

func (a *engineAPI) Rand() *rand.Rand { return a.rng }

func (a *engineAPI) Now() time.Duration { return a.engine.now }

// eventQueue is a binary heap ordered by (time, sequence number).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}
