// Package sim provides the process and network model the consensus
// algorithms run on: n processes connected pairwise by reliable FIFO
// channels (the paper's complete-graph model), driven either by a
// deterministic discrete-event engine (asynchronous executions with seeded,
// pluggable delay models — including adversarial schedules) or by a
// lock-step round engine (synchronous executions).
//
// Algorithms are written as event-driven state machines (Node for
// asynchronous protocols, SyncNode for synchronous ones). The same Node code
// also runs on live transports via internal/runtime, mirroring the
// state-machine-plus-transport architecture of production consensus
// libraries.
package sim

import (
	"math/rand"
	"time"
)

// ProcID identifies a process; processes are numbered 0 … n−1. The paper
// numbers processes p1 … pn; we use zero-based ids throughout the code and
// translate only in rendered output.
type ProcID int

// Message is an opaque protocol payload. Payload types are plain structs
// defined by the algorithm packages; the engine never inspects them.
type Message any

// API is the capability surface a node sees during a callback. Engine
// implementations (discrete-event, live runtime) provide it.
type API interface {
	// ID returns this process's id.
	ID() ProcID
	// N returns the total number of processes.
	N() int
	// Send enqueues a message on the reliable FIFO link to `to`.
	// Sending to self is allowed and is delivered like any other message.
	Send(to ProcID, msg Message)
	// Broadcast sends msg to every process, including the sender. A
	// Byzantine node equivocates by calling Send per recipient instead.
	Broadcast(msg Message)
	// Halt marks this node as terminated (decided). Subsequent deliveries
	// to a halted node are suppressed by the engine.
	Halt()
	// Rand returns this process's seeded PRNG stream (deterministic per
	// engine seed and process id).
	Rand() *rand.Rand
	// Now returns the current virtual (engine) or wall-clock (runtime)
	// time, as an offset from the start of the execution.
	Now() time.Duration
}

// Node is an asynchronous, event-driven process.
//
// Concurrency contract: the engine may run callbacks of *distinct* nodes
// concurrently (deliveries that share a virtual timestamp are fanned across
// a worker pool), but a single node's callbacks are never concurrent with
// each other and always observe its own prior effects. A Node must
// therefore not share unsynchronized mutable state with other nodes; state
// behind it (the Γ-point engine's memo table, for instance) must be
// thread-safe and produce schedule-independent results.
type Node interface {
	// Init runs once before any delivery; protocols typically send their
	// first messages here. Init calls are serial, in process-id order.
	Init(api API)
	// OnMessage handles one delivered message.
	OnMessage(api API, from ProcID, msg Message)
}

// SyncNode is a lock-step synchronous process: in every round it first
// produces an outbox, then receives the round's inbox.
//
// Concurrency contract: within each phase of a round the engine may call
// distinct nodes' methods concurrently (see SyncOptions.Workers); one
// node's methods are never concurrent with each other, and Deliver always
// happens after every node's Outbox for that round. Nodes must not share
// unsynchronized mutable state.
type SyncNode interface {
	// Outbox returns the messages this node sends in round r (1-based),
	// keyed by recipient. A nil map sends nothing. Byzantine nodes may
	// return arbitrary, per-recipient-different payloads.
	Outbox(r int) map[ProcID]Message
	// Deliver hands the node every message addressed to it in round r,
	// keyed by sender. Processes that sent it nothing are absent.
	Deliver(r int, inbox map[ProcID]Message)
	// Done reports whether the node has terminated (decided). The engine
	// stops when every node is done or the round cap is reached.
	Done() bool
}
