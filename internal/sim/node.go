// Package sim provides the process and network model the consensus
// algorithms run on: n processes connected pairwise by reliable FIFO
// channels (the paper's complete-graph model), driven either by a
// deterministic discrete-event engine (asynchronous executions with seeded,
// pluggable delay models — including adversarial schedules) or by a
// lock-step round engine (synchronous executions).
//
// Algorithms are written as event-driven state machines (Node for
// asynchronous protocols, SyncNode for synchronous ones). The same Node code
// also runs on live transports via internal/runtime, mirroring the
// state-machine-plus-transport architecture of production consensus
// libraries.
package sim

import (
	"math/rand"
	"time"
)

// ProcID identifies a process; processes are numbered 0 … n−1. The paper
// numbers processes p1 … pn; we use zero-based ids throughout the code and
// translate only in rendered output.
type ProcID int

// Message is an opaque protocol payload. Payload types are plain structs
// defined by the algorithm packages; the engine never inspects them.
type Message any

// API is the capability surface a node sees during a callback. Engine
// implementations (discrete-event, live runtime) provide it.
type API interface {
	// ID returns this process's id.
	ID() ProcID
	// N returns the total number of processes.
	N() int
	// Send enqueues a message on the reliable FIFO link to `to`.
	// Sending to self is allowed and is delivered like any other message.
	Send(to ProcID, msg Message)
	// Broadcast sends msg to every process, including the sender. A
	// Byzantine node equivocates by calling Send per recipient instead.
	Broadcast(msg Message)
	// Halt marks this node as terminated (decided). Subsequent deliveries
	// to a halted node are suppressed by the engine.
	Halt()
	// Rand returns this process's seeded PRNG stream (deterministic per
	// engine seed and process id).
	Rand() *rand.Rand
	// Now returns the current virtual (engine) or wall-clock (runtime)
	// time, as an offset from the start of the execution.
	Now() time.Duration
}

// Node is an asynchronous, event-driven process.
type Node interface {
	// Init runs once before any delivery; protocols typically send their
	// first messages here.
	Init(api API)
	// OnMessage handles one delivered message.
	OnMessage(api API, from ProcID, msg Message)
}

// SyncNode is a lock-step synchronous process: in every round it first
// produces an outbox, then receives the round's inbox.
type SyncNode interface {
	// Outbox returns the messages this node sends in round r (1-based),
	// keyed by recipient. A nil map sends nothing. Byzantine nodes may
	// return arbitrary, per-recipient-different payloads.
	Outbox(r int) map[ProcID]Message
	// Deliver hands the node every message addressed to it in round r,
	// keyed by sender. Processes that sent it nothing are absent.
	Deliver(r int, inbox map[ProcID]Message)
	// Done reports whether the node has terminated (decided). The engine
	// stops when every node is done or the round cap is reached.
	Done() bool
}
