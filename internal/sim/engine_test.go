package sim

import (
	"errors"
	"testing"
	"time"
)

// echoNode replies "pong" to every "ping" and halts after receiving done.
type echoNode struct {
	pings int
	pongs int
}

func (e *echoNode) Init(api API) {}

func (e *echoNode) OnMessage(api API, from ProcID, msg Message) {
	switch msg {
	case "ping":
		e.pings++
		api.Send(from, "pong")
	case "pong":
		e.pongs++
	case "halt":
		api.Halt()
	}
}

// starterNode pings everyone at init, then halts after collecting replies.
type starterNode struct {
	echoNode
	want int
}

func (s *starterNode) Init(api API) {
	for i := 0; i < api.N(); i++ {
		if ProcID(i) != api.ID() {
			api.Send(ProcID(i), "ping")
		}
	}
}

func (s *starterNode) OnMessage(api API, from ProcID, msg Message) {
	s.echoNode.OnMessage(api, from, msg)
	if s.pongs >= s.want {
		api.Halt()
	}
}

func TestEnginePingPong(t *testing.T) {
	n := 4
	nodes := make([]Node, n)
	starter := &starterNode{want: n - 1}
	nodes[0] = starter
	for i := 1; i < n; i++ {
		nodes[i] = &echoNode{}
	}
	eng, err := NewEngine(Config{N: n, Seed: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if starter.pongs != n-1 {
		t.Errorf("pongs = %d, want %d", starter.pongs, n-1)
	}
	if stats.Sent != int64(2*(n-1)) {
		t.Errorf("sent = %d, want %d", stats.Sent, 2*(n-1))
	}
	if stats.Halted != 1 {
		t.Errorf("halted = %d, want 1", stats.Halted)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{N: 2}, []Node{&echoNode{}}); err == nil {
		t.Error("N mismatch: expected error")
	}
	if _, err := NewEngine(Config{N: 0}, nil); err == nil {
		t.Error("empty: expected error")
	}
	if _, err := NewEngine(Config{N: 1}, []Node{nil}); err == nil {
		t.Error("nil node: expected error")
	}
}

// orderNode records the order of received payloads.
type orderNode struct {
	got []int
}

func (o *orderNode) Init(API) {}

func (o *orderNode) OnMessage(_ API, _ ProcID, msg Message) {
	o.got = append(o.got, msg.(int))
}

// burstNode sends k sequenced messages to node 1 at init.
type burstNode struct {
	k int
}

func (b *burstNode) Init(api API) {
	for i := 0; i < b.k; i++ {
		api.Send(1, i)
	}
}

func (b *burstNode) OnMessage(API, ProcID, Message) {}

func TestEngineFIFOUnderRandomDelays(t *testing.T) {
	// Even with highly variable delays, per-link FIFO must hold.
	const k = 200
	recv := &orderNode{}
	eng, err := NewEngine(Config{
		N:     2,
		Seed:  99,
		Delay: UniformDelay{Min: 0, Max: 50 * time.Millisecond},
	}, []Node{&burstNode{k: k}, recv})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(recv.got) != k {
		t.Fatalf("received %d, want %d", len(recv.got), k)
	}
	for i, v := range recv.got {
		if v != i {
			t.Fatalf("FIFO violated at %d: got %d", i, v)
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []int {
		recv := &orderNode{}
		nodes := []Node{&burstNode{k: 50}, recv, &burstNode{k: 0}}
		// Third node also bursts into node 1 to create interleaving.
		nodes[2] = &burst2{}
		eng, err := NewEngine(Config{
			N:     3,
			Seed:  1234,
			Delay: ExponentialDelay{Mean: 5 * time.Millisecond},
		}, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return recv.got
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

type burst2 struct{}

func (burst2) Init(api API) {
	for i := 0; i < 50; i++ {
		api.Send(1, 1000+i)
	}
}

func (burst2) OnMessage(API, ProcID, Message) {}

func TestEngineSeedChangesSchedule(t *testing.T) {
	run := func(seed int64) []int {
		recv := &orderNode{}
		eng, err := NewEngine(Config{
			N:     3,
			Seed:  seed,
			Delay: UniformDelay{Min: 0, Max: 100 * time.Millisecond},
		}, []Node{&burstNode{k: 30}, recv, &burst2{}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return recv.got
	}
	a := run(1)
	b := run(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical interleavings (suspicious)")
	}
}

// selfNode sends itself a message and halts on receipt.
type selfNode struct{ got bool }

func (s *selfNode) Init(api API) { api.Send(api.ID(), "self") }

func (s *selfNode) OnMessage(api API, from ProcID, msg Message) {
	if from != api.ID() {
		return
	}
	s.got = true
	api.Halt()
}

func TestEngineSelfSend(t *testing.T) {
	nd := &selfNode{}
	eng, err := NewEngine(Config{N: 1, Seed: 1}, []Node{nd})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !nd.got {
		t.Error("self-send not delivered")
	}
}

func TestEngineBroadcastIncludesSelf(t *testing.T) {
	recvs := []*orderNode{{}, {}, {}}
	bcast := &broadcaster{}
	nodes := []Node{bcast, recvs[1], recvs[2]}
	eng, err := NewEngine(Config{N: 3, Seed: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 3 {
		t.Errorf("sent = %d, want 3 (broadcast includes self)", stats.Sent)
	}
	if bcast.self != 1 {
		t.Errorf("self deliveries = %d, want 1", bcast.self)
	}
}

type broadcaster struct{ self int }

func (b *broadcaster) Init(api API) { api.Broadcast(42) }

func (b *broadcaster) OnMessage(api API, from ProcID, _ Message) {
	if from == api.ID() {
		b.self++
	}
}

func TestEngineHaltSuppressesDelivery(t *testing.T) {
	// Node 1 halts immediately; burst messages must be suppressed.
	h := &haltOnInit{}
	eng, err := NewEngine(Config{N: 2, Seed: 1}, []Node{&burstNode{k: 10}, h})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if h.deliveries != 0 {
		t.Errorf("halted node received %d messages", h.deliveries)
	}
	if stats.Suppressed != 10 {
		t.Errorf("suppressed = %d, want 10", stats.Suppressed)
	}
}

type haltOnInit struct{ deliveries int }

func (h *haltOnInit) Init(api API) { api.Halt() }

func (h *haltOnInit) OnMessage(API, ProcID, Message) { h.deliveries++ }

// chatterNode replies forever — used to exercise the event cap.
type chatterNode struct{}

func (chatterNode) Init(api API) {
	if api.ID() == 0 {
		api.Send(1, "x")
	}
}

func (chatterNode) OnMessage(api API, from ProcID, _ Message) {
	api.Send(from, "x")
}

func TestEngineMaxEvents(t *testing.T) {
	eng, err := NewEngine(Config{N: 2, Seed: 1, MaxEvents: 100}, []Node{chatterNode{}, chatterNode{}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	if !errors.Is(err, ErrMaxEvents) {
		t.Errorf("err = %v, want ErrMaxEvents", err)
	}
}

func TestEngineMaxTime(t *testing.T) {
	eng, err := NewEngine(Config{
		N: 2, Seed: 1, MaxTime: 10 * time.Millisecond,
		Delay: ConstantDelay{D: time.Millisecond},
	}, []Node{chatterNode{}, chatterNode{}})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalTime > 12*time.Millisecond {
		t.Errorf("final time %v exceeds cap", stats.FinalTime)
	}
}

func TestEngineDropInvalidDestination(t *testing.T) {
	eng, err := NewEngine(Config{N: 1, Seed: 1}, []Node{&badSender{}})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 0 {
		t.Errorf("sent = %d, want 0 (invalid destinations dropped)", stats.Sent)
	}
}

type badSender struct{}

func (badSender) Init(api API)                   { api.Send(99, "x"); api.Send(-1, "y") }
func (badSender) OnMessage(API, ProcID, Message) {}

func TestEngineObserver(t *testing.T) {
	var seen []Delivery
	eng, err := NewEngine(Config{
		N: 2, Seed: 1,
		Observer: func(ev Delivery) { seen = append(seen, ev) },
	}, []Node{&burstNode{k: 3}, &orderNode{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Errorf("observer saw %d deliveries, want 3", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].At < seen[i-1].At {
			t.Error("observer deliveries not time-ordered")
		}
	}
}

func TestEngineStarveSenders(t *testing.T) {
	// With node 0's messages starved, node 2's burst arrives first even
	// though node 0 sent earlier.
	recv := &orderNode{}
	eng, err := NewEngine(Config{
		N:    3,
		Seed: 5,
		Delay: StarveSenders{
			Inner: ConstantDelay{D: time.Millisecond},
			Slow:  map[ProcID]bool{0: true},
			Extra: time.Second,
		},
	}, []Node{&burstNode{k: 1}, recv, &burst2{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(recv.got) != 51 {
		t.Fatalf("received %d, want 51", len(recv.got))
	}
	if recv.got[0] != 1000 {
		t.Errorf("first delivery = %d, want starved sender's message last", recv.got[0])
	}
	if recv.got[50] != 0 {
		t.Errorf("last delivery = %d, want 0 (the starved message)", recv.got[50])
	}
}

func TestEngineRandPerProcessIsStable(t *testing.T) {
	mk := func() (float64, float64) {
		var v0, v1 float64
		nodes := []Node{
			nodeFunc(func(api API) { v0 = api.Rand().Float64() }),
			nodeFunc(func(api API) { v1 = api.Rand().Float64() }),
		}
		eng, err := NewEngine(Config{N: 2, Seed: 7}, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return v0, v1
	}
	a0, a1 := mk()
	b0, b1 := mk()
	if a0 != b0 || a1 != b1 {
		t.Error("per-process RNG not reproducible across runs")
	}
	if a0 == a1 {
		t.Error("distinct processes share an RNG stream")
	}
}

// nodeFunc adapts a function to Node for tiny test nodes.
type nodeFunc func(api API)

func (f nodeFunc) Init(api API)                   { f(api) }
func (f nodeFunc) OnMessage(API, ProcID, Message) {}

// gossipNode exercises every determinism-sensitive engine facility at once:
// it broadcasts rng-perturbed payloads, replies to a subset of senders, and
// halts after a fixed number of deliveries — so executions cover same-time
// batches, mid-batch halts, and per-process PRNG streams.
type gossipNode struct {
	rounds    int
	delivered int
	haltAfter int
}

func (g *gossipNode) Init(api API) {
	for r := 0; r < g.rounds; r++ {
		api.Broadcast(int(api.Rand().Int63n(1000)) + r)
	}
}

func (g *gossipNode) OnMessage(api API, from ProcID, msg Message) {
	g.delivered++
	if g.delivered == g.haltAfter {
		api.Halt()
		return
	}
	if v := msg.(int); v%3 == 0 && g.delivered < 3*g.haltAfter {
		api.Send(from, v+int(api.Rand().Int63n(7)))
	}
}

// traceOf runs a gossip execution and returns the full delivery trace plus
// statistics.
func traceOf(t *testing.T, n, nodeWorkers int, delay DelayModel) ([]Delivery, Stats) {
	t.Helper()
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &gossipNode{rounds: 3, delivered: 0, haltAfter: 5 + i}
	}
	var trace []Delivery
	eng, err := NewEngine(Config{
		N: n, Seed: 99, Delay: delay, NodeWorkers: nodeWorkers,
		Observer: func(ev Delivery) { trace = append(trace, ev) },
	}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return trace, stats
}

// TestEngineNodeWorkersDeterministic: the delivery trace (time, sender,
// receiver, sequence number, payload) and statistics of an execution must
// be identical for every NodeWorkers setting, under constant delays (large
// same-time batches), randomized delays (mostly singleton batches), and an
// adversarial starvation schedule.
func TestEngineNodeWorkersDeterministic(t *testing.T) {
	delays := map[string]DelayModel{
		"constant":    ConstantDelay{D: time.Millisecond},
		"uniform":     UniformDelay{Min: time.Millisecond, Max: 5 * time.Millisecond},
		"exponential": ExponentialDelay{Mean: 2 * time.Millisecond},
		"starve": StarveSenders{
			Inner: ConstantDelay{D: time.Millisecond},
			Slow:  map[ProcID]bool{0: true},
			Extra: 40 * time.Millisecond,
		},
	}
	for name, delay := range delays {
		t.Run(name, func(t *testing.T) {
			wantTrace, wantStats := traceOf(t, 6, 1, delay)
			if len(wantTrace) == 0 {
				t.Fatal("empty reference trace")
			}
			for _, nw := range []int{0, 2, 4, 16} {
				trace, stats := traceOf(t, 6, nw, delay)
				if stats != wantStats {
					t.Fatalf("nodeworkers=%d: stats %+v, want %+v", nw, stats, wantStats)
				}
				if len(trace) != len(wantTrace) {
					t.Fatalf("nodeworkers=%d: %d deliveries, want %d", nw, len(trace), len(wantTrace))
				}
				for i := range trace {
					if trace[i] != wantTrace[i] {
						t.Fatalf("nodeworkers=%d: delivery %d = %+v, want %+v", nw, i, trace[i], wantTrace[i])
					}
				}
			}
		})
	}
}

// TestEngineNodeWorkersMaxEvents: the MaxEvents cap must trip at exactly
// the same delivery count — with the same error — regardless of batching.
func TestEngineNodeWorkersMaxEvents(t *testing.T) {
	run := func(nodeWorkers int) (Stats, error) {
		nodes := make([]Node, 4)
		for i := range nodes {
			nodes[i] = &gossipNode{rounds: 50, haltAfter: 1 << 30}
		}
		eng, err := NewEngine(Config{
			N: 4, Seed: 3, MaxEvents: 100, NodeWorkers: nodeWorkers,
			Delay: ConstantDelay{D: time.Millisecond},
		}, nodes)
		if err != nil {
			t.Fatal(err)
		}
		return eng.Run()
	}
	wantStats, wantErr := run(1)
	if !errors.Is(wantErr, ErrMaxEvents) {
		t.Fatalf("serial run: expected ErrMaxEvents, got %v", wantErr)
	}
	for _, nw := range []int{0, 3} {
		stats, err := run(nw)
		if !errors.Is(err, ErrMaxEvents) {
			t.Fatalf("nodeworkers=%d: expected ErrMaxEvents, got %v", nw, err)
		}
		if stats != wantStats {
			t.Fatalf("nodeworkers=%d: stats %+v, want %+v", nw, stats, wantStats)
		}
	}
}

// TestEngineNodeWorkersMaxTime: the MaxTime cutoff must stop parallel and
// serial executions at the identical virtual instant and statistics.
func TestEngineNodeWorkersMaxTime(t *testing.T) {
	run := func(nodeWorkers int) Stats {
		nodes := make([]Node, 4)
		for i := range nodes {
			nodes[i] = &gossipNode{rounds: 10, haltAfter: 1 << 30}
		}
		eng, err := NewEngine(Config{
			N: 4, Seed: 5, MaxTime: 3 * time.Millisecond, NodeWorkers: nodeWorkers,
			Delay: UniformDelay{Min: time.Millisecond, Max: 2 * time.Millisecond},
		}, nodes)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	want := run(1)
	for _, nw := range []int{0, 2} {
		if got := run(nw); got != want {
			t.Fatalf("nodeworkers=%d: stats %+v, want %+v", nw, got, want)
		}
	}
}
