package sim

import (
	"errors"
	"fmt"
)

// SyncStats summarizes a synchronous execution.
type SyncStats struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Sent counts all messages carried across all rounds.
	Sent int64
	// AllDone reports whether every node terminated before the round cap.
	AllDone bool
}

// ErrRoundCap is returned when a synchronous run hits its round cap with
// undone nodes — a liveness failure of the protocol under test.
var ErrRoundCap = errors.New("sim: synchronous round cap exceeded")

// RunSync drives the nodes in lock-step rounds: in round r every node emits
// its outbox, then every node receives its inbox. This is the classical
// synchronous model the paper's Exact BVC and restricted synchronous
// algorithms assume. It stops when all nodes report Done or after maxRounds.
func RunSync(nodes []SyncNode, maxRounds int) (SyncStats, error) {
	if len(nodes) == 0 {
		return SyncStats{}, errors.New("sim: no nodes")
	}
	if maxRounds <= 0 {
		return SyncStats{}, fmt.Errorf("sim: invalid round cap %d", maxRounds)
	}
	var stats SyncStats
	for r := 1; r <= maxRounds; r++ {
		if allDone(nodes) {
			stats.AllDone = true
			return stats, nil
		}
		stats.Rounds = r

		// Collect all outboxes first (a node must not observe same-round
		// messages while building its own — that would break synchrony).
		inboxes := make([]map[ProcID]Message, len(nodes))
		for i := range inboxes {
			inboxes[i] = make(map[ProcID]Message)
		}
		for i, nd := range nodes {
			if nd.Done() {
				continue
			}
			out := nd.Outbox(r)
			for to, msg := range out {
				if int(to) < 0 || int(to) >= len(nodes) {
					continue // dropped, as in the async engine
				}
				inboxes[to][ProcID(i)] = msg
				stats.Sent++
			}
		}
		for i, nd := range nodes {
			if nd.Done() {
				continue
			}
			nd.Deliver(r, inboxes[i])
		}
	}
	if allDone(nodes) {
		stats.AllDone = true
		return stats, nil
	}
	return stats, fmt.Errorf("%w (%d rounds)", ErrRoundCap, maxRounds)
}

func allDone(nodes []SyncNode) bool {
	for _, nd := range nodes {
		if !nd.Done() {
			return false
		}
	}
	return true
}
