package sim

import (
	"errors"
	"fmt"
)

// SyncStats summarizes a synchronous execution.
type SyncStats struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Sent counts all messages carried across all rounds.
	Sent int64
	// AllDone reports whether every node terminated before the round cap.
	AllDone bool
}

// SyncOptions parameterizes RunSyncWith.
type SyncOptions struct {
	// MaxRounds caps the execution; running past it returns ErrRoundCap.
	MaxRounds int
	// Workers bounds how many nodes are stepped concurrently within each
	// round phase: 0 selects GOMAXPROCS, 1 forces serial stepping. Every
	// setting produces a bit-identical execution — a node's Outbox and
	// Deliver touch only that node's state, and the emitted outboxes are
	// merged into inboxes in sender-id order regardless of which worker
	// finished first.
	Workers int
}

// ErrRoundCap is returned when a synchronous run hits its round cap with
// undone nodes — a liveness failure of the protocol under test.
var ErrRoundCap = errors.New("sim: synchronous round cap exceeded")

// RunSync drives the nodes in lock-step rounds with the default worker pool
// (GOMAXPROCS); see RunSyncWith.
func RunSync(nodes []SyncNode, maxRounds int) (SyncStats, error) {
	return RunSyncWith(nodes, SyncOptions{MaxRounds: maxRounds})
}

// RunSyncWith drives the nodes in lock-step rounds: in round r every node
// emits its outbox, then every node receives its inbox. This is the
// classical synchronous model the paper's Exact BVC and restricted
// synchronous algorithms assume. It stops when all nodes report Done or
// after opts.MaxRounds.
//
// Within a round the two phases are each fanned across a bounded worker
// pool (opts.Workers): per-round node work is independent in the paper's
// model, so nodes step concurrently, and the merge between the phases is
// deterministic — outboxes are collected per sender and folded into inboxes
// in sender-id order, never in completion order.
func RunSyncWith(nodes []SyncNode, opts SyncOptions) (SyncStats, error) {
	if len(nodes) == 0 {
		return SyncStats{}, errors.New("sim: no nodes")
	}
	if opts.MaxRounds <= 0 {
		return SyncStats{}, fmt.Errorf("sim: invalid round cap %d", opts.MaxRounds)
	}
	workers := ResolveWorkers(opts.Workers, len(nodes))
	var stats SyncStats
	outs := make([]map[ProcID]Message, len(nodes))
	inboxes := make([]map[ProcID]Message, len(nodes))
	for r := 1; r <= opts.MaxRounds; r++ {
		if allDone(nodes) {
			stats.AllDone = true
			return stats, nil
		}
		stats.Rounds = r

		// Phase 1: collect all outboxes (a node must not observe same-round
		// messages while building its own — that would break synchrony).
		// Each worker writes only outs[i] for its own i.
		parallelFor(workers, len(nodes), func(i int) {
			outs[i] = nil
			if !nodes[i].Done() {
				outs[i] = nodes[i].Outbox(r)
			}
		})

		// Deterministic merge, iterating senders in id order. The inbox maps
		// are keyed by sender, so insertion order never leaks into results.
		for i := range inboxes {
			inboxes[i] = make(map[ProcID]Message)
		}
		for i, out := range outs {
			for to, msg := range out {
				if int(to) < 0 || int(to) >= len(nodes) {
					continue // dropped, as in the async engine
				}
				inboxes[to][ProcID(i)] = msg
				stats.Sent++
			}
		}

		// Phase 2: deliver every inbox. Done is re-checked per node — an
		// Outbox call may have crashed the node (e.g. a mid-broadcast
		// crash adversary), exactly as in the serial schedule.
		parallelFor(workers, len(nodes), func(i int) {
			if !nodes[i].Done() {
				nodes[i].Deliver(r, inboxes[i])
			}
		})
	}
	if allDone(nodes) {
		stats.AllDone = true
		return stats, nil
	}
	return stats, fmt.Errorf("%w (%d rounds)", ErrRoundCap, opts.MaxRounds)
}

func allDone(nodes []SyncNode) bool {
	for _, nd := range nodes {
		if !nd.Done() {
			return false
		}
	}
	return true
}
