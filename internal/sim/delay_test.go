package sim

import (
	"math/rand"
	"testing"
	"time"
)

func TestConstantDelay(t *testing.T) {
	d := ConstantDelay{D: 5 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if got := d.Delay(0, 1, 0, rng); got != 5*time.Millisecond {
			t.Fatalf("delay = %v", got)
		}
	}
}

func TestUniformDelayRange(t *testing.T) {
	d := UniformDelay{Min: 2 * time.Millisecond, Max: 8 * time.Millisecond}
	rng := rand.New(rand.NewSource(2))
	seenLow, seenHigh := false, false
	for i := 0; i < 2000; i++ {
		got := d.Delay(0, 1, 0, rng)
		if got < d.Min || got > d.Max {
			t.Fatalf("delay %v outside [%v, %v]", got, d.Min, d.Max)
		}
		if got < 4*time.Millisecond {
			seenLow = true
		}
		if got > 6*time.Millisecond {
			seenHigh = true
		}
	}
	if !seenLow || !seenHigh {
		t.Error("uniform delays not spread across the range")
	}
}

func TestUniformDelayDegenerate(t *testing.T) {
	d := UniformDelay{Min: 3 * time.Millisecond, Max: 3 * time.Millisecond}
	rng := rand.New(rand.NewSource(3))
	if got := d.Delay(0, 1, 0, rng); got != 3*time.Millisecond {
		t.Errorf("degenerate uniform = %v", got)
	}
}

func TestExponentialDelayCapped(t *testing.T) {
	d := ExponentialDelay{Mean: time.Millisecond, Cap: 2 * time.Millisecond}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		if got := d.Delay(0, 1, 0, rng); got > 2*time.Millisecond {
			t.Fatalf("delay %v exceeds cap", got)
		}
	}
	// Default cap is 10× mean.
	d2 := ExponentialDelay{Mean: time.Millisecond}
	for i := 0; i < 2000; i++ {
		if got := d2.Delay(0, 1, 0, rng); got > 10*time.Millisecond {
			t.Fatalf("delay %v exceeds default cap", got)
		}
	}
}

func TestStarveSendersOnlyAffectsSet(t *testing.T) {
	d := StarveSenders{
		Inner: ConstantDelay{D: time.Millisecond},
		Slow:  map[ProcID]bool{2: true},
		Extra: time.Second,
	}
	rng := rand.New(rand.NewSource(5))
	if got := d.Delay(2, 0, 0, rng); got != time.Second+time.Millisecond {
		t.Errorf("starved sender delay = %v", got)
	}
	if got := d.Delay(0, 2, 0, rng); got != time.Millisecond {
		t.Errorf("messages *to* a starved sender must be unaffected: %v", got)
	}
	if got := d.Delay(1, 0, 0, rng); got != time.Millisecond {
		t.Errorf("unstarved sender delay = %v", got)
	}
}

func TestStarveLinksDirectional(t *testing.T) {
	d := StarveLinks{
		Inner: ConstantDelay{D: time.Millisecond},
		Slow:  map[[2]ProcID]bool{{0, 1}: true},
		Extra: time.Second,
	}
	rng := rand.New(rand.NewSource(6))
	if got := d.Delay(0, 1, 0, rng); got != time.Second+time.Millisecond {
		t.Errorf("starved link delay = %v", got)
	}
	if got := d.Delay(1, 0, 0, rng); got != time.Millisecond {
		t.Errorf("reverse link must be unaffected: %v", got)
	}
	if got := d.Delay(0, 2, 0, rng); got != time.Millisecond {
		t.Errorf("other links must be unaffected: %v", got)
	}
}

func TestStarveLinksInEngine(t *testing.T) {
	// Messages 0→1 starve while 2→1 flow: node 1 receives 2's burst first
	// even though 0 sent earlier.
	recv := &orderNode{}
	eng, err := NewEngine(Config{
		N:    3,
		Seed: 7,
		Delay: StarveLinks{
			Inner: ConstantDelay{D: time.Millisecond},
			Slow:  map[[2]ProcID]bool{{0, 1}: true},
			Extra: time.Second,
		},
	}, []Node{&burstNode{k: 3}, recv, &burst2{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(recv.got) != 53 {
		t.Fatalf("received %d", len(recv.got))
	}
	if recv.got[0] < 1000 {
		t.Errorf("first delivery %d should come from the unstarved link", recv.got[0])
	}
}
