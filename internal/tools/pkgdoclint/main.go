// Command pkgdoclint enforces the repository's documentation floor, as a
// CI lint step next to gofmt/vet/staticcheck:
//
//   - every package (including every internal/* package and every command)
//     must carry a package doc comment, and
//   - every exported top-level declaration of the public library package
//     (the module root: sim.go, bvc.go, geometry.go, live.go) must carry a
//     doc comment.
//
// Usage: go run ./internal/tools/pkgdoclint [dir]  (dir defaults to ".")
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	problems, err := lint(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkgdoclint:", err)
		os.Exit(1)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "pkgdoclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// pkgFiles is one package's parsed (non-test) files.
type pkgFiles struct {
	dir   string
	name  string
	files []*ast.File
	fset  *token.FileSet
}

func lint(root string) ([]string, error) {
	byDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			byDir[dir] = append(byDir[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var dirs []string
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var problems []string
	for _, dir := range dirs {
		sort.Strings(byDir[dir])
		pkgs := map[string]*pkgFiles{}
		fset := token.NewFileSet()
		for _, path := range byDir[dir] {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			name := f.Name.Name
			p := pkgs[name]
			if p == nil {
				p = &pkgFiles{dir: dir, name: name, fset: fset}
				pkgs[name] = p
			}
			p.files = append(p.files, f)
		}
		var names []string
		for name := range pkgs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			p := pkgs[name]
			hasDoc := false
			for _, f := range p.files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					hasDoc = true
				}
			}
			if !hasDoc {
				problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
			}
			// The public library package documents every exported
			// declaration; internal packages and commands only need the
			// package comment (their exported docs are encouraged, not
			// gated, to keep the lint actionable).
			if name != "main" && !strings.Contains(dir, "internal") && !strings.Contains(dir, "examples") {
				problems = append(problems, checkExported(p)...)
			}
		}
	}
	return problems, nil
}

// checkExported reports exported top-level declarations without doc
// comments. Grouped specs (var/const blocks, multi-name specs) count as
// documented when the enclosing GenDecl carries the comment, matching
// godoc's rendering.
func checkExported(p *pkgFiles) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		pp := p.fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", pp.Filename, pp.Line, kind, name))
	}
	for _, f := range p.files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					name := d.Name.Name
					if d.Recv != nil {
						name = recvName(d.Recv) + "." + name
					}
					report(d.Pos(), "function", name)
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && s.Doc == nil && d.Doc == nil && s.Comment == nil {
								report(n.Pos(), d.Tok.String(), n.Name)
							}
						}
					}
				}
			}
		}
	}
	return problems
}

func recvName(fl *ast.FieldList) string {
	if len(fl.List) == 0 {
		return "?"
	}
	switch t := fl.List[0].Type.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return "?"
}
