package wire

import (
	"bytes"
	"encoding/hex"
	"io"
	"testing"
)

// TestFrameGoldenBytes pins the v2 frame layout byte-for-byte. These
// literals are the layout documented in docs/WIRE_FORMAT.md; if this test
// needs updating, the document (and FrameVersion) must change with it.
func TestFrameGoldenBytes(t *testing.T) {
	cases := []struct {
		name string
		got  []byte
		want string // hex
	}{
		{
			name: "hello",
			got:  AppendHello(nil, 3, 9),
			// len=22 | v2 kind=1 instance=0 | peer=3 epoch=9
			want: "00000016" + "0201" + "0000000000000000" + "00000003" + "0000000000000009",
		},
		{
			name: "goodbye",
			got:  AppendGoodbye(nil),
			want: "0000000a" + "0203" + "0000000000000000",
		},
		{
			name: "hello-nonce",
			got:  AppendHelloNonce(nil, 3, 9, 0x1122334455667788),
			// len=30 | v2 kind=1 instance=0 | peer=3 epoch=9 nonce
			want: "0000001e" + "0201" + "0000000000000000" + "00000003" + "0000000000000009" + "1122334455667788",
		},
		{
			name: "epoch-announce",
			got:  AppendEpochAnnounce(nil, 2, []string{"a:1", "b:22"}),
			// len=31 | v2 kind=6 instance=0 | epoch=2 n=2 |
			// len=3 "a:1" | len=4 "b:22"
			want: "0000001f" + "0206" + "0000000000000000" +
				"0000000000000002" + "0002" +
				"0003" + "613a31" + "0004" + "623a3232",
		},
		{
			name: "epoch-ack",
			got:  AppendEpochAck(nil, 2),
			// len=18 | v2 kind=7 instance=0 | epoch=2
			want: "00000012" + "0207" + "0000000000000000" + "0000000000000002",
		},
		{
			name: "challenge",
			got:  AppendChallenge(nil, 0x0102030405060708, mustHex("a1a2a3a4a5a6a7a8b1b2b3b4b5b6b7b8c1c2c3c4c5c6c7c8d1d2d3d4d5d6d7d8")),
			// len=50 | v2 kind=4 instance=0 | nonce | 32-byte mac
			want: "00000032" + "0204" + "0000000000000000" + "0102030405060708" +
				"a1a2a3a4a5a6a7a8b1b2b3b4b5b6b7b8c1c2c3c4c5c6c7c8d1d2d3d4d5d6d7d8",
		},
		{
			name: "auth",
			got:  AppendAuth(nil, mustHex("a1a2a3a4a5a6a7a8b1b2b3b4b5b6b7b8c1c2c3c4c5c6c7c8d1d2d3d4d5d6d7d8")),
			// len=42 | v2 kind=5 instance=0 | 32-byte mac
			want: "0000002a" + "0205" + "0000000000000000" +
				"a1a2a3a4a5a6a7a8b1b2b3b4b5b6b7b8c1c2c3c4c5c6c7c8d1d2d3d4d5d6d7d8",
		},
		{
			name: "report",
			got: AppendConsensus(nil, 0x0102030405060708, &ConsensusMsg{
				Kind: ConsensusReport, Origin: 4, Round: 7,
			}),
			// len=19 | v2 kind=2 instance | kind=2 origin=4 round=7
			want: "00000013" + "0202" + "0102030405060708" + "02" + "00000004" + "00000007",
		},
		{
			name: "rbc",
			got: AppendConsensus(nil, 42, &ConsensusMsg{
				Kind: ConsensusRBC, Phase: 1, Origin: 2, Round: 9,
				Value: []float64{0.5, -1},
			}),
			// len=38 | v2 kind=2 instance=42 |
			// kind=1 phase=1 origin=2 round=9 dim=2 | 0.5 | -1
			want: "00000026" + "0202" + "000000000000002a" +
				"01" + "01" + "00000002" + "00000009" + "0002" +
				"3fe0000000000000" + "bff0000000000000",
		},
	}
	for _, tc := range cases {
		want, err := hex.DecodeString(tc.want)
		if err != nil {
			t.Fatalf("%s: bad test literal: %v", tc.name, err)
		}
		if !bytes.Equal(tc.got, want) {
			t.Errorf("%s frame:\n got %x\nwant %x", tc.name, tc.got, want)
		}
	}
}

// mustHex decodes a test literal, panicking on malformed input.
func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(err)
	}
	return b
}

// TestHandshakeFrameRoundTrip covers the keyed-handshake frame bodies.
func TestHandshakeFrameRoundTrip(t *testing.T) {
	mac := bytes.Repeat([]byte{0x5a}, MACSize)

	enc := AppendHelloNonce(nil, 7, 3, 99)
	h, body, err := ParseFrame(enc[4:])
	if err != nil || h.Kind != FrameHello {
		t.Fatalf("hello-nonce: header %+v err %v", h, err)
	}
	if peer, epoch, nonce, err := ParseHelloNonce(body); err != nil || peer != 7 || epoch != 3 || nonce != 99 {
		t.Fatalf("hello-nonce: peer=%d epoch=%d nonce=%d err=%v", peer, epoch, nonce, err)
	}
	if _, _, _, err := ParseHelloNonce(body[:4]); err == nil {
		t.Error("short keyed hello: no error")
	}

	enc = AppendChallenge(nil, 42, mac)
	h, body, err = ParseFrame(enc[4:])
	if err != nil || h.Kind != FrameChallenge {
		t.Fatalf("challenge: header %+v err %v", h, err)
	}
	if nonce, gotMac, err := ParseChallenge(body); err != nil || nonce != 42 || !bytes.Equal(gotMac, mac) {
		t.Fatalf("challenge: nonce=%d mac=%x err=%v", nonce, gotMac, err)
	}
	if _, _, err := ParseChallenge(body[:8]); err == nil {
		t.Error("short challenge: no error")
	}

	enc = AppendAuth(nil, mac)
	h, body, err = ParseFrame(enc[4:])
	if err != nil || h.Kind != FrameAuth {
		t.Fatalf("auth: header %+v err %v", h, err)
	}
	if gotMac, err := ParseAuth(body); err != nil || !bytes.Equal(gotMac, mac) {
		t.Fatalf("auth: mac=%x err=%v", gotMac, err)
	}
	if _, err := ParseAuth(body[:MACSize-1]); err == nil {
		t.Error("short auth: no error")
	}
}

// TestEpochFrameRoundTrip covers the membership-epoch frame bodies.
func TestEpochFrameRoundTrip(t *testing.T) {
	addrs := []string{"127.0.0.1:9001", "127.0.0.1:9002", "", "host:80"}
	enc := AppendEpochAnnounce(nil, 7, addrs)
	h, body, err := ParseFrame(enc[4:])
	if err != nil || h.Kind != FrameEpochAnnounce {
		t.Fatalf("announce: header %+v err %v", h, err)
	}
	epoch, got, err := ParseEpochAnnounce(body)
	if err != nil || epoch != 7 || len(got) != len(addrs) {
		t.Fatalf("announce: epoch=%d addrs=%v err=%v", epoch, got, err)
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("announce: addr %d = %q, want %q", i, got[i], addrs[i])
		}
	}
	if _, _, err := ParseEpochAnnounce(body[:len(body)-1]); err == nil {
		t.Error("truncated announce: no error")
	}
	if _, _, err := ParseEpochAnnounce(body[:9]); err == nil {
		t.Error("short announce: no error")
	}
	if _, _, err := ParseEpochAnnounce(append(append([]byte(nil), body...), 0)); err == nil {
		t.Error("trailing bytes: no error")
	}

	enc = AppendEpochAck(nil, 7)
	h, body, err = ParseFrame(enc[4:])
	if err != nil || h.Kind != FrameEpochAck {
		t.Fatalf("ack: header %+v err %v", h, err)
	}
	if epoch, err := ParseEpochAck(body); err != nil || epoch != 7 {
		t.Fatalf("ack: epoch=%d err=%v", epoch, err)
	}
	if _, err := ParseEpochAck(body[:7]); err == nil {
		t.Error("short ack: no error")
	}
}

func TestFrameV2RoundTrip(t *testing.T) {
	msgs := []ConsensusMsg{
		{Kind: ConsensusRBC, Phase: 2, Origin: 1, Round: 3, Value: []float64{0.25, 0.75, -0.5}},
		{Kind: ConsensusReport, Origin: 6, Round: 11},
		{Kind: ConsensusRBC, Phase: 3, Origin: 0, Round: 1, Value: nil},
	}
	var stream []byte
	for i := range msgs {
		stream = AppendConsensus(stream, uint64(100+i), &msgs[i])
	}
	stream = AppendGoodbye(stream)

	r := bytes.NewReader(stream)
	var buf []byte
	var dec ConsensusMsg // reused across frames: exercises Value reuse
	for i := range msgs {
		frame, nb, err := ReadFrameInto(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = nb
		h, body, err := ParseFrame(frame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if h.Kind != FrameConsensus || h.Instance != uint64(100+i) {
			t.Fatalf("frame %d: header %+v", i, h)
		}
		if err := DecodeConsensus(&dec, body); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		want := msgs[i]
		if dec.Kind != want.Kind || dec.Phase != want.Phase || dec.Origin != want.Origin || dec.Round != want.Round {
			t.Fatalf("frame %d: decoded %+v want %+v", i, dec, want)
		}
		if len(dec.Value) != len(want.Value) {
			t.Fatalf("frame %d: value %v want %v", i, dec.Value, want.Value)
		}
		for j := range want.Value {
			if dec.Value[j] != want.Value[j] {
				t.Fatalf("frame %d: value %v want %v", i, dec.Value, want.Value)
			}
		}
	}
	frame, _, err := ReadFrameInto(r, buf)
	if err != nil {
		t.Fatalf("goodbye: %v", err)
	}
	if h, _, err := ParseFrame(frame); err != nil || h.Kind != FrameGoodbye {
		t.Fatalf("goodbye: header %+v err %v", h, err)
	}
	if _, _, err := ReadFrameInto(r, buf); err != io.EOF {
		t.Fatalf("stream end: err %v, want io.EOF", err)
	}
}

func TestFrameErrors(t *testing.T) {
	if _, _, err := ParseFrame([]byte{2, 1}); err == nil {
		t.Error("short frame: no error")
	}
	bad := AppendHello(nil, 1, 0)
	bad[4] = 99 // corrupt version byte
	if _, _, err := ParseFrame(bad[4:]); err == nil {
		t.Error("bad version: no error")
	}
	// Unknown frame kinds must parse (forward compatibility).
	fut := AppendFrame(nil, FrameKind(200), 7, []byte{1, 2, 3})
	h, body, err := ParseFrame(fut[4:])
	if err != nil || h.Kind != FrameKind(200) || h.Instance != 7 || len(body) != 3 {
		t.Errorf("future kind: h=%+v body=%d err=%v", h, len(body), err)
	}
	var m ConsensusMsg
	if err := DecodeConsensus(&m, []byte{9}); err == nil {
		t.Error("unknown consensus kind: no error")
	}
	if err := DecodeConsensus(&m, []byte{ConsensusRBC, 1, 0, 0, 0, 1}); err == nil {
		t.Error("truncated rbc: no error")
	}
	if err := DecodeConsensus(&m, []byte{ConsensusReport, 0, 0}); err == nil {
		t.Error("truncated report: no error")
	}
}
