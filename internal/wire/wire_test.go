package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

type testPayload struct {
	Round int
	Value []float64
}

func init() {
	Register(testPayload{})
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	env := &Envelope{From: 3, Payload: testPayload{Round: 7, Value: []float64{1.5, -2}}}
	b, err := Encode(env)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.From != 3 {
		t.Errorf("From = %d, want 3", got.From)
	}
	p, ok := got.Payload.(testPayload)
	if !ok {
		t.Fatalf("payload type %T", got.Payload)
	}
	if p.Round != 7 || len(p.Value) != 2 || p.Value[0] != 1.5 || p.Value[1] != -2 {
		t.Errorf("payload = %+v", p)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte{0x01, 0x02, 0x03}); err == nil {
		t.Error("garbage should not decode")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{[]byte("hello"), {}, []byte("world"), bytes.Repeat([]byte{7}, 10000)}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("exhausted reader: err = %v, want EOF", err)
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, MaxFrameSize+1)
	if err := WriteFrame(&buf, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	// Handcraft a header claiming an enormous body.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("full message")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body should error")
	}
}

func TestEnvelopeThroughFrames(t *testing.T) {
	env := &Envelope{From: 1, Payload: testPayload{Round: 2}}
	raw, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, raw); err != nil {
		t.Fatal(err)
	}
	frame, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload.(testPayload).Round != 2 {
		t.Errorf("payload = %+v", got.Payload)
	}
}
