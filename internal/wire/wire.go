// Package wire defines the on-the-wire representations used by the live
// transports; docs/WIRE_FORMAT.md is the normative specification of both
// generations. This file is the v1 format — a gob-encoded envelope
// carrying an opaque protocol payload, framed with a 4-byte big-endian
// length prefix — used by the single-tenant transport. frame.go is the
// v2 format: binary, instance-multiplexed frames for the multi-tenant
// service path, pinned byte-for-byte by the golden test in frame_test.go.
//
// Payload types cross package boundaries as interface values, so every
// concrete v1 payload type must be registered (Register) before encoding
// or decoding; the algorithm packages register their message types at
// init, which is the sanctioned use of init for encoding registries.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single frame; larger frames indicate corruption or
// abuse and are rejected before allocation.
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// Envelope is the unit of transmission between processes.
type Envelope struct {
	// From is the sender's process id as claimed by the transport layer
	// (authenticated by connection identity, not by message content).
	From int
	// Payload is the protocol message; its concrete type must be
	// registered with Register.
	Payload any
}

// Register records a payload type for gob encoding. It is safe to call
// multiple times with the same type.
func Register(v any) {
	gob.Register(v)
}

// Encode serializes an envelope.
func Encode(env *Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode parses an envelope produced by Encode.
func Decode(b []byte) (*Envelope, error) {
	var env Envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return &env, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, b []byte) error {
	if len(b) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // preserve io.EOF for clean shutdown detection
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	return body, nil
}
