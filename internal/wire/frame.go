package wire

// Version-2 framing: the multi-tenant service path (internal/service)
// speaks a binary, instance-multiplexed frame layout instead of the gob
// envelopes used by the single-tenant transport above. The layout is
// specified in docs/WIRE_FORMAT.md and pinned byte-for-byte by the golden
// test in frame_test.go; change either only together with the other and
// with a version bump.
//
// A frame is a 4-byte big-endian length prefix (counting everything after
// the prefix) followed by a fixed 10-byte header — version, frame kind,
// 8-byte instance id — and a kind-specific body. Sender identity is
// carried by the connection (established by the Hello frame), not by each
// frame. All integers are big-endian; vectors are IEEE-754 float64 bits.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// FrameVersion is the current frame-layout version; it occupies the first
// header byte of every frame. Peers speaking a different version are
// rejected at handshake (see docs/WIRE_FORMAT.md for the compatibility
// rules).
const FrameVersion = 2

// FrameKind discriminates the frame families of the service protocol.
type FrameKind uint8

// Frame kinds. Unknown kinds parse successfully (header plus opaque body)
// so receivers can skip them — the forward-compatibility rule that lets a
// newer peer add frame kinds without breaking an older one.
const (
	// FrameHello is the connection handshake: the dialer announces its
	// process id and the membership epoch it believes current (body:
	// uint32 id + uint64 epoch; a static mesh runs at epoch 0). Instance
	// id is 0.
	FrameHello FrameKind = 1
	// FrameConsensus carries one consensus-protocol message for the
	// instance named in the header (body: see ConsensusMsg).
	FrameConsensus FrameKind = 2
	// FrameGoodbye announces a graceful drain: the sender stops opening
	// instances and will close once in-flight instances finish. Empty
	// body, instance id 0. Receivers stop redialing a peer that said
	// goodbye.
	FrameGoodbye FrameKind = 3
	// FrameChallenge is the acceptor's half of the keyed handshake: in
	// reply to a nonce-carrying Hello it proves knowledge of the shared
	// key and challenges the dialer (body: uint64 server nonce + MACSize
	// HMAC over the dialer's nonce). Instance id is 0.
	FrameChallenge FrameKind = 4
	// FrameAuth is the dialer's proof closing the keyed handshake (body:
	// MACSize HMAC over the server nonce). Instance id is 0.
	FrameAuth FrameKind = 5
	// FrameEpochAnnounce propagates the next membership config through
	// the mesh (body: epoch u64, n u16, n × (len u16 + addr bytes)). The
	// shared auth key is never carried on the wire — key distribution is
	// the operator's job; the announce only names the epoch and its
	// address list. Instance id is 0.
	FrameEpochAnnounce FrameKind = 6
	// FrameEpochAck acknowledges an announced epoch (body: epoch u64).
	// Instance id is 0.
	FrameEpochAck FrameKind = 7
)

// MACSize is the byte length of the handshake HMAC (HMAC-SHA256).
const MACSize = 32

// FrameHeaderLen is the fixed header length following the length prefix.
const FrameHeaderLen = 10

// FrameHeader is the decoded fixed header of a v2 frame.
type FrameHeader struct {
	Version  uint8
	Kind     FrameKind
	Instance uint64
}

// Consensus body kinds (first body byte of a FrameConsensus frame),
// mirroring the two families of the AAD witness exchange.
const (
	// ConsensusRBC is a Bracha reliable-broadcast message:
	// phase(u8) origin(u32) round(u32) dim(u16) dim×float64.
	ConsensusRBC uint8 = 1
	// ConsensusReport is a witness report: round(u32) origin(u32).
	ConsensusReport uint8 = 2
)

// ConsensusMsg is the wire-level form of one consensus message. It is a
// flattened, dependency-free mirror of the aad/broadcast message structs
// (internal/service converts between the two) so the wire package stays
// importable by the protocol packages that register gob types with it.
type ConsensusMsg struct {
	// Kind is ConsensusRBC or ConsensusReport.
	Kind uint8
	// Phase is the RBC phase (ConsensusRBC only).
	Phase uint8
	// Origin is the originating process id.
	Origin uint32
	// Round is the protocol round (the RBC tag for ConsensusRBC).
	Round uint32
	// Value is the carried vector (ConsensusRBC only; nil for reports).
	Value []float64
}

// appendFramePrefix reserves the length prefix and appends the header,
// returning the extended slice and the prefix offset for backfilling.
func appendFramePrefix(dst []byte, kind FrameKind, instance uint64) ([]byte, int) {
	at := len(dst)
	dst = append(dst, 0, 0, 0, 0, FrameVersion, byte(kind))
	dst = binary.BigEndian.AppendUint64(dst, instance)
	return dst, at
}

// backfillLen writes the length prefix for a frame started at offset at.
func backfillLen(dst []byte, at int) []byte {
	binary.BigEndian.PutUint32(dst[at:], uint32(len(dst)-at-4))
	return dst
}

// AppendFrame appends one complete frame — length prefix, header, body —
// to dst and returns the extended slice. Callers reuse dst across frames;
// appending to a buffer leased from a pool is the zero-steady-state-
// allocation path the service writers use.
func AppendFrame(dst []byte, kind FrameKind, instance uint64, body []byte) []byte {
	dst, at := appendFramePrefix(dst, kind, instance)
	dst = append(dst, body...)
	return backfillLen(dst, at)
}

// AppendHello appends a keyless FrameHello announcing process id peer
// under membership epoch epoch.
func AppendHello(dst []byte, peer uint32, epoch uint64) []byte {
	dst, at := appendFramePrefix(dst, FrameHello, 0)
	dst = binary.BigEndian.AppendUint32(dst, peer)
	dst = binary.BigEndian.AppendUint64(dst, epoch)
	return backfillLen(dst, at)
}

// AppendHelloNonce appends the keyed-handshake variant of FrameHello:
// the process id, the dialer's epoch, then the dialer's challenge
// nonce. Acceptors distinguish the two Hello forms by body length
// (12 vs 20 bytes).
func AppendHelloNonce(dst []byte, peer uint32, epoch, nonce uint64) []byte {
	dst, at := appendFramePrefix(dst, FrameHello, 0)
	dst = binary.BigEndian.AppendUint32(dst, peer)
	dst = binary.BigEndian.AppendUint64(dst, epoch)
	dst = binary.BigEndian.AppendUint64(dst, nonce)
	return backfillLen(dst, at)
}

// AppendChallenge appends a FrameChallenge carrying the acceptor's nonce
// and its HMAC answering the dialer's Hello nonce. mac must be MACSize
// bytes.
func AppendChallenge(dst []byte, nonce uint64, mac []byte) []byte {
	dst, at := appendFramePrefix(dst, FrameChallenge, 0)
	dst = binary.BigEndian.AppendUint64(dst, nonce)
	dst = append(dst, mac...)
	return backfillLen(dst, at)
}

// AppendAuth appends a FrameAuth carrying the dialer's HMAC answering the
// acceptor's challenge nonce. mac must be MACSize bytes.
func AppendAuth(dst []byte, mac []byte) []byte {
	dst, at := appendFramePrefix(dst, FrameAuth, 0)
	dst = append(dst, mac...)
	return backfillLen(dst, at)
}

// AppendEpochAnnounce appends a FrameEpochAnnounce carrying the epoch
// number and the full address list of the announced membership.
func AppendEpochAnnounce(dst []byte, epoch uint64, addrs []string) []byte {
	dst, at := appendFramePrefix(dst, FrameEpochAnnounce, 0)
	dst = binary.BigEndian.AppendUint64(dst, epoch)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(addrs)))
	for _, a := range addrs {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(a)))
		dst = append(dst, a...)
	}
	return backfillLen(dst, at)
}

// AppendEpochAck appends a FrameEpochAck for the given epoch.
func AppendEpochAck(dst []byte, epoch uint64) []byte {
	dst, at := appendFramePrefix(dst, FrameEpochAck, 0)
	dst = binary.BigEndian.AppendUint64(dst, epoch)
	return backfillLen(dst, at)
}

// ParseEpochAnnounce decodes a FrameEpochAnnounce body. The returned
// address strings are copies; they do not alias body.
func ParseEpochAnnounce(body []byte) (epoch uint64, addrs []string, err error) {
	if len(body) < 10 {
		return 0, nil, fmt.Errorf("wire: epoch announce body %d bytes, want >= 10", len(body))
	}
	epoch = binary.BigEndian.Uint64(body[0:8])
	n := int(binary.BigEndian.Uint16(body[8:10]))
	body = body[10:]
	addrs = make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(body) < 2 {
			return 0, nil, fmt.Errorf("wire: epoch announce truncated at addr %d", i)
		}
		l := int(binary.BigEndian.Uint16(body[0:2]))
		body = body[2:]
		if len(body) < l {
			return 0, nil, fmt.Errorf("wire: epoch announce addr %d: %d bytes, want %d", i, len(body), l)
		}
		addrs = append(addrs, string(body[:l]))
		body = body[l:]
	}
	if len(body) != 0 {
		return 0, nil, fmt.Errorf("wire: epoch announce %d trailing bytes", len(body))
	}
	return epoch, addrs, nil
}

// ParseEpochAck decodes a FrameEpochAck body.
func ParseEpochAck(body []byte) (epoch uint64, err error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("wire: epoch ack body %d bytes, want 8", len(body))
	}
	return binary.BigEndian.Uint64(body), nil
}

// AppendGoodbye appends a FrameGoodbye.
func AppendGoodbye(dst []byte) []byte {
	dst, at := appendFramePrefix(dst, FrameGoodbye, 0)
	return backfillLen(dst, at)
}

// AppendConsensus appends a FrameConsensus carrying m for the given
// instance, encoding the body in place (no intermediate buffer).
func AppendConsensus(dst []byte, instance uint64, m *ConsensusMsg) []byte {
	dst, at := appendFramePrefix(dst, FrameConsensus, instance)
	dst = append(dst, m.Kind)
	switch m.Kind {
	case ConsensusRBC:
		dst = append(dst, m.Phase)
		dst = binary.BigEndian.AppendUint32(dst, m.Origin)
		dst = binary.BigEndian.AppendUint32(dst, m.Round)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Value)))
		for _, v := range m.Value {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
		}
	case ConsensusReport:
		dst = binary.BigEndian.AppendUint32(dst, m.Origin)
		dst = binary.BigEndian.AppendUint32(dst, m.Round)
	}
	return backfillLen(dst, at)
}

// ParseFrame splits a frame (without its length prefix) into header and
// body. Unknown kinds parse fine; only the version is checked here.
func ParseFrame(frame []byte) (FrameHeader, []byte, error) {
	if len(frame) < FrameHeaderLen {
		return FrameHeader{}, nil, fmt.Errorf("wire: frame shorter than header (%d bytes)", len(frame))
	}
	h := FrameHeader{
		Version:  frame[0],
		Kind:     FrameKind(frame[1]),
		Instance: binary.BigEndian.Uint64(frame[2:10]),
	}
	if h.Version != FrameVersion {
		return FrameHeader{}, nil, fmt.Errorf("wire: frame version %d, want %d", h.Version, FrameVersion)
	}
	return h, frame[FrameHeaderLen:], nil
}

// ParseHello decodes a keyless FrameHello body (id + epoch).
func ParseHello(body []byte) (peer uint32, epoch uint64, err error) {
	if len(body) != 12 {
		return 0, 0, fmt.Errorf("wire: hello body %d bytes, want 12", len(body))
	}
	return binary.BigEndian.Uint32(body[0:4]), binary.BigEndian.Uint64(body[4:12]), nil
}

// ParseHelloNonce decodes the keyed FrameHello body (id + epoch +
// dialer nonce).
func ParseHelloNonce(body []byte) (peer uint32, epoch, nonce uint64, err error) {
	if len(body) != 20 {
		return 0, 0, 0, fmt.Errorf("wire: keyed hello body %d bytes, want 20", len(body))
	}
	return binary.BigEndian.Uint32(body[0:4]), binary.BigEndian.Uint64(body[4:12]), binary.BigEndian.Uint64(body[12:20]), nil
}

// ParseChallenge decodes a FrameChallenge body. The returned mac aliases
// body.
func ParseChallenge(body []byte) (nonce uint64, mac []byte, err error) {
	if len(body) != 8+MACSize {
		return 0, nil, fmt.Errorf("wire: challenge body %d bytes, want %d", len(body), 8+MACSize)
	}
	return binary.BigEndian.Uint64(body[0:8]), body[8:], nil
}

// ParseAuth decodes a FrameAuth body. The returned mac aliases body.
func ParseAuth(body []byte) (mac []byte, err error) {
	if len(body) != MACSize {
		return nil, fmt.Errorf("wire: auth body %d bytes, want %d", len(body), MACSize)
	}
	return body, nil
}

// DecodeConsensus decodes a FrameConsensus body into m, reusing m.Value's
// capacity. The decoded Value aliases m's buffer — callers that retain it
// (protocol state machines do) must pass a fresh m or copy the vector.
func DecodeConsensus(m *ConsensusMsg, body []byte) error {
	if len(body) < 1 {
		return fmt.Errorf("wire: empty consensus body")
	}
	m.Kind = body[0]
	body = body[1:]
	switch m.Kind {
	case ConsensusRBC:
		if len(body) < 11 {
			return fmt.Errorf("wire: rbc body %d bytes, want >= 11", len(body))
		}
		m.Phase = body[0]
		m.Origin = binary.BigEndian.Uint32(body[1:5])
		m.Round = binary.BigEndian.Uint32(body[5:9])
		dim := int(binary.BigEndian.Uint16(body[9:11]))
		body = body[11:]
		if len(body) != 8*dim {
			return fmt.Errorf("wire: rbc vector %d bytes, want %d", len(body), 8*dim)
		}
		if cap(m.Value) < dim {
			m.Value = make([]float64, dim)
		}
		m.Value = m.Value[:dim]
		for i := 0; i < dim; i++ {
			m.Value[i] = math.Float64frombits(binary.BigEndian.Uint64(body[8*i:]))
		}
	case ConsensusReport:
		if len(body) != 8 {
			return fmt.Errorf("wire: report body %d bytes, want 8", len(body))
		}
		m.Phase, m.Value = 0, m.Value[:0]
		m.Origin = binary.BigEndian.Uint32(body[0:4])
		m.Round = binary.BigEndian.Uint32(body[4:8])
	default:
		return fmt.Errorf("wire: unknown consensus kind %d", m.Kind)
	}
	return nil
}

// ReadFrameInto reads one length-prefixed frame into buf (grown when too
// small) and returns the frame bytes (header + body, prefix stripped)
// aliasing buf — the reuse path that keeps the service's reader loops
// allocation-free in the steady state. It mirrors ReadFrame's error
// contract: io.EOF passes through unwrapped for clean-shutdown detection.
func ReadFrameInto(r io.Reader, buf []byte) (frame, newBuf []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err // preserve io.EOF
	}
	size := int(binary.BigEndian.Uint32(hdr[:]))
	if size > MaxFrameSize {
		return nil, buf, ErrFrameTooLarge
	}
	if cap(buf) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, fmt.Errorf("wire: read body: %w", err)
	}
	return buf, buf, nil
}
