package runtime

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// gossipNode broadcasts its id once and halts after hearing from everyone.
type gossipNode struct {
	mu    sync.Mutex
	heard map[sim.ProcID]bool
}

func (g *gossipNode) Init(api sim.API) {
	g.heard = make(map[sim.ProcID]bool)
	api.Broadcast(int(api.ID()))
}

func (g *gossipNode) OnMessage(api sim.API, from sim.ProcID, msg sim.Message) {
	g.mu.Lock()
	g.heard[from] = true
	n := len(g.heard)
	g.mu.Unlock()
	if n == api.N() {
		api.Halt()
	}
}

func TestRunClusterGossip(t *testing.T) {
	const n = 5
	nodes := make([]sim.Node, n)
	impls := make([]*gossipNode, n)
	for i := range nodes {
		impls[i] = &gossipNode{}
		nodes[i] = impls[i]
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := RunCluster(ctx, nodes, 42); err != nil {
		t.Fatal(err)
	}
	for i, g := range impls {
		if len(g.heard) != n {
			t.Errorf("node %d heard %d of %d", i, len(g.heard), n)
		}
	}
}

func TestNewHostValidation(t *testing.T) {
	trs, err := transport.NewInProcNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHost(5, 1, trs[0], &gossipNode{}, 0); err == nil {
		t.Error("bad id: expected error")
	}
	if _, err := NewHost(0, 1, nil, &gossipNode{}, 0); err == nil {
		t.Error("nil transport: expected error")
	}
	if _, err := NewHost(0, 1, trs[0], nil, 0); err == nil {
		t.Error("nil node: expected error")
	}
}

// haltImmediately halts in Init.
type haltImmediately struct{}

func (haltImmediately) Init(api sim.API)                           { api.Halt() }
func (haltImmediately) OnMessage(sim.API, sim.ProcID, sim.Message) {}

func TestHostCleanHalt(t *testing.T) {
	trs, err := transport.NewInProcNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(0, 1, trs[0], haltImmediately{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.Run(ctx); err != nil {
		t.Errorf("clean halt returned %v", err)
	}
}

// neverHalts waits forever.
type neverHalts struct{}

func (neverHalts) Init(sim.API)                               {}
func (neverHalts) OnMessage(sim.API, sim.ProcID, sim.Message) {}

func TestHostContextCancel(t *testing.T) {
	trs, err := transport.NewInProcNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(0, 1, trs[0], neverHalts{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = h.Run(ctx)
	if err == nil {
		t.Error("cancelled run should return the context error")
	}
	if time.Since(start) > 3*time.Second {
		t.Error("Run did not return promptly on cancellation")
	}
}

// lateSender keeps sending to peer 1 even after the peer halted; the host
// must tolerate ErrPeerClosed.
type lateSender struct {
	sent int
}

func (l *lateSender) Init(api sim.API) {
	api.Send(1, "first")
}

func (l *lateSender) OnMessage(api sim.API, from sim.ProcID, msg sim.Message) {
	l.sent++
	if l.sent >= 5 {
		api.Halt()
		return
	}
	// Peer may already be gone; this must not error the host.
	api.Send(1, "again")
	api.Send(0, "loop") // keep ourselves alive
}

// oneShot halts after the first message.
type oneShot struct{}

func (oneShot) Init(sim.API)                                       {}
func (oneShot) OnMessage(api sim.API, _ sim.ProcID, _ sim.Message) { api.Halt() }

func TestHostToleratesHaltedPeers(t *testing.T) {
	trs, err := transport.NewInProcNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	h0, err := NewHost(0, 2, trs[0], &lateSender{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := NewHost(1, 2, trs[1], oneShot{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	errCh := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); errCh <- h1.Run(ctx) }()
	// Give host 1 a head start so it halts and closes before host 0's
	// later sends.
	go func() {
		defer wg.Done()
		// Kick host 0 with a self message loop.
		_ = trs[0].Send(0, "kick")
		errCh <- h0.Run(ctx)
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Errorf("host error: %v", err)
		}
	}
}

func TestRunClusterOverTCP(t *testing.T) {
	// Gossip over a real TCP loopback mesh via individual hosts.
	const n = 3
	tmpl := make([]string, n)
	for i := range tmpl {
		tmpl[i] = "127.0.0.1:0"
	}
	tcps := make([]*transport.TCPNode, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		nd, err := transport.NewTCP(transport.TCPConfig{ID: i, Addrs: tmpl, EstablishTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = nd
		addrs[i] = nd.Addr()
	}
	var wg sync.WaitGroup
	estErrs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			estErrs[i] = tcps[i].Establish(context.Background(), addrs)
		}()
	}
	wg.Wait()
	for i, err := range estErrs {
		if err != nil {
			t.Fatalf("establish %d: %v", i, err)
		}
	}

	impls := make([]*gossipNode, n)
	hosts := make([]*Host, n)
	for i := 0; i < n; i++ {
		impls[i] = &gossipNode{}
		h, err := NewHost(i, n, tcps[i], impls[i], 7)
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = h
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	errCh := make(chan error, n)
	var hwg sync.WaitGroup
	for _, h := range hosts {
		h := h
		hwg.Add(1)
		go func() { defer hwg.Done(); errCh <- h.Run(ctx) }()
	}
	hwg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Errorf("host error: %v", err)
		}
	}
	for i, g := range impls {
		if len(g.heard) != n {
			t.Errorf("node %d heard %d of %d", i, len(g.heard), n)
		}
	}
}
