// Package runtime hosts event-driven consensus nodes (sim.Node) on live
// transports: each Host runs one node, pumping messages from its transport
// endpoint into the node's OnMessage handler until the node halts or the
// context is cancelled. This is the bridge between the deterministic
// simulator used by tests/benchmarks and real deployments (in-process
// goroutine meshes or TCP clusters).
package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// Host runs one node over one transport endpoint.
type Host struct {
	id    sim.ProcID
	n     int
	tr    transport.Transport
	node  sim.Node
	api   *liveAPI
	start time.Time
}

// NewHost creates a host for process id (of n total) running node over tr.
// The seed feeds the node's PRNG stream.
func NewHost(id, n int, tr transport.Transport, node sim.Node, seed int64) (*Host, error) {
	if id < 0 || id >= n {
		return nil, fmt.Errorf("runtime: id %d out of range [0,%d)", id, n)
	}
	if tr == nil || node == nil {
		return nil, errors.New("runtime: nil transport or node")
	}
	h := &Host{id: sim.ProcID(id), n: n, tr: tr, node: node, start: time.Now()}
	h.api = &liveAPI{host: h, rng: rand.New(rand.NewSource(seed ^ (0x9e3779b9 * int64(id+1))))}
	return h, nil
}

// Run initializes the node and pumps messages until the node halts, the
// context is cancelled, or the transport fails. It returns nil on a clean
// halt and the first transport/protocol error otherwise.
func (h *Host) Run(ctx context.Context) error {
	type recvResult struct {
		from    int
		payload any
		err     error
	}
	recvCh := make(chan recvResult)
	pumpCtx, cancel := context.WithCancel(ctx)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			from, payload, err := h.tr.Recv()
			select {
			case recvCh <- recvResult{from: from, payload: payload, err: err}:
				if err != nil {
					return
				}
			case <-pumpCtx.Done():
				return
			}
		}
	}()
	// The pump goroutine blocks either in Recv (unblocked by closing the
	// transport) or on the recvCh send (unblocked by cancelling pumpCtx);
	// both must happen before waiting for it.
	defer func() {
		cancel()
		_ = h.tr.Close()
		wg.Wait()
	}()

	h.node.Init(h.api)
	if err := h.api.takeErr(); err != nil {
		return err
	}
	for !h.api.halted() {
		select {
		case r := <-recvCh:
			if r.err != nil {
				if errors.Is(r.err, transport.ErrClosed) {
					return nil
				}
				return r.err
			}
			h.node.OnMessage(h.api, sim.ProcID(r.from), r.payload)
			if err := h.api.takeErr(); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// liveAPI implements sim.API over a transport. Send errors cannot be
// returned through the API, so the first one is latched and surfaced by the
// host loop; sends to closed peers are tolerated (a halted peer looks like
// a crashed process, which the protocols handle by design).
type liveAPI struct {
	host *Host
	rng  *rand.Rand

	mu   sync.Mutex
	done bool
	err  error
}

var _ sim.API = (*liveAPI)(nil)

func (a *liveAPI) ID() sim.ProcID { return a.host.id }

func (a *liveAPI) N() int { return a.host.n }

func (a *liveAPI) Send(to sim.ProcID, msg sim.Message) {
	err := a.host.tr.Send(int(to), msg)
	if err != nil && !errors.Is(err, transport.ErrPeerClosed) {
		a.mu.Lock()
		if a.err == nil {
			a.err = fmt.Errorf("runtime: send to %d: %w", to, err)
		}
		a.mu.Unlock()
	}
}

func (a *liveAPI) Broadcast(msg sim.Message) {
	for to := 0; to < a.host.n; to++ {
		a.Send(sim.ProcID(to), msg)
	}
}

func (a *liveAPI) Halt() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.done = true
}

func (a *liveAPI) Rand() *rand.Rand { return a.rng }

func (a *liveAPI) Now() time.Duration { return time.Since(a.host.start) }

func (a *liveAPI) halted() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.done
}

func (a *liveAPI) takeErr() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	err := a.err
	a.err = nil
	return err
}

// RunCluster is a convenience for tests and examples: it builds an
// in-process network of len(nodes) endpoints, hosts each node on its own
// goroutine, and waits for all hosts to finish. It returns the first host
// error.
func RunCluster(ctx context.Context, nodes []sim.Node, seed int64) error {
	trs, err := transport.NewInProcNetwork(len(nodes))
	if err != nil {
		return err
	}
	hosts := make([]*Host, len(nodes))
	for i, nd := range nodes {
		h, err := NewHost(i, len(nodes), trs[i], nd, seed)
		if err != nil {
			return err
		}
		hosts[i] = h
	}
	errCh := make(chan error, len(hosts))
	var wg sync.WaitGroup
	for _, h := range hosts {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			errCh <- h.Run(ctx)
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return nil
}
