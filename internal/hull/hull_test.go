package hull

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

func vec(xs ...float64) geometry.Vector { return geometry.Vector(xs) }

func TestContainsTriangle(t *testing.T) {
	tri := []geometry.Vector{vec(0, 0), vec(1, 0), vec(0, 1)}
	tests := []struct {
		name string
		z    geometry.Vector
		want bool
	}{
		{name: "centroid", z: vec(1.0/3, 1.0/3), want: true},
		{name: "vertex", z: vec(0, 0), want: true},
		{name: "edge midpoint", z: vec(0.5, 0.5), want: true},
		{name: "outside", z: vec(0.6, 0.6), want: false},
		{name: "far outside", z: vec(5, 5), want: false},
		{name: "negative", z: vec(-0.1, 0.1), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Contains(tri, tt.z, 0)
			if err != nil {
				t.Fatalf("Contains: %v", err)
			}
			if got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.z, got, tt.want)
			}
		})
	}
}

func TestContainsSinglePoint(t *testing.T) {
	pts := []geometry.Vector{vec(2, 3)}
	ok, err := Contains(pts, vec(2, 3), 0)
	if err != nil || !ok {
		t.Errorf("point should contain itself: ok=%v err=%v", ok, err)
	}
	ok, err = Contains(pts, vec(2, 3.1), 0)
	if err != nil || ok {
		t.Errorf("distinct point should not be contained: ok=%v err=%v", ok, err)
	}
}

func TestContainsSegment1D(t *testing.T) {
	seg := []geometry.Vector{vec(-1), vec(3)}
	for _, tt := range []struct {
		z    float64
		want bool
	}{{-1, true}, {0, true}, {3, true}, {3.001, false}, {-1.001, false}} {
		ok, err := Contains(seg, vec(tt.z), 0)
		if err != nil {
			t.Fatal(err)
		}
		if ok != tt.want {
			t.Errorf("Contains(%g) = %v, want %v", tt.z, ok, tt.want)
		}
	}
}

func TestContainsDuplicatePoints(t *testing.T) {
	// Multiset semantics: duplicates are harmless.
	pts := []geometry.Vector{vec(0, 0), vec(0, 0), vec(2, 2)}
	ok, err := Contains(pts, vec(1, 1), 0)
	if err != nil || !ok {
		t.Errorf("midpoint of duplicated segment: ok=%v err=%v", ok, err)
	}
}

func TestContainsTolerance(t *testing.T) {
	tri := []geometry.Vector{vec(0, 0), vec(1, 0), vec(0, 1)}
	// Slightly outside but within a loose tolerance.
	ok, err := Contains(tri, vec(-1e-6, 0.5), 1e-3)
	if err != nil || !ok {
		t.Errorf("tolerance should admit near-boundary point: ok=%v err=%v", ok, err)
	}
	ok, err = Contains(tri, vec(-1e-6, 0.5), 1e-9)
	if err != nil || ok {
		t.Errorf("tight tolerance should reject: ok=%v err=%v", ok, err)
	}
}

func TestContainsErrors(t *testing.T) {
	if _, err := Contains(nil, vec(0), 0); err == nil {
		t.Error("empty set: expected error")
	}
	if _, err := Contains([]geometry.Vector{vec(0, 0), vec(1)}, vec(0, 0), 0); err == nil {
		t.Error("mixed dims: expected error")
	}
}

func TestContainsHighDim(t *testing.T) {
	// Standard simplex in R⁵: barycenter inside, outside point rejected.
	d := 5
	pts := make([]geometry.Vector, d+1)
	pts[0] = geometry.NewVector(d)
	for i := 1; i <= d; i++ {
		p := geometry.NewVector(d)
		p[i-1] = 1
		pts[i] = p
	}
	center := geometry.NewVector(d)
	for i := range center {
		center[i] = 1 / float64(d+1)
	}
	ok, err := Contains(pts, center, 0)
	if err != nil || !ok {
		t.Errorf("barycenter: ok=%v err=%v", ok, err)
	}
	out := geometry.NewVector(d)
	out[0] = 1.01
	ok, err = Contains(pts, out, 0)
	if err != nil || ok {
		t.Errorf("outside point: ok=%v err=%v", ok, err)
	}
}

func TestCommonPointDisjoint(t *testing.T) {
	g1 := []geometry.Vector{vec(0, 0), vec(1, 0)}
	g2 := []geometry.Vector{vec(0, 1), vec(1, 1)}
	_, ok, err := CommonPoint([][]geometry.Vector{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("disjoint segments should have empty intersection")
	}
	empty, err := IntersectionEmpty([][]geometry.Vector{g1, g2})
	if err != nil || !empty {
		t.Errorf("IntersectionEmpty = %v, err=%v", empty, err)
	}
}

func TestCommonPointCrossingSegments(t *testing.T) {
	g1 := []geometry.Vector{vec(0, 0), vec(2, 2)}
	g2 := []geometry.Vector{vec(0, 2), vec(2, 0)}
	pt, ok, err := CommonPoint([][]geometry.Vector{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("crossing segments must intersect")
	}
	if !pt.ApproxEqual(vec(1, 1), 1e-6) {
		t.Errorf("intersection point = %v, want (1,1)", pt)
	}
}

func TestCommonPointSharedVertex(t *testing.T) {
	g1 := []geometry.Vector{vec(0, 0), vec(1, 0)}
	g2 := []geometry.Vector{vec(1, 0), vec(2, 5)}
	pt, ok, err := CommonPoint([][]geometry.Vector{g1, g2})
	if err != nil || !ok {
		t.Fatalf("shared vertex: ok=%v err=%v", ok, err)
	}
	if !pt.ApproxEqual(vec(1, 0), 1e-6) {
		t.Errorf("point = %v, want (1,0)", pt)
	}
}

func TestCommonPointThreeGroups(t *testing.T) {
	// Three triangles all containing the origin.
	mk := func(rot float64) []geometry.Vector {
		out := make([]geometry.Vector, 3)
		for k := 0; k < 3; k++ {
			a := rot + 2*math.Pi*float64(k)/3
			out[k] = vec(2*math.Cos(a), 2*math.Sin(a))
		}
		return out
	}
	groups := [][]geometry.Vector{mk(0), mk(0.4), mk(0.9)}
	pt, ok, err := CommonPoint(groups)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	for g, pts := range groups {
		in, err := Contains(pts, pt, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if !in {
			t.Errorf("common point %v not in group %d", pt, g)
		}
	}
}

func TestCommonPointSingleGroup(t *testing.T) {
	pt, ok, err := CommonPoint([][]geometry.Vector{{vec(3, 4)}})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !pt.ApproxEqual(vec(3, 4), 1e-6) {
		t.Errorf("point = %v", pt)
	}
}

func TestCommonPointErrors(t *testing.T) {
	if _, _, err := CommonPoint(nil); err == nil {
		t.Error("no groups: expected error")
	}
	if _, _, err := CommonPoint([][]geometry.Vector{{}}); err == nil {
		t.Error("empty group: expected error")
	}
	if _, _, err := CommonPoint([][]geometry.Vector{{vec(1)}, {}}); err == nil {
		t.Error("empty later group: expected error")
	}
	if _, _, err := CommonPoint([][]geometry.Vector{{vec(1)}, {vec(1, 2)}}); err == nil {
		t.Error("mixed dims: expected error")
	}
}

func TestLexMinCommonPoint(t *testing.T) {
	// Intersection of two overlapping squares [0,2]² and [1,3]² is [1,2]²;
	// the lex-min point is (1,1).
	sq := func(lo float64) []geometry.Vector {
		return []geometry.Vector{vec(lo, lo), vec(lo+2, lo), vec(lo, lo+2), vec(lo+2, lo+2)}
	}
	pt, ok, err := LexMinCommonPoint([][]geometry.Vector{sq(0), sq(1)})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !pt.ApproxEqual(vec(1, 1), 1e-6) {
		t.Errorf("lexmin = %v, want (1,1)", pt)
	}
}

func TestLexMinCommonPointTieBreak(t *testing.T) {
	// A vertical segment at x = 2: lex-min must pick the lower endpoint.
	seg := []geometry.Vector{vec(2, 5), vec(2, -3)}
	pt, ok, err := LexMinCommonPoint([][]geometry.Vector{seg})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !pt.ApproxEqual(vec(2, -3), 1e-6) {
		t.Errorf("lexmin = %v, want (2,-3)", pt)
	}
}

func TestLexMinCommonPointEmpty(t *testing.T) {
	g1 := []geometry.Vector{vec(0)}
	g2 := []geometry.Vector{vec(1)}
	_, ok, err := LexMinCommonPoint([][]geometry.Vector{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("disjoint points: expected empty")
	}
}

func TestLexMinDeterminism(t *testing.T) {
	groups := [][]geometry.Vector{
		{vec(0, 0), vec(4, 0), vec(0, 4)},
		{vec(1, 1), vec(5, 1), vec(1, 5)},
		{vec(-1, 2), vec(3, 2), vec(1, -2)},
	}
	a, ok1, err1 := LexMinCommonPoint(groups)
	b, ok2, err2 := LexMinCommonPoint(groups)
	if err1 != nil || err2 != nil || !ok1 || !ok2 {
		t.Fatalf("ok=%v/%v err=%v/%v", ok1, ok2, err1, err2)
	}
	if !a.Equal(b) {
		t.Errorf("non-deterministic lexmin: %v vs %v", a, b)
	}
}

// TestCommonPointAlwaysInAllHulls: random overlapping groups sharing a seed
// point must yield a common point that membership-tests into every group.
func TestCommonPointAlwaysInAllHulls(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(3)
		shared := geometry.NewVector(d)
		for i := range shared {
			shared[i] = rng.Float64()*4 - 2
		}
		ngroups := 2 + rng.Intn(3)
		groups := make([][]geometry.Vector, ngroups)
		for g := range groups {
			k := 1 + rng.Intn(4)
			pts := make([]geometry.Vector, 0, k+1)
			pts = append(pts, shared.Clone())
			for j := 0; j < k; j++ {
				p := geometry.NewVector(d)
				for i := range p {
					p[i] = rng.Float64()*8 - 4
				}
				pts = append(pts, p)
			}
			groups[g] = pts
		}
		pt, ok, err := CommonPoint(groups)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: groups share %v but intersection empty", trial, shared)
		}
		for g, pts := range groups {
			in, err := Contains(pts, pt, 1e-6)
			if err != nil {
				t.Fatal(err)
			}
			if !in {
				t.Fatalf("trial %d: common point %v not in group %d", trial, pt, g)
			}
		}
	}
}
