package hull

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/geometry"
	"repro/internal/lp"
)

// MembershipTester answers hull-membership queries through one reusable
// modeling problem, one solver workspace and one carried simplex basis:
// repeated queries are allocation-free in steady state, and consecutive
// queries over similar point sets (the sibling candidate subsets the Γ-point
// pipeline walks in Gray-code order) warm-start from the previous optimal
// basis instead of re-running Phase 1.
//
// The carried basis only ever influences which pivots the solver takes —
// the feasibility verdict is basis-independent — so a tester may be reused
// across completely unrelated queries without affecting any result. The one
// theoretical exception is a query whose COLD solve would die at the simplex
// iteration cap (a warm basis could sidestep the failure, making the
// error-vs-verdict outcome history-dependent); the membership programs this
// tester builds have a handful of rows against a ≥10000-iteration floor and
// Bland-rule termination, so the cap is unreachable for them and outcomes
// stay pure in practice. A MembershipTester is not safe for concurrent use;
// use one per goroutine.
type MembershipTester struct {
	prob *lp.Problem
	ws   *lp.Workspace
	bas  lp.Basis

	// shape of the previously built program; a mismatch invalidates the
	// carried basis (the solver would reject it anyway — this just keeps the
	// bookkeeping obvious).
	lastPts, lastDim int

	alphas []lp.VarID
	terms  []lp.Term
	uniq   []geometry.Vector
}

// NewMembershipTester returns an empty tester.
func NewMembershipTester() *MembershipTester {
	return &MembershipTester{prob: lp.NewProblem(), ws: lp.NewWorkspace()}
}

// testerPool backs Contains so that one-shot callers still reuse problems,
// workspaces and (opportunistically) bases across calls.
var testerPool = sync.Pool{New: func() any { return NewMembershipTester() }}

// Test reports whether z lies in the convex hull of points within tol
// (DefaultTol if tol ≤ 0). Semantics are identical to Contains.
func (mt *MembershipTester) Test(points []geometry.Vector, z geometry.Vector, tol float64) (bool, error) {
	if len(points) == 0 {
		return false, errors.New("hull: membership in hull of empty set")
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	d := z.Dim()
	for i, p := range points {
		if p.Dim() != d {
			return false, fmt.Errorf("hull: point %d has dimension %d, want %d", i, p.Dim(), d)
		}
	}
	// Duplicate points add exactly-identical columns (numerically
	// poisonous twins — see hull.dedupePoints); membership only depends on
	// the point set, so keep the first occurrence of each.
	mt.uniq = dedupePoints(mt.uniq[:0], points)
	points = mt.uniq
	if len(points) != mt.lastPts || d != mt.lastDim {
		mt.bas.Reset()
		mt.lastPts, mt.lastDim = len(points), d
	}

	prob := mt.prob
	prob.Reset()
	if cap(mt.alphas) < len(points) {
		mt.alphas = make([]lp.VarID, 0, len(points))
	}
	alphas := mt.alphas[:0]
	for range points {
		v, err := prob.AddVar("a", 0, math.Inf(1))
		if err != nil {
			return false, err
		}
		alphas = append(alphas, v)
	}
	mt.alphas = alphas
	if cap(mt.terms) < len(points)+1 {
		mt.terms = make([]lp.Term, 0, len(points)+1)
	}
	terms := mt.terms[:0]
	for _, a := range alphas {
		terms = append(terms, lp.Term{Var: a, Coeff: 1})
	}
	if err := prob.AddConstraint("sum", terms, lp.EQ, 1); err != nil {
		return false, err
	}
	for l := 0; l < d; l++ {
		terms = terms[:0]
		for i, a := range alphas {
			if points[i][l] != 0 {
				terms = append(terms, lp.Term{Var: a, Coeff: points[i][l]})
			}
		}
		if err := prob.AddConstraint("lo", terms, lp.GE, z[l]-tol); err != nil {
			return false, err
		}
		if err := prob.AddConstraint("hi", terms, lp.LE, z[l]+tol); err != nil {
			return false, err
		}
	}
	mt.terms = terms
	sol, err := prob.SolveWithBasis(mt.ws, &mt.bas)
	if err != nil {
		return false, err
	}
	return sol.Status == lp.Optimal, nil
}
