package hull

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

// TestLexMinCommonPointD3Intersection exercises the joint LP on a d=3 safe
// area at the Lemma 1 threshold (9 points, f=2 → 36 hull groups) — the
// degenerate intersection shape that exposed reduced-cost drift in the
// simplex. The intersection must be found non-empty and the lex-min point
// must lie in every group hull.
func TestLexMinCommonPointD3Intersection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const d, k, f = 3, 9, 2
	pts := make([]geometry.Vector, k)
	for i := range pts {
		v := geometry.NewVector(d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = v
	}
	var groups [][]geometry.Vector
	idx := make([]int, 0, k-f)
	var rec func(start int)
	rec = func(start int) {
		if len(idx) == k-f {
			g := make([]geometry.Vector, 0, k-f)
			for _, i := range idx {
				g = append(g, pts[i])
			}
			groups = append(groups, g)
			return
		}
		for i := start; i < k; i++ {
			idx = append(idx, i)
			rec(i + 1)
			idx = idx[:len(idx)-1]
		}
	}
	rec(0)
	if len(groups) != 36 {
		t.Fatalf("groups = %d, want C(9,7) = 36", len(groups))
	}

	if _, ok, err := CommonPoint(groups); err != nil || !ok {
		t.Fatalf("CommonPoint: ok=%v err=%v (Lemma 1 guarantees non-empty)", ok, err)
	}
	pt, ok, err := LexMinCommonPoint(groups)
	if err != nil || !ok {
		t.Fatalf("LexMinCommonPoint: ok=%v err=%v", ok, err)
	}
	for g, grp := range groups {
		in, err := Contains(grp, pt, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if !in {
			t.Fatalf("lex-min point %v outside hull of group %d", pt, g)
		}
	}
}
