// Package hull answers convex-hull queries by reduction to linear
// programming: membership of a point in the hull of a point multiset,
// existence of a point common to several hulls, and deterministic selection
// of the lexicographically minimal such point.
//
// These are exactly the geometric predicates the BVC algorithms need: the
// validity condition is hull membership, and the safe area Γ(Y) is an
// intersection of hulls (paper eq. (1)).
package hull

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/geometry"
	"repro/internal/lp"
)

// DefaultTol is the geometric tolerance used when callers pass tol ≤ 0.
// Inputs in this repository are O(1) in magnitude, so an absolute tolerance
// is appropriate.
const DefaultTol = 1e-7

// Contains reports whether z lies in the convex hull of points, within the
// per-coordinate tolerance tol (DefaultTol if tol ≤ 0). It reduces to an LP
// feasibility problem in the convex weights α, solved through a pooled
// MembershipTester so repeated calls reuse problem/workspace buffers and
// warm-start from earlier bases (the verdict is basis-independent).
func Contains(points []geometry.Vector, z geometry.Vector, tol float64) (bool, error) {
	mt := testerPool.Get().(*MembershipTester)
	defer testerPool.Put(mt)
	return mt.Test(points, z, tol)
}

// intersectionProblem builds the shared LP skeleton for hull-intersection
// queries: free variables z[0..d), and for each group g convex weights
// α_{g,i} ≥ 0 with Σ_i α_{g,i} = 1 and Σ_i α_{g,i}·groups[g][i] = z.
// It returns the problem and the z variable ids.
func intersectionProblem(groups [][]geometry.Vector) (*lp.Problem, []lp.VarID, error) {
	if len(groups) == 0 {
		return nil, nil, errors.New("hull: intersection of zero hulls")
	}
	if len(groups[0]) == 0 {
		return nil, nil, errors.New("hull: group 0 is empty")
	}
	d := groups[0][0].Dim()

	prob := lp.NewProblem()
	zvars := make([]lp.VarID, d)
	for l := 0; l < d; l++ {
		v, err := prob.AddVar("z", math.Inf(-1), math.Inf(1))
		if err != nil {
			return nil, nil, err
		}
		zvars[l] = v
	}
	var uniq []geometry.Vector
	for g, pts := range groups {
		if len(pts) == 0 {
			return nil, nil, fmt.Errorf("hull: group %d is empty", g)
		}
		for i, p := range pts {
			if p.Dim() != d {
				return nil, nil, fmt.Errorf("hull: group %d point %d has dimension %d, want %d", g, i, p.Dim(), d)
			}
		}
		// Candidate multisets routinely repeat points (Byzantine echoes,
		// default vectors); a hull is a function of the point SET, so
		// duplicated members would only add exactly-identical LP columns —
		// numerically poisonous twins that make bases singular and reduced
		// costs pure noise. Keep the first occurrence of each distinct
		// point (deterministic, so every process builds the identical
		// program).
		uniq = dedupePoints(uniq[:0], pts)
		pts = uniq
		alphas := make([]lp.VarID, len(pts))
		for i := range pts {
			v, err := prob.AddVar("a", 0, math.Inf(1))
			if err != nil {
				return nil, nil, err
			}
			alphas[i] = v
		}
		sum := make([]lp.Term, len(pts))
		for i, a := range alphas {
			sum[i] = lp.Term{Var: a, Coeff: 1}
		}
		if err := prob.AddConstraint("sum", sum, lp.EQ, 1); err != nil {
			return nil, nil, err
		}
		for l := 0; l < d; l++ {
			terms := make([]lp.Term, 0, len(pts)+1)
			for i, a := range alphas {
				if pts[i][l] != 0 {
					terms = append(terms, lp.Term{Var: a, Coeff: pts[i][l]})
				}
			}
			terms = append(terms, lp.Term{Var: zvars[l], Coeff: -1})
			if err := prob.AddConstraint("eq", terms, lp.EQ, 0); err != nil {
				return nil, nil, err
			}
		}
	}
	return prob, zvars, nil
}

// dedupePoints appends the first occurrence of each distinct point of pts
// to dst (exact bit-equality; the small quadratic scan beats hashing at
// candidate-set sizes).
func dedupePoints(dst, pts []geometry.Vector) []geometry.Vector {
	for _, p := range pts {
		dup := false
		for _, q := range dst {
			if p.Equal(q) {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, p)
		}
	}
	return dst
}

// CommonPoint finds some point lying in every conv(groups[g]). The boolean
// result reports whether the intersection is non-empty. The returned point is
// deterministic for identical inputs (simplex pivoting is deterministic) but
// otherwise unspecified; use LexMinCommonPoint when a canonical point is
// required.
func CommonPoint(groups [][]geometry.Vector) (geometry.Vector, bool, error) {
	prob, zvars, err := intersectionProblem(groups)
	if err != nil {
		return nil, false, err
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, false, err
	}
	if sol.Status != lp.Optimal {
		return nil, false, nil
	}
	return pointFrom(sol, zvars), true, nil
}

// lexWSPool reuses the workspaces backing the lex-min stage chains (their
// Hot handles need a workspace that outlives a single Solve call).
var lexWSPool = sync.Pool{New: func() any { return lp.NewWorkspace() }}

// pinSlack keeps successive lex-min LPs feasible in floating point; it is
// deterministic, so all correct processes still agree exactly. It must
// dominate the solver's own tolerance (feasibility is checked to ~1e-7) or
// degenerate stages go infeasible after pinning.
const pinSlack = 1e-6

// LexMinCommonPoint finds the lexicographically minimal point of
// ∩ conv(groups[g]) by minimizing z₁, pinning it, minimizing z₂, and so on.
// This is the deterministic choice function used by the Exact BVC algorithm
// (paper §2.2: "all non-faulty processes choose the point identically using
// a deterministic function").
//
// Stages 2…d are warm-started: the pin row is appended into the retained
// stage-1 tableau (lp.Hot) and the next objective is re-priced from the
// current vertex, so Phase 1 runs once per candidate set instead of once per
// coordinate. The chain is a pure function of groups — every correct process
// walks the identical stage sequence — and any warm-path failure falls back
// to the cold per-stage solve.
func LexMinCommonPoint(groups [][]geometry.Vector) (geometry.Vector, bool, error) {
	prob, zvars, err := intersectionProblem(groups)
	if err != nil {
		return nil, false, err
	}
	if err := prob.SetObjective(lp.Minimize, []lp.Term{{Var: zvars[0], Coeff: 1}}); err != nil {
		return nil, false, err
	}
	ws := lexWSPool.Get().(*lp.Workspace)
	defer lexWSPool.Put(ws)
	sol, hot, err := prob.SolveHot(ws)
	if err != nil {
		return nil, false, err
	}
	if sol.Status == lp.Infeasible {
		return nil, false, nil
	}
	if sol.Status != lp.Optimal {
		return nil, false, fmt.Errorf("hull: lexmin stage 0 status %v", sol.Status)
	}
	bounds := make([]float64, 0, len(zvars)-1)
	for l := 1; l < len(zvars); l++ {
		pin := []lp.Term{{Var: zvars[l-1], Coeff: 1}}
		bound := sol.Values[zvars[l-1]] + pinSlack
		bounds = append(bounds, bound)
		if err := hot.AppendLE(pin, bound); err != nil {
			// The retained vertex satisfies the pin by construction, so a
			// refusal indicates numerical drift: fall back to cold stages.
			return lexMinCold(prob, zvars, sol, l, bounds)
		}
		if err := prob.SetObjective(lp.Minimize, []lp.Term{{Var: zvars[l], Coeff: 1}}); err != nil {
			return nil, false, err
		}
		next, err := hot.Resolve()
		if err != nil || next.Status != lp.Optimal {
			return lexMinCold(prob, zvars, sol, l, bounds)
		}
		sol = next
	}
	return pointFrom(sol, zvars), true, nil
}

// lexMinCold finishes the lex-min chain with cold per-stage solves from
// stage l onward. The warm path keeps its pin rows in the tableau only, so
// every pin bound decided so far (bounds[i] pins zvars[i]) is re-added to
// the modeling problem first. prev is stage l−1's optimal solution.
func lexMinCold(prob *lp.Problem, zvars []lp.VarID, prev *lp.Solution, l int, bounds []float64) (geometry.Vector, bool, error) {
	for i, bound := range bounds {
		if err := prob.AddConstraint("pin", []lp.Term{{Var: zvars[i], Coeff: 1}}, lp.LE, bound); err != nil {
			return nil, false, err
		}
	}
	sol := prev
	for ; l < len(zvars); l++ {
		if err := prob.SetObjective(lp.Minimize, []lp.Term{{Var: zvars[l], Coeff: 1}}); err != nil {
			return nil, false, err
		}
		next, err := prob.Solve()
		if err != nil {
			return nil, false, err
		}
		if next.Status == lp.Infeasible {
			return nil, false, fmt.Errorf("hull: lexmin stage %d infeasible after pinning", l)
		}
		if next.Status != lp.Optimal {
			return nil, false, fmt.Errorf("hull: lexmin stage %d status %v", l, next.Status)
		}
		sol = next
		if l < len(zvars)-1 {
			pin := []lp.Term{{Var: zvars[l], Coeff: 1}}
			if err := prob.AddConstraint("pin", pin, lp.LE, next.Values[zvars[l]]+pinSlack); err != nil {
				return nil, false, err
			}
		}
	}
	return pointFrom(sol, zvars), true, nil
}

// IntersectionEmpty reports whether ∩ conv(groups[g]) is empty.
func IntersectionEmpty(groups [][]geometry.Vector) (bool, error) {
	_, ok, err := CommonPoint(groups)
	if err != nil {
		return false, err
	}
	return !ok, nil
}

func pointFrom(sol *lp.Solution, zvars []lp.VarID) geometry.Vector {
	out := geometry.NewVector(len(zvars))
	for l, v := range zvars {
		out[l] = sol.Values[v]
	}
	return out
}
