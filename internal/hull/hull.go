// Package hull answers convex-hull queries by reduction to linear
// programming: membership of a point in the hull of a point multiset,
// existence of a point common to several hulls, and deterministic selection
// of the lexicographically minimal such point.
//
// These are exactly the geometric predicates the BVC algorithms need: the
// validity condition is hull membership, and the safe area Γ(Y) is an
// intersection of hulls (paper eq. (1)).
package hull

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geometry"
	"repro/internal/lp"
)

// DefaultTol is the geometric tolerance used when callers pass tol ≤ 0.
// Inputs in this repository are O(1) in magnitude, so an absolute tolerance
// is appropriate.
const DefaultTol = 1e-7

// Contains reports whether z lies in the convex hull of points, within the
// per-coordinate tolerance tol (DefaultTol if tol ≤ 0). It reduces to an LP
// feasibility problem in the convex weights α.
func Contains(points []geometry.Vector, z geometry.Vector, tol float64) (bool, error) {
	if len(points) == 0 {
		return false, errors.New("hull: membership in hull of empty set")
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	d := z.Dim()
	for i, p := range points {
		if p.Dim() != d {
			return false, fmt.Errorf("hull: point %d has dimension %d, want %d", i, p.Dim(), d)
		}
	}

	prob := lp.NewProblem()
	alphas := make([]lp.VarID, len(points))
	for i := range points {
		v, err := prob.AddVar("a", 0, math.Inf(1))
		if err != nil {
			return false, err
		}
		alphas[i] = v
	}
	// Σ αᵢ = 1.
	sum := make([]lp.Term, len(points))
	for i, a := range alphas {
		sum[i] = lp.Term{Var: a, Coeff: 1}
	}
	if err := prob.AddConstraint("sum", sum, lp.EQ, 1); err != nil {
		return false, err
	}
	// |Σ αᵢ pᵢ[l] − z[l]| ≤ tol for each coordinate l.
	for l := 0; l < d; l++ {
		terms := make([]lp.Term, 0, len(points))
		for i, a := range alphas {
			if points[i][l] != 0 {
				terms = append(terms, lp.Term{Var: a, Coeff: points[i][l]})
			}
		}
		if err := prob.AddConstraint("lo", terms, lp.GE, z[l]-tol); err != nil {
			return false, err
		}
		if err := prob.AddConstraint("hi", terms, lp.LE, z[l]+tol); err != nil {
			return false, err
		}
	}
	sol, err := prob.Solve()
	if err != nil {
		return false, err
	}
	return sol.Status == lp.Optimal, nil
}

// intersectionProblem builds the shared LP skeleton for hull-intersection
// queries: free variables z[0..d), and for each group g convex weights
// α_{g,i} ≥ 0 with Σ_i α_{g,i} = 1 and Σ_i α_{g,i}·groups[g][i] = z.
// It returns the problem and the z variable ids.
func intersectionProblem(groups [][]geometry.Vector) (*lp.Problem, []lp.VarID, error) {
	if len(groups) == 0 {
		return nil, nil, errors.New("hull: intersection of zero hulls")
	}
	if len(groups[0]) == 0 {
		return nil, nil, errors.New("hull: group 0 is empty")
	}
	d := groups[0][0].Dim()

	prob := lp.NewProblem()
	zvars := make([]lp.VarID, d)
	for l := 0; l < d; l++ {
		v, err := prob.AddVar("z", math.Inf(-1), math.Inf(1))
		if err != nil {
			return nil, nil, err
		}
		zvars[l] = v
	}
	for g, pts := range groups {
		if len(pts) == 0 {
			return nil, nil, fmt.Errorf("hull: group %d is empty", g)
		}
		alphas := make([]lp.VarID, len(pts))
		for i, p := range pts {
			if p.Dim() != d {
				return nil, nil, fmt.Errorf("hull: group %d point %d has dimension %d, want %d", g, i, p.Dim(), d)
			}
			v, err := prob.AddVar("a", 0, math.Inf(1))
			if err != nil {
				return nil, nil, err
			}
			alphas[i] = v
		}
		sum := make([]lp.Term, len(pts))
		for i, a := range alphas {
			sum[i] = lp.Term{Var: a, Coeff: 1}
		}
		if err := prob.AddConstraint("sum", sum, lp.EQ, 1); err != nil {
			return nil, nil, err
		}
		for l := 0; l < d; l++ {
			terms := make([]lp.Term, 0, len(pts)+1)
			for i, a := range alphas {
				if pts[i][l] != 0 {
					terms = append(terms, lp.Term{Var: a, Coeff: pts[i][l]})
				}
			}
			terms = append(terms, lp.Term{Var: zvars[l], Coeff: -1})
			if err := prob.AddConstraint("eq", terms, lp.EQ, 0); err != nil {
				return nil, nil, err
			}
		}
	}
	return prob, zvars, nil
}

// CommonPoint finds some point lying in every conv(groups[g]). The boolean
// result reports whether the intersection is non-empty. The returned point is
// deterministic for identical inputs (simplex pivoting is deterministic) but
// otherwise unspecified; use LexMinCommonPoint when a canonical point is
// required.
func CommonPoint(groups [][]geometry.Vector) (geometry.Vector, bool, error) {
	prob, zvars, err := intersectionProblem(groups)
	if err != nil {
		return nil, false, err
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, false, err
	}
	if sol.Status != lp.Optimal {
		return nil, false, nil
	}
	return pointFrom(sol, zvars), true, nil
}

// LexMinCommonPoint finds the lexicographically minimal point of
// ∩ conv(groups[g]) by solving d LPs: minimize z₁, pin it, minimize z₂, and
// so on. This is the deterministic choice function used by the Exact BVC
// algorithm (paper §2.2: "all non-faulty processes choose the point
// identically using a deterministic function").
func LexMinCommonPoint(groups [][]geometry.Vector) (geometry.Vector, bool, error) {
	prob, zvars, err := intersectionProblem(groups)
	if err != nil {
		return nil, false, err
	}
	// The pinning slack keeps successive LPs feasible in floating point; it
	// is deterministic, so all correct processes still agree exactly. It
	// must dominate the solver's own tolerance (feasibility is checked to
	// ~1e-7) or degenerate stages go infeasible after pinning.
	const pinSlack = 1e-6
	var last *lp.Solution
	for l := 0; l < len(zvars); l++ {
		if err := prob.SetObjective(lp.Minimize, []lp.Term{{Var: zvars[l], Coeff: 1}}); err != nil {
			return nil, false, err
		}
		sol, err := prob.Solve()
		if err != nil {
			return nil, false, err
		}
		if sol.Status == lp.Infeasible {
			if l == 0 {
				return nil, false, nil
			}
			return nil, false, fmt.Errorf("hull: lexmin stage %d infeasible after pinning", l)
		}
		if sol.Status != lp.Optimal {
			return nil, false, fmt.Errorf("hull: lexmin stage %d status %v", l, sol.Status)
		}
		last = sol
		if l < len(zvars)-1 {
			pin := []lp.Term{{Var: zvars[l], Coeff: 1}}
			if err := prob.AddConstraint("pin", pin, lp.LE, sol.Values[zvars[l]]+pinSlack); err != nil {
				return nil, false, err
			}
		}
	}
	return pointFrom(last, zvars), true, nil
}

// IntersectionEmpty reports whether ∩ conv(groups[g]) is empty.
func IntersectionEmpty(groups [][]geometry.Vector) (bool, error) {
	_, ok, err := CommonPoint(groups)
	if err != nil {
		return false, err
	}
	return !ok, nil
}

func pointFrom(sol *lp.Solution, zvars []lp.VarID) geometry.Vector {
	out := geometry.NewVector(len(zvars))
	for l, v := range zvars {
		out[l] = sol.Values[v]
	}
	return out
}
