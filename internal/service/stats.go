package service

import (
	"sync/atomic"
	"time"
)

// counters is the service's internal atomic counter block. Everything is
// monotone except active (a gauge); Stats snapshots it for callers and
// cmd/bvcload stamps the snapshot into its BENCH records.
type counters struct {
	active    atomic.Int64
	lingering atomic.Int64
	proposed  atomic.Int64
	decided   atomic.Int64
	timedOut  atomic.Int64
	failed    atomic.Int64

	framesIn  atomic.Int64
	framesOut atomic.Int64
	bytesIn   atomic.Int64
	bytesOut  atomic.Int64

	sheds          atomic.Int64
	writeDrops     atomic.Int64
	writeRetries   atomic.Int64
	pendingFrames  atomic.Int64
	pendingDropped atomic.Int64
	reconnects     atomic.Int64
	readErrors     atomic.Int64

	dialFailures     atomic.Int64
	outboxStalls     atomic.Int64
	lingerExtensions atomic.Int64
	authFailures     atomic.Int64

	epoch             atomic.Uint64
	reconfigures      atomic.Int64
	epochAnnounces    atomic.Int64
	epochAcks         atomic.Int64
	staleEpochRejects atomic.Int64
	retiredEpochs     atomic.Int64
}

// Stats is a point-in-time snapshot of one service process's counters.
type Stats struct {
	// ActiveInstances is the number of currently open, undecided instances
	// (gauge). Lingering counts decided instances still serving the
	// exchange for lagging peers (gauge; see Config.LingerTimeout).
	ActiveInstances int64
	Lingering       int64
	// Proposed/Decided/TimedOut/Failed count instance outcomes: proposals
	// accepted, decisions delivered, per-instance timeouts, and protocol
	// failures.
	Proposed, Decided, TimedOut, Failed int64
	// FramesIn/FramesOut/BytesIn/BytesOut count v2 frames and payload
	// bytes crossing this process's pooled connections (self-sends are
	// delivered in memory and not counted).
	FramesIn, FramesOut, BytesIn, BytesOut int64
	// SlowPeerSheds counts frames dropped by the shed policy on a full
	// peer outbox; WriteDrops counts frames lost because the outbox
	// overflowed while the peer was disconnected (blocking on a down
	// peer would stall the shard, so the overflow sheds — the protocols
	// tolerate it as a crashed peer would be tolerated). WriteRetries
	// counts frames retained after a failed write and resent on the next
	// connection generation: delivery on a live link is at-least-once,
	// and the retried frames the peer already consumed are deduped like
	// any duplicate.
	SlowPeerSheds, WriteDrops, WriteRetries int64
	// PendingFrames is the current number of frames buffered for
	// instances not yet proposed locally (gauge); PendingDropped counts
	// frames discarded because a pending buffer overflowed or expired.
	PendingFrames, PendingDropped int64
	// Reconnects counts successful re-establishments of failed peer
	// connections; ReadErrors counts reader-loop failures beyond clean
	// peer shutdowns — including malformed or corrupted inbound frames,
	// which are peer-attributable faults and do not poison Err().
	Reconnects, ReadErrors int64
	// DialFailures counts failed outbound connection attempts (dial or
	// handshake); OutboxStalls counts full-outbox stalls under the block
	// policy. Both feed the per-peer suspicion ladder.
	DialFailures, OutboxStalls int64
	// LingerExtensions counts decided instances whose linger window was
	// extended because fewer than n−f processes were reachable — the
	// partition-aware degradation path.
	LingerExtensions int64
	// AuthFailures counts inbound connections rejected by the keyed
	// handshake (wrong or missing key).
	AuthFailures int64
	// SuspectedPeers is the number of peers currently suspected (gauge):
	// repeated dial failures, sustained disconnect, or sustained outbox
	// pressure. Suspicion clears the moment the condition does.
	SuspectedPeers int
	// QueueDepth is the current total number of frames sitting in peer
	// outboxes (gauge) — the live measure of backpressure, summed over
	// every held epoch's links.
	QueueDepth int
	// Epoch is the current membership epoch (gauge); Reconfigures counts
	// adopted membership changes (operator Reconfigure or a received
	// EpochAnnounce that advanced the clock). EpochAnnounces counts
	// announce frames sent, EpochAcks acknowledgements received.
	Epoch                     uint64
	Reconfigures              int64
	EpochAnnounces, EpochAcks int64
	// StaleEpochRejects counts inbound handshakes refused because they
	// claimed an epoch this process does not hold — the guard that keeps
	// a replacement started with an out-of-date membership off the mesh.
	StaleEpochRejects int64
	// RetiredEpochs counts superseded link sets torn down after their
	// last pinned instance tombstoned.
	RetiredEpochs int64
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		ActiveInstances:  s.ctr.active.Load(),
		Lingering:        s.ctr.lingering.Load(),
		Proposed:         s.ctr.proposed.Load(),
		Decided:          s.ctr.decided.Load(),
		TimedOut:         s.ctr.timedOut.Load(),
		Failed:           s.ctr.failed.Load(),
		FramesIn:         s.ctr.framesIn.Load(),
		FramesOut:        s.ctr.framesOut.Load(),
		BytesIn:          s.ctr.bytesIn.Load(),
		BytesOut:         s.ctr.bytesOut.Load(),
		SlowPeerSheds:    s.ctr.sheds.Load(),
		WriteDrops:       s.ctr.writeDrops.Load(),
		WriteRetries:     s.ctr.writeRetries.Load(),
		PendingFrames:    s.ctr.pendingFrames.Load(),
		PendingDropped:   s.ctr.pendingDropped.Load(),
		Reconnects:       s.ctr.reconnects.Load(),
		ReadErrors:       s.ctr.readErrors.Load(),
		DialFailures:     s.ctr.dialFailures.Load(),
		OutboxStalls:     s.ctr.outboxStalls.Load(),
		LingerExtensions: s.ctr.lingerExtensions.Load(),
		AuthFailures:     s.ctr.authFailures.Load(),

		Epoch:             s.ctr.epoch.Load(),
		Reconfigures:      s.ctr.reconfigures.Load(),
		EpochAnnounces:    s.ctr.epochAnnounces.Load(),
		EpochAcks:         s.ctr.epochAcks.Load(),
		StaleEpochRejects: s.ctr.staleEpochRejects.Load(),
		RetiredEpochs:     s.ctr.retiredEpochs.Load(),
	}
	now := time.Now()
	for _, p := range s.allLinks() {
		st.QueueDepth += len(p.outbox)
		if p.suspectedNow(now) {
			st.SuspectedPeers++
		}
	}
	return st
}
