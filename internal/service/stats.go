package service

import "sync/atomic"

// counters is the service's internal atomic counter block. Everything is
// monotone except active (a gauge); Stats snapshots it for callers and
// cmd/bvcload stamps the snapshot into its BENCH records.
type counters struct {
	active    atomic.Int64
	lingering atomic.Int64
	proposed  atomic.Int64
	decided   atomic.Int64
	timedOut  atomic.Int64
	failed    atomic.Int64

	framesIn  atomic.Int64
	framesOut atomic.Int64
	bytesIn   atomic.Int64
	bytesOut  atomic.Int64

	sheds          atomic.Int64
	writeDrops     atomic.Int64
	pendingFrames  atomic.Int64
	pendingDropped atomic.Int64
	reconnects     atomic.Int64
	readErrors     atomic.Int64
}

// Stats is a point-in-time snapshot of one service process's counters.
type Stats struct {
	// ActiveInstances is the number of currently open, undecided instances
	// (gauge). Lingering counts decided instances still serving the
	// exchange for lagging peers (gauge; see Config.LingerTimeout).
	ActiveInstances int64
	Lingering       int64
	// Proposed/Decided/TimedOut/Failed count instance outcomes: proposals
	// accepted, decisions delivered, per-instance timeouts, and protocol
	// failures.
	Proposed, Decided, TimedOut, Failed int64
	// FramesIn/FramesOut/BytesIn/BytesOut count v2 frames and payload
	// bytes crossing this process's pooled connections (self-sends are
	// delivered in memory and not counted).
	FramesIn, FramesOut, BytesIn, BytesOut int64
	// SlowPeerSheds counts frames dropped by the shed policy on a full
	// peer outbox; WriteDrops counts frames lost because a connection
	// failed mid-write (they are retransmitted by no one — the protocols
	// tolerate it as a crashed peer would be tolerated).
	SlowPeerSheds, WriteDrops int64
	// PendingFrames is the current number of frames buffered for
	// instances not yet proposed locally (gauge); PendingDropped counts
	// frames discarded because a pending buffer overflowed or expired.
	PendingFrames, PendingDropped int64
	// Reconnects counts successful re-establishments of failed peer
	// connections; ReadErrors counts reader-loop failures beyond clean
	// peer shutdowns.
	Reconnects, ReadErrors int64
	// QueueDepth is the current total number of frames sitting in peer
	// outboxes (gauge) — the live measure of backpressure.
	QueueDepth int
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		ActiveInstances: s.ctr.active.Load(),
		Lingering:       s.ctr.lingering.Load(),
		Proposed:        s.ctr.proposed.Load(),
		Decided:         s.ctr.decided.Load(),
		TimedOut:        s.ctr.timedOut.Load(),
		Failed:          s.ctr.failed.Load(),
		FramesIn:        s.ctr.framesIn.Load(),
		FramesOut:       s.ctr.framesOut.Load(),
		BytesIn:         s.ctr.bytesIn.Load(),
		BytesOut:        s.ctr.bytesOut.Load(),
		SlowPeerSheds:   s.ctr.sheds.Load(),
		WriteDrops:      s.ctr.writeDrops.Load(),
		PendingFrames:   s.ctr.pendingFrames.Load(),
		PendingDropped:  s.ctr.pendingDropped.Load(),
		Reconnects:      s.ctr.reconnects.Load(),
		ReadErrors:      s.ctr.readErrors.Load(),
	}
	for _, p := range s.peers {
		if p != nil {
			st.QueueDepth += len(p.outbox)
		}
	}
	return st
}
