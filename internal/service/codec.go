package service

import (
	"fmt"

	"repro/internal/aad"
	"repro/internal/broadcast"
	"repro/internal/geometry"
	"repro/internal/sim"
	"repro/internal/wire"
)

// The service path speaks the binary v2 frame layout (internal/wire,
// docs/WIRE_FORMAT.md) rather than gob envelopes: frames are
// instance-multiplexed and the codec below flattens the AAD exchange
// messages into wire.ConsensusMsg, which encodes to a fixed layout with
// no reflection and no per-frame type preamble.

// toWire flattens an AAD message into the wire form. The returned message
// aliases m's vector — encode it before m is mutated (senders encode
// immediately, and protocol values are immutable by convention).
func toWire(m aad.Msg, w *wire.ConsensusMsg) error {
	switch m.Kind {
	case aad.KindRBC:
		w.Kind = wire.ConsensusRBC
		w.Phase = uint8(m.RBC.Phase)
		w.Origin = uint32(m.RBC.Origin)
		w.Round = uint32(m.RBC.Tag)
		w.Value = m.RBC.Value
	case aad.KindReport:
		w.Kind = wire.ConsensusReport
		w.Phase = 0
		w.Origin = uint32(m.Report.Origin)
		w.Round = uint32(m.Report.Round)
		w.Value = nil
	default:
		return fmt.Errorf("service: unknown aad message kind %d", m.Kind)
	}
	return nil
}

// fromWire rebuilds the AAD message from its wire form. The vector is
// copied onto fresh storage: the RBC state machine retains delivered
// values, while w.Value aliases the reader's reusable decode buffer.
func fromWire(w *wire.ConsensusMsg) (aad.Msg, error) {
	switch w.Kind {
	case wire.ConsensusRBC:
		val := make(geometry.Vector, len(w.Value))
		copy(val, w.Value)
		return aad.Msg{Kind: aad.KindRBC, RBC: broadcast.RBCMsg{
			Phase:  broadcast.RBCPhase(w.Phase),
			Origin: sim.ProcID(w.Origin),
			Tag:    int(w.Round),
			Value:  val,
		}}, nil
	case wire.ConsensusReport:
		return aad.Msg{Kind: aad.KindReport, Report: aad.ReportMsg{
			Round:  int(w.Round),
			Origin: sim.ProcID(w.Origin),
		}}, nil
	default:
		return aad.Msg{}, fmt.Errorf("service: unknown consensus wire kind %d", w.Kind)
	}
}
