package service

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/wire"
)

// Epoch-numbered dynamic membership. A service is born at Config.Epoch
// (0 for a static mesh) and can be moved to successor memberships while
// running: Reconfigure installs a higher-numbered address list, new
// proposals pin the new epoch, and in-flight or lingering instances keep
// deciding on the link set of the epoch they were born under. The bound
// n ≥ (d+2)f+1 is per-instance, so instances of adjacent epochs coexist
// safely as long as each runs to decision on its birth mesh. The pool
// holds both link sets during the overlap — links whose address did not
// change are shared, not duplicated — and the old epoch's unique links
// are stopped once its last pinned instance tombstones.
//
// Membership size is fixed: a reconfiguration replaces or re-addresses
// members (the dead-process recovery path), it does not grow or shrink
// n, because every instance's consensus configuration is built for the
// service's n. The operator surface is Reconfigure on any survivor; the
// config then propagates through the mesh via EpochAnnounce/EpochAck
// gossip, and a replacement process started with the new Membership
// dials in, authenticates under the new epoch (the handshake MAC binds
// the epoch number), and participates in every instance opened at its
// birth epoch or later.

// Membership names one epoch of the mesh configuration.
type Membership struct {
	// Epoch is the monotonically increasing configuration number. A
	// Reconfigure must carry an epoch strictly greater than the
	// service's current one.
	Epoch uint64
	// N is the membership size; 0 means len(Addrs). It must equal the
	// service's n — memberships replace members, they do not resize.
	N int
	// Addrs lists every process's listen address at this epoch, indexed
	// by process id. Process ids are stable across epochs.
	Addrs []string
	// AuthKey is the mesh's shared handshake key. It must match the
	// service's key (nil means "keep the current key"): key rotation is
	// not part of a membership change.
	AuthKey []byte
}

// Membership/epoch errors.
var (
	// ErrStaleEpoch rejects a Reconfigure that does not advance the
	// epoch, and inbound handshakes claiming an epoch this process does
	// not hold (counted in Stats.StaleEpochRejects).
	ErrStaleEpoch = errors.New("service: stale membership epoch")
)

// mesh is one epoch's view of the pool: the address list and the per-id
// link set instances of that epoch send on. refs counts the pinned
// instances (open or lingering) plus in-flight proposals; once an old
// epoch's refs reach zero its unique links are retired.
type mesh struct {
	epoch   uint64
	addrs   []string
	peers   []*peerLink // by id; nil at the service's own slot
	refs    int
	retired bool
}

// currentMesh returns the mesh new proposals pin.
func (s *Service) currentMesh() *mesh {
	s.meshMu.Lock()
	defer s.meshMu.Unlock()
	return s.cur
}

// meshForEpoch returns the held mesh for epoch, nil when unknown
// (never adopted, or already retired).
func (s *Service) meshForEpoch(epoch uint64) *mesh {
	s.meshMu.Lock()
	defer s.meshMu.Unlock()
	return s.meshes[epoch]
}

// acquireCurrent pins the current mesh for one proposal.
func (s *Service) acquireCurrent() *mesh {
	s.meshMu.Lock()
	m := s.cur
	m.refs++
	s.meshMu.Unlock()
	return m
}

// releaseMesh unpins one instance (or failed proposal) from its mesh,
// retiring the mesh when it was the last pin on a superseded epoch.
func (s *Service) releaseMesh(m *mesh) {
	s.meshMu.Lock()
	m.refs--
	s.maybeRetireLocked(m)
	s.meshMu.Unlock()
}

// maybeRetireLocked stops and forgets an old epoch's link set once its
// last pinned instance has tombstoned. Links shared with a still-held
// mesh survive; only links unique to the retiring epoch are stopped.
// Called with meshMu held.
func (s *Service) maybeRetireLocked(m *mesh) {
	if m.retired || m.refs > 0 || m == s.cur {
		return
	}
	m.retired = true
	delete(s.meshes, m.epoch)
	var orphans []*peerLink
	for _, p := range m.peers {
		if p == nil {
			continue
		}
		shared := false
		for _, om := range s.meshes {
			for _, op := range om.peers {
				if op == p {
					shared = true
				}
			}
		}
		if !shared {
			orphans = append(orphans, p)
		}
	}
	s.ctr.retiredEpochs.Add(1)
	for _, p := range orphans {
		p.stop()
	}
}

// allLinks returns every distinct link across the held meshes (links
// shared between epochs appear once).
func (s *Service) allLinks() []*peerLink {
	s.meshMu.Lock()
	defer s.meshMu.Unlock()
	seen := make(map[*peerLink]bool, s.n)
	var out []*peerLink
	for _, m := range s.meshes {
		for _, p := range m.peers {
			if p != nil && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// Epoch returns the current membership epoch.
func (s *Service) Epoch() uint64 { return s.ctr.epoch.Load() }

// peerAt returns the current mesh's link to peer id (tests and
// internal probes; operator code goes through KillConn/Stats).
func (s *Service) peerAt(id int) *peerLink { return s.currentMesh().peers[id] }

// Reconfigure moves the service to membership m without stopping it:
// the epoch must be strictly greater than the current one and the
// address list the same size as the mesh (replace or re-address
// members; n is fixed). New proposals open on the new epoch
// immediately; instances born earlier keep deciding on their birth
// epoch's links, and the superseded link set is retired once its last
// pinned instance tombstones. The new config is announced to every
// peer of the new mesh (EpochAnnounce), so reconfiguring one survivor
// propagates to all; a replacement process is started separately with
// the new Membership as its Config and dials in under the new epoch.
func (s *Service) Reconfigure(m Membership) error {
	if stopping(s) {
		return ErrServiceClosed
	}
	if m.N != 0 && m.N != len(m.Addrs) {
		return fmt.Errorf("service: reconfigure: N=%d but %d addresses", m.N, len(m.Addrs))
	}
	if len(m.Addrs) != s.n {
		return fmt.Errorf("service: reconfigure: %d addresses, want %d (membership cannot resize the mesh)", len(m.Addrs), s.n)
	}
	if m.AuthKey != nil && !bytes.Equal(m.AuthKey, s.cfg.AuthKey) {
		return fmt.Errorf("service: reconfigure: auth key mismatch (key rotation is not a membership change)")
	}
	if m.Epoch <= s.Epoch() {
		return fmt.Errorf("%w: reconfigure to epoch %d at epoch %d", ErrStaleEpoch, m.Epoch, s.Epoch())
	}
	adopted, err := s.adoptEpoch(m.Epoch, m.Addrs)
	if err != nil {
		return err
	}
	if adopted {
		s.announceEpoch(m.Epoch, m.Addrs)
	}
	return nil
}

// adoptEpoch installs epoch as the current membership if it advances
// the clock, building the new link set: unchanged addresses share the
// previous epoch's link, changed slots get a fresh link (dialed
// immediately when this process is the dialing side). Idempotent for
// already-seen epochs. Returns whether the epoch was newly adopted.
func (s *Service) adoptEpoch(epoch uint64, addrs []string) (bool, error) {
	s.meshMu.Lock()
	cur := s.cur
	if epoch <= cur.epoch {
		s.meshMu.Unlock()
		return false, nil
	}
	if len(addrs) != s.n {
		s.meshMu.Unlock()
		return false, fmt.Errorf("service: epoch %d announce has %d addresses, want %d", epoch, len(addrs), s.n)
	}
	nm := &mesh{epoch: epoch, addrs: append([]string(nil), addrs...), peers: make([]*peerLink, s.n)}
	var fresh []*peerLink
	for id := 0; id < s.n; id++ {
		if id == s.cfg.ID {
			continue
		}
		if p := cur.peers[id]; p != nil && cur.addrs[id] == addrs[id] {
			p.setEpoch(epoch)
			nm.peers[id] = p
			continue
		}
		p := newPeerLink(s, id, addrs[id])
		p.setEpoch(epoch)
		nm.peers[id] = p
		fresh = append(fresh, p)
	}
	s.meshes[epoch] = nm
	s.cur = nm
	s.ctr.epoch.Store(epoch)
	s.ctr.reconfigures.Add(1)
	s.maybeRetireLocked(cur)
	s.meshMu.Unlock()
	for _, p := range fresh {
		s.startLink(p)
		if p.id < s.cfg.ID {
			// We are the dialing side toward the new member; the accept
			// side waits for the replacement (or re-addressed peer) to
			// dial in under the new epoch.
			s.startRedial(p)
		}
	}
	return true, nil
}

// announceEpoch pushes the new membership to every peer of its mesh.
// Receivers adopt it (idempotently), re-announce to their own links —
// one Reconfigure floods the whole mesh — and answer with EpochAck.
func (s *Service) announceEpoch(epoch uint64, addrs []string) {
	m := s.meshForEpoch(epoch)
	if m == nil {
		return
	}
	for _, p := range m.peers {
		if p == nil {
			continue
		}
		buf := leaseFrame()
		*buf = wire.AppendEpochAnnounce((*buf)[:0], epoch, addrs)
		p.enqueue(buf)
		s.ctr.epochAnnounces.Add(1)
	}
}
