package service

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, within time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", within, what)
}

// TestServiceProposeRacesReconfigure pins the epoch-pinning contract under
// a live flip: proposals issued concurrently with a Reconfigure land on
// exactly one epoch — whichever the membership clock showed when the pin
// was taken — and decide there; afterwards the whole mesh has gossiped to
// the new epoch and fresh proposals all pin it.
func TestServiceProposeRacesReconfigure(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, nil)
	rng := rand.New(rand.NewSource(21))
	addrs := make([]string, n)
	for i, s := range svcs {
		addrs[i] = s.Addr()
	}

	inputs := randomInputs(rng, n, 2)
	chans := make([]<-chan Result, n)
	start := make(chan struct{})
	errs := make(chan error, n)
	for i, s := range svcs {
		i, s := i, s
		go func() {
			<-start
			ch, err := s.Propose(1, inputs[i])
			chans[i] = ch
			errs <- err
		}()
	}
	close(start)
	// Flip the membership mid-race. Addresses are unchanged — every link
	// is shared between the two meshes — so this is a pure epoch bump.
	if err := svcs[0].Reconfigure(Membership{Epoch: 1, Addrs: addrs}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("racing Propose: %v", err)
		}
	}
	for i := range svcs {
		r := collect(t, chans[i], 10*time.Second)
		if r.Err != nil {
			t.Fatalf("process %d: instance failed across the flip: %v", i, r.Err)
		}
		if r.Epoch != 0 && r.Epoch != 1 {
			t.Fatalf("process %d: result pinned epoch %d, want 0 or 1", i, r.Epoch)
		}
	}

	// Gossip converges the whole mesh onto epoch 1.
	waitUntil(t, 5*time.Second, func() bool {
		for _, s := range svcs {
			if s.Epoch() != 1 {
				return false
			}
		}
		return true
	}, "every process adopts epoch 1")
	chans2 := proposeAll(t, svcs, 2, randomInputs(rng, n, 2))
	for i := range svcs {
		r := collect(t, chans2[i], 10*time.Second)
		if r.Err != nil {
			t.Fatalf("process %d: post-flip instance failed: %v", i, r.Err)
		}
		if r.Epoch != 1 {
			t.Fatalf("process %d: post-flip instance pinned epoch %d, want 1", i, r.Epoch)
		}
	}
}

// TestServiceDuplicateInstanceAcrossEpochs: instance ids are global across
// the membership clock — reusing a live id after a Reconfigure is refused
// even though the new proposal would pin a different epoch, because peers
// route frames by id alone.
func TestServiceDuplicateInstanceAcrossEpochs(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, nil)
	rng := rand.New(rand.NewSource(23))
	addrs := make([]string, n)
	for i, s := range svcs {
		addrs[i] = s.Addr()
	}

	chans := proposeAll(t, svcs, 7, randomInputs(rng, n, 2))
	for i := range svcs {
		if r := collect(t, chans[i], 10*time.Second); r.Err != nil {
			t.Fatalf("process %d: %v", i, r.Err)
		}
	}
	if err := svcs[0].Reconfigure(Membership{Epoch: 1, Addrs: addrs}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	ch, err := svcs[0].Propose(7, randomInputs(rng, n, 2)[0])
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	r := collect(t, ch, 5*time.Second)
	if !errors.Is(r.Err, ErrDuplicateInstance) {
		t.Fatalf("reused id across epochs: err = %v, want ErrDuplicateInstance", r.Err)
	}
	if r.Epoch != 1 {
		t.Fatalf("refused proposal reports epoch %d, want the new pin 1", r.Epoch)
	}
}

// TestServiceStaleEpochHandshakeRejected: inbound handshakes claiming an
// epoch this process does not hold are refused and counted — both a
// never-seen future epoch and the retired pre-reconfigure epoch.
func TestServiceStaleEpochHandshakeRejected(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, nil)
	addrs := make([]string, n)
	for i, s := range svcs {
		addrs[i] = s.Addr()
	}

	dialHello := func(epoch uint64) {
		t.Helper()
		conn, err := net.Dial("tcp", svcs[0].Addr())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		if _, err := conn.Write(wire.AppendHello(nil, 4, epoch)); err != nil {
			t.Fatalf("write hello: %v", err)
		}
		// The acceptor must drop the connection without installing it.
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err == nil {
			t.Fatal("stale-epoch connection answered instead of closing")
		}
	}

	dialHello(99) // never adopted
	waitUntil(t, 5*time.Second, func() bool {
		return svcs[0].Stats().StaleEpochRejects >= 1
	}, "future-epoch hello counted")

	// Retire epoch 0 (no pinned instances, unchanged addresses): a peer
	// still handshaking under it is now stale.
	if err := svcs[0].Reconfigure(Membership{Epoch: 1, Addrs: addrs}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if m := svcs[0].meshForEpoch(0); m != nil {
		t.Fatal("epoch 0 still held after an unpinned reconfigure")
	}
	dialHello(0)
	waitUntil(t, 5*time.Second, func() bool {
		return svcs[0].Stats().StaleEpochRejects >= 2
	}, "retired-epoch hello counted")
}

// TestServiceOldEpochRetiresAfterLastPin: a superseded epoch's link set
// survives exactly as long as an instance pinned to it — here a decided
// instance lingering for lagging peers — and its unique links are stopped
// only when that last pin tombstones. Links whose address did not change
// are shared with the new mesh, not duplicated.
func TestServiceOldEpochRetiresAfterLastPin(t *testing.T) {
	const n = 5
	const linger = 300 * time.Millisecond
	svcs := startMesh(t, n, func(_ int, cfg *Config) {
		cfg.LingerTimeout = linger
	})
	rng := rand.New(rand.NewSource(29))
	addrs := make([]string, n)
	for i, s := range svcs {
		addrs[i] = s.Addr()
	}

	chans := proposeAll(t, svcs, 1, randomInputs(rng, n, 2))
	for i := range svcs {
		if r := collect(t, chans[i], 10*time.Second); r.Err != nil {
			t.Fatalf("process %d: %v", i, r.Err)
		}
	}

	oldShared := svcs[0].peerAt(1)
	oldUnique := svcs[0].peerAt(4)
	// Replace member 4's address: its slot gets a fresh link at epoch 1,
	// making the epoch-0 link to 4 unique to the retiring mesh. Port 1 is
	// never listening — the replacement process "has not started yet".
	next := append([]string(nil), addrs...)
	next[4] = "127.0.0.1:1"
	if err := svcs[0].Reconfigure(Membership{Epoch: 1, Addrs: next}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if got := svcs[0].Epoch(); got != 1 {
		t.Fatalf("epoch %d after Reconfigure, want 1", got)
	}
	// The decided instance is still lingering, pinning epoch 0: the old
	// mesh must be held and nothing retired yet.
	if svcs[0].meshForEpoch(0) == nil {
		t.Fatal("epoch 0 dropped while a lingering instance still pins it")
	}
	if got := svcs[0].Stats().RetiredEpochs; got != 0 {
		t.Fatalf("RetiredEpochs = %d with a live pin, want 0", got)
	}
	if svcs[0].peerAt(1) != oldShared {
		t.Fatal("unchanged-address link was not shared between epochs")
	}
	if svcs[0].peerAt(4) == oldUnique {
		t.Fatal("re-addressed slot kept the old link instead of a fresh one")
	}

	// Once the linger window closes the instance tombstones, the pin is
	// released, and the old epoch retires (stopping its unique links).
	waitUntil(t, 10*linger+2*time.Second, func() bool {
		return svcs[0].meshForEpoch(0) == nil && svcs[0].Stats().RetiredEpochs == 1
	}, "epoch 0 retires after the last pinned instance tombstones")
}
