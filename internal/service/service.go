// Package service is the multi-tenant live consensus runtime: many
// concurrent instances of the paper's §3.2 asynchronous approximate BVC
// algorithm multiplexed over one pooled full mesh of persistent TCP
// connections. One Service is one process of the mesh; Propose opens an
// instance locally, frames carry the instance id so every process's
// traffic for all instances shares the same n−1 connections, and
// instances are sharded across a goroutine pool by instance id.
//
// The architecture — instance lifecycle, connection pool, framing,
// backpressure and slow-peer policy, drain/reconfiguration semantics, and
// the load-test workflow with cmd/bvcload — is documented in
// docs/SERVICE.md; the frame layout is docs/WIRE_FORMAT.md. The
// single-tenant path (one TCP mesh per consensus run, gob envelopes)
// remains in internal/transport + internal/runtime.
package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/aad"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Service errors.
var (
	// ErrServiceClosed is returned by operations on a closed service.
	ErrServiceClosed = errors.New("service: closed")
	// ErrDraining is returned by Propose once Drain has been called.
	ErrDraining = errors.New("service: draining")
	// ErrDuplicateInstance is reported for a Propose reusing a live or
	// recently finished instance id.
	ErrDuplicateInstance = errors.New("service: duplicate instance id")
	// ErrInstanceTimeout is reported for instances that exceeded
	// Config.InstanceTimeout before deciding.
	ErrInstanceTimeout = errors.New("service: instance timed out")
)

// Policy selects the slow-peer behavior when a peer's outbox is full.
type Policy int

// Slow-peer policies.
const (
	// BlockSlowPeer blocks the sender until the outbox drains:
	// backpressure propagates to the shard and ultimately to Propose.
	// This preserves the paper's reliable-channel model.
	BlockSlowPeer Policy = iota
	// ShedSlowPeer drops the frame and counts it (Stats.SlowPeerSheds).
	// To the protocols the slow peer then looks (partially) crashed,
	// which they tolerate for up to f peers; sheds beyond that can stall
	// instances until their timeout.
	ShedSlowPeer
)

// Config configures one service process.
type Config struct {
	// Node configures the consensus algorithm every instance runs; its N
	// must equal len(Addrs). HaltWhenDecided is forced off: the service
	// delivers the result the moment the instance decides and then keeps
	// the instance lingering — still serving reliable-broadcast echoes,
	// readies, and reports — for LingerTimeout. Lingering is what keeps
	// lagging peers live when a process crashes mid-instance: Bracha's
	// echo quorum is ⌊(n+f)/2⌋+1, which with one peer down needs every
	// survivor, including the ones that already decided.
	Node core.AsyncConfig
	// ID is this process's id, indexing Addrs.
	ID int
	// Addrs lists every process's listen address. Addrs[ID] may use port
	// 0; Addr reports the bound address.
	Addrs []string
	// Shards is the instance-shard goroutine count (default
	// min(GOMAXPROCS, 4)); instance id modulo Shards picks the shard.
	Shards int
	// OutboxDepth bounds each peer's outbox in frames (default 1024).
	OutboxDepth int
	// QueueDepth bounds each shard's inbound queue in frames (default
	// 4096). A full queue blocks connection readers — backpressure that
	// propagates to remote senders through TCP.
	QueueDepth int
	// PendingLimit bounds the frames buffered per instance that remote
	// peers started before the local Propose arrived (default 4096);
	// overflow is dropped and counted.
	PendingLimit int
	// SlowPeer selects the full-outbox policy (default BlockSlowPeer).
	SlowPeer Policy
	// InstanceTimeout fails instances that have not decided in time
	// (default 30s); buffered pre-Propose frames expire on the same
	// clock.
	InstanceTimeout time.Duration
	// LingerTimeout bounds how long a decided instance keeps serving the
	// protocol for lagging peers before it is tombstoned (default:
	// InstanceTimeout). Total instance lifetime is therefore at most
	// InstanceTimeout + LingerTimeout.
	LingerTimeout time.Duration
	// EstablishTimeout bounds Establish and per-attempt redials
	// (default 10s).
	EstablishTimeout time.Duration
	// DialBackoff/MaxDialBackoff shape dial retry (defaults 25ms/500ms).
	// Sleeps are jittered uniform in [b/2, b] so redials desynchronize.
	DialBackoff    time.Duration
	MaxDialBackoff time.Duration
	// Seed feeds the per-instance PRNG streams.
	Seed int64
	// Transport supplies the network surface (nil: plain TCP). The
	// fault-injection layer internal/chaos implements it.
	Transport Transport
	// AuthKey, when non-nil, enables the mutual HMAC-SHA256
	// challenge/response handshake: every connection must prove knowledge
	// of the shared key before it is installed (see auth.go). All
	// processes of a mesh must agree on the key; keyless and keyed
	// processes refuse each other.
	AuthKey []byte
	// Epoch is the membership epoch this process is born at (0 for a
	// static mesh). A replacement process joining a reconfigured mesh is
	// started with the new epoch and its address list; see Reconfigure
	// and the Membership type in epoch.go.
	Epoch uint64
	// SuspectAfter is the consecutive-dial-failure count past which a
	// disconnected peer is suspected (default 3). Suspicion feeds
	// Stats.SuspectedPeers and the partition-aware linger extension; it
	// clears on reconnect.
	SuspectAfter int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 4 {
			c.Shards = 4
		}
	}
	if c.OutboxDepth <= 0 {
		c.OutboxDepth = 1024
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.PendingLimit <= 0 {
		c.PendingLimit = 4096
	}
	if c.InstanceTimeout <= 0 {
		c.InstanceTimeout = 30 * time.Second
	}
	if c.LingerTimeout <= 0 {
		c.LingerTimeout = c.InstanceTimeout
	}
	if c.EstablishTimeout <= 0 {
		c.EstablishTimeout = 10 * time.Second
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 25 * time.Millisecond
	}
	if c.MaxDialBackoff <= 0 {
		c.MaxDialBackoff = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.Transport == nil {
		c.Transport = netTransport{}
	}
	return c
}

// Result is one finished instance as seen by this process.
type Result struct {
	// Instance is the instance id.
	Instance uint64
	// Epoch is the membership epoch the instance was pinned to at
	// Propose time; it decided (or failed) on that epoch's link set.
	Epoch uint64
	// Decision is the decided vector (nil when Err is set).
	Decision geometry.Vector
	// Rounds is the instance's termination round count.
	Rounds int
	// Elapsed is the local propose-to-decision latency.
	Elapsed time.Duration
	// Err is nil on decision; ErrInstanceTimeout, ErrServiceClosed, a
	// duplicate-id error, or a protocol failure otherwise.
	Err error
}

// Service is one process of a multi-tenant consensus mesh. Construct with
// New on every process, exchange listen addresses out of band, Establish
// the mesh, then Propose instances concurrently from any goroutine.
type Service struct {
	cfg    Config
	n      int
	tr     Transport
	ln     net.Listener
	shards []*shard
	start  time.Time

	// meshMu guards the membership clock: cur is the mesh new proposals
	// pin, meshes holds every epoch still referenced by a pinned
	// instance (plus the current one). See epoch.go.
	meshMu sync.Mutex
	cur    *mesh
	meshes map[uint64]*mesh

	ctr      counters
	draining sync.Once
	isDrain  chan struct{} // closed when draining
	drained  chan struct{} // closed when draining and active == 0
	drainMu  sync.Once

	// proposeMu fences Propose against Close: Propose holds it shared
	// while checking stop and enqueueing; Close acquires it exclusively
	// after closing stop, so every request that passed the check is in a
	// shard channel by the time Close drains them.
	proposeMu sync.RWMutex
	stop      chan struct{}
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup

	errMu    sync.Mutex
	firstErr error
}

// New validates the configuration, opens the listener, and starts the
// shard pool and per-peer writers. The mesh is built by Establish.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	n := len(cfg.Addrs)
	if cfg.ID < 0 || cfg.ID >= n {
		return nil, fmt.Errorf("service: id %d out of range for %d addresses", cfg.ID, n)
	}
	if cfg.Node.N != n {
		return nil, fmt.Errorf("service: consensus n=%d but %d addresses", cfg.Node.N, n)
	}
	// Lingering (not halting) at decision is load-bearing: see Config.Node.
	cfg.Node.HaltWhenDecided = false
	// Validate the consensus configuration once up front so Propose
	// failures can only be per-input: build a throwaway node.
	if _, err := core.NewAsyncNode(cfg.Node, sim.ProcID(cfg.ID), probeInput(cfg.Node)); err != nil {
		return nil, fmt.Errorf("service: consensus config: %w", err)
	}
	ln, err := cfg.Transport.Listen(cfg.Addrs[cfg.ID])
	if err != nil {
		return nil, fmt.Errorf("service: listen %s: %w", cfg.Addrs[cfg.ID], err)
	}
	s := &Service{
		cfg:     cfg,
		n:       n,
		tr:      cfg.Transport,
		ln:      ln,
		shards:  make([]*shard, cfg.Shards),
		start:   time.Now(),
		isDrain: make(chan struct{}),
		drained: make(chan struct{}),
		stop:    make(chan struct{}),
	}
	s.ctr.epoch.Store(cfg.Epoch)
	birth := &mesh{
		epoch: cfg.Epoch,
		addrs: append([]string(nil), cfg.Addrs...),
		peers: make([]*peerLink, n),
	}
	for id, addr := range cfg.Addrs {
		if id == cfg.ID {
			continue
		}
		birth.peers[id] = newPeerLink(s, id, addr)
	}
	s.cur = birth
	s.meshes = map[uint64]*mesh{cfg.Epoch: birth}
	for i := range s.shards {
		s.shards[i] = newShard(s, i)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	for _, p := range birth.peers {
		if p != nil {
			s.startLink(p)
		}
	}
	for _, sh := range s.shards {
		sh := sh
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sh.run()
		}()
	}
	return s, nil
}

// probeInput builds a valid input (the box's lower corner) for the
// construction-time configuration probe.
func probeInput(cfg core.AsyncConfig) geometry.Vector {
	v := make(geometry.Vector, cfg.D)
	lo := cfg.Bounds.Lo
	for i := range v {
		if i < len(lo) {
			v[i] = lo[i]
		}
	}
	return v
}

// Addr returns the bound listen address (useful with port 0).
func (s *Service) Addr() string { return s.ln.Addr().String() }

// KillConn force-closes the current connection to peer; a no-op when
// none is installed. It is a fault-injection hook for chaos tests and
// verify.ServiceSystem: the link reacts exactly as if the connection had
// failed — the dialing side redials with backoff, climbing the suspicion
// ladder while the peer stays unreachable.
func (s *Service) KillConn(peer int) {
	if peer < 0 || peer >= s.n || peer == s.cfg.ID {
		return
	}
	p := s.currentMesh().peers[peer]
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// reachable counts the processes of mesh m this one can currently count
// on for quorum: itself plus every peer with an installed, unsuspected
// connection on that epoch's link set.
func (s *Service) reachable(m *mesh) int {
	count := 1
	for _, p := range m.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		up := p.conn != nil && p.pressure < pressureSuspectAfter
		p.mu.Unlock()
		if up {
			count++
		}
	}
	return count
}

// Err returns the first structural error the service observed (accept
// failures, protocol-type mismatches on the send path); nil while
// healthy. Peer disconnects, reconnects, and malformed inbound frames
// are not errors here — the latter are peer-attributable faults counted
// in Stats.ReadErrors.
func (s *Service) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

func (s *Service) noteErr(err error) {
	s.errMu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.errMu.Unlock()
}

func (s *Service) shardFor(instance uint64) *shard {
	return s.shards[instance%uint64(len(s.shards))]
}

func (s *Service) drainingNow() bool {
	select {
	case <-s.isDrain:
		return true
	default:
		return false
	}
}

// Propose opens consensus instance id with this process's input. Every
// process of the mesh must eventually propose the same instance id (their
// traffic is buffered briefly otherwise). The result — decision or error
// — is delivered exactly once on the returned channel.
//
// The instance is pinned to the membership epoch current at this call:
// it runs to decision on that epoch's link set even if the mesh is
// reconfigured while it is in flight. A Propose racing a Reconfigure
// therefore lands on exactly one epoch — whichever the membership clock
// showed when the pin was taken.
func (s *Service) Propose(id uint64, input geometry.Vector) (<-chan Result, error) {
	if stopping(s) {
		return nil, ErrServiceClosed
	}
	if s.drainingNow() {
		return nil, ErrDraining
	}
	node, err := core.NewAsyncNode(s.cfg.Node, sim.ProcID(s.cfg.ID), input)
	if err != nil {
		return nil, fmt.Errorf("service: instance %d: %w", id, err)
	}
	res := make(chan Result, 1)
	s.proposeMu.RLock()
	defer s.proposeMu.RUnlock()
	if stopping(s) {
		return nil, ErrServiceClosed
	}
	req := proposeReq{id: id, node: node, res: res, mesh: s.acquireCurrent()}
	select {
	case s.shardFor(id).propose <- req:
	case <-s.stop:
		s.releaseMesh(req.mesh)
		return nil, ErrServiceClosed
	}
	return res, nil
}

// Drain gracefully winds the service down: new proposals are refused, a
// goodbye frame tells every peer (on every held epoch's links) to stop
// redialing this process, and Drain returns once every in-flight
// instance has finished (decided, failed, or timed out) or ctx expires.
// For replacing or re-addressing members without stopping the service,
// use Reconfigure instead (see docs/SERVICE.md).
func (s *Service) Drain(ctx context.Context) error {
	s.draining.Do(func() {
		close(s.isDrain)
		for _, p := range s.allLinks() {
			buf := leaseFrame()
			*buf = wire.AppendGoodbye((*buf)[:0])
			p.enqueue(buf)
		}
	})
	s.checkDrained()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w (%d instances still active)", ctx.Err(), s.ctr.active.Load())
	case <-s.stop:
		return ErrServiceClosed
	}
}

// checkDrained closes the drained latch once draining with no active
// instances; called after every instance retirement and by Drain itself.
func (s *Service) checkDrained() {
	if s.drainingNow() && s.ctr.active.Load() == 0 {
		s.drainMu.Do(func() { close(s.drained) })
	}
}

// Close releases the listener, connections, and goroutines. In-flight
// instances fail with ErrServiceClosed; use Drain first for a graceful
// stop.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.proposeMu.Lock() // barrier: no Propose is mid-enqueue past here
		s.proposeMu.Unlock()
		err := s.ln.Close()
		for _, p := range s.allLinks() {
			p.stop()
		}
		s.wg.Wait()
		// The shards are gone; answer any requests still in their inboxes.
		for _, sh := range s.shards {
		drain:
			for {
				select {
				case req := <-sh.propose:
					req.res <- Result{Instance: req.id, Epoch: req.mesh.epoch, Err: ErrServiceClosed}
					s.releaseMesh(req.mesh)
				default:
					break drain
				}
			}
		}
		if err != nil && !errors.Is(err, net.ErrClosed) {
			s.closeErr = err
		}
	})
	return s.closeErr
}

// inMsg is one routed consensus delivery.
type inMsg struct {
	instance uint64
	from     int
	msg      aad.Msg
}

// proposeReq opens an instance on its shard, carrying the mesh pin
// taken at Propose time.
type proposeReq struct {
	id   uint64
	node *core.AsyncNode
	res  chan Result
	mesh *mesh
}

// localMsg is a self-send awaiting delivery on the shard's local FIFO.
type localMsg struct {
	inst *instance
	msg  aad.Msg
}

// instance is one open consensus instance owned by a shard. After done it
// lingers: the result has been delivered, but the node keeps serving the
// exchange for lagging peers until lingerUntil. mesh is the epoch pin:
// every send goes out on the birth epoch's link set, and the pin is
// released (possibly retiring that epoch) when the instance tombstones.
type instance struct {
	id            uint64
	node          *core.AsyncNode
	res           chan Result
	mesh          *mesh
	started       time.Time
	deadline      time.Time
	done          bool
	lingerUntil   time.Time
	lingerExtends int // partition-aware extensions granted so far
	api           instAPI
}

// pendingBox buffers frames for an instance peers started before the
// local Propose arrived.
type pendingBox struct {
	since time.Time
	msgs  []inMsg
}

// shard owns a partition of the instance space: its goroutine is the only
// one that touches its instances, so node callbacks are serial per
// instance by construction.
type shard struct {
	svc     *Service
	idx     int
	queue   chan inMsg
	propose chan proposeReq

	local     []localMsg
	instances map[uint64]*instance
	pending   map[uint64]*pendingBox
	tombs     map[uint64]time.Time

	enc wire.ConsensusMsg // sender-side encode scratch
}

func newShard(s *Service, idx int) *shard {
	return &shard{
		svc:       s,
		idx:       idx,
		queue:     make(chan inMsg, s.cfg.QueueDepth),
		propose:   make(chan proposeReq, 16),
		instances: make(map[uint64]*instance),
		pending:   make(map[uint64]*pendingBox),
		tombs:     make(map[uint64]time.Time),
	}
}

// tick is the shard housekeeping cadence: instance expiry, pending and
// tombstone GC.
const tick = 20 * time.Millisecond

func (sh *shard) run() {
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case m := <-sh.queue:
			sh.deliver(m)
		case req := <-sh.propose:
			sh.open(req)
		case <-ticker.C:
			sh.expire(time.Now())
		case <-sh.svc.stop:
			for _, inst := range sh.instances {
				if inst.done {
					continue // result already delivered; it was only lingering
				}
				inst.res <- Result{Instance: inst.id, Epoch: inst.mesh.epoch, Err: ErrServiceClosed}
				sh.svc.ctr.active.Add(-1)
			}
			return
		}
		sh.drainLocal()
	}
}

// drainLocal delivers queued self-sends; deliveries may enqueue more.
func (sh *shard) drainLocal() {
	for len(sh.local) > 0 {
		l := sh.local[0]
		sh.local = sh.local[1:]
		inst := l.inst
		if _, open := sh.instances[inst.id]; !open {
			continue // instance finished while the self-send waited
		}
		inst.node.OnMessage(&inst.api, sim.ProcID(sh.svc.cfg.ID), l.msg)
		sh.afterStep(inst)
	}
	if len(sh.local) == 0 && cap(sh.local) > 1024 {
		sh.local = nil // don't let a burst pin a large backing array
	}
}

// deliver routes one network delivery to its instance, or buffers it when
// the local Propose has not arrived yet.
func (sh *shard) deliver(m inMsg) {
	if inst, ok := sh.instances[m.instance]; ok {
		inst.node.OnMessage(&inst.api, sim.ProcID(m.from), m.msg)
		sh.afterStep(inst)
		return
	}
	if _, dead := sh.tombs[m.instance]; dead {
		return // finished here; peers catching up need nothing from us
	}
	if sh.svc.drainingNow() {
		return // no local Propose can arrive anymore
	}
	box := sh.pending[m.instance]
	if box == nil {
		box = &pendingBox{since: time.Now()}
		sh.pending[m.instance] = box
	}
	if len(box.msgs) >= sh.svc.cfg.PendingLimit {
		sh.svc.ctr.pendingDropped.Add(1)
		return
	}
	box.msgs = append(box.msgs, m)
	sh.svc.ctr.pendingFrames.Add(1)
}

// open starts an instance: register, init (round 1 broadcasts), then
// replay any frames that arrived ahead of the proposal.
func (sh *shard) open(req proposeReq) {
	// Instance ids are global across epochs: a live or tombstoned id is
	// refused even when the new proposal would pin a different epoch —
	// peers route frames by id alone, so reuse would conflate instances.
	if _, live := sh.instances[req.id]; live {
		req.res <- Result{Instance: req.id, Epoch: req.mesh.epoch, Err: ErrDuplicateInstance}
		sh.svc.releaseMesh(req.mesh)
		return
	}
	if _, dead := sh.tombs[req.id]; dead {
		req.res <- Result{Instance: req.id, Epoch: req.mesh.epoch, Err: ErrDuplicateInstance}
		sh.svc.releaseMesh(req.mesh)
		return
	}
	now := time.Now()
	inst := &instance{
		id:       req.id,
		node:     req.node,
		res:      req.res,
		mesh:     req.mesh,
		started:  now,
		deadline: now.Add(sh.svc.cfg.InstanceTimeout),
	}
	inst.api = instAPI{sh: sh, inst: inst,
		rng: rand.New(rand.NewSource(sh.svc.cfg.Seed ^ int64(req.id*0x9e3779b97f4a7c15) ^ int64(sh.svc.cfg.ID+1)))}
	sh.instances[req.id] = inst
	sh.svc.ctr.active.Add(1)
	sh.svc.ctr.proposed.Add(1)

	inst.node.Init(&inst.api)
	sh.afterStep(inst)
	if box, ok := sh.pending[req.id]; ok {
		delete(sh.pending, req.id)
		sh.svc.ctr.pendingFrames.Add(-int64(len(box.msgs)))
		for _, m := range box.msgs {
			if _, open := sh.instances[req.id]; !open {
				break // decided mid-replay
			}
			inst.node.OnMessage(&inst.api, sim.ProcID(m.from), m.msg)
			sh.afterStep(inst)
		}
	}
}

// afterStep moves the instance along its lifecycle after a node callback:
// a halted node failed (with lingering forced on, fail() is the only Halt
// caller) and is retired with its error; a decided node delivers its
// result and transitions to lingering — it stays registered, serving the
// exchange for lagging peers, until expire tombstones it.
func (sh *shard) afterStep(inst *instance) {
	if inst.done {
		return
	}
	if inst.api.halted {
		_, err := inst.node.Decision()
		sh.svc.ctr.failed.Add(1)
		sh.retire(inst, Result{
			Instance: inst.id,
			Epoch:    inst.mesh.epoch,
			Rounds:   inst.node.Rounds(),
			Elapsed:  time.Since(inst.started),
			Err:      err,
		})
		return
	}
	if !inst.node.Decided() {
		return
	}
	dec, err := inst.node.Decision()
	if err != nil {
		sh.svc.ctr.failed.Add(1)
		sh.retire(inst, Result{Instance: inst.id, Epoch: inst.mesh.epoch, Rounds: inst.node.Rounds(), Elapsed: time.Since(inst.started), Err: err})
		return
	}
	inst.done = true
	inst.lingerUntil = time.Now().Add(sh.svc.cfg.LingerTimeout)
	sh.svc.ctr.decided.Add(1)
	sh.svc.ctr.lingering.Add(1)
	inst.res <- Result{
		Instance: inst.id,
		Epoch:    inst.mesh.epoch,
		Decision: dec,
		Rounds:   inst.node.Rounds(),
		Elapsed:  time.Since(inst.started),
	}
	sh.svc.ctr.active.Add(-1)
	sh.svc.checkDrained()
}

// retire delivers the result, tombstones the id, releases the epoch
// pin, and updates gauges.
func (sh *shard) retire(inst *instance, res Result) {
	delete(sh.instances, inst.id)
	sh.tombs[inst.id] = time.Now()
	inst.res <- res
	sh.svc.ctr.active.Add(-1)
	sh.svc.releaseMesh(inst.mesh)
	sh.svc.checkDrained()
}

// maxLingerExtends caps the partition-aware linger extensions per
// instance, bounding a decided instance's lifetime even through an
// unhealed partition.
const maxLingerExtends = 4

// expire enforces instance deadlines, tombstones lingering instances whose
// window closed, and garbage-collects pending boxes and tombstones.
// Decided instances whose linger window closes while the mesh is degraded
// (fewer than n−f reachable processes) extend their linger instead of
// tombstoning — lagging peers behind a partition still need this
// process's echoes once the partition heals — up to maxLingerExtends
// windows.
func (sh *shard) expire(now time.Time) {
	for _, inst := range sh.instances {
		if inst.done {
			if now.After(inst.lingerUntil) {
				if inst.lingerExtends < maxLingerExtends &&
					sh.svc.reachable(inst.mesh) < sh.svc.n-sh.svc.cfg.Node.F {
					inst.lingerExtends++
					inst.lingerUntil = now.Add(sh.svc.cfg.LingerTimeout)
					sh.svc.ctr.lingerExtensions.Add(1)
					continue
				}
				delete(sh.instances, inst.id)
				sh.tombs[inst.id] = now
				sh.svc.ctr.lingering.Add(-1)
				sh.svc.releaseMesh(inst.mesh)
			}
			continue
		}
		if now.After(inst.deadline) {
			sh.svc.ctr.timedOut.Add(1)
			sh.retire(inst, Result{Instance: inst.id, Epoch: inst.mesh.epoch, Elapsed: now.Sub(inst.started), Err: ErrInstanceTimeout})
		}
	}
	pendingTTL := sh.svc.cfg.InstanceTimeout
	for id, box := range sh.pending {
		if now.Sub(box.since) > pendingTTL {
			sh.svc.ctr.pendingFrames.Add(-int64(len(box.msgs)))
			sh.svc.ctr.pendingDropped.Add(int64(len(box.msgs)))
			delete(sh.pending, id)
		}
	}
	tombTTL := 2 * sh.svc.cfg.InstanceTimeout
	for id, at := range sh.tombs {
		if now.Sub(at) > tombTTL {
			delete(sh.tombs, id)
		}
	}
}

// instAPI implements sim.API for one instance: sends become framed
// transmissions on the pooled mesh, self-sends loop through the shard's
// local FIFO (pushing to our own bounded queue from the shard goroutine
// could deadlock).
type instAPI struct {
	sh     *shard
	inst   *instance
	rng    *rand.Rand
	halted bool
}

var _ sim.API = (*instAPI)(nil)

func (a *instAPI) ID() sim.ProcID { return sim.ProcID(a.sh.svc.cfg.ID) }
func (a *instAPI) N() int         { return a.sh.svc.n }

func (a *instAPI) Send(to sim.ProcID, msg sim.Message) {
	m, ok := msg.(aad.Msg)
	if !ok {
		a.sh.svc.noteErr(fmt.Errorf("service: instance %d sent %T, want aad.Msg", a.inst.id, msg))
		return
	}
	if int(to) == a.sh.svc.cfg.ID {
		a.sh.local = append(a.sh.local, localMsg{inst: a.inst, msg: m})
		return
	}
	sh := a.sh
	if err := toWire(m, &sh.enc); err != nil {
		sh.svc.noteErr(err)
		return
	}
	buf := leaseFrame()
	*buf = wire.AppendConsensus((*buf)[:0], a.inst.id, &sh.enc)
	a.inst.mesh.peers[to].enqueue(buf)
}

func (a *instAPI) Broadcast(msg sim.Message) {
	for to := 0; to < a.sh.svc.n; to++ {
		a.Send(sim.ProcID(to), msg)
	}
}

func (a *instAPI) Halt() { a.halted = true }

func (a *instAPI) Rand() *rand.Rand { return a.rng }

func (a *instAPI) Now() time.Duration { return time.Since(a.sh.svc.start) }
